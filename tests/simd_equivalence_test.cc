// SIMD-vs-scalar equivalence gate for the AVX2 filter kernels
// (exec/simd_kernels.h, DESIGN.md §15).
//
// Every vector kernel promises bit-for-bit equality with the scalar
// predicate it mirrors — NaN semantics, signed zeros, int64 extremes, and
// NULL masking included. These tests compare the kernels directly against
// scalar references over hostile arrays with ragged lengths, then force
// the scalar fallback (simd::ForceScalarForTest) and replay the SQL fuzz
// corpus plus randomized queries and profiles through both configurations
// at threads {1, 2, 7, 16}: selections and result tables must be
// bit-identical. On machines without AVX2 both sides run scalar and the
// gate degenerates to a no-op rather than failing.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "exec/executor.h"
#include "exec/kernels.h"
#include "exec/simd_kernels.h"
#include "sql/parser.h"
#include "sql/selection.h"
#include "storage/columnar.h"
#include "storage/table.h"

#include "equivalence_fixture.h"

namespace autocat {
namespace {

using namespace equiv;  // NOLINT

const size_t kThreadCounts[] = {1, 2, 7, 16};

// Restores runtime SIMD detection on scope exit, so a failing assertion
// cannot leak the forced-scalar state into later tests.
struct ScalarForceGuard {
  explicit ScalarForceGuard(bool force) {
    simd::ForceScalarForTest(force);
  }
  ~ScalarForceGuard() { simd::ForceScalarForTest(false); }
};

// ------------------------------------------------------- kernel unit tests

// Scalar mirror of Value::Compare's numeric three-way: NaN compares equal
// to everything (all orderings false).
int Cmp3(double a, double b) {
  return static_cast<int>(a > b) - static_cast<int>(a < b);
}
int Cmp3(int64_t a, int64_t b) {
  return static_cast<int>(a > b) - static_cast<int>(a < b);
}

bool BitAt(const std::vector<uint64_t>& bits, size_t i) {
  return (bits[i >> 6] >> (i & 63)) & 1;
}

// Lengths that exercise empty input, single lanes, word boundaries, the
// vector/tail split, and a full morsel.
const size_t kLengths[] = {0, 1, 3, 63, 64, 65, 100, 255, 256, 1000, 2048};

TEST(SimdKernelTest, CompareI64MatchesScalar) {
  if (!simd::Enabled()) {
    GTEST_SKIP() << "AVX2 unavailable; scalar fallback covers this build";
  }
  Random rng(11);
  const int64_t hostile[] = {0, -1, 1,
                             std::numeric_limits<int64_t>::min(),
                             std::numeric_limits<int64_t>::max(),
                             int64_t{9007199254740993}};
  for (const size_t n : kLengths) {
    std::vector<int64_t> vals(n);
    for (size_t i = 0; i < n; ++i) {
      vals[i] = i % 7 == 0 ? hostile[i / 7 % 6]
                           : rng.Uniform(-1000000, 1000000);
    }
    for (const int64_t b : {int64_t{0}, int64_t{42},
                            std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()}) {
      for (uint8_t table = 0; table < 8; ++table) {
        std::vector<uint64_t> bits((n + 63) / 64 + 1, ~uint64_t{0});
        ASSERT_TRUE(
            simd::CompareI64(vals.data(), n, b, table, bits.data()));
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(BitAt(bits, i),
                    ((table >> (Cmp3(vals[i], b) + 1)) & 1) != 0)
              << "n=" << n << " b=" << b << " table=" << int(table)
              << " i=" << i;
        }
        // Trailing bits of the last word are zeroed.
        for (size_t i = n; i < ((n + 63) / 64) * 64; ++i) {
          ASSERT_FALSE(BitAt(bits, i)) << "n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdKernelTest, CompareF64MatchesScalar) {
  if (!simd::Enabled()) {
    GTEST_SKIP() << "AVX2 unavailable; scalar fallback covers this build";
  }
  Random rng(13);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double hostile[] = {0.0, -0.0, nan,
                            std::numeric_limits<double>::infinity(),
                            -std::numeric_limits<double>::infinity(),
                            1e-300};
  for (const size_t n : kLengths) {
    std::vector<double> vals(n);
    for (size_t i = 0; i < n; ++i) {
      vals[i] = i % 5 == 0 ? hostile[i / 5 % 6]
                           : rng.UniformReal(-1e6, 1e6);
    }
    for (const double b : {0.0, -0.0, 42.5, nan}) {
      for (uint8_t table = 0; table < 8; ++table) {
        std::vector<uint64_t> bits((n + 63) / 64 + 1, ~uint64_t{0});
        ASSERT_TRUE(
            simd::CompareF64(vals.data(), n, b, table, bits.data()));
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(BitAt(bits, i),
                    ((table >> (Cmp3(vals[i], b) + 1)) & 1) != 0)
              << "n=" << n << " b=" << b << " table=" << int(table)
              << " i=" << i;
        }
        for (size_t i = n; i < ((n + 63) / 64) * 64; ++i) {
          ASSERT_FALSE(BitAt(bits, i)) << "n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdKernelTest, AcceptCodesMatchesScalar) {
  if (!simd::Enabled()) {
    GTEST_SKIP() << "AVX2 unavailable; scalar fallback covers this build";
  }
  Random rng(17);
  for (const size_t dict_size : {size_t{1}, size_t{2}, size_t{17},
                                 size_t{256}}) {
    std::vector<uint32_t> accept(dict_size);
    for (auto& a : accept) {
      a = rng.Bernoulli(0.4) ? 1 : 0;
    }
    for (const size_t n : kLengths) {
      std::vector<uint32_t> codes(n);
      for (size_t i = 0; i < n; ++i) {
        codes[i] = static_cast<uint32_t>(
            rng.Uniform(0, static_cast<int64_t>(dict_size) - 1));
      }
      std::vector<uint64_t> bits((n + 63) / 64 + 1, ~uint64_t{0});
      ASSERT_TRUE(simd::AcceptCodes(codes.data(), n, accept.data(),
                                    dict_size, bits.data()));
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(BitAt(bits, i), accept[codes[i]] != 0)
            << "dict=" << dict_size << " n=" << n << " i=" << i;
      }
      for (size_t i = n; i < ((n + 63) / 64) * 64; ++i) {
        ASSERT_FALSE(BitAt(bits, i)) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(SimdKernelTest, RangeF64MatchesScalar) {
  if (!simd::Enabled()) {
    GTEST_SKIP() << "AVX2 unavailable; scalar fallback covers this build";
  }
  Random rng(19);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const double hostile[] = {0.0, -0.0, nan, inf, -inf, 100.0};
  for (const size_t n : kLengths) {
    std::vector<double> vals(n);
    for (size_t i = 0; i < n; ++i) {
      vals[i] = i % 5 == 0 ? hostile[i / 5 % 6]
                           : rng.UniformReal(-500, 500);
    }
    const struct {
      double lo, hi;
    } ranges[] = {{-100.0, 100.0}, {0.0, 0.0}, {-0.0, 0.0},
                  {-inf, inf},     {nan, 100.0}};
    for (const auto& range : ranges) {
      for (const bool lo_inc : {false, true}) {
        for (const bool hi_inc : {false, true}) {
          std::vector<uint64_t> bits((n + 63) / 64 + 1, ~uint64_t{0});
          ASSERT_TRUE(simd::RangeF64(vals.data(), n, range.lo, lo_inc,
                                     range.hi, hi_inc, bits.data()));
          for (size_t i = 0; i < n; ++i) {
            const double v = vals[i];
            // NaN cells (and NaN bounds) are inside: every ordered
            // comparison below is false.
            const bool out_lo =
                v < range.lo || (v == range.lo && !lo_inc);
            const bool out_hi =
                v > range.hi || (v == range.hi && !hi_inc);
            ASSERT_EQ(BitAt(bits, i), !out_lo && !out_hi)
                << "n=" << n << " lo=" << range.lo << " hi=" << range.hi
                << " i=" << i;
          }
          for (size_t i = n; i < ((n + 63) / 64) * 64; ++i) {
            ASSERT_FALSE(BitAt(bits, i)) << "n=" << n << " i=" << i;
          }
        }
      }
    }
  }
}

TEST(SimdKernelTest, ForceScalarDisablesKernels) {
  const bool had_simd = simd::Enabled();
  {
    ScalarForceGuard guard(true);
    EXPECT_FALSE(simd::Enabled());
    int64_t vals[4] = {1, 2, 3, 4};
    uint64_t bits[1] = {0};
    EXPECT_FALSE(simd::CompareI64(vals, 4, 2, 0b010, bits));
  }
  EXPECT_EQ(simd::Enabled(), had_simd);
}

// ---------------------------------------------- end-to-end SIMD vs scalar

// Runs `sql` through the columnar engine twice — SIMD allowed, then
// forced-scalar — at the given thread count; results must be
// bit-identical tables (or the same error Status).
void ExpectSimdScalarIdentical(const Database& db, const std::string& sql,
                               size_t threads) {
  ExecOptions opts;
  opts.use_columnar = true;
  opts.parallel.threads = threads;
  const Result<Table> simd_result = ExecuteSql(sql, db, opts);
  ScalarForceGuard guard(true);
  const Result<Table> scalar_result = ExecuteSql(sql, db, opts);
  ASSERT_EQ(simd_result.ok(), scalar_result.ok())
      << sql << " (threads=" << threads << ")";
  if (!simd_result.ok()) {
    EXPECT_EQ(simd_result.status().ToString(),
              scalar_result.status().ToString())
        << sql;
    return;
  }
  ExpectTablesBitIdentical(simd_result.value(), scalar_result.value(),
                           sql + " (threads=" + std::to_string(threads) +
                               ", simd-vs-scalar)");
}

Database HomesDb(Table table) {
  Database db;
  EXPECT_TRUE(db.RegisterTable("homes", std::move(table)).ok());
  return db;
}

TEST(SimdEquivalenceTest, FuzzCorpusSimdVsScalar) {
  // 6000 rows = 3 morsels: multiple bitmap words per morsel plus a
  // partial tail, so the kernels' vector/tail split is on the line.
  const Database db = HomesDb(MakeHomes(6000, 101, 0.08, true));
  const std::filesystem::path corpus(AUTOCAT_FUZZ_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(corpus));
  size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    std::string sql((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    for (const size_t threads : kThreadCounts) {
      ExpectSimdScalarIdentical(db, sql, threads);
    }
    ++replayed;
  }
  EXPECT_GE(replayed, 10u) << "corpus directory looks truncated";
}

TEST(SimdEquivalenceTest, RandomizedQueriesSimdVsScalar) {
  const Schema schema = FuzzSchema();
  const Database db = HomesDb(MakeHomes(6000, 202, 0.1, true));
  Random rng(31337);
  for (int i = 0; i < 400; ++i) {
    const std::string sql = RandomQuery(rng, schema);
    for (const size_t threads : kThreadCounts) {
      ExpectSimdScalarIdentical(db, sql, threads);
    }
  }
}

// Profile compilation reaches kernel shapes SQL cannot (half-open range
// conditions, value sets): pin Filter's selection vector across the two
// configurations there too.
TEST(SimdEquivalenceTest, ProfileFiltersSimdVsScalar) {
  const Schema schema = FuzzSchema();
  const Table table = MakeHomes(6000, 404, 0.1, true);
  Database db;
  ASSERT_TRUE(db.RegisterTable("homes", Table(table)).ok());
  AUTOCAT_ASSERT_OK_AND_MOVE(std::shared_ptr<const ColumnarTable> shadow,
                             db.ColumnarFor("homes"));

  Random rng(555);
  size_t compiled_profiles = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string sql = RandomQuery(rng, schema);
    auto query = ParseQuery(sql);
    if (!query.ok()) {
      continue;
    }
    auto profile = SelectionProfile::FromQuery(query.value(), schema);
    if (!profile.ok()) {
      continue;
    }
    auto compiled =
        CompiledPredicate::CompileProfile(profile.value(), schema, shadow);
    if (!compiled.ok()) {
      ASSERT_EQ(compiled.status().code(), StatusCode::kNotSupported) << sql;
      continue;
    }
    ++compiled_profiles;
    for (const size_t threads : kThreadCounts) {
      ParallelOptions parallel;
      parallel.threads = threads;
      AUTOCAT_ASSERT_OK_AND_MOVE(std::vector<uint32_t> with_simd,
                                 compiled.value().Filter(parallel));
      std::vector<uint32_t> scalar;
      {
        ScalarForceGuard guard(true);
        AUTOCAT_ASSERT_OK_AND_MOVE(scalar,
                                   compiled.value().Filter(parallel));
      }
      EXPECT_EQ(with_simd, scalar)
          << sql << " (threads=" << threads << ")";
    }
  }
  EXPECT_GE(compiled_profiles, 30u)
      << "profile compiler refused too often to be a meaningful gate";
}

}  // namespace
}  // namespace autocat
