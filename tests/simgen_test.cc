// Tests for the synthetic-data substrate: geography, generators, personas.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "simgen/geo.h"
#include "workload/counts.h"
#include "simgen/homes_generator.h"
#include "simgen/user_simulator.h"
#include "simgen/workload_generator.h"

namespace autocat {
namespace {

// --------------------------------------------------------------- geography

TEST(GeographyTest, CatalogHasThePapersRegions) {
  const Geography geo = Geography::UnitedStates();
  EXPECT_GE(geo.num_regions(), 10u);
  EXPECT_TRUE(geo.FindRegion("Seattle/Bellevue").ok());
  EXPECT_TRUE(geo.FindRegion("Bay Area - Penin/SanJose").ok());
  EXPECT_TRUE(geo.FindRegion("NYC - Manhattan, Bronx").ok());
  EXPECT_FALSE(geo.FindRegion("Atlantis").ok());
  // Task 3 needs at least 15 NYC neighborhoods.
  EXPECT_GE(geo.FindRegion("NYC - Manhattan, Bronx")
                .value()
                ->neighborhoods.size(),
            15u);
}

TEST(GeographyTest, NeighborhoodsAreGloballyUnique) {
  const Geography geo = Geography::UnitedStates();
  const auto all = geo.AllNeighborhoods();
  const std::set<std::string> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), all.size());
}

TEST(GeographyTest, NeighborhoodLookupFindsOwner) {
  const Geography geo = Geography::UnitedStates();
  const auto region = geo.RegionOfNeighborhood("Redmond");
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(region.value()->name, "Seattle/Bellevue");
  EXPECT_TRUE(geo.RegionOfNeighborhood("redmond").ok());  // insensitive
  EXPECT_FALSE(geo.RegionOfNeighborhood("Narnia").ok());
}

TEST(GeographyTest, PopularitiesArePositive) {
  // The Geography must outlive the loop: regions() returns a reference
  // into the object, and iterating `UnitedStates().regions()` directly
  // leaves the temporary destroyed before the body runs (caught by ASan).
  const Geography geo = Geography::UnitedStates();
  for (const Region& region : geo.regions()) {
    EXPECT_GT(region.popularity, 0) << region.name;
    EXPECT_GT(region.price_center, 0) << region.name;
    EXPECT_FALSE(region.neighborhoods.empty()) << region.name;
  }
}

// -------------------------------------------------------------- generators

TEST(HomesGeneratorTest, GeneratesRequestedRows) {
  const Geography geo = Geography::UnitedStates();
  HomesGeneratorConfig config;
  config.num_rows = 2000;
  const HomesGenerator generator(&geo, config);
  const auto table = generator.Generate();
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2000u);
  EXPECT_EQ(table->num_columns(), 10u);
}

TEST(HomesGeneratorTest, DeterministicPerSeed) {
  const Geography geo = Geography::UnitedStates();
  HomesGeneratorConfig config;
  config.num_rows = 300;
  const auto a = HomesGenerator(&geo, config).Generate();
  const auto b = HomesGenerator(&geo, config).Generate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t r = 0; r < a->num_rows(); ++r) {
    for (size_t c = 0; c < a->num_columns(); ++c) {
      ASSERT_EQ(a->ValueAt(r, c), b->ValueAt(r, c));
    }
  }
  config.seed += 1;
  const auto other = HomesGenerator(&geo, config).Generate();
  ASSERT_TRUE(other.ok());
  bool any_difference = false;
  for (size_t r = 0; r < other->num_rows() && !any_difference; ++r) {
    any_difference = !(other->ValueAt(r, 4) == a->ValueAt(r, 4));
  }
  EXPECT_TRUE(any_difference);
}

TEST(HomesGeneratorTest, AllAttributesNonNullAndPlausible) {
  const Geography geo = Geography::UnitedStates();
  HomesGeneratorConfig config;
  config.num_rows = 3000;
  const auto table = HomesGenerator(&geo, config).Generate();
  ASSERT_TRUE(table.ok());
  const Schema& schema = table->schema();
  const size_t price = schema.ColumnIndex("price").value();
  const size_t beds = schema.ColumnIndex("bedroomcount").value();
  const size_t baths = schema.ColumnIndex("bathcount").value();
  const size_t year = schema.ColumnIndex("yearbuilt").value();
  const size_t sqft = schema.ColumnIndex("squarefootage").value();
  const size_t nb = schema.ColumnIndex("neighborhood").value();
  for (size_t r = 0; r < table->num_rows(); ++r) {
    for (size_t c = 0; c < table->num_columns(); ++c) {
      ASSERT_FALSE(table->ValueAt(r, c).is_null()) << "row " << r;
    }
    EXPECT_GE(table->ValueAt(r, price).int64_value(), 40000);
    EXPECT_LE(table->ValueAt(r, price).int64_value(), 8000000);
    EXPECT_GE(table->ValueAt(r, beds).int64_value(), 1);
    EXPECT_LE(table->ValueAt(r, beds).int64_value(), 9);
    EXPECT_GE(table->ValueAt(r, baths).int64_value(), 1);
    EXPECT_GE(table->ValueAt(r, year).int64_value(), 1900);
    EXPECT_LE(table->ValueAt(r, year).int64_value(), 2004);
    EXPECT_GE(table->ValueAt(r, sqft).int64_value(), 300);
    EXPECT_TRUE(
        geo.RegionOfNeighborhood(table->ValueAt(r, nb).string_value())
            .ok());
  }
}

TEST(HomesGeneratorTest, RegionalPriceLevelsOrdered) {
  const Geography geo = Geography::UnitedStates();
  HomesGeneratorConfig config;
  config.num_rows = 20000;
  const auto table = HomesGenerator(&geo, config).Generate();
  ASSERT_TRUE(table.ok());
  const size_t price = table->schema().ColumnIndex("price").value();
  const size_t nb = table->schema().ColumnIndex("neighborhood").value();
  double nyc_sum = 0;
  size_t nyc_count = 0;
  double austin_sum = 0;
  size_t austin_count = 0;
  for (size_t r = 0; r < table->num_rows(); ++r) {
    const auto region =
        geo.RegionOfNeighborhood(table->ValueAt(r, nb).string_value());
    ASSERT_TRUE(region.ok());
    if (region.value()->name == "NYC - Manhattan, Bronx") {
      nyc_sum += table->ValueAt(r, price).AsDouble();
      ++nyc_count;
    } else if (region.value()->name == "Austin") {
      austin_sum += table->ValueAt(r, price).AsDouble();
      ++austin_count;
    }
  }
  ASSERT_GT(nyc_count, 100u);
  ASSERT_GT(austin_count, 100u);
  EXPECT_GT(nyc_sum / nyc_count, 3 * (austin_sum / austin_count));
}

TEST(WorkloadGeneratorTest, EveryQueryParses) {
  const Geography geo = Geography::UnitedStates();
  const auto schema = HomesGenerator::ListPropertySchema();
  ASSERT_TRUE(schema.ok());
  WorkloadGeneratorConfig config;
  config.num_queries = 3000;
  const WorkloadGenerator generator(&geo, config);
  WorkloadParseReport report;
  const auto workload = generator.Generate(schema.value(), &report);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  EXPECT_EQ(report.total, 3000u);
  EXPECT_EQ(report.parsed, 3000u);
  EXPECT_EQ(report.parse_errors, 0u);
  EXPECT_EQ(report.unsupported, 0u);
}

TEST(WorkloadGeneratorTest, UsageFrequenciesMatchConfiguredOrder) {
  const Geography geo = Geography::UnitedStates();
  const auto schema = HomesGenerator::ListPropertySchema();
  ASSERT_TRUE(schema.ok());
  WorkloadGeneratorConfig config;
  config.num_queries = 8000;
  const WorkloadGenerator generator(&geo, config);
  const auto workload = generator.Generate(schema.value(), nullptr);
  ASSERT_TRUE(workload.ok());
  WorkloadStatsOptions stats_options;
  stats_options.split_intervals = {{"price", 5000},
                                   {"squarefootage", 100},
                                   {"yearbuilt", 5},
                                   {"bedroomcount", 1},
                                   {"bathcount", 1}};
  const auto stats = WorkloadStats::Build(workload.value(), schema.value(),
                                          stats_options);
  ASSERT_TRUE(stats.ok());
  // The Figure 4(a) ordering: neighborhood > bedrooms > price >
  // squarefootage > yearbuilt.
  EXPECT_GT(stats->AttrUsageCount("neighborhood"),
            stats->AttrUsageCount("bedroomcount"));
  EXPECT_GT(stats->AttrUsageCount("bedroomcount"),
            stats->AttrUsageCount("price"));
  EXPECT_GT(stats->AttrUsageCount("price"),
            stats->AttrUsageCount("squarefootage"));
  EXPECT_GT(stats->AttrUsageCount("squarefootage"),
            stats->AttrUsageCount("yearbuilt"));
  // The paper's six retained attributes at x = 0.4 — and only those.
  const double x = 0.4;
  for (const char* kept : {"neighborhood", "price", "bedroomcount",
                           "bathcount", "propertytype", "squarefootage"}) {
    EXPECT_GE(stats->AttrUsageFraction(kept), x) << kept;
  }
  for (const char* dropped : {"yearbuilt", "city", "state", "zipcode"}) {
    EXPECT_LT(stats->AttrUsageFraction(dropped), x) << dropped;
  }
}

TEST(WorkloadGeneratorTest, PriceEndpointsAreRound) {
  const Geography geo = Geography::UnitedStates();
  const auto schema = HomesGenerator::ListPropertySchema();
  ASSERT_TRUE(schema.ok());
  WorkloadGeneratorConfig config;
  config.num_queries = 1000;
  const auto workload =
      WorkloadGenerator(&geo, config).Generate(schema.value(), nullptr);
  ASSERT_TRUE(workload.ok());
  for (const WorkloadEntry& entry : workload->entries()) {
    const AttributeCondition* price = entry.profile.Find("price");
    if (price == nullptr) {
      continue;
    }
    ASSERT_TRUE(price->is_range());
    if (std::isfinite(price->range.lo)) {
      EXPECT_DOUBLE_EQ(std::fmod(price->range.lo, 25000.0), 0.0);
    }
    if (std::isfinite(price->range.hi)) {
      EXPECT_DOUBLE_EQ(std::fmod(price->range.hi, 25000.0), 0.0);
    }
  }
}

// ---------------------------------------------------------------- personas

TEST(StudyTasksTest, FourTasksMatchingThePaper) {
  const Geography geo = Geography::UnitedStates();
  const auto tasks = PaperStudyTasks(geo);
  ASSERT_TRUE(tasks.ok());
  ASSERT_EQ(tasks->size(), 4u);
  EXPECT_EQ((*tasks)[0].id, "Task 1");
  // Task 1: all Seattle/Bellevue neighborhoods, price < 1M.
  const AttributeCondition* nb1 = (*tasks)[0].query.Find("neighborhood");
  ASSERT_NE(nb1, nullptr);
  EXPECT_EQ(nb1->values.size(),
            geo.FindRegion("Seattle/Bellevue")
                .value()
                ->neighborhoods.size());
  const AttributeCondition* price1 = (*tasks)[0].query.Find("price");
  ASSERT_NE(price1, nullptr);
  EXPECT_DOUBLE_EQ(price1->range.hi, 1e6);
  EXPECT_FALSE(price1->range.hi_inclusive);
  // Task 3: exactly 15 NYC neighborhoods.
  EXPECT_EQ((*tasks)[2].query.Find("neighborhood")->values.size(), 15u);
  // Task 4 constrains bedrooms 3-4.
  const AttributeCondition* beds = (*tasks)[3].query.Find("bedroomcount");
  ASSERT_NE(beds, nullptr);
  EXPECT_DOUBLE_EQ(beds->range.lo, 3);
  EXPECT_DOUBLE_EQ(beds->range.hi, 4);
}

TEST(PersonaTest, ElevenPersonasWithVariedNoise) {
  const auto personas = DefaultPersonas();
  ASSERT_EQ(personas.size(), 11u);
  EXPECT_EQ(personas[0].name, "U1");
  EXPECT_EQ(personas[10].name, "U11");
  double min_noise = 1;
  double max_noise = 0;
  for (const Persona& persona : personas) {
    min_noise = std::min(min_noise, persona.decision_noise);
    max_noise = std::max(max_noise, persona.decision_noise);
  }
  EXPECT_LT(min_noise, 0.05);
  EXPECT_GE(max_noise, 0.25);
}

TEST(PersonaTest, InterestNarrowsTheTask) {
  const Geography geo = Geography::UnitedStates();
  const auto tasks = PaperStudyTasks(geo);
  ASSERT_TRUE(tasks.ok());
  const auto personas = DefaultPersonas();
  for (const StudyTask& task : tasks.value()) {
    for (const Persona& persona : personas) {
      const auto interest = PersonaInterest(task, persona, geo);
      ASSERT_TRUE(interest.ok());
      // Fewer neighborhoods than the task, all within the task's set.
      const auto* task_nb = task.query.Find("neighborhood");
      const auto* my_nb = interest->Find("neighborhood");
      ASSERT_NE(my_nb, nullptr);
      EXPECT_LE(my_nb->values.size(), 4u);
      EXPECT_GE(my_nb->values.size(), 2u);
      for (const Value& v : my_nb->values) {
        EXPECT_TRUE(task_nb->values.count(v) > 0) << v.ToString();
      }
      // Price band inside the task's window.
      const auto* task_price = task.query.Find("price");
      const auto* my_price = interest->Find("price");
      ASSERT_NE(my_price, nullptr);
      if (task_price != nullptr && std::isfinite(task_price->range.hi)) {
        EXPECT_LE(my_price->range.hi, task_price->range.hi + 1e-9);
      }
    }
  }
}

TEST(PersonaTest, InterestDeterministicPerPersonaAndTask) {
  const Geography geo = Geography::UnitedStates();
  const auto tasks = PaperStudyTasks(geo);
  const auto personas = DefaultPersonas();
  const auto a = PersonaInterest((*tasks)[0], personas[2], geo);
  const auto b = PersonaInterest((*tasks)[0], personas[2], geo);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->ToString(), b->ToString());
  const auto other_task = PersonaInterest((*tasks)[1], personas[2], geo);
  const auto other_persona = PersonaInterest((*tasks)[0], personas[3], geo);
  EXPECT_NE(other_task->ToString(), a->ToString());
  EXPECT_NE(other_persona->ToString(), a->ToString());
}

}  // namespace
}  // namespace autocat
