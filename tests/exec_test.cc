// Tests for predicate evaluation and the selection/projection executor.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/predicate.h"
#include "sql/parser.h"

namespace autocat {
namespace {

Schema HomesSchema() {
  auto schema = Schema::Create({
      ColumnDef("neighborhood", ValueType::kString,
                ColumnKind::kCategorical),
      ColumnDef("price", ValueType::kInt64, ColumnKind::kNumeric),
      ColumnDef("bedroomcount", ValueType::kInt64, ColumnKind::kNumeric),
  });
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

Table HomesTable() {
  Table table(HomesSchema());
  EXPECT_TRUE(
      table.AppendRow({Value("Redmond"), Value(210000), Value(3)}).ok());
  EXPECT_TRUE(
      table.AppendRow({Value("Bellevue"), Value(250000), Value(4)}).ok());
  EXPECT_TRUE(
      table.AppendRow({Value("Seattle"), Value(180000), Value(2)}).ok());
  EXPECT_TRUE(table.AppendRow({Value("Seattle"), Value(), Value(5)}).ok());
  return table;
}

Result<bool> Eval(const std::string& predicate, const Row& row) {
  auto expr = ParseExpression(predicate);
  if (!expr.ok()) {
    return expr.status();
  }
  return EvaluatePredicate(*expr.value(), row, HomesSchema());
}

const Row kRedmond = {Value("Redmond"), Value(210000), Value(3)};
const Row kNullPrice = {Value("Seattle"), Value(), Value(5)};

TEST(PredicateTest, Comparisons) {
  EXPECT_TRUE(Eval("price = 210000", kRedmond).value());
  EXPECT_FALSE(Eval("price = 210001", kRedmond).value());
  EXPECT_TRUE(Eval("price <> 210001", kRedmond).value());
  EXPECT_TRUE(Eval("price < 300000", kRedmond).value());
  EXPECT_TRUE(Eval("price <= 210000", kRedmond).value());
  EXPECT_FALSE(Eval("price > 210000", kRedmond).value());
  EXPECT_TRUE(Eval("price >= 210000", kRedmond).value());
  EXPECT_TRUE(Eval("neighborhood = 'Redmond'", kRedmond).value());
}

TEST(PredicateTest, NullNeverMatchesComparisons) {
  EXPECT_FALSE(Eval("price = 210000", kNullPrice).value());
  EXPECT_FALSE(Eval("price <> 210000", kNullPrice).value());
  EXPECT_FALSE(Eval("price < 1000000", kNullPrice).value());
  EXPECT_FALSE(Eval("price BETWEEN 0 AND 9999999", kNullPrice).value());
  EXPECT_FALSE(Eval("price IN (210000)", kNullPrice).value());
}

TEST(PredicateTest, IsNull) {
  EXPECT_TRUE(Eval("price IS NULL", kNullPrice).value());
  EXPECT_FALSE(Eval("price IS NULL", kRedmond).value());
  EXPECT_TRUE(Eval("price IS NOT NULL", kRedmond).value());
}

TEST(PredicateTest, InList) {
  EXPECT_TRUE(
      Eval("neighborhood IN ('Redmond', 'Bellevue')", kRedmond).value());
  EXPECT_FALSE(Eval("neighborhood IN ('Seattle')", kRedmond).value());
  EXPECT_TRUE(Eval("neighborhood NOT IN ('Seattle')", kRedmond).value());
  EXPECT_TRUE(Eval("bedroomcount IN (1, 3, 5)", kRedmond).value());
}

TEST(PredicateTest, Between) {
  EXPECT_TRUE(Eval("price BETWEEN 200000 AND 220000", kRedmond).value());
  EXPECT_TRUE(Eval("price BETWEEN 210000 AND 210000", kRedmond).value());
  EXPECT_FALSE(Eval("price BETWEEN 220000 AND 300000", kRedmond).value());
  EXPECT_TRUE(
      Eval("price NOT BETWEEN 220000 AND 300000", kRedmond).value());
}

TEST(PredicateTest, Logical) {
  EXPECT_TRUE(
      Eval("price > 100 AND bedroomcount = 3 AND neighborhood = 'Redmond'",
           kRedmond)
          .value());
  EXPECT_FALSE(Eval("price > 100 AND bedroomcount = 4", kRedmond).value());
  EXPECT_TRUE(Eval("bedroomcount = 4 OR price = 210000", kRedmond).value());
  EXPECT_FALSE(Eval("bedroomcount = 4 OR price = 0", kRedmond).value());
}

TEST(PredicateTest, TypeMismatchIsAnError) {
  EXPECT_FALSE(Eval("price = 'expensive'", kRedmond).ok());
  EXPECT_FALSE(Eval("neighborhood < 5", kRedmond).ok());
  EXPECT_FALSE(Eval("neighborhood IN (1, 2)", kRedmond).ok());
}

TEST(PredicateTest, UnknownColumnIsAnError) {
  EXPECT_FALSE(Eval("bogus = 1", kRedmond).ok());
}

// ---------------------------------------------------------------- database

TEST(DatabaseTest, RegisterAndLookup) {
  Database db;
  ASSERT_TRUE(db.RegisterTable("Homes", HomesTable()).ok());
  EXPECT_TRUE(db.HasTable("homes"));
  EXPECT_TRUE(db.GetTable("HOMES").ok());
  EXPECT_FALSE(db.GetTable("other").ok());
  EXPECT_FALSE(db.RegisterTable("homes", HomesTable()).ok());
  db.PutTable("homes", Table(HomesSchema()));  // replace allowed
  EXPECT_EQ(db.GetTable("homes").value()->num_rows(), 0u);
  EXPECT_EQ(db.num_tables(), 1u);
}

// The pointer-stability contract documented on Database::GetTable: the
// serving layer holds table pointers across PutTable/RegisterTable calls
// and relies on the address never moving.
TEST(DatabaseTest, GetTablePointerIsStableAcrossMutations) {
  Database db;
  ASSERT_TRUE(db.RegisterTable("Homes", HomesTable()).ok());
  auto homes = db.GetTable("homes");
  ASSERT_TRUE(homes.ok());
  const Table* const before = homes.value();
  const size_t rows_before = before->num_rows();

  // Registering other tables never moves an existing one.
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(
        db.RegisterTable("t" + std::to_string(i), HomesTable()).ok());
  }
  ASSERT_TRUE(db.GetTable("homes").ok());
  EXPECT_EQ(db.GetTable("homes").value(), before);

  // PutTable replaces the contents in place: same address, new data.
  db.PutTable("Homes", Table(HomesSchema()));
  ASSERT_TRUE(db.GetTable("homes").ok());
  EXPECT_EQ(db.GetTable("homes").value(), before);
  EXPECT_EQ(before->num_rows(), 0u);
  EXPECT_NE(before->num_rows(), rows_before);

  // And another PutTable restores rows behind the very same pointer.
  db.PutTable("Homes", HomesTable());
  EXPECT_EQ(db.GetTable("homes").value(), before);
  EXPECT_EQ(before->num_rows(), rows_before);
}

// ---------------------------------------------------------------- executor

TEST(ExecutorTest, SelectStarNoWhere) {
  Database db;
  db.PutTable("homes", HomesTable());
  const auto result = ExecuteSql("SELECT * FROM homes", db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 4u);
  EXPECT_EQ(result->num_columns(), 3u);
}

TEST(ExecutorTest, Filter) {
  Database db;
  db.PutTable("homes", HomesTable());
  const auto result = ExecuteSql(
      "SELECT * FROM homes WHERE price BETWEEN 200000 AND 260000", db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2u);
}

TEST(ExecutorTest, FilterAndProject) {
  Database db;
  db.PutTable("homes", HomesTable());
  const auto result = ExecuteSql(
      "SELECT neighborhood FROM homes WHERE bedroomcount >= 4", db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(result->num_columns(), 1u);
  EXPECT_EQ(result->ValueAt(0, 0).string_value(), "Bellevue");
}

TEST(ExecutorTest, EmptyResultKeepsSchema) {
  Database db;
  db.PutTable("homes", HomesTable());
  const auto result =
      ExecuteSql("SELECT * FROM homes WHERE price > 99999999", db);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  EXPECT_EQ(result->num_columns(), 3u);
}

TEST(ExecutorTest, MissingTableErrors) {
  Database db;
  EXPECT_FALSE(ExecuteSql("SELECT * FROM nothere", db).ok());
}

TEST(ExecutorTest, BadSqlErrors) {
  Database db;
  db.PutTable("homes", HomesTable());
  EXPECT_FALSE(ExecuteSql("SELEC * FROM homes", db).ok());
  EXPECT_FALSE(ExecuteSql("SELECT * FROM homes WHERE", db).ok());
}

TEST(ExecutorTest, PredicateErrorSurfaces) {
  Database db;
  db.PutTable("homes", HomesTable());
  EXPECT_FALSE(
      ExecuteSql("SELECT * FROM homes WHERE neighborhood > 5", db).ok());
}

TEST(FilterTableTest, NullPredicateKeepsAll) {
  const Table table = HomesTable();
  const auto indices = FilterTable(table, nullptr);
  ASSERT_TRUE(indices.ok());
  EXPECT_EQ(indices->size(), 4u);
}

}  // namespace
}  // namespace autocat
