// Tests for the fixed-boundary histogram behind the service metrics.

#include <gtest/gtest.h>

#include "common/histogram.h"

namespace autocat {
namespace {

TEST(HistogramTest, EmptyReportsZeros) {
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.PercentileEstimate(50), 0.0);
}

TEST(HistogramTest, BasicAccounting) {
  Histogram h({1.0, 2.0, 4.0});
  h.Add(0.5);
  h.Add(1.5);
  h.Add(3.0);
  h.Add(3.5);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 8.5);
  EXPECT_DOUBLE_EQ(h.mean(), 8.5 / 4);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 3.5);
}

TEST(HistogramTest, BucketPlacementIsInclusiveOfUpperBound) {
  Histogram h({1.0, 2.0, 4.0});
  h.Add(1.0);   // lands in the first bucket (v <= bound)
  h.Add(1.01);  // second bucket
  h.Add(100);   // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 0u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);  // overflow
}

TEST(HistogramTest, MergeCombinesCountsAndExtremes) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 2.0});
  a.Add(0.5);
  b.Add(1.5);
  b.Add(10.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 12.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  EXPECT_EQ(a.bucket_counts()[0], 1u);
  EXPECT_EQ(a.bucket_counts()[1], 1u);
  EXPECT_EQ(a.bucket_counts()[2], 1u);
}

TEST(HistogramTest, PercentilesAreMonotonicAndBounded) {
  Histogram h = Histogram::LatencyMs();
  for (int i = 1; i <= 1000; ++i) {
    h.Add(i * 0.1);  // 0.1 .. 100 ms
  }
  const double p50 = h.PercentileEstimate(50);
  const double p90 = h.PercentileEstimate(90);
  const double p99 = h.PercentileEstimate(99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Linear interpolation within exponential buckets is coarse, but the
  // estimates must bracket the true quantiles' buckets.
  EXPECT_GT(p50, 10.0);
  EXPECT_LE(p99, h.upper_bounds().back());
}

TEST(HistogramTest, OverflowPercentileReportsObservedMax) {
  Histogram h({1.0});
  h.Add(500.0);
  EXPECT_DOUBLE_EQ(h.PercentileEstimate(99), 500.0);
}

TEST(HistogramTest, ToJsonIsDeterministic) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 2.0});
  for (Histogram* h : {&a, &b}) {
    h->Add(0.25);
    h->Add(1.75);
  }
  EXPECT_EQ(a.ToJson(), b.ToJson());
  EXPECT_EQ(a.ToJson().find("{\"count\":2,"), 0u);
}

TEST(HistogramTest, LatencyScaleCoversMicrosecondsToSeconds) {
  const Histogram h = Histogram::LatencyMs();
  EXPECT_GE(h.upper_bounds().size(), 16u);
  EXPECT_LE(h.upper_bounds().front(), 0.01);
  EXPECT_GE(h.upper_bounds().back(), 1000.0);
}

}  // namespace
}  // namespace autocat
