// Tests for presentation-order optimization: the Appendix A theorem (the
// ascending 1/P + CostOne ordering is optimal) and the paper's descending-P
// heuristic.

#include "core/ordering.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/random.h"

namespace autocat {
namespace {

TEST(OrderedCostTest, HandComputed) {
  // Two categories: p = {1, 0.5}, cost = {2, 3}, K = 1.
  // First explored: 1 * (1*1 + 2) = 3. Second: 0 * ... = 0. Total 3.
  EXPECT_DOUBLE_EQ(OrderedShowCatCostOne({1.0, 0.5}, {2, 3}, 1.0), 3.0);
  // Reversed: 0.5*(1 + 3) + 0.5*1*(2 + 2) = 2 + 2 = 4.
  EXPECT_DOUBLE_EQ(OrderedShowCatCostOne({0.5, 1.0}, {3, 2}, 1.0), 4.0);
}

TEST(OrderedCostTest, PermutationOverload) {
  const std::vector<double> probs = {1.0, 0.5};
  const std::vector<double> costs = {2, 3};
  EXPECT_DOUBLE_EQ(OrderedShowCatCostOne(probs, costs, 1.0, {0, 1}), 3.0);
  EXPECT_DOUBLE_EQ(OrderedShowCatCostOne(probs, costs, 1.0, {1, 0}), 4.0);
}

TEST(OrderedCostTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(OrderedShowCatCostOne({}, {}, 1.0), 0.0);
}

TEST(OptimalOrderingTest, SortsByCriterion) {
  // 1/P + C: a -> 1/0.5 + 1 = 3; b -> 1/1 + 0.5 = 1.5; c -> 1/0.1+0 = 10.
  const auto order = OptimalOneOrdering({0.5, 1.0, 0.1}, {1, 0.5, 0});
  EXPECT_EQ(order, (std::vector<size_t>{1, 0, 2}));
}

TEST(OptimalOrderingTest, ZeroProbabilitySortsLast) {
  const auto order = OptimalOneOrdering({0.0, 0.5}, {0, 100});
  EXPECT_EQ(order, (std::vector<size_t>{1, 0}));
}

TEST(ProbabilityOrderingTest, DescendingAndStable) {
  const auto order = ProbabilityDescendingOrdering({0.2, 0.9, 0.2, 0.5});
  EXPECT_EQ(order, (std::vector<size_t>{1, 3, 0, 2}));
}

TEST(BruteForceTest, RejectsOversizedInputs) {
  std::vector<double> probs(10, 0.5);
  std::vector<double> costs(10, 1.0);
  EXPECT_FALSE(BruteForceBestOrdering(probs, costs, 1.0).ok());
  EXPECT_FALSE(BruteForceBestOrdering({0.5}, {1.0, 2.0}, 1.0).ok());
}

// Appendix A, verified: on random instances the analytic ordering by
// ascending K/P + CostOne achieves the brute-force optimum (the paper
// states the K = 1 case as 1/P + CostOne; the exchange argument
// generalizes).
class AppendixATest : public ::testing::TestWithParam<int> {};

TEST_P(AppendixATest, AnalyticOrderingMatchesBruteForce) {
  Random rng(static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = static_cast<size_t>(rng.Uniform(2, 6));
    std::vector<double> probs(n);
    std::vector<double> costs(n);
    for (size_t i = 0; i < n; ++i) {
      probs[i] = rng.UniformReal(0.05, 1.0);
      costs[i] = rng.UniformReal(0.0, 50.0);
    }
    const double k = rng.UniformReal(0.2, 3.0);
    const auto best = BruteForceBestOrdering(probs, costs, k);
    ASSERT_TRUE(best.ok());
    const double brute_cost =
        OrderedShowCatCostOne(probs, costs, k, best.value());
    const double analytic_cost = OrderedShowCatCostOne(
        probs, costs, k, OptimalOneOrdering(probs, costs, k));
    EXPECT_NEAR(analytic_cost, brute_cost, 1e-9)
        << "seed " << GetParam() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AppendixATest, ::testing::Range(1, 9));

// The descending-P heuristic is not always optimal but must never be worse
// than the *worst* ordering, and must coincide with the optimum when all
// subtree costs are equal (the assumption the paper makes explicit).
class HeuristicOrderingTest : public ::testing::TestWithParam<int> {};

TEST_P(HeuristicOrderingTest, OptimalWhenCostsAreEqual) {
  Random rng(static_cast<uint64_t>(GetParam()) + 100);
  const size_t n = static_cast<size_t>(rng.Uniform(2, 6));
  std::vector<double> probs(n);
  const double shared_cost = rng.UniformReal(0, 20);
  std::vector<double> costs(n, shared_cost);
  for (size_t i = 0; i < n; ++i) {
    probs[i] = rng.UniformReal(0.05, 1.0);
  }
  const auto best = BruteForceBestOrdering(probs, costs, 1.0);
  ASSERT_TRUE(best.ok());
  EXPECT_NEAR(OrderedShowCatCostOne(probs, costs, 1.0,
                                    ProbabilityDescendingOrdering(probs)),
              OrderedShowCatCostOne(probs, costs, 1.0, best.value()),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeuristicOrderingTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace autocat
