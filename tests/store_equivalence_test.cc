// Store-vs-memory equivalence gate: a table served zero-copy out of a
// mapped segment store must behave bit-identically to its in-memory twin
// — same result cells (doubles by bit pattern), same row order, same
// error Statuses — through every execution path: the row-at-a-time
// interpreter, the columnar kernels at threads 1 and 7, and a cold
// CategorizationService request. Replays the checked-in SQL fuzz corpus
// plus randomized queries over a table seeded with hostile cells.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "exec/executor.h"
#include "serve/service.h"
#include "storage/table.h"
#include "store/store.h"
#include "store/writer.h"
#include "workload/workload.h"

namespace autocat {
namespace {

namespace fs = std::filesystem;

// The homes schema of the SQL fuzz harness: corpus queries reference
// exactly these columns and types.
Schema FuzzSchema() {
  auto schema = Schema::Create({
      ColumnDef("neighborhood", ValueType::kString,
                ColumnKind::kCategorical),
      ColumnDef("city", ValueType::kString, ColumnKind::kCategorical),
      ColumnDef("propertytype", ValueType::kString,
                ColumnKind::kCategorical),
      ColumnDef("price", ValueType::kDouble, ColumnKind::kNumeric),
      ColumnDef("bedroomcount", ValueType::kInt64, ColumnKind::kNumeric),
      ColumnDef("bathcount", ValueType::kDouble, ColumnKind::kNumeric),
      ColumnDef("squarefootage", ValueType::kDouble, ColumnKind::kNumeric),
      ColumnDef("yearbuilt", ValueType::kInt64, ColumnKind::kNumeric),
  });
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

const char* const kNeighborhoods[] = {"Redmond",  "Bellevue", "Seattle",
                                      "Kirkland", "Ballard",  "Queen Anne"};
const char* const kCities[] = {"Seattle", "Bellevue", "Redmond"};
const char* const kTypes[] = {"Single Family", "Condo", "Townhome"};

// Deterministic rows over FuzzSchema with NULLs and hostile cells (NaN,
// signed zeros, int64 extremes, 2^53 + 1) — the same value population as
// the columnar equivalence gate.
std::vector<Row> MakeHomesRows(size_t n, uint64_t seed, double null_p,
                               bool with_hostile_cells) {
  Random rng(seed);
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Row row;
    auto cell = [&](Value v) {
      row.push_back(rng.Bernoulli(null_p) ? Value() : std::move(v));
    };
    cell(Value(kNeighborhoods[rng.Uniform(0, 5)]));
    cell(Value(kCities[rng.Uniform(0, 2)]));
    cell(Value(kTypes[rng.Uniform(0, 2)]));
    double price = rng.UniformReal(50000, 900000);
    if (rng.Bernoulli(0.2)) {
      price = 25000.0 * rng.Uniform(2, 30);
    }
    cell(Value(price));
    cell(Value(rng.Uniform(0, 8)));
    cell(Value(0.25 * rng.Uniform(4, 20)));
    cell(Value(rng.UniformReal(300, 8000)));
    cell(Value(rng.Uniform(1900, 2026)));
    if (with_hostile_cells && i % 17 == 0) {
      switch (i / 17 % 6) {
        case 0:
          row[3] = Value(std::numeric_limits<double>::quiet_NaN());
          break;
        case 1:
          row[3] = Value(-0.0);
          break;
        case 2:
          row[3] = Value(0.0);
          break;
        case 3:
          row[4] = Value(std::numeric_limits<int64_t>::max());
          break;
        case 4:
          row[4] = Value(std::numeric_limits<int64_t>::min());
          break;
        default:
          row[7] = Value(int64_t{9007199254740993});  // 2^53 + 1
          break;
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

bool BitIdentical(const Value& a, const Value& b) {
  if (a.type() != b.type()) {
    return false;
  }
  switch (a.type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kInt64:
      return a.int64_value() == b.int64_value();
    case ValueType::kDouble: {
      uint64_t ba = 0;
      uint64_t bb = 0;
      const double da = a.double_value();
      const double db = b.double_value();
      std::memcpy(&ba, &da, sizeof(ba));
      std::memcpy(&bb, &db, sizeof(bb));
      return ba == bb;
    }
    case ValueType::kString:
      return a.string_value() == b.string_value();
  }
  return false;
}

void ExpectTablesBitIdentical(const Table& expected, const Table& got,
                              const std::string& context) {
  ASSERT_EQ(expected.num_rows(), got.num_rows()) << context;
  ASSERT_EQ(expected.schema().num_columns(), got.schema().num_columns())
      << context;
  for (size_t r = 0; r < expected.num_rows(); ++r) {
    for (size_t c = 0; c < expected.schema().num_columns(); ++c) {
      ASSERT_TRUE(
          BitIdentical(expected.CellValue(r, c), got.CellValue(r, c)))
          << context << " differs at row " << r << " col " << c << ": "
          << expected.CellValue(r, c).ToString() << " vs "
          << got.CellValue(r, c).ToString();
    }
  }
}

// Shared fixture: the same rows registered twice — once as an in-memory
// row table, once round-tripped through a store file and mapped back.
class StoreEquivalenceFixture {
 public:
  StoreEquivalenceFixture(size_t n, uint64_t seed, double null_p,
                          bool hostile, const std::string& tag) {
    store_path_ = (fs::temp_directory_path() /
                   ("autocat_store_equiv_" + tag + "_" +
                    std::to_string(::getpid()) + ".store"))
                      .string();
    const Schema schema = FuzzSchema();
    const std::vector<Row> rows = MakeHomesRows(n, seed, null_p, hostile);

    Table mem(schema);
    for (const Row& row : rows) {
      EXPECT_TRUE(mem.AppendRow(row).ok());
    }
    EXPECT_TRUE(mem_db_.RegisterTable("homes", std::move(mem)).ok());

    StoreWriterOptions options;
    options.memory_budget_bytes = 32 << 10;  // force spill runs
    auto writer = StoreWriter::Create(store_path_, options);
    EXPECT_TRUE(writer.ok()) << writer.status().ToString();
    EXPECT_TRUE(writer.value()->BeginTable("homes", schema).ok());
    for (const Row& row : rows) {
      EXPECT_TRUE(writer.value()->Append(row).ok());
    }
    EXPECT_TRUE(writer.value()->FinishTable().ok());
    EXPECT_TRUE(writer.value()->Finish().ok());
    EXPECT_TRUE(AttachStoreTables(store_path_, &store_db_).ok());
  }

  ~StoreEquivalenceFixture() {
    std::error_code ec;
    fs::remove(store_path_, ec);
  }

  // Runs `sql` through four paths — memory/store x row-interpreter/
  // columnar kernels — and requires one shared outcome.
  void ExpectEquivalent(const std::string& sql, size_t threads) const {
    ExecOptions row_opts;
    row_opts.use_columnar = false;
    ExecOptions col_opts;
    col_opts.use_columnar = true;
    col_opts.parallel.threads = threads;

    const Result<Table> baseline = ExecuteSql(sql, mem_db_, row_opts);
    const Result<Table> candidates[] = {
        ExecuteSql(sql, mem_db_, col_opts),
        ExecuteSql(sql, store_db_, row_opts),
        ExecuteSql(sql, store_db_, col_opts),
    };
    const char* const names[] = {"mem-columnar", "store-row",
                                 "store-columnar"};
    for (size_t i = 0; i < 3; ++i) {
      const std::string context = sql + " [" + names[i] +
                                  ", threads=" + std::to_string(threads) +
                                  "]";
      ASSERT_EQ(baseline.ok(), candidates[i].ok())
          << context << ": "
          << (baseline.ok() ? candidates[i] : baseline)
                 .status()
                 .ToString();
      if (!baseline.ok()) {
        EXPECT_EQ(baseline.status().ToString(),
                  candidates[i].status().ToString())
            << context;
        continue;
      }
      ExpectTablesBitIdentical(baseline.value(), candidates[i].value(),
                               context);
    }
  }

  const Database& mem_db() const { return mem_db_; }
  const Database& store_db() const { return store_db_; }
  const std::string& store_path() const { return store_path_; }

 private:
  std::string store_path_;
  Database mem_db_;
  Database store_db_;
};

TEST(StoreEquivalenceTest, FuzzCorpusStoreVsMemory) {
  const StoreEquivalenceFixture f(500, 101, 0.08, true, "corpus");
  const fs::path corpus(AUTOCAT_FUZZ_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(corpus));
  size_t replayed = 0;
  for (const auto& entry : fs::directory_iterator(corpus)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    std::string sql((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    for (const size_t threads : {size_t{1}, size_t{7}}) {
      f.ExpectEquivalent(sql, threads);
    }
    ++replayed;
  }
  EXPECT_GE(replayed, 10u) << "corpus directory looks truncated";
}

std::string RandomLiteral(Random& rng, size_t col) {
  if (col <= 2) {
    const char* const* vocab =
        col == 0 ? kNeighborhoods : (col == 1 ? kCities : kTypes);
    const int64_t hi = col == 0 ? 5 : 2;
    return std::string("'") + vocab[rng.Uniform(0, hi)] + "'";
  }
  switch (rng.Uniform(0, 3)) {
    case 0:
      return std::to_string(rng.Uniform(-5, 1000000));
    case 1:
      return std::to_string(25000.0 * rng.Uniform(0, 30));
    case 2:
      return "9007199254740993";  // 2^53 + 1
    default:
      return std::to_string(rng.UniformReal(0, 900000));
  }
}

std::string RandomCondition(Random& rng, const Schema& schema) {
  const bool hostile = rng.Bernoulli(0.15);
  const size_t col = static_cast<size_t>(rng.Uniform(0, 7));
  std::string name =
      hostile && rng.Bernoulli(0.3) ? "bogus" : schema.column(col).name;
  const size_t lit_col =
      hostile ? static_cast<size_t>(rng.Uniform(0, 7)) : col;
  switch (rng.Uniform(0, 6)) {
    case 0:
      return name + " = " + RandomLiteral(rng, lit_col);
    case 1:
      return name + " <> " + RandomLiteral(rng, lit_col);
    case 2: {
      const char* const ops[] = {"<", "<=", ">", ">="};
      return name + " " + ops[rng.Uniform(0, 3)] + " " +
             RandomLiteral(rng, lit_col);
    }
    case 3:
      return name + (rng.Bernoulli(0.3) ? " NOT BETWEEN " : " BETWEEN ") +
             RandomLiteral(rng, lit_col) + " AND " +
             RandomLiteral(rng, lit_col);
    case 4: {
      std::string list = RandomLiteral(rng, lit_col);
      const int64_t extra = rng.Uniform(0, 3);
      for (int64_t i = 0; i < extra; ++i) {
        list += ", " + RandomLiteral(rng, lit_col);
      }
      return name + (rng.Bernoulli(0.3) ? " NOT IN (" : " IN (") + list +
             ")";
    }
    default:
      return name + (rng.Bernoulli(0.5) ? " IS NULL" : " IS NOT NULL");
  }
}

TEST(StoreEquivalenceTest, RandomizedQueriesStoreVsMemory) {
  const StoreEquivalenceFixture f(600, 202, 0.1, true, "random");
  const Schema schema = FuzzSchema();
  Random rng(778);
  for (int i = 0; i < 150; ++i) {
    std::string sql = "SELECT * FROM homes WHERE ";
    const int64_t conds = rng.Uniform(1, 3);
    for (int64_t c = 0; c < conds; ++c) {
      if (c > 0) {
        sql += rng.Bernoulli(0.5) ? " AND " : " OR ";
      }
      sql += RandomCondition(rng, schema);
    }
    for (const size_t threads : {size_t{1}, size_t{7}}) {
      f.ExpectEquivalent(sql, threads);
    }
  }
}

TEST(StoreEquivalenceTest, TableOperatorsStoreVsMemory) {
  const StoreEquivalenceFixture f(400, 303, 0.1, false, "ops");
  const Table& mem = **f.mem_db().GetTable("homes");
  const Table& mapped = **f.store_db().GetTable("homes");
  ASSERT_TRUE(mem.has_rows());
  ASSERT_FALSE(mapped.has_rows());

  // Whole-table scan equivalence.
  ExpectTablesBitIdentical(mem, mapped, "identity");

  // Projection.
  auto p_mem = mem.Project({"price", "neighborhood"});
  auto p_map = mapped.Project({"price", "neighborhood"});
  ASSERT_TRUE(p_mem.ok() && p_map.ok());
  ExpectTablesBitIdentical(p_mem.value(), p_map.value(), "project");

  // Row selection.
  std::vector<size_t> picks;
  for (size_t r = 0; r < mem.num_rows(); r += 3) {
    picks.push_back(r);
  }
  auto s_mem = mem.SelectRows(picks);
  auto s_map = mapped.SelectRows(picks);
  ASSERT_TRUE(s_mem.ok() && s_map.ok());
  ExpectTablesBitIdentical(s_mem.value(), s_map.value(), "select");

  // Distinct values and min/max per column.
  for (size_t c = 0; c < mem.num_columns(); ++c) {
    auto d_mem = mem.DistinctValues(c);
    auto d_map = mapped.DistinctValues(c);
    ASSERT_TRUE(d_mem.ok() && d_map.ok());
    ASSERT_EQ(d_mem.value().size(), d_map.value().size()) << "col " << c;
    for (size_t i = 0; i < d_mem.value().size(); ++i) {
      EXPECT_TRUE(BitIdentical(d_mem.value()[i], d_map.value()[i]))
          << "col " << c << " distinct " << i;
    }
    auto m_mem = mem.MinMax(c);
    auto m_map = mapped.MinMax(c);
    ASSERT_EQ(m_mem.ok(), m_map.ok()) << "col " << c;
    if (m_mem.ok()) {
      EXPECT_TRUE(
          BitIdentical(m_mem.value().first, m_map.value().first));
      EXPECT_TRUE(
          BitIdentical(m_mem.value().second, m_map.value().second));
    }
  }

  // Appends are refused on the mapped table.
  Table& mutable_mapped = const_cast<Table&>(mapped);
  EXPECT_FALSE(mutable_mapped.AppendRow(mem.CopyRow(0)).ok());
}

// Cold-serve equivalence: two services over the same workload — one with
// the in-memory table, one with the mapped store — must produce
// bit-identical result tables and category trees for cache-miss
// requests.
TEST(StoreEquivalenceTest, ColdServeStoreVsMemory) {
  const StoreEquivalenceFixture f(500, 404, 0.05, false, "serve");
  const Schema schema = FuzzSchema();
  const std::vector<std::string> sqls = {
      "SELECT * FROM homes WHERE price BETWEEN 100000 AND 400000",
      "SELECT * FROM homes WHERE neighborhood IN ('Redmond', 'Bellevue') "
      "AND bedroomcount >= 2",
      "SELECT * FROM homes WHERE propertytype = 'Condo'",
      "SELECT * FROM homes WHERE yearbuilt >= 1990 AND squarefootage "
      "BETWEEN 1000 AND 3000",
  };
  const Workload workload = Workload::Parse(sqls, schema, nullptr);
  ASSERT_EQ(workload.size(), sqls.size());

  auto make_service = [&](const Database& source) {
    Database db;
    const Result<const Table*> table = source.GetTable("homes");
    EXPECT_TRUE(table.ok());
    // Column-backed tables share the mapping; row tables are copied.
    if (table.value()->has_rows()) {
      EXPECT_TRUE(db.RegisterTable("homes", Table(*table.value())).ok());
    } else {
      EXPECT_TRUE(
          db.RegisterTable(
                "homes",
                Table::FromColumnar(table.value()->schema(),
                                    table.value()->columnar_backing()))
              .ok());
    }
    ServiceOptions options;
    options.stats.split_intervals = {{"price", 5000},
                                     {"squarefootage", 100},
                                     {"yearbuilt", 5},
                                     {"bedroomcount", 1},
                                     {"bathcount", 1}};
    return std::make_unique<CategorizationService>(
        std::move(db), Workload(workload), std::move(options));
  };
  auto mem_service = make_service(f.mem_db());
  auto store_service = make_service(f.store_db());

  for (const std::string& sql : sqls) {
    ServeRequest request;
    request.sql = sql;
    request.bypass_cache = true;  // always the cold path
    const Result<ServeResponse> mem_r = mem_service->Handle(request);
    const Result<ServeResponse> store_r = store_service->Handle(request);
    ASSERT_EQ(mem_r.ok(), store_r.ok()) << sql;
    if (!mem_r.ok()) {
      continue;
    }
    const CachedCategorization& a = *mem_r.value().payload;
    const CachedCategorization& b = *store_r.value().payload;
    ExpectTablesBitIdentical(a.result(), b.result(), "serve: " + sql);
    ASSERT_EQ(a.tree().num_nodes(), b.tree().num_nodes()) << sql;
    EXPECT_EQ(a.tree().level_attributes(), b.tree().level_attributes())
        << sql;
    for (size_t id = 0; id < a.tree().num_nodes(); ++id) {
      const CategoryNode& na = a.tree().node(static_cast<NodeId>(id));
      const CategoryNode& nb = b.tree().node(static_cast<NodeId>(id));
      EXPECT_EQ(na.parent, nb.parent) << sql << " node " << id;
      EXPECT_EQ(na.children, nb.children) << sql << " node " << id;
      EXPECT_EQ(na.tuples, nb.tuples) << sql << " node " << id;
      EXPECT_EQ(na.label.ToString(), nb.label.ToString())
          << sql << " node " << id;
    }
  }
}

}  // namespace
}  // namespace autocat
