// Tests for the extension modules: the path-aware (correlation) estimator
// of Section 5.2's ongoing work, workload-driven tuple ranking, tree
// export (drill-down SQL + JSON), and the goodness-driven automatic
// bucket count.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/categorizer.h"
#include "core/correlation.h"
#include "core/cost_model.h"
#include "core/export.h"
#include "core/partition.h"
#include "core/probability.h"
#include "core/ranking.h"
#include "exec/executor.h"
#include "explore/exploration.h"
#include "test_util.h"

namespace autocat {
namespace {

using test::HomesTable;

// A correlated workload: users who want neighborhood 'a' search cheap
// (price <= 3000); users who want 'b' search expensive (price >= 6000).
std::vector<std::string> CorrelatedWorkloadSql() {
  std::vector<std::string> sqls;
  for (int i = 0; i < 10; ++i) {
    sqls.push_back(
        "SELECT * FROM homes WHERE neighborhood = 'a' AND price BETWEEN "
        "1000 AND 3000");
    sqls.push_back(
        "SELECT * FROM homes WHERE neighborhood = 'b' AND price BETWEEN "
        "6000 AND 9000");
  }
  return sqls;
}

struct CorrelatedFixture {
  Schema schema = test::HomesSchema();
  Workload workload =
      Workload::Parse(CorrelatedWorkloadSql(), test::HomesSchema(), nullptr);
  Result<WorkloadStats> stats = WorkloadStats::Build(
      workload, test::HomesSchema(), test::StatsOptions());
  Table table = HomesTable({{"a", 1500, 2},
                            {"a", 2500, 3},
                            {"a", 7000, 4},
                            {"b", 2000, 2},
                            {"b", 6500, 3},
                            {"b", 8000, 4}});

  // Tree: neighborhood level, then one price split at 5000 under each.
  CategoryTree MakeTree() const {
    CategoryTree tree(&table);
    const NodeId a = tree.AddChild(
        tree.root(), CategoryLabel::Categorical("neighborhood", {Value("a")}),
        {0, 1, 2});
    const NodeId b = tree.AddChild(
        tree.root(), CategoryLabel::Categorical("neighborhood", {Value("b")}),
        {3, 4, 5});
    tree.AppendLevelAttribute("neighborhood");
    tree.AddChild(a, CategoryLabel::Numeric("price", 1000, 5000), {0, 1});
    tree.AddChild(a, CategoryLabel::Numeric("price", 5000, 9000, true),
                  {2});
    tree.AddChild(b, CategoryLabel::Numeric("price", 1000, 5000), {3});
    tree.AddChild(b, CategoryLabel::Numeric("price", 5000, 9000, true),
                  {4, 5});
    tree.AppendLevelAttribute("price");
    return tree;
  }
};

TEST(PathAwareEstimatorTest, Level1ReducesToIndependence) {
  CorrelatedFixture fixture;
  ASSERT_TRUE(fixture.stats.ok());
  const ProbabilityEstimator independence(&fixture.stats.value(),
                                          &fixture.schema);
  const PathAwareProbabilityEstimator path_aware(&fixture.workload,
                                                 &independence);
  const CategoryTree tree = fixture.MakeTree();
  const NodeId a = tree.node(tree.root()).children[0];
  EXPECT_NEAR(path_aware.ExplorationProbability(tree, a),
              independence.ExplorationProbability(tree.node(a).label),
              1e-12);
  EXPECT_DOUBLE_EQ(path_aware.ExplorationProbability(tree, tree.root()),
                   1.0);
}

TEST(PathAwareEstimatorTest, ConditioningCapturesCorrelation) {
  CorrelatedFixture fixture;
  ASSERT_TRUE(fixture.stats.ok());
  const ProbabilityEstimator independence(&fixture.stats.value(),
                                          &fixture.schema);
  const PathAwareProbabilityEstimator path_aware(&fixture.workload,
                                                 &independence);
  const CategoryTree tree = fixture.MakeTree();
  const NodeId a = tree.node(tree.root()).children[0];
  const NodeId a_cheap = tree.node(a).children[0];
  const NodeId a_pricey = tree.node(a).children[1];

  // Independence: half the price conditions overlap each bucket -> 0.5.
  EXPECT_NEAR(
      independence.ExplorationProbability(tree.node(a_cheap).label), 0.5,
      1e-12);
  // Path-aware: users compatible with 'neighborhood: a' all search cheap.
  EXPECT_NEAR(path_aware.ExplorationProbability(tree, a_cheap), 1.0,
              1e-12);
  EXPECT_NEAR(path_aware.ExplorationProbability(tree, a_pricey), 0.0,
              1e-12);
}

TEST(PathAwareEstimatorTest, CostIsCloserToGroundTruthThanIndependence) {
  CorrelatedFixture fixture;
  ASSERT_TRUE(fixture.stats.ok());
  const ProbabilityEstimator independence(&fixture.stats.value(),
                                          &fixture.schema);
  const PathAwareProbabilityEstimator path_aware(&fixture.workload,
                                                 &independence);
  const CostModel independent_model(&independence, CostModelParams{});
  const CategoryTree tree = fixture.MakeTree();

  // Ground truth: simulate the two user populations of the workload and
  // average their actual exploration costs.
  SelectionProfile user_a;
  user_a.Set("neighborhood", AttributeCondition::ValueSet({Value("a")}));
  NumericRange cheap;
  cheap.lo = 1000;
  cheap.hi = 3000;
  user_a.Set("price", AttributeCondition::Range(cheap));
  SelectionProfile user_b;
  user_b.Set("neighborhood", AttributeCondition::ValueSet({Value("b")}));
  NumericRange pricey;
  pricey.lo = 6000;
  pricey.hi = 9000;
  user_b.Set("price", AttributeCondition::Range(pricey));

  SimulatedExplorer::Options all_options;
  all_options.scenario = Scenario::kAll;
  const SimulatedExplorer all_explorer(all_options);
  const double truth_all =
      (all_explorer.Explore(tree, user_a).items_examined +
       all_explorer.Explore(tree, user_b).items_examined) /
      2;

  // The independence model underestimates here: it assumes half the users
  // entering 'neighborhood: a' skip the cheap price bucket, but in this
  // workload every a-user wants it. Path-conditioning recovers the exact
  // expectation.
  const double independent_all = independent_model.CostAll(tree);
  const double path_all = path_aware.CostAll(tree, CostModelParams{});
  EXPECT_NEAR(path_all, truth_all, 1e-9);
  EXPECT_LT(std::abs(path_all - truth_all),
            std::abs(independent_all - truth_all));

  // ONE scenario: path-conditioning improves the estimate but does not
  // make it exact — sibling explore/ignore events are still treated as
  // independent (a known limitation; see correlation.h).
  SimulatedExplorer::Options one_options;
  one_options.scenario = Scenario::kOne;
  const SimulatedExplorer one_explorer(one_options);
  const double truth_one =
      (one_explorer.Explore(tree, user_a).items_examined +
       one_explorer.Explore(tree, user_b).items_examined) /
      2;
  const double independent_one = independent_model.CostOne(tree);
  const double path_one = path_aware.CostOne(tree, CostModelParams{});
  EXPECT_LT(std::abs(path_one - truth_one),
            std::abs(independent_one - truth_one));
}

TEST(PathAwareEstimatorTest, FallsBackWhenNoConditionalEvidence) {
  // Workload with conditions on neighborhood only: once conditioned on a
  // neighborhood, no query constrains price, so the estimator must fall
  // back to the independence estimate (0 here too, but exercised).
  const std::vector<std::string> sqls = {
      "SELECT * FROM homes WHERE neighborhood = 'a'",
      "SELECT * FROM homes WHERE neighborhood = 'b'",
  };
  const Schema schema = test::HomesSchema();
  const Workload workload = Workload::Parse(sqls, schema, nullptr);
  const auto stats =
      WorkloadStats::Build(workload, schema, test::StatsOptions());
  ASSERT_TRUE(stats.ok());
  const ProbabilityEstimator independence(&stats.value(), &schema);
  const PathAwareProbabilityEstimator path_aware(&workload, &independence);
  CorrelatedFixture fixture;
  const CategoryTree tree = fixture.MakeTree();
  const NodeId a = tree.node(tree.root()).children[0];
  const NodeId a_cheap = tree.node(a).children[0];
  EXPECT_DOUBLE_EQ(
      path_aware.ExplorationProbability(tree, a_cheap),
      independence.ExplorationProbability(tree.node(a_cheap).label));
}

// --------------------------------------------------------------- ranking

TEST(RankingTest, ScoresFollowWorkloadPopularity) {
  const WorkloadStats stats = test::StatsFromSql({
      "SELECT * FROM homes WHERE neighborhood = 'popular'",
      "SELECT * FROM homes WHERE neighborhood = 'popular'",
      "SELECT * FROM homes WHERE neighborhood = 'popular'",
      "SELECT * FROM homes WHERE neighborhood = 'rare'",
  });
  const Table table = HomesTable({{"rare", 100, 1}, {"popular", 100, 1}});
  const auto rare_score = TupleScore(table, 0, {"neighborhood"}, stats);
  const auto popular_score = TupleScore(table, 1, {"neighborhood"}, stats);
  ASSERT_TRUE(rare_score.ok());
  ASSERT_TRUE(popular_score.ok());
  EXPECT_DOUBLE_EQ(rare_score.value(), 0.25);
  EXPECT_DOUBLE_EQ(popular_score.value(), 0.75);
  EXPECT_FALSE(TupleScore(table, 0, {"bogus"}, stats).ok());
  EXPECT_FALSE(TupleScore(table, 99, {"neighborhood"}, stats).ok());
}

TEST(RankingTest, RankTuplesDescendingStable) {
  const WorkloadStats stats = test::StatsFromSql({
      "SELECT * FROM homes WHERE neighborhood = 'x'",
      "SELECT * FROM homes WHERE neighborhood = 'x'",
      "SELECT * FROM homes WHERE neighborhood = 'y'",
  });
  const Table table = HomesTable(
      {{"y", 1, 1}, {"x", 2, 2}, {"z", 3, 3}, {"x", 4, 4}});
  const auto ranked =
      RankTuples(table, {0, 1, 2, 3}, {"neighborhood"}, stats);
  ASSERT_TRUE(ranked.ok());
  // x (score 2/3) first, stable between rows 1 and 3; then y; then z.
  EXPECT_EQ(ranked.value(), (std::vector<size_t>{1, 3, 0, 2}));
}

TEST(RankingTest, ApplyLeafRankingPreservesSetsAndStructure) {
  const WorkloadStats stats = test::StatsFromSql({
      "SELECT * FROM homes WHERE neighborhood = 'a' AND price BETWEEN "
      "1000 AND 2000",
      "SELECT * FROM homes WHERE neighborhood = 'a'",
      "SELECT * FROM homes WHERE price BETWEEN 1000 AND 3000",
  });
  const Table table = HomesTable(
      {{"b", 9000, 1}, {"a", 1500, 2}, {"a", 9000, 3}, {"b", 1500, 4}});
  CategoryTree tree(&table);
  tree.AddChild(tree.root(),
                CategoryLabel::Categorical("neighborhood",
                                           {Value("a"), Value("b")}),
                {0, 1, 2, 3});
  tree.AppendLevelAttribute("neighborhood");
  CategoryTree ranked = tree;
  ASSERT_TRUE(ApplyLeafRanking(ranked, {"neighborhood", "price"}, stats)
                  .ok());
  // Same sets, same structure.
  ASSERT_EQ(ranked.num_nodes(), tree.num_nodes());
  const auto& before = tree.node(1).tuples;
  const auto& after = ranked.node(1).tuples;
  EXPECT_EQ(std::set<size_t>(before.begin(), before.end()),
            std::set<size_t>(after.begin(), after.end()));
  // Row 1 ('a', 1500) scores highest: neighborhood 'a' occurs in 2/2
  // neighborhood conditions, price 1500 in 2/2 price conditions.
  EXPECT_EQ(after.front(), 1u);
  // Row 0 ('b', 9000) scores zero and lands last.
  EXPECT_EQ(after.back(), 0u);
}

// ---------------------------------------------------------------- export

TEST(ExportTest, PathPredicateConjoinsLabels) {
  CorrelatedFixture fixture;
  const CategoryTree tree = fixture.MakeTree();
  EXPECT_EQ(PathPredicateSql(tree, tree.root()).value(), "");
  const NodeId a = tree.node(tree.root()).children[0];
  EXPECT_EQ(PathPredicateSql(tree, a).value(), "neighborhood = 'a'");
  const NodeId a_cheap = tree.node(a).children[0];
  EXPECT_EQ(PathPredicateSql(tree, a_cheap).value(),
            "neighborhood = 'a' AND price >= 1000 AND price < 5000");
  EXPECT_FALSE(PathPredicateSql(tree, 999).ok());
}

TEST(ExportTest, DrillDownSqlReturnsExactlyTset) {
  CorrelatedFixture fixture;
  const CategoryTree tree = fixture.MakeTree();
  Database db;
  db.PutTable("homes", fixture.table);
  // The drill-down query of every node must return exactly tset(C).
  for (NodeId id = 0; id < static_cast<NodeId>(tree.num_nodes()); ++id) {
    const auto sql = DrillDownSql(tree, id, "homes");
    ASSERT_TRUE(sql.ok());
    const auto result = ExecuteSql(sql.value(), db);
    ASSERT_TRUE(result.ok()) << sql.value();
    EXPECT_EQ(result->num_rows(), tree.node(id).tset_size())
        << sql.value();
  }
}

TEST(ExportTest, DrillDownSqlComposesWithOriginalWhere) {
  CorrelatedFixture fixture;
  const CategoryTree tree = fixture.MakeTree();
  const NodeId a = tree.node(tree.root()).children[0];
  const auto sql =
      DrillDownSql(tree, a, "homes", "bedroomcount >= 3");
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(sql.value(),
            "SELECT * FROM homes WHERE (bedroomcount >= 3) AND "
            "neighborhood = 'a'");
  EXPECT_FALSE(DrillDownSql(tree, a, "").ok());
}

TEST(ExportTest, TreeToJsonStructure) {
  CorrelatedFixture fixture;
  const CategoryTree tree = fixture.MakeTree();
  const std::string json = TreeToJson(tree);
  EXPECT_NE(json.find("\"label\":\"ALL\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":6"), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"neighborhood: a\""), std::string::npos);
  EXPECT_NE(json.find("\"attribute\":\"price\""), std::string::npos);
  EXPECT_NE(json.find("\"children\":["), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ExportTest, JsonWithModelCarriesEstimates) {
  CorrelatedFixture fixture;
  ASSERT_TRUE(fixture.stats.ok());
  const CategoryTree tree = fixture.MakeTree();
  const ProbabilityEstimator estimator(&fixture.stats.value(),
                                       &fixture.schema);
  const CostModel model(&estimator, CostModelParams{});
  const std::string json = TreeToJson(tree, &model);
  EXPECT_NE(json.find("\"p\":"), std::string::npos);
  EXPECT_NE(json.find("\"pw\":"), std::string::npos);
  EXPECT_NE(json.find("\"cost_all\":"), std::string::npos);
  // Without a model the estimate keys are absent.
  EXPECT_EQ(TreeToJson(tree).find("\"p\":"), std::string::npos);
}

TEST(RefinedProfileTest, ConjoinsPathAndReproducesTset) {
  CorrelatedFixture fixture;
  const CategoryTree tree = fixture.MakeTree();
  // Original query: price in [1000, 9000] (matches every row).
  SelectionProfile original;
  NumericRange wide;
  wide.lo = 1000;
  wide.hi = 9000;
  original.Set("price", AttributeCondition::Range(wide));

  for (NodeId id = 0; id < static_cast<NodeId>(tree.num_nodes()); ++id) {
    const auto refined = RefinedProfile(tree, id, original);
    ASSERT_TRUE(refined.ok());
    const auto rows = fixture.table.FilterIndices([&](const Row& row) {
      return refined->MatchesRow(row, fixture.table.schema());
    });
    EXPECT_EQ(rows.size(), tree.node(id).tset_size()) << "node " << id;
  }
  EXPECT_FALSE(RefinedProfile(tree, 999, original).ok());
}

TEST(RefinedProfileTest, IntersectsExistingConditions) {
  CorrelatedFixture fixture;
  const CategoryTree tree = fixture.MakeTree();
  // Original already constrains neighborhood to {a, b}; drilling into
  // 'neighborhood: a' must intersect down to {a}.
  SelectionProfile original;
  original.Set("neighborhood",
               AttributeCondition::ValueSet({Value("a"), Value("b")}));
  const NodeId a = tree.node(tree.root()).children[0];
  const auto refined = RefinedProfile(tree, a, original);
  ASSERT_TRUE(refined.ok());
  const AttributeCondition* nb = refined->Find("neighborhood");
  ASSERT_NE(nb, nullptr);
  EXPECT_EQ(nb->values, (std::set<Value>{Value("a")}));
  // Drilling further into a price bucket intersects the range too.
  const NodeId a_cheap = tree.node(a).children[0];
  SelectionProfile with_price = original;
  NumericRange narrow;
  narrow.lo = 2000;
  narrow.hi = 9000;
  with_price.Set("price", AttributeCondition::Range(narrow));
  const auto deeper = RefinedProfile(tree, a_cheap, with_price);
  ASSERT_TRUE(deeper.ok());
  const AttributeCondition* price = deeper->Find("price");
  ASSERT_TRUE(price->is_range());
  EXPECT_DOUBLE_EQ(price->range.lo, 2000);  // max(2000, 1000)
  EXPECT_DOUBLE_EQ(price->range.hi, 5000);  // min(9000, bucket hi)
}

TEST(ExportTest, JsonEscapesSpecialCharacters) {
  const Table table = HomesTable({{"has \"quote\"", 1, 1}});
  CategoryTree tree(&table);
  tree.AddChild(tree.root(),
                CategoryLabel::Categorical("neighborhood",
                                           {Value("has \"quote\"")}),
                {0});
  const std::string json = TreeToJson(tree);
  EXPECT_NE(json.find("has \\\"quote\\\""), std::string::npos);
}

// ----------------------------------------------------------- auto buckets

TEST(AutoBucketsTest, GoodnessFloorLimitsSplitPoints) {
  // Goodness: 5000 -> 10, 2000 -> 1. With a 0.3 floor only 5000
  // qualifies; with floor 0 both do.
  std::vector<std::string> sqls;
  for (int i = 0; i < 10; ++i) {
    sqls.push_back(
        "SELECT * FROM homes WHERE price BETWEEN 5000 AND 9000");
  }
  sqls.push_back("SELECT * FROM homes WHERE price BETWEEN 2000 AND 9000");
  const WorkloadStats stats = test::StatsFromSql(sqls);
  const Table table = HomesTable({{"a", 1000, 1},
                                  {"a", 2500, 1},
                                  {"a", 4000, 1},
                                  {"a", 6000, 1},
                                  {"a", 9000, 1}});
  std::vector<size_t> all = {0, 1, 2, 3, 4};

  NumericPartitionOptions with_floor;
  with_floor.auto_buckets = true;
  with_floor.goodness_fraction = 0.3;
  const auto narrow =
      PartitionNumeric(table, all, "price", stats, with_floor, nullptr);
  ASSERT_TRUE(narrow.ok());
  EXPECT_EQ(narrow->size(), 2u);  // single split at 5000

  NumericPartitionOptions no_floor;
  no_floor.auto_buckets = true;
  no_floor.goodness_fraction = 0.0;
  const auto wide =
      PartitionNumeric(table, all, "price", stats, no_floor, nullptr);
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide->size(), 3u);  // splits at 5000 and 2000
}

TEST(AutoBucketsTest, FlowsThroughCategorizerOptions) {
  std::vector<std::string> sqls;
  for (int i = 0; i < 10; ++i) {
    sqls.push_back(
        "SELECT * FROM homes WHERE price BETWEEN 3000 AND 6000");
  }
  const WorkloadStats stats = test::StatsFromSql(sqls);
  Random rng(3);
  std::vector<test::HomeRow> rows;
  for (int i = 0; i < 120; ++i) {
    rows.push_back(test::HomeRow{"a", rng.Uniform(0, 9) * 1000, 1});
  }
  const Table table = HomesTable(rows);
  CategorizerOptions options;
  options.max_tuples_per_category = 10;
  options.attribute_usage_threshold = 0.0;
  options.candidate_attributes = {"price"};
  options.auto_numeric_buckets = true;
  const CostBasedCategorizer categorizer(&stats, options);
  const auto tree = categorizer.Categorize(table, nullptr);
  ASSERT_TRUE(tree.ok());
  // Only the 3000/6000 split points carry goodness, so level 1 has at
  // most 3 buckets.
  EXPECT_LE(tree->node(tree->root()).children.size(), 3u);
  EXPECT_GE(tree->node(tree->root()).children.size(), 2u);
}

}  // namespace
}  // namespace autocat
