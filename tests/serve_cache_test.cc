// Tests for the sharded LRU signature cache: capacity accounting,
// eviction order, TTL expiry, epoch invalidation, and a thread-pool
// driven concurrent stress run (exercised under TSan in CI).

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "serve/cache.h"
#include "serve/signature.h"

namespace autocat {
namespace {

Schema OneColumnSchema() {
  auto schema = Schema::Create({
      ColumnDef("n", ValueType::kInt64, ColumnKind::kNumeric),
  });
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

std::shared_ptr<const CachedCategorization> MakePayload(size_t rows) {
  Table table(OneColumnSchema());
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(table.AppendRow({Value(static_cast<int64_t>(i))}).ok());
  }
  auto payload = CachedCategorization::Build(
      std::move(table),
      [](const Table& owned) -> Result<CategoryTree> {
        return CategoryTree(&owned);
      });
  EXPECT_TRUE(payload.ok());
  return payload.ok() ? payload.value() : nullptr;
}

// The byte cost one `rows`-row entry is accounted at under `key`
// (constant across equally sized keys/payloads).
size_t EntryBytes(size_t rows, const std::string& key) {
  SignatureCache probe(CacheOptions{});
  probe.Insert(key, SignatureHash(key), MakePayload(rows));
  return probe.Stats().bytes;
}

TEST(CachedCategorizationTest, TreeReferencesTheOwnedTable) {
  auto payload = MakePayload(5);
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(&payload->tree().result(), &payload->result());
  EXPECT_EQ(payload->result_rows(), 5u);
  EXPECT_GT(payload->approx_bytes(), 0u);
}

TEST(CachedCategorizationTest, BuildPropagatesBuilderErrors) {
  Table table(OneColumnSchema());
  auto payload = CachedCategorization::Build(
      std::move(table), [](const Table&) -> Result<CategoryTree> {
        return Status::Internal("boom");
      });
  EXPECT_FALSE(payload.ok());
}

TEST(SignatureCacheTest, HitAndMissAccounting) {
  SignatureCache cache(CacheOptions{});
  EXPECT_EQ(cache.Get("k1", SignatureHash("k1")), nullptr);
  cache.Insert("k1", SignatureHash("k1"), MakePayload(3));
  auto hit = cache.Get("k1", SignatureHash("k1"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->result_rows(), 3u);
  EXPECT_EQ(cache.Get("k2", SignatureHash("k2")), nullptr);

  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(SignatureCacheTest, ReplacingAKeyKeepsOneEntry) {
  SignatureCache cache(CacheOptions{});
  cache.Insert("k", SignatureHash("k"), MakePayload(3));
  const size_t bytes_small = cache.Stats().bytes;
  cache.Insert("k", SignatureHash("k"), MakePayload(30));
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, bytes_small);
  auto hit = cache.Get("k", SignatureHash("k"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->result_rows(), 30u);
}

TEST(SignatureCacheTest, CapacityEvictsLeastRecentlyUsed) {
  // Keys of equal length so every entry costs the same.
  const size_t entry = EntryBytes(4, "ka");
  CacheOptions options;
  options.shards = 1;  // One shard: eviction order is globally observable.
  options.capacity_bytes = 2 * entry + entry / 2;
  SignatureCache cache(options);

  cache.Insert("ka", SignatureHash("ka"), MakePayload(4));
  cache.Insert("kb", SignatureHash("kb"), MakePayload(4));
  EXPECT_EQ(cache.Stats().entries, 2u);
  EXPECT_EQ(cache.Stats().bytes, 2 * entry);

  // Touch ka so kb is the LRU entry, then overflow with kc.
  ASSERT_NE(cache.Get("ka", SignatureHash("ka")), nullptr);
  cache.Insert("kc", SignatureHash("kc"), MakePayload(4));

  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, 2 * entry);
  EXPECT_NE(cache.Get("ka", SignatureHash("ka")), nullptr);
  EXPECT_EQ(cache.Get("kb", SignatureHash("kb")), nullptr);
  EXPECT_NE(cache.Get("kc", SignatureHash("kc")), nullptr);
}

TEST(SignatureCacheTest, OversizedEntriesAreSkippedNotCached) {
  const size_t entry = EntryBytes(40, "k");
  CacheOptions options;
  options.shards = 1;
  options.capacity_bytes = entry / 2;
  SignatureCache cache(options);
  cache.Insert("k", SignatureHash("k"), MakePayload(40));
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.oversized, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(SignatureCacheTest, TtlExpiresEntriesOnAccess) {
  int64_t now = 0;
  CacheOptions options;
  options.ttl_ms = 100;
  options.now_ms = [&now]() { return now; };
  SignatureCache cache(options);

  cache.Insert("k", SignatureHash("k"), MakePayload(2));
  now = 99;
  EXPECT_NE(cache.Get("k", SignatureHash("k")), nullptr);
  now = 100;
  EXPECT_EQ(cache.Get("k", SignatureHash("k")), nullptr);

  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.expirations, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(SignatureCacheTest, BumpEpochInvalidatesEverything) {
  SignatureCache cache(CacheOptions{});
  cache.Insert("k1", SignatureHash("k1"), MakePayload(2));
  cache.Insert("k2", SignatureHash("k2"), MakePayload(2));
  EXPECT_EQ(cache.epoch(), 0u);
  cache.BumpEpoch();
  EXPECT_EQ(cache.epoch(), 1u);

  EXPECT_EQ(cache.Get("k1", SignatureHash("k1")), nullptr);
  EXPECT_EQ(cache.Get("k2", SignatureHash("k2")), nullptr);
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.invalidations, 2u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.epoch, 1u);

  // Fresh inserts under the new epoch serve normally.
  cache.Insert("k1", SignatureHash("k1"), MakePayload(2));
  EXPECT_NE(cache.Get("k1", SignatureHash("k1")), nullptr);
}

TEST(SignatureCacheTest, InsertWithStaleObservedEpochNeverServes) {
  SignatureCache cache(CacheOptions{});
  const uint64_t observed = cache.epoch();
  // The epoch advances while a request is computing its payload...
  cache.BumpEpoch();
  // ...so the insert lands already stale and the next read drops it.
  cache.Insert("k", SignatureHash("k"), MakePayload(2), observed);
  EXPECT_EQ(cache.Get("k", SignatureHash("k")), nullptr);
  EXPECT_EQ(cache.Stats().invalidations, 1u);
}

TEST(SignatureCacheTest, ClearRemovesEntriesAndKeepsCounters) {
  SignatureCache cache(CacheOptions{});
  cache.Insert("k", SignatureHash("k"), MakePayload(2));
  ASSERT_NE(cache.Get("k", SignatureHash("k")), nullptr);
  cache.Clear();
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(cache.Get("k", SignatureHash("k")), nullptr);
}

TEST(SignatureCacheTest, EvictedPayloadSurvivesForInFlightReaders) {
  const size_t entry = EntryBytes(4, "ka");
  CacheOptions options;
  options.shards = 1;
  options.capacity_bytes = entry + entry / 2;  // Room for one entry.
  SignatureCache cache(options);
  cache.Insert("ka", SignatureHash("ka"), MakePayload(4));
  auto held = cache.Get("ka", SignatureHash("ka"));
  ASSERT_NE(held, nullptr);
  cache.Insert("kb", SignatureHash("kb"), MakePayload(4));  // Evicts ka.
  EXPECT_EQ(cache.Get("ka", SignatureHash("ka")), nullptr);
  // The shared_ptr handed out earlier still works.
  EXPECT_EQ(held->result_rows(), 4u);
  EXPECT_EQ(&held->tree().result(), &held->result());
}

// Concurrent hit/miss/insert/bump stress over a small key space. The
// assertions check the counters' global invariant; the real check is
// TSan finding no races when CI runs this under AUTOCAT_SANITIZE=thread.
TEST(SignatureCacheTest, ConcurrentStressKeepsCountersConsistent) {
  CacheOptions options;
  options.shards = 4;
  options.capacity_bytes = 1u << 20;
  SignatureCache cache(options);

  constexpr size_t kTasks = 8;
  constexpr size_t kOpsPerTask = 2000;
  constexpr size_t kKeySpace = 16;

  // Pre-built payloads: Build outside the loop keeps the stress focused
  // on cache operations.
  std::vector<std::shared_ptr<const CachedCategorization>> payloads;
  for (size_t i = 0; i < kKeySpace; ++i) {
    payloads.push_back(MakePayload(2 + i));
  }
  std::vector<std::string> keys;
  std::vector<uint64_t> hashes;
  for (size_t i = 0; i < kKeySpace; ++i) {
    keys.push_back("key-" + std::to_string(i));
    hashes.push_back(SignatureHash(keys.back()));
  }

  ThreadPool pool(kTasks);
  std::vector<std::future<Status>> done;
  std::vector<uint64_t> gets_per_task(kTasks, 0);
  for (size_t task = 0; task < kTasks; ++task) {
    done.push_back(pool.Submit([&, task]() {
      uint64_t gets = 0;
      for (size_t i = 0; i < kOpsPerTask; ++i) {
        const size_t k = (task * 31 + i * 7) % kKeySpace;
        if (i % 5 == 0) {
          cache.Insert(keys[k], hashes[k], payloads[k]);
        } else if (i % 401 == 0) {
          cache.BumpEpoch();
        } else if (i % 173 == 0) {
          (void)cache.Stats();
        } else {
          auto payload = cache.Get(keys[k], hashes[k]);
          if (payload != nullptr) {
            // Read through the payload: TSan verifies entries are safe to
            // use after eviction/invalidation by other tasks.
            EXPECT_EQ(payload->result_rows(), 2 + k);
          }
          ++gets;
        }
      }
      gets_per_task[task] = gets;
      return Status::OK();
    }));
  }
  for (auto& f : done) {
    EXPECT_TRUE(f.get().ok());
  }

  uint64_t total_gets = 0;
  for (const uint64_t gets : gets_per_task) {
    total_gets += gets;
  }
  const CacheStats stats = cache.Stats();
  // Every Get resolves to exactly one of hit / miss (expiry and
  // invalidation removals count as misses too).
  EXPECT_EQ(stats.hits + stats.misses, total_gets);
  EXPECT_LE(stats.bytes, options.capacity_bytes);
  EXPECT_GT(stats.epoch, 0u);
}

}  // namespace
}  // namespace autocat
