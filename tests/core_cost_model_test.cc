// Tests for the probability estimator (Section 4.2) and the cost models
// (Equations 1 and 2).

#include "core/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/probability.h"
#include "test_util.h"

namespace autocat {
namespace {

using test::HomesTable;
using test::StatsFromSql;

Schema TestSchema() { return test::HomesSchema(); }

// ------------------------------------------------------------ probabilities

TEST(ProbabilityTest, ShowTuplesFromUsage) {
  // 2 of 4 queries constrain price -> Pw for SA=price is 1 - 0.5 = 0.5.
  const WorkloadStats stats = StatsFromSql({
      "SELECT * FROM homes WHERE price BETWEEN 1000 AND 2000",
      "SELECT * FROM homes WHERE price BETWEEN 3000 AND 4000",
      "SELECT * FROM homes WHERE neighborhood = 'a'",
      "SELECT * FROM homes WHERE neighborhood = 'b'",
  });
  const Schema schema = TestSchema();
  const ProbabilityEstimator estimator(&stats, &schema);
  EXPECT_DOUBLE_EQ(estimator.ShowTuplesProbability("price"), 0.5);
  EXPECT_DOUBLE_EQ(estimator.ShowTuplesProbability("neighborhood"), 0.5);
  EXPECT_DOUBLE_EQ(estimator.ShowTuplesProbability("bedroomcount"), 1.0);
}

TEST(ProbabilityTest, EmptyWorkloadMeansAlwaysBrowse) {
  const Workload empty;
  const auto stats =
      WorkloadStats::Build(empty, TestSchema(), test::StatsOptions());
  ASSERT_TRUE(stats.ok());
  const Schema schema = TestSchema();
  const ProbabilityEstimator estimator(&stats.value(), &schema);
  EXPECT_DOUBLE_EQ(estimator.ShowTuplesProbability("price"), 1.0);
  EXPECT_DOUBLE_EQ(
      estimator.ExplorationProbability(
          CategoryLabel::Categorical("neighborhood", {Value("a")})),
      0.0);
}

TEST(ProbabilityTest, ExplorationProbabilityCategorical) {
  // occ(Bellevue)=2, occ(Redmond)=1, NAttr(neighborhood)=3.
  const WorkloadStats stats = StatsFromSql({
      "SELECT * FROM homes WHERE neighborhood IN ('Bellevue', 'Redmond')",
      "SELECT * FROM homes WHERE neighborhood = 'Bellevue'",
      "SELECT * FROM homes WHERE neighborhood = 'Seattle'",
      "SELECT * FROM homes WHERE price <= 1000",
  });
  const Schema schema = TestSchema();
  const ProbabilityEstimator estimator(&stats, &schema);
  EXPECT_DOUBLE_EQ(estimator.ExplorationProbability(
                       CategoryLabel::Categorical("neighborhood",
                                                  {Value("Bellevue")})),
                   2.0 / 3.0);
  EXPECT_DOUBLE_EQ(estimator.ExplorationProbability(
                       CategoryLabel::Categorical("neighborhood",
                                                  {Value("Redmond")})),
                   1.0 / 3.0);
  EXPECT_DOUBLE_EQ(estimator.ExplorationProbability(
                       CategoryLabel::Categorical("neighborhood",
                                                  {Value("Nowhere")})),
                   0.0);
}

TEST(ProbabilityTest, ExplorationProbabilityNumeric) {
  // Ranges on price: [1000,3000], [2000,5000], [7000,9000];
  // NAttr(price)=3.
  const WorkloadStats stats = StatsFromSql({
      "SELECT * FROM homes WHERE price BETWEEN 1000 AND 3000",
      "SELECT * FROM homes WHERE price BETWEEN 2000 AND 5000",
      "SELECT * FROM homes WHERE price BETWEEN 7000 AND 9000",
  });
  const Schema schema = TestSchema();
  const ProbabilityEstimator estimator(&stats, &schema);
  // Bucket [2000, 3000) overlaps the first two ranges.
  EXPECT_DOUBLE_EQ(estimator.ExplorationProbability(
                       CategoryLabel::Numeric("price", 2000, 3000)),
                   2.0 / 3.0);
  // Bucket [5500, 6500) overlaps nothing.
  EXPECT_DOUBLE_EQ(estimator.ExplorationProbability(
                       CategoryLabel::Numeric("price", 5500, 6500)),
                   0.0);
  // The whole domain overlaps everything.
  EXPECT_DOUBLE_EQ(estimator.ExplorationProbability(
                       CategoryLabel::Numeric("price", 0, 10000)),
                   1.0);
}

TEST(ProbabilityTest, ProbabilitiesStayInUnitInterval) {
  const WorkloadStats stats = StatsFromSql({
      "SELECT * FROM homes WHERE price BETWEEN 1000 AND 3000",
      "SELECT * FROM homes WHERE neighborhood = 'a'",
  });
  const Schema schema = TestSchema();
  const ProbabilityEstimator estimator(&stats, &schema);
  Random rng(3);
  for (int i = 0; i < 100; ++i) {
    const double lo = static_cast<double>(rng.Uniform(0, 10000));
    const double p = estimator.ExplorationProbability(CategoryLabel::Numeric(
        "price", lo, lo + static_cast<double>(rng.Uniform(0, 5000))));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

// ---------------------------------------------------------------- CostAll

// Workload giving round probabilities:
//   NAttr(neighborhood) = 2 of N=4 -> Pw(SA=neighborhood) = 0.5
//   occ(a) = 2, occ(b) = 1 -> P(n=a) = 1, P(n=b) = 0.5
std::vector<std::string> RoundWorkload() {
  return {
      "SELECT * FROM homes WHERE neighborhood IN ('a', 'b')",
      "SELECT * FROM homes WHERE neighborhood = 'a'",
      "SELECT * FROM homes WHERE price <= 5000",
      "SELECT * FROM homes WHERE price BETWEEN 1000 AND 2000",
  };
}

TEST(CostModelTest, LeafCostIsTupleCount) {
  const WorkloadStats stats = StatsFromSql(RoundWorkload());
  const Table table = HomesTable({{"a", 1, 1}, {"a", 2, 2}, {"b", 3, 3}});
  const CategoryTree tree(&table);
  const Schema schema = TestSchema();
  const ProbabilityEstimator estimator(&stats, &schema);
  const CostModel model(&estimator, CostModelParams{});
  EXPECT_DOUBLE_EQ(model.CostAll(tree), 3.0);
  EXPECT_DOUBLE_EQ(model.CostOne(tree), 0.5 * 3.0);
}

TEST(CostModelTest, OneLevelHandComputed) {
  const WorkloadStats stats = StatsFromSql(RoundWorkload());
  const Table table = HomesTable(
      {{"a", 1, 1}, {"a", 2, 2}, {"b", 3, 3}, {"b", 4, 4}, {"b", 5, 5}});
  CategoryTree tree(&table);
  tree.AddChild(tree.root(),
                CategoryLabel::Categorical("neighborhood", {Value("a")}),
                {0, 1});
  tree.AddChild(tree.root(),
                CategoryLabel::Categorical("neighborhood", {Value("b")}),
                {2, 3, 4});
  const Schema schema = TestSchema();
  const ProbabilityEstimator estimator(&stats, &schema);
  const CostModel model(&estimator, CostModelParams{/*k=*/1.0,
                                                    /*frac=*/0.5});
  // Pw(root) = 1 - NAttr(neighborhood)/N = 0.5.
  EXPECT_DOUBLE_EQ(model.NodeShowTuplesProbability(tree, tree.root()), 0.5);
  const NodeId a = tree.node(tree.root()).children[0];
  const NodeId b = tree.node(tree.root()).children[1];
  EXPECT_DOUBLE_EQ(model.NodeExplorationProbability(tree, a), 1.0);
  EXPECT_DOUBLE_EQ(model.NodeExplorationProbability(tree, b), 0.5);
  // Equation 1: 0.5*5 + 0.5*(1*2 + 1*2 + 0.5*3) = 2.5 + 0.5*5.5 = 5.25.
  EXPECT_DOUBLE_EQ(model.CostAll(tree), 5.25);
  // Equation 2: Pw*frac*5 + (1-Pw) * [P(a)*(K*1 + 0.5*2)
  //   + (1-P(a))*P(b)*(K*2 + 0.5*3)]
  // = 0.5*2.5 + 0.5*[1*(1+1) + 0] = 1.25 + 1 = 2.25.
  EXPECT_DOUBLE_EQ(model.CostOne(tree), 2.25);
}

TEST(CostModelTest, KScalesLabelCost) {
  const WorkloadStats stats = StatsFromSql(RoundWorkload());
  const Table table = HomesTable({{"a", 1, 1}, {"b", 2, 2}});
  CategoryTree tree(&table);
  tree.AddChild(tree.root(),
                CategoryLabel::Categorical("neighborhood", {Value("a")}),
                {0});
  tree.AddChild(tree.root(),
                CategoryLabel::Categorical("neighborhood", {Value("b")}),
                {1});
  const Schema schema = TestSchema();
  const ProbabilityEstimator estimator(&stats, &schema);
  const CostModel cheap(&estimator, CostModelParams{0.1, 0.5});
  const CostModel pricey(&estimator, CostModelParams{10.0, 0.5});
  EXPECT_LT(cheap.CostAll(tree), pricey.CostAll(tree));
}

TEST(CostModelTest, OneLevelHelperAgreesWithTreeEvaluation) {
  const WorkloadStats stats = StatsFromSql(RoundWorkload());
  const Table table = HomesTable(
      {{"a", 1, 1}, {"a", 2, 2}, {"b", 3, 3}, {"b", 4, 4}, {"b", 5, 5}});
  CategoryTree tree(&table);
  tree.AddChild(tree.root(),
                CategoryLabel::Categorical("neighborhood", {Value("a")}),
                {0, 1});
  tree.AddChild(tree.root(),
                CategoryLabel::Categorical("neighborhood", {Value("b")}),
                {2, 3, 4});
  const Schema schema = TestSchema();
  const ProbabilityEstimator estimator(&stats, &schema);
  const CostModel model(&estimator, CostModelParams{});
  const double from_tree = model.CostAll(tree);
  const double from_helper = model.OneLevelCostAll(
      model.NodeShowTuplesProbability(tree, tree.root()), 5,
      {1.0, 0.5}, {2, 3});
  EXPECT_DOUBLE_EQ(from_tree, from_helper);
}

// Independent reference implementations of Equations 1 and 2 used to
// cross-check the production recursion on randomized trees.
double ReferenceCostAll(const CostModel& model, const CategoryTree& tree,
                        NodeId id) {
  const CategoryNode& node = tree.node(id);
  if (node.is_leaf()) {
    return static_cast<double>(node.tset_size());
  }
  const double pw = model.NodeShowTuplesProbability(tree, id);
  double sum = model.params().k * static_cast<double>(node.children.size());
  for (NodeId child : node.children) {
    sum += model.NodeExplorationProbability(tree, child) *
           ReferenceCostAll(model, tree, child);
  }
  return pw * static_cast<double>(node.tset_size()) + (1 - pw) * sum;
}

double ReferenceCostOne(const CostModel& model, const CategoryTree& tree,
                        NodeId id) {
  const CategoryNode& node = tree.node(id);
  if (node.is_leaf()) {
    return model.params().frac * static_cast<double>(node.tset_size());
  }
  const double pw = model.NodeShowTuplesProbability(tree, id);
  double sum = 0;
  double none = 1;
  for (size_t i = 0; i < node.children.size(); ++i) {
    const double p =
        model.NodeExplorationProbability(tree, node.children[i]);
    sum += none * p *
           (model.params().k * static_cast<double>(i + 1) +
            ReferenceCostOne(model, tree, node.children[i]));
    none *= 1 - p;
  }
  return pw * model.params().frac * static_cast<double>(node.tset_size()) +
         (1 - pw) * sum;
}

class CostModelPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CostModelPropertyTest, MatchesReferenceOnRandomTrees) {
  Random rng(static_cast<uint64_t>(GetParam()));
  // Random homes data.
  std::vector<test::HomeRow> rows;
  const char* kNeighborhoods[] = {"a", "b", "c", "d"};
  for (int i = 0; i < 60; ++i) {
    rows.push_back(test::HomeRow{
        kNeighborhoods[rng.Uniform(0, 3)],
        rng.Uniform(0, 9) * 1000,
        rng.Uniform(1, 5),
    });
  }
  const Table table = HomesTable(rows);
  // Random workload.
  std::vector<std::string> sqls;
  for (int i = 0; i < 20; ++i) {
    if (rng.Bernoulli(0.5)) {
      const int64_t lo = rng.Uniform(0, 8) * 1000;
      sqls.push_back("SELECT * FROM homes WHERE price BETWEEN " +
                     std::to_string(lo) + " AND " +
                     std::to_string(lo + rng.Uniform(1, 4) * 1000));
    } else {
      sqls.push_back(
          std::string("SELECT * FROM homes WHERE neighborhood = '") +
          kNeighborhoods[rng.Uniform(0, 3)] + "'");
    }
  }
  const WorkloadStats stats = StatsFromSql(sqls);

  // Random 2-level tree: neighborhood then price buckets.
  CategoryTree tree(&table);
  const auto nb_col = table.schema().ColumnIndex("neighborhood").value();
  const auto price_col = table.schema().ColumnIndex("price").value();
  for (const char* n : kNeighborhoods) {
    std::vector<size_t> members;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (table.ValueAt(r, nb_col) == Value(n)) {
        members.push_back(r);
      }
    }
    if (members.empty()) {
      continue;
    }
    const NodeId node = tree.AddChild(
        tree.root(), CategoryLabel::Categorical("neighborhood", {Value(n)}),
        members);
    // Split into two price buckets at a random point.
    const double split = static_cast<double>(rng.Uniform(1, 8)) * 1000;
    std::vector<size_t> low;
    std::vector<size_t> high;
    for (size_t r : tree.node(node).tuples) {
      (table.ValueAt(r, price_col).AsDouble() < split ? low : high)
          .push_back(r);
    }
    if (!low.empty() && !high.empty()) {
      tree.AddChild(node, CategoryLabel::Numeric("price", 0, split), low);
      tree.AddChild(node,
                    CategoryLabel::Numeric("price", split, 9000, true),
                    high);
    }
  }

  const Schema schema = TestSchema();
  const ProbabilityEstimator estimator(&stats, &schema);
  const CostModel model(&estimator,
                        CostModelParams{rng.UniformReal(0.2, 2.0),
                                        rng.UniformReal(0.1, 0.9)});
  EXPECT_NEAR(model.CostAll(tree),
              ReferenceCostAll(model, tree, tree.root()), 1e-9);
  EXPECT_NEAR(model.CostOne(tree),
              ReferenceCostOne(model, tree, tree.root()), 1e-9);
  // The ONE cost can never exceed the ALL cost under equal parameters
  // when frac <= 1.
  EXPECT_LE(model.CostOne(tree), model.CostAll(tree) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostModelPropertyTest,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace autocat
