// Unit tests for the workload-synthesis subsystem (src/workloadgen/):
// coherent session generation, deterministic traffic composition with
// skew/bursts/drift, and the declarative scenario-spec parser.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "simgen/geo.h"
#include "simgen/homes_generator.h"
#include "workload/workload.h"
#include "workloadgen/scenario.h"
#include "workloadgen/session.h"
#include "workloadgen/traffic.h"

namespace autocat {
namespace {

SessionConfig SmallConfig() {
  SessionConfig config;
  config.num_sessions = 48;
  config.seed = 20240807;
  return config;
}

std::string SessionFingerprint(const std::vector<UserSession>& sessions) {
  std::string out;
  for (const UserSession& session : sessions) {
    out += std::to_string(session.id) + ":" + session.region + "\n";
    for (const SessionQuery& query : session.queries) {
      out += std::to_string(query.step) + "|";
      out += SessionMutationToString(query.mutation);
      out += "|" + query.mutated_attribute + "|" + query.sql + "\n";
    }
  }
  return out;
}

TEST(SessionGeneratorTest, ChainsAreCoherentAndWellFormed) {
  const Geography geo = Geography::UnitedStates();
  const SessionGenerator generator(&geo, SmallConfig());
  const std::vector<UserSession> sessions = generator.Generate();
  ASSERT_EQ(sessions.size(), SmallConfig().num_sessions);

  const std::set<std::string> known_attributes = {
      "price",        "neighborhood", "bedroomcount",
      "squarefootage", "propertytype", "yearbuilt"};
  for (size_t i = 0; i < sessions.size(); ++i) {
    const UserSession& session = sessions[i];
    EXPECT_EQ(session.id, i);
    EXPECT_FALSE(session.region.empty());
    ASSERT_GE(session.queries.size(), SmallConfig().min_steps);
    ASSERT_LE(session.queries.size(), SmallConfig().max_steps);
    for (size_t step = 0; step < session.queries.size(); ++step) {
      const SessionQuery& query = session.queries[step];
      EXPECT_EQ(query.step, step);
      EXPECT_NE(query.sql.find("FROM ListProperty"), std::string::npos);
      if (step == 0) {
        EXPECT_EQ(query.mutation, SessionMutation::kInitial);
        EXPECT_TRUE(query.mutated_attribute.empty());
      } else {
        EXPECT_NE(query.mutation, SessionMutation::kInitial);
        EXPECT_TRUE(known_attributes.count(query.mutated_attribute))
            << "unknown mutated attribute '" << query.mutated_attribute
            << "'";
      }
    }
  }
}

TEST(SessionGeneratorTest, EverySessionSqlParses) {
  const Geography geo = Geography::UnitedStates();
  const SessionGenerator generator(&geo, SmallConfig());
  auto schema = HomesGenerator::ListPropertySchema();
  ASSERT_TRUE(schema.ok());

  std::vector<std::string> sqls;
  for (const UserSession& session : generator.Generate()) {
    for (const SessionQuery& query : session.queries) {
      sqls.push_back(query.sql);
    }
  }
  WorkloadParseReport report;
  const Workload workload =
      Workload::Parse(sqls, schema.value(), &report);
  EXPECT_EQ(report.parse_errors, 0u);
  EXPECT_EQ(report.parsed, sqls.size());
  EXPECT_EQ(workload.size(), sqls.size());
}

TEST(SessionGeneratorTest, MutationNamesRoundTrip) {
  EXPECT_EQ(SessionMutationToString(SessionMutation::kInitial), "initial");
  EXPECT_EQ(SessionMutationToString(SessionMutation::kRefine), "refine");
  EXPECT_EQ(SessionMutationToString(SessionMutation::kRelax), "relax");
  EXPECT_EQ(SessionMutationToString(SessionMutation::kPivot), "pivot");
}

TEST(SessionGeneratorTest, DriftProducesADifferentPool) {
  const Geography geo = Geography::UnitedStates();
  const SessionGenerator generator(&geo, SmallConfig());
  DriftSpec shifted;
  shifted.position = 0.8;
  const std::string base = SessionFingerprint(generator.Generate());
  const std::string drifted =
      SessionFingerprint(generator.Generate(shifted));
  EXPECT_NE(base, drifted);
  // Same drift twice is the same pool (pools are pure functions of
  // (seed, drift)).
  EXPECT_EQ(drifted, SessionFingerprint(generator.Generate(shifted)));
}

TEST(SessionGeneratorTest, DriftRaisesPriceLevels) {
  // Drift moves buyers' price centers up (price_amplitude > 0): the mean
  // of all BETWEEN endpoints must rise measurably. Rotation is disabled
  // to isolate the price knob (rotated hot windows land on cheaper
  // neighborhoods, which legitimately offsets part of the lift), and the
  // pool is large enough that region sampling noise can't mask a 1.8x
  // center shift.
  const Geography geo = Geography::UnitedStates();
  SessionConfig config = SmallConfig();
  config.num_sessions = 512;
  const SessionGenerator generator(&geo, config);
  DriftSpec shifted;
  shifted.position = 1.0;
  shifted.neighborhood_rotation = 0;
  const auto mean_price_endpoint =
      [](const std::vector<UserSession>& sessions) {
        double sum = 0;
        size_t n = 0;
        for (const UserSession& session : sessions) {
          for (const SessionQuery& query : session.queries) {
            const size_t at = query.sql.find("price BETWEEN ");
            if (at == std::string::npos) {
              continue;
            }
            sum += std::strtod(query.sql.c_str() + at + 14, nullptr);
            ++n;
          }
        }
        return n == 0 ? 0.0 : sum / static_cast<double>(n);
      };
  const double base = mean_price_endpoint(generator.Generate());
  const double drifted = mean_price_endpoint(generator.Generate(shifted));
  EXPECT_GT(base, 0.0);
  EXPECT_GT(drifted, base * 1.3);
}

TEST(TrafficStreamTest, ComposesPhasesInOrder) {
  const Geography geo = Geography::UnitedStates();
  TrafficStream stream(&geo, SmallConfig(), 7);
  PhaseSpec a;
  a.name = "a";
  a.requests = 100;
  PhaseSpec b;
  b.name = "b";
  b.requests = 50;
  b.drift.position = 0.5;
  ASSERT_TRUE(stream.AddPhase(a).ok());
  ASSERT_TRUE(stream.AddPhase(b).ok());
  ASSERT_EQ(stream.events().size(), 150u);
  for (size_t i = 0; i < stream.events().size(); ++i) {
    const TrafficEvent& event = stream.events()[i];
    EXPECT_EQ(event.phase, i < 100 ? 0u : 1u);
    EXPECT_EQ(event.pool_key,
              TrafficStream::PoolKey(i < 100 ? a.drift : b.drift));
    // Every event resolves to real SQL.
    EXPECT_FALSE(stream.Sql(event).empty());
  }
}

TEST(TrafficStreamTest, SessionCursorsAdvanceCoherently) {
  // Each session must issue its chain in order: the k-th event of a
  // session is step k mod chain length — across phase boundaries too,
  // as long as the drift regime (and therefore the pool) is unchanged.
  const Geography geo = Geography::UnitedStates();
  TrafficStream stream(&geo, SmallConfig(), 11);
  PhaseSpec first;
  first.name = "first";
  first.requests = 200;
  PhaseSpec second;
  second.name = "second";
  second.requests = 200;
  ASSERT_TRUE(stream.AddPhase(first).ok());
  ASSERT_TRUE(stream.AddPhase(second).ok());

  const std::vector<UserSession>& sessions = stream.PoolSessions({});
  std::map<size_t, size_t> issued;  // session -> events so far
  for (const TrafficEvent& event : stream.events()) {
    const size_t k = issued[event.session]++;
    EXPECT_EQ(event.step,
              k % sessions[event.session].queries.size())
        << "session " << event.session << " broke exploration order";
  }
}

TEST(TrafficStreamTest, ZipfSkewConcentratesTraffic) {
  const Geography geo = Geography::UnitedStates();
  const auto top_share = [&geo](double zipf_s) {
    TrafficStream stream(&geo, SmallConfig(), 23);
    PhaseSpec phase;
    phase.name = "p";
    phase.requests = 1000;
    phase.zipf_s = zipf_s;
    EXPECT_TRUE(stream.AddPhase(phase).ok());
    std::map<size_t, size_t> counts;
    for (const TrafficEvent& event : stream.events()) {
      ++counts[event.session];
    }
    size_t top = 0;
    for (const auto& [session, count] : counts) {
      top = std::max(top, count);
    }
    return static_cast<double>(top) / 1000.0;
  };
  const double uniform = top_share(0);
  const double skewed = top_share(1.2);
  // 48 sessions uniformly -> ~2% each; zipf 1.2 -> a dominant head.
  EXPECT_LT(uniform, 0.08);
  EXPECT_GT(skewed, 2 * uniform);
}

TEST(TrafficStreamTest, BurstArrivalsAlternateWithPauses) {
  const Geography geo = Geography::UnitedStates();
  TrafficStream stream(&geo, SmallConfig(), 31);
  PhaseSpec phase;
  phase.name = "bursts";
  phase.requests = 64;
  phase.burst_size = 8;
  phase.burst_pause_ms = 50;
  ASSERT_TRUE(stream.AddPhase(phase).ok());
  const std::vector<TrafficEvent>& events = stream.events();
  ASSERT_EQ(events.size(), 64u);
  for (size_t i = 0; i < events.size(); ++i) {
    // Within a burst arrivals are back to back (same planned ms); a new
    // burst starts exactly one pause later.
    const int64_t expected = static_cast<int64_t>(i / 8) * 50;
    EXPECT_EQ(events[i].arrival_ms, expected) << "event " << i;
  }
}

TEST(TrafficStreamTest, SteadyGapsAdvanceTheClock) {
  const Geography geo = Geography::UnitedStates();
  TrafficStream stream(&geo, SmallConfig(), 31);
  PhaseSpec phase;
  phase.name = "paced";
  phase.requests = 50;
  phase.mean_gap_ms = 10;
  ASSERT_TRUE(stream.AddPhase(phase).ok());
  const std::vector<TrafficEvent>& events = stream.events();
  for (size_t i = 1; i < events.size(); ++i) {
    const int64_t gap = events[i].arrival_ms - events[i - 1].arrival_ms;
    EXPECT_GE(gap, 5);   // mean/2
    EXPECT_LE(gap, 15);  // 3*mean/2
  }
}

TEST(TrafficStreamTest, RejectsDegeneratePhases) {
  const Geography geo = Geography::UnitedStates();
  TrafficStream stream(&geo, SmallConfig(), 1);
  PhaseSpec empty;
  empty.name = "empty";
  empty.requests = 0;
  EXPECT_FALSE(stream.AddPhase(empty).ok());
  PhaseSpec negative;
  negative.name = "neg";
  negative.requests = 10;
  negative.zipf_s = -1;
  EXPECT_FALSE(stream.AddPhase(negative).ok());
}

TEST(ScenarioSpecTest, ParsesFullSpec) {
  auto spec = ParseScenarioSpec(
      "# comment\n"
      "scenario demo\n"
      "homes 1234\n"
      "sessions 77\n"
      "seed 99\n"
      "train_fraction 0.25\n"
      "cache_mb 4\n"
      "ttl_ms 500\n"
      "phase warm requests=100\n"
      "phase hot requests=200 zipf=1.1 drift=0.4 gap_ms=5 burst=8 "
      "pause_ms=20\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->name, "demo");
  EXPECT_EQ(spec->num_homes, 1234u);
  EXPECT_EQ(spec->num_sessions, 77u);
  EXPECT_EQ(spec->seed, 99u);
  EXPECT_DOUBLE_EQ(spec->train_fraction, 0.25);
  EXPECT_EQ(spec->cache_mb, 4u);
  EXPECT_EQ(spec->ttl_ms, 500);
  ASSERT_EQ(spec->phases.size(), 2u);
  EXPECT_EQ(spec->phases[0].name, "warm");
  EXPECT_EQ(spec->phases[0].requests, 100u);
  EXPECT_EQ(spec->phases[1].name, "hot");
  EXPECT_DOUBLE_EQ(spec->phases[1].zipf_s, 1.1);
  EXPECT_DOUBLE_EQ(spec->phases[1].drift.position, 0.4);
  EXPECT_EQ(spec->phases[1].mean_gap_ms, 5);
  EXPECT_EQ(spec->phases[1].burst_size, 8u);
  EXPECT_EQ(spec->phases[1].burst_pause_ms, 20);
}

TEST(ScenarioSpecTest, RoundTripsThroughToString) {
  auto spec = BuiltinScenario("mixed");
  ASSERT_TRUE(spec.ok());
  auto reparsed = ParseScenarioSpec(ScenarioSpecToString(spec.value()));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(ScenarioSpecToString(reparsed.value()),
            ScenarioSpecToString(spec.value()));
}

TEST(ScenarioSpecTest, RejectsMalformedInput) {
  // Malformed numerics are errors, never silent zeroes.
  EXPECT_FALSE(ParseScenarioSpec("scenario s\nhomes 20x\n"
                                 "phase p requests=10\n")
                   .ok());
  EXPECT_FALSE(ParseScenarioSpec("scenario s\n"
                                 "phase p requests=abc\n")
                   .ok());
  EXPECT_FALSE(ParseScenarioSpec("scenario s\n"
                                 "phase p requests=\n")
                   .ok());
  // Unknown directives and phase keys.
  EXPECT_FALSE(ParseScenarioSpec("scenario s\nbogus 1\n"
                                 "phase p requests=10\n")
                   .ok());
  EXPECT_FALSE(ParseScenarioSpec("scenario s\n"
                                 "phase p requests=10 zipff=1\n")
                   .ok());
  // Structural requirements.
  EXPECT_FALSE(ParseScenarioSpec("phase p requests=10\n").ok());
  EXPECT_FALSE(ParseScenarioSpec("scenario s\n").ok());
  EXPECT_FALSE(ParseScenarioSpec("scenario s\n"
                                 "phase p requests=0\n")
                   .ok());
  EXPECT_FALSE(ParseScenarioSpec("scenario s\ntrain_fraction 0\n"
                                 "phase p requests=10\n")
                   .ok());
  EXPECT_FALSE(ParseScenarioSpec("scenario s\ntrain_fraction 1.5\n"
                                 "phase p requests=10\n")
                   .ok());
  EXPECT_FALSE(ParseScenarioSpec("scenario s\nhomes 0\n"
                                 "phase p requests=10\n")
                   .ok());
}

TEST(ScenarioSpecTest, ErrorsNameTheLine) {
  const auto spec = ParseScenarioSpec("scenario s\nhomes ok\n");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("line 2"), std::string::npos)
      << spec.status().ToString();
}

TEST(ScenarioSpecTest, BuiltinsAllParse) {
  const std::vector<std::string> names = BuiltinScenarioNames();
  EXPECT_EQ(names.size(), 5u);
  for (const std::string& name : names) {
    auto spec = BuiltinScenario(name);
    ASSERT_TRUE(spec.ok()) << name << ": " << spec.status().ToString();
    EXPECT_EQ(spec->name, name);
    EXPECT_FALSE(spec->phases.empty());
  }
  EXPECT_EQ(BuiltinScenario("nope").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace autocat
