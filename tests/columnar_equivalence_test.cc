// Row-vs-columnar equivalence gate for the columnar execution engine.
//
// The columnar kernels promise *refuse-or-exact* compilation: whatever
// `ExecuteQuery` / `CompiledPredicate::Filter` produce must be
// bit-identical to the row-at-a-time path — same cells (doubles compared
// by bit pattern), same row order, same error Status — at every tested
// thread count. These tests replay the checked-in SQL fuzz corpus, sweep
// randomized queries over a deterministic table seeded with edge values
// (NaN, -0.0, 2^53+1, INT64_MIN/MAX, NULLs), and pin the view-based
// overloads (ColumnStats / partitioners / ranking / cost-based
// categorizer) to their row-store twins.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/categorizer.h"
#include "core/partition.h"
#include "core/ranking.h"
#include "exec/executor.h"
#include "exec/kernels.h"
#include "sql/parser.h"
#include "sql/selection.h"
#include "storage/column_stats.h"
#include "storage/columnar.h"
#include "storage/table.h"
#include "workload/counts.h"
#include "workload/workload.h"

#include "equivalence_fixture.h"

namespace autocat {
namespace {

// Schema, table builder, bit-exact comparison, and the randomized
// query generator live in the shared fixture (also used by the
// legacy-vs-pipeline gate in pipeline_test.cc).
using namespace equiv;  // NOLINT

// Runs `sql` through the row path and through the columnar path at the
// given thread count; success results must be bit-identical tables and
// failures must carry the same Status.
void ExpectSqlEquivalent(const Database& db, const std::string& sql,
                         size_t threads) {
  ExecOptions row_opts;
  row_opts.use_columnar = false;
  ExecOptions col_opts;
  col_opts.use_columnar = true;
  col_opts.parallel.threads = threads;

  const Result<Table> row_result = ExecuteSql(sql, db, row_opts);
  const Result<Table> col_result = ExecuteSql(sql, db, col_opts);
  ASSERT_EQ(row_result.ok(), col_result.ok())
      << sql << " (threads=" << threads
      << "): " << (row_result.ok() ? col_result : row_result)
                      .status()
                      .ToString();
  if (!row_result.ok()) {
    EXPECT_EQ(row_result.status().ToString(), col_result.status().ToString())
        << sql;
    return;
  }
  ExpectTablesBitIdentical(row_result.value(), col_result.value(),
                           sql + " (threads=" + std::to_string(threads) +
                               ")");
}

Database HomesDb(Table table) {
  Database db;
  EXPECT_TRUE(db.RegisterTable("homes", std::move(table)).ok());
  return db;
}

// ----------------------------------------------------------- corpus replay

TEST(ColumnarEquivalenceTest, FuzzCorpusRowVsColumnar) {
  const Database db = HomesDb(MakeHomes(500, 101, 0.08, true));
  const std::filesystem::path corpus(AUTOCAT_FUZZ_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(corpus));
  size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    std::string sql((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    for (const size_t threads : {size_t{1}, size_t{7}}) {
      ExpectSqlEquivalent(db, sql, threads);
    }
    ++replayed;
  }
  EXPECT_GE(replayed, 10u) << "corpus directory looks truncated";
}

// ------------------------------------------------------ randomized queries

TEST(ColumnarEquivalenceTest, RandomizedQueriesRowVsColumnar) {
  const Schema schema = FuzzSchema();
  const Database db = HomesDb(MakeHomes(600, 202, 0.1, true));
  Random rng(777);
  for (int i = 0; i < 250; ++i) {
    const std::string sql = RandomQuery(rng, schema);
    for (const size_t threads : {size_t{1}, size_t{7}}) {
      ExpectSqlEquivalent(db, sql, threads);
    }
  }
}

TEST(ColumnarEquivalenceTest, EdgeCaseQueries) {
  const Database db = HomesDb(MakeHomes(300, 303, 0.12, true));
  const std::vector<std::string> queries = {
      // NaN cells meet every comparison shape.
      "SELECT * FROM homes WHERE price > 0",
      "SELECT * FROM homes WHERE price = 100000",
      "SELECT * FROM homes WHERE price <> 100000",
      "SELECT * FROM homes WHERE price BETWEEN 0 AND 1000000",
      "SELECT * FROM homes WHERE price IN (100000, 200000)",
      "SELECT * FROM homes WHERE price NOT IN (100000)",
      // Signed zero: -0.0 == 0.0 numerically on both paths.
      "SELECT * FROM homes WHERE price = 0",
      "SELECT * FROM homes WHERE price < 0",
      // 2^53 + 1: exact on the int64 path, rounds on the double path.
      "SELECT * FROM homes WHERE yearbuilt = 9007199254740993",
      "SELECT * FROM homes WHERE yearbuilt = 9007199254740992",
      "SELECT * FROM homes WHERE bedroomcount = 9223372036854775807",
      "SELECT * FROM homes WHERE bedroomcount >= -9223372036854775807",
      // NULL handling.
      "SELECT * FROM homes WHERE price IS NULL",
      "SELECT * FROM homes WHERE price IS NOT NULL",
      "SELECT * FROM homes WHERE neighborhood IS NULL OR price > 500000",
      // String-vs-numeric class mismatches: the row path errors on the
      // first matching row; the columnar path must refuse and fall back.
      "SELECT * FROM homes WHERE price = 'expensive'",
      "SELECT * FROM homes WHERE neighborhood < 5",
      "SELECT * FROM homes WHERE neighborhood IN (1, 2)",
      "SELECT * FROM homes WHERE bedroomcount BETWEEN 'a' AND 'b'",
      // Unknown column errors identically.
      "SELECT * FROM homes WHERE bogus = 1",
      // Projection through the zero-copy view.
      "SELECT neighborhood, price FROM homes WHERE bedroomcount >= 3",
      "SELECT price FROM homes WHERE neighborhood = 'Redmond'",
  };
  for (const std::string& sql : queries) {
    for (const size_t threads : {size_t{1}, size_t{7}}) {
      ExpectSqlEquivalent(db, sql, threads);
    }
  }
}

TEST(ColumnarEquivalenceTest, EmptyTableAndAllNullColumn) {
  // Empty table: every query returns an empty result on both paths (the
  // row path does not even surface type errors — no rows to evaluate).
  {
    const Database db = HomesDb(Table(FuzzSchema()));
    for (const std::string sql :
         {"SELECT * FROM homes WHERE price > 0",
          "SELECT * FROM homes WHERE price = 'expensive'",
          "SELECT * FROM homes WHERE bogus = 1"}) {
      ExpectSqlEquivalent(db, sql, 1);
    }
  }
  // All-NULL column: comparisons never match, IS NULL matches everything,
  // and even class-mismatched literals cannot error on the row path.
  {
    Table table(FuzzSchema());
    Random rng(9);
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(table
                      .AppendRow({Value(kNeighborhoods[i % 6]), Value(),
                                  Value(kTypes[i % 3]), Value(),
                                  Value(rng.Uniform(0, 8)), Value(1.5),
                                  Value(rng.UniformReal(300, 5000)),
                                  Value(rng.Uniform(1900, 2026))})
                      .ok());
    }
    const Database db = HomesDb(std::move(table));
    for (const std::string sql :
         {"SELECT * FROM homes WHERE price > 0",
          "SELECT * FROM homes WHERE price = 'expensive'",
          "SELECT * FROM homes WHERE price IS NULL",
          "SELECT * FROM homes WHERE city IS NOT NULL",
          "SELECT * FROM homes WHERE city = 'Seattle'"}) {
      ExpectSqlEquivalent(db, sql, 1);
    }
  }
}

TEST(ColumnarEquivalenceTest, PutTableInvalidatesShadow) {
  Database db = HomesDb(MakeHomes(50, 11, 0.0, false));
  ExecOptions opts;  // columnar on
  const std::string sql = "SELECT * FROM homes WHERE bedroomcount >= 0";
  AUTOCAT_ASSERT_OK_AND_MOVE(Table before, ExecuteSql(sql, db, opts));
  EXPECT_EQ(before.num_rows(), 50u);
  db.PutTable("homes", MakeHomes(20, 12, 0.0, false));
  AUTOCAT_ASSERT_OK_AND_MOVE(Table after, ExecuteSql(sql, db, opts));
  EXPECT_EQ(after.num_rows(), 20u);
}

// -------------------------------------------- profile (serving-path) filter

TEST(ColumnarEquivalenceTest, CompiledProfileMatchesRowSemantics) {
  const Schema schema = FuzzSchema();
  const Table table = MakeHomes(400, 404, 0.1, true);
  Database db;
  ASSERT_TRUE(db.RegisterTable("homes", Table(table)).ok());
  AUTOCAT_ASSERT_OK_AND_MOVE(std::shared_ptr<const ColumnarTable> shadow,
                             db.ColumnarFor("homes"));

  Random rng(555);
  size_t compiled_profiles = 0;
  for (int i = 0; i < 500; ++i) {
    const std::string sql = RandomQuery(rng, schema);
    auto query = ParseQuery(sql);
    if (!query.ok()) {
      continue;
    }
    auto profile = SelectionProfile::FromQuery(query.value(), schema);
    if (!profile.ok()) {
      continue;
    }
    auto compiled =
        CompiledPredicate::CompileProfile(profile.value(), schema, shadow);
    if (!compiled.ok()) {
      ASSERT_EQ(compiled.status().code(), StatusCode::kNotSupported) << sql;
      continue;
    }
    ++compiled_profiles;
    std::vector<uint32_t> expected;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (profile.value().MatchesRow(table.row(r), schema)) {
        expected.push_back(static_cast<uint32_t>(r));
      }
    }
    for (const size_t threads : {size_t{1}, size_t{7}}) {
      ParallelOptions parallel;
      parallel.threads = threads;
      AUTOCAT_ASSERT_OK_AND_MOVE(std::vector<uint32_t> got,
                                 compiled.value().Filter(parallel));
      EXPECT_EQ(got, expected) << sql << " (threads=" << threads << ")";
    }
  }
  EXPECT_GE(compiled_profiles, 50u)
      << "profile compiler refused too often to be a meaningful gate";
}

// ------------------------------------------------- view-based consumers

struct ViewFixture {
  Table table;
  Database db;
  std::shared_ptr<const ColumnarTable> shadow;
  TableView view;       // filtered + projected
  Table materialized;   // view.Materialize()
  std::vector<size_t> all_tuples;

  explicit ViewFixture(bool projected) : table(MakeHomes(350, 42, 0.07,
                                                         false)) {
    EXPECT_TRUE(db.RegisterTable("homes", Table(table)).ok());
    auto shadow_or = db.ColumnarFor("homes");
    EXPECT_TRUE(shadow_or.ok());
    shadow = std::move(shadow_or).value();
    std::vector<uint32_t> rows;
    for (uint32_t r = 0; r < table.num_rows(); r += 2) {
      rows.push_back(r);  // every other row, ascending
    }
    const std::vector<std::string> columns =
        projected ? std::vector<std::string>{"neighborhood", "price",
                                             "bedroomcount", "yearbuilt"}
                  : std::vector<std::string>{};
    auto view_or =
        TableView::Create(*db.GetTable("homes").value(), shadow,
                          std::move(rows), columns);
    EXPECT_TRUE(view_or.ok());
    view = std::move(view_or).value();
    materialized = view.Materialize();
    for (size_t i = 0; i < view.num_rows(); ++i) {
      all_tuples.push_back(i);
    }
  }
};

TEST(ColumnarEquivalenceTest, ViewMaterializeMatchesSelectRowsProject) {
  const ViewFixture f(true);
  std::vector<size_t> rows;
  for (size_t r = 0; r < f.table.num_rows(); r += 2) {
    rows.push_back(r);
  }
  AUTOCAT_ASSERT_OK_AND_MOVE(Table selected, f.table.SelectRows(rows));
  AUTOCAT_ASSERT_OK_AND_MOVE(
      Table expected,
      selected.Project({"neighborhood", "price", "bedroomcount",
                        "yearbuilt"}));
  ExpectTablesBitIdentical(expected, f.materialized,
                           "view materialization");
  // ValueAt through the view reads the same cells without materializing.
  for (size_t r = 0; r < f.view.num_rows(); ++r) {
    for (size_t c = 0; c < f.view.num_columns(); ++c) {
      EXPECT_TRUE(BitIdentical(f.view.ValueAt(r, c), expected.ValueAt(r, c)))
          << "view cell " << r << "," << c;
    }
  }
}

TEST(ColumnarEquivalenceTest, ColumnStatsViewVsMaterialized) {
  for (const bool projected : {false, true}) {
    const ViewFixture f(projected);
    for (size_t c = 0; c < f.view.num_columns(); ++c) {
      AUTOCAT_ASSERT_OK_AND_MOVE(ColumnStats from_view,
                                 ColumnStats::Compute(f.view, c));
      AUTOCAT_ASSERT_OK_AND_MOVE(ColumnStats from_table,
                                 ColumnStats::Compute(f.materialized, c));
      EXPECT_EQ(from_view.column_name, from_table.column_name);
      EXPECT_EQ(from_view.row_count, from_table.row_count);
      EXPECT_EQ(from_view.null_count, from_table.null_count);
      ASSERT_EQ(from_view.value_counts.size(),
                from_table.value_counts.size())
          << from_view.column_name;
      auto it_v = from_view.value_counts.begin();
      auto it_t = from_table.value_counts.begin();
      for (; it_t != from_table.value_counts.end(); ++it_v, ++it_t) {
        EXPECT_TRUE(BitIdentical(it_v->first, it_t->first))
            << from_view.column_name;
        EXPECT_EQ(it_v->second, it_t->second) << from_view.column_name;
      }
      EXPECT_TRUE(BitIdentical(from_view.min, from_table.min))
          << from_view.column_name;
      EXPECT_TRUE(BitIdentical(from_view.max, from_table.max))
          << from_view.column_name;
    }
  }
}

WorkloadStats FuzzStats() {
  const std::vector<std::string> sqls = {
      "SELECT * FROM homes WHERE price BETWEEN 100000 AND 200000",
      "SELECT * FROM homes WHERE price <= 300000 AND neighborhood IN "
      "('Redmond', 'Bellevue')",
      "SELECT * FROM homes WHERE bedroomcount >= 3",
      "SELECT * FROM homes WHERE propertytype = 'Condo' AND price <= "
      "250000",
      "SELECT * FROM homes WHERE yearbuilt >= 1990 AND squarefootage "
      "BETWEEN 1000 AND 3000",
      "SELECT * FROM homes WHERE neighborhood = 'Seattle' AND "
      "bedroomcount BETWEEN 2 AND 4",
  };
  const Schema schema = FuzzSchema();
  const Workload workload = Workload::Parse(sqls, schema, nullptr);
  EXPECT_EQ(workload.size(), sqls.size());
  WorkloadStatsOptions options;
  options.split_intervals = {{"price", 5000},
                             {"squarefootage", 100},
                             {"yearbuilt", 5},
                             {"bedroomcount", 1},
                             {"bathcount", 1}};
  auto stats = WorkloadStats::Build(workload, schema, options);
  EXPECT_TRUE(stats.ok());
  return std::move(stats).value();
}

void ExpectPartitionsIdentical(
    const std::vector<PartitionCategory>& from_table,
    const std::vector<PartitionCategory>& from_view,
    const std::string& context) {
  ASSERT_EQ(from_table.size(), from_view.size()) << context;
  for (size_t i = 0; i < from_table.size(); ++i) {
    const CategoryLabel& a = from_table[i].label;
    const CategoryLabel& b = from_view[i].label;
    EXPECT_EQ(a.attribute(), b.attribute()) << context;
    ASSERT_EQ(a.is_categorical(), b.is_categorical()) << context;
    if (a.is_categorical()) {
      ASSERT_EQ(a.values().size(), b.values().size()) << context;
      for (size_t v = 0; v < a.values().size(); ++v) {
        EXPECT_TRUE(BitIdentical(a.values()[v], b.values()[v])) << context;
      }
    } else {
      EXPECT_TRUE(BitIdentical(Value(a.lo()), Value(b.lo()))) << context;
      EXPECT_TRUE(BitIdentical(Value(a.hi()), Value(b.hi()))) << context;
      EXPECT_EQ(a.hi_inclusive(), b.hi_inclusive()) << context;
    }
    EXPECT_EQ(from_table[i].tuples, from_view[i].tuples)
        << context << " category " << i;
  }
}

TEST(ColumnarEquivalenceTest, PartitionersViewVsTable) {
  const WorkloadStats stats = FuzzStats();
  for (const bool projected : {false, true}) {
    const ViewFixture f(projected);
    const std::string tag = projected ? " (projected)" : " (all columns)";

    for (const std::string attr : {"neighborhood", "price"}) {
      const bool numeric = attr == "price";
      if (numeric) {
        NumericPartitionOptions options;
        AUTOCAT_ASSERT_OK_AND_MOVE(
            auto from_table,
            PartitionNumeric(f.materialized, f.all_tuples, attr, stats,
                             options, nullptr));
        AUTOCAT_ASSERT_OK_AND_MOVE(
            auto from_view,
            PartitionNumeric(f.view, f.all_tuples, attr, stats, options,
                             nullptr));
        ExpectPartitionsIdentical(from_table, from_view,
                                  "PartitionNumeric " + attr + tag);

        AUTOCAT_ASSERT_OK_AND_MOVE(
            auto ew_table,
            PartitionNumericEquiWidth(f.materialized, f.all_tuples, attr,
                                      25000, nullptr));
        AUTOCAT_ASSERT_OK_AND_MOVE(
            auto ew_view,
            PartitionNumericEquiWidth(f.view, f.all_tuples, attr, 25000,
                                      nullptr));
        ExpectPartitionsIdentical(ew_table, ew_view,
                                  "PartitionNumericEquiWidth " + attr +
                                      tag);
      } else {
        AUTOCAT_ASSERT_OK_AND_MOVE(
            auto from_table,
            PartitionCategorical(f.materialized, f.all_tuples, attr,
                                 stats));
        AUTOCAT_ASSERT_OK_AND_MOVE(
            auto from_view,
            PartitionCategorical(f.view, f.all_tuples, attr, stats));
        ExpectPartitionsIdentical(from_table, from_view,
                                  "PartitionCategorical " + attr + tag);

        // Same seed on both sides: the shuffle order must match too.
        Random rng_table(7);
        Random rng_view(7);
        AUTOCAT_ASSERT_OK_AND_MOVE(
            auto arb_table,
            PartitionCategoricalArbitrary(f.materialized, f.all_tuples,
                                          attr, &rng_table));
        AUTOCAT_ASSERT_OK_AND_MOVE(
            auto arb_view,
            PartitionCategoricalArbitrary(f.view, f.all_tuples, attr,
                                          &rng_view));
        ExpectPartitionsIdentical(arb_table, arb_view,
                                  "PartitionCategoricalArbitrary " + attr +
                                      tag);
      }
    }
  }
}

TEST(ColumnarEquivalenceTest, RankingViewVsTable) {
  const WorkloadStats stats = FuzzStats();
  const ViewFixture f(false);
  const std::vector<std::string> attributes = {"neighborhood", "price",
                                               "bedroomcount"};
  AUTOCAT_ASSERT_OK_AND_MOVE(
      std::vector<size_t> from_table,
      RankTuples(f.materialized, f.all_tuples, attributes, stats));
  AUTOCAT_ASSERT_OK_AND_MOVE(
      std::vector<size_t> from_view,
      RankTuples(f.view, f.all_tuples, attributes, stats));
  EXPECT_EQ(from_table, from_view);
  for (size_t r = 0; r < f.view.num_rows(); r += 13) {
    AUTOCAT_ASSERT_OK_AND_MOVE(
        const double score_table,
        TupleScore(f.materialized, r, attributes, stats));
    AUTOCAT_ASSERT_OK_AND_MOVE(const double score_view,
                               TupleScore(f.view, r, attributes, stats));
    EXPECT_EQ(score_table, score_view) << "row " << r;
  }
}

TEST(ColumnarEquivalenceTest, CostBasedCategorizerViewVsTable) {
  const WorkloadStats stats = FuzzStats();
  const ViewFixture f(false);
  CategorizerOptions options;
  options.candidate_attributes = {"neighborhood", "propertytype", "price",
                                  "bedroomcount"};
  options.attribute_usage_threshold = 0.0;
  const CostBasedCategorizer categorizer(&stats, options);

  auto query = ParseQuery("SELECT * FROM homes WHERE price <= 900000");
  ASSERT_TRUE(query.ok());
  auto profile = SelectionProfile::FromQuery(query.value(), FuzzSchema());
  ASSERT_TRUE(profile.ok());

  AUTOCAT_ASSERT_OK_AND_MOVE(
      const CategoryTree from_table,
      categorizer.Categorize(f.materialized, &profile.value()));
  AUTOCAT_ASSERT_OK_AND_MOVE(
      const CategoryTree from_view,
      categorizer.Categorize(f.view, f.materialized, &profile.value()));

  EXPECT_EQ(from_table.level_attributes(), from_view.level_attributes());
  ASSERT_EQ(from_table.num_nodes(), from_view.num_nodes());
  for (size_t id = 0; id < from_table.num_nodes(); ++id) {
    const CategoryNode& a = from_table.node(static_cast<NodeId>(id));
    const CategoryNode& b = from_view.node(static_cast<NodeId>(id));
    EXPECT_EQ(a.parent, b.parent) << "node " << id;
    EXPECT_EQ(a.children, b.children) << "node " << id;
    EXPECT_EQ(a.tuples, b.tuples) << "node " << id;
    EXPECT_EQ(a.label.ToString(), b.label.ToString()) << "node " << id;
  }

  // A mismatched view is rejected rather than silently miscombined.
  const ViewFixture other(true);
  EXPECT_FALSE(
      categorizer.Categorize(other.view, f.materialized, &profile.value())
          .ok());
}

}  // namespace
}  // namespace autocat
