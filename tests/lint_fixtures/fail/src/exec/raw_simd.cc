// Fixture: raw vector intrinsics outside src/exec/simd_kernels.cc.
// Exactly four raw-simd violations — the suppressed line and the
// prefixed lookalikes must not count.

#include <immintrin.h>

void Vectorize(const long* vals, unsigned long* bits) {
  __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals));
  __m256d y = _mm256_setzero_pd();
  x = _mm256_add_epi64(x, x);
  (void)x;
  (void)y;
  // Suppressed: does not count.
  bits[0] = _mm256_movemask_pd(y);  // autocat-lint: allow(raw-simd)
}

void Lookalikes() {
  // Prefixed identifiers and helper names are fine.
  int x__m256 = 0;
  (void)x__m256;
  my_mm256_helper(x__m256);
  // __m256i inside a comment or string never counts: "_mm256_add_epi64(".
}
