// Lint fixture: direct ParallelFor dispatch from operator code. The
// morsel scheduler TU (src/exec/pipeline/scheduler.cc) is the only
// sanctioned caller in src/exec/ and src/serve/; these three calls must
// each trip rule direct-parallel-for, and the lookalikes below must not.
namespace autocat {

Status ScanBare(const ParallelOptions& options) {
  return ParallelFor(options, 0, 128, 1, [](size_t) {});
}

Status ScanQualified(const ParallelOptions& options) {
  return autocat::ParallelFor(options, 0, 128, 1, [](size_t) {});
}

Status ScanGlobal(const ParallelOptions& options) {
  return ::ParallelFor(options, 0, 128, 1, [](size_t) {});
}

Status Lookalikes(ThreadPool& pool, const ParallelOptions& options) {
  Status helper = RunParallelFor(0, 128);
  Status member = pool.ParallelFor(0, 128, 1, [](size_t) {});
  Status shared = ThreadPool::Shared().ParallelFor(0, 128, 1, [](size_t) {});
  // A comment mentioning ParallelFor( does not count, nor does a string:
  const char* name = "ParallelFor(begin, end)";
  Status quiet = ParallelFor(  // autocat-lint: allow(direct-parallel-for)
      options, 0, 128, 1, [](size_t) {});
  return helper;
}

}  // namespace autocat
