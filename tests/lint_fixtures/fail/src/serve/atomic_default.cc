// Fixture for the atomic-order rule: atomic operations relying on the
// implicit seq_cst default. Carries exactly four violations; the
// explicit-order calls (including the multi-line compare-exchange) and
// the suppressed line must not count.
namespace autocat {

// atomic-order: relaxed — fixture counter; the rule under test is the
// call sites below, so the declaration itself is documented.
std::atomic<int> counter{0};

void DefaultedOrders(int expected) {
  counter.load();
  counter.store(1);
  counter.fetch_add(2);
  counter.exchange(3);
  counter.fetch_sub(1);  // autocat-lint: allow(atomic-order)
  counter.load(std::memory_order_acquire);
  counter.store(4, std::memory_order_release);
  counter.compare_exchange_strong(expected, 5,
                                  std::memory_order_acq_rel,
                                  std::memory_order_acquire);
}

}  // namespace autocat
