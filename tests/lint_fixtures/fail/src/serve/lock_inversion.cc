// Fixture for the lock-order rule: acquires the service state lock
// while a cache shard lock is held, inverting the declared order
// (state_mu_ is outermost). Carries exactly one violation — the
// correctly ordered nesting below must not count.
namespace autocat {

void Inverted(Shard& shard) {
  MutexLock shard_lock(shard.mu);
  WriterLock state_lock(state_mu_);
}

void Ordered(Shard& shard) {
  WriterLock state_lock(state_mu_);
  MutexLock shard_lock(shard.mu);
}

}  // namespace autocat
