// Fixture for the unordered-container rule: a serving-layer file keying
// state by hash order. Carries exactly three violations (the include and
// the two container mentions); the suppressed line and the comment/string
// mentions below must not trip the rule.
#include <unordered_map>

#include <map>
#include <string>

namespace autocat {

// std::unordered_map in a comment is fine.
void AccumulateCounters() {
  std::unordered_map<std::string, int> counters;
  counters["hit"] = 1;
  const std::string note = "std::unordered_set in a string is fine";
  (void)note;
  std::unordered_set<std::string> keys;  // NOLINT
  std::map<std::string, int> allowed;    // the sanctioned container
  (void)allowed;
  std::unordered_map<int, int> tolerated;  // autocat-lint: allow(unordered-container)
  (void)tolerated;
}

}  // namespace autocat
