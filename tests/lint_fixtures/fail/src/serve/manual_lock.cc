// Fixture for the manual-lock rule: bare lock()/unlock() calls instead
// of RAII guards. Carries exactly four violations; the suppressed call
// and the mu.lock() mentions in this comment and the string below must
// not count.
namespace autocat {

void ManualLocking(Guard& mu, Guard* rw) {
  mu.lock();
  mu.unlock();
  rw->lock_shared();
  rw->unlock_shared();
  mu.try_lock();  // autocat-lint: allow(manual-lock)
  const char* note = "mu.lock() in a string";
  (void)note;
}

}  // namespace autocat
