// Fixture for the unannotated-sync rule: raw std synchronization
// primitives in the annotated tree. Carries exactly five violations:
// the include, the three raw types, and the undocumented atomic. The
// suppressed line, the documented atomic, and the std::mutex mention in
// this comment must not count.
#include <mutex>

namespace autocat {

struct RawState {
  std::mutex m;
  std::shared_mutex rw;
  std::condition_variable cv;
  std::atomic<int> pending{0};
  std::atomic<bool> stop{false};  // autocat-lint: allow(unannotated-sync)
  // atomic-order: relaxed — documented, so this member must not count.
  std::atomic<int> documented{0};
};

}  // namespace autocat
