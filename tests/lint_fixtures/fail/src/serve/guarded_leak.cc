// Fixture for the guarded-read rule: reads of an AUTOCAT_GUARDED_BY
// field outside any guard scope or annotated function. Carries exactly
// two violations: the bare read in Peek and the write after the guard's
// block closes; the locked accesses, the annotated accessor, and the
// suppressed line must not count.
namespace autocat {

struct Queue {
  Mutex mu;
  int depth_ AUTOCAT_GUARDED_BY(mu) = 0;
};

int Peek(const Queue& queue) {
  return queue.depth_;
}

void Reset(Queue& queue) {
  {
    MutexLock lock(queue.mu);
    queue.depth_ = 0;
  }
  queue.depth_ = 1;
  queue.depth_ = 2;  // autocat-lint: allow(guarded-read)
}

int PeekLocked(const Queue& queue) AUTOCAT_REQUIRES(queue.mu) {
  return queue.depth_;
}

}  // namespace autocat
