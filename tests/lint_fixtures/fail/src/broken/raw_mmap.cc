// Fixture: raw file-mapping syscalls outside src/store/. Exactly four
// raw-mmap violations — the suppressed call and the member/prefixed
// lookalikes must not count.

void MapIt(const char* path) {
  int fd = open(path, 0);
  (void)ftruncate(fd, 4096);
  void* base = mmap(nullptr, 4096, 0, 0, fd, 0);
  munmap(base, 4096);
  // Suppressed: does not count.
  msync(base, 4096, 0);  // autocat-lint: allow(raw-mmap)
}

void Lookalikes() {
  // Member opens, fopen, is_open, and capitalized Open are all fine.
  stream.open("x");
  file->open("y");
  (void)fopen("z", "r");
  if (stream.is_open()) {
  }
  (void)MappedFile::Open("w");
  // mmap( inside a comment or string never counts: "mmap(never)".
}
