#include "widget/widget.h"

namespace autocat {

// Fixture: both Status-returning calls are dropped on the floor.
void Sloppy() {
  LoadWidget("a");
  SaveWidget("b");
}

}  // namespace autocat
