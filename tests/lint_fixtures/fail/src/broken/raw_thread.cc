// Fixture for the raw-thread rule: spawns a thread directly instead of
// going through ThreadPool / ParallelFor. Carries exactly two violations
// (the include and the construction).
#include <thread>

void SpawnDirectly() {
  std::thread worker([] {});
  worker.join();
}
