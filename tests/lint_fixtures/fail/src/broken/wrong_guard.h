#ifndef SOME_OTHER_GUARD_H
#define SOME_OTHER_GUARD_H

// Fixture: guard does not match AUTOCAT_BROKEN_WRONG_GUARD_H_.

#endif  // SOME_OTHER_GUARD_H
