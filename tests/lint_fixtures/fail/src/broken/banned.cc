#include <cassert>
#include <cstdlib>

// Fixture: three banned calls outside src/common.
void Crash(int n) {
  assert(n > 0);
  if (n == 1) {
    std::abort();
  }
  int unused = rand();
  (void)unused;
}
