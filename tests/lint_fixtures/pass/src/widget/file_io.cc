// Fixture: file I/O idioms outside src/store/ that the raw-mmap rule
// must accept — iostream member opens, fopen, is_open probes, the
// capitalized MappedFile::Open entry point, and mentions in comments and
// strings.

void ReadConfig(const char* path) {
  std::ifstream in;
  in.open(path);
  if (!in.is_open()) {
    return;
  }
}

void WriteLog(Logger* logger) {
  logger->open("log.txt");
  FILE* f = fopen("raw.txt", "w");
  (void)f;
  // Raw mmap(2) and ftruncate(2) live behind MappedFile::Open.
  const char* doc = "call mmap( through store/mapped_file.h";
  (void)doc;
  (void)MappedFile::Open("homes.store");
}
