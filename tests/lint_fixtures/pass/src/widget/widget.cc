#include "widget/widget.h"

namespace autocat {

// Fixture: every Status return is consumed; the mention of abort() in
// this comment and in the "call abort() now" string below must not trip
// the banned-call rule.
Status UseWidget(const std::string& name) {
  Status s = LoadWidget(name);
  if (!s.ok()) {
    return s;
  }
  const std::string msg = "call abort() now";
  (void)msg;
  return SaveWidget(name);
}

}  // namespace autocat
