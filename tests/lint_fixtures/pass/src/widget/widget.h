#ifndef AUTOCAT_WIDGET_WIDGET_H_
#define AUTOCAT_WIDGET_WIDGET_H_

#include <string>

namespace autocat {

class Status;

/// Fixture: a clean header the lint must accept — guard derived from its
/// path, no banned calls, declarations only.
Status LoadWidget(const std::string& name);
Status SaveWidget(const std::string& name);

}  // namespace autocat

#endif  // AUTOCAT_WIDGET_WIDGET_H_
