// Fixture: a serving-layer file using only ordered containers, which the
// unordered-container rule must accept. The std::unordered_map mention in
// this comment and the string below must not trip it.
#include <map>
#include <set>
#include <string>

namespace autocat {

void SnapshotCounters() {
  std::map<std::string, int> counters;
  counters["hit"] = 1;
  std::set<std::string> keys;
  keys.insert("k");
  const std::string note = "std::unordered_set is banned here";
  (void)note;
}

}  // namespace autocat
