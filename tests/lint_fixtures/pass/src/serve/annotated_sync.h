// Fixture: a serving-layer component following the concurrency
// discipline — capability-annotated wrappers, guarded members, a
// documented atomic, RAII locking — which every concurrency rule must
// accept.
#ifndef AUTOCAT_SERVE_ANNOTATED_SYNC_H_
#define AUTOCAT_SERVE_ANNOTATED_SYNC_H_

namespace autocat {

class Counters {
 public:
  void Bump() AUTOCAT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++total_;
  }

  int total_locked() const AUTOCAT_REQUIRES(mu_) { return total_; }

 private:
  mutable Mutex mu_;
  int total_ AUTOCAT_GUARDED_BY(mu_) = 0;
  // atomic-order: relaxed — a monotonically increasing tick with no
  // ordering obligations to any other field.
  std::atomic<int> ticks_{0};
};

}  // namespace autocat

#endif  // AUTOCAT_SERVE_ANNOTATED_SYNC_H_
