// Fixture: every access to the guarded fields happens under a RAII
// guard or inside an AUTOCAT_REQUIRES-annotated function (including one
// whose signature spans lines); guarded-read must accept the file.
namespace autocat {

struct Ledger {
  Mutex mu;
  long balance AUTOCAT_GUARDED_BY(mu) = 0;
  long entries_ AUTOCAT_GUARDED_BY(mu) = 0;
};

void Deposit(Ledger& ledger, long amount) {
  MutexLock lock(ledger.mu);
  ledger.balance += amount;
  ledger.entries_ += 1;
}

long BalanceLocked(const Ledger& ledger) AUTOCAT_REQUIRES(ledger.mu) {
  return ledger.balance;
}

long EntriesLocked(const Ledger& ledger)
    AUTOCAT_REQUIRES(ledger.mu)
{
  return ledger.entries_;
}

long Drain(Ledger& ledger) {
  long drained = 0;
  {
    MutexLock lock(ledger.mu);
    drained = ledger.balance;
    ledger.balance = 0;
  }
  return drained;
}

}  // namespace autocat
