// Fixture: RAII-only locking in the declared order with explicit atomic
// memory orders; the concurrency rules must accept all of it. The
// mu_.lock() mention in this comment and the string below must not trip
// manual-lock.
namespace autocat {

void OrderedAcquisition(Service& service, Shard& shard) {
  WriterLock state_lock(state_mu_);
  {
    MutexLock shard_lock(shard.mu);
    shard.pending = 0;
  }
}

void ExplicitOrders(ForState& state) {
  state.next.fetch_add(1, std::memory_order_relaxed);
  if (!state.failed.load(std::memory_order_acquire)) {
    state.failed.store(true, std::memory_order_release);
  }
  const char* note = "never call mu_.lock() by hand";
  (void)note;
}

}  // namespace autocat
