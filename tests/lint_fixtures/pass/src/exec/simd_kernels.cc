// Fixture: the one TU where raw vector intrinsics are allowed — the
// raw-simd rule exempts exactly this path.

#include <immintrin.h>

bool CompareLanes(const long* vals, unsigned long* bits) {
  __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals));
  __m256i eq = _mm256_cmpeq_epi64(x, x);
  bits[0] = static_cast<unsigned long>(
      _mm256_movemask_pd(_mm256_castsi256_pd(eq)));
  return true;
}
