// Lint fixture: the sanctioned dispatch point. A direct ParallelFor call
// in this TU is exempt from rule direct-parallel-for by path — every
// other file under src/exec/ and src/serve/ must go through the morsel
// scheduler this TU implements.
namespace autocat {

Status RunMorselPipeline(const ParallelOptions& options, size_t morsels) {
  return ParallelFor(options, 0, morsels, 1, [](size_t) {});
}

}  // namespace autocat
