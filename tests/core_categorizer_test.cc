// Tests for the three categorization techniques (Figure 6 and the
// Section 6.1 baselines) and the enumerative validation tools.

#include "core/categorizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.h"
#include "common/string_util.h"
#include "core/cost_model.h"
#include "core/enumerate.h"
#include "core/probability.h"
#include "test_util.h"

namespace autocat {
namespace {

using test::HomesTable;
using test::StatsFromSql;

// A workload in which neighborhood and price are popular, bedrooms less
// so, and propertytype never used.
std::vector<std::string> RichWorkload() {
  std::vector<std::string> sqls;
  for (int i = 0; i < 10; ++i) {
    sqls.push_back(
        std::string("SELECT * FROM homes WHERE neighborhood = '") +
        (i % 2 == 0 ? "a" : "b") + "'");
  }
  for (int i = 0; i < 8; ++i) {
    const int lo = 1000 * (1 + (i % 3));
    sqls.push_back("SELECT * FROM homes WHERE price BETWEEN " +
                   std::to_string(lo) + " AND " +
                   std::to_string(lo + 2000));
  }
  for (int i = 0; i < 3; ++i) {
    sqls.push_back("SELECT * FROM homes WHERE bedroomcount BETWEEN 2 AND "
                   "3");
  }
  return sqls;
}

Table BigTable(size_t rows) {
  Random rng(5);
  std::vector<test::HomeRow> data;
  const char* kNeighborhoods[] = {"a", "b", "c"};
  const char* kTypes[] = {"Single Family", "Condo"};
  for (size_t i = 0; i < rows; ++i) {
    data.push_back(test::HomeRow{
        kNeighborhoods[rng.Uniform(0, 2)],
        rng.Uniform(1, 8) * 1000,
        rng.Uniform(1, 5),
        kTypes[rng.Uniform(0, 1)],
    });
  }
  return HomesTable(data);
}

// Structural invariants of every permissible tree (Section 3.1).
void ExpectValidTree(const CategoryTree& tree) {
  // 1:1 level/attribute association and no attribute reuse.
  std::set<std::string> used(tree.level_attributes().begin(),
                             tree.level_attributes().end());
  EXPECT_EQ(used.size(), tree.level_attributes().size())
      << "an attribute was reused across levels";

  const size_t nb_col =
      tree.result().schema().ColumnIndex("neighborhood").value();
  (void)nb_col;
  for (NodeId id = 0; id < static_cast<NodeId>(tree.num_nodes()); ++id) {
    const CategoryNode& node = tree.node(id);
    if (!node.is_root()) {
      // Level l nodes carry the level-l categorizing attribute.
      ASSERT_LE(static_cast<size_t>(node.level),
                tree.level_attributes().size());
      EXPECT_EQ(ToLower(node.label.attribute()),
                ToLower(tree.level_attributes()[node.level - 1]));
      // Every tuple satisfies its label.
      const size_t col = tree.result()
                             .schema()
                             .ColumnIndex(node.label.attribute())
                             .value();
      for (size_t idx : node.tuples) {
        EXPECT_TRUE(node.label.Matches(tree.result().ValueAt(idx, col)));
      }
      // tset(C) is a subset of the parent's tset.
      const CategoryNode& parent = tree.node(node.parent);
      const std::set<size_t> parent_set(parent.tuples.begin(),
                                        parent.tuples.end());
      for (size_t idx : node.tuples) {
        EXPECT_TRUE(parent_set.count(idx) > 0);
      }
    }
    // Children are mutually disjoint.
    std::set<size_t> seen;
    for (NodeId child : node.children) {
      for (size_t idx : tree.node(child).tuples) {
        EXPECT_TRUE(seen.insert(idx).second)
            << "tuple in two sibling categories";
      }
    }
  }
}

CategorizerOptions SmallOptions() {
  CategorizerOptions options;
  options.max_tuples_per_category = 10;
  options.attribute_usage_threshold = 0.1;
  return options;
}

TEST(CostBasedCategorizerTest, RetainedAttributesHonorThreshold) {
  const WorkloadStats stats = StatsFromSql(RichWorkload());
  CategorizerOptions options;
  options.attribute_usage_threshold = 0.2;
  const CostBasedCategorizer categorizer(&stats, options);
  const auto retained =
      categorizer.RetainedAttributes(test::HomesSchema());
  // neighborhood: 10/21, price: 8/21 retained; bedroomcount 3/21 and
  // propertytype 0/21 eliminated.
  EXPECT_EQ(retained,
            (std::vector<std::string>{"neighborhood", "price"}));
}

TEST(CostBasedCategorizerTest, BuildsValidTreeWithLeafGuarantee) {
  const WorkloadStats stats = StatsFromSql(RichWorkload());
  const Table table = BigTable(300);
  const CostBasedCategorizer categorizer(&stats, SmallOptions());
  const auto tree = categorizer.Categorize(table, nullptr);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  ExpectValidTree(tree.value());
  EXPECT_GT(tree->num_categories(), 0u);
  // Enough attributes were available to push every leaf under M... except
  // where a single attribute value alone exceeds M and no attributes
  // remain; with 3 usable attributes over 300 rows this succeeds.
  EXPECT_LE(tree->max_leaf_tset(), 10u * 8u);
  EXPECT_GE(tree->max_depth(), 2);
}

TEST(CostBasedCategorizerTest, SmallResultStaysUnpartitioned) {
  const WorkloadStats stats = StatsFromSql(RichWorkload());
  const Table table = BigTable(5);
  CategorizerOptions options = SmallOptions();
  options.max_tuples_per_category = 10;
  const CostBasedCategorizer categorizer(&stats, options);
  const auto tree = categorizer.Categorize(table, nullptr);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_categories(), 0u);  // root alone
}

TEST(CostBasedCategorizerTest, MaxLevelsCapsDepth) {
  const WorkloadStats stats = StatsFromSql(RichWorkload());
  const Table table = BigTable(400);
  CategorizerOptions options = SmallOptions();
  options.max_levels = 1;
  const CostBasedCategorizer categorizer(&stats, options);
  const auto tree = categorizer.Categorize(table, nullptr);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->max_depth(), 1);
}

TEST(CostBasedCategorizerTest, EmptyWorkloadStillWorks) {
  const auto stats = WorkloadStats::Build(Workload(), test::HomesSchema(),
                                          test::StatsOptions());
  ASSERT_TRUE(stats.ok());
  const Table table = BigTable(100);
  CategorizerOptions options = SmallOptions();
  options.attribute_usage_threshold = 0.0;  // retain all despite no usage
  const CostBasedCategorizer categorizer(&stats.value(), options);
  const auto tree = categorizer.Categorize(table, nullptr);
  ASSERT_TRUE(tree.ok());
  ExpectValidTree(tree.value());
}

TEST(CostBasedCategorizerTest, AllAttributesEliminatedYieldsRootOnly) {
  const WorkloadStats stats = StatsFromSql(RichWorkload());
  CategorizerOptions options;
  options.attribute_usage_threshold = 0.99;
  const CostBasedCategorizer categorizer(&stats, options);
  const auto tree = categorizer.Categorize(BigTable(100), nullptr);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_categories(), 0u);
}

TEST(CostBasedCategorizerTest, UnknownCandidateAttributeErrors) {
  const WorkloadStats stats = StatsFromSql(RichWorkload());
  CategorizerOptions options = SmallOptions();
  options.candidate_attributes = {"neighborhood", "bogus"};
  options.attribute_usage_threshold = 0.0;
  const CostBasedCategorizer categorizer(&stats, options);
  EXPECT_FALSE(categorizer.Categorize(BigTable(50), nullptr).ok());
}

TEST(CostBasedCategorizerTest, GreedyLevelChoiceIsOneLevelOptimal) {
  // With max_levels = 1, the chosen attribute must beat every fixed
  // single-attribute alternative under the estimated CostAll.
  const WorkloadStats stats = StatsFromSql(RichWorkload());
  const Table table = BigTable(300);
  CategorizerOptions options = SmallOptions();
  options.max_levels = 1;
  const CostBasedCategorizer categorizer(&stats, options);
  const auto chosen = categorizer.Categorize(table, nullptr);
  ASSERT_TRUE(chosen.ok());
  const Schema schema = test::HomesSchema();
  const ProbabilityEstimator estimator(&stats, &schema);
  const CostModel model(&estimator, options.cost_params);
  const double chosen_cost = model.CostAll(chosen.value());
  for (const std::string& attr :
       {std::string("neighborhood"), std::string("price"),
        std::string("bedroomcount")}) {
    const auto fixed = CategorizeWithFixedAttributeOrder(
        table, {attr}, &stats, options, nullptr);
    ASSERT_TRUE(fixed.ok());
    EXPECT_LE(chosen_cost, model.CostAll(fixed.value()) + 1e-9)
        << "attribute " << attr << " beats the greedy choice";
  }
}

TEST(BaselineCategorizersTest, ProduceValidTrees) {
  const WorkloadStats stats = StatsFromSql(RichWorkload());
  const Table table = BigTable(300);
  CategorizerOptions options = SmallOptions();
  options.candidate_attributes = {"neighborhood", "price", "bedroomcount"};

  const AttrCostCategorizer attr_cost(&stats, options);
  const auto attr_tree = attr_cost.Categorize(table, nullptr);
  ASSERT_TRUE(attr_tree.ok());
  ExpectValidTree(attr_tree.value());

  const NoCostCategorizer no_cost(&stats, options);
  const auto no_tree = no_cost.Categorize(table, nullptr);
  ASSERT_TRUE(no_tree.ok());
  ExpectValidTree(no_tree.value());
}

TEST(BaselineCategorizersTest, NoCostDeterministicPerSeed) {
  const WorkloadStats stats = StatsFromSql(RichWorkload());
  const Table table = BigTable(200);
  CategorizerOptions options = SmallOptions();
  options.candidate_attributes = {"neighborhood", "price", "bedroomcount"};
  options.arbitrary_seed = 7;
  const NoCostCategorizer first(&stats, options);
  const NoCostCategorizer second(&stats, options);
  const auto tree_a = first.Categorize(table, nullptr);
  const auto tree_b = second.Categorize(table, nullptr);
  ASSERT_TRUE(tree_a.ok());
  ASSERT_TRUE(tree_b.ok());
  EXPECT_EQ(tree_a->num_nodes(), tree_b->num_nodes());
  EXPECT_EQ(tree_a->level_attributes(), tree_b->level_attributes());
}

TEST(BaselineCategorizersTest, EquiWidthBucketsUseIntervalMultiplier) {
  const WorkloadStats stats = StatsFromSql(RichWorkload());
  const Table table = BigTable(300);
  CategorizerOptions options = SmallOptions();
  options.candidate_attributes = {"price"};
  options.equiwidth_interval_multiplier = 5.0;  // width 5 * 1000
  const AttrCostCategorizer categorizer(&stats, options);
  const auto tree = categorizer.Categorize(table, nullptr);
  ASSERT_TRUE(tree.ok());
  for (NodeId child : tree->node(tree->root()).children) {
    const CategoryLabel& label = tree->node(child).label;
    EXPECT_DOUBLE_EQ(std::fmod(label.lo(), 5000.0), 0.0)
        << label.ToString();
  }
}

TEST(BaselineCategorizersTest, NamesAreStable) {
  const WorkloadStats stats = StatsFromSql(RichWorkload());
  EXPECT_EQ(CostBasedCategorizer(&stats, {}).name(), "Cost-based");
  EXPECT_EQ(AttrCostCategorizer(&stats, {}).name(), "Attr-cost");
  EXPECT_EQ(NoCostCategorizer(&stats, {}).name(), "No cost");
}

TEST(FixedOrderTest, HonorsGivenOrder) {
  const WorkloadStats stats = StatsFromSql(RichWorkload());
  const Table table = BigTable(300);
  const auto tree = CategorizeWithFixedAttributeOrder(
      table, {"price", "neighborhood"}, &stats, SmallOptions(), nullptr);
  ASSERT_TRUE(tree.ok());
  ASSERT_GE(tree->level_attributes().size(), 1u);
  EXPECT_EQ(tree->level_attributes()[0], "price");
  ExpectValidTree(tree.value());
}

// --------------------------------------------------------------- enumerate

TEST(EnumerateTest, OneLevelOptimalNeverWorseThanHeuristic) {
  const WorkloadStats stats = StatsFromSql(RichWorkload());
  const Table table = BigTable(120);
  CategorizerOptions options = SmallOptions();
  options.max_levels = 1;
  const std::vector<std::string> candidates = {"neighborhood", "price",
                                               "bedroomcount"};
  const auto best = EnumerateBestOneLevel(table, candidates, &stats,
                                          options, nullptr);
  ASSERT_TRUE(best.ok()) << best.status().ToString();

  options.candidate_attributes = candidates;
  options.attribute_usage_threshold = 0.0;
  const CostBasedCategorizer categorizer(&stats, options);
  const auto heuristic = categorizer.Categorize(table, nullptr);
  ASSERT_TRUE(heuristic.ok());
  const Schema schema = test::HomesSchema();
  const ProbabilityEstimator estimator(&stats, &schema);
  const CostModel model(&estimator, options.cost_params);
  EXPECT_LE(best->cost, model.CostAll(heuristic.value()) + 1e-9);
}

TEST(EnumerateTest, AttributeOrderSearchCoversGreedy) {
  const WorkloadStats stats = StatsFromSql(RichWorkload());
  const Table table = BigTable(150);
  CategorizerOptions options = SmallOptions();
  const std::vector<std::string> candidates = {"neighborhood", "price"};
  const auto best = EnumerateBestAttributeOrder(table, candidates, &stats,
                                                options, nullptr);
  ASSERT_TRUE(best.ok());

  options.candidate_attributes = candidates;
  options.attribute_usage_threshold = 0.0;
  const CostBasedCategorizer categorizer(&stats, options);
  const auto greedy = categorizer.Categorize(table, nullptr);
  ASSERT_TRUE(greedy.ok());
  const Schema schema = test::HomesSchema();
  const ProbabilityEstimator estimator(&stats, &schema);
  const CostModel model(&estimator, options.cost_params);
  EXPECT_LE(best->cost, model.CostAll(greedy.value()) + 1e-9);
}

TEST(EnumerateTest, InputValidation) {
  const WorkloadStats stats = StatsFromSql(RichWorkload());
  const Table table = BigTable(20);
  CategorizerOptions options;
  EXPECT_FALSE(
      EnumerateBestOneLevel(table, {}, &stats, options, nullptr).ok());
  EXPECT_FALSE(EnumerateBestAttributeOrder(
                   table,
                   {"a1", "a2", "a3", "a4", "a5", "a6", "a7"},
                   &stats, options, nullptr)
                   .ok());
}

}  // namespace
}  // namespace autocat
