// Tests for workload ingestion and the count stores (AttributeUsageCounts,
// OccurrenceCounts, SplitPoints) of Sections 4.2 and 5.

#include <gtest/gtest.h>

#include <fstream>

#include "common/random.h"
#include "workload/counts.h"
#include "workload/workload.h"

namespace autocat {
namespace {

Schema HomesSchema() {
  auto schema = Schema::Create({
      ColumnDef("neighborhood", ValueType::kString,
                ColumnKind::kCategorical),
      ColumnDef("price", ValueType::kInt64, ColumnKind::kNumeric),
      ColumnDef("bedroomcount", ValueType::kInt64, ColumnKind::kNumeric),
  });
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

WorkloadStatsOptions Options() {
  WorkloadStatsOptions options;
  options.split_intervals = {{"price", 1000}, {"bedroomcount", 1}};
  return options;
}

// ---------------------------------------------------------------- workload

TEST(WorkloadTest, ParseKeepsGoodSkipsBad) {
  WorkloadParseReport report;
  const Workload workload = Workload::Parse(
      {
          "SELECT * FROM homes WHERE price BETWEEN 1000 AND 2000",
          "this is not sql",
          "SELECT * FROM homes WHERE neighborhood = 'a' OR price <= 10",
          "SELECT * FROM homes WHERE neighborhood IN ('x', 'y')",
      },
      HomesSchema(), &report);
  EXPECT_EQ(report.total, 4u);
  EXPECT_EQ(report.parsed, 2u);
  EXPECT_EQ(report.parse_errors, 1u);
  EXPECT_EQ(report.unsupported, 1u);
  EXPECT_EQ(workload.size(), 2u);
  EXPECT_FALSE(report.sample_errors.empty());
}

TEST(WorkloadTest, NullReportIsAccepted) {
  const Workload workload = Workload::Parse(
      {"SELECT * FROM homes WHERE price <= 10"}, HomesSchema(), nullptr);
  EXPECT_EQ(workload.size(), 1u);
}

TEST(WorkloadTest, WithoutSplitsEntries) {
  const Workload workload = Workload::Parse(
      {
          "SELECT * FROM homes WHERE price <= 1",
          "SELECT * FROM homes WHERE price <= 2",
          "SELECT * FROM homes WHERE price <= 3",
      },
      HomesSchema(), nullptr);
  std::vector<WorkloadEntry> held_out;
  const Workload rest = workload.Without({1}, &held_out);
  EXPECT_EQ(rest.size(), 2u);
  ASSERT_EQ(held_out.size(), 1u);
  EXPECT_NE(held_out[0].sql.find("<= 2"), std::string::npos);
}

TEST(WorkloadTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/autocat_workload.sql";
  const Workload original = Workload::Parse(
      {"SELECT * FROM homes WHERE price <= 10",
       "SELECT * FROM homes WHERE neighborhood = 'x'"},
      HomesSchema(), nullptr);
  ASSERT_TRUE(original.SaveFile(path).ok());
  WorkloadParseReport report;
  const auto loaded = Workload::LoadFile(path, HomesSchema(), &report);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_FALSE(Workload::LoadFile("/no/such/file", HomesSchema(), nullptr)
                   .ok());
}

TEST(WorkloadTest, FileLoadingSkipsCommentsAndBlanks) {
  const std::string path = ::testing::TempDir() + "/autocat_workload2.sql";
  {
    std::ofstream out(path);
    out << "# a comment\n\n"
        << "SELECT * FROM homes WHERE price <= 10\n"
        << "   \n";
  }
  const auto loaded = Workload::LoadFile(path, HomesSchema(), nullptr);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
}

// ------------------------------------------------------------ count stores

Workload SmallWorkload() {
  return Workload::Parse(
      {
          // 3 queries on neighborhood, 4 on price, 1 on bedroomcount.
          "SELECT * FROM homes WHERE neighborhood IN ('Bellevue', "
          "'Redmond')",
          "SELECT * FROM homes WHERE neighborhood = 'Bellevue' AND price "
          "BETWEEN 2000 AND 5000",
          "SELECT * FROM homes WHERE neighborhood = 'Seattle'",
          "SELECT * FROM homes WHERE price BETWEEN 5000 AND 8000",
          "SELECT * FROM homes WHERE price <= 2000",
          "SELECT * FROM homes WHERE price BETWEEN 2000 AND 8000 AND "
          "bedroomcount BETWEEN 3 AND 4",
      },
      HomesSchema(), nullptr);
}

TEST(WorkloadStatsTest, AttrUsageCounts) {
  const auto stats =
      WorkloadStats::Build(SmallWorkload(), HomesSchema(), Options());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_queries(), 6u);
  EXPECT_EQ(stats->AttrUsageCount("neighborhood"), 3u);
  EXPECT_EQ(stats->AttrUsageCount("price"), 4u);
  EXPECT_EQ(stats->AttrUsageCount("bedroomcount"), 1u);
  EXPECT_EQ(stats->AttrUsageCount("unknown"), 0u);
  EXPECT_DOUBLE_EQ(stats->AttrUsageFraction("price"), 4.0 / 6.0);
}

TEST(WorkloadStatsTest, OccurrenceCounts) {
  const auto stats =
      WorkloadStats::Build(SmallWorkload(), HomesSchema(), Options());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->OccurrenceCount("neighborhood", Value("Bellevue")), 2u);
  EXPECT_EQ(stats->OccurrenceCount("neighborhood", Value("Redmond")), 1u);
  EXPECT_EQ(stats->OccurrenceCount("neighborhood", Value("Seattle")), 1u);
  EXPECT_EQ(stats->OccurrenceCount("neighborhood", Value("Nowhere")), 0u);
}

TEST(WorkloadStatsTest, OccurrenceCountsSortedDescending) {
  const auto stats =
      WorkloadStats::Build(SmallWorkload(), HomesSchema(), Options());
  const auto sorted = stats->OccurrenceCountsSorted("neighborhood");
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].first, Value("Bellevue"));
  EXPECT_EQ(sorted[0].second, 2u);
  // Redmond and Seattle tie at 1; value order breaks the tie.
  EXPECT_EQ(sorted[1].first, Value("Redmond"));
  EXPECT_EQ(sorted[2].first, Value("Seattle"));
}

TEST(WorkloadStatsTest, NumericOccurrenceCountsRangeContainment) {
  const auto stats =
      WorkloadStats::Build(SmallWorkload(), HomesSchema(), Options());
  // Price 3000 is inside [2000,5000] and [2000,8000]: 2 conditions.
  EXPECT_EQ(stats->OccurrenceCount("price", Value(3000)), 2u);
  // Price 2000 is in [2000,5000], (-inf,2000], [2000,8000]: 3.
  EXPECT_EQ(stats->OccurrenceCount("price", Value(2000)), 3u);
}

TEST(WorkloadStatsTest, RangeOverlapCounting) {
  const auto stats =
      WorkloadStats::Build(SmallWorkload(), HomesSchema(), Options());
  // Ranges on price: [2000,5000], [5000,8000], (-inf,2000], [2000,8000].
  EXPECT_EQ(stats->CountConditionsOverlappingInterval("price", 0, 1000),
            1u);
  EXPECT_EQ(stats->CountConditionsOverlappingInterval("price", 3000, 4000),
            2u);
  EXPECT_EQ(stats->CountConditionsOverlappingInterval("price", 5000, 5000),
            3u);
  EXPECT_EQ(stats->CountConditionsOverlappingInterval("price", 0, 9000),
            4u);
  EXPECT_EQ(
      stats->CountConditionsOverlappingInterval("price", 9000, 10000), 0u);
  EXPECT_EQ(stats->CountConditionsOverlappingInterval("unknown", 0, 1), 0u);
}

TEST(WorkloadStatsTest, SetOverlapCounting) {
  const auto stats =
      WorkloadStats::Build(SmallWorkload(), HomesSchema(), Options());
  EXPECT_EQ(stats->CountConditionsOverlappingSet(
                "neighborhood", {Value("Bellevue"), Value("Seattle")}),
            3u);
  EXPECT_EQ(stats->CountConditionsOverlappingSet("neighborhood",
                                                 {Value("Redmond")}),
            1u);
  EXPECT_EQ(
      stats->CountConditionsOverlappingSet("neighborhood", {Value("X")}),
      0u);
  EXPECT_EQ(stats->CountConditionsOverlappingSet("neighborhood", {}), 0u);
}

TEST(WorkloadStatsTest, SplitPointsHaveStartEndCounts) {
  const auto stats =
      WorkloadStats::Build(SmallWorkload(), HomesSchema(), Options());
  const auto points = stats->SplitPointsInRange("price", 0, 10000);
  // Interior points with nonzero goodness: 2000 (start of 2, end of 1),
  // 5000 (end of 1, start of 1), 8000 is an endpoint of ranges ending
  // there (end of 2).
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].v, 2000);
  EXPECT_EQ(points[0].start, 2u);
  EXPECT_EQ(points[0].end, 1u);
  EXPECT_EQ(points[0].goodness(), 3u);
  EXPECT_DOUBLE_EQ(points[1].v, 5000);
  EXPECT_EQ(points[1].start, 1u);
  EXPECT_EQ(points[1].end, 1u);
  EXPECT_DOUBLE_EQ(points[2].v, 8000);
  EXPECT_EQ(points[2].end, 2u);
}

TEST(WorkloadStatsTest, SplitPointsRangeIsExclusive) {
  const auto stats =
      WorkloadStats::Build(SmallWorkload(), HomesSchema(), Options());
  // (2000, 8000) excludes both endpoints.
  const auto points = stats->SplitPointsInRange("price", 2000, 8000);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].v, 5000);
  EXPECT_TRUE(stats->SplitPointsInRange("nothing", 0, 1).empty());
}

TEST(WorkloadStatsTest, EndpointSnappingToGrid) {
  // Interval 1000: endpoints 2499 and 5501 snap outward to 2000 and 6000.
  const Workload workload = Workload::Parse(
      {"SELECT * FROM homes WHERE price BETWEEN 2499 AND 5501"},
      HomesSchema(), nullptr);
  const auto stats =
      WorkloadStats::Build(workload, HomesSchema(), Options());
  const auto points = stats->SplitPointsInRange("price", 0, 100000);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].v, 2000);
  EXPECT_EQ(points[0].start, 1u);
  EXPECT_DOUBLE_EQ(points[1].v, 6000);
  EXPECT_EQ(points[1].end, 1u);
}

TEST(WorkloadStatsTest, CountTableExports) {
  const auto stats =
      WorkloadStats::Build(SmallWorkload(), HomesSchema(), Options());
  const Table usage = stats->AttributeUsageCountsTable(HomesSchema());
  ASSERT_EQ(usage.num_rows(), 3u);
  // Sorted by descending usage: price (4) first.
  EXPECT_EQ(usage.ValueAt(0, 0).string_value(), "price");
  EXPECT_EQ(usage.ValueAt(0, 1).int64_value(), 4);

  const auto occurrence = stats->OccurrenceCountsTable("neighborhood");
  ASSERT_TRUE(occurrence.ok());
  EXPECT_EQ(occurrence->num_rows(), 3u);
  EXPECT_EQ(occurrence->ValueAt(0, 0).string_value(), "Bellevue");

  const auto splits = stats->SplitPointsTable("price");
  ASSERT_TRUE(splits.ok());
  EXPECT_GE(splits->num_rows(), 3u);
  EXPECT_FALSE(stats->SplitPointsTable("neighborhood").ok());
}

TEST(WorkloadStatsTest, EmptyWorkload) {
  const auto stats =
      WorkloadStats::Build(Workload(), HomesSchema(), Options());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_queries(), 0u);
  EXPECT_DOUBLE_EQ(stats->AttrUsageFraction("price"), 0);
  EXPECT_EQ(stats->CountConditionsOverlappingInterval("price", 0, 1), 0u);
}

TEST(WorkloadStatsTest, InvalidOptionsRejected) {
  WorkloadStatsOptions bad;
  bad.default_split_interval = 0;
  EXPECT_FALSE(WorkloadStats::Build(Workload(), HomesSchema(), bad).ok());
  WorkloadStatsOptions negative;
  negative.split_intervals = {{"price", -5}};
  EXPECT_FALSE(
      WorkloadStats::Build(Workload(), HomesSchema(), negative).ok());
  WorkloadStatsOptions upper_key;
  upper_key.split_intervals = {{"Price", 5}};
  EXPECT_FALSE(
      WorkloadStats::Build(Workload(), HomesSchema(), upper_key).ok());
}

TEST(WorkloadStatsTest, SplitIntervalLookup) {
  const auto stats =
      WorkloadStats::Build(Workload(), HomesSchema(), Options());
  EXPECT_DOUBLE_EQ(stats->split_interval("price"), 1000);
  EXPECT_DOUBLE_EQ(stats->split_interval("PRICE"), 1000);
  EXPECT_DOUBLE_EQ(stats->split_interval("other"), 1.0);
}

// Property test: the prefix-sum overlap counter agrees with a brute-force
// scan over the original conditions, for random grid-aligned workloads.
class OverlapCountPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(OverlapCountPropertyTest, FastPathMatchesBruteForce) {
  Random rng(static_cast<uint64_t>(GetParam()));
  std::vector<std::string> sqls;
  std::vector<std::pair<double, double>> ranges;
  const double interval = 1000;
  for (int i = 0; i < 60; ++i) {
    const double lo = interval * static_cast<double>(rng.Uniform(0, 30));
    const double hi =
        lo + interval * static_cast<double>(rng.Uniform(0, 20));
    ranges.emplace_back(lo, hi);
    sqls.push_back("SELECT * FROM homes WHERE price BETWEEN " +
                   Value(lo).ToString() + " AND " + Value(hi).ToString());
  }
  const Workload workload =
      Workload::Parse(sqls, HomesSchema(), nullptr);
  ASSERT_EQ(workload.size(), sqls.size());
  const auto stats =
      WorkloadStats::Build(workload, HomesSchema(), Options());
  ASSERT_TRUE(stats.ok());

  for (int trial = 0; trial < 50; ++trial) {
    const double a = interval * static_cast<double>(rng.Uniform(0, 40));
    const double b = a + interval * static_cast<double>(rng.Uniform(0, 15));
    size_t brute = 0;
    for (const auto& [lo, hi] : ranges) {
      if (hi >= a && lo <= b) {
        ++brute;
      }
    }
    EXPECT_EQ(stats->CountConditionsOverlappingInterval("price", a, b),
              brute)
        << "interval [" << a << ", " << b << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlapCountPropertyTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace autocat
