// End-to-end tests for the categorization service: cache hit/miss flow,
// signature sharing, invalidation on PutTable/RebuildWorkload, deadline
// and overload handling, and deterministic metrics export.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "serve/admission.h"
#include "serve/metrics.h"
#include "serve/service.h"

namespace autocat {
namespace {

Schema HomesSchema() {
  auto schema = Schema::Create({
      ColumnDef("neighborhood", ValueType::kString,
                ColumnKind::kCategorical),
      ColumnDef("price", ValueType::kInt64, ColumnKind::kNumeric),
      ColumnDef("bedroomcount", ValueType::kInt64, ColumnKind::kNumeric),
  });
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

Table HomesTable(size_t rows = 40) {
  const char* kNeighborhoods[] = {"Redmond", "Bellevue", "Seattle",
                                  "Issaquah"};
  Table table(HomesSchema());
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(table
                    .AppendRow({Value(kNeighborhoods[i % 4]),
                                Value(static_cast<int64_t>(
                                    150000 + 5000 * (i % 37))),
                                Value(static_cast<int64_t>(1 + i % 5))})
                    .ok());
  }
  return table;
}

Workload HomesWorkload() {
  const std::vector<std::string> sqls = {
      "SELECT * FROM Homes WHERE neighborhood = 'Redmond'",
      "SELECT * FROM Homes WHERE neighborhood IN ('Redmond', 'Bellevue')",
      "SELECT * FROM Homes WHERE price BETWEEN 150000 AND 250000",
      "SELECT * FROM Homes WHERE price <= 300000 AND bedroomcount >= 2",
      "SELECT * FROM Homes WHERE neighborhood = 'Seattle' AND price >= "
      "200000",
  };
  WorkloadParseReport report;
  Workload workload = Workload::Parse(sqls, HomesSchema(), &report);
  EXPECT_EQ(report.parsed, sqls.size());
  return workload;
}

std::unique_ptr<CategorizationService> MakeService(
    ServiceOptions options = {}) {
  Database db;
  EXPECT_TRUE(db.RegisterTable("Homes", HomesTable()).ok());
  if (options.stats.split_intervals.empty()) {
    options.stats.split_intervals["price"] = 5000;
  }
  return std::make_unique<CategorizationService>(
      std::move(db), HomesWorkload(), std::move(options));
}

TEST(ServiceTest, MissThenHitSharesOnePayload) {
  auto service = MakeService();
  ServeRequest request;
  request.sql = "SELECT * FROM Homes WHERE price <= 300000";

  auto miss = service->Handle(request);
  ASSERT_TRUE(miss.ok()) << miss.status().ToString();
  EXPECT_FALSE(miss->cache_hit);
  EXPECT_GT(miss->payload->result_rows(), 0u);

  auto hit = service->Handle(request);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);
  EXPECT_EQ(hit->payload.get(), miss->payload.get());
  EXPECT_EQ(hit->signature, miss->signature);

  const ServiceMetricsSnapshot snapshot = service->SnapshotMetrics();
  EXPECT_EQ(snapshot.requests_total, 2u);
  EXPECT_EQ(snapshot.by_outcome[static_cast<size_t>(ServeOutcome::kHit)],
            1u);
  EXPECT_EQ(snapshot.by_outcome[static_cast<size_t>(ServeOutcome::kMiss)],
            1u);
}

TEST(ServiceTest, EquivalentSqlFormsHitTheSameEntry) {
  auto service = MakeService();
  ServeRequest a;
  a.sql = "SELECT * FROM Homes WHERE price BETWEEN 200000 AND 300000";
  ServeRequest b;
  b.sql =
      "select * from HOMES where Price >= 200000 and Price <= 300000";
  ASSERT_TRUE(service->Handle(a).ok());
  auto second = service->Handle(b);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
}

TEST(ServiceTest, BucketSnappedConstantsShareAnEntry) {
  // price splits every 5000 (seeded from stats.split_intervals), so both
  // constants canonicalize to price <= 205000 — and the miss executes the
  // snapped query, making hit and miss responses agree.
  auto service = MakeService();
  ServeRequest a;
  a.sql = "SELECT * FROM Homes WHERE price <= 201000";
  ServeRequest b;
  b.sql = "SELECT * FROM Homes WHERE price <= 204999";
  auto miss = service->Handle(a);
  ASSERT_TRUE(miss.ok());
  auto hit = service->Handle(b);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);
  EXPECT_EQ(hit->payload->result_rows(), miss->payload->result_rows());
}

TEST(ServiceTest, BypassCacheAlwaysRunsCold) {
  auto service = MakeService();
  ServeRequest request;
  request.sql = "SELECT * FROM Homes WHERE price <= 300000";
  request.bypass_cache = true;
  ASSERT_TRUE(service->Handle(request).ok());
  auto second = service->Handle(request);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->cache_hit);
  EXPECT_EQ(service->SnapshotMetrics().cache.entries, 0u);
}

TEST(ServiceTest, PutTableInvalidatesCachedEntries) {
  auto service = MakeService();
  ServeRequest request;
  request.sql = "SELECT * FROM Homes WHERE price <= 300000";
  auto before = service->Handle(request);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(service->Handle(request)->cache_hit);

  service->PutTable("Homes", HomesTable(80));

  auto after = service->Handle(request);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->cache_hit);
  // The rebuilt entry reflects the replaced table's contents.
  EXPECT_GT(after->payload->result_rows(), before->payload->result_rows());
  EXPECT_GE(service->SnapshotMetrics().cache.epoch, 1u);
}

TEST(ServiceTest, RebuildWorkloadInvalidatesCachedEntries) {
  auto service = MakeService();
  ServeRequest request;
  request.sql = "SELECT * FROM Homes WHERE price <= 300000";
  ASSERT_TRUE(service->Handle(request).ok());
  ASSERT_TRUE(service->Handle(request)->cache_hit);

  service->RebuildWorkload(HomesWorkload());

  auto after = service->Handle(request);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->cache_hit);
}

TEST(ServiceTest, RegisterTableRejectsDuplicatesAndKeepsCache) {
  auto service = MakeService();
  ServeRequest request;
  request.sql = "SELECT * FROM Homes WHERE price <= 300000";
  ASSERT_TRUE(service->Handle(request).ok());

  EXPECT_EQ(service->RegisterTable("Homes", HomesTable()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(service->RegisterTable("Condos", HomesTable()).ok());

  // Registering a brand-new table does not invalidate existing entries.
  auto hit = service->Handle(request);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);

  ServeRequest condos;
  condos.sql = "SELECT * FROM Condos WHERE price <= 300000";
  auto response = service->Handle(condos);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->cache_hit);
}

TEST(ServiceTest, DeadlineExceededWithInjectedClock) {
  // Every clock read advances 100 ms, so a 50 ms budget expires between
  // admission and execution.
  int64_t now = 0;
  ServiceOptions options;
  options.now_ms = [&now]() {
    now += 100;
    return now;
  };
  auto service = MakeService(std::move(options));
  ServeRequest request;
  request.sql = "SELECT * FROM Homes WHERE price <= 300000";
  request.deadline_ms = 50;
  auto response = service->Handle(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  const ServiceMetricsSnapshot snapshot = service->SnapshotMetrics();
  EXPECT_EQ(snapshot.by_outcome[static_cast<size_t>(
                ServeOutcome::kDeadlineExceeded)],
            1u);
}

TEST(ServiceTest, DefaultDeadlineAppliesWhenRequestHasNone) {
  int64_t now = 0;
  ServiceOptions options;
  options.default_deadline_ms = 50;
  options.now_ms = [&now]() {
    now += 100;
    return now;
  };
  auto service = MakeService(std::move(options));
  ServeRequest request;
  request.sql = "SELECT * FROM Homes WHERE price <= 300000";
  auto response = service->Handle(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ServiceTest, BadRequestsMapToErrorOutcomes) {
  auto service = MakeService();

  ServeRequest malformed;
  malformed.sql = "SELEC * FRM Homes";
  EXPECT_FALSE(service->Handle(malformed).ok());

  ServeRequest unknown_table;
  unknown_table.sql = "SELECT * FROM Castles";
  EXPECT_EQ(service->Handle(unknown_table).status().code(),
            StatusCode::kNotFound);

  ServeRequest unsupported;
  unsupported.sql =
      "SELECT * FROM Homes WHERE price > 100000 OR neighborhood = "
      "'Redmond'";
  EXPECT_EQ(service->Handle(unsupported).status().code(),
            StatusCode::kNotSupported);

  const ServiceMetricsSnapshot snapshot = service->SnapshotMetrics();
  EXPECT_EQ(snapshot.by_outcome[static_cast<size_t>(ServeOutcome::kError)],
            3u);
  EXPECT_EQ(snapshot.requests_total, 3u);
}

TEST(ServiceTest, MetricsJsonIsDeterministic) {
  auto service = MakeService();
  ServeRequest request;
  request.sql = "SELECT * FROM Homes WHERE price <= 300000";
  ASSERT_TRUE(service->Handle(request).ok());
  ASSERT_TRUE(service->Handle(request).ok());

  const std::string a = service->MetricsJson();
  const std::string b = service->MetricsJson();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"requests\":{\"total\":2,\"hit\":1,\"miss\":1"),
            std::string::npos);
  EXPECT_NE(a.find("\"cache\":{"), std::string::npos);
  EXPECT_NE(a.find("\"latency_ms\":{"), std::string::npos);
  EXPECT_NE(a.find("\"queue\":{"), std::string::npos);
}

TEST(ServiceTest, ConcurrentRequestsThroughThreadPool) {
  auto service = MakeService();
  const std::vector<std::string> sqls = {
      "SELECT * FROM Homes WHERE price <= 300000",
      "SELECT * FROM Homes WHERE neighborhood = 'Redmond'",
      "SELECT * FROM Homes WHERE bedroomcount >= 2",
  };
  constexpr size_t kRequests = 48;
  ThreadPool pool(4);
  std::vector<std::future<Status>> done;
  for (size_t i = 0; i < kRequests; ++i) {
    done.push_back(pool.Submit([&service, &sqls, i]() {
      ServeRequest request;
      request.sql = sqls[i % sqls.size()];
      return service->Handle(request).status();
    }));
  }
  for (auto& f : done) {
    EXPECT_TRUE(f.get().ok());
  }
  const ServiceMetricsSnapshot snapshot = service->SnapshotMetrics();
  EXPECT_EQ(snapshot.requests_total, kRequests);
  const uint64_t hits =
      snapshot.by_outcome[static_cast<size_t>(ServeOutcome::kHit)];
  const uint64_t misses =
      snapshot.by_outcome[static_cast<size_t>(ServeOutcome::kMiss)];
  EXPECT_EQ(hits + misses, kRequests);
  // Each distinct signature is categorized at least once; concurrent
  // first requests may race to build the same entry, but steady state is
  // all hits.
  EXPECT_GE(misses, sqls.size());
  EXPECT_GT(hits, 0u);
}

TEST(AdmissionTest, RejectsWhenQueueIsFull) {
  AdmissionController admission(1, 0);
  ASSERT_TRUE(admission.Admit(Deadline::Never()).ok());
  const Status second = admission.Admit(Deadline::Never());
  EXPECT_EQ(second.code(), StatusCode::kOverloaded);
  EXPECT_EQ(admission.rejected(), 1u);
  admission.Release();
  ASSERT_TRUE(admission.Admit(Deadline::Never()).ok());
  admission.Release();
}

TEST(AdmissionTest, QueuedRequestGivesUpAtDeadline) {
  int64_t now = 0;
  AdmissionController admission(1, 4, [&now]() { return now; });
  ASSERT_TRUE(admission.Admit(Deadline::Never()).ok());
  now = 10;
  const Status timed_out = admission.Admit(Deadline::At(10));
  EXPECT_EQ(timed_out.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(admission.queue_high_water(), 1u);
  admission.Release();
}

TEST(AdmissionTest, WaiterProceedsWhenSlotFrees) {
  AdmissionController admission(1, 4);
  ASSERT_TRUE(admission.Admit(Deadline::Never()).ok());
  ThreadPool pool(2);
  auto waiter = pool.Submit([&admission]() {
    AUTOCAT_RETURN_IF_ERROR(admission.Admit(Deadline::Never()));
    admission.Release();
    return Status::OK();
  });
  SleepForMillis(20);
  admission.Release();
  EXPECT_TRUE(waiter.get().ok());
}

// Scripted burst against one execution slot and a two-deep queue, on an
// injected clock: every outcome count is exact, not a range. Runs under
// TSan in the CI matrix (tools/ci.sh --workload), so the queue-waiter
// interleaving is also race-checked.
TEST(AdmissionTest, BurstSettlesToExactCounts) {
  std::atomic<int64_t> now{0};
  AdmissionController admission(
      1, 2, [&now]() { return now.load(std::memory_order_relaxed); });

  // t=0: one request holds the only slot.
  ASSERT_TRUE(admission.Admit(Deadline::Never()).ok());

  // Two requests with a t=50 deadline queue up behind it. ThreadPool(n)
  // keeps n-1 dedicated workers (the caller is the nth), so size 3 gives
  // the two waiters a thread each.
  ThreadPool pool(3);
  std::vector<std::future<Status>> waiters;
  for (int i = 0; i < 2; ++i) {
    waiters.push_back(pool.Submit(
        [&admission]() { return admission.Admit(Deadline::At(50)); }));
  }
  for (int spins = 0; admission.queued() < 2 && spins < 5000; ++spins) {
    SleepForMillis(1);
  }
  ASSERT_EQ(admission.queued(), 2u);

  // The burst overflows: with the queue full, three more are shed
  // immediately with kOverloaded.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(admission.Admit(Deadline::At(50)).code(),
              StatusCode::kOverloaded);
  }

  // The clock jumps past the waiters' deadline; both give up. (Queued
  // waiters re-check the injected clock at least every 100ms of wall
  // time, so no notification is needed.)
  now.store(100, std::memory_order_relaxed);
  for (auto& waiter : waiters) {
    EXPECT_EQ(waiter.get().code(), StatusCode::kDeadlineExceeded);
  }
  EXPECT_EQ(admission.queued(), 0u);

  // The slot frees and a late request sails through.
  admission.Release();
  ASSERT_TRUE(admission.Admit(Deadline::At(200)).ok());
  admission.Release();

  EXPECT_EQ(admission.admitted(), 2u);
  EXPECT_EQ(admission.rejected(), 3u);
  EXPECT_EQ(admission.deadline_exceeded(), 2u);
  EXPECT_EQ(admission.queue_high_water(), 2u);
}

// Replaces every numeric literal outside of strings with 0, leaving the
// key structure: two metrics exports with different counters canonicalize
// to the same schema string.
std::string CanonicalizeMetricsJson(const std::string& json) {
  std::string out;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"') {
      in_string = !in_string;
      out += c;
      continue;
    }
    if (!in_string &&
        (std::isdigit(static_cast<unsigned char>(c)) || c == '-')) {
      while (i + 1 < json.size() &&
             (std::isdigit(static_cast<unsigned char>(json[i + 1])) ||
              json[i + 1] == '.' || json[i + 1] == 'e' ||
              json[i + 1] == 'E' || json[i + 1] == '+' ||
              json[i + 1] == '-')) {
        ++i;
      }
      out += '0';
      continue;
    }
    out += c;
  }
  return out;
}

// Golden-file pin of the MetricsJson schema: dashboards and the workload
// harness parse these keys, so adding a section is a conscious golden
// update, and renaming or dropping one is a test failure.
TEST(ServiceTest, MetricsJsonMatchesGoldenSchema) {
  auto service = MakeService();
  ServeRequest request;
  request.sql = "SELECT * FROM Homes WHERE price <= 300000";
  ASSERT_TRUE(service->Handle(request).ok());
  ASSERT_TRUE(service->Handle(request).ok());

  const std::string canonical =
      CanonicalizeMetricsJson(service->MetricsJson());

  const std::string golden_path =
      std::string(AUTOCAT_GOLDEN_DIR) + "/metrics_schema.json";
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << "; expected contents:\n"
                         << canonical;
  std::ostringstream golden;
  golden << in.rdbuf();
  std::string want = golden.str();
  // The checked-in golden ends with a trailing newline; the export is a
  // single line.
  while (!want.empty() && (want.back() == '\n' || want.back() == '\r')) {
    want.pop_back();
  }
  EXPECT_EQ(canonical, want)
      << "MetricsJson schema changed; update tests/golden/"
         "metrics_schema.json if intentional. Actual canonical form:\n"
      << canonical;

  // Canonicalization must be counter-independent: more traffic, same
  // schema.
  ASSERT_TRUE(service->Handle(request).ok());
  EXPECT_EQ(CanonicalizeMetricsJson(service->MetricsJson()), canonical);
}

TEST(ServiceMetricsTest, RecordAndSnapshot) {
  ServiceMetrics metrics;
  metrics.Record(ServeOutcome::kHit, 0.5);
  metrics.Record(ServeOutcome::kMiss, 5.0);
  metrics.Record(ServeOutcome::kError, 0.1);
  ServiceMetricsSnapshot snapshot;
  metrics.FillSnapshot(&snapshot);
  EXPECT_EQ(snapshot.requests_total, 3u);
  EXPECT_EQ(snapshot.latency_all.count(), 3u);
  EXPECT_EQ(snapshot.latency_hit.count(), 1u);
  EXPECT_EQ(snapshot.latency_miss.count(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.latency_hit.max(), 0.5);
}

}  // namespace
}  // namespace autocat
