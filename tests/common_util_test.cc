// Tests for string utilities, statistics, and the deterministic RNG.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/random.h"
#include "common/statistics.h"
#include "common/string_util.h"

namespace autocat {
namespace {

// ---------------------------------------------------------------- strings

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  abc  "), "abc");
  EXPECT_EQ(TrimWhitespace("abc"), "abc");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("\t a b \n"), "a b");
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Neighborhood", "NEIGHBORHOOD"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
}

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"only"}, ", "), "only");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("SELECT *", "SELECT"));
  EXPECT_FALSE(StartsWith("SELECT", "SELECT *"));
}

TEST(StringUtilTest, HumanizeNumber) {
  EXPECT_EQ(HumanizeNumber(200000), "200K");
  EXPECT_EQ(HumanizeNumber(225000), "225K");
  EXPECT_EQ(HumanizeNumber(1000000), "1M");
  EXPECT_EQ(HumanizeNumber(1500000), "1.5M");
  EXPECT_EQ(HumanizeNumber(1234), "1234");
  EXPECT_EQ(HumanizeNumber(5), "5");
  EXPECT_EQ(HumanizeNumber(2.5), "2.5");
}

// ------------------------------------------------------------- statistics

TEST(StatisticsTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({}), 0);
  EXPECT_DOUBLE_EQ(Mean({2, 4, 6}), 4);
  EXPECT_DOUBLE_EQ(StdDev({5}), 0);
  EXPECT_DOUBLE_EQ(StdDev({2, 2, 2}), 0);
  EXPECT_NEAR(StdDev({1, 2, 3, 4}), std::sqrt(1.25), 1e-12);
}

TEST(StatisticsTest, PerfectPositiveCorrelation) {
  const auto r = PearsonCorrelation({1, 2, 3}, {10, 20, 30});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), 1.0, 1e-12);
}

TEST(StatisticsTest, PerfectNegativeCorrelation) {
  const auto r = PearsonCorrelation({1, 2, 3}, {30, 20, 10});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), -1.0, 1e-12);
}

TEST(StatisticsTest, CorrelationInvariantToAffineTransform) {
  const std::vector<double> x = {1, 4, 2, 8, 5};
  const std::vector<double> y = {2, 5, 4, 9, 7};
  std::vector<double> y_scaled;
  for (double v : y) {
    y_scaled.push_back(3 * v + 100);
  }
  EXPECT_NEAR(PearsonCorrelation(x, y).value(),
              PearsonCorrelation(x, y_scaled).value(), 1e-12);
}

TEST(StatisticsTest, CorrelationErrorCases) {
  EXPECT_FALSE(PearsonCorrelation({1, 2}, {1}).ok());
  EXPECT_FALSE(PearsonCorrelation({1}, {1}).ok());
  EXPECT_FALSE(PearsonCorrelation({1, 1, 1}, {1, 2, 3}).ok());
}

TEST(StatisticsTest, SlopeThroughOrigin) {
  const auto slope = LeastSquaresSlopeThroughOrigin({1, 2, 3}, {2, 4, 6});
  ASSERT_TRUE(slope.ok());
  EXPECT_NEAR(slope.value(), 2.0, 1e-12);
  EXPECT_FALSE(LeastSquaresSlopeThroughOrigin({0, 0}, {1, 2}).ok());
  EXPECT_FALSE(LeastSquaresSlopeThroughOrigin({1, 2}, {1}).ok());
}

TEST(StatisticsTest, Percentile) {
  EXPECT_DOUBLE_EQ(Percentile({5}, 50).value(), 5);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4, 5}, 0).value(), 1);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4, 5}, 100).value(), 5);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4, 5}, 50).value(), 3);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 50).value(), 2.5);
  EXPECT_FALSE(Percentile({}, 50).ok());
  EXPECT_FALSE(Percentile({1}, 101).ok());
}

TEST(StatisticsTest, RunningStat) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_DOUBLE_EQ(stat.mean(), 0);
  stat.Add(2);
  stat.Add(8);
  stat.Add(-1);
  EXPECT_EQ(stat.count(), 3u);
  EXPECT_DOUBLE_EQ(stat.mean(), 3);
  EXPECT_DOUBLE_EQ(stat.min(), -1);
  EXPECT_DOUBLE_EQ(stat.max(), 8);
  EXPECT_DOUBLE_EQ(stat.sum(), 9);
}

// ------------------------------------------------------------------- rng

TEST(RandomTest, DeterministicGivenSeed) {
  Random a(7);
  Random b(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RandomTest, UniformRespectsBounds) {
  Random rng(1);
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.Uniform(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
  EXPECT_EQ(rng.Uniform(5, 5), 5);
}

TEST(RandomTest, UniformRealRespectsBounds) {
  Random rng(2);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.UniformReal(1.5, 2.5);
    EXPECT_GE(v, 1.5);
    EXPECT_LT(v, 2.5);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0));
    EXPECT_TRUE(rng.Bernoulli(1));
  }
  // Out-of-range probabilities are clamped rather than UB.
  EXPECT_TRUE(rng.Bernoulli(2.0));
  EXPECT_FALSE(rng.Bernoulli(-1.0));
}

TEST(RandomTest, GaussianRoughMoments) {
  Random rng(4);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Gaussian(10, 2);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RandomTest, ZipfSkewsTowardLowRanks) {
  Random rng(5);
  size_t first = 0;
  size_t last = 0;
  const size_t n = 10;
  for (int i = 0; i < 20000; ++i) {
    const size_t r = rng.Zipf(n, 1.0);
    ASSERT_LT(r, n);
    if (r == 0) ++first;
    if (r == n - 1) ++last;
  }
  EXPECT_GT(first, 4 * last);
  EXPECT_EQ(rng.Zipf(1, 1.0), 0u);
}

TEST(RandomTest, ZipfZeroExponentIsRoughlyUniform) {
  Random rng(6);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) {
    ++counts[rng.Zipf(4, 0.0)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 600);
  }
}

TEST(RandomTest, WeightedChoiceRespectsWeights) {
  Random rng(7);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) {
    ++counts[rng.WeightedChoice({1, 0, 3})];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.35);
}

TEST(RandomTest, ShufflePreservesElements) {
  Random rng(8);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> original = items;
  rng.Shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, original);
}

TEST(RandomTest, SampleIndicesDistinctAndInRange) {
  Random rng(9);
  const auto sample = rng.SampleIndices(100, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (size_t idx : sample) {
    EXPECT_LT(idx, 100u);
  }
  EXPECT_TRUE(rng.SampleIndices(5, 0).empty());
  EXPECT_EQ(rng.SampleIndices(5, 5).size(), 5u);
}

}  // namespace
}  // namespace autocat
