// Tests for the query canonicalizer behind the serving-layer cache key.

#include <gtest/gtest.h>

#include <string>

#include "serve/signature.h"
#include "sql/parser.h"

namespace autocat {
namespace {

Schema HomesSchema() {
  auto schema = Schema::Create({
      ColumnDef("neighborhood", ValueType::kString,
                ColumnKind::kCategorical),
      ColumnDef("price", ValueType::kInt64, ColumnKind::kNumeric),
      ColumnDef("bedroomcount", ValueType::kInt64, ColumnKind::kNumeric),
  });
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

Result<CanonicalQuery> Canonicalize(const std::string& sql,
                                    const SignatureOptions& options = {}) {
  auto query = ParseQuery(sql);
  if (!query.ok()) {
    return query.status();
  }
  return CanonicalizeQuery(query.value(), HomesSchema(), options);
}

std::string KeyOf(const std::string& sql,
                  const SignatureOptions& options = {}) {
  auto canonical = Canonicalize(sql, options);
  EXPECT_TRUE(canonical.ok()) << canonical.status().ToString();
  return canonical.ok() ? canonical->key : std::string();
}

TEST(SignatureTest, EquivalentWhereFormsShareOneKey) {
  const std::string a =
      KeyOf("SELECT * FROM Homes WHERE price >= 200000 AND price <= 300000");
  const std::string b =
      KeyOf("SELECT * FROM Homes WHERE price BETWEEN 200000 AND 300000");
  EXPECT_EQ(a, b);

  const std::string c = KeyOf(
      "SELECT * FROM Homes WHERE neighborhood IN ('Redmond', 'Bellevue')");
  const std::string d = KeyOf(
      "SELECT * FROM Homes WHERE neighborhood IN ('Bellevue', 'Redmond')");
  EXPECT_EQ(c, d);
}

TEST(SignatureTest, IdentifierCaseAndConditionOrderDoNotMatter) {
  const std::string a = KeyOf(
      "SELECT * FROM HOMES WHERE Price <= 300000 AND NEIGHBORHOOD = "
      "'Redmond'");
  const std::string b = KeyOf(
      "select * from homes where neighborhood = 'Redmond' and price <= "
      "300000");
  EXPECT_EQ(a, b);
}

TEST(SignatureTest, ProjectionIsSortedLowercasedAndKeyed) {
  const std::string a = KeyOf("SELECT Price, NEIGHBORHOOD FROM Homes");
  const std::string b = KeyOf("SELECT neighborhood, price FROM Homes");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, KeyOf("SELECT * FROM Homes"));
  EXPECT_NE(a, KeyOf("SELECT price FROM Homes"));
}

TEST(SignatureTest, BucketSnappingMergesNearbyConstants) {
  SignatureOptions options;
  options.bucket_widths["price"] = 5000;
  const std::string a =
      KeyOf("SELECT * FROM Homes WHERE price <= 201000", options);
  const std::string b =
      KeyOf("SELECT * FROM Homes WHERE price <= 204999", options);
  const std::string c =
      KeyOf("SELECT * FROM Homes WHERE price <= 206000", options);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);

  // Without widths the constants stay exact.
  EXPECT_NE(KeyOf("SELECT * FROM Homes WHERE price <= 201000"),
            KeyOf("SELECT * FROM Homes WHERE price <= 204999"));
}

TEST(SignatureTest, RangesSnapOutward) {
  SignatureOptions options;
  options.bucket_widths["price"] = 5000;
  auto canonical = Canonicalize(
      "SELECT * FROM Homes WHERE price BETWEEN 201000 AND 298000", options);
  ASSERT_TRUE(canonical.ok());
  const AttributeCondition* cond = canonical->profile.Find("price");
  ASSERT_NE(cond, nullptr);
  ASSERT_TRUE(cond->is_range());
  // Low floors, high ceils: the canonical query is a superset of the
  // original, never a subset.
  EXPECT_DOUBLE_EQ(cond->range.lo, 200000);
  EXPECT_DOUBLE_EQ(cond->range.hi, 300000);
  EXPECT_TRUE(cond->range.lo_inclusive);
  EXPECT_TRUE(cond->range.hi_inclusive);
}

TEST(SignatureTest, SnappedProfileIsSupersetOfOriginal) {
  SignatureOptions options;
  options.bucket_widths["price"] = 5000;
  const std::string sql =
      "SELECT * FROM Homes WHERE price BETWEEN 201000 AND 298000";
  auto query = ParseQuery(sql);
  ASSERT_TRUE(query.ok());
  auto original = SelectionProfile::FromQuery(query.value(), HomesSchema());
  ASSERT_TRUE(original.ok());
  auto canonical = Canonicalize(sql, options);
  ASSERT_TRUE(canonical.ok());

  const Schema schema = HomesSchema();
  for (int64_t price : {201000, 250000, 298000}) {
    const Row row = {Value("Redmond"), Value(price), Value(3)};
    ASSERT_TRUE(original->MatchesRow(row, schema));
    EXPECT_TRUE(canonical->profile.MatchesRow(row, schema));
  }
}

TEST(SignatureTest, ValueSetsStayExact) {
  SignatureOptions options;
  options.bucket_widths["bedroomcount"] = 2;
  // Equality is a value set, not a range: never snapped.
  EXPECT_NE(
      KeyOf("SELECT * FROM Homes WHERE bedroomcount = 3", options),
      KeyOf("SELECT * FROM Homes WHERE bedroomcount = 4", options));
}

TEST(SignatureTest, EscapedStringsDoNotCollide) {
  EXPECT_NE(
      KeyOf("SELECT * FROM Homes WHERE neighborhood IN ('a', 'b')"),
      KeyOf("SELECT * FROM Homes WHERE neighborhood = 'a'',''b'"));
}

TEST(SignatureTest, UnknownColumnsAreErrors) {
  EXPECT_FALSE(Canonicalize("SELECT zipcode FROM Homes").ok());
  EXPECT_FALSE(
      Canonicalize("SELECT * FROM Homes WHERE zipcode = 12345").ok());
}

TEST(SignatureTest, NonNormalizableWhereIsNotSupported) {
  auto canonical = Canonicalize(
      "SELECT * FROM Homes WHERE price > 100000 OR neighborhood = "
      "'Redmond'");
  ASSERT_FALSE(canonical.ok());
  EXPECT_EQ(canonical.status().code(), StatusCode::kNotSupported);
}

TEST(SignatureTest, HashMatchesFnv1aReferenceVectors) {
  // Shard selection must be stable across platforms and std-lib versions;
  // pin the classic FNV-1a 64 test vectors.
  EXPECT_EQ(SignatureHash(""), 14695981039346656037ull);
  EXPECT_EQ(SignatureHash("a"), 0xaf63dc4c8601ec8cull);
}

TEST(SignatureTest, KeyIsHumanReadable) {
  auto canonical = Canonicalize(
      "SELECT * FROM Homes WHERE price BETWEEN 200000 AND 300000 AND "
      "neighborhood = 'Redmond'");
  ASSERT_TRUE(canonical.ok());
  EXPECT_EQ(canonical->key,
            "t=homes|c=|w=neighborhood{'Redmond'};price[200000,300000]");
  EXPECT_EQ(canonical->hash, SignatureHash(canonical->key));
}

}  // namespace
}  // namespace autocat
