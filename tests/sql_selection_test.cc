// Tests for NumericRange, AttributeCondition, and SelectionProfile
// normalization (Section 4.2's representation of workload conditions).

#include "sql/selection.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sql/parser.h"

namespace autocat {
namespace {

Schema HomesSchema() {
  auto schema = Schema::Create({
      ColumnDef("neighborhood", ValueType::kString,
                ColumnKind::kCategorical),
      ColumnDef("price", ValueType::kInt64, ColumnKind::kNumeric),
      ColumnDef("bedroomcount", ValueType::kInt64, ColumnKind::kNumeric),
      ColumnDef("propertytype", ValueType::kString,
                ColumnKind::kCategorical),
  });
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

Result<SelectionProfile> ProfileOf(const std::string& where) {
  auto expr = ParseExpression(where);
  if (!expr.ok()) {
    return expr.status();
  }
  return SelectionProfile::FromExpr(*expr.value(), HomesSchema());
}

// ----------------------------------------------------------- NumericRange

TEST(NumericRangeTest, DefaultIsUnbounded) {
  const NumericRange r;
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_FALSE(r.IsBounded());
  EXPECT_TRUE(r.Contains(-1e18));
  EXPECT_TRUE(r.Contains(1e18));
}

TEST(NumericRangeTest, ContainsRespectsInclusivity) {
  NumericRange r;
  r.lo = 10;
  r.hi = 20;
  r.lo_inclusive = true;
  r.hi_inclusive = false;
  EXPECT_TRUE(r.Contains(10));
  EXPECT_TRUE(r.Contains(19.999));
  EXPECT_FALSE(r.Contains(20));
  EXPECT_FALSE(r.Contains(9.999));
}

TEST(NumericRangeTest, EmptyDetection) {
  NumericRange r;
  r.lo = 5;
  r.hi = 4;
  EXPECT_TRUE(r.IsEmpty());
  r.hi = 5;
  EXPECT_FALSE(r.IsEmpty());
  r.hi_inclusive = false;
  EXPECT_TRUE(r.IsEmpty());  // [5, 5) is empty
}

TEST(NumericRangeTest, OverlapsClosed) {
  NumericRange r;
  r.lo = 10;
  r.hi = 20;
  EXPECT_TRUE(r.OverlapsClosed(15, 25));
  EXPECT_TRUE(r.OverlapsClosed(0, 10));    // touches at 10
  EXPECT_TRUE(r.OverlapsClosed(20, 30));   // touches at 20
  EXPECT_FALSE(r.OverlapsClosed(21, 30));
  EXPECT_FALSE(r.OverlapsClosed(0, 9));
  EXPECT_FALSE(r.OverlapsClosed(30, 20));  // inverted interval
  r.hi_inclusive = false;
  EXPECT_FALSE(r.OverlapsClosed(20, 30));  // [10,20) does not reach 20
}

TEST(NumericRangeTest, Intersect) {
  NumericRange a;
  a.lo = 0;
  a.hi = 10;
  NumericRange b;
  b.lo = 5;
  b.hi = 15;
  const NumericRange both = a.Intersect(b);
  EXPECT_DOUBLE_EQ(both.lo, 5);
  EXPECT_DOUBLE_EQ(both.hi, 10);
  NumericRange disjoint;
  disjoint.lo = 20;
  disjoint.hi = 30;
  EXPECT_TRUE(a.Intersect(disjoint).IsEmpty());
}

TEST(NumericRangeTest, IntersectInclusivityAtSharedEndpoint) {
  NumericRange a;
  a.lo = 0;
  a.hi = 10;
  a.hi_inclusive = true;
  NumericRange b;
  b.lo = 0;
  b.hi = 10;
  b.hi_inclusive = false;
  EXPECT_FALSE(a.Intersect(b).hi_inclusive);
}

TEST(NumericRangeTest, Hull) {
  NumericRange a;
  a.lo = 0;
  a.hi = 5;
  NumericRange b;
  b.lo = 10;
  b.hi = 20;
  const NumericRange hull = a.Hull(b);
  EXPECT_DOUBLE_EQ(hull.lo, 0);
  EXPECT_DOUBLE_EQ(hull.hi, 20);
}

TEST(NumericRangeTest, ToStringShapes) {
  NumericRange r;
  r.lo = 200000;
  r.hi = 300000;
  EXPECT_EQ(r.ToString(), "[200K, 300K]");
  NumericRange open;
  open.hi = 1000000;
  open.hi_inclusive = false;
  EXPECT_EQ(open.ToString(), "[-inf, 1M)");
}

// ---------------------------------------------------- AttributeCondition

TEST(AttributeConditionTest, ValueSetMatches) {
  const auto cond = AttributeCondition::ValueSet({Value("a"), Value("b")});
  EXPECT_TRUE(cond.Matches(Value("a")));
  EXPECT_FALSE(cond.Matches(Value("c")));
  EXPECT_FALSE(cond.Matches(Value()));
  EXPECT_FALSE(cond.IsEmpty());
  EXPECT_TRUE(AttributeCondition::ValueSet({}).IsEmpty());
}

TEST(AttributeConditionTest, RangeMatches) {
  NumericRange r;
  r.lo = 1;
  r.hi = 5;
  const auto cond = AttributeCondition::Range(r);
  EXPECT_TRUE(cond.Matches(Value(3)));
  EXPECT_TRUE(cond.Matches(Value(3.5)));
  EXPECT_FALSE(cond.Matches(Value(6)));
  EXPECT_FALSE(cond.Matches(Value("3")));
  EXPECT_FALSE(cond.Matches(Value()));
}

TEST(AttributeConditionTest, OverlapsClosedInterval) {
  NumericRange r;
  r.lo = 10;
  r.hi = 20;
  EXPECT_TRUE(AttributeCondition::Range(r).OverlapsClosedInterval(15, 30));
  EXPECT_FALSE(AttributeCondition::Range(r).OverlapsClosedInterval(21, 30));
  // A numeric value set also overlaps intervals.
  const auto set = AttributeCondition::ValueSet({Value(3), Value(7)});
  EXPECT_TRUE(set.OverlapsClosedInterval(5, 8));
  EXPECT_FALSE(set.OverlapsClosedInterval(4, 6));
}

TEST(AttributeConditionTest, OverlapsValueSet) {
  const auto set = AttributeCondition::ValueSet({Value("a"), Value("b")});
  EXPECT_TRUE(set.OverlapsValueSet({Value("b"), Value("z")}));
  EXPECT_FALSE(set.OverlapsValueSet({Value("x")}));
  NumericRange r;
  r.lo = 1;
  r.hi = 5;
  EXPECT_TRUE(AttributeCondition::Range(r).OverlapsValueSet({Value(2)}));
  EXPECT_FALSE(AttributeCondition::Range(r).OverlapsValueSet({Value(9)}));
}

// ------------------------------------------------------ SelectionProfile

TEST(SelectionProfileTest, InListBecomesValueSet) {
  const auto profile = ProfileOf("neighborhood IN ('Redmond', 'Bellevue')");
  ASSERT_TRUE(profile.ok());
  const AttributeCondition* cond = profile->Find("neighborhood");
  ASSERT_NE(cond, nullptr);
  EXPECT_TRUE(cond->is_value_set());
  EXPECT_EQ(cond->values.size(), 2u);
}

TEST(SelectionProfileTest, EqualityOnCategoricalBecomesSingleton) {
  const auto profile = ProfileOf("propertytype = 'Condo'");
  ASSERT_TRUE(profile.ok());
  const AttributeCondition* cond = profile->Find("propertytype");
  ASSERT_NE(cond, nullptr);
  EXPECT_EQ(cond->values.size(), 1u);
  EXPECT_TRUE(cond->Matches(Value("Condo")));
}

TEST(SelectionProfileTest, BetweenBecomesClosedRange) {
  const auto profile = ProfileOf("price BETWEEN 200000 AND 300000");
  ASSERT_TRUE(profile.ok());
  const AttributeCondition* cond = profile->Find("price");
  ASSERT_NE(cond, nullptr);
  ASSERT_TRUE(cond->is_range());
  EXPECT_DOUBLE_EQ(cond->range.lo, 200000);
  EXPECT_DOUBLE_EQ(cond->range.hi, 300000);
  EXPECT_TRUE(cond->range.lo_inclusive);
  EXPECT_TRUE(cond->range.hi_inclusive);
}

TEST(SelectionProfileTest, HalfRanges) {
  const auto lt = ProfileOf("price < 1000000");
  ASSERT_TRUE(lt.ok());
  EXPECT_FALSE(lt->Find("price")->range.hi_inclusive);
  EXPECT_FALSE(std::isfinite(lt->Find("price")->range.lo));

  const auto ge = ProfileOf("price >= 100000");
  ASSERT_TRUE(ge.ok());
  EXPECT_TRUE(ge->Find("price")->range.lo_inclusive);
}

TEST(SelectionProfileTest, EqualityOnNumericBecomesPointRange) {
  const auto profile = ProfileOf("bedroomcount = 3");
  ASSERT_TRUE(profile.ok());
  const AttributeCondition* cond = profile->Find("bedroomcount");
  ASSERT_TRUE(cond->is_range());
  EXPECT_DOUBLE_EQ(cond->range.lo, 3);
  EXPECT_DOUBLE_EQ(cond->range.hi, 3);
  EXPECT_TRUE(cond->Matches(Value(3)));
  EXPECT_FALSE(cond->Matches(Value(4)));
}

TEST(SelectionProfileTest, AndIntersectsSameAttribute) {
  const auto profile = ProfileOf("price >= 100 AND price <= 200");
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->num_conditions(), 1u);
  const NumericRange& r = profile->Find("price")->range;
  EXPECT_DOUBLE_EQ(r.lo, 100);
  EXPECT_DOUBLE_EQ(r.hi, 200);
}

TEST(SelectionProfileTest, AndIntersectsValueSets) {
  const auto profile = ProfileOf(
      "neighborhood IN ('a', 'b', 'c') AND neighborhood IN ('b', 'c', "
      "'d')");
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->Find("neighborhood")->values.size(), 2u);
}

TEST(SelectionProfileTest, AndAcrossAttributes) {
  const auto profile = ProfileOf(
      "neighborhood = 'Redmond' AND price BETWEEN 1 AND 2 AND "
      "bedroomcount >= 3");
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->num_conditions(), 3u);
  EXPECT_TRUE(profile->Constrains("price"));
  EXPECT_TRUE(profile->Constrains("PRICE"));  // case-insensitive
  EXPECT_FALSE(profile->Constrains("propertytype"));
}

TEST(SelectionProfileTest, OrOnOneAttributeUnions) {
  const auto profile = ProfileOf(
      "neighborhood = 'Redmond' OR neighborhood = 'Bellevue'");
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->Find("neighborhood")->values.size(), 2u);
}

TEST(SelectionProfileTest, OrOfRangesTakesHull) {
  const auto profile = ProfileOf(
      "price BETWEEN 100 AND 200 OR price BETWEEN 500 AND 600");
  ASSERT_TRUE(profile.ok());
  const NumericRange& r = profile->Find("price")->range;
  EXPECT_DOUBLE_EQ(r.lo, 100);
  EXPECT_DOUBLE_EQ(r.hi, 600);
}

TEST(SelectionProfileTest, UnsupportedForms) {
  EXPECT_FALSE(ProfileOf("price <> 5").ok());
  EXPECT_FALSE(ProfileOf("neighborhood NOT IN ('a')").ok());
  EXPECT_FALSE(ProfileOf("price NOT BETWEEN 1 AND 2").ok());
  EXPECT_FALSE(ProfileOf("price IS NULL").ok());
  EXPECT_FALSE(
      ProfileOf("neighborhood = 'a' OR price BETWEEN 1 AND 2").ok());
  EXPECT_FALSE(ProfileOf("neighborhood BETWEEN 'a' AND 'b'").ok());
  EXPECT_FALSE(ProfileOf("neighborhood < 'a'").ok());
  EXPECT_FALSE(ProfileOf("bogus_column = 1").ok());
}

TEST(SelectionProfileTest, MixedSetAndRangeOnOneAttributeIntersects) {
  const auto profile =
      ProfileOf("bedroomcount IN (2, 3, 6) AND bedroomcount <= 4");
  ASSERT_TRUE(profile.ok());
  const AttributeCondition* cond = profile->Find("bedroomcount");
  ASSERT_TRUE(cond->is_value_set());
  EXPECT_EQ(cond->values.size(), 2u);
  EXPECT_TRUE(cond->Matches(Value(2)));
  EXPECT_FALSE(cond->Matches(Value(6)));
}

TEST(SelectionProfileTest, MatchesRow) {
  const Schema schema = HomesSchema();
  const auto profile = ProfileOf(
      "neighborhood = 'Redmond' AND price BETWEEN 100000 AND 200000");
  ASSERT_TRUE(profile.ok());
  const Row hit = {Value("Redmond"), Value(150000), Value(3),
                   Value("Condo")};
  const Row miss_price = {Value("Redmond"), Value(250000), Value(3),
                          Value("Condo")};
  const Row miss_nb = {Value("Seattle"), Value(150000), Value(3),
                       Value("Condo")};
  const Row null_nb = {Value(), Value(150000), Value(3), Value("Condo")};
  EXPECT_TRUE(profile->MatchesRow(hit, schema));
  EXPECT_FALSE(profile->MatchesRow(miss_price, schema));
  EXPECT_FALSE(profile->MatchesRow(miss_nb, schema));
  EXPECT_FALSE(profile->MatchesRow(null_nb, schema));
}

TEST(SelectionProfileTest, EmptyProfileMatchesEverything) {
  const SelectionProfile profile;
  EXPECT_TRUE(profile.empty());
  EXPECT_TRUE(profile.MatchesRow({Value(), Value(), Value(), Value()},
                                 HomesSchema()));
}

TEST(SelectionProfileTest, SetRemoveFind) {
  SelectionProfile profile;
  profile.Set("Price", AttributeCondition::ValueSet({Value(1)}));
  EXPECT_TRUE(profile.Constrains("price"));
  profile.Remove("PRICE");
  EXPECT_FALSE(profile.Constrains("price"));
  EXPECT_EQ(profile.Find("price"), nullptr);
}

TEST(SelectionProfileTest, ToSqlWhereRoundTripsThroughParser) {
  const char* kInputs[] = {
      "neighborhood IN ('Redmond', 'Bellevue') AND price BETWEEN 100000 "
      "AND 200000",
      "price <= 500000 AND bedroomcount BETWEEN 3 AND 4",
      "propertytype = 'Condo'",
  };
  for (const char* input : kInputs) {
    const auto profile = ProfileOf(input);
    ASSERT_TRUE(profile.ok()) << input;
    const std::string where = profile->ToSqlWhere();
    const auto reparsed = ProfileOf(where);
    ASSERT_TRUE(reparsed.ok()) << where;
    EXPECT_EQ(reparsed->ToString(), profile->ToString()) << where;
  }
}

TEST(SelectionProfileTest, FromQueryWithoutWhereIsEmpty) {
  const auto query = ParseQuery("SELECT * FROM homes");
  ASSERT_TRUE(query.ok());
  const auto profile =
      SelectionProfile::FromQuery(query.value(), HomesSchema());
  ASSERT_TRUE(profile.ok());
  EXPECT_TRUE(profile->empty());
}

}  // namespace
}  // namespace autocat
