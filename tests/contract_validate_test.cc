// Tests for the debug-mode invariant checkers added by the correctness
// tooling layer: CategoryTree::Validate(), the partition validators, and
// the probability validity helpers.

#include <gtest/gtest.h>

#include <limits>

#include "core/category.h"
#include "core/partition.h"
#include "core/probability.h"
#include "test_util.h"

namespace autocat {
namespace {

using test::HomesTable;

Table SmallTable() {
  return HomesTable({
      {"Redmond", 200000, 3},
      {"Redmond", 210000, 2},
      {"Bellevue", 300000, 4},
      {"Seattle", 150000, 1},
  });
}

TEST(CategoryTreeValidateTest, FreshTreeIsValid) {
  const Table table = SmallTable();
  CategoryTree tree(&table);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(CategoryTreeValidateTest, WellFormedTwoLevelTreeIsValid) {
  const Table table = SmallTable();
  CategoryTree tree(&table);
  const NodeId redmond = tree.AddChild(
      tree.root(),
      CategoryLabel::Categorical("neighborhood", {Value("Redmond")}),
      {0, 1});
  tree.AddChild(tree.root(),
                CategoryLabel::Categorical("neighborhood",
                                           {Value("Bellevue")}),
                {2});
  tree.AddChild(redmond, CategoryLabel::Numeric("price", 200000, 225000),
                {0, 1});
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(CategoryTreeValidateTest, RejectsTupleOutsideParentTset) {
  const Table table = SmallTable();
  CategoryTree tree(&table);
  const NodeId redmond = tree.AddChild(
      tree.root(),
      CategoryLabel::Categorical("neighborhood", {Value("Redmond")}),
      {0, 1});
  // Row 3 is not in Redmond's tset; planting it in a child breaks
  // containment.
  tree.mutable_node(tree.AddChild(
          redmond, CategoryLabel::Numeric("price", 0, 1), {0}))
      .tuples = {3};
  const Status status = tree.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("missing from parent"), std::string::npos);
}

TEST(CategoryTreeValidateTest, RejectsOutOfRangeTupleIndex) {
  const Table table = SmallTable();
  CategoryTree tree(&table);
  const NodeId child = tree.AddChild(
      tree.root(),
      CategoryLabel::Categorical("neighborhood", {Value("Redmond")}), {0});
  tree.mutable_node(child).tuples = {99};
  EXPECT_FALSE(tree.Validate().ok());
}

TEST(CategoryTreeValidateTest, RejectsSiblingAttributeDisagreement) {
  const Table table = SmallTable();
  CategoryTree tree(&table);
  tree.AddChild(tree.root(),
                CategoryLabel::Categorical("neighborhood",
                                           {Value("Redmond")}),
                {0, 1});
  tree.AddChild(tree.root(), CategoryLabel::Numeric("price", 0, 1e6), {2});
  const Status status = tree.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("siblings disagree"), std::string::npos);
}

TEST(CategoryTreeValidateTest, RejectsBrokenParentLink) {
  const Table table = SmallTable();
  CategoryTree tree(&table);
  const NodeId child = tree.AddChild(
      tree.root(),
      CategoryLabel::Categorical("neighborhood", {Value("Redmond")}), {0});
  tree.mutable_node(child).parent = child;  // self-loop
  EXPECT_FALSE(tree.Validate().ok());
}

TEST(ValidateNumericPartitionTest, AcceptsSortedDisjointBuckets) {
  std::vector<PartitionCategory> parts;
  parts.push_back({CategoryLabel::Numeric("price", 0, 100), {0}});
  parts.push_back({CategoryLabel::Numeric("price", 100, 200), {1}});
  parts.push_back(
      {CategoryLabel::Numeric("price", 250, 300, /*hi_inclusive=*/true),
       {2, 3}});
  EXPECT_TRUE(ValidateNumericPartition(parts).ok());
}

TEST(ValidateNumericPartitionTest, RejectsOverlappingBuckets) {
  std::vector<PartitionCategory> parts;
  parts.push_back({CategoryLabel::Numeric("price", 0, 150), {0}});
  parts.push_back({CategoryLabel::Numeric("price", 100, 200), {1}});
  const Status status = ValidateNumericPartition(parts);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("overlap"), std::string::npos);
}

TEST(ValidateNumericPartitionTest, RejectsUnsortedBuckets) {
  std::vector<PartitionCategory> parts;
  parts.push_back({CategoryLabel::Numeric("price", 100, 200), {0}});
  parts.push_back({CategoryLabel::Numeric("price", 0, 100), {1}});
  EXPECT_FALSE(ValidateNumericPartition(parts).ok());
}

TEST(ValidateNumericPartitionTest, RejectsNonFinalClosedBucket) {
  std::vector<PartitionCategory> parts;
  parts.push_back(
      {CategoryLabel::Numeric("price", 0, 100, /*hi_inclusive=*/true), {0}});
  parts.push_back({CategoryLabel::Numeric("price", 200, 300), {1}});
  EXPECT_FALSE(ValidateNumericPartition(parts).ok());
}

TEST(ValidateNumericPartitionTest, RejectsDuplicateTupleAcrossBuckets) {
  std::vector<PartitionCategory> parts;
  parts.push_back({CategoryLabel::Numeric("price", 0, 100), {0, 1}});
  parts.push_back({CategoryLabel::Numeric("price", 100, 200), {1}});
  EXPECT_FALSE(ValidateNumericPartition(parts).ok());
}

TEST(ValidateNumericPartitionTest, RejectsEmptyBucket) {
  std::vector<PartitionCategory> parts;
  parts.push_back({CategoryLabel::Numeric("price", 0, 100), {}});
  EXPECT_FALSE(ValidateNumericPartition(parts).ok());
}

TEST(ValidateNumericPartitionTest, AcceptsSinglePointDomain) {
  std::vector<PartitionCategory> parts;
  parts.push_back(
      {CategoryLabel::Numeric("price", 5, 5, /*hi_inclusive=*/true), {0}});
  EXPECT_TRUE(ValidateNumericPartition(parts).ok());
}

TEST(ValidateCategoricalPartitionTest, AcceptsDisjointValueSets) {
  std::vector<PartitionCategory> parts;
  parts.push_back(
      {CategoryLabel::Categorical("city", {Value("Redmond")}), {0, 1}});
  parts.push_back(
      {CategoryLabel::Categorical("city", {Value("Bellevue")}), {2}});
  EXPECT_TRUE(ValidateCategoricalPartition(parts).ok());
}

TEST(ValidateCategoricalPartitionTest, RejectsRepeatedValue) {
  std::vector<PartitionCategory> parts;
  parts.push_back(
      {CategoryLabel::Categorical("city", {Value("Redmond")}), {0}});
  parts.push_back(
      {CategoryLabel::Categorical("city", {Value("Redmond")}), {1}});
  EXPECT_FALSE(ValidateCategoricalPartition(parts).ok());
}

TEST(ValidateCategoricalPartitionTest, RejectsAttributeMismatch) {
  std::vector<PartitionCategory> parts;
  parts.push_back(
      {CategoryLabel::Categorical("city", {Value("Redmond")}), {0}});
  parts.push_back(
      {CategoryLabel::Categorical("type", {Value("Condo")}), {1}});
  EXPECT_FALSE(ValidateCategoricalPartition(parts).ok());
}

TEST(ProbabilityValidityTest, IsValidProbability) {
  EXPECT_TRUE(IsValidProbability(0.0));
  EXPECT_TRUE(IsValidProbability(0.5));
  EXPECT_TRUE(IsValidProbability(1.0));
  EXPECT_FALSE(IsValidProbability(-0.01));
  EXPECT_FALSE(IsValidProbability(1.01));
  EXPECT_FALSE(IsValidProbability(
      std::numeric_limits<double>::quiet_NaN()));
  EXPECT_FALSE(IsValidProbability(
      std::numeric_limits<double>::infinity()));
}

TEST(ProbabilityValidityTest, ValidateProbabilitiesFindsOffender) {
  EXPECT_TRUE(ValidateProbabilities({0.1, 0.9, 1.0}).ok());
  const Status status = ValidateProbabilities({0.1, 1.5});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("1"), std::string::npos);
}

TEST(ProbabilityValidityTest, ValidateDistribution) {
  EXPECT_TRUE(ValidateDistribution({0.25, 0.25, 0.5}).ok());
  EXPECT_TRUE(ValidateDistribution({1.0}).ok());
  EXPECT_FALSE(ValidateDistribution({}).ok());
  EXPECT_FALSE(ValidateDistribution({0.5, 0.4}).ok());
  // A loose tolerance admits accumulated floating-point error.
  EXPECT_TRUE(ValidateDistribution({0.5, 0.5 + 1e-12}, 1e-9).ok());
}

}  // namespace
}  // namespace autocat
