// Unit tests for each autocat_lint rule (tools/lint.h): expected-guard
// derivation, banned-call detection with comment/string/suppression
// handling, Status/Result declaration harvesting, dropped-return
// detection, and end-to-end runs over the fixture trees in
// tests/lint_fixtures (pass/ must lint clean, fail/ must trip every
// rule).

#include "tools/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace autocat::lint {
namespace {

bool HasRule(const std::vector<LintIssue>& issues, const std::string& rule) {
  return std::any_of(issues.begin(), issues.end(),
                     [&](const LintIssue& i) { return i.rule == rule; });
}

TEST(IncludeGuardRuleTest, ExpectedGuardDerivation) {
  EXPECT_EQ(ExpectedIncludeGuard("src/core/category.h"),
            "AUTOCAT_CORE_CATEGORY_H_");
  EXPECT_EQ(ExpectedIncludeGuard("src/autocat.h"), "AUTOCAT_AUTOCAT_H_");
  EXPECT_EQ(ExpectedIncludeGuard("tools/lint.h"), "AUTOCAT_TOOLS_LINT_H_");
  EXPECT_EQ(ExpectedIncludeGuard("tests/test_util.h"),
            "AUTOCAT_TESTS_TEST_UTIL_H_");
}

TEST(IncludeGuardRuleTest, AcceptsMatchingGuard) {
  const std::string content =
      "#ifndef AUTOCAT_CORE_FOO_H_\n"
      "#define AUTOCAT_CORE_FOO_H_\n"
      "#endif\n";
  EXPECT_TRUE(CheckIncludeGuard("src/core/foo.h", content).empty());
}

TEST(IncludeGuardRuleTest, RejectsMismatchedGuard) {
  const std::string content =
      "#ifndef WRONG_GUARD_H_\n"
      "#define WRONG_GUARD_H_\n"
      "#endif\n";
  const auto issues = CheckIncludeGuard("src/core/foo.h", content);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "include-guard");
  EXPECT_NE(issues[0].message.find("AUTOCAT_CORE_FOO_H_"),
            std::string::npos);
}

TEST(IncludeGuardRuleTest, RejectsMissingGuard) {
  EXPECT_FALSE(CheckIncludeGuard("src/core/foo.h", "int x;\n").empty());
}

TEST(IncludeGuardRuleTest, RejectsGuardWithoutDefine) {
  const std::string content =
      "#ifndef AUTOCAT_CORE_FOO_H_\n"
      "int x;\n"
      "#endif\n";
  const auto issues = CheckIncludeGuard("src/core/foo.h", content);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("#define"), std::string::npos);
}

TEST(BannedCallRuleTest, FlagsAssertAbortRand) {
  const std::string content =
      "void f() {\n"
      "  assert(true);\n"
      "  std::abort();\n"
      "  int x = rand();\n"
      "  srand(42);\n"
      "}\n";
  const auto issues = CheckBannedCalls("src/core/foo.cc", content);
  EXPECT_EQ(issues.size(), 4u);
}

TEST(BannedCallRuleTest, ExemptsCommonLayer) {
  EXPECT_TRUE(
      CheckBannedCalls("src/common/check.cc", "std::abort();\n").empty());
}

TEST(BannedCallRuleTest, IgnoresCommentsAndStrings) {
  const std::string content =
      "// abort() in a line comment\n"
      "/* assert(x) in a block comment */\n"
      "const char* s = \"srand(1)\";\n"
      "/* multi-line\n"
      "   rand() still inside\n"
      "*/\n";
  EXPECT_TRUE(CheckBannedCalls("src/core/foo.cc", content).empty());
}

TEST(BannedCallRuleTest, DoesNotFlagIdentifierSuffixes) {
  const std::string content =
      "my_assert(x);\n"
      "Random rng = MakeRandom(7);\n"
      "controller.abort_requested();\n";
  EXPECT_TRUE(CheckBannedCalls("src/core/foo.cc", content).empty());
}

TEST(BannedCallRuleTest, SuppressionCommentIsHonored) {
  const std::string content =
      "std::abort();  // autocat-lint: allow(banned-call)\n";
  EXPECT_TRUE(CheckBannedCalls("src/core/foo.cc", content).empty());
}

TEST(RawMmapRuleTest, FlagsRawSyscallsOutsideStore) {
  const std::string content =
      "int fd = open(path, O_RDWR);\n"
      "ftruncate(fd, 4096);\n"
      "void* base = mmap(nullptr, n, prot, flags, fd, 0);\n"
      "msync(base, n, MS_SYNC);\n"
      "munmap(base, n);\n"
      "::open(path, O_RDONLY);\n";
  const auto issues = CheckRawMmap("src/exec/foo.cc", content);
  EXPECT_EQ(issues.size(), 6u);
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues[0].rule, "raw-mmap");
  EXPECT_NE(issues[0].message.find("MappedFile"), std::string::npos);
}

TEST(RawMmapRuleTest, ExemptsOnlyTheStoreTree) {
  const std::string content = "void* base = mmap(0, n, 0, 0, fd, 0);\n";
  EXPECT_TRUE(CheckRawMmap("src/store/mapped_file.cc", content).empty());
  EXPECT_TRUE(CheckRawMmap("src/store/store.cc", content).empty());
  EXPECT_FALSE(CheckRawMmap("src/storage/table.cc", content).empty());
  EXPECT_FALSE(CheckRawMmap("tools/loadgen.cc", content).empty());
}

TEST(RawMmapRuleTest, DoesNotFlagMemberOpensOrLookalikes) {
  const std::string content =
      "stream.open(path);\n"
      "file->open(path);\n"
      "if (stream.is_open()) {\n"
      "FILE* f = fopen(path, \"r\");\n"
      "auto file = MappedFile::Open(path);\n"
      "freopen(path, \"r\", stdin);\n"
      "reopen(path);\n"
      "my::open(path);\n";
  EXPECT_TRUE(CheckRawMmap("src/exec/foo.cc", content).empty());
}

TEST(RawMmapRuleTest, IgnoresCommentsStringsAndSuppressions) {
  const std::string content =
      "// mmap( the file lazily\n"
      "/* ftruncate( grows it */\n"
      "const char* s = \"open(2)\";\n"
      "void* b = mmap(0, n, 0, 0, fd, 0);  "
      "// autocat-lint: allow(raw-mmap)\n";
  EXPECT_TRUE(CheckRawMmap("src/exec/foo.cc", content).empty());
}

TEST(RawSimdRuleTest, FlagsIntrinsicsOutsideKernelTu) {
  const std::string content =
      "#include <immintrin.h>\n"
      "__m256i x = _mm256_setzero_si256();\n"
      "__m128d lo = _mm_setzero_pd();\n"
      "auto g = _mm512_set1_epi64(0);\n";
  const auto issues = CheckRawSimd("src/exec/kernels.cc", content);
  EXPECT_EQ(issues.size(), 4u);
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues[0].rule, "raw-simd");
  EXPECT_NE(issues[0].message.find("simd_kernels"), std::string::npos);
}

TEST(RawSimdRuleTest, ExemptsOnlyTheKernelTu) {
  const std::string content = "__m256i x = _mm256_setzero_si256();\n";
  EXPECT_TRUE(
      CheckRawSimd("src/exec/simd_kernels.cc", content).empty());
  EXPECT_FALSE(CheckRawSimd("src/exec/simd_kernels.h", content).empty());
  EXPECT_FALSE(CheckRawSimd("src/exec/cold_path.cc", content).empty());
  EXPECT_FALSE(CheckRawSimd("src/serve/service.cc", content).empty());
  EXPECT_FALSE(CheckRawSimd("tools/bench_exec.cc", content).empty());
}

TEST(RawSimdRuleTest, DoesNotFlagLookalikes) {
  const std::string content =
      "int x__m256 = 0;\n"
      "my_mm256_helper(x__m256);\n"
      "double simd_mm = 0.0;\n"
      "#include \"exec/simd_kernels.h\"\n";
  EXPECT_TRUE(CheckRawSimd("src/exec/foo.cc", content).empty());
}

TEST(RawSimdRuleTest, IgnoresCommentsStringsAndSuppressions) {
  const std::string content =
      "// __m256i lanes hold four codes\n"
      "/* _mm256_cmpeq_epi64( compares them */\n"
      "const char* s = \"_mm256_setzero_si256()\";\n"
      "__m256i x = _mm256_setzero_si256();  "
      "// autocat-lint: allow(raw-simd)\n";
  EXPECT_TRUE(CheckRawSimd("src/exec/foo.cc", content).empty());
}

TEST(DirectParallelForRuleTest, FlagsDirectCallsInExecAndServe) {
  const std::string content =
      "Status s = ParallelFor(options, 0, n, 1, fn);\n"
      "return autocat::ParallelFor(options, 0, n, 1, fn);\n"
      "AUTOCAT_RETURN_IF_ERROR(::ParallelFor(options, 0, n, 1, fn));\n";
  const auto issues = CheckDirectParallelFor("src/exec/kernels.cc", content);
  EXPECT_EQ(issues.size(), 3u);
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues[0].rule, "direct-parallel-for");
  EXPECT_NE(issues[0].message.find("morsel scheduler"), std::string::npos);
  EXPECT_EQ(
      CheckDirectParallelFor("src/serve/service.cc", content).size(), 3u);
}

TEST(DirectParallelForRuleTest, ExemptsSchedulerTuAndOtherLayers) {
  const std::string content =
      "Status s = ParallelFor(options, 0, n, 1, fn);\n";
  EXPECT_TRUE(
      CheckDirectParallelFor("src/exec/pipeline/scheduler.cc", content)
          .empty());
  // Layers outside exec/serve keep their direct calls.
  EXPECT_TRUE(
      CheckDirectParallelFor("src/core/enumerate.cc", content).empty());
  EXPECT_TRUE(
      CheckDirectParallelFor("src/store/store.cc", content).empty());
  EXPECT_TRUE(
      CheckDirectParallelFor("src/common/thread_pool.cc", content).empty());
  // The scheduler's header and sibling TUs are not exempt.
  EXPECT_FALSE(
      CheckDirectParallelFor("src/exec/pipeline/cold_path.cc", content)
          .empty());
}

TEST(DirectParallelForRuleTest, DoesNotFlagMemberCallsOrLookalikes) {
  const std::string content =
      "Status s = pool.ParallelFor(0, n, 1, fn);\n"
      "Status t = ThreadPool::Shared().ParallelFor(0, n, 1, fn);\n"
      "Status u = ThreadPool::ParallelFor(0, n, 1, fn);\n"
      "Status v = RunParallelFor(0, n);\n"
      "// ParallelFor( in a comment\n"
      "const char* s2 = \"ParallelFor(\";\n"
      "Status w = ParallelFor(options, 0, n, 1, fn);  "
      "// autocat-lint: allow(direct-parallel-for)\n";
  EXPECT_TRUE(
      CheckDirectParallelFor("src/exec/kernels.cc", content).empty());
}

TEST(RawThreadRuleTest, FlagsThreadUsesOutsideThreadPool) {
  const std::string content =
      "#include <thread>\n"
      "std::thread t([] {});\n"
      "std::jthread j([] {});\n";
  EXPECT_EQ(CheckRawThread("src/core/foo.cc", content).size(), 3u);
  EXPECT_EQ(CheckRawThread("src/core/foo.cc", content)[0].rule,
            "raw-thread");
}

TEST(RawThreadRuleTest, ExemptsOnlyTheThreadPoolFiles) {
  EXPECT_TRUE(
      CheckRawThread("src/common/thread_pool.cc", "std::thread t;\n")
          .empty());
  EXPECT_TRUE(
      CheckRawThread("src/common/thread_pool.h", "#include <thread>\n")
          .empty());
  // The rest of src/common is not exempt (unlike banned-call).
  EXPECT_FALSE(
      CheckRawThread("src/common/random.cc", "std::thread t;\n").empty());
}

TEST(RawThreadRuleTest, IgnoresCommentsStringsAndSuppressions) {
  const std::string content =
      "// std::thread in a line comment\n"
      "/* std::jthread in a block comment */\n"
      "const char* s = \"std::thread\";\n"
      "std::thread t;  // autocat-lint: allow(raw-thread)\n";
  EXPECT_TRUE(CheckRawThread("src/core/foo.cc", content).empty());
}

TEST(RawThreadRuleTest, DoesNotFlagIdentifierLookalikes) {
  const std::string content =
      "my::thread_helper h;\n"
      "int thread_count = pool.threads();\n";
  EXPECT_TRUE(CheckRawThread("src/core/foo.cc", content).empty());
}

TEST(DroppedStatusRuleTest, CollectsStatusAndResultDeclarations) {
  const std::string header =
      "Status Flush(int fd);\n"
      "  static Status Open(const std::string& path);\n"
      "Result<std::vector<int>> ParseAll(std::string_view text);\n"
      "void NotCollected();\n"
      "int AlsoNotCollected();\n";
  const auto names = CollectStatusFunctions(header);
  EXPECT_EQ(names.count("Flush"), 1u);
  EXPECT_EQ(names.count("Open"), 1u);
  EXPECT_EQ(names.count("ParseAll"), 1u);
  EXPECT_EQ(names.count("NotCollected"), 0u);
  EXPECT_EQ(names.count("AlsoNotCollected"), 0u);
}

TEST(DroppedStatusRuleTest, FlagsBareCallStatement) {
  const auto issues = CheckDroppedStatus(
      "src/core/foo.cc", "  Flush(3);\n  writer.Flush(4);\n", {"Flush"});
  EXPECT_EQ(issues.size(), 2u);
  EXPECT_EQ(issues[0].rule, "dropped-status");
}

TEST(DroppedStatusRuleTest, AcceptsConsumedReturns) {
  const std::string content =
      "Status s = Flush(3);\n"
      "return Flush(4);\n"
      "if (!Flush(5).ok()) {\n"
      "AUTOCAT_RETURN_IF_ERROR(Flush(6));\n"
      "EXPECT_TRUE(Flush(7).ok());\n"
      "(void)Flush(8);\n";
  EXPECT_TRUE(
      CheckDroppedStatus("src/core/foo.cc", content, {"Flush"}).empty());
}

TEST(DroppedStatusRuleTest, SuppressionCommentIsHonored) {
  const std::string content =
      "Flush(3);  // autocat-lint: allow(dropped-status)\n";
  EXPECT_TRUE(
      CheckDroppedStatus("src/core/foo.cc", content, {"Flush"}).empty());
}

TEST(DroppedStatusRuleTest, UnknownNamesAreIgnored) {
  EXPECT_TRUE(
      CheckDroppedStatus("src/core/foo.cc", "DoStuff();\n", {"Flush"})
          .empty());
}

TEST(UnorderedContainerRuleTest, FlagsUnorderedContainersInServe) {
  const std::string content =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;\n"
      "std::unordered_set<int> s;\n"
      "std::unordered_multimap<int, int> mm;\n";
  const auto issues = CheckUnorderedContainer("src/serve/cache.cc", content);
  EXPECT_EQ(issues.size(), 4u);
  EXPECT_TRUE(HasRule(issues, "unordered-container"));
}

TEST(UnorderedContainerRuleTest, OnlyAppliesToServe) {
  const std::string content = "std::unordered_map<int, int> m;\n";
  EXPECT_TRUE(CheckUnorderedContainer("src/core/foo.cc", content).empty());
  EXPECT_TRUE(CheckUnorderedContainer("tools/foo.cc", content).empty());
  EXPECT_EQ(CheckUnorderedContainer("src/serve/foo.cc", content).size(),
            1u);
}

TEST(UnorderedContainerRuleTest, IgnoresCommentsStringsAndSuppressions) {
  EXPECT_TRUE(CheckUnorderedContainer("src/serve/foo.cc",
                                      "// std::unordered_map is banned\n")
                  .empty());
  EXPECT_TRUE(CheckUnorderedContainer(
                  "src/serve/foo.cc",
                  "const char* s = \"std::unordered_set\";\n")
                  .empty());
  EXPECT_TRUE(
      CheckUnorderedContainer(
          "src/serve/foo.cc",
          "std::unordered_map<int, int> m;  "
          "// autocat-lint: allow(unordered-container)\n")
          .empty());
}

TEST(UnorderedContainerRuleTest, AcceptsOrderedContainers) {
  EXPECT_TRUE(CheckUnorderedContainer(
                  "src/serve/foo.cc",
                  "std::map<int, int> m;\nstd::set<int> s;\n")
                  .empty());
}

TEST(UnannotatedSyncRuleTest, FlagsRawPrimitivesAndIncludes) {
  const std::string content =
      "#include <mutex>\n"
      "#include <shared_mutex>\n"
      "#include <condition_variable>\n"
      "std::mutex m;\n"
      "std::shared_mutex rw;\n"
      "std::condition_variable cv;\n"
      "std::recursive_mutex rm;\n";
  const auto issues = CheckUnannotatedSync("src/serve/foo.cc", content);
  EXPECT_EQ(issues.size(), 7u);
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues[0].rule, "unannotated-sync");
  EXPECT_NE(issues[0].message.find("common/mutex.h"), std::string::npos);
}

TEST(UnannotatedSyncRuleTest, AtomicNeedsOrderComment) {
  // Undocumented atomic: flagged.
  EXPECT_EQ(CheckUnannotatedSync("src/serve/foo.cc",
                                 "std::atomic<int> n{0};\n")
                .size(),
            1u);
  // Same-line and block-above comments both document the protocol.
  EXPECT_TRUE(CheckUnannotatedSync(
                  "src/serve/foo.cc",
                  "std::atomic<int> n{0};  // atomic-order: relaxed\n")
                  .empty());
  EXPECT_TRUE(CheckUnannotatedSync(
                  "src/serve/foo.cc",
                  "// atomic-order: release/acquire — pairs with load\n"
                  "// in the worker loop.\n"
                  "std::atomic<bool> done{false};\n")
                  .empty());
  // A non-comment line breaks the block-above association.
  EXPECT_EQ(CheckUnannotatedSync(
                "src/serve/foo.cc",
                "// atomic-order: relaxed\n"
                "int unrelated = 0;\n"
                "std::atomic<int> n{0};\n")
                .size(),
            1u);
}

TEST(UnannotatedSyncRuleTest, ScopeAndSuppression) {
  const std::string content = "std::mutex m;\n";
  // Outside the annotated tree the rule does not apply.
  EXPECT_TRUE(CheckUnannotatedSync("src/core/foo.cc", content).empty());
  EXPECT_TRUE(CheckUnannotatedSync("tools/foo.cc", content).empty());
  // mutex.h implements the wrappers and is exempt.
  EXPECT_TRUE(CheckUnannotatedSync("src/common/mutex.h", content).empty());
  // The rest of src/common is in scope.
  EXPECT_EQ(CheckUnannotatedSync("src/common/foo.cc", content).size(), 1u);
  EXPECT_TRUE(CheckUnannotatedSync(
                  "src/serve/foo.cc",
                  "std::mutex m;  // autocat-lint: allow(unannotated-sync)\n")
                  .empty());
}

TEST(ManualLockRuleTest, FlagsManualCallsOutsideMutexHeader) {
  const std::string content =
      "mu.lock();\n"
      "mu.unlock();\n"
      "rw->lock_shared();\n"
      "rw->unlock_shared();\n"
      "mu.try_lock();\n";
  const auto issues = CheckManualLock("src/serve/foo.cc", content);
  EXPECT_EQ(issues.size(), 5u);
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues[0].rule, "manual-lock");
  EXPECT_NE(issues[0].message.find("RAII"), std::string::npos);
  EXPECT_TRUE(CheckManualLock("src/common/mutex.h", content).empty());
  EXPECT_TRUE(CheckManualLock("src/core/foo.cc", content).empty());
}

TEST(ManualLockRuleTest, IgnoresCommentsStringsAndSuppressions) {
  const std::string content =
      "// mu.lock() in a comment\n"
      "const char* s = \"mu.unlock()\";\n"
      "mu.lock();  // autocat-lint: allow(manual-lock)\n"
      "csv.unlocked();\n";
  EXPECT_TRUE(CheckManualLock("src/serve/foo.cc", content).empty());
}

TEST(AtomicOrderRuleTest, FlagsDefaultSeqCstCalls) {
  const std::string content =
      "n.load();\n"
      "n.store(1);\n"
      "n.fetch_add(2);\n"
      "n.exchange(3);\n";
  const auto issues = CheckAtomicOrder("src/serve/foo.cc", content);
  EXPECT_EQ(issues.size(), 4u);
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues[0].rule, "atomic-order");
  EXPECT_NE(issues[0].message.find("std::memory_order"), std::string::npos);
}

TEST(AtomicOrderRuleTest, AcceptsExplicitOrders) {
  const std::string content =
      "n.load(std::memory_order_acquire);\n"
      "n.store(1, std::memory_order_release);\n"
      "n.fetch_add(2, std::memory_order_relaxed);\n"
      // The order may land on a continuation line.
      "n.compare_exchange_strong(expected, 5,\n"
      "                          std::memory_order_acq_rel,\n"
      "                          std::memory_order_acquire);\n";
  EXPECT_TRUE(CheckAtomicOrder("src/serve/foo.cc", content).empty());
}

TEST(AtomicOrderRuleTest, ScopeAndSuppression) {
  EXPECT_TRUE(CheckAtomicOrder("src/core/foo.cc", "n.load();\n").empty());
  EXPECT_TRUE(CheckAtomicOrder(
                  "src/serve/foo.cc",
                  "n.load();  // autocat-lint: allow(atomic-order)\n")
                  .empty());
}

TEST(LockOrderRuleTest, ParsesOrderFile) {
  const std::string content =
      "# outermost first\n"
      "state_mu_\n"
      "\n"
      "shard.mu   # shard locks\n"
      "  mu_  \n";
  const auto order = ParseLockOrder(content);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "state_mu_");
  EXPECT_EQ(order[1], "shard.mu");
  EXPECT_EQ(order[2], "mu_");
}

TEST(LockOrderRuleTest, FlagsInversionAgainstDeclaredOrder) {
  const std::vector<std::string> order = {"state_mu_", "shard.mu"};
  const std::string inverted =
      "void f() {\n"
      "  MutexLock shard_lock(shard.mu);\n"
      "  WriterLock state_lock(state_mu_);\n"
      "}\n";
  const auto issues = CheckLockOrder("src/serve/foo.cc", inverted, order);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "lock-order");
  EXPECT_EQ(issues[0].line, 3u);
  EXPECT_NE(issues[0].message.find("'state_mu_' while 'shard.mu'"),
            std::string::npos);
}

TEST(LockOrderRuleTest, AcceptsDeclaredOrderAndScopedRelease) {
  const std::vector<std::string> order = {"state_mu_", "shard.mu"};
  const std::string ordered =
      "void f() {\n"
      "  WriterLock state_lock(state_mu_);\n"
      "  MutexLock shard_lock(shard.mu);\n"
      "}\n"
      // Sequential (non-nested) acquisitions in any order are fine: the
      // first guard's block closes before the second opens.
      "void g() {\n"
      "  { MutexLock shard_lock(shard.mu); }\n"
      "  WriterLock state_lock(state_mu_);\n"
      "}\n";
  EXPECT_TRUE(CheckLockOrder("src/serve/foo.cc", ordered, order).empty());
}

TEST(LockOrderRuleTest, UnknownTokensAndSuppressionsIgnored) {
  const std::vector<std::string> order = {"state_mu_", "shard.mu"};
  const std::string content =
      "void f() {\n"
      "  MutexLock a(local_mu);\n"
      "  WriterLock b(state_mu_);\n"
      "  MutexLock c(shard.mu);\n"
      "  WriterLock d(state_mu_);  // autocat-lint: allow(lock-order)\n"
      "}\n";
  EXPECT_TRUE(CheckLockOrder("src/serve/foo.cc", content, order).empty());
}

TEST(GuardedReadRuleTest, CollectsGuardedFields) {
  const std::string content =
      "int depth_ AUTOCAT_GUARDED_BY(mu) = 0;\n"
      "std::map<int, int> index AUTOCAT_GUARDED_BY(mu);\n"
      "#define AUTOCAT_GUARDED_BY(x) __attribute__((guarded_by(x)))\n"
      "int plain = 0;\n";
  const auto fields = CollectGuardedFields(content);
  EXPECT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields.count("depth_"), 1u);
  EXPECT_EQ(fields.count("index"), 1u);
}

TEST(GuardedReadRuleTest, FlagsUnprotectedAccess) {
  const std::string content =
      "struct Q {\n"
      "  int depth_ AUTOCAT_GUARDED_BY(mu) = 0;\n"
      "};\n"
      "int Peek(const Q& q) {\n"
      "  return q.depth_;\n"
      "}\n";
  const auto issues =
      CheckGuardedRead("src/serve/foo.cc", content, {"depth_"});
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "guarded-read");
  EXPECT_EQ(issues[0].line, 5u);
  EXPECT_NE(issues[0].message.find("'depth_'"), std::string::npos);
}

TEST(GuardedReadRuleTest, GuardScopeEndsWithItsBlock) {
  const std::string content =
      "void Reset(Q& q) {\n"
      "  {\n"
      "    MutexLock lock(q.mu);\n"
      "    q.depth_ = 0;\n"
      "  }\n"
      "  q.depth_ = 1;\n"
      "}\n";
  const auto issues =
      CheckGuardedRead("src/serve/foo.cc", content, {"depth_"});
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].line, 6u);
}

TEST(GuardedReadRuleTest, AnnotatedFunctionsAreProtected) {
  const std::string content =
      "int PeekLocked(const Q& q) AUTOCAT_REQUIRES(q.mu) {\n"
      "  return q.depth_;\n"
      "}\n"
      // A multi-line signature: the annotation lands before the body
      // opens on a later line.
      "int PeekLocked2(const Q& q)\n"
      "    AUTOCAT_REQUIRES(q.mu)\n"
      "{\n"
      "  return q.depth_;\n"
      "}\n";
  EXPECT_TRUE(
      CheckGuardedRead("src/serve/foo.cc", content, {"depth_"}).empty());
}

TEST(GuardedReadRuleTest, PlainLocalNamesDoNotCount) {
  // A bare name without a trailing underscore only counts as a guarded
  // access through . or -> (locals may shadow short field names).
  const std::string content =
      "void f() {\n"
      "  int bytes = 0;\n"
      "  bytes += 1;\n"
      "}\n";
  EXPECT_TRUE(
      CheckGuardedRead("src/serve/foo.cc", content, {"bytes"}).empty());
  const std::string member =
      "void f(Shard& shard) {\n"
      "  shard.bytes += 1;\n"
      "}\n";
  EXPECT_EQ(
      CheckGuardedRead("src/serve/foo.cc", member, {"bytes"}).size(), 1u);
}

TEST(GuardedReadRuleTest, FileScopeAndSuppressionExempt) {
  // Constructor init lists and signatures sit at brace depth zero (the
  // namespace does not count) and are exempt.
  const std::string content =
      "namespace autocat {\n"
      "Service::Service(Database db)\n"
      "    : db_(std::move(db)),\n"
      "      workload_(Workload{}) {\n"
      "}\n"
      "}  // namespace autocat\n";
  EXPECT_TRUE(
      CheckGuardedRead("src/serve/foo.cc", content, {"db_", "workload_"})
          .empty());
  EXPECT_TRUE(CheckGuardedRead(
                  "src/serve/foo.cc",
                  "void f() {\n"
                  "  db_.Reset();  // autocat-lint: allow(guarded-read)\n"
                  "}\n",
                  {"db_"})
                  .empty());
}

TEST(LintFixtureTest, PassTreeLintsClean) {
  std::vector<LintIssue> issues;
  const std::string root =
      std::string(AUTOCAT_LINT_FIXTURE_DIR) + "/pass";
  const std::vector<std::string> lock_order = {"state_mu_", "columnar_mu_",
                                               "shard.mu", "mu_"};
  ASSERT_TRUE(LintFiles(root,
                        {"src/widget/widget.h", "src/widget/widget.cc",
                         "src/widget/file_io.cc",
                         "src/exec/pipeline/scheduler.cc",
                         "src/exec/simd_kernels.cc",
                         "src/serve/ordered.cc",
                         "src/serve/annotated_sync.h",
                         "src/serve/raii_lock.cc",
                         "src/serve/guarded_ok.cc"},
                        lock_order, &issues));
  for (const auto& issue : issues) {
    ADD_FAILURE() << issue.ToString();
  }
}

TEST(LintFixtureTest, FailTreeTripsEveryRule) {
  std::vector<LintIssue> issues;
  const std::string root =
      std::string(AUTOCAT_LINT_FIXTURE_DIR) + "/fail";
  // The fixture's dropped.cc calls functions declared in the pass tree's
  // header; hand the checker that header's declarations by linting it
  // from the fail root via a relative path.
  const std::vector<std::string> lock_order = {"state_mu_", "columnar_mu_",
                                               "shard.mu", "mu_"};
  ASSERT_TRUE(LintFiles(root,
                        {"src/broken/wrong_guard.h", "src/broken/banned.cc",
                         "src/broken/dropped.cc",
                         "src/broken/raw_thread.cc",
                         "src/broken/raw_mmap.cc",
                         "src/exec/direct_parallel_for.cc",
                         "src/exec/raw_simd.cc",
                         "src/serve/unordered.cc",
                         "src/serve/unannotated_sync.cc",
                         "src/serve/manual_lock.cc",
                         "src/serve/atomic_default.cc",
                         "src/serve/lock_inversion.cc",
                         "src/serve/guarded_leak.cc",
                         "../pass/src/widget/widget.h"},
                        lock_order, &issues));
  EXPECT_TRUE(HasRule(issues, "include-guard"));
  EXPECT_TRUE(HasRule(issues, "banned-call"));
  EXPECT_TRUE(HasRule(issues, "dropped-status"));
  EXPECT_TRUE(HasRule(issues, "raw-thread"));
  EXPECT_TRUE(HasRule(issues, "raw-mmap"));
  EXPECT_TRUE(HasRule(issues, "raw-simd"));
  EXPECT_TRUE(HasRule(issues, "direct-parallel-for"));
  EXPECT_TRUE(HasRule(issues, "unordered-container"));
  EXPECT_TRUE(HasRule(issues, "unannotated-sync"));
  EXPECT_TRUE(HasRule(issues, "manual-lock"));
  EXPECT_TRUE(HasRule(issues, "atomic-order"));
  EXPECT_TRUE(HasRule(issues, "lock-order"));
  EXPECT_TRUE(HasRule(issues, "guarded-read"));
  // banned.cc carries exactly three banned calls.
  const auto banned =
      std::count_if(issues.begin(), issues.end(), [](const LintIssue& i) {
        return i.rule == "banned-call";
      });
  EXPECT_EQ(banned, 3);
  // dropped.cc drops exactly two Status returns.
  const auto dropped =
      std::count_if(issues.begin(), issues.end(), [](const LintIssue& i) {
        return i.rule == "dropped-status";
      });
  EXPECT_EQ(dropped, 2);
  // raw_thread.cc carries exactly two raw-thread uses.
  const auto raw =
      std::count_if(issues.begin(), issues.end(), [](const LintIssue& i) {
        return i.rule == "raw-thread";
      });
  EXPECT_EQ(raw, 2);
  // raw_mmap.cc carries exactly four raw syscalls (the suppressed msync
  // and the member/prefixed lookalikes don't count).
  const auto mmapped =
      std::count_if(issues.begin(), issues.end(), [](const LintIssue& i) {
        return i.rule == "raw-mmap";
      });
  EXPECT_EQ(mmapped, 4);
  // exec/direct_parallel_for.cc carries exactly three direct dispatches
  // (the member/prefixed lookalikes and the suppressed call don't count).
  const auto direct_pf =
      std::count_if(issues.begin(), issues.end(), [](const LintIssue& i) {
        return i.rule == "direct-parallel-for";
      });
  EXPECT_EQ(direct_pf, 3);
  // serve/unordered.cc carries exactly three hash-container uses (the
  // suppressed one and the comment/string mentions don't count).
  const auto unordered =
      std::count_if(issues.begin(), issues.end(), [](const LintIssue& i) {
        return i.rule == "unordered-container";
      });
  EXPECT_EQ(unordered, 3);
  const auto count_rule = [&issues](const std::string& rule) {
    return std::count_if(issues.begin(), issues.end(),
                         [&rule](const LintIssue& i) {
                           return i.rule == rule;
                         });
  };
  // serve/unannotated_sync.cc: the include, three raw types, and one
  // undocumented atomic (the suppressed and documented ones don't count).
  EXPECT_EQ(count_rule("unannotated-sync"), 5);
  // serve/manual_lock.cc: four manual calls (one suppressed).
  EXPECT_EQ(count_rule("manual-lock"), 4);
  // serve/atomic_default.cc: four defaulted-order operations.
  EXPECT_EQ(count_rule("atomic-order"), 4);
  // serve/lock_inversion.cc: one inversion (the ordered nesting is fine).
  EXPECT_EQ(count_rule("lock-order"), 1);
  // serve/guarded_leak.cc: the bare read and the post-guard write.
  EXPECT_EQ(count_rule("guarded-read"), 2);
  // exec/raw_simd.cc: the include, two register declarations, and one
  // intrinsic call (the suppressed call and the lookalikes don't count).
  EXPECT_EQ(count_rule("raw-simd"), 4);
}

}  // namespace
}  // namespace autocat::lint
