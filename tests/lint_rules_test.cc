// Unit tests for each autocat_lint rule (tools/lint.h): expected-guard
// derivation, banned-call detection with comment/string/suppression
// handling, Status/Result declaration harvesting, dropped-return
// detection, and end-to-end runs over the fixture trees in
// tests/lint_fixtures (pass/ must lint clean, fail/ must trip every
// rule).

#include "tools/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace autocat::lint {
namespace {

bool HasRule(const std::vector<LintIssue>& issues, const std::string& rule) {
  return std::any_of(issues.begin(), issues.end(),
                     [&](const LintIssue& i) { return i.rule == rule; });
}

TEST(IncludeGuardRuleTest, ExpectedGuardDerivation) {
  EXPECT_EQ(ExpectedIncludeGuard("src/core/category.h"),
            "AUTOCAT_CORE_CATEGORY_H_");
  EXPECT_EQ(ExpectedIncludeGuard("src/autocat.h"), "AUTOCAT_AUTOCAT_H_");
  EXPECT_EQ(ExpectedIncludeGuard("tools/lint.h"), "AUTOCAT_TOOLS_LINT_H_");
  EXPECT_EQ(ExpectedIncludeGuard("tests/test_util.h"),
            "AUTOCAT_TESTS_TEST_UTIL_H_");
}

TEST(IncludeGuardRuleTest, AcceptsMatchingGuard) {
  const std::string content =
      "#ifndef AUTOCAT_CORE_FOO_H_\n"
      "#define AUTOCAT_CORE_FOO_H_\n"
      "#endif\n";
  EXPECT_TRUE(CheckIncludeGuard("src/core/foo.h", content).empty());
}

TEST(IncludeGuardRuleTest, RejectsMismatchedGuard) {
  const std::string content =
      "#ifndef WRONG_GUARD_H_\n"
      "#define WRONG_GUARD_H_\n"
      "#endif\n";
  const auto issues = CheckIncludeGuard("src/core/foo.h", content);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "include-guard");
  EXPECT_NE(issues[0].message.find("AUTOCAT_CORE_FOO_H_"),
            std::string::npos);
}

TEST(IncludeGuardRuleTest, RejectsMissingGuard) {
  EXPECT_FALSE(CheckIncludeGuard("src/core/foo.h", "int x;\n").empty());
}

TEST(IncludeGuardRuleTest, RejectsGuardWithoutDefine) {
  const std::string content =
      "#ifndef AUTOCAT_CORE_FOO_H_\n"
      "int x;\n"
      "#endif\n";
  const auto issues = CheckIncludeGuard("src/core/foo.h", content);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("#define"), std::string::npos);
}

TEST(BannedCallRuleTest, FlagsAssertAbortRand) {
  const std::string content =
      "void f() {\n"
      "  assert(true);\n"
      "  std::abort();\n"
      "  int x = rand();\n"
      "  srand(42);\n"
      "}\n";
  const auto issues = CheckBannedCalls("src/core/foo.cc", content);
  EXPECT_EQ(issues.size(), 4u);
}

TEST(BannedCallRuleTest, ExemptsCommonLayer) {
  EXPECT_TRUE(
      CheckBannedCalls("src/common/check.cc", "std::abort();\n").empty());
}

TEST(BannedCallRuleTest, IgnoresCommentsAndStrings) {
  const std::string content =
      "// abort() in a line comment\n"
      "/* assert(x) in a block comment */\n"
      "const char* s = \"srand(1)\";\n"
      "/* multi-line\n"
      "   rand() still inside\n"
      "*/\n";
  EXPECT_TRUE(CheckBannedCalls("src/core/foo.cc", content).empty());
}

TEST(BannedCallRuleTest, DoesNotFlagIdentifierSuffixes) {
  const std::string content =
      "my_assert(x);\n"
      "Random rng = MakeRandom(7);\n"
      "controller.abort_requested();\n";
  EXPECT_TRUE(CheckBannedCalls("src/core/foo.cc", content).empty());
}

TEST(BannedCallRuleTest, SuppressionCommentIsHonored) {
  const std::string content =
      "std::abort();  // autocat-lint: allow(banned-call)\n";
  EXPECT_TRUE(CheckBannedCalls("src/core/foo.cc", content).empty());
}

TEST(RawThreadRuleTest, FlagsThreadUsesOutsideThreadPool) {
  const std::string content =
      "#include <thread>\n"
      "std::thread t([] {});\n"
      "std::jthread j([] {});\n";
  EXPECT_EQ(CheckRawThread("src/core/foo.cc", content).size(), 3u);
  EXPECT_EQ(CheckRawThread("src/core/foo.cc", content)[0].rule,
            "raw-thread");
}

TEST(RawThreadRuleTest, ExemptsOnlyTheThreadPoolFiles) {
  EXPECT_TRUE(
      CheckRawThread("src/common/thread_pool.cc", "std::thread t;\n")
          .empty());
  EXPECT_TRUE(
      CheckRawThread("src/common/thread_pool.h", "#include <thread>\n")
          .empty());
  // The rest of src/common is not exempt (unlike banned-call).
  EXPECT_FALSE(
      CheckRawThread("src/common/random.cc", "std::thread t;\n").empty());
}

TEST(RawThreadRuleTest, IgnoresCommentsStringsAndSuppressions) {
  const std::string content =
      "// std::thread in a line comment\n"
      "/* std::jthread in a block comment */\n"
      "const char* s = \"std::thread\";\n"
      "std::thread t;  // autocat-lint: allow(raw-thread)\n";
  EXPECT_TRUE(CheckRawThread("src/core/foo.cc", content).empty());
}

TEST(RawThreadRuleTest, DoesNotFlagIdentifierLookalikes) {
  const std::string content =
      "my::thread_helper h;\n"
      "int thread_count = pool.threads();\n";
  EXPECT_TRUE(CheckRawThread("src/core/foo.cc", content).empty());
}

TEST(DroppedStatusRuleTest, CollectsStatusAndResultDeclarations) {
  const std::string header =
      "Status Flush(int fd);\n"
      "  static Status Open(const std::string& path);\n"
      "Result<std::vector<int>> ParseAll(std::string_view text);\n"
      "void NotCollected();\n"
      "int AlsoNotCollected();\n";
  const auto names = CollectStatusFunctions(header);
  EXPECT_EQ(names.count("Flush"), 1u);
  EXPECT_EQ(names.count("Open"), 1u);
  EXPECT_EQ(names.count("ParseAll"), 1u);
  EXPECT_EQ(names.count("NotCollected"), 0u);
  EXPECT_EQ(names.count("AlsoNotCollected"), 0u);
}

TEST(DroppedStatusRuleTest, FlagsBareCallStatement) {
  const auto issues = CheckDroppedStatus(
      "src/core/foo.cc", "  Flush(3);\n  writer.Flush(4);\n", {"Flush"});
  EXPECT_EQ(issues.size(), 2u);
  EXPECT_EQ(issues[0].rule, "dropped-status");
}

TEST(DroppedStatusRuleTest, AcceptsConsumedReturns) {
  const std::string content =
      "Status s = Flush(3);\n"
      "return Flush(4);\n"
      "if (!Flush(5).ok()) {\n"
      "AUTOCAT_RETURN_IF_ERROR(Flush(6));\n"
      "EXPECT_TRUE(Flush(7).ok());\n"
      "(void)Flush(8);\n";
  EXPECT_TRUE(
      CheckDroppedStatus("src/core/foo.cc", content, {"Flush"}).empty());
}

TEST(DroppedStatusRuleTest, SuppressionCommentIsHonored) {
  const std::string content =
      "Flush(3);  // autocat-lint: allow(dropped-status)\n";
  EXPECT_TRUE(
      CheckDroppedStatus("src/core/foo.cc", content, {"Flush"}).empty());
}

TEST(DroppedStatusRuleTest, UnknownNamesAreIgnored) {
  EXPECT_TRUE(
      CheckDroppedStatus("src/core/foo.cc", "DoStuff();\n", {"Flush"})
          .empty());
}

TEST(UnorderedContainerRuleTest, FlagsUnorderedContainersInServe) {
  const std::string content =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;\n"
      "std::unordered_set<int> s;\n"
      "std::unordered_multimap<int, int> mm;\n";
  const auto issues = CheckUnorderedContainer("src/serve/cache.cc", content);
  EXPECT_EQ(issues.size(), 4u);
  EXPECT_TRUE(HasRule(issues, "unordered-container"));
}

TEST(UnorderedContainerRuleTest, OnlyAppliesToServe) {
  const std::string content = "std::unordered_map<int, int> m;\n";
  EXPECT_TRUE(CheckUnorderedContainer("src/core/foo.cc", content).empty());
  EXPECT_TRUE(CheckUnorderedContainer("tools/foo.cc", content).empty());
  EXPECT_EQ(CheckUnorderedContainer("src/serve/foo.cc", content).size(),
            1u);
}

TEST(UnorderedContainerRuleTest, IgnoresCommentsStringsAndSuppressions) {
  EXPECT_TRUE(CheckUnorderedContainer("src/serve/foo.cc",
                                      "// std::unordered_map is banned\n")
                  .empty());
  EXPECT_TRUE(CheckUnorderedContainer(
                  "src/serve/foo.cc",
                  "const char* s = \"std::unordered_set\";\n")
                  .empty());
  EXPECT_TRUE(
      CheckUnorderedContainer(
          "src/serve/foo.cc",
          "std::unordered_map<int, int> m;  "
          "// autocat-lint: allow(unordered-container)\n")
          .empty());
}

TEST(UnorderedContainerRuleTest, AcceptsOrderedContainers) {
  EXPECT_TRUE(CheckUnorderedContainer(
                  "src/serve/foo.cc",
                  "std::map<int, int> m;\nstd::set<int> s;\n")
                  .empty());
}

TEST(LintFixtureTest, PassTreeLintsClean) {
  std::vector<LintIssue> issues;
  const std::string root =
      std::string(AUTOCAT_LINT_FIXTURE_DIR) + "/pass";
  ASSERT_TRUE(LintFiles(root,
                        {"src/widget/widget.h", "src/widget/widget.cc",
                         "src/serve/ordered.cc"},
                        &issues));
  for (const auto& issue : issues) {
    ADD_FAILURE() << issue.ToString();
  }
}

TEST(LintFixtureTest, FailTreeTripsEveryRule) {
  std::vector<LintIssue> issues;
  const std::string root =
      std::string(AUTOCAT_LINT_FIXTURE_DIR) + "/fail";
  // The fixture's dropped.cc calls functions declared in the pass tree's
  // header; hand the checker that header's declarations by linting it
  // from the fail root via a relative path.
  ASSERT_TRUE(LintFiles(root,
                        {"src/broken/wrong_guard.h", "src/broken/banned.cc",
                         "src/broken/dropped.cc",
                         "src/broken/raw_thread.cc",
                         "src/serve/unordered.cc",
                         "../pass/src/widget/widget.h"},
                        &issues));
  EXPECT_TRUE(HasRule(issues, "include-guard"));
  EXPECT_TRUE(HasRule(issues, "banned-call"));
  EXPECT_TRUE(HasRule(issues, "dropped-status"));
  EXPECT_TRUE(HasRule(issues, "raw-thread"));
  EXPECT_TRUE(HasRule(issues, "unordered-container"));
  // banned.cc carries exactly three banned calls.
  const auto banned =
      std::count_if(issues.begin(), issues.end(), [](const LintIssue& i) {
        return i.rule == "banned-call";
      });
  EXPECT_EQ(banned, 3);
  // dropped.cc drops exactly two Status returns.
  const auto dropped =
      std::count_if(issues.begin(), issues.end(), [](const LintIssue& i) {
        return i.rule == "dropped-status";
      });
  EXPECT_EQ(dropped, 2);
  // raw_thread.cc carries exactly two raw-thread uses.
  const auto raw =
      std::count_if(issues.begin(), issues.end(), [](const LintIssue& i) {
        return i.rule == "raw-thread";
      });
  EXPECT_EQ(raw, 2);
  // serve/unordered.cc carries exactly three hash-container uses (the
  // suppressed one and the comment/string mentions don't count).
  const auto unordered =
      std::count_if(issues.begin(), issues.end(), [](const LintIssue& i) {
        return i.rule == "unordered-container";
      });
  EXPECT_EQ(unordered, 3);
}

}  // namespace
}  // namespace autocat::lint
