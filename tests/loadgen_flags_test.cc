// Unit tests for tools/loadgen_flags.h: every numeric flag goes through
// the strict common/string_util parsers, so malformed values are
// kInvalidArgument errors naming the flag — never the silent-zero
// behavior of bare strtoull.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tools/loadgen_flags.h"

namespace autocat {
namespace {

Result<LoadgenConfig> Parse(std::vector<std::string> args) {
  return ParseLoadgenArgs(args);
}

TEST(LoadgenFlagsTest, DefaultsWithNoArgs) {
  auto config = Parse({});
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->num_homes, 20000u);
  EXPECT_EQ(config->num_queries, 2000u);
  EXPECT_EQ(config->num_requests, 500u);
  EXPECT_EQ(config->num_signatures, 64u);
  EXPECT_DOUBLE_EQ(config->qps, 0);
  EXPECT_EQ(config->threads, 4u);
  EXPECT_EQ(config->deadline_ms, 0);
  EXPECT_EQ(config->cache_mb, 64u);
  EXPECT_EQ(config->seed, 4242u);
  EXPECT_FALSE(config->bypass_cache);
  EXPECT_FALSE(config->scenario_mode());
  EXPECT_FALSE(config->adaptive);
  EXPECT_EQ(config->adapt_every, 64u);
  EXPECT_FALSE(config->paced);
}

TEST(LoadgenFlagsTest, ParsesEveryFlag) {
  auto config = Parse({"--homes=100", "--queries=50", "--requests=25",
                       "--signatures=8", "--qps=12.5", "--threads=2",
                       "--deadline-ms=150", "--cache-mb=16", "--seed=9",
                       "--bypass-cache", "--adaptive", "--adapt-every=32",
                       "--paced", "--scenario=drifting"});
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->num_homes, 100u);
  EXPECT_EQ(config->num_queries, 50u);
  EXPECT_EQ(config->num_requests, 25u);
  EXPECT_EQ(config->num_signatures, 8u);
  EXPECT_DOUBLE_EQ(config->qps, 12.5);
  EXPECT_EQ(config->threads, 2u);
  EXPECT_EQ(config->deadline_ms, 150);
  EXPECT_EQ(config->cache_mb, 16u);
  EXPECT_EQ(config->seed, 9u);
  EXPECT_TRUE(config->bypass_cache);
  EXPECT_TRUE(config->adaptive);
  EXPECT_EQ(config->adapt_every, 32u);
  EXPECT_TRUE(config->paced);
  EXPECT_EQ(config->scenario, "drifting");
  EXPECT_TRUE(config->scenario_mode());
}

TEST(LoadgenFlagsTest, RejectsMalformedNumbers) {
  // The strtoull this replaced silently parsed all of these to 0 (or to
  // a partial prefix); now each is an error naming the flag.
  for (const char* arg :
       {"--homes=20x", "--homes=", "--homes=x20", "--homes=4 2",
        "--requests=1.5", "--qps=1e--3", "--qps=fast",
        "--deadline-ms=12ms", "--seed=0xbeef", "--cache-mb=64MB"}) {
    const auto config = Parse({arg});
    EXPECT_FALSE(config.ok()) << arg << " should not parse";
    // The error must name the offending flag.
    const std::string flag =
        std::string(arg).substr(0, std::string(arg).find('='));
    EXPECT_NE(config.status().message().find(flag), std::string::npos)
        << "error for " << arg
        << " must name the flag: " << config.status().ToString();
  }
}

TEST(LoadgenFlagsTest, RejectsNegativeUnsigned) {
  // strtoull accepts '-5' by wrapping to 2^64-5; strict parsing refuses.
  EXPECT_FALSE(Parse({"--homes=-5"}).ok());
  EXPECT_FALSE(Parse({"--seed=-1"}).ok());
  EXPECT_FALSE(Parse({"--deadline-ms=-1"}).ok());
  EXPECT_FALSE(Parse({"--qps=-0.5"}).ok());
}

TEST(LoadgenFlagsTest, BoundaryValues) {
  // Max uint64 round-trips; one past it is an out-of-range error.
  auto max = Parse({"--seed=18446744073709551615"});
  ASSERT_TRUE(max.ok());
  EXPECT_EQ(max->seed, 18446744073709551615ull);
  EXPECT_FALSE(Parse({"--seed=18446744073709551616"}).ok());

  // Zero-value semantics: allowed where 0 means "unbounded/unpaced",
  // rejected where it would be degenerate.
  EXPECT_TRUE(Parse({"--qps=0"}).ok());
  EXPECT_TRUE(Parse({"--deadline-ms=0"}).ok());
  EXPECT_TRUE(Parse({"--signatures=0"}).ok());
  EXPECT_FALSE(Parse({"--threads=0"}).ok());
  EXPECT_FALSE(Parse({"--adapt-every=0"}).ok());

  // Strict parsing still trims surrounding whitespace.
  auto padded = Parse({"--homes= 42 "});
  ASSERT_TRUE(padded.ok());
  EXPECT_EQ(padded->num_homes, 42u);
}

TEST(LoadgenFlagsTest, RejectsUnknownFlags) {
  EXPECT_FALSE(Parse({"--frobnicate=1"}).ok());
  EXPECT_FALSE(Parse({"--homes"}).ok());  // missing '='
  EXPECT_FALSE(Parse({"homes=5"}).ok());  // missing '--'
  const auto config = Parse({"--frobnicate=1"});
  EXPECT_NE(config.status().message().find("--frobnicate=1"),
            std::string::npos);
}

TEST(LoadgenFlagsTest, ScenarioAndFileAreMutuallyExclusive) {
  EXPECT_TRUE(Parse({"--scenario=steady"}).ok());
  EXPECT_TRUE(Parse({"--scenario-file=/tmp/x.scenario"}).ok());
  const auto both =
      Parse({"--scenario=steady", "--scenario-file=/tmp/x.scenario"});
  EXPECT_FALSE(both.ok());
  EXPECT_EQ(both.status().code(), StatusCode::kInvalidArgument);
}

TEST(LoadgenFlagsTest, StoreFlag) {
  EXPECT_TRUE(Parse({}).value().store.empty());
  const auto config = Parse({"--store=/tmp/homes.store"});
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->store, "/tmp/homes.store");

  // An empty path is a configuration error, not a silent default.
  const auto empty = Parse({"--store="});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  // Store mode is legacy-replay only.
  const auto with_scenario =
      Parse({"--store=/tmp/h.store", "--scenario=steady"});
  ASSERT_FALSE(with_scenario.ok());
  EXPECT_EQ(with_scenario.status().code(), StatusCode::kInvalidArgument);
}

TEST(LoadgenFlagsTest, BurstFlag) {
  EXPECT_EQ(Parse({}).value().burst, 1u);
  const auto config = Parse({"--burst=8"});
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->burst, 8u);

  const auto zero = Parse({"--burst=0"});
  ASSERT_FALSE(zero.ok());
  EXPECT_EQ(zero.status().code(), StatusCode::kInvalidArgument);

  const auto malformed = Parse({"--burst=8x"});
  ASSERT_FALSE(malformed.ok());
  EXPECT_EQ(malformed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(malformed.status().message().find("--burst"),
            std::string::npos);

  // Bursts coalesce in-flight duplicates; cache-bypass requests never
  // coalesce, and the scenario harness drives its own traffic shape.
  const auto with_bypass = Parse({"--burst=8", "--bypass-cache"});
  ASSERT_FALSE(with_bypass.ok());
  EXPECT_EQ(with_bypass.status().code(), StatusCode::kInvalidArgument);
  const auto with_scenario = Parse({"--burst=8", "--scenario=steady"});
  ASSERT_FALSE(with_scenario.ok());
  EXPECT_EQ(with_scenario.status().code(), StatusCode::kInvalidArgument);
}

TEST(LoadgenFlagsTest, UsageMentionsEveryFlag) {
  const std::string usage = LoadgenUsage("loadgen");
  for (const char* flag :
       {"--homes", "--queries", "--requests", "--signatures", "--qps",
        "--threads", "--deadline-ms", "--cache-mb", "--seed",
        "--bypass-cache", "--burst", "--store", "--scenario",
        "--scenario-file", "--adaptive", "--adapt-every", "--paced"}) {
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
  }
}

}  // namespace
}  // namespace autocat
