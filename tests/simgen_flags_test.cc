// Unit tests for tools/simgen_flags.h: the bulk loader's flags go
// through the same strict parsers as loadgen's — malformed values are
// kInvalidArgument errors naming the flag, never silent zeroes.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tools/simgen_flags.h"

namespace autocat {
namespace {

Result<SimgenConfig> Parse(std::vector<std::string> args) {
  return ParseSimgenArgs(args);
}

TEST(SimgenFlagsTest, DefaultsAndRequiredStore) {
  // --out-store is mandatory: there is nothing useful to do without it.
  const auto missing = Parse({});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(missing.status().message().find("--out-store"),
            std::string::npos);

  const auto config = Parse({"--out-store=/tmp/h.store"});
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->out_store, "/tmp/h.store");
  EXPECT_EQ(config->num_rows, 120000u);
  EXPECT_EQ(config->seed, 20040613u);
  EXPECT_EQ(config->threads, 4u);
  EXPECT_EQ(config->budget_mb, 64u);
  EXPECT_TRUE(config->sort_by.empty());
}

TEST(SimgenFlagsTest, ParsesEveryFlag) {
  const auto config =
      Parse({"--out-store=/x/homes.store", "--rows=10000000", "--seed=7",
             "--threads=8", "--budget-mb=256",
             "--sort-by=state,city,price"});
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->num_rows, 10000000u);
  EXPECT_EQ(config->seed, 7u);
  EXPECT_EQ(config->threads, 8u);
  EXPECT_EQ(config->budget_mb, 256u);
  EXPECT_EQ(config->sort_by,
            (std::vector<std::string>{"state", "city", "price"}));
}

TEST(SimgenFlagsTest, RejectsMalformedValues) {
  // The strtoull behavior these flags replaced would silently yield 0
  // for each of these.
  for (const char* arg :
       {"--rows=20x", "--rows=", "--seed=1e3", "--threads=abc",
        "--budget-mb=-1"}) {
    const auto config = Parse({"--out-store=/tmp/h", arg});
    ASSERT_FALSE(config.ok()) << arg;
    EXPECT_EQ(config.status().code(), StatusCode::kInvalidArgument)
        << arg;
  }
  EXPECT_FALSE(Parse({"--out-store=/tmp/h", "--threads=0"}).ok());
  EXPECT_FALSE(Parse({"--out-store=/tmp/h", "--budget-mb=0"}).ok());
  EXPECT_FALSE(Parse({"--out-store="}).ok());
  EXPECT_FALSE(Parse({"--out-store=/tmp/h", "--sort-by="}).ok());
  EXPECT_FALSE(Parse({"--out-store=/tmp/h", "--sort-by=a,,b"}).ok());
  EXPECT_FALSE(Parse({"--out-store=/tmp/h", "--frobnicate=1"}).ok());
  EXPECT_FALSE(Parse({"--out-store=/tmp/h", "--rows"}).ok());
}

TEST(SimgenFlagsTest, UsageMentionsEveryFlag) {
  const std::string usage = SimgenUsage("simgen");
  for (const char* flag : {"--out-store", "--rows", "--seed", "--threads",
                           "--budget-mb", "--sort-by"}) {
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
  }
}

}  // namespace
}  // namespace autocat
