// Seed-robustness: the Section 6 shapes must not be artifacts of the
// default seed. Runs the reduced-scale studies under different seeds and
// asserts the (looser) directional claims.

#include <gtest/gtest.h>

#include <set>

#include "simgen/study.h"

namespace autocat {
namespace {

StudyConfig ConfigWithSeed(uint64_t seed) {
  StudyConfig config = DefaultStudyConfig();
  config.num_homes = 50000;
  config.num_workload_queries = 6000;
  config.num_subsets = 2;
  config.subset_size = 15;
  config.seed = seed;
  return config;
}

class SeedRobustnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedRobustnessTest, SimulatedStudyShapesHold) {
  const auto env = StudyEnvironment::Create(ConfigWithSeed(GetParam()));
  ASSERT_TRUE(env.ok()) << env.status().ToString();
  const auto study = RunSimulatedStudy(env.value());
  ASSERT_TRUE(study.ok()) << study.status().ToString();

  const auto pooled = study->PooledPearson(SIZE_MAX);
  ASSERT_TRUE(pooled.ok());
  EXPECT_GT(pooled.value(), 0.3) << "seed " << GetParam();

  const double cb = study->MeanFractionalCost(Technique::kCostBased,
                                              SIZE_MAX);
  const double nc = study->MeanFractionalCost(Technique::kNoCost,
                                              SIZE_MAX);
  EXPECT_LT(cb, nc) << "seed " << GetParam();
  EXPECT_LT(cb, 0.5) << "seed " << GetParam();
}

TEST_P(SeedRobustnessTest, UserStudyShapesHold) {
  const auto env = StudyEnvironment::Create(ConfigWithSeed(GetParam()));
  ASSERT_TRUE(env.ok());
  const auto study = RunUserStudy(env.value());
  ASSERT_TRUE(study.ok()) << study.status().ToString();

  // Cost-based wins the ALL-cost comparison against No cost in aggregate.
  double cost_based_total = 0;
  double no_cost_total = 0;
  for (const UserRunRecord& record : study->records) {
    if (record.technique == Technique::kCostBased) {
      cost_based_total += record.actual_cost_all;
    } else if (record.technique == Technique::kNoCost) {
      no_cost_total += record.actual_cost_all;
    }
  }
  EXPECT_LT(cost_based_total, no_cost_total) << "seed " << GetParam();

  // No cost never wins the survey.
  const auto votes = study->SurveyVotes();
  const auto no_cost_it = votes.find(Technique::kNoCost);
  const size_t no_cost_votes =
      no_cost_it == votes.end() ? 0 : no_cost_it->second;
  for (const auto& [technique, count] : votes) {
    if (technique != Technique::kNoCost) {
      EXPECT_GE(count, no_cost_votes)
          << "seed " << GetParam() << ": No cost outpolled "
          << TechniqueToString(technique);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedRobustnessTest,
                         ::testing::Values(7u, 991u, 31415u));

// The leaf-size guarantee at study scale: with the six retained
// attributes, (nearly) all leaves respect M. A leaf may legitimately
// exceed M only when every attribute has been consumed on its path.
TEST(LeafGuaranteeTest, TaskTreesRespectM) {
  const auto env = StudyEnvironment::Create(ConfigWithSeed(4242));
  ASSERT_TRUE(env.ok());
  const auto stats = WorkloadStats::Build(env->workload(), env->schema(),
                                          env->config().stats);
  ASSERT_TRUE(stats.ok());
  const auto tasks = PaperStudyTasks(env->geo());
  ASSERT_TRUE(tasks.ok());
  const size_t m = env->config().categorizer.max_tuples_per_category;
  for (const StudyTask& task : tasks.value()) {
    const auto result = env->ExecuteProfile(task.query);
    ASSERT_TRUE(result.ok());
    if (result->empty()) {
      continue;
    }
    const auto categorizer = MakeTechnique(Technique::kCostBased,
                                           &stats.value(), env->config(),
                                           1);
    const auto tree = categorizer->Categorize(result.value(), &task.query);
    ASSERT_TRUE(tree.ok());
    const std::vector<std::string>& level_attrs = tree->level_attributes();
    size_t oversized_leaves = 0;
    size_t leaves = 0;
    for (NodeId id = 0; id < static_cast<NodeId>(tree->num_nodes());
         ++id) {
      const CategoryNode& node = tree->node(id);
      if (!node.is_leaf()) {
        continue;
      }
      ++leaves;
      if (node.tset_size() <= m) {
        continue;
      }
      ++oversized_leaves;
      // An oversized leaf is only legitimate when none of the remaining
      // level attributes can split it: a single distinct value, or (for
      // numeric attributes) no workload split point strictly inside the
      // tuples' value range.
      for (size_t level = static_cast<size_t>(node.level);
           level < level_attrs.size(); ++level) {
        const std::string& attr = level_attrs[level];
        const size_t col = result->schema().ColumnIndex(attr).value();
        Value lo;
        Value hi;
        std::set<Value> distinct;
        for (size_t idx : node.tuples) {
          const Value& v = result->ValueAt(idx, col);
          if (v.is_null()) {
            continue;
          }
          distinct.insert(v);
          if (lo.is_null() || v < lo) lo = v;
          if (hi.is_null() || v > hi) hi = v;
        }
        if (distinct.size() <= 1) {
          continue;  // cannot split on this attribute
        }
        ASSERT_EQ(result->schema().column(col).kind, ColumnKind::kNumeric)
            << task.id << ": splittable categorical attribute " << attr
            << " left leaf " << id << " oversized";
        EXPECT_TRUE(stats
                        ->SplitPointsInRange(attr, lo.AsDouble(),
                                             hi.AsDouble())
                        .empty())
            << task.id << " leaf " << id << ": attribute " << attr
            << " had usable split points in ["
            << lo.ToString() << ", " << hi.ToString() << "]";
      }
    }
    // Degenerate leaves are a small minority.
    EXPECT_LT(oversized_leaves * 5, leaves) << task.id;
  }
}

}  // namespace
}  // namespace autocat
