// Death tests for the contract layer (common/check.h): the CHECK macros
// must abort with a file/line diagnostic, the _OP variants must print
// both operand values, and DCHECK must compile away under NDEBUG.

#include "common/check.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

namespace {

TEST(CheckDeathTest, CheckPassesOnTrueCondition) {
  AUTOCAT_CHECK(1 + 1 == 2);  // must not abort
}

TEST(CheckDeathTest, CheckAbortsWithConditionText) {
  EXPECT_DEATH(AUTOCAT_CHECK(2 < 1), "AUTOCAT_CHECK failed: 2 < 1");
}

TEST(CheckDeathTest, CheckEqPrintsBothValues) {
  const int lhs = 4;
  const int rhs = 5;
  EXPECT_DEATH(AUTOCAT_CHECK_EQ(lhs, rhs),
               "AUTOCAT_CHECK_EQ failed: lhs == rhs \\(4 vs 5\\)");
}

TEST(CheckDeathTest, CheckNePassesAndFails) {
  AUTOCAT_CHECK_NE(3, 4);
  EXPECT_DEATH(AUTOCAT_CHECK_NE(7, 7), "\\(7 vs 7\\)");
}

TEST(CheckDeathTest, CheckOrderingVariants) {
  AUTOCAT_CHECK_LT(1, 2);
  AUTOCAT_CHECK_LE(2, 2);
  AUTOCAT_CHECK_GT(3, 2);
  AUTOCAT_CHECK_GE(3, 3);
  EXPECT_DEATH(AUTOCAT_CHECK_LT(2, 1), "AUTOCAT_CHECK_LT failed");
  EXPECT_DEATH(AUTOCAT_CHECK_LE(2, 1), "AUTOCAT_CHECK_LE failed");
  EXPECT_DEATH(AUTOCAT_CHECK_GT(1, 2), "AUTOCAT_CHECK_GT failed");
  EXPECT_DEATH(AUTOCAT_CHECK_GE(1, 2), "AUTOCAT_CHECK_GE failed");
}

TEST(CheckDeathTest, CheckGePrintsDoubleValues) {
  const double p = -0.25;
  EXPECT_DEATH(AUTOCAT_CHECK_GE(p, 0.0), "-0.25 vs 0");
}

TEST(CheckDeathTest, CheckEqWorksWithStrings) {
  const std::string a = "alpha";
  AUTOCAT_CHECK_EQ(a, "alpha");
  EXPECT_DEATH(AUTOCAT_CHECK_EQ(a, std::string("beta")),
               "\\(alpha vs beta\\)");
}

TEST(CheckDeathTest, UnstreamableOperandsPrintPlaceholder) {
  const std::pair<int, int> a{1, 2};
  const std::pair<int, int> b{3, 4};
  EXPECT_DEATH(AUTOCAT_CHECK_EQ(a, b),
               "\\(<unprintable> vs <unprintable>\\)");
}

TEST(CheckDeathTest, CheckOpEvaluatesOperandsOnce) {
  int n = 0;
  AUTOCAT_CHECK_EQ(++n, 1);
  EXPECT_EQ(n, 1);
}

#ifdef NDEBUG
TEST(CheckDeathTest, DcheckIsNoOpInReleaseBuilds) {
  AUTOCAT_DCHECK(false);          // must not abort
  AUTOCAT_DCHECK_EQ(1, 2);        // must not abort
  AUTOCAT_DCHECK_GE(-1.0, 0.0);   // must not abort
}

TEST(CheckDeathTest, DcheckDoesNotEvaluateOperandsInReleaseBuilds) {
  int n = 0;
  AUTOCAT_DCHECK_EQ(++n, 1);
  EXPECT_EQ(n, 0);
}
#else
TEST(CheckDeathTest, DcheckAbortsInDebugBuilds) {
  EXPECT_DEATH(AUTOCAT_DCHECK(false), "AUTOCAT_CHECK failed");
  EXPECT_DEATH(AUTOCAT_DCHECK_EQ(1, 2), "\\(1 vs 2\\)");
}
#endif

}  // namespace
