// Tests for the fixed-size worker pool and its ParallelFor helper
// (src/common/thread_pool.h). Every test here also runs under
// AUTOCAT_SANITIZE=thread in CI — the contention tests are written to give
// TSan real interleavings to check, not just single-threaded smoke.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace autocat {
namespace {

TEST(ParallelOptionsTest, ZeroResolvesToHardwareConcurrency) {
  ParallelOptions options;
  EXPECT_GE(options.ResolvedThreads(), 1u);

  options.threads = 7;
  EXPECT_EQ(options.ResolvedThreads(), 7u);
  options.threads = 1;
  EXPECT_EQ(options.ResolvedThreads(), 1u);
}

TEST(ThreadPoolTest, ThreadsCountsTheCaller) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  ThreadPool inline_pool(1);
  EXPECT_EQ(inline_pool.threads(), 1u);
  // 0 is treated as 1: no workers, everything inline.
  ThreadPool zero_pool(0);
  EXPECT_EQ(zero_pool.threads(), 1u);
}

TEST(ThreadPoolTest, SubmitRunsTasksAndDeliversStatus) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::future<Status>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&ran]() -> Status {
      ran.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }));
  }
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().ok());
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, SubmitPropagatesFailureStatus) {
  ThreadPool pool(2);
  auto future = pool.Submit(
      []() -> Status { return Status::InvalidArgument("boom"); });
  const Status status = future.get();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("boom"), std::string::npos);
}

TEST(ThreadPoolTest, SubmitConvertsExceptionToInternalStatus) {
  ThreadPool pool(2);
  auto future = pool.Submit(
      []() -> Status { throw std::runtime_error("escaped"); });
  const Status status = future.get();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("escaped"), std::string::npos);
}

TEST(ThreadPoolTest, SubmitWithoutWorkersRunsInline) {
  ThreadPool pool(1);
  std::atomic<bool> ran{false};
  auto future = pool.Submit([&ran]() -> Status {
    ran = true;
    return Status::OK();
  });
  // With no workers the task completed before Submit returned.
  EXPECT_TRUE(ran.load());
  EXPECT_TRUE(future.get().ok());
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  for (const size_t grain : {1u, 3u, 16u, 1000u}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) {
      h = 0;
    }
    ASSERT_TRUE(pool.ParallelFor(0, hits.size(), grain,
                                 [&hits](size_t lo, size_t hi) -> Status {
                                   for (size_t i = lo; i < hi; ++i) {
                                     hits[i].fetch_add(1);
                                   }
                                   return Status::OK();
                                 })
                    .ok());
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " grain " << grain;
    }
  }
}

TEST(ThreadPoolTest, ParallelForChunkBoundariesDependOnlyOnGrain) {
  // The same (begin, end, grain) must produce the same chunk set on pools
  // of different sizes — the foundation of every determinism guarantee.
  for (const size_t threads : {1u, 2u, 7u}) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::vector<std::pair<size_t, size_t>> chunks;
    ASSERT_TRUE(pool.ParallelFor(5, 47, 10,
                                 [&](size_t lo, size_t hi) -> Status {
                                   std::lock_guard<std::mutex> lock(mu);
                                   chunks.emplace_back(lo, hi);
                                   return Status::OK();
                                 })
                    .ok());
    std::sort(chunks.begin(), chunks.end());
    const std::vector<std::pair<size_t, size_t>> expected = {
        {5, 15}, {15, 25}, {25, 35}, {35, 45}, {45, 47}};
    EXPECT_EQ(chunks, expected) << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRangeAndSingleItem) {
  ThreadPool pool(4);
  int calls = 0;
  EXPECT_TRUE(pool.ParallelFor(10, 10, 4,
                               [&calls](size_t, size_t) -> Status {
                                 ++calls;
                                 return Status::OK();
                               })
                  .ok());
  EXPECT_EQ(calls, 0);

  std::atomic<int> single{0};
  EXPECT_TRUE(pool.ParallelFor(3, 4, 100,
                               [&single](size_t lo, size_t hi) -> Status {
                                 EXPECT_EQ(lo, 3u);
                                 EXPECT_EQ(hi, 4u);
                                 single.fetch_add(1);
                                 return Status::OK();
                               })
                  .ok());
  EXPECT_EQ(single.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroGrainBehavesLikeOne) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  ASSERT_TRUE(pool.ParallelFor(0, 10, 0,
                               [&total](size_t lo, size_t hi) -> Status {
                                 EXPECT_EQ(hi, lo + 1);
                                 total.fetch_add(hi - lo);
                                 return Status::OK();
                               })
                  .ok());
  EXPECT_EQ(total.load(), 10u);
}

TEST(ThreadPoolTest, ParallelForReturnsLowestChunkError) {
  // Several chunks fail; the returned error must always be the one the
  // sequential in-order run would hit first, at any thread count.
  for (const size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    for (int round = 0; round < 20; ++round) {
      const Status status = pool.ParallelFor(
          0, 64, 1, [](size_t lo, size_t) -> Status {
            if (lo % 2 == 1) {
              return Status::InvalidArgument("chunk " + std::to_string(lo));
            }
            return Status::OK();
          });
      ASSERT_FALSE(status.ok());
      EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
      EXPECT_NE(status.message().find("chunk 1"), std::string::npos)
          << "threads=" << threads << ": " << status.ToString();
    }
  }
}

TEST(ThreadPoolTest, ParallelForConvertsChunkExceptionToInternal) {
  ThreadPool pool(4);
  const Status status =
      pool.ParallelFor(0, 8, 2, [](size_t lo, size_t) -> Status {
        if (lo == 0) {
          throw std::runtime_error("chunk threw");
        }
        return Status::OK();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("chunk threw"), std::string::npos);
}

TEST(ThreadPoolTest, NestedParallelForIsRejected) {
  ThreadPool pool(4);
  const Status status =
      pool.ParallelFor(0, 4, 1, [&pool](size_t, size_t) -> Status {
        return pool.ParallelFor(
            0, 4, 1, [](size_t, size_t) -> Status { return Status::OK(); });
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotSupported);
}

TEST(ThreadPoolTest, NestedFreeParallelForIsRejectedEvenSequentially) {
  // The contract is mode-independent: the sequential fallback rejects
  // nesting too, so a threads=1 run cannot mask a threads=N bug.
  ParallelOptions one;
  one.threads = 1;
  const Status status =
      ParallelFor(one, 0, 2, 1, [&one](size_t, size_t) -> Status {
        return ParallelFor(one, 0, 2, 1, [](size_t, size_t) -> Status {
          return Status::OK();
        });
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotSupported);
}

TEST(ThreadPoolTest, ContentionStress) {
  // Many concurrent waves of small chunks over shared counters; TSan
  // verifies the pool's internal synchronization, the sum verifies no
  // chunk is lost or duplicated.
  ThreadPool pool(8);
  for (int wave = 0; wave < 50; ++wave) {
    std::atomic<uint64_t> sum{0};
    ASSERT_TRUE(pool.ParallelFor(0, 500, 3,
                                 [&sum](size_t lo, size_t hi) -> Status {
                                   uint64_t local = 0;
                                   for (size_t i = lo; i < hi; ++i) {
                                     local += i;
                                   }
                                   sum.fetch_add(local);
                                   return Status::OK();
                                 })
                    .ok());
    EXPECT_EQ(sum.load(), 500u * 499u / 2);
  }
}

TEST(ThreadPoolTest, SharedPoolHonorsRequestedParallelism) {
  // The shared pool is sized for at least 16-way requests so the
  // determinism suite exercises real threads even on small machines.
  EXPECT_GE(ThreadPool::Shared().threads(), 16u);
}

TEST(ThreadPoolTest, FreeParallelForShardsMergeDeterministically) {
  // The usage pattern of every hot path: per-chunk shards, merged in chunk
  // order. The merged result must be identical at every thread count.
  const size_t n = 10000;
  constexpr size_t kGrain = 64;
  std::vector<std::vector<size_t>> results;
  for (const size_t threads : {1u, 2u, 7u, 16u}) {
    ParallelOptions options;
    options.threads = threads;
    const size_t num_chunks = (n + kGrain - 1) / kGrain;
    std::vector<std::vector<size_t>> shards(num_chunks);
    ASSERT_TRUE(ParallelFor(options, 0, n, kGrain,
                            [&shards](size_t lo, size_t hi) -> Status {
                              auto& shard = shards[lo / kGrain];
                              for (size_t i = lo; i < hi; ++i) {
                                shard.push_back(i * 31 % 97);
                              }
                              return Status::OK();
                            })
                    .ok());
    std::vector<size_t> merged;
    for (const auto& shard : shards) {
      merged.insert(merged.end(), shard.begin(), shard.end());
    }
    results.push_back(std::move(merged));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]);
  }
}

}  // namespace
}  // namespace autocat
