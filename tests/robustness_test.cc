// Robustness and end-to-end property tests: fuzzed SQL input, generated
// query round-trips, the find-all-relevant exploration invariant, and the
// drill-down/tset consistency invariant on generated trees.

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "core/categorizer.h"
#include "core/export.h"
#include "exec/executor.h"
#include "explore/exploration.h"
#include "simgen/study.h"
#include "sql/parser.h"
#include "test_util.h"

namespace autocat {
namespace {

// ------------------------------------------------------------ parser fuzz

// Random byte strings must never crash the lexer/parser — they either
// parse or return a ParseError.
class ParserFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzzTest, RandomBytesNeverCrash) {
  Random rng(static_cast<uint64_t>(GetParam()) * 7919);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t len = static_cast<size_t>(rng.Uniform(0, 80));
    std::string input;
    for (size_t i = 0; i < len; ++i) {
      input += static_cast<char>(rng.Uniform(32, 126));
    }
    const auto result = ParseQuery(input);
    if (result.ok()) {
      // Whatever parsed must unparse and reparse.
      EXPECT_TRUE(ParseQuery(result->ToSql()).ok()) << input;
    }
  }
}

TEST_P(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  Random rng(static_cast<uint64_t>(GetParam()) * 104729);
  static const char* kTokens[] = {
      "SELECT", "FROM",  "WHERE", "AND",   "OR",     "IN",     "NOT",
      "BETWEEN", "IS",   "NULL",  "*",     ",",      "(",      ")",
      "=",      "<>",    "<",     "<=",    ">",      ">=",     "price",
      "homes",  "'x'",   "42",    "3.5",   ";",      "ORDER",  "BY"};
  for (int trial = 0; trial < 300; ++trial) {
    const size_t len = static_cast<size_t>(rng.Uniform(1, 25));
    std::string input;
    for (size_t i = 0; i < len; ++i) {
      input += kTokens[rng.Uniform(0, std::size(kTokens) - 1)];
      input += ' ';
    }
    (void)ParseQuery(input);  // must not crash; outcome is irrelevant
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(1, 5));

// The synthetic workload generator's SQL must round-trip through parse ->
// ToSql -> parse with identical normalized profiles.
TEST(GeneratedSqlRoundTripTest, ProfilesSurviveUnparsing) {
  const Geography geo = Geography::UnitedStates();
  const auto schema = HomesGenerator::ListPropertySchema();
  ASSERT_TRUE(schema.ok());
  WorkloadGeneratorConfig config;
  config.num_queries = 400;
  const std::vector<std::string> sqls =
      WorkloadGenerator(&geo, config).GenerateSql();
  for (const std::string& sql : sqls) {
    const auto query = ParseQuery(sql);
    ASSERT_TRUE(query.ok()) << sql;
    const auto reparsed = ParseQuery(query->ToSql());
    ASSERT_TRUE(reparsed.ok()) << query->ToSql();
    const auto profile_a =
        SelectionProfile::FromQuery(query.value(), schema.value());
    const auto profile_b =
        SelectionProfile::FromQuery(reparsed.value(), schema.value());
    ASSERT_TRUE(profile_a.ok());
    ASSERT_TRUE(profile_b.ok());
    EXPECT_EQ(profile_a->ToString(), profile_b->ToString()) << sql;
  }
}

// ------------------------------------------- exploration completeness

// Noise-free ALL exploration must find EVERY relevant tuple, whatever the
// tree: any category containing a relevant tuple has labels consistent
// with the user's conditions all the way down, so it is never ignored.
class FindsAllRelevantTest : public ::testing::TestWithParam<int> {};

TEST_P(FindsAllRelevantTest, AllScenarioIsComplete) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Random rng(seed);
  // Random data.
  std::vector<test::HomeRow> rows;
  const char* kNeighborhoods[] = {"a", "b", "c", "d", "e"};
  const char* kTypes[] = {"Single Family", "Condo", "Townhouse"};
  for (int i = 0; i < 400; ++i) {
    rows.push_back(test::HomeRow{kNeighborhoods[rng.Uniform(0, 4)],
                                 rng.Uniform(1, 9) * 1000,
                                 rng.Uniform(1, 6),
                                 kTypes[rng.Uniform(0, 2)]});
  }
  const Table table = test::HomesTable(rows);
  // Random workload to drive the tree shapes.
  std::vector<std::string> sqls;
  for (int i = 0; i < 40; ++i) {
    const int64_t lo = rng.Uniform(1, 7) * 1000;
    sqls.push_back("SELECT * FROM homes WHERE neighborhood = '" +
                   std::string(kNeighborhoods[rng.Uniform(0, 4)]) +
                   "' AND price BETWEEN " + std::to_string(lo) + " AND " +
                   std::to_string(lo + 2000));
  }
  const WorkloadStats stats = test::StatsFromSql(sqls);

  // Random user.
  SelectionProfile user;
  std::set<Value> wanted = {Value(kNeighborhoods[rng.Uniform(0, 4)]),
                            Value(kNeighborhoods[rng.Uniform(0, 4)])};
  user.Set("neighborhood", AttributeCondition::ValueSet(wanted));
  NumericRange band;
  band.lo = static_cast<double>(rng.Uniform(1, 5) * 1000);
  band.hi = band.lo + static_cast<double>(rng.Uniform(1, 4) * 1000);
  user.Set("price", AttributeCondition::Range(band));

  const size_t truly_relevant =
      table
          .FilterIndices([&](const Row& row) {
            return user.MatchesRow(row, table.schema());
          })
          .size();

  CategorizerOptions options;
  options.max_tuples_per_category = 15;
  options.attribute_usage_threshold = 0.0;
  options.candidate_attributes = {"neighborhood", "price", "bedroomcount",
                                  "propertytype"};
  options.arbitrary_seed = seed;
  SimulatedExplorer::Options explore_options;
  explore_options.scenario = Scenario::kAll;
  const SimulatedExplorer explorer(explore_options);

  const CostBasedCategorizer cost_based(&stats, options);
  const AttrCostCategorizer attr_cost(&stats, options);
  const NoCostCategorizer no_cost(&stats, options);
  const Categorizer* categorizers[] = {&cost_based, &attr_cost, &no_cost};
  for (const Categorizer* categorizer : categorizers) {
    const auto tree = categorizer->Categorize(table, nullptr);
    ASSERT_TRUE(tree.ok()) << categorizer->name();
    const ExplorationResult run = explorer.Explore(tree.value(), user);
    EXPECT_EQ(run.relevant_found, truly_relevant)
        << categorizer->name() << " seed " << seed;
    // And she never examines more items than the flat list + labels.
    EXPECT_LE(run.tuples_examined, table.num_rows());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FindsAllRelevantTest,
                         ::testing::Range(1, 11));

// ------------------------------------------------- drill-down consistency

// For trees built by all three techniques over generated data, the
// drill-down SQL of every node must select exactly tset(C).
TEST(DrillDownConsistencyTest, SqlMatchesTsetOnGeneratedTrees) {
  StudyConfig config = DefaultStudyConfig();
  config.num_homes = 8000;
  config.num_workload_queries = 1500;
  const auto env = StudyEnvironment::Create(config);
  ASSERT_TRUE(env.ok());
  const auto stats = WorkloadStats::Build(env->workload(), env->schema(),
                                          config.stats);
  ASSERT_TRUE(stats.ok());
  const auto tasks = PaperStudyTasks(env->geo());
  ASSERT_TRUE(tasks.ok());
  const StudyTask& task = tasks->at(1);
  const auto result = env->ExecuteProfile(task.query);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->num_rows(), 0u);

  Database db;
  db.PutTable("r", result.value());  // drill into the result relation

  for (Technique technique : kAllTechniques) {
    const auto categorizer =
        MakeTechnique(technique, &stats.value(), config, 5);
    const auto tree = categorizer->Categorize(result.value(), &task.query);
    ASSERT_TRUE(tree.ok());
    // Sample nodes across the tree (checking all is O(nodes * rows)).
    for (NodeId id = 0; id < static_cast<NodeId>(tree->num_nodes());
         id += 7) {
      const auto sql = DrillDownSql(tree.value(), id, "r");
      ASSERT_TRUE(sql.ok());
      const auto drilled = ExecuteSql(sql.value(), db);
      ASSERT_TRUE(drilled.ok()) << sql.value();
      EXPECT_EQ(drilled->num_rows(), tree->node(id).tset_size())
          << TechniqueToString(technique) << ": " << sql.value();
    }
  }
}

// ------------------------------------------------------ executor algebra

TEST(ExecutorAlgebraTest, FilterThenProjectEqualsProjectOfFiltered) {
  StudyConfig config = DefaultStudyConfig();
  config.num_homes = 2000;
  config.num_workload_queries = 10;
  const auto env = StudyEnvironment::Create(config);
  ASSERT_TRUE(env.ok());
  Database db;
  db.PutTable("homes", env->homes());
  const auto narrow = ExecuteSql(
      "SELECT neighborhood, price FROM homes WHERE price <= 250000", db);
  ASSERT_TRUE(narrow.ok());
  const auto wide =
      ExecuteSql("SELECT * FROM homes WHERE price <= 250000", db);
  ASSERT_TRUE(wide.ok());
  const auto projected = wide->Project({"neighborhood", "price"});
  ASSERT_TRUE(projected.ok());
  ASSERT_EQ(narrow->num_rows(), projected->num_rows());
  for (size_t r = 0; r < narrow->num_rows(); ++r) {
    EXPECT_EQ(narrow->ValueAt(r, 0), projected->ValueAt(r, 0));
    EXPECT_EQ(narrow->ValueAt(r, 1), projected->ValueAt(r, 1));
  }
}

TEST(ExecutorAlgebraTest, ConjunctionEqualsSequentialFilters) {
  StudyConfig config = DefaultStudyConfig();
  config.num_homes = 2000;
  config.num_workload_queries = 10;
  const auto env = StudyEnvironment::Create(config);
  ASSERT_TRUE(env.ok());
  Database db;
  db.PutTable("homes", env->homes());
  const auto both = ExecuteSql(
      "SELECT * FROM homes WHERE price <= 300000 AND bedroomcount >= 3",
      db);
  ASSERT_TRUE(both.ok());
  const auto first =
      ExecuteSql("SELECT * FROM homes WHERE price <= 300000", db);
  ASSERT_TRUE(first.ok());
  Database db2;
  db2.PutTable("step", first.value());
  const auto second =
      ExecuteSql("SELECT * FROM step WHERE bedroomcount >= 3", db2);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(both->num_rows(), second->num_rows());
}

}  // namespace
}  // namespace autocat
