// Legacy-vs-pipeline equivalence gate for the push-based cold pipeline
// (DESIGN.md §14).
//
// RunColdPipeline promises that its selection, materialized result, and
// byte accounting are bit-identical to the pre-pipeline chain
// (CompiledPredicate::Filter -> TableView::Create -> Materialize) at
// every thread count, and that the attribute index it accumulates as a
// by-product matches a from-scratch rescan of the result. These tests
// replay the checked-in SQL fuzz corpus and randomized queries over a
// deterministic table seeded with edge values (NaN, -0.0, 2^53+1,
// int64 extremes, NULLs) at threads {1, 2, 7, 16}, and pin both
// StatsAccumulate strategies (the dense rank-filter over the per-table
// presorted order and the sparse gather-and-sort) to the same reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "exec/executor.h"
#include "exec/kernels.h"
#include "exec/pipeline/cold_path.h"
#include "exec/pipeline/morsel.h"
#include "sql/parser.h"
#include "sql/selection.h"
#include "storage/columnar.h"
#include "storage/table.h"

#include "equivalence_fixture.h"

namespace autocat {
namespace {

using namespace equiv;  // NOLINT

const size_t kThreadCounts[] = {1, 2, 7, 16};

// The pre-pipeline cold chain the service ran before DESIGN.md §14:
// filter to a full selection, wrap it in a view, materialize.
struct LegacyCold {
  std::vector<uint32_t> selection;
  Table result;
};

Result<LegacyCold> RunLegacy(const Table& table,
                             std::shared_ptr<const ColumnarTable> shadow,
                             const CompiledPredicate& compiled,
                             const std::vector<std::string>& columns) {
  ParallelOptions sequential;
  sequential.threads = 1;
  AUTOCAT_ASSIGN_OR_RETURN(std::vector<uint32_t> selection,
                           compiled.Filter(sequential));
  LegacyCold out;
  out.selection = selection;
  AUTOCAT_ASSIGN_OR_RETURN(
      TableView view,
      TableView::Create(table, std::move(shadow), std::move(selection),
                        columns));
  out.result = view.Materialize();
  return out;
}

// Mirror of the cache's byte accounting (serve/cache.cc ApproxValueBytes)
// over the stored result rows: the pipeline's result_bytes must equal
// what a scan over the finished table would report.
size_t CacheBytes(const Table& table) {
  size_t bytes = sizeof(Table);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Row& row = table.row(r);
    bytes += sizeof(Row);
    for (const Value& v : row) {
      bytes += sizeof(Value);
      if (v.is_string()) {
        bytes += v.string_value().capacity();
      }
    }
  }
  return bytes;
}

void ExpectIndexesIdentical(const ResultAttributeIndex& a,
                            const ResultAttributeIndex& b,
                            const std::string& context) {
  ASSERT_EQ(a.num_rows, b.num_rows) << context;
  ASSERT_EQ(a.columns.size(), b.columns.size()) << context;
  for (size_t c = 0; c < a.columns.size(); ++c) {
    const AttributeIndexEntry& ea = a.columns[c];
    const AttributeIndexEntry& eb = b.columns[c];
    ASSERT_EQ(ea.has_sorted_values, eb.has_sorted_values)
        << context << " col " << c;
    ASSERT_EQ(ea.sorted_values.size(), eb.sorted_values.size())
        << context << " col " << c;
    for (size_t k = 0; k < ea.sorted_values.size(); ++k) {
      ASSERT_TRUE(BitIdentical(Value(ea.sorted_values[k].first),
                               Value(eb.sorted_values[k].first)))
          << context << " col " << c << " pair " << k;
      ASSERT_EQ(ea.sorted_values[k].second, eb.sorted_values[k].second)
          << context << " col " << c << " pair " << k;
    }
    ASSERT_EQ(ea.has_groups, eb.has_groups) << context << " col " << c;
    ASSERT_EQ(ea.groups.size(), eb.groups.size()) << context << " col "
                                                  << c;
    for (size_t g = 0; g < ea.groups.size(); ++g) {
      ASSERT_TRUE(BitIdentical(ea.groups[g].first, eb.groups[g].first))
          << context << " col " << c << " group " << g;
      ASSERT_EQ(ea.groups[g].second, eb.groups[g].second)
          << context << " col " << c << " group " << g;
    }
  }
}

// Parses and compiles `sql`; a kNotSupported refusal (the row-fallback
// contract) skips the query and leaves `*compiled_out` empty.
void CompileOrSkip(const std::string& sql, const Schema& schema,
                   const std::shared_ptr<const ColumnarTable>& shadow,
                   std::optional<CompiledPredicate>* compiled_out,
                   std::vector<std::string>* columns_out) {
  compiled_out->reset();
  auto query = ParseQuery(sql);
  if (!query.ok()) {
    return;
  }
  auto profile = SelectionProfile::FromQuery(query.value(), schema);
  if (!profile.ok()) {
    return;
  }
  auto compiled =
      CompiledPredicate::CompileProfile(profile.value(), schema, shadow);
  if (!compiled.ok()) {
    ASSERT_EQ(compiled.status().code(), StatusCode::kNotSupported) << sql;
    return;
  }
  *columns_out = query.value().columns;
  compiled_out->emplace(std::move(compiled).value());
}

// Runs the legacy chain once and the pipeline at every thread count:
// selections, result tables, and byte accounting must be bit-identical,
// and the attribute index must not depend on the thread count.
void ExpectPipelineMatchesLegacy(
    const Table& table, const std::shared_ptr<const ColumnarTable>& shadow,
    const std::string& sql, size_t* compiled_queries) {
  std::optional<CompiledPredicate> compiled;
  std::vector<std::string> columns;
  CompileOrSkip(sql, table.schema(), shadow, &compiled, &columns);
  if (!compiled.has_value()) {
    return;
  }
  ++*compiled_queries;

  AUTOCAT_ASSERT_OK_AND_MOVE(
      const LegacyCold legacy,
      RunLegacy(table, shadow, compiled.value(), columns));
  const size_t expected_bytes = CacheBytes(legacy.result);

  std::optional<ResultAttributeIndex> reference_index;
  for (const size_t threads : kThreadCounts) {
    ColdPipelineOptions options;
    options.parallel.threads = threads;
    AUTOCAT_ASSERT_OK_AND_MOVE(
        ColdPipelineResult piped,
        RunColdPipeline(compiled.value(), table, shadow.get(), columns,
                        options));
    const std::string context =
        sql + " (threads=" + std::to_string(threads) + ")";
    EXPECT_EQ(piped.selection, legacy.selection) << context;
    ExpectTablesBitIdentical(legacy.result, piped.result, context);
    EXPECT_EQ(piped.result_bytes, expected_bytes) << context;
    EXPECT_EQ(piped.timings.morsels,
              (table.num_rows() + kMorselRows - 1) / kMorselRows)
        << context;
    if (!reference_index.has_value()) {
      reference_index = std::move(piped.attr_index);
    } else {
      ExpectIndexesIdentical(reference_index.value(), piped.attr_index,
                             context);
    }
  }
}

// ----------------------------------------------------------- corpus replay

TEST(PipelineEquivalenceTest, FuzzCorpusLegacyVsPipeline) {
  const Table table = MakeHomes(5000, 101, 0.08, true);
  Database db;
  ASSERT_TRUE(db.RegisterTable("homes", Table(table)).ok());
  AUTOCAT_ASSERT_OK_AND_MOVE(std::shared_ptr<const ColumnarTable> shadow,
                             db.ColumnarFor("homes"));

  const std::filesystem::path corpus(AUTOCAT_FUZZ_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(corpus));
  size_t replayed = 0;
  size_t compiled_queries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    std::string sql((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    ExpectPipelineMatchesLegacy(table, shadow, sql, &compiled_queries);
    ++replayed;
  }
  EXPECT_GE(replayed, 10u) << "corpus directory looks truncated";
  EXPECT_GE(compiled_queries, 5u)
      << "too few corpus queries compiled to be a meaningful gate";
}

// ------------------------------------------------------ randomized queries

TEST(PipelineEquivalenceTest, RandomizedQueriesLegacyVsPipeline) {
  const Schema schema = FuzzSchema();
  // 5000 rows = 3 morsels: morsel boundaries, a partial tail morsel, and
  // enough rows for both dense and sparse selections to occur.
  const Table table = MakeHomes(5000, 202, 0.1, true);
  Database db;
  ASSERT_TRUE(db.RegisterTable("homes", Table(table)).ok());
  AUTOCAT_ASSERT_OK_AND_MOVE(std::shared_ptr<const ColumnarTable> shadow,
                             db.ColumnarFor("homes"));

  Random rng(777);
  size_t compiled_queries = 0;
  // Roughly half the generated queries use OR and refuse profile
  // compilation; 400 draws leave ~70 compiled conjunctions.
  for (int i = 0; i < 400; ++i) {
    std::string sql = RandomQuery(rng, schema);
    if (rng.Bernoulli(0.3)) {
      // Exercise the projection resolution too: prefix SELECT with an
      // explicit random column subset instead of *.
      std::string cols;
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        if (rng.Bernoulli(0.5)) {
          cols += (cols.empty() ? "" : ", ") + schema.column(c).name;
        }
      }
      if (!cols.empty()) {
        const size_t from = sql.find(" FROM ");
        sql = "SELECT " + cols + sql.substr(from);
      }
    }
    ExpectPipelineMatchesLegacy(table, shadow, sql, &compiled_queries);
  }
  EXPECT_GE(compiled_queries, 30u)
      << "profile compiler refused too often to be a meaningful gate";
}

// -------------------------------------------------- attribute-index shape

// From-scratch reference for the StatsAccumulate sink: rescan the
// materialized result exactly the way the partitioners would.
void ExpectIndexMatchesRescan(const Table& result,
                              const ResultAttributeIndex& index,
                              const std::string& context) {
  ASSERT_EQ(index.num_rows, result.num_rows()) << context;
  ASSERT_EQ(index.columns.size(), result.schema().num_columns()) << context;
  for (size_t c = 0; c < result.schema().num_columns(); ++c) {
    const AttributeIndexEntry& entry = index.columns[c];
    if (result.schema().column(c).kind == ColumnKind::kNumeric) {
      ASSERT_TRUE(entry.has_sorted_values) << context << " col " << c;
      ASSERT_FALSE(entry.has_groups) << context << " col " << c;
      std::vector<std::pair<double, size_t>> expected;
      for (size_t r = 0; r < result.num_rows(); ++r) {
        const Value v = result.ValueAt(r, c);
        if (!v.is_null()) {
          expected.emplace_back(v.AsDouble(), r);
        }
      }
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(entry.sorted_values, expected) << context << " col " << c;
    } else {
      ASSERT_TRUE(entry.has_groups) << context << " col " << c;
      ASSERT_FALSE(entry.has_sorted_values) << context << " col " << c;
      std::map<std::string, std::vector<size_t>> expected;
      for (size_t r = 0; r < result.num_rows(); ++r) {
        const Value v = result.ValueAt(r, c);
        if (!v.is_null()) {
          expected[v.string_value()].push_back(r);
        }
      }
      ASSERT_EQ(entry.groups.size(), expected.size())
          << context << " col " << c;
      size_t g = 0;
      for (const auto& [value, rows] : expected) {
        EXPECT_EQ(entry.groups[g].first.string_value(), value)
            << context << " col " << c;
        EXPECT_EQ(entry.groups[g].second, rows) << context << " col " << c;
        ++g;
      }
    }
  }
}

TEST(PipelineEquivalenceTest, AttrIndexMatchesRescanOnBothStrategies) {
  // No hostile cells: NaN has no place in a sorted numeric order on
  // either path (the partitioners never see NaN through the row path's
  // sort-based summaries either).
  const Table table = MakeHomes(6000, 303, 0.1, false);
  Database db;
  ASSERT_TRUE(db.RegisterTable("homes", Table(table)).ok());
  AUTOCAT_ASSERT_OK_AND_MOVE(std::shared_ptr<const ColumnarTable> shadow,
                             db.ColumnarFor("homes"));

  // The dense queries keep well over 1/16 of the base rows alive, forcing
  // the rank-filter walk over the per-table presorted order (for both an
  // int64 and a double column); the sparse ones select a sliver, forcing
  // the gather-and-sort path. Both must land on the identical index.
  const char* const kQueries[] = {
      "SELECT * FROM homes WHERE price >= 0",                  // dense
      "SELECT * FROM homes WHERE bedroomcount >= 0",           // dense
      "SELECT * FROM homes WHERE yearbuilt >= 1900",           // dense
      "SELECT * FROM homes WHERE price BETWEEN 50000 AND 60000",  // sparse
      "SELECT * FROM homes WHERE neighborhood = 'Ballard' AND "
      "bedroomcount = 3",                                      // sparse
      "SELECT * FROM homes WHERE price < 0",                   // empty
  };
  for (const char* sql : kQueries) {
    std::optional<CompiledPredicate> compiled;
    std::vector<std::string> columns;
    CompileOrSkip(sql, table.schema(), shadow, &compiled, &columns);
    ASSERT_TRUE(compiled.has_value()) << sql;
    for (const size_t threads : kThreadCounts) {
      ColdPipelineOptions options;
      options.parallel.threads = threads;
      AUTOCAT_ASSERT_OK_AND_MOVE(
          ColdPipelineResult piped,
          RunColdPipeline(compiled.value(), table, shadow.get(), columns,
                          options));
      ExpectIndexMatchesRescan(
          piped.result, piped.attr_index,
          std::string(sql) + " (threads=" + std::to_string(threads) + ")");
    }
  }
}

TEST(PipelineEquivalenceTest, StatsAttributesRestrictIndexEntries) {
  const Table table = MakeHomes(3000, 404, 0.05, false);
  Database db;
  ASSERT_TRUE(db.RegisterTable("homes", Table(table)).ok());
  AUTOCAT_ASSERT_OK_AND_MOVE(std::shared_ptr<const ColumnarTable> shadow,
                             db.ColumnarFor("homes"));
  std::optional<CompiledPredicate> compiled;
  std::vector<std::string> columns;
  CompileOrSkip("SELECT * FROM homes WHERE price >= 100000", table.schema(),
                shadow, &compiled, &columns);
  ASSERT_TRUE(compiled.has_value());

  const std::vector<std::string> retained = {"price", "neighborhood"};
  ColdPipelineOptions options;
  options.stats_attributes = &retained;
  AUTOCAT_ASSERT_OK_AND_MOVE(
      ColdPipelineResult piped,
      RunColdPipeline(compiled.value(), table, shadow.get(), columns,
                      options));
  ASSERT_EQ(piped.attr_index.columns.size(),
            table.schema().num_columns());
  for (size_t c = 0; c < table.schema().num_columns(); ++c) {
    const std::string& name = table.schema().column(c).name;
    const AttributeIndexEntry& entry = piped.attr_index.columns[c];
    if (name == "price") {
      EXPECT_TRUE(entry.has_sorted_values) << name;
    } else if (name == "neighborhood") {
      EXPECT_TRUE(entry.has_groups) << name;
    } else {
      EXPECT_FALSE(entry.has_sorted_values) << name;
      EXPECT_FALSE(entry.has_groups) << name;
    }
  }
  EXPECT_EQ(piped.attr_index.num_rows, piped.result.num_rows());

  // An empty retained list still reports the row count (the index's
  // num_rows doubles as the result cardinality check in Categorize) but
  // builds no entries at all.
  const std::vector<std::string> none;
  options.stats_attributes = &none;
  AUTOCAT_ASSERT_OK_AND_MOVE(
      ColdPipelineResult bare,
      RunColdPipeline(compiled.value(), table, shadow.get(), columns,
                      options));
  EXPECT_EQ(bare.attr_index.num_rows, piped.result.num_rows());
  for (const AttributeIndexEntry& entry : bare.attr_index.columns) {
    EXPECT_FALSE(entry.has_sorted_values);
    EXPECT_FALSE(entry.has_groups);
  }
}

TEST(PipelineEquivalenceTest, BuildAttrIndexOffSkipsTheStatsSink) {
  const Table table = MakeHomes(1000, 505, 0.05, false);
  Database db;
  ASSERT_TRUE(db.RegisterTable("homes", Table(table)).ok());
  AUTOCAT_ASSERT_OK_AND_MOVE(std::shared_ptr<const ColumnarTable> shadow,
                             db.ColumnarFor("homes"));
  std::optional<CompiledPredicate> compiled;
  std::vector<std::string> columns;
  CompileOrSkip("SELECT * FROM homes WHERE bedroomcount >= 2",
                table.schema(), shadow, &compiled, &columns);
  ASSERT_TRUE(compiled.has_value());

  ColdPipelineOptions options;
  options.build_attr_index = false;
  AUTOCAT_ASSERT_OK_AND_MOVE(
      ColdPipelineResult piped,
      RunColdPipeline(compiled.value(), table, shadow.get(), columns,
                      options));
  EXPECT_GT(piped.result.num_rows(), 0u);
  EXPECT_TRUE(piped.attr_index.columns.empty());
  EXPECT_EQ(piped.attr_index.num_rows, 0u);
}

TEST(PipelineEquivalenceTest, EmptyTableAndUnknownProjectionColumn) {
  const Table table = MakeHomes(0, 606, 0.0, false);
  Database db;
  ASSERT_TRUE(db.RegisterTable("homes", Table(table)).ok());
  AUTOCAT_ASSERT_OK_AND_MOVE(std::shared_ptr<const ColumnarTable> shadow,
                             db.ColumnarFor("homes"));
  std::optional<CompiledPredicate> compiled;
  std::vector<std::string> columns;
  CompileOrSkip("SELECT * FROM homes WHERE price >= 0", table.schema(),
                shadow, &compiled, &columns);
  ASSERT_TRUE(compiled.has_value());

  ColdPipelineOptions options;
  AUTOCAT_ASSERT_OK_AND_MOVE(
      ColdPipelineResult piped,
      RunColdPipeline(compiled.value(), table, shadow.get(), columns,
                      options));
  EXPECT_TRUE(piped.selection.empty());
  EXPECT_EQ(piped.result.num_rows(), 0u);
  EXPECT_EQ(piped.attr_index.num_rows, 0u);

  // Unknown projection columns error exactly as TableView::Create does.
  const auto bad = RunColdPipeline(compiled.value(), table, shadow.get(),
                                   {"bogus"}, options);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound)
      << bad.status().ToString();
}

}  // namespace
}  // namespace autocat
