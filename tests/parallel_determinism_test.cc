// Proves the tentpole determinism guarantee end to end: every parallel hot
// path — simgen row/query generation, workload parsing, count-table
// construction, cost-based tree building, and exhaustive enumeration —
// produces bit-identical output for threads in {1, 2, 7, 16}. threads=1 is
// the strictly sequential reference; 7 and 16 deliberately exceed typical
// chunk counts and core counts to force uneven work stealing.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/categorizer.h"
#include "core/enumerate.h"
#include "simgen/geo.h"
#include "simgen/homes_generator.h"
#include "simgen/workload_generator.h"
#include "storage/table.h"
#include "test_util.h"
#include "workload/counts.h"
#include "workload/workload.h"
#include "workloadgen/session.h"
#include "workloadgen/traffic.h"

namespace autocat {
namespace {

const size_t kThreadCounts[] = {1, 2, 7, 16};

ParallelOptions Par(size_t threads) {
  ParallelOptions options;
  options.threads = threads;
  return options;
}

// Cell-by-cell fingerprint of a table; equal fingerprints mean equal
// rendered content in equal row order.
std::string TableFingerprint(const Table& table) {
  std::string out;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.schema().num_columns(); ++c) {
      out += table.ValueAt(r, c).ToString();
      out += '|';
    }
    out += '\n';
  }
  return out;
}

TEST(ParallelDeterminismTest, HomesTableIdenticalAtAnyThreadCount) {
  const Geography geo = Geography::UnitedStates();
  std::vector<std::string> fingerprints;
  for (const size_t threads : kThreadCounts) {
    HomesGeneratorConfig config;
    config.num_rows = 2500;  // spans multiple 1024-row chunks
    config.parallel = Par(threads);
    const HomesGenerator generator(&geo, config);
    auto table = generator.Generate();
    ASSERT_TRUE(table.ok());
    ASSERT_EQ(table.value().num_rows(), 2500u);
    fingerprints.push_back(TableFingerprint(table.value()));
  }
  ASSERT_FALSE(fingerprints[0].empty());
  for (size_t i = 1; i < fingerprints.size(); ++i) {
    EXPECT_EQ(fingerprints[i], fingerprints[0])
        << "threads=" << kThreadCounts[i] << " diverged from threads=1";
  }
}

TEST(ParallelDeterminismTest, WorkloadSqlIdenticalAtAnyThreadCount) {
  const Geography geo = Geography::UnitedStates();
  std::vector<std::vector<std::string>> logs;
  for (const size_t threads : kThreadCounts) {
    WorkloadGeneratorConfig config;
    config.num_queries = 1000;  // spans multiple 256-query chunks
    config.parallel = Par(threads);
    const WorkloadGenerator generator(&geo, config);
    logs.push_back(generator.GenerateSql());
    ASSERT_EQ(logs.back().size(), 1000u);
  }
  for (size_t i = 1; i < logs.size(); ++i) {
    EXPECT_EQ(logs[i], logs[0])
        << "threads=" << kThreadCounts[i] << " diverged from threads=1";
  }
}

TEST(ParallelDeterminismTest, ParseReportIdenticalAtAnyThreadCount) {
  const Geography geo = Geography::UnitedStates();
  WorkloadGeneratorConfig config;
  config.num_queries = 600;
  const WorkloadGenerator generator(&geo, config);
  std::vector<std::string> sqls = generator.GenerateSql();
  // Inject malformed and unsupported queries at positions spanning several
  // parse chunks, so error counters and sample diagnostics must merge
  // across shard boundaries.
  for (const size_t pos : {3u, 250u, 257u, 512u, 599u}) {
    sqls.insert(sqls.begin() + pos, "SELECT FROM WHERE nonsense ((");
  }
  auto schema = HomesGenerator::ListPropertySchema();
  ASSERT_TRUE(schema.ok());

  std::vector<WorkloadParseReport> reports;
  std::vector<std::vector<std::string>> kept;
  for (const size_t threads : kThreadCounts) {
    WorkloadParseReport report;
    const Workload workload =
        Workload::Parse(sqls, schema.value(), &report, Par(threads));
    reports.push_back(report);
    std::vector<std::string> entry_sqls;
    for (const WorkloadEntry& entry : workload.entries()) {
      entry_sqls.push_back(entry.sql);
    }
    kept.push_back(std::move(entry_sqls));
  }
  ASSERT_EQ(reports[0].parse_errors, 5u);
  ASSERT_EQ(reports[0].parsed, 600u);
  for (size_t i = 1; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].total, reports[0].total);
    EXPECT_EQ(reports[i].parsed, reports[0].parsed);
    EXPECT_EQ(reports[i].parse_errors, reports[0].parse_errors);
    EXPECT_EQ(reports[i].unsupported, reports[0].unsupported);
    EXPECT_EQ(reports[i].sample_errors, reports[0].sample_errors);
    EXPECT_EQ(kept[i], kept[0]);
  }
}

TEST(ParallelDeterminismTest, WorkloadStatsIdenticalAtAnyThreadCount) {
  const Geography geo = Geography::UnitedStates();
  WorkloadGeneratorConfig config;
  config.num_queries = 1500;  // spans multiple 512-entry count chunks
  const WorkloadGenerator generator(&geo, config);
  auto schema = HomesGenerator::ListPropertySchema();
  ASSERT_TRUE(schema.ok());
  auto workload = generator.Generate(schema.value(), nullptr);
  ASSERT_TRUE(workload.ok());

  WorkloadStatsOptions stats_options;
  stats_options.split_intervals = {
      {"price", 5000}, {"squarefootage", 100}, {"yearbuilt", 5},
      {"bedroomcount", 1}, {"bathcount", 1}};

  std::vector<std::string> fingerprints;
  for (const size_t threads : kThreadCounts) {
    auto stats = WorkloadStats::Build(workload.value(), schema.value(),
                                      stats_options, Par(threads));
    ASSERT_TRUE(stats.ok());
    std::string fp =
        TableFingerprint(stats.value().AttributeUsageCountsTable(
            schema.value()));
    auto occ = stats.value().OccurrenceCountsTable("neighborhood");
    ASSERT_TRUE(occ.ok());
    fp += TableFingerprint(occ.value());
    for (const char* attr : {"price", "squarefootage", "yearbuilt"}) {
      auto split = stats.value().SplitPointsTable(attr);
      ASSERT_TRUE(split.ok());
      fp += TableFingerprint(split.value());
    }
    fingerprints.push_back(std::move(fp));
  }
  ASSERT_FALSE(fingerprints[0].empty());
  for (size_t i = 1; i < fingerprints.size(); ++i) {
    EXPECT_EQ(fingerprints[i], fingerprints[0])
        << "threads=" << kThreadCounts[i] << " diverged from threads=1";
  }
}

TEST(ParallelDeterminismTest, CostBasedTreeIdenticalAtAnyThreadCount) {
  // Full pipeline on a small instance: generated homes + workload, stats,
  // then a cost-based tree whose per-level candidate scoring runs at the
  // given thread count. The rendered trees must match byte for byte.
  const Geography geo = Geography::UnitedStates();
  HomesGeneratorConfig homes_config;
  homes_config.num_rows = 1500;
  const HomesGenerator homes_generator(&geo, homes_config);
  auto homes = homes_generator.Generate();
  ASSERT_TRUE(homes.ok());

  WorkloadGeneratorConfig workload_config;
  workload_config.num_queries = 1200;
  const WorkloadGenerator workload_generator(&geo, workload_config);
  auto workload =
      workload_generator.Generate(homes.value().schema(), nullptr);
  ASSERT_TRUE(workload.ok());

  WorkloadStatsOptions stats_options;
  stats_options.split_intervals = {
      {"price", 5000}, {"squarefootage", 100}, {"yearbuilt", 5},
      {"bedroomcount", 1}, {"bathcount", 1}};
  auto stats = WorkloadStats::Build(workload.value(),
                                    homes.value().schema(), stats_options);
  ASSERT_TRUE(stats.ok());

  std::vector<std::string> rendered;
  for (const size_t threads : kThreadCounts) {
    CategorizerOptions options;
    options.parallel = Par(threads);
    const CostBasedCategorizer categorizer(&stats.value(), options);
    auto tree = categorizer.Categorize(homes.value(), nullptr);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    ASSERT_GT(tree.value().num_nodes(), 1u);
    rendered.push_back(tree.value().Render(/*max_children=*/1000000,
                                           /*max_depth=*/0));
  }
  for (size_t i = 1; i < rendered.size(); ++i) {
    EXPECT_EQ(rendered[i], rendered[0])
        << "threads=" << kThreadCounts[i] << " diverged from threads=1";
  }
}

TEST(ParallelDeterminismTest, EnumerationIdenticalAtAnyThreadCount) {
  const Table homes = test::HomesTable({
      {"Ballard", 350000, 2},     {"Ballard", 420000, 3},
      {"Ballard", 510000, 3},     {"Fremont", 280000, 2, "Condo"},
      {"Fremont", 300000, 2},     {"Fremont", 460000, 4},
      {"Queen Anne", 700000, 4},  {"Queen Anne", 820000, 5},
      {"Queen Anne", 650000, 3},  {"Capitol Hill", 390000, 2, "Condo"},
      {"Capitol Hill", 450000, 3}, {"Capitol Hill", 520000, 3},
      {"Greenwood", 310000, 2},   {"Greenwood", 340000, 3},
      {"Greenwood", 370000, 3},   {"Ravenna", 480000, 3},
      {"Ravenna", 530000, 4},     {"Ravenna", 560000, 4},
      {"Laurelhurst", 900000, 5}, {"Laurelhurst", 980000, 5},
      {"Ballard", 400000, 2},     {"Fremont", 330000, 2},
      {"Queen Anne", 760000, 4},  {"Capitol Hill", 410000, 2},
      {"Greenwood", 355000, 3},   {"Ravenna", 505000, 3},
  });
  const WorkloadStats stats = test::StatsFromSql(
      {
          "SELECT * FROM homes WHERE price BETWEEN 300000 AND 400000",
          "SELECT * FROM homes WHERE price BETWEEN 400000 AND 500000",
          "SELECT * FROM homes WHERE price BETWEEN 500000 AND 600000",
          "SELECT * FROM homes WHERE neighborhood IN ('Ballard', 'Fremont')",
          "SELECT * FROM homes WHERE neighborhood = 'Queen Anne'",
          "SELECT * FROM homes WHERE bedroomcount BETWEEN 2 AND 3",
          "SELECT * FROM homes WHERE bedroomcount BETWEEN 3 AND 4",
          "SELECT * FROM homes WHERE price <= 450000",
      },
      /*price_interval=*/50000);

  struct Snapshot {
    double cost;
    std::vector<std::string> order;
    std::string tree;
  };
  std::vector<Snapshot> one_level;
  std::vector<Snapshot> orders;
  for (const size_t threads : kThreadCounts) {
    CategorizerOptions options;
    options.max_tuples_per_category = 4;
    options.parallel = Par(threads);
    auto best_one = EnumerateBestOneLevel(
        homes, {"neighborhood", "price", "bedroomcount"}, &stats, options,
        nullptr);
    ASSERT_TRUE(best_one.ok()) << best_one.status().ToString();
    one_level.push_back(Snapshot{best_one.value().cost,
                                 best_one.value().attribute_order,
                                 best_one.value().tree.Render(1000000, 0)});
    // Four candidates -> 64 orders, spanning several 16-order chunks.
    auto best_order = EnumerateBestAttributeOrder(
        homes, {"neighborhood", "price", "bedroomcount", "propertytype"},
        &stats, options, nullptr);
    ASSERT_TRUE(best_order.ok()) << best_order.status().ToString();
    orders.push_back(Snapshot{best_order.value().cost,
                              best_order.value().attribute_order,
                              best_order.value().tree.Render(1000000, 0)});
  }
  for (size_t i = 1; i < one_level.size(); ++i) {
    EXPECT_EQ(one_level[i].cost, one_level[0].cost);
    EXPECT_EQ(one_level[i].order, one_level[0].order);
    EXPECT_EQ(one_level[i].tree, one_level[0].tree);
    EXPECT_EQ(orders[i].cost, orders[0].cost);
    EXPECT_EQ(orders[i].order, orders[0].order);
    EXPECT_EQ(orders[i].tree, orders[0].tree);
  }
}

// Golden determinism for the session workload generator (src/workloadgen):
// the full session pool — ids, regions, mutation kinds, mutated
// attributes, and rendered SQL — is bit-identical for a fixed seed at
// every thread count, and across two independently constructed
// generators (no hidden state).
TEST(ParallelDeterminismTest, SessionPoolIdenticalAtAnyThreadCount) {
  const Geography geo = Geography::UnitedStates();
  DriftSpec drift;
  drift.position = 0.6;
  std::vector<std::string> fingerprints;
  for (const size_t threads : kThreadCounts) {
    SessionConfig config;
    config.num_sessions = 100;  // spans several 16-session chunks
    config.seed = 424207;
    config.parallel = Par(threads);
    const SessionGenerator generator(&geo, config);
    for (int run = 0; run < 2; ++run) {
      std::string fingerprint;
      for (const UserSession& session : generator.Generate(drift)) {
        fingerprint += std::to_string(session.id);
        fingerprint += '|';
        fingerprint += session.region;
        for (const SessionQuery& query : session.queries) {
          fingerprint += '|';
          fingerprint += std::to_string(query.step);
          fingerprint += ',';
          fingerprint += SessionMutationToString(query.mutation);
          fingerprint += ',';
          fingerprint += query.mutated_attribute;
          fingerprint += ',';
          fingerprint += query.sql;
        }
        fingerprint += '\n';
      }
      fingerprints.push_back(std::move(fingerprint));
    }
  }
  ASSERT_FALSE(fingerprints[0].empty());
  for (size_t i = 1; i < fingerprints.size(); ++i) {
    EXPECT_EQ(fingerprints[i], fingerprints[0])
        << "threads=" << kThreadCounts[i / 2] << " run=" << i % 2
        << " diverged from threads=1 run=0";
  }
}

// The composed traffic stream (pools + Zipf picks + burst arrivals) is
// likewise bit-identical: phase composition is sequential by design, and
// the chunk-parallel pool generation underneath may not leak through.
TEST(ParallelDeterminismTest, TrafficStreamIdenticalAtAnyThreadCount) {
  const Geography geo = Geography::UnitedStates();
  std::vector<std::string> fingerprints;
  for (const size_t threads : kThreadCounts) {
    SessionConfig config;
    config.num_sessions = 64;
    config.seed = 77001;
    config.parallel = Par(threads);
    for (int run = 0; run < 2; ++run) {
      TrafficStream stream(&geo, config, 9090);
      PhaseSpec steady;
      steady.name = "steady";
      steady.requests = 300;
      steady.zipf_s = 1.0;
      PhaseSpec drifted;
      drifted.name = "drifted";
      drifted.requests = 300;
      drifted.zipf_s = 1.0;
      drifted.drift.position = 0.7;
      drifted.burst_size = 16;
      drifted.burst_pause_ms = 25;
      ASSERT_TRUE(stream.AddPhase(steady).ok());
      ASSERT_TRUE(stream.AddPhase(drifted).ok());
      std::string fingerprint;
      for (const TrafficEvent& event : stream.events()) {
        fingerprint += std::to_string(event.phase) + "," +
                       std::to_string(event.pool_key) + "," +
                       std::to_string(event.session) + "," +
                       std::to_string(event.step) + "," +
                       std::to_string(event.arrival_ms) + "|" +
                       stream.Sql(event) + "\n";
      }
      fingerprints.push_back(std::move(fingerprint));
    }
  }
  ASSERT_FALSE(fingerprints[0].empty());
  for (size_t i = 1; i < fingerprints.size(); ++i) {
    EXPECT_EQ(fingerprints[i], fingerprints[0])
        << "threads=" << kThreadCounts[i / 2] << " run=" << i % 2
        << " diverged from threads=1 run=0";
  }
}

}  // namespace
}  // namespace autocat
