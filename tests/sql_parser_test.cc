// Tests for the SQL lexer and parser.

#include "sql/parser.h"

#include <gtest/gtest.h>

#include "sql/lexer.h"

namespace autocat {
namespace {

// ------------------------------------------------------------------- lexer

TEST(LexerTest, BasicTokens) {
  const auto tokens = Tokenize("SELECT * FROM t WHERE a >= 10");
  ASSERT_TRUE(tokens.ok());
  // SELECT, *, FROM, t, WHERE, a, >=, 10, <end> = 9 tokens.
  ASSERT_EQ(tokens->size(), 9u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kStar);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kGreaterEq);
  EXPECT_EQ((*tokens)[7].kind, TokenKind::kNumberLiteral);
  EXPECT_EQ((*tokens)[8].kind, TokenKind::kEnd);
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  const auto tokens = Tokenize("'O''Hare'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ((*tokens)[0].text, "O'Hare");
}

TEST(LexerTest, NumberForms) {
  for (const char* text : {"123", "1.5", ".5", "1e6", "2.5E-3"}) {
    const auto tokens = Tokenize(text);
    ASSERT_TRUE(tokens.ok()) << text;
    EXPECT_EQ((*tokens)[0].kind, TokenKind::kNumberLiteral) << text;
    EXPECT_EQ((*tokens)[0].text, text);
  }
}

TEST(LexerTest, ComparisonOperators) {
  const auto tokens = Tokenize("< <= > >= = <> !=");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kLess);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kLessEq);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kGreater);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kGreaterEq);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kEq);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kNotEq);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kNotEq);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ~ b").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

TEST(LexerTest, KeywordDetectionIsCaseInsensitive) {
  const auto tokens = Tokenize("SeLeCt");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("select"));
  EXPECT_FALSE((*tokens)[0].IsKeyword("from"));
}

// ------------------------------------------------------------------ parser

TEST(ParserTest, SelectStar) {
  const auto query = ParseQuery("SELECT * FROM homes");
  ASSERT_TRUE(query.ok());
  EXPECT_TRUE(query->select_all());
  EXPECT_EQ(query->table_name, "homes");
  EXPECT_EQ(query->where, nullptr);
}

TEST(ParserTest, SelectColumns) {
  const auto query = ParseQuery("SELECT price, neighborhood FROM homes;");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->columns,
            (std::vector<std::string>{"price", "neighborhood"}));
}

TEST(ParserTest, ComparisonPredicate) {
  const auto query =
      ParseQuery("SELECT * FROM homes WHERE price <= 300000");
  ASSERT_TRUE(query.ok());
  ASSERT_NE(query->where, nullptr);
  ASSERT_EQ(query->where->kind(), ExprKind::kComparison);
  const auto& cmp = static_cast<const ComparisonExpr&>(*query->where);
  EXPECT_EQ(cmp.column(), "price");
  EXPECT_EQ(cmp.op(), ComparisonOp::kLessEq);
  EXPECT_EQ(cmp.literal(), Value(300000));
}

TEST(ParserTest, ReversedComparisonIsNormalized) {
  const auto query =
      ParseQuery("SELECT * FROM homes WHERE 300000 >= price");
  ASSERT_TRUE(query.ok());
  const auto& cmp = static_cast<const ComparisonExpr&>(*query->where);
  EXPECT_EQ(cmp.column(), "price");
  EXPECT_EQ(cmp.op(), ComparisonOp::kLessEq);
}

TEST(ParserTest, InList) {
  const auto query = ParseQuery(
      "SELECT * FROM homes WHERE neighborhood IN ('Redmond', 'Bellevue')");
  ASSERT_TRUE(query.ok());
  ASSERT_EQ(query->where->kind(), ExprKind::kInList);
  const auto& in = static_cast<const InListExpr&>(*query->where);
  EXPECT_EQ(in.column(), "neighborhood");
  EXPECT_FALSE(in.negated());
  ASSERT_EQ(in.values().size(), 2u);
  EXPECT_EQ(in.values()[0], Value("Redmond"));
}

TEST(ParserTest, NotIn) {
  const auto query =
      ParseQuery("SELECT * FROM t WHERE a NOT IN (1, 2)");
  ASSERT_TRUE(query.ok());
  const auto& in = static_cast<const InListExpr&>(*query->where);
  EXPECT_TRUE(in.negated());
}

TEST(ParserTest, Between) {
  const auto query = ParseQuery(
      "SELECT * FROM homes WHERE price BETWEEN 200000 AND 300000");
  ASSERT_TRUE(query.ok());
  ASSERT_EQ(query->where->kind(), ExprKind::kBetween);
  const auto& bt = static_cast<const BetweenExpr&>(*query->where);
  EXPECT_EQ(bt.lo(), Value(200000));
  EXPECT_EQ(bt.hi(), Value(300000));
  EXPECT_FALSE(bt.negated());
}

TEST(ParserTest, IsNullAndIsNotNull) {
  auto query = ParseQuery("SELECT * FROM t WHERE a IS NULL");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->where->kind(), ExprKind::kIsNull);
  EXPECT_FALSE(static_cast<const IsNullExpr&>(*query->where).negated());

  query = ParseQuery("SELECT * FROM t WHERE a IS NOT NULL");
  ASSERT_TRUE(query.ok());
  EXPECT_TRUE(static_cast<const IsNullExpr&>(*query->where).negated());
}

TEST(ParserTest, AndOrPrecedence) {
  // a = 1 OR b = 2 AND c = 3  parses as  a = 1 OR (b = 2 AND c = 3).
  const auto query =
      ParseQuery("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(query.ok());
  ASSERT_EQ(query->where->kind(), ExprKind::kLogical);
  const auto& outer = static_cast<const LogicalExpr&>(*query->where);
  EXPECT_EQ(outer.op(), LogicalExpr::Op::kOr);
  ASSERT_EQ(outer.children().size(), 2u);
  EXPECT_EQ(outer.children()[1]->kind(), ExprKind::kLogical);
  const auto& inner =
      static_cast<const LogicalExpr&>(*outer.children()[1]);
  EXPECT_EQ(inner.op(), LogicalExpr::Op::kAnd);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  const auto query =
      ParseQuery("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3");
  ASSERT_TRUE(query.ok());
  const auto& outer = static_cast<const LogicalExpr&>(*query->where);
  EXPECT_EQ(outer.op(), LogicalExpr::Op::kAnd);
  EXPECT_EQ(outer.children()[0]->kind(), ExprKind::kLogical);
}

TEST(ParserTest, OrderByIsToleratedAndIgnored) {
  const auto query = ParseQuery(
      "SELECT * FROM t WHERE a = 1 ORDER BY a DESC, b ASC;");
  ASSERT_TRUE(query.ok());
  EXPECT_NE(query->where, nullptr);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("SELECT").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t WHERE a").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t WHERE a = ").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t WHERE a IN ()").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t WHERE a BETWEEN 1").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t WHERE a NOT = 1").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t extra garbage").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t WHERE select = 1").ok());
}

TEST(ParserTest, DeepNestingIsRejectedNotStackOverflow) {
  // Regression: adversarial "(((((..." input used to recurse once per
  // paren with no bound; the parser now rejects past a fixed depth.
  const std::string open(5000, '(');
  const std::string close(5000, ')');
  const auto deep =
      ParseQuery("SELECT * FROM t WHERE " + open + "a = 1" + close);
  ASSERT_FALSE(deep.ok());
  EXPECT_NE(deep.status().ToString().find("nesting"), std::string::npos);
  // Nesting at or under the limit still parses.
  const std::string ok_open(64, '(');
  const std::string ok_close(64, ')');
  EXPECT_TRUE(
      ParseQuery("SELECT * FROM t WHERE " + ok_open + "a = 1" + ok_close)
          .ok());
}

TEST(ParserTest, ToSqlRoundTrip) {
  const char* kQueries[] = {
      "SELECT * FROM homes WHERE price BETWEEN 200000 AND 300000",
      "SELECT * FROM homes WHERE neighborhood IN ('Redmond', 'Bellevue') "
      "AND price <= 500000",
      "SELECT price FROM homes WHERE a = 1 OR b = 2",
      "SELECT * FROM t WHERE x IS NOT NULL",
  };
  for (const char* sql : kQueries) {
    const auto first = ParseQuery(sql);
    ASSERT_TRUE(first.ok()) << sql;
    const std::string regenerated = first->ToSql();
    const auto second = ParseQuery(regenerated);
    ASSERT_TRUE(second.ok()) << regenerated;
    EXPECT_EQ(second->ToSql(), regenerated) << sql;
  }
}

TEST(ParserTest, CloneProducesIndependentCopy) {
  const auto query = ParseQuery(
      "SELECT * FROM t WHERE a = 1 AND b IN (2, 3) OR c BETWEEN 4 AND 5");
  ASSERT_TRUE(query.ok());
  const SelectQuery copy = query.value();  // deep copy via Clone
  EXPECT_EQ(copy.ToSql(), query->ToSql());
  EXPECT_NE(copy.where.get(), query->where.get());
}

TEST(ParserTest, BareExpression) {
  const auto expr = ParseExpression("price >= 100 AND price < 200");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->kind(), ExprKind::kLogical);
  EXPECT_FALSE(ParseExpression("price >= 100 extra").ok());
}

TEST(ParserTest, ComparisonOpNames) {
  EXPECT_EQ(ComparisonOpToString(ComparisonOp::kEq), "=");
  EXPECT_EQ(ComparisonOpToString(ComparisonOp::kNotEq), "<>");
  EXPECT_EQ(ComparisonOpToString(ComparisonOp::kLessEq), "<=");
}

}  // namespace
}  // namespace autocat
