// Integration tests: the full Section 6 study pipeline at reduced scale.
// These assert the *shape* of the paper's findings, not absolute numbers.

#include "simgen/study.h"

#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/probability.h"

namespace autocat {
namespace {

StudyConfig SmallConfig() {
  StudyConfig config = DefaultStudyConfig();
  // Half the default data scale: large enough for the Section 6 shapes to
  // be stable, small enough for a quick ctest run.
  config.num_homes = 60000;
  config.num_workload_queries = 8000;
  config.num_subsets = 2;
  config.subset_size = 25;
  return config;
}

const StudyEnvironment& SharedEnv() {
  static const StudyEnvironment* env = [] {
    auto created = StudyEnvironment::Create(SmallConfig());
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    return new StudyEnvironment(std::move(created).value());
  }();
  return *env;
}

TEST(StudyEnvironmentTest, BuildsDataAndWorkload) {
  const StudyEnvironment& env = SharedEnv();
  EXPECT_EQ(env.homes().num_rows(), 60000u);
  EXPECT_EQ(env.workload().size(), 8000u);
  EXPECT_TRUE(env.schema().HasColumn("neighborhood"));
}

TEST(StudyEnvironmentTest, ExecuteProfileFiltersRows) {
  const StudyEnvironment& env = SharedEnv();
  SelectionProfile profile;
  NumericRange beds;
  beds.lo = 3;
  beds.hi = 4;
  profile.Set("bedroomcount", AttributeCondition::Range(beds));
  const auto result = env.ExecuteProfile(profile);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->num_rows(), 0u);
  EXPECT_LT(result->num_rows(), env.homes().num_rows());
  const size_t beds_col = env.schema().ColumnIndex("bedroomcount").value();
  for (size_t r = 0; r < result->num_rows(); ++r) {
    const int64_t b = result->ValueAt(r, beds_col).int64_value();
    EXPECT_GE(b, 3);
    EXPECT_LE(b, 4);
  }
}

TEST(BroadenTest, ExpandsToWholeRegionAndDropsOtherConditions) {
  const StudyEnvironment& env = SharedEnv();
  SelectionProfile w;
  w.Set("neighborhood",
        AttributeCondition::ValueSet({Value("Redmond"), Value("Bellevue")}));
  NumericRange price;
  price.lo = 200000;
  price.hi = 300000;
  w.Set("price", AttributeCondition::Range(price));
  const auto broadened = BroadenToRegion(w, env.geo());
  ASSERT_TRUE(broadened.ok());
  EXPECT_EQ(broadened->num_conditions(), 1u);
  const auto* nb = broadened->Find("neighborhood");
  ASSERT_NE(nb, nullptr);
  EXPECT_EQ(nb->values.size(), env.geo()
                                   .FindRegion("Seattle/Bellevue")
                                   .value()
                                   ->neighborhoods.size());
  // Broadening subsumes the original neighborhoods.
  EXPECT_TRUE(nb->values.count(Value("Redmond")) > 0);

  SelectionProfile no_neighborhood;
  no_neighborhood.Set("price", AttributeCondition::Range(price));
  EXPECT_FALSE(BroadenToRegion(no_neighborhood, env.geo()).ok());
}

TEST(TechniqueTest, FactoryAndNames) {
  const StudyEnvironment& env = SharedEnv();
  const auto stats = WorkloadStats::Build(env.workload(), env.schema(),
                                          env.config().stats);
  ASSERT_TRUE(stats.ok());
  for (Technique technique : kAllTechniques) {
    const auto categorizer =
        MakeTechnique(technique, &stats.value(), env.config(), 1);
    ASSERT_NE(categorizer, nullptr);
    EXPECT_EQ(categorizer->name(), TechniqueToString(technique));
  }
}

// The headline claims of Section 6.2, at small scale.
TEST(SimulatedStudyTest, ReproducesTheSectionSixShapes) {
  const StudyEnvironment& env = SharedEnv();
  const auto study = RunSimulatedStudy(env);
  ASSERT_TRUE(study.ok()) << study.status().ToString();

  const size_t per_technique =
      study->Select(Technique::kCostBased, SIZE_MAX).size();
  EXPECT_GT(per_technique, 20u);
  EXPECT_EQ(study->Select(Technique::kNoCost, SIZE_MAX).size(),
            per_technique);

  // (1) Estimated and actual cost positively correlated across the pooled
  // explorations (Figure 7's plot; individual-technique correlations are
  // noisier at this reduced scale — the full-scale reproduction lives in
  // bench/).
  const auto pooled = study->PooledPearson(SIZE_MAX);
  ASSERT_TRUE(pooled.ok()) << pooled.status().ToString();
  EXPECT_GT(pooled.value(), 0.5);
  const auto cost_based_pearson =
      study->Pearson(Technique::kCostBased, SIZE_MAX);
  ASSERT_TRUE(cost_based_pearson.ok());
  EXPECT_GT(cost_based_pearson.value(), 0.0);

  // (2) The best-fit slope of actual-vs-estimated is within a small
  // factor of 1 (the paper found 1.1).
  const auto slope = study->PooledFitSlope();
  ASSERT_TRUE(slope.ok());
  EXPECT_GT(slope.value(), 0.3);
  EXPECT_LT(slope.value(), 3.0);

  // (3) Cost-based categorization examines a small fraction of the result
  // set and beats No-cost on fractional cost.
  const double cost_based_frac =
      study->MeanFractionalCost(Technique::kCostBased, SIZE_MAX);
  const double no_cost_frac =
      study->MeanFractionalCost(Technique::kNoCost, SIZE_MAX);
  EXPECT_LT(cost_based_frac, 0.35);
  EXPECT_LT(cost_based_frac, no_cost_frac);
}

TEST(UserStudyTest, ReproducesTheSectionSixPointThreeShapes) {
  const StudyEnvironment& env = SharedEnv();
  const auto study = RunUserStudy(env);
  ASSERT_TRUE(study.ok()) << study.status().ToString();
  // Full factorial: 11 personas x 4 tasks x 3 techniques.
  EXPECT_EQ(study->records.size(), 11u * 4u * 3u);
  EXPECT_EQ(study->task_result_sizes.size(), 4u);

  // The paper's rotation design is embedded: each subject has exactly one
  // rotation run per task, and every task-technique rotation cell has at
  // least 2 subjects.
  for (const char* task : {"Task 1", "Task 2", "Task 3", "Task 4"}) {
    for (Technique technique : kAllTechniques) {
      const auto cell = study->Select(task, technique);
      EXPECT_EQ(cell.size(), 11u);
      size_t rotation = 0;
      for (const UserRunRecord* run : cell) {
        if (run->paper_assignment) {
          ++rotation;
        }
      }
      EXPECT_GE(rotation, 2u)
          << task << " / " << TechniqueToString(technique);
    }
  }

  // Per-user correlations mostly positive (Table 2's shape).
  size_t positive = 0;
  size_t computed = 0;
  for (int u = 1; u <= 11; ++u) {
    const auto r = study->UserPearson("U" + std::to_string(u));
    if (r.ok()) {
      ++computed;
      if (r.value() > 0) {
        ++positive;
      }
    }
  }
  EXPECT_GE(computed, 9u);
  EXPECT_GE(positive * 3, computed * 2);  // at least two thirds positive

  // Cost-based normalized cost is far below the result-set size
  // (Table 3's shape) on every task.
  for (const char* task : {"Task 1", "Task 2", "Task 3", "Task 4"}) {
    const auto runs = study->Select(task, Technique::kCostBased);
    ASSERT_FALSE(runs.empty());
    double normalized = 0;
    for (const UserRunRecord* run : runs) {
      normalized += run->actual_cost_all /
                    std::max<double>(1.0, run->relevant_found);
    }
    normalized /= runs.size();
    const double result_size = study->task_result_sizes.at(task);
    EXPECT_LT(normalized, result_size / 5.0) << task;
  }

  // The survey (Table 4): cost-based is the top vote-getter.
  const auto votes = study->SurveyVotes();
  size_t total_votes = 0;
  for (const auto& [technique, count] : votes) {
    (void)technique;
    total_votes += count;
  }
  EXPECT_EQ(total_votes, 11u);
  const auto it = votes.find(Technique::kCostBased);
  ASSERT_NE(it, votes.end());
  for (const auto& [technique, count] : votes) {
    if (technique != Technique::kCostBased) {
      EXPECT_GE(it->second, count)
          << TechniqueToString(technique) << " outpolled cost-based";
    }
  }
}

TEST(UserStudyTest, OneScenarioCostsAreBelowAllScenarioCosts) {
  const StudyEnvironment& env = SharedEnv();
  const auto study = RunUserStudy(env);
  ASSERT_TRUE(study.ok());
  size_t below = 0;
  for (const UserRunRecord& record : study->records) {
    if (record.actual_cost_one <= record.actual_cost_all) {
      ++below;
    }
  }
  // ONE stops at the first relevant tuple; allowing noise, nearly all runs
  // should cost no more than their ALL counterpart.
  EXPECT_GE(below * 10, study->records.size() * 9);
}

}  // namespace
}  // namespace autocat
