// Unit suite for the segment store (src/store/): byte-level codecs, the
// mapped file and buffer manager, the external-sort bulk loader, and
// full writer -> file -> SegmentStore round trips including corrupt-file
// rejection. The cross-engine equivalence gate lives in
// store_equivalence_test.cc.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "exec/executor.h"
#include "exec/kernels.h"
#include "sql/parser.h"
#include "sql/selection.h"
#include "storage/columnar.h"
#include "storage/table.h"
#include "store/buffer_manager.h"
#include "store/coding.h"
#include "store/format.h"
#include "store/mapped_file.h"
#include "store/segment.h"
#include "store/sorter.h"
#include "store/store.h"
#include "store/writer.h"

namespace autocat {
namespace {

namespace fs = std::filesystem;

// A per-test scratch directory under the system temp dir, removed on
// destruction so failed runs don't accumulate store files.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    dir_ = fs::temp_directory_path() /
           ("autocat_store_test_" + tag + "_" +
            std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~ScratchDir() { fs::remove_all(dir_); }
  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  fs::path dir_;
};

// ------------------------------------------------------------------ coding

TEST(StoreCodingTest, VarintRoundTrip) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            16383,
                            16384,
                            (1ull << 32) - 1,
                            1ull << 32,
                            (1ull << 63),
                            std::numeric_limits<uint64_t>::max()};
  std::string buf;
  for (const uint64_t v : cases) {
    AppendVarint64(v, &buf);
  }
  ByteReader reader(buf.data(), buf.size());
  for (const uint64_t v : cases) {
    const Result<uint64_t> got = reader.ReadVarint64();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.value(), v);
  }
  EXPECT_TRUE(reader.empty());
}

TEST(StoreCodingTest, VarintTruncatedIsError) {
  std::string buf;
  AppendVarint64(std::numeric_limits<uint64_t>::max(), &buf);
  for (size_t len = 0; len < buf.size(); ++len) {
    ByteReader reader(buf.data(), len);
    EXPECT_FALSE(reader.ReadVarint64().ok()) << "prefix length " << len;
  }
}

TEST(StoreCodingTest, VarintOverflowIsError) {
  // Ten continuation bytes with a final byte carrying bits beyond 2^64.
  const std::string overflow(
      "\xff\xff\xff\xff\xff\xff\xff\xff\xff\x7f", 10);
  ByteReader reader(overflow.data(), overflow.size());
  EXPECT_FALSE(reader.ReadVarint64().ok());
  // Eleven continuation bytes: too long regardless of value.
  const std::string overlong(
      "\x80\x80\x80\x80\x80\x80\x80\x80\x80\x80\x01", 11);
  ByteReader reader2(overlong.data(), overlong.size());
  EXPECT_FALSE(reader2.ReadVarint64().ok());
}

TEST(StoreCodingTest, ZigZagRoundTrip) {
  const int64_t cases[] = {0, -1, 1, -2, 2,
                           std::numeric_limits<int64_t>::min(),
                           std::numeric_limits<int64_t>::max()};
  for (const int64_t v : cases) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
}

TEST(StoreCodingTest, FixedWidthRoundTripAndTruncation) {
  std::string buf;
  AppendFixed32(0xdeadbeef, &buf);
  AppendFixed64(0x0123456789abcdefull, &buf);
  ByteReader reader(buf.data(), buf.size());
  EXPECT_EQ(reader.ReadFixed32().value(), 0xdeadbeefu);
  EXPECT_EQ(reader.ReadFixed64().value(), 0x0123456789abcdefull);
  EXPECT_TRUE(reader.empty());

  ByteReader truncated(buf.data(), 3);
  EXPECT_FALSE(truncated.ReadFixed32().ok());
  ByteReader truncated64(buf.data(), 11);
  EXPECT_TRUE(truncated64.ReadFixed32().ok());
  EXPECT_FALSE(truncated64.ReadFixed64().ok());
}

TEST(StoreCodingTest, LengthPrefixedRoundTripAndOverrun) {
  std::string buf;
  AppendLengthPrefixed("hello", &buf);
  AppendLengthPrefixed("", &buf);
  ByteReader reader(buf.data(), buf.size());
  EXPECT_EQ(reader.ReadLengthPrefixed().value(), "hello");
  EXPECT_EQ(reader.ReadLengthPrefixed().value(), "");
  EXPECT_TRUE(reader.empty());

  // A length that promises more bytes than the buffer holds.
  std::string hostile;
  AppendVarint64(1000, &hostile);
  hostile += "abc";
  ByteReader bad(hostile.data(), hostile.size());
  EXPECT_FALSE(bad.ReadLengthPrefixed().ok());

  ByteReader skipper(buf.data(), buf.size());
  EXPECT_TRUE(skipper.Skip(buf.size()).ok());
  EXPECT_FALSE(skipper.Skip(1).ok());
}

// ----------------------------------------------------------------- segment

TEST(StoreSegmentTest, Int64SegmentRoundTrip) {
  Random rng(31337);
  std::vector<int64_t> values;
  for (int i = 0; i < 5000; ++i) {
    switch (rng.Uniform(0, 4)) {
      case 0:
        values.push_back(rng.Uniform(-1000, 1000));
        break;
      case 1:
        values.push_back(std::numeric_limits<int64_t>::min());
        break;
      case 2:
        values.push_back(std::numeric_limits<int64_t>::max());
        break;
      default:
        values.push_back(static_cast<int64_t>(rng.Uniform(0, 1 << 30)) *
                         rng.Uniform(-100, 100));
        break;
    }
  }
  std::string encoded;
  EncodeInt64Segment(values.data(), values.size(), &encoded);
  std::vector<int64_t> decoded(values.size());
  const Status status = DecodeInt64Segment(encoded.data(), encoded.size(),
                                           values.size(), decoded.data());
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(decoded, values);
}

TEST(StoreSegmentTest, SortedRunCompressesWell) {
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 10000; ++i) {
    values.push_back(100000 + i * 3);
  }
  std::string encoded;
  EncodeInt64Segment(values.data(), values.size(), &encoded);
  // Constant small deltas: ~1 byte per row, far below the 8 raw bytes.
  EXPECT_LT(encoded.size(), values.size() * 2);
}

TEST(StoreSegmentTest, Int64SegmentMalformedIsError) {
  std::vector<int64_t> values = {1, 2, 3};
  std::string encoded;
  EncodeInt64Segment(values.data(), values.size(), &encoded);
  std::vector<int64_t> out(3);
  // Trailing garbage (append a real NUL byte; a "\x00" literal is empty).
  std::string padded = encoded;
  padded.push_back('\0');
  EXPECT_FALSE(
      DecodeInt64Segment(padded.data(), padded.size(), 3, out.data()).ok());
  // Truncation at every prefix.
  for (size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_FALSE(
        DecodeInt64Segment(encoded.data(), len, 3, out.data()).ok());
  }
  // Row-count mismatch.
  std::vector<int64_t> big(4);
  EXPECT_FALSE(
      DecodeInt64Segment(encoded.data(), encoded.size(), 4, big.data())
          .ok());
}

TEST(StoreSegmentTest, DictRoundTrip) {
  const std::vector<std::string> dict = {"", "Ballard", "Bellevue",
                                         "Queen Anne", "Seattle"};
  std::string offsets;
  std::string blob;
  EncodeDict(dict, &offsets, &blob);
  EXPECT_EQ(offsets.size(), (dict.size() + 1) * 8);
  const Result<std::vector<std::string>> decoded =
      DecodeDict(offsets, blob, dict.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value(), dict);

  std::string empty_offsets;
  std::string empty_blob;
  EncodeDict({}, &empty_offsets, &empty_blob);
  const Result<std::vector<std::string>> empty =
      DecodeDict(empty_offsets, empty_blob, 0);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST(StoreSegmentTest, DictRejectsMalformed) {
  const std::vector<std::string> dict = {"a", "b", "c"};
  std::string offsets;
  std::string blob;
  EncodeDict(dict, &offsets, &blob);

  // Count larger than the offsets can carry.
  EXPECT_FALSE(DecodeDict(offsets, blob, 4).ok());
  // Offsets buffer truncated.
  EXPECT_FALSE(
      DecodeDict(std::string_view(offsets).substr(0, 8), blob, 3).ok());
  // Unsorted dictionary: swap "a" and "b" in the blob.
  std::string swapped_blob = blob;
  std::swap(swapped_blob[0], swapped_blob[1]);
  EXPECT_FALSE(DecodeDict(offsets, swapped_blob, 3).ok());
  // Duplicate strings (equal neighbors violate strict ascent).
  std::string dup_blob = blob;
  dup_blob[1] = dup_blob[0];
  EXPECT_FALSE(DecodeDict(offsets, dup_blob, 3).ok());
  // Non-monotone offsets: make the second offset run backwards.
  std::string bad_offsets = offsets;
  bad_offsets[8] = 2;
  bad_offsets[16] = 1;
  EXPECT_FALSE(DecodeDict(bad_offsets, blob, 3).ok());
  // Blob not fully consumed by the final offset.
  EXPECT_FALSE(DecodeDict(offsets, blob + "x", 3).ok());
}

// ------------------------------------------------------------- mapped file

TEST(StoreMappedFileTest, CreateWriteFinishReopen) {
  const ScratchDir scratch("mapped");
  const std::string path = scratch.Path("f.bin");
  {
    Result<std::unique_ptr<MappedFile>> file = MappedFile::Create(path);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    MappedFile& f = *file.value();
    const std::string header(64, '\0');
    ASSERT_TRUE(f.Append(header.data(), header.size()).ok());
    ASSERT_TRUE(f.PadTo(kStorePageSize).ok());
    EXPECT_EQ(f.size(), kStorePageSize);
    const std::string payload = "segment payload bytes";
    ASSERT_TRUE(f.Append(payload.data(), payload.size()).ok());
    // Patch the header after the fact, as Finish() does for the catalog.
    const std::string patch = "MAGICNUM";
    ASSERT_TRUE(f.WriteAt(0, patch.data(), patch.size()).ok());
    // Out-of-range patches are refused.
    EXPECT_FALSE(f.WriteAt(f.size() - 2, patch.data(), patch.size()).ok());
    ASSERT_TRUE(f.Finish().ok());
    EXPECT_FALSE(f.writable());
    // Writes after Finish are refused.
    EXPECT_FALSE(f.Append(payload.data(), payload.size()).ok());
  }
  // On disk: exactly the logical size, not the 64 MiB grow step.
  EXPECT_EQ(fs::file_size(path), kStorePageSize + 21);

  Result<std::unique_ptr<MappedFile>> reopened =
      MappedFile::OpenReadOnly(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const MappedFile& ro = *reopened.value();
  EXPECT_EQ(ro.size(), kStorePageSize + 21);
  EXPECT_EQ(std::string_view(ro.data(), 8), "MAGICNUM");
  EXPECT_EQ(std::string_view(ro.data() + kStorePageSize, 21),
            "segment payload bytes");
}

TEST(StoreMappedFileTest, OpenMissingOrEmptyIsError) {
  const ScratchDir scratch("mapped_err");
  EXPECT_FALSE(MappedFile::OpenReadOnly(scratch.Path("missing")).ok());
  {
    std::ofstream touch(scratch.Path("empty"));
  }
  EXPECT_FALSE(MappedFile::OpenReadOnly(scratch.Path("empty")).ok());
}

// ---------------------------------------------------------- buffer manager

TEST(StoreBufferManagerTest, BoundsAndAlignment) {
  const ScratchDir scratch("bufmgr");
  const std::string path = scratch.Path("f.bin");
  {
    Result<std::unique_ptr<MappedFile>> file = MappedFile::Create(path);
    ASSERT_TRUE(file.ok());
    std::vector<uint64_t> words = {1, 2, 3, 4};
    ASSERT_TRUE(file.value()
                    ->Append(words.data(), words.size() * sizeof(uint64_t))
                    .ok());
    ASSERT_TRUE(file.value()->PadTo(kStorePageSize).ok());
    ASSERT_TRUE(file.value()->Append("tail", 4).ok());
    ASSERT_TRUE(file.value()->Finish().ok());
  }
  Result<std::unique_ptr<MappedFile>> ro = MappedFile::OpenReadOnly(path);
  ASSERT_TRUE(ro.ok());
  const BufferManager buffers(std::move(ro).value());
  EXPECT_EQ(buffers.file_bytes(), kStorePageSize + 4);
  EXPECT_EQ(buffers.num_pages(), 2u);

  // Full first page; short final page.
  EXPECT_EQ(buffers.Page(0).value().size(), kStorePageSize);
  EXPECT_EQ(buffers.Page(1).value(), "tail");
  EXPECT_FALSE(buffers.Page(2).ok());

  // Regions: typed, bounds- and size-checked.
  const Result<ColumnSpan<uint64_t>> span =
      buffers.Region<uint64_t>({0, 32}, 4);
  ASSERT_TRUE(span.ok());
  EXPECT_EQ(span.value()[3], 4u);
  EXPECT_FALSE(buffers.Region<uint64_t>({0, 32}, 3).ok());  // size mismatch
  EXPECT_FALSE(buffers.Region<uint64_t>({4, 32}, 4).ok());  // misaligned
  EXPECT_FALSE(buffers.Bytes({kStorePageSize, 5}).ok());    // overruns file
  EXPECT_FALSE(
      buffers.Bytes({std::numeric_limits<uint64_t>::max(), 2}).ok());

  const BufferManager::Stats stats = buffers.stats();
  EXPECT_GE(stats.page_reads, 2u);
  EXPECT_GE(stats.region_reads, 1u);
}

// ------------------------------------------------------------------ sorter

Schema SorterSchema() {
  auto schema = Schema::Create({
      ColumnDef("k", ValueType::kInt64, ColumnKind::kNumeric),
      ColumnDef("s", ValueType::kString, ColumnKind::kCategorical),
      ColumnDef("d", ValueType::kDouble, ColumnKind::kNumeric),
  });
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

std::vector<Row> RandomSorterRows(size_t n, uint64_t seed) {
  Random rng(seed);
  const char* const kStrings[] = {"alpha", "beta", "gamma", "delta"};
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Row row;
    // Few distinct keys force duplicate-key ties, the stability probe.
    row.push_back(rng.Bernoulli(0.05) ? Value()
                                      : Value(rng.Uniform(0, 20)));
    row.push_back(rng.Bernoulli(0.05)
                      ? Value()
                      : Value(kStrings[rng.Uniform(0, 3)]));
    row.push_back(Value(rng.UniformReal(0, 1000)));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<Row> DrainStream(const ExternalRowSorter& sorter) {
  Result<ExternalRowSorter::Stream> stream = sorter.OpenStream();
  EXPECT_TRUE(stream.ok()) << stream.status().ToString();
  std::vector<Row> out;
  Row row;
  while (true) {
    const Result<bool> more = stream.value().Next(&row);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ok() || !more.value()) {
      break;
    }
    out.push_back(row);
  }
  return out;
}

void ExpectRowsEqual(const std::vector<Row>& a, const std::vector<Row>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "row " << i;
    for (size_t c = 0; c < a[i].size(); ++c) {
      EXPECT_EQ(a[i][c].ToString(), b[i][c].ToString())
          << "row " << i << " col " << c;
    }
  }
}

TEST(StoreSorterTest, InputOrderPreservedWithoutSortColumns) {
  const ScratchDir scratch("sorter_order");
  SorterOptions options;
  options.temp_dir = scratch.Path("runs");
  options.memory_budget_bytes = 512;  // force many spills
  ExternalRowSorter sorter(SorterSchema(), options);
  const std::vector<Row> rows = RandomSorterRows(500, 7);
  for (const Row& row : rows) {
    ASSERT_TRUE(sorter.AddRow(row).ok());
  }
  ASSERT_TRUE(sorter.Finish().ok());
  EXPECT_GT(sorter.num_runs(), 3u) << "budget did not force spilling";
  ExpectRowsEqual(DrainStream(sorter), rows);
  // The stream is re-openable: the writer replays it twice.
  ExpectRowsEqual(DrainStream(sorter), rows);
  ASSERT_TRUE(sorter.Cleanup().ok());
  EXPECT_FALSE(fs::exists(scratch.Path("runs")));
}

TEST(StoreSorterTest, SortedMergeMatchesStableSort) {
  const ScratchDir scratch("sorter_sorted");
  SorterOptions options;
  options.temp_dir = scratch.Path("runs");
  options.memory_budget_bytes = 512;
  options.sort_columns = {0, 1};
  ExternalRowSorter sorter(SorterSchema(), options);
  const std::vector<Row> rows = RandomSorterRows(700, 8);
  for (const Row& row : rows) {
    ASSERT_TRUE(sorter.AddRow(row).ok());
  }
  ASSERT_TRUE(sorter.Finish().ok());
  EXPECT_GT(sorter.num_runs(), 3u);

  std::vector<Row> expected = rows;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Row& a, const Row& b) {
                     if (const int cmp = a[0].Compare(b[0]); cmp != 0) {
                       return cmp < 0;
                     }
                     return a[1].Compare(b[1]) < 0;
                   });
  ExpectRowsEqual(DrainStream(sorter), expected);
}

TEST(StoreSorterTest, ArityMismatchIsError) {
  const ScratchDir scratch("sorter_arity");
  SorterOptions options;
  options.temp_dir = scratch.Path("runs");
  ExternalRowSorter sorter(SorterSchema(), options);
  EXPECT_FALSE(sorter.AddRow({Value(int64_t{1})}).ok());
}

// ------------------------------------------------- writer/store round trip

Schema HomesSchema() {
  auto schema = Schema::Create({
      ColumnDef("neighborhood", ValueType::kString,
                ColumnKind::kCategorical),
      ColumnDef("price", ValueType::kInt64, ColumnKind::kNumeric),
      ColumnDef("score", ValueType::kDouble, ColumnKind::kNumeric),
  });
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

std::vector<Row> HomesRows(size_t n, uint64_t seed) {
  Random rng(seed);
  const char* const kHoods[] = {"Ballard", "Fremont", "Queen Anne",
                                "Wallingford"};
  std::vector<Row> rows;
  for (size_t i = 0; i < n; ++i) {
    Row row;
    row.push_back(rng.Bernoulli(0.1) ? Value()
                                     : Value(kHoods[rng.Uniform(0, 3)]));
    row.push_back(rng.Bernoulli(0.1)
                      ? Value()
                      : Value(rng.Uniform(-100000, 900000)));
    if (rng.Bernoulli(0.05)) {
      row.push_back(Value(std::numeric_limits<double>::quiet_NaN()));
    } else if (rng.Bernoulli(0.1)) {
      row.push_back(Value());
    } else {
      row.push_back(Value(rng.UniformReal(-5, 5)));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

// Builds a store at `path` holding `rows` under table `name`.
void BuildStore(const std::string& path, const std::string& name,
                const Schema& schema, const std::vector<Row>& rows,
                size_t budget = 1024) {
  StoreWriterOptions options;
  options.memory_budget_bytes = budget;
  Result<std::unique_ptr<StoreWriter>> writer =
      StoreWriter::Create(path, options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(writer.value()->BeginTable(name, schema).ok());
  for (const Row& row : rows) {
    ASSERT_TRUE(writer.value()->Append(row).ok());
  }
  ASSERT_TRUE(writer.value()->FinishTable().ok());
  const Status finish = writer.value()->Finish();
  ASSERT_TRUE(finish.ok()) << finish.ToString();
}

// Bit-exact cell comparison (doubles by representation, so NaN == NaN).
bool BitIdentical(const Value& a, const Value& b) {
  if (a.type() != b.type()) {
    return false;
  }
  if (a.is_double()) {
    uint64_t ba = 0;
    uint64_t bb = 0;
    const double da = a.double_value();
    const double db = b.double_value();
    std::memcpy(&ba, &da, sizeof(ba));
    std::memcpy(&bb, &db, sizeof(bb));
    return ba == bb;
  }
  return a.ToString() == b.ToString();
}

void ExpectTableMatchesRows(const Table& table,
                            const std::vector<Row>& rows) {
  ASSERT_EQ(table.num_rows(), rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      ASSERT_TRUE(BitIdentical(table.CellValue(r, c), rows[r][c]))
          << "row " << r << " col " << c << ": "
          << table.CellValue(r, c).ToString() << " vs "
          << rows[r][c].ToString();
    }
  }
}

TEST(StoreRoundTripTest, SmallTableWithSpills) {
  const ScratchDir scratch("roundtrip");
  const std::string path = scratch.Path("homes.store");
  const Schema schema = HomesSchema();
  const std::vector<Row> rows = HomesRows(2000, 99);
  BuildStore(path, "homes", schema, rows);

  // Spill files and temp dir are gone after Finish.
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  Result<SegmentStore> store = SegmentStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store.value().TableNames(),
            std::vector<std::string>{"homes"});
  Result<Table> table = store.value().OpenTable("homes");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_FALSE(table.value().has_rows());
  ExpectTableMatchesRows(table.value(), rows);

  EXPECT_FALSE(store.value().OpenTable("nope").ok());
}

TEST(StoreRoundTripTest, MultiSegmentTableAndZoneMetadata) {
  const ScratchDir scratch("multiseg");
  const std::string path = scratch.Path("big.store");
  auto schema_or = Schema::Create(
      {ColumnDef("v", ValueType::kInt64, ColumnKind::kNumeric)});
  ASSERT_TRUE(schema_or.ok());
  const size_t n = kSegmentRows + 1000;
  std::vector<Row> rows;
  rows.reserve(n);
  Random rng(5);
  int64_t min_seg2 = std::numeric_limits<int64_t>::max();
  int64_t max_seg2 = std::numeric_limits<int64_t>::min();
  for (size_t i = 0; i < n; ++i) {
    const int64_t v = rng.Uniform(-1000000, 1000000);
    if (i >= kSegmentRows) {
      min_seg2 = std::min(min_seg2, v);
      max_seg2 = std::max(max_seg2, v);
    }
    rows.push_back({Value(v)});
  }
  BuildStore(path, "big", schema_or.value(), rows, 1 << 20);

  Result<SegmentStore> store = SegmentStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  const TableMeta& meta = store.value().catalog().tables[0];
  EXPECT_EQ(meta.num_rows, n);
  ASSERT_EQ(meta.columns.size(), 1u);
  ASSERT_EQ(meta.columns[0].segments.size(), 2u);
  EXPECT_EQ(meta.columns[0].segments[0].row_count, kSegmentRows);
  EXPECT_EQ(meta.columns[0].segments[1].row_count, 1000u);
  // Zone metadata: the second segment's min/max match the data.
  EXPECT_EQ(static_cast<int64_t>(meta.columns[0].segments[1].min_bits),
            min_seg2);
  EXPECT_EQ(static_cast<int64_t>(meta.columns[0].segments[1].max_bits),
            max_seg2);

  Result<Table> table = store.value().OpenTable("big");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ExpectTableMatchesRows(table.value(), rows);
}

TEST(StoreRoundTripTest, SortedWriterOrdersRows) {
  const ScratchDir scratch("sorted");
  const std::string path = scratch.Path("s.store");
  const Schema schema = HomesSchema();
  std::vector<Row> rows = HomesRows(800, 12);
  StoreWriterOptions options;
  options.memory_budget_bytes = 2048;
  options.sort_columns = {"price"};
  Result<std::unique_ptr<StoreWriter>> writer =
      StoreWriter::Create(path, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->BeginTable("homes", schema).ok());
  for (const Row& row : rows) {
    ASSERT_TRUE(writer.value()->Append(row).ok());
  }
  ASSERT_TRUE(writer.value()->FinishTable().ok());
  ASSERT_TRUE(writer.value()->Finish().ok());

  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) {
                     return a[1].Compare(b[1]) < 0;
                   });
  Result<SegmentStore> store = SegmentStore::Open(path);
  ASSERT_TRUE(store.ok());
  Result<Table> table = store.value().OpenTable("homes");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ExpectTableMatchesRows(table.value(), rows);
}

TEST(StoreRoundTripTest, AllNullAndEmptyTables) {
  const ScratchDir scratch("nulls");
  const std::string path = scratch.Path("n.store");
  const Schema schema = HomesSchema();
  std::vector<Row> all_null;
  for (int i = 0; i < 100; ++i) {
    all_null.push_back({Value(), Value(), Value()});
  }
  StoreWriterOptions options;
  Result<std::unique_ptr<StoreWriter>> writer =
      StoreWriter::Create(path, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->BeginTable("all_null", schema).ok());
  for (const Row& row : all_null) {
    ASSERT_TRUE(writer.value()->Append(row).ok());
  }
  ASSERT_TRUE(writer.value()->FinishTable().ok());
  ASSERT_TRUE(writer.value()->BeginTable("empty", schema).ok());
  ASSERT_TRUE(writer.value()->FinishTable().ok());
  ASSERT_TRUE(writer.value()->Finish().ok());

  Result<SegmentStore> store = SegmentStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  Result<Table> nulls = store.value().OpenTable("all_null");
  ASSERT_TRUE(nulls.ok()) << nulls.status().ToString();
  ExpectTableMatchesRows(nulls.value(), all_null);
  Result<Table> empty = store.value().OpenTable("empty");
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_EQ(empty.value().num_rows(), 0u);
}

// OpenTable surfaces the persisted segment extrema as zone-map entries
// on the zero-copy columnar backing: per-zone row/valid counts are
// exact, extrema are the owning segment's min/max replicated across its
// zones (a sound superset), and has_nan comes from a per-zone scan.
TEST(StoreRoundTripTest, OpenTableSurfacesZoneMetadata) {
  const ScratchDir scratch("zones");
  const std::string path = scratch.Path("z.store");
  const Schema schema = HomesSchema();
  const size_t n = 3 * kZoneRows + 500;  // one segment, partial tail zone
  const std::vector<Row> rows = HomesRows(n, 23);
  BuildStore(path, "homes", schema, rows, 1 << 20);

  Result<SegmentStore> store = SegmentStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  Result<Table> table = store.value().OpenTable("homes");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  const std::shared_ptr<const ColumnarTable>& shadow =
      table.value().columnar_backing();
  ASSERT_NE(shadow, nullptr);

  const TableMeta& meta = store.value().catalog().tables[0];
  const size_t num_zones = (n + kZoneRows - 1) / kZoneRows;
  for (size_t c = 0; c < shadow->num_columns(); ++c) {
    const ColumnarTable::Column& col = shadow->column(c);
    if (!col.regular) {
      continue;
    }
    ASSERT_EQ(col.zones.size(), num_zones) << "col " << c;
    ASSERT_EQ(meta.columns[c].segments.size(), 1u) << "col " << c;
    const SegmentMeta& segment = meta.columns[c].segments[0];
    for (size_t z = 0; z < num_zones; ++z) {
      const size_t begin = z * kZoneRows;
      const size_t end = std::min(n, begin + kZoneRows);
      const ZoneEntry& zone = col.zones[z];
      EXPECT_EQ(zone.row_count, end - begin) << "col " << c << " zone "
                                             << z;
      uint32_t valid = 0;
      bool has_nan = false;
      for (size_t r = begin; r < end; ++r) {
        if (col.IsNull(r)) {
          continue;
        }
        ++valid;
        if (col.type == ValueType::kDouble && std::isnan(col.f64[r])) {
          has_nan = true;
        }
      }
      EXPECT_EQ(zone.valid_count, valid) << "col " << c << " zone " << z;
      EXPECT_EQ(zone.has_nan, has_nan) << "col " << c << " zone " << z;
      if (valid > 0) {
        // Segment extrema replicated: a superset claim, never tighter
        // than the segment and never absent.
        EXPECT_EQ(zone.min_bits, segment.min_bits)
            << "col " << c << " zone " << z;
        EXPECT_EQ(zone.max_bits, segment.max_bits)
            << "col " << c << " zone " << z;
      }
    }
  }
}

// A price-sorted store is value-clustered per segment, so a compiled
// predicate selecting only the top segment's range must rule every
// morsel of the lower segment all-fail — the store's zone surfacing has
// to deliver real pruning, not just satisfy the soundness contract.
TEST(StoreRoundTripTest, SortedStoreZonesPruneCompiledPredicates) {
  const ScratchDir scratch("prune");
  const std::string path = scratch.Path("p.store");
  const Schema schema = HomesSchema();
  const size_t n = kSegmentRows + 8192;  // 2 segments, 36 morsels
  std::vector<Row> rows = HomesRows(n, 29);
  StoreWriterOptions options;
  options.memory_budget_bytes = 1 << 22;
  options.sort_columns = {"price"};
  Result<std::unique_ptr<StoreWriter>> writer =
      StoreWriter::Create(path, options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(writer.value()->BeginTable("homes", schema).ok());
  for (const Row& row : rows) {
    ASSERT_TRUE(writer.value()->Append(row).ok());
  }
  ASSERT_TRUE(writer.value()->FinishTable().ok());
  ASSERT_TRUE(writer.value()->Finish().ok());

  Result<SegmentStore> store = SegmentStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  Result<Table> table = store.value().OpenTable("homes");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  const std::shared_ptr<const ColumnarTable>& shadow =
      table.value().columnar_backing();
  ASSERT_NE(shadow, nullptr);
  const ColumnarTable::Column& price = shadow->column(1);
  ASSERT_TRUE(price.regular);

  // Threshold just above the first segment's maximum price: only rows of
  // the second segment can match, so the first segment's 32 morsels are
  // provably empty.
  int64_t seg1_max = std::numeric_limits<int64_t>::min();
  for (size_t r = 0; r < kSegmentRows; ++r) {
    if (!price.IsNull(r)) {
      seg1_max = std::max(seg1_max, static_cast<int64_t>(price.i64[r]));
    }
  }
  const int64_t threshold = seg1_max + 1;
  const std::string sql = "SELECT * FROM homes WHERE price >= " +
                          std::to_string(threshold);
  auto query = ParseQuery(sql);
  ASSERT_TRUE(query.ok());
  auto profile = SelectionProfile::FromQuery(query.value(), schema);
  ASSERT_TRUE(profile.ok());
  auto compiled =
      CompiledPredicate::CompileProfile(profile.value(), schema, shadow);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  std::vector<uint32_t> expected;
  for (size_t r = 0; r < n; ++r) {
    if (!price.IsNull(r) && price.i64[r] >= threshold) {
      expected.push_back(static_cast<uint32_t>(r));
    }
  }
  ASSERT_FALSE(expected.empty()) << "degenerate threshold";

  ParallelOptions sequential;
  sequential.threads = 1;
  Result<std::vector<uint32_t>> got = compiled.value().Filter(sequential);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), expected);

  using ZoneVerdict = CompiledPredicate::ZoneVerdict;
  size_t all_fail = 0;
  const size_t seg1_morsels = kSegmentRows / kZoneRows;  // 32
  for (size_t m = 0; m < compiled.value().num_morsels(); ++m) {
    const ZoneVerdict verdict = compiled.value().MorselVerdict(m);
    all_fail += verdict == ZoneVerdict::kAllFail ? 1 : 0;
    if (m < seg1_morsels) {
      EXPECT_EQ(verdict, ZoneVerdict::kAllFail) << "morsel " << m;
    }
  }
  EXPECT_GE(all_fail, seg1_morsels);
}

TEST(StoreRoundTripTest, NumericCoercionMatchesTableAppend) {
  const ScratchDir scratch("coerce");
  const std::string path = scratch.Path("c.store");
  const Schema schema = HomesSchema();
  StoreWriterOptions options;
  Result<std::unique_ptr<StoreWriter>> writer =
      StoreWriter::Create(path, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->BeginTable("t", schema).ok());
  // Lossless coercion accepted (double 42.0 into int64 price, int64 3
  // into double score)...
  ASSERT_TRUE(
      writer.value()
          ->Append({Value("Ballard"), Value(42.0), Value(int64_t{3})})
          .ok());
  // ...lossy coercion and class mismatches rejected.
  EXPECT_FALSE(writer.value()
                   ->Append({Value("Ballard"), Value(1.5), Value(0.0)})
                   .ok());
  EXPECT_FALSE(writer.value()
                   ->Append({Value(int64_t{7}), Value(), Value()})
                   .ok());
  EXPECT_FALSE(writer.value()->Append({Value("x"), Value()}).ok());
  ASSERT_TRUE(writer.value()->FinishTable().ok());
  ASSERT_TRUE(writer.value()->Finish().ok());

  Result<SegmentStore> store = SegmentStore::Open(path);
  ASSERT_TRUE(store.ok());
  Result<Table> table = store.value().OpenTable("t");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ(table.value().num_rows(), 1u);
  EXPECT_EQ(table.value().CellValue(0, 1).int64_value(), 42);
  EXPECT_EQ(table.value().CellValue(0, 2).double_value(), 3.0);
}

TEST(StoreWriterTest, MisuseIsRejected) {
  const ScratchDir scratch("misuse");
  const std::string path = scratch.Path("m.store");
  const Schema schema = HomesSchema();
  StoreWriterOptions options;
  Result<std::unique_ptr<StoreWriter>> writer =
      StoreWriter::Create(path, options);
  ASSERT_TRUE(writer.ok());
  // Append/FinishTable before BeginTable.
  EXPECT_FALSE(writer.value()->Append({Value(), Value(), Value()}).ok());
  EXPECT_FALSE(writer.value()->FinishTable().ok());
  ASSERT_TRUE(writer.value()->BeginTable("t", schema).ok());
  // Nested BeginTable.
  EXPECT_FALSE(writer.value()->BeginTable("u", schema).ok());
  ASSERT_TRUE(writer.value()->FinishTable().ok());
  // Duplicate table name.
  EXPECT_FALSE(writer.value()->BeginTable("t", schema).ok());
  ASSERT_TRUE(writer.value()->Finish().ok());
  // Anything after Finish.
  EXPECT_FALSE(writer.value()->BeginTable("v", schema).ok());
  EXPECT_FALSE(writer.value()->Finish().ok());
}

TEST(StoreRoundTripTest, AttachStoreTablesIntoDatabase) {
  const ScratchDir scratch("attach");
  const std::string path = scratch.Path("db.store");
  const Schema schema = HomesSchema();
  const std::vector<Row> rows = HomesRows(300, 77);
  BuildStore(path, "homes", schema, rows);

  Database db;
  ASSERT_TRUE(AttachStoreTables(path, &db).ok());
  ASSERT_TRUE(db.HasTable("homes"));
  const Result<const Table*> table = db.GetTable("homes");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value()->num_rows(), rows.size());

  // A second attach collides on the name and must not modify db.
  const Status again = AttachStoreTables(path, &db);
  EXPECT_EQ(again.code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(AttachStoreTables(path, nullptr).ok());
}

// ------------------------------------------------------- corrupt files

// Flips one byte at `offset` in the file at `path`.
void CorruptByte(const std::string& path, uint64_t offset) {
  std::fstream f(path,
                 std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0xff);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

TEST(StoreCorruptionTest, HeaderDamageIsRejected) {
  const ScratchDir scratch("corrupt_hdr");
  const std::string path = scratch.Path("h.store");
  BuildStore(path, "homes", HomesSchema(), HomesRows(100, 1));

  // Magic byte.
  {
    const std::string copy = scratch.Path("magic.store");
    fs::copy_file(path, copy);
    CorruptByte(copy, 0);
    EXPECT_FALSE(SegmentStore::Open(copy).ok());
  }
  // Version field (directly after the 8-byte magic).
  {
    const std::string copy = scratch.Path("version.store");
    fs::copy_file(path, copy);
    CorruptByte(copy, 8);
    const Result<SegmentStore> store = SegmentStore::Open(copy);
    ASSERT_FALSE(store.ok());
    EXPECT_EQ(store.status().code(), StatusCode::kNotSupported);
  }
  // Truncated to half a page: too short for the header's catalog region.
  {
    const std::string copy = scratch.Path("trunc.store");
    fs::copy_file(path, copy);
    fs::resize_file(copy, kStorePageSize / 2);
    EXPECT_FALSE(SegmentStore::Open(copy).ok());
  }
}

TEST(StoreCorruptionTest, NoCatalogByteFlipEverCrashes) {
  // Flip every byte of the catalog region one at a time: each open must
  // either fail with a Status or produce a store whose tables still
  // open-validate — never crash or read out of bounds (the ASan/TSan CI
  // legs make this a memory-safety gate, not just an API contract).
  const ScratchDir scratch("corrupt_cat");
  const std::string path = scratch.Path("c.store");
  BuildStore(path, "homes", HomesSchema(), HomesRows(64, 3));
  const uint64_t file_size = fs::file_size(path);

  // The catalog is the page-aligned tail region; flipping every byte of
  // the last two pages covers it plus some column data.
  const uint64_t start =
      file_size > 2 * kStorePageSize ? file_size - 2 * kStorePageSize : 0;
  const std::string copy = scratch.Path("flip.store");
  for (uint64_t off = start; off < file_size; ++off) {
    fs::copy_file(path, copy,
                  fs::copy_options::overwrite_existing);
    CorruptByte(copy, off);
    Result<SegmentStore> store = SegmentStore::Open(copy);
    if (!store.ok()) {
      continue;
    }
    for (const std::string& name : store.value().TableNames()) {
      const Result<Table> table = store.value().OpenTable(name);
      if (table.ok()) {
        // A surviving open must still be readable end to end.
        for (size_t r = 0; r < table.value().num_rows(); ++r) {
          (void)table.value().CopyRow(r);
        }
      }
    }
  }
}

}  // namespace
}  // namespace autocat
