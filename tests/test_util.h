#ifndef AUTOCAT_TESTS_TEST_UTIL_H_
#define AUTOCAT_TESTS_TEST_UTIL_H_

// Shared fixtures for the core/explore tests: a small homes schema, table
// builders, and workload/count-store construction from inline SQL.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/table.h"
#include "workload/counts.h"
#include "workload/workload.h"

namespace autocat {
namespace test {

inline Schema HomesSchema() {
  auto schema = Schema::Create({
      ColumnDef("neighborhood", ValueType::kString,
                ColumnKind::kCategorical),
      ColumnDef("price", ValueType::kInt64, ColumnKind::kNumeric),
      ColumnDef("bedroomcount", ValueType::kInt64, ColumnKind::kNumeric),
      ColumnDef("propertytype", ValueType::kString,
                ColumnKind::kCategorical),
  });
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

struct HomeRow {
  const char* neighborhood;
  int64_t price;
  int64_t bedrooms;
  const char* type = "Single Family";
};

inline Table HomesTable(const std::vector<HomeRow>& rows) {
  Table table(HomesSchema());
  for (const HomeRow& row : rows) {
    EXPECT_TRUE(table
                    .AppendRow({Value(row.neighborhood), Value(row.price),
                                Value(row.bedrooms), Value(row.type)})
                    .ok());
  }
  return table;
}

inline WorkloadStatsOptions StatsOptions(double price_interval = 1000) {
  WorkloadStatsOptions options;
  options.split_intervals = {{"price", price_interval},
                             {"bedroomcount", 1}};
  return options;
}

/// Builds count stores from inline SQL (each string a full SELECT).
inline WorkloadStats StatsFromSql(const std::vector<std::string>& sqls,
                                  double price_interval = 1000) {
  const Workload workload =
      Workload::Parse(sqls, HomesSchema(), nullptr);
  EXPECT_EQ(workload.size(), sqls.size())
      << "test workload failed to parse fully";
  auto stats = WorkloadStats::Build(workload, HomesSchema(),
                                    StatsOptions(price_interval));
  EXPECT_TRUE(stats.ok());
  return std::move(stats).value();
}

}  // namespace test
}  // namespace autocat

#endif  // AUTOCAT_TESTS_TEST_UTIL_H_
