// Tests for CategoryLabel and CategoryTree (Section 3.1's structures).

#include "core/category.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace autocat {
namespace {

using test::HomesTable;

TEST(CategoryLabelTest, CategoricalMatches) {
  const auto label = CategoryLabel::Categorical(
      "neighborhood", {Value("Redmond"), Value("Bellevue")});
  EXPECT_TRUE(label.is_categorical());
  EXPECT_TRUE(label.Matches(Value("Redmond")));
  EXPECT_TRUE(label.Matches(Value("Bellevue")));
  EXPECT_FALSE(label.Matches(Value("Seattle")));
  EXPECT_FALSE(label.Matches(Value()));
}

TEST(CategoryLabelTest, NumericMatchesHalfOpen) {
  const auto label = CategoryLabel::Numeric("price", 200000, 225000);
  EXPECT_TRUE(label.is_numeric());
  EXPECT_TRUE(label.Matches(Value(200000)));
  EXPECT_TRUE(label.Matches(Value(224999)));
  EXPECT_FALSE(label.Matches(Value(225000)));  // a1 <= A < a2
  EXPECT_FALSE(label.Matches(Value(199999)));
  EXPECT_FALSE(label.Matches(Value("200000")));
}

TEST(CategoryLabelTest, NumericClosedTopBucket) {
  const auto label =
      CategoryLabel::Numeric("price", 275000, 300000, /*hi_inclusive=*/true);
  EXPECT_TRUE(label.Matches(Value(300000)));
}

TEST(CategoryLabelTest, OverlapsCondition) {
  const auto categorical = CategoryLabel::Categorical(
      "neighborhood", {Value("Redmond"), Value("Bellevue")});
  EXPECT_TRUE(categorical.OverlapsCondition(
      AttributeCondition::ValueSet({Value("Bellevue"), Value("X")})));
  EXPECT_FALSE(categorical.OverlapsCondition(
      AttributeCondition::ValueSet({Value("Seattle")})));

  const auto numeric = CategoryLabel::Numeric("price", 200000, 225000);
  NumericRange touching;
  touching.lo = 225000;  // closed-interval overlap semantics (Section 4.2)
  touching.hi = 250000;
  EXPECT_TRUE(numeric.OverlapsCondition(AttributeCondition::Range(touching)));
  NumericRange disjoint;
  disjoint.lo = 225001;
  disjoint.hi = 250000;
  EXPECT_FALSE(
      numeric.OverlapsCondition(AttributeCondition::Range(disjoint)));
}

TEST(CategoryLabelTest, RenderingMatchesPaperStyle) {
  EXPECT_EQ(CategoryLabel::Categorical("Neighborhood",
                                       {Value("Redmond"), Value("Bellevue")})
                .ToString(),
            "Neighborhood: Redmond, Bellevue");
  EXPECT_EQ(CategoryLabel::Numeric("Price", 200000, 225000).ToString(),
            "Price: 200K-225K");
}

TEST(CategoryLabelTest, SqlPredicate) {
  EXPECT_EQ(
      CategoryLabel::Categorical("neighborhood", {Value("Redmond")})
          .ToSqlPredicate(),
      "neighborhood = 'Redmond'");
  EXPECT_EQ(CategoryLabel::Categorical("n", {Value("a"), Value("b")})
                .ToSqlPredicate(),
            "n IN ('a', 'b')");
  EXPECT_EQ(CategoryLabel::Numeric("price", 100, 200).ToSqlPredicate(),
            "price >= 100 AND price < 200");
  EXPECT_EQ(CategoryLabel::Numeric("price", 100, 200, true).ToSqlPredicate(),
            "price >= 100 AND price <= 200");
}

TEST(CategoryTreeTest, RootHoldsAllRows) {
  const Table table = HomesTable({{"a", 1, 1}, {"b", 2, 2}, {"c", 3, 3}});
  const CategoryTree tree(&table);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.node(tree.root()).tset_size(), 3u);
  EXPECT_TRUE(tree.node(tree.root()).is_root());
  EXPECT_TRUE(tree.node(tree.root()).is_leaf());
  EXPECT_EQ(tree.num_categories(), 0u);
  EXPECT_EQ(tree.max_depth(), 0);
}

TEST(CategoryTreeTest, AddChildrenMaintainsStructure) {
  const Table table = HomesTable({{"a", 1, 1}, {"b", 2, 2}, {"a", 3, 3}});
  CategoryTree tree(&table);
  const NodeId first = tree.AddChild(
      tree.root(), CategoryLabel::Categorical("neighborhood", {Value("a")}),
      {0, 2});
  const NodeId second = tree.AddChild(
      tree.root(), CategoryLabel::Categorical("neighborhood", {Value("b")}),
      {1});
  tree.AppendLevelAttribute("neighborhood");

  EXPECT_EQ(tree.num_nodes(), 3u);
  EXPECT_EQ(tree.num_categories(), 2u);
  EXPECT_EQ(tree.node(first).level, 1);
  EXPECT_EQ(tree.node(first).parent, tree.root());
  EXPECT_EQ(tree.node(tree.root()).children,
            (std::vector<NodeId>{first, second}));
  EXPECT_EQ(tree.max_depth(), 1);
  EXPECT_EQ(tree.num_leaves(), 2u);
  EXPECT_EQ(tree.max_leaf_tset(), 2u);

  const auto sa = tree.SubcategorizingAttribute(tree.root());
  ASSERT_TRUE(sa.ok());
  EXPECT_EQ(sa.value(), "neighborhood");
  EXPECT_FALSE(tree.SubcategorizingAttribute(first).ok());  // leaf
  EXPECT_FALSE(tree.SubcategorizingAttribute(99).ok());
}

TEST(CategoryTreeTest, LevelAttributes) {
  const Table table = HomesTable({{"a", 1, 1}});
  CategoryTree tree(&table);
  tree.AppendLevelAttribute("neighborhood");
  tree.AppendLevelAttribute("price");
  EXPECT_EQ(tree.level_attributes(),
            (std::vector<std::string>{"neighborhood", "price"}));
}

TEST(CategoryTreeTest, RenderShowsLabelsAndCounts) {
  const Table table = HomesTable({{"a", 1, 1}, {"b", 2, 2}});
  CategoryTree tree(&table);
  tree.AddChild(tree.root(),
                CategoryLabel::Categorical("neighborhood", {Value("a")}),
                {0});
  const std::string rendered = tree.Render();
  EXPECT_NE(rendered.find("ALL [2 tuples]"), std::string::npos);
  EXPECT_NE(rendered.find("neighborhood: a [1 tuples]"),
            std::string::npos);
}

TEST(CategoryTreeTest, RenderTruncation) {
  const Table table = HomesTable({{"a", 1, 1}});
  CategoryTree tree(&table);
  for (int i = 0; i < 5; ++i) {
    tree.AddChild(tree.root(),
                  CategoryLabel::Numeric("price", i, i + 1), {0});
  }
  const std::string rendered = tree.Render(/*max_children=*/2);
  EXPECT_NE(rendered.find("3 more categories"), std::string::npos);

  const NodeId deep = tree.node(tree.root()).children[0];
  CategoryTree tree2 = tree;
  tree2.AddChild(deep, CategoryLabel::Numeric("bedroomcount", 0, 1), {0});
  const std::string depth_limited =
      tree2.Render(/*max_children=*/10, /*max_depth=*/1);
  EXPECT_NE(depth_limited.find("below depth limit"), std::string::npos);
}

}  // namespace
}  // namespace autocat
