// Unit tests for the study-result accessors and the technique factory —
// the API the bench harnesses consume.

#include <gtest/gtest.h>

#include "simgen/study.h"

namespace autocat {
namespace {

SimulatedStudyResult MakeSyntheticResult() {
  SimulatedStudyResult result;
  // Two subsets, two techniques, hand-set costs.
  const struct {
    size_t subset;
    Technique technique;
    double estimated;
    double actual;
    size_t size;
  } kRecords[] = {
      {0, Technique::kCostBased, 10, 12, 100},
      {0, Technique::kCostBased, 20, 21, 100},
      {0, Technique::kNoCost, 50, 55, 100},
      {1, Technique::kCostBased, 30, 33, 200},
      {1, Technique::kCostBased, 40, 44, 200},
      {1, Technique::kNoCost, 90, 100, 200},
  };
  for (const auto& r : kRecords) {
    SyntheticRecord record;
    record.subset = r.subset;
    record.technique = r.technique;
    record.estimated_cost = r.estimated;
    record.actual_cost = r.actual;
    record.result_size = r.size;
    result.records.push_back(record);
  }
  return result;
}

TEST(SimulatedStudyResultTest, SelectFiltersBySubsetAndTechnique) {
  const SimulatedStudyResult result = MakeSyntheticResult();
  EXPECT_EQ(result.Select(Technique::kCostBased, SIZE_MAX).size(), 4u);
  EXPECT_EQ(result.Select(Technique::kCostBased, 0).size(), 2u);
  EXPECT_EQ(result.Select(Technique::kNoCost, 1).size(), 1u);
  EXPECT_TRUE(result.Select(Technique::kAttrCost, SIZE_MAX).empty());
}

TEST(SimulatedStudyResultTest, PearsonAndSlope) {
  const SimulatedStudyResult result = MakeSyntheticResult();
  const auto pearson = result.Pearson(Technique::kCostBased, SIZE_MAX);
  ASSERT_TRUE(pearson.ok());
  EXPECT_GT(pearson.value(), 0.99);  // nearly perfectly linear by design
  const auto slope = result.FitSlope(Technique::kCostBased);
  ASSERT_TRUE(slope.ok());
  EXPECT_NEAR(slope.value(), 1.1, 0.02);
  // Too few points for Attr-cost.
  EXPECT_FALSE(result.Pearson(Technique::kAttrCost, SIZE_MAX).ok());
  const auto pooled = result.PooledPearson(SIZE_MAX);
  ASSERT_TRUE(pooled.ok());
  EXPECT_GT(pooled.value(), 0.9);
}

TEST(SimulatedStudyResultTest, MeanFractionalCost) {
  const SimulatedStudyResult result = MakeSyntheticResult();
  // Subset 0 cost-based: (12/100 + 21/100) / 2 = 0.165.
  EXPECT_NEAR(result.MeanFractionalCost(Technique::kCostBased, 0), 0.165,
              1e-12);
  // Empty selection -> 0.
  EXPECT_DOUBLE_EQ(result.MeanFractionalCost(Technique::kAttrCost, 0), 0);
}

TEST(UserStudyResultTest, SelectorsAndVotes) {
  UserStudyResult result;
  const struct {
    const char* user;
    const char* task;
    Technique technique;
    double est;
    double all;
    double one;
    size_t relevant;
  } kRuns[] = {
      // U1 finds cost-based cheap, no-cost dear, on both tasks.
      {"U1", "T1", Technique::kCostBased, 10, 10, 2, 5},
      {"U1", "T1", Technique::kNoCost, 50, 60, 30, 5},
      {"U1", "T2", Technique::kCostBased, 20, 22, 3, 4},
      {"U1", "T2", Technique::kNoCost, 80, 90, 40, 4},
      // U2 prefers no cost (contrarian data).
      {"U2", "T1", Technique::kCostBased, 10, 100, 50, 1},
      {"U2", "T1", Technique::kNoCost, 50, 10, 2, 5},
  };
  for (const auto& r : kRuns) {
    UserRunRecord record;
    record.user = r.user;
    record.task = r.task;
    record.technique = r.technique;
    record.estimated_cost = r.est;
    record.actual_cost_all = r.all;
    record.actual_cost_one = r.one;
    record.relevant_found = r.relevant;
    record.result_size = 100;
    record.paper_assignment = true;
    result.records.push_back(record);
  }
  EXPECT_EQ(result.Select("T1", Technique::kCostBased).size(), 2u);
  EXPECT_EQ(result.Select("T2", Technique::kNoCost).size(), 1u);
  EXPECT_TRUE(result.Select("T3", Technique::kCostBased).empty());

  const auto u1 = result.UserPearson("U1");
  ASSERT_TRUE(u1.ok());
  EXPECT_GT(u1.value(), 0.99);
  EXPECT_FALSE(result.UserPearson("U9").ok());  // no runs

  const auto votes = result.SurveyVotes();
  ASSERT_EQ(votes.size(), 2u);
  EXPECT_EQ(votes.at(Technique::kCostBased), 1u);  // U1
  EXPECT_EQ(votes.at(Technique::kNoCost), 1u);     // U2
}

TEST(UserStudyResultTest, UserPearsonUsesOnlyRotationRuns) {
  UserStudyResult result;
  // Two rotation runs perfectly correlated; one factorial-only run that
  // would destroy the correlation if it were included.
  UserRunRecord a;
  a.user = "U1";
  a.task = "T1";
  a.estimated_cost = 10;
  a.actual_cost_all = 10;
  a.paper_assignment = true;
  UserRunRecord b = a;
  b.task = "T2";
  b.estimated_cost = 20;
  b.actual_cost_all = 20;
  UserRunRecord outlier = a;
  outlier.task = "T3";
  outlier.estimated_cost = 30;
  outlier.actual_cost_all = -1000;
  outlier.paper_assignment = false;
  result.records = {a, b, outlier};
  const auto r = result.UserPearson("U1");
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), 1.0, 1e-12);
}

TEST(TechniqueFactoryTest, CostBasedIgnoresPredefinedSet) {
  // The cost-based technique derives candidates from the schema plus the
  // usage threshold; the baselines take the predefined set.
  StudyConfig config = DefaultStudyConfig();
  config.predefined_attributes = {"price"};
  Workload empty;
  const auto schema = HomesGenerator::ListPropertySchema();
  ASSERT_TRUE(schema.ok());
  const auto stats =
      WorkloadStats::Build(empty, schema.value(), config.stats);
  ASSERT_TRUE(stats.ok());
  const auto cost_based =
      MakeTechnique(Technique::kCostBased, &stats.value(), config, 1);
  const auto* concrete =
      dynamic_cast<const CostBasedCategorizer*>(cost_based.get());
  ASSERT_NE(concrete, nullptr);
  EXPECT_TRUE(concrete->options().candidate_attributes.empty());
}

}  // namespace
}  // namespace autocat
