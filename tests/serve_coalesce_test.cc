// In-flight request coalescing (serve/coalesce.h, DESIGN.md §14):
// registry unit tests for the epoch-versioned flight slot, a
// burst-of-identical-requests stress run driven through the service's
// on_cold_execute hook (run under TSan in CI's serve leg), the
// PutTable-races-a-flight regression, and the serve-level
// pipeline-vs-legacy bit-identical-responses gate.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/cache.h"
#include "serve/coalesce.h"
#include "serve/service.h"
#include "storage/table.h"

#include "equivalence_fixture.h"

namespace autocat {
namespace {

using Kind = CoalesceTicket::Kind;

std::shared_ptr<const CachedCategorization> MakePayload() {
  auto schema = Schema::Create(
      {ColumnDef("x", ValueType::kInt64, ColumnKind::kNumeric)});
  EXPECT_TRUE(schema.ok());
  auto built = CachedCategorization::Build(
      Table(std::move(schema).value()),
      [](const Table& t) -> Result<CategoryTree> {
        return CategoryTree(&t);
      });
  EXPECT_TRUE(built.ok());
  return std::move(built).value();
}

// ------------------------------------------------------- registry units

TEST(CoalescingRegistryTest, LeaderThenFollowerSharesThePublishedPayload) {
  CoalescingRegistry registry;
  const CoalesceTicket leader = registry.JoinOrLead("k", 7);
  ASSERT_EQ(leader.kind, Kind::kLeader);
  ASSERT_NE(leader.flight, nullptr);
  EXPECT_EQ(leader.flight->epoch, 7u);

  const CoalesceTicket follower = registry.JoinOrLead("k", 7);
  ASSERT_EQ(follower.kind, Kind::kFollower);
  EXPECT_EQ(follower.flight, leader.flight);

  const auto payload = MakePayload();
  {
    PublishGuard guard(&registry, "k", leader.flight);
    guard.Publish(Status::OK(), payload, 7);
  }
  const AwaitOutcome out = registry.Await(*follower.flight, -1);
  EXPECT_TRUE(out.completed);
  EXPECT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_EQ(out.payload.get(), payload.get());
  EXPECT_EQ(out.computed_epoch, 7u);

  // Publishing releases the slot: the next arrival leads a fresh flight.
  const CoalesceTicket next = registry.JoinOrLead("k", 8);
  EXPECT_EQ(next.kind, Kind::kLeader);
  EXPECT_NE(next.flight, leader.flight);
  PublishGuard cleanup(&registry, "k", next.flight);
}

TEST(CoalescingRegistryTest, EpochMismatchStepsAsideInsteadOfFollowing) {
  CoalescingRegistry registry;
  const CoalesceTicket leader = registry.JoinOrLead("k", 1);
  ASSERT_EQ(leader.kind, Kind::kLeader);
  // A request that observed a different cache epoch must not share the
  // flight's result — it executes solo, uncoalesced.
  const CoalesceTicket solo = registry.JoinOrLead("k", 2);
  EXPECT_EQ(solo.kind, Kind::kSolo);
  EXPECT_EQ(solo.flight, nullptr);
  PublishGuard cleanup(&registry, "k", leader.flight);
}

TEST(CoalescingRegistryTest, AwaitTimesOutAndGuardAbortPublishesFailure) {
  CoalescingRegistry registry;
  const CoalesceTicket leader = registry.JoinOrLead("k", 1);
  const CoalesceTicket follower = registry.JoinOrLead("k", 1);
  ASSERT_EQ(follower.kind, Kind::kFollower);

  const AwaitOutcome timed_out = registry.Await(*follower.flight, 20);
  EXPECT_FALSE(timed_out.completed);

  // A leader that exits without publishing (error, retry-for-stats) must
  // wake its followers with a failure, not leave them blocked.
  { PublishGuard guard(&registry, "k", leader.flight); }
  const AwaitOutcome aborted = registry.Await(*follower.flight, -1);
  EXPECT_TRUE(aborted.completed);
  EXPECT_EQ(aborted.status.code(), StatusCode::kInternal);
  EXPECT_EQ(aborted.payload, nullptr);
}

TEST(CoalescingRegistryTest, WaitingGaugeTracksBlockedFollowers) {
  CoalescingRegistry registry;
  const CoalesceTicket leader = registry.JoinOrLead("k", 1);
  const CoalesceTicket follower = registry.JoinOrLead("k", 1);
  ASSERT_EQ(follower.kind, Kind::kFollower);
  EXPECT_EQ(registry.waiting(), 0u);

  std::future<AwaitOutcome> waiter = std::async(
      std::launch::async,
      [&registry, &follower] { return registry.Await(*follower.flight, -1); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (registry.waiting() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(registry.waiting(), 1u);

  const auto payload = MakePayload();
  {
    PublishGuard guard(&registry, "k", leader.flight);
    guard.Publish(Status::OK(), payload, 1);
  }
  const AwaitOutcome out = waiter.get();
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.payload.get(), payload.get());
  EXPECT_EQ(registry.waiting(), 0u);
}

// ------------------------------------------------------ service fixture

Schema HomesSchema() {
  auto schema = Schema::Create({
      ColumnDef("neighborhood", ValueType::kString,
                ColumnKind::kCategorical),
      ColumnDef("price", ValueType::kInt64, ColumnKind::kNumeric),
      ColumnDef("bedroomcount", ValueType::kInt64, ColumnKind::kNumeric),
  });
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

Table HomesTable(size_t rows) {
  const char* kNeighborhoods[] = {"Redmond", "Bellevue", "Seattle",
                                  "Issaquah"};
  Table table(HomesSchema());
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(table
                    .AppendRow({Value(kNeighborhoods[i % 4]),
                                Value(static_cast<int64_t>(
                                    150000 + 5000 * (i % 37))),
                                Value(static_cast<int64_t>(1 + i % 5))})
                    .ok());
  }
  return table;
}

Workload HomesWorkload() {
  const std::vector<std::string> sqls = {
      "SELECT * FROM Homes WHERE neighborhood = 'Redmond'",
      "SELECT * FROM Homes WHERE neighborhood IN ('Redmond', 'Bellevue')",
      "SELECT * FROM Homes WHERE price BETWEEN 150000 AND 250000",
      "SELECT * FROM Homes WHERE price <= 300000 AND bedroomcount >= 2",
      "SELECT * FROM Homes WHERE neighborhood = 'Seattle' AND price >= "
      "200000",
  };
  WorkloadParseReport report;
  Workload workload = Workload::Parse(sqls, HomesSchema(), &report);
  EXPECT_EQ(report.parsed, sqls.size());
  return workload;
}

std::unique_ptr<CategorizationService> MakeService(ServiceOptions options,
                                                   size_t rows = 40) {
  Database db;
  EXPECT_TRUE(db.RegisterTable("Homes", HomesTable(rows)).ok());
  if (options.stats.split_intervals.empty()) {
    options.stats.split_intervals["price"] = 5000;
  }
  return std::make_unique<CategorizationService>(
      std::move(db), HomesWorkload(), std::move(options));
}

// --------------------------------------------------- coalescing stress

TEST(ServiceCoalescingTest, BurstOfIdenticalRequestsCoalesces) {
  constexpr size_t kBurst = 8;
  CategorizationService* service_ptr = nullptr;
  std::atomic<bool> armed{false};
  std::atomic<int> cold_calls{0};
  ServiceOptions options;
  options.max_concurrent = kBurst;
  options.on_cold_execute = [&](const std::string&) {
    if (!armed.load()) {
      return;
    }
    if (cold_calls.fetch_add(1) == 0) {
      // Leader: hold the execution open until every follower is parked
      // on the flight, so the burst coalesces deterministically.
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (std::chrono::steady_clock::now() < deadline &&
             service_ptr->SnapshotMetrics().coalescing_waiting <
                 kBurst - 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  };
  auto service = MakeService(std::move(options));
  service_ptr = service.get();

  // Pre-warm the per-table workload stats so every burst thread reaches
  // the coalescing slot on its first pass.
  ServeRequest warm;
  warm.sql = "SELECT * FROM Homes WHERE price <= 160000";
  ASSERT_TRUE(service->Handle(warm).ok());
  armed.store(true);
  // The warm-up led its own (uncontended) flight; count from here.
  const ServiceMetricsSnapshot before = service->SnapshotMetrics();

  ServeRequest request;
  request.sql = "SELECT * FROM Homes WHERE price <= 300000";
  std::vector<std::future<Result<ServeResponse>>> futures;
  futures.reserve(kBurst);
  for (size_t i = 0; i < kBurst; ++i) {
    futures.push_back(std::async(std::launch::async, [&service, &request] {
      return service->Handle(request);
    }));
  }
  std::vector<ServeResponse> responses;
  for (auto& future : futures) {
    auto response = future.get();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    responses.push_back(std::move(response).value());
  }

  // One execution answered the whole burst with one shared payload.
  EXPECT_EQ(cold_calls.load(), 1);
  for (const ServeResponse& response : responses) {
    EXPECT_FALSE(response.cache_hit);
    EXPECT_EQ(response.payload.get(), responses.front().payload.get());
    EXPECT_EQ(response.signature, responses.front().signature);
  }
  const ServiceMetricsSnapshot snapshot = service->SnapshotMetrics();
  EXPECT_EQ(snapshot.coalesced_leaders - before.coalesced_leaders, 1u);
  EXPECT_EQ(snapshot.coalesced_hits - before.coalesced_hits, kBurst - 1);
  EXPECT_EQ(snapshot.coalescing_waiting, 0u);

  // The leader inserted the entry: the next identical request plain-hits.
  auto hit = service->Handle(request);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);
}

TEST(ServiceCoalescingTest, PutTableMidFlightForcesSoloRetry) {
  CategorizationService* service_ptr = nullptr;
  std::atomic<bool> armed{false};
  std::atomic<int> cold_calls{0};
  ServiceOptions options;
  options.on_cold_execute = [&](const std::string&) {
    if (!armed.load()) {
      return;
    }
    if (cold_calls.fetch_add(1) == 0) {
      // Leader: wait for the follower to park, then swap the table out
      // from under the flight. The leader's execution now runs under a
      // newer cache epoch than the flight was keyed on, so the follower
      // must refuse the published payload and retry solo.
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (std::chrono::steady_clock::now() < deadline &&
             service_ptr->SnapshotMetrics().coalescing_waiting < 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      service_ptr->PutTable("Homes", HomesTable(80));
    }
  };
  auto service = MakeService(std::move(options), /*rows=*/40);
  service_ptr = service.get();

  ServeRequest warm;
  warm.sql = "SELECT * FROM Homes WHERE price <= 160000";
  ASSERT_TRUE(service->Handle(warm).ok());
  armed.store(true);
  const ServiceMetricsSnapshot before = service->SnapshotMetrics();

  ServeRequest request;
  request.sql = "SELECT * FROM Homes WHERE bedroomcount >= 1";
  auto a = std::async(std::launch::async, [&service, &request] {
    return service->Handle(request);
  });
  auto b = std::async(std::launch::async, [&service, &request] {
    return service->Handle(request);
  });
  const auto ra = a.get();
  const auto rb = b.get();
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();

  // Both answers must reflect the swapped-in 80-row table — a stale
  // coalesced payload would report the old 40 rows.
  EXPECT_EQ(ra->payload->result_rows(), 80u);
  EXPECT_EQ(rb->payload->result_rows(), 80u);

  const ServiceMetricsSnapshot snapshot = service->SnapshotMetrics();
  EXPECT_EQ(snapshot.coalesced_hits - before.coalesced_hits, 0u)
      << "a follower accepted a payload computed under a different epoch";
  // At least the burst's first flight; the PutTable also drops the
  // per-table stats, so the leader may re-lead a fresh flight after the
  // rebuild pass.
  EXPECT_GE(snapshot.coalesced_leaders - before.coalesced_leaders, 1u);
  EXPECT_GE(cold_calls.load(), 2);
}

TEST(ServiceCoalescingTest, BypassCacheNeverCoalesces) {
  std::atomic<int> cold_calls{0};
  ServiceOptions options;
  options.on_cold_execute = [&](const std::string&) {
    cold_calls.fetch_add(1);
  };
  auto service = MakeService(std::move(options));

  // Warm the per-table stats (a stats-rebuild pass re-enters the hook,
  // which would skew the bypass count below).
  ServeRequest warm;
  warm.sql = "SELECT * FROM Homes WHERE price <= 160000";
  ASSERT_TRUE(service->Handle(warm).ok());
  const int base = cold_calls.load();
  const ServiceMetricsSnapshot before = service->SnapshotMetrics();

  ServeRequest request;
  request.sql = "SELECT * FROM Homes WHERE price <= 300000";
  request.bypass_cache = true;
  ASSERT_TRUE(service->Handle(request).ok());
  ASSERT_TRUE(service->Handle(request).ok());

  EXPECT_EQ(cold_calls.load() - base, 2);
  const ServiceMetricsSnapshot snapshot = service->SnapshotMetrics();
  EXPECT_EQ(snapshot.coalesced_leaders - before.coalesced_leaders, 0u);
  EXPECT_EQ(snapshot.coalesced_hits - before.coalesced_hits, 0u);
}

// ------------------------------------- pipeline-vs-legacy serve responses

TEST(ServiceCoalescingTest, PipelineAndLegacyServeBitIdenticalResponses) {
  ServiceOptions pipelined;
  pipelined.use_pipeline = true;
  ServiceOptions legacy;
  legacy.use_pipeline = false;
  auto a = MakeService(std::move(pipelined), /*rows=*/150);
  auto b = MakeService(std::move(legacy), /*rows=*/150);

  const std::vector<std::string> sqls = {
      "SELECT * FROM Homes WHERE neighborhood = 'Redmond'",
      "SELECT * FROM Homes WHERE price BETWEEN 150000 AND 250000",
      "SELECT * FROM Homes WHERE price <= 300000 AND bedroomcount >= 2",
      "SELECT neighborhood, price FROM Homes WHERE bedroomcount >= 3",
      "SELECT * FROM Homes WHERE bedroomcount >= 99",  // empty result
  };
  for (const std::string& sql : sqls) {
    ServeRequest request;
    request.sql = sql;
    auto pa = a->Handle(request);
    auto pb = b->Handle(request);
    ASSERT_TRUE(pa.ok()) << sql << ": " << pa.status().ToString();
    ASSERT_TRUE(pb.ok()) << sql << ": " << pb.status().ToString();
    EXPECT_EQ(pa->signature, pb->signature) << sql;
    equiv::ExpectTablesBitIdentical(pb->payload->result(),
                                    pa->payload->result(), sql);
    EXPECT_EQ(pa->payload->tree().Render(1000, 0),
              pb->payload->tree().Render(1000, 0))
        << sql;
    // The sink's incremental byte accounting must agree with the scan
    // the legacy path runs over the finished table.
    EXPECT_EQ(pa->payload->approx_bytes(), pb->payload->approx_bytes())
        << sql;
  }
  const ServiceMetricsSnapshot sa = a->SnapshotMetrics();
  const ServiceMetricsSnapshot sb = b->SnapshotMetrics();
  EXPECT_GT(sa.pipeline_requests, 0u);
  EXPECT_GT(sa.pipeline_morsels, 0u);
  EXPECT_EQ(sb.pipeline_requests, 0u);
}

}  // namespace
}  // namespace autocat
