// Scenario-harness tests (src/workloadgen/harness.*), including the
// drift-recovery acceptance gate: the drifting scenario must show the
// cache hit-rate degrading under intent drift, and the adaptive serving
// knobs must recover at least 30% of the lost hit-rate. All runs use
// threads=1 (strictly sequential replay), so every counter asserted here
// is exactly reproducible.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "workloadgen/harness.h"
#include "workloadgen/scenario.h"

namespace autocat {
namespace {

HarnessOptions Sequential() {
  HarnessOptions options;
  options.threads = 1;
  return options;
}

HarnessOptions Adaptive() {
  HarnessOptions options;
  options.threads = 1;
  options.adaptive = true;
  options.adapt_every = 64;
  return options;
}

double DriftPhaseMean(const ScenarioReport& report) {
  double sum = 0;
  size_t n = 0;
  for (const PhaseReport& phase : report.phases) {
    if (phase.name.rfind("drift", 0) == 0) {
      sum += phase.hit_rate;
      ++n;
    }
  }
  EXPECT_GT(n, 0u) << "no drift phases in scenario " << report.scenario;
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

TEST(WorkloadHarnessTest, TrainQueriesAreDeterministicAndSplit) {
  auto spec = BuiltinScenario("steady");
  ASSERT_TRUE(spec.ok());
  const std::vector<std::string> a =
      ScenarioHarness::TrainQueries(spec.value());
  const std::vector<std::string> b =
      ScenarioHarness::TrainQueries(spec.value());
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());

  // train_fraction 0.5 keeps about half the pool; a different fraction
  // keeps a proportionally different slice of the same pool.
  ScenarioSpec quarter = spec.value();
  quarter.train_fraction = 0.25;
  const std::vector<std::string> c = ScenarioHarness::TrainQueries(quarter);
  EXPECT_LT(c.size(), a.size());
  EXPECT_GT(c.size(), a.size() / 4);
}

TEST(WorkloadHarnessTest, SteadyScenarioWarmsTheCache) {
  auto spec = BuiltinScenario("steady");
  ASSERT_TRUE(spec.ok());
  auto report = ScenarioHarness::Run(spec.value(), Sequential());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->phases.size(), spec->phases.size());
  for (size_t p = 0; p < report->phases.size(); ++p) {
    EXPECT_EQ(report->phases[p].name, spec->phases[p].name);
    EXPECT_EQ(report->phases[p].requests, spec->phases[p].requests);
    EXPECT_EQ(report->phases[p].hits + report->phases[p].misses,
              report->phases[p].requests)
        << "sequential replay must answer every request";
    EXPECT_EQ(report->phases[p].errors, 0u);
    EXPECT_GT(report->phases[p].distinct_signatures, 0u);
  }
  // A session-coherent stream revisits signatures: steady state must be
  // warmer than the opening phase.
  auto warm = report->PhaseHitRate("warm");
  auto steady = report->PhaseHitRate("steady");
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(steady.ok());
  EXPECT_GT(steady.value(), warm.value());
  EXPECT_GT(steady.value(), 0.5);

  EXPECT_FALSE(report->PhaseHitRate("no-such-phase").ok());
}

TEST(WorkloadHarnessTest, RunsAreExactlyReproducible) {
  auto spec = BuiltinScenario("skewed");
  ASSERT_TRUE(spec.ok());
  auto a = ScenarioHarness::Run(spec.value(), Sequential());
  auto b = ScenarioHarness::Run(spec.value(), Sequential());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->phases.size(), b->phases.size());
  for (size_t p = 0; p < a->phases.size(); ++p) {
    EXPECT_EQ(a->phases[p].hits, b->phases[p].hits);
    EXPECT_EQ(a->phases[p].misses, b->phases[p].misses);
    EXPECT_EQ(a->phases[p].distinct_signatures,
              b->phases[p].distinct_signatures);
  }
}

TEST(WorkloadHarnessTest, ReportJsonCarriesTheSchema) {
  auto spec = BuiltinScenario("steady");
  ASSERT_TRUE(spec.ok());
  auto report = ScenarioHarness::Run(spec.value(), Sequential());
  ASSERT_TRUE(report.ok());
  const std::string json = report->ToJson();
  for (const char* key :
       {"\"scenario\":", "\"adaptive\":", "\"adaptive_actions\":",
        "\"phases\":", "\"hit_rate\":", "\"distinct_signatures\":",
        "\"latency_ms\":", "\"p50\":", "\"p99\":", "\"service_metrics\":",
        "\"overloaded\":", "\"deadline_exceeded\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(WorkloadHarnessTest, RejectsPhaselessSpec) {
  ScenarioSpec spec;
  spec.name = "empty";
  EXPECT_FALSE(ScenarioHarness::Run(spec, Sequential()).ok());
}

// The acceptance gate (ISSUE 7): measurable degradation under drift, and
// the adaptive TTL/snap knobs recovering >= 30% of the lost hit-rate.
// Numbers are recorded in EXPERIMENTS.md ("Workload scenarios" table).
TEST(WorkloadHarnessTest, DriftGateAdaptiveKnobsRecoverHitRate) {
  auto spec = BuiltinScenario("drifting");
  ASSERT_TRUE(spec.ok());

  auto fixed = ScenarioHarness::Run(spec.value(), Sequential());
  ASSERT_TRUE(fixed.ok()) << fixed.status().ToString();
  auto steady = fixed->PhaseHitRate("steady");
  ASSERT_TRUE(steady.ok());
  const double h_steady = steady.value();
  const double h_drift = DriftPhaseMean(fixed.value());

  // Gate 1: rolling intent drift measurably degrades the hit rate.
  EXPECT_GT(h_steady - h_drift, 0.10)
      << "h_steady=" << h_steady << " h_drift=" << h_drift;

  auto adapted = ScenarioHarness::Run(spec.value(), Adaptive());
  ASSERT_TRUE(adapted.ok()) << adapted.status().ToString();
  EXPECT_GT(adapted->adaptive_actions, 0u);
  const double h_adapt = DriftPhaseMean(adapted.value());

  // Gate 2: the snap-width/TTL/capacity loop claws back >= 30% of it.
  const double lost = h_steady - h_drift;
  const double recovered = h_adapt - h_drift;
  EXPECT_GE(recovered, 0.30 * lost)
      << "h_steady=" << h_steady << " h_drift=" << h_drift
      << " h_adapt=" << h_adapt << " (recovered "
      << (lost > 0 ? recovered / lost : 0) << " of the loss)";
}

TEST(WorkloadHarnessTest, AdaptiveRunReportsActionsInMetrics) {
  auto spec = BuiltinScenario("drifting");
  ASSERT_TRUE(spec.ok());
  auto report = ScenarioHarness::Run(spec.value(), Adaptive());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->adaptive);
  EXPECT_GT(report->adaptive_actions, 0u);
  EXPECT_NE(report->service_metrics_json.find("\"adaptive\":{"),
            std::string::npos);
  EXPECT_NE(report->service_metrics_json.find("\"observed_requests\":"),
            std::string::npos);
}

}  // namespace
}  // namespace autocat
