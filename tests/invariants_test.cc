// Analytical invariants: monotonicity and bounds of the probability
// estimator, the cost models, and the range algebra, checked over
// randomized inputs.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/categorizer.h"
#include "core/cost_model.h"
#include "core/probability.h"
#include "test_util.h"

namespace autocat {
namespace {

using test::HomesTable;
using test::StatsFromSql;

std::vector<std::string> RandomWorkloadSql(Random& rng, int queries) {
  static const char* kNeighborhoods[] = {"a", "b", "c", "d"};
  std::vector<std::string> sqls;
  for (int i = 0; i < queries; ++i) {
    if (rng.Bernoulli(0.5)) {
      const int64_t lo = rng.Uniform(0, 8) * 1000;
      sqls.push_back("SELECT * FROM homes WHERE price BETWEEN " +
                     std::to_string(lo) + " AND " +
                     std::to_string(lo + rng.Uniform(1, 4) * 1000));
    } else {
      sqls.push_back(
          std::string("SELECT * FROM homes WHERE neighborhood = '") +
          kNeighborhoods[rng.Uniform(0, 3)] + "'");
    }
  }
  return sqls;
}

// ------------------------------------------------ estimator monotonicity

class EstimatorMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(EstimatorMonotonicityTest, WiderLabelsNeverLoseOverlap) {
  Random rng(static_cast<uint64_t>(GetParam()) * 2718);
  const WorkloadStats stats = StatsFromSql(RandomWorkloadSql(rng, 30));
  const Schema schema = test::HomesSchema();
  const ProbabilityEstimator estimator(&stats, &schema);

  for (int trial = 0; trial < 30; ++trial) {
    // Numeric: a label contained in another has <= its NOverlap.
    const double lo = static_cast<double>(rng.Uniform(0, 8) * 1000);
    const double hi = lo + static_cast<double>(rng.Uniform(1, 4) * 1000);
    const double wider_lo = lo - static_cast<double>(rng.Uniform(0, 2) * 1000);
    const double wider_hi = hi + static_cast<double>(rng.Uniform(0, 2) * 1000);
    EXPECT_LE(estimator.NOverlap(CategoryLabel::Numeric("price", lo, hi)),
              estimator.NOverlap(
                  CategoryLabel::Numeric("price", wider_lo, wider_hi)));
    // Categorical: adding values never reduces NOverlap.
    const auto narrow =
        CategoryLabel::Categorical("neighborhood", {Value("a")});
    const auto wide = CategoryLabel::Categorical(
        "neighborhood", {Value("a"), Value("b"), Value("c")});
    EXPECT_LE(estimator.NOverlap(narrow), estimator.NOverlap(wide));
  }
}

TEST_P(EstimatorMonotonicityTest, ProbabilitiesBounded) {
  Random rng(static_cast<uint64_t>(GetParam()) * 31337);
  const WorkloadStats stats = StatsFromSql(RandomWorkloadSql(rng, 25));
  const Schema schema = test::HomesSchema();
  const ProbabilityEstimator estimator(&stats, &schema);
  for (int trial = 0; trial < 50; ++trial) {
    const double lo = rng.UniformReal(-5000, 15000);
    const double hi = lo + rng.UniformReal(0, 10000);
    const double p = estimator.ExplorationProbability(
        CategoryLabel::Numeric("price", lo, hi));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    const double pw = estimator.ShowTuplesProbability("price");
    EXPECT_GE(pw, 0.0);
    EXPECT_LE(pw, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorMonotonicityTest,
                         ::testing::Range(1, 7));

// ----------------------------------------------------- cost-model bounds

struct CostFixture {
  Table table;
  WorkloadStats stats;
  Schema schema = test::HomesSchema();
  CategoryTree tree;

  static CostFixture Make(uint64_t seed) {
    Random rng(seed);
    std::vector<test::HomeRow> rows;
    const char* kNeighborhoods[] = {"a", "b", "c", "d"};
    for (int i = 0; i < 200; ++i) {
      rows.push_back(test::HomeRow{kNeighborhoods[rng.Uniform(0, 3)],
                                   rng.Uniform(0, 9) * 1000,
                                   rng.Uniform(1, 6)});
    }
    Table table = HomesTable(rows);
    WorkloadStats stats = StatsFromSql(RandomWorkloadSql(rng, 30));
    CategorizerOptions options;
    options.max_tuples_per_category = 12;
    options.attribute_usage_threshold = 0.0;
    options.candidate_attributes = {"neighborhood", "price",
                                    "bedroomcount"};
    const CostBasedCategorizer categorizer(&stats, options);
    auto tree = categorizer.Categorize(table, nullptr);
    EXPECT_TRUE(tree.ok());
    return CostFixture{std::move(table), std::move(stats),
                       test::HomesSchema(), std::move(tree).value()};
  }
};

class CostModelBoundsTest : public ::testing::TestWithParam<int> {};

TEST_P(CostModelBoundsTest, CostAllMonotoneInK) {
  const CostFixture fixture =
      CostFixture::Make(static_cast<uint64_t>(GetParam()));
  const ProbabilityEstimator estimator(&fixture.stats, &fixture.schema);
  double previous = -1;
  for (const double k : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    const CostModel model(&estimator, CostModelParams{k, 0.5});
    const double cost = model.CostAll(fixture.tree);
    EXPECT_GE(cost, previous) << "k = " << k;
    previous = cost;
  }
}

TEST_P(CostModelBoundsTest, CostOneMonotoneInFrac) {
  const CostFixture fixture =
      CostFixture::Make(static_cast<uint64_t>(GetParam()) + 50);
  const ProbabilityEstimator estimator(&fixture.stats, &fixture.schema);
  double previous = -1;
  for (const double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const CostModel model(&estimator, CostModelParams{1.0, frac});
    const double cost = model.CostOne(fixture.tree);
    EXPECT_GE(cost, previous) << "frac = " << frac;
    previous = cost;
  }
}

TEST_P(CostModelBoundsTest, CostOneNeverExceedsCostAll) {
  const CostFixture fixture =
      CostFixture::Make(static_cast<uint64_t>(GetParam()) + 100);
  const ProbabilityEstimator estimator(&fixture.stats, &fixture.schema);
  const CostModel model(&estimator, CostModelParams{1.0, 0.5});
  EXPECT_LE(model.CostOne(fixture.tree),
            model.CostAll(fixture.tree) + 1e-9);
}

TEST_P(CostModelBoundsTest, CostAllNonNegativeAndFinite) {
  const CostFixture fixture =
      CostFixture::Make(static_cast<uint64_t>(GetParam()) + 150);
  const ProbabilityEstimator estimator(&fixture.stats, &fixture.schema);
  const CostModel model(&estimator, CostModelParams{1.0, 0.5});
  for (NodeId id = 0;
       id < static_cast<NodeId>(fixture.tree.num_nodes()); ++id) {
    const double cost = model.CostAll(fixture.tree, id);
    EXPECT_GE(cost, 0.0);
    EXPECT_TRUE(std::isfinite(cost));
    // A subtree's cost never exceeds browsing it flat plus reading every
    // label in it once (SHOWCAT mixes in label overhead, SHOWTUPLES the
    // tuples; probabilities only shrink terms).
    size_t subtree_labels = 0;
    for (NodeId other = 0;
         other < static_cast<NodeId>(fixture.tree.num_nodes()); ++other) {
      // Count descendants of id (walk up the parent chain).
      NodeId cur = other;
      while (cur > 0 && cur != id) {
        cur = fixture.tree.node(cur).parent;
      }
      if (cur == id && other != id) {
        ++subtree_labels;
      }
    }
    EXPECT_LE(cost,
              static_cast<double>(fixture.tree.node(id).tset_size()) +
                  static_cast<double>(subtree_labels) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostModelBoundsTest,
                         ::testing::Range(1, 7));

// -------------------------------------------------------- range algebra

class RangeAlgebraTest : public ::testing::TestWithParam<int> {};

NumericRange RandomRange(Random& rng) {
  NumericRange r;
  if (rng.Bernoulli(0.85)) {
    r.lo = static_cast<double>(rng.Uniform(-10, 10));
  }
  if (rng.Bernoulli(0.85)) {
    r.hi = r.lo + static_cast<double>(rng.Uniform(-2, 15));
    if (!std::isfinite(r.lo)) {
      r.hi = static_cast<double>(rng.Uniform(-10, 10));
    }
  }
  r.lo_inclusive = rng.Bernoulli(0.5);
  r.hi_inclusive = rng.Bernoulli(0.5);
  return r;
}

TEST_P(RangeAlgebraTest, IntersectIsCommutativeAndSound) {
  Random rng(static_cast<uint64_t>(GetParam()) * 17);
  for (int trial = 0; trial < 200; ++trial) {
    const NumericRange a = RandomRange(rng);
    const NumericRange b = RandomRange(rng);
    const NumericRange ab = a.Intersect(b);
    const NumericRange ba = b.Intersect(a);
    EXPECT_EQ(ab.lo, ba.lo);
    EXPECT_EQ(ab.hi, ba.hi);
    EXPECT_EQ(ab.lo_inclusive, ba.lo_inclusive);
    EXPECT_EQ(ab.hi_inclusive, ba.hi_inclusive);
    // Soundness: x in a∩b iff x in a and x in b, sampled.
    for (int s = 0; s < 20; ++s) {
      const double x = rng.UniformReal(-12, 25);
      EXPECT_EQ(ab.Contains(x), a.Contains(x) && b.Contains(x))
          << "x = " << x << " a=" << a.ToString() << " b=" << b.ToString();
    }
  }
}

TEST_P(RangeAlgebraTest, HullContainsBothInputs) {
  Random rng(static_cast<uint64_t>(GetParam()) * 23);
  for (int trial = 0; trial < 200; ++trial) {
    const NumericRange a = RandomRange(rng);
    const NumericRange b = RandomRange(rng);
    const NumericRange hull = a.Hull(b);
    for (int s = 0; s < 20; ++s) {
      const double x = rng.UniformReal(-12, 25);
      if (a.Contains(x) || b.Contains(x)) {
        EXPECT_TRUE(hull.Contains(x))
            << "x = " << x << " a=" << a.ToString()
            << " b=" << b.ToString();
      }
    }
  }
}

TEST_P(RangeAlgebraTest, OverlapsClosedAgreesWithSampling) {
  Random rng(static_cast<uint64_t>(GetParam()) * 29);
  for (int trial = 0; trial < 200; ++trial) {
    const NumericRange r = RandomRange(rng);
    const double a = static_cast<double>(rng.Uniform(-10, 15));
    const double b = a + static_cast<double>(rng.Uniform(0, 10));
    // Dense integer+half sampling of [a, b] approximates the truth on
    // our integer-endpoint ranges.
    bool sampled = false;
    for (double x = a; x <= b + 1e-12; x += 0.5) {
      if (r.Contains(x)) {
        sampled = true;
        break;
      }
    }
    EXPECT_EQ(r.OverlapsClosed(a, b), sampled)
        << r.ToString() << " vs [" << a << ", " << b << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeAlgebraTest, ::testing::Range(1, 7));

}  // namespace
}  // namespace autocat
