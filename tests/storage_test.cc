// Tests for the storage substrate: Schema, Table, column stats, CSV.

#include <gtest/gtest.h>

#include "storage/column_stats.h"
#include "storage/csv.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace autocat {
namespace {

Schema TestSchema() {
  auto schema = Schema::Create({
      ColumnDef("name", ValueType::kString, ColumnKind::kCategorical),
      ColumnDef("price", ValueType::kInt64, ColumnKind::kNumeric),
      ColumnDef("score", ValueType::kDouble, ColumnKind::kNumeric),
  });
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

Table TestTable() {
  Table table(TestSchema());
  EXPECT_TRUE(table.AppendRow({Value("a"), Value(100), Value(1.5)}).ok());
  EXPECT_TRUE(table.AppendRow({Value("b"), Value(200), Value(2.5)}).ok());
  EXPECT_TRUE(table.AppendRow({Value("a"), Value(300), Value()}).ok());
  EXPECT_TRUE(table.AppendRow({Value("c"), Value(150), Value(0.5)}).ok());
  return table;
}

// ------------------------------------------------------------------ schema

TEST(SchemaTest, CreateAndLookup) {
  const Schema schema = TestSchema();
  EXPECT_EQ(schema.num_columns(), 3u);
  EXPECT_EQ(schema.column(0).name, "name");
  ASSERT_TRUE(schema.ColumnIndex("price").ok());
  EXPECT_EQ(schema.ColumnIndex("price").value(), 1u);
  EXPECT_EQ(schema.ColumnIndex("PRICE").value(), 1u);  // case-insensitive
  EXPECT_FALSE(schema.ColumnIndex("bogus").ok());
  EXPECT_TRUE(schema.HasColumn("Score"));
  EXPECT_FALSE(schema.HasColumn("scores"));
}

TEST(SchemaTest, RejectsDuplicateNames) {
  EXPECT_FALSE(Schema::Create({
                    ColumnDef("a", ValueType::kString,
                              ColumnKind::kCategorical),
                    ColumnDef("A", ValueType::kInt64, ColumnKind::kNumeric),
                })
                   .ok());
}

TEST(SchemaTest, RejectsEmptyName) {
  EXPECT_FALSE(
      Schema::Create(
          {ColumnDef("", ValueType::kString, ColumnKind::kCategorical)})
          .ok());
}

TEST(SchemaTest, RejectsNonNumericTypeForNumericKind) {
  EXPECT_FALSE(
      Schema::Create(
          {ColumnDef("x", ValueType::kString, ColumnKind::kNumeric)})
          .ok());
}

TEST(SchemaTest, EqualityIgnoresCase) {
  auto a = Schema::Create(
      {ColumnDef("Alpha", ValueType::kInt64, ColumnKind::kNumeric)});
  auto b = Schema::Create(
      {ColumnDef("alpha", ValueType::kInt64, ColumnKind::kNumeric)});
  EXPECT_TRUE(a.value() == b.value());
}

TEST(SchemaTest, ToStringMentionsKinds) {
  const std::string s = TestSchema().ToString();
  EXPECT_NE(s.find("categorical"), std::string::npos);
  EXPECT_NE(s.find("numeric"), std::string::npos);
}

// ------------------------------------------------------------------- table

TEST(TableTest, AppendValidatesArity) {
  Table table(TestSchema());
  EXPECT_FALSE(table.AppendRow({Value("a"), Value(1)}).ok());
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST(TableTest, AppendValidatesTypes) {
  Table table(TestSchema());
  EXPECT_FALSE(
      table.AppendRow({Value("a"), Value("oops"), Value(1.0)}).ok());
  EXPECT_FALSE(table.AppendRow({Value(1), Value(1), Value(1.0)}).ok());
}

TEST(TableTest, AppendCoercesNumerics) {
  Table table(TestSchema());
  // int into double column, whole double into int column.
  ASSERT_TRUE(table.AppendRow({Value("a"), Value(5.0), Value(2)}).ok());
  EXPECT_TRUE(table.ValueAt(0, 1).is_int64());
  EXPECT_EQ(table.ValueAt(0, 1).int64_value(), 5);
  EXPECT_TRUE(table.ValueAt(0, 2).is_double());
  EXPECT_DOUBLE_EQ(table.ValueAt(0, 2).double_value(), 2.0);
}

TEST(TableTest, AppendRejectsLossyCoercion) {
  Table table(TestSchema());
  EXPECT_FALSE(table.AppendRow({Value("a"), Value(5.5), Value(1.0)}).ok());
}

TEST(TableTest, NullAllowedAnywhere) {
  Table table(TestSchema());
  EXPECT_TRUE(table.AppendRow({Value(), Value(), Value()}).ok());
}

TEST(TableTest, SelectRows) {
  const Table table = TestTable();
  const auto selected = table.SelectRows({2, 0});
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->num_rows(), 2u);
  EXPECT_EQ(selected->ValueAt(0, 1).int64_value(), 300);
  EXPECT_EQ(selected->ValueAt(1, 1).int64_value(), 100);
  EXPECT_FALSE(table.SelectRows({99}).ok());
}

TEST(TableTest, FilterIndices) {
  const Table table = TestTable();
  const auto indices = table.FilterIndices(
      [](const Row& row) { return row[1] >= Value(150); });
  EXPECT_EQ(indices, (std::vector<size_t>{1, 2, 3}));
}

TEST(TableTest, Project) {
  const Table table = TestTable();
  const auto projected = table.Project({"score", "name"});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->num_columns(), 2u);
  EXPECT_EQ(projected->schema().column(0).name, "score");
  EXPECT_EQ(projected->ValueAt(0, 1).string_value(), "a");
  EXPECT_FALSE(table.Project({"nope"}).ok());
}

TEST(TableTest, DistinctValuesSortedAndNullFree) {
  const Table table = TestTable();
  const auto distinct = table.DistinctValues(0);
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ(distinct->size(), 3u);
  EXPECT_EQ((*distinct)[0], Value("a"));
  EXPECT_EQ((*distinct)[2], Value("c"));
  // score column has a NULL which must not appear.
  EXPECT_EQ(table.DistinctValues(2)->size(), 3u);
  EXPECT_FALSE(table.DistinctValues(9).ok());
}

TEST(TableTest, MinMax) {
  const Table table = TestTable();
  const auto min_max = table.MinMax(1);
  ASSERT_TRUE(min_max.ok());
  EXPECT_EQ(min_max->first.int64_value(), 100);
  EXPECT_EQ(min_max->second.int64_value(), 300);
}

TEST(TableTest, MinMaxAllNullErrors) {
  Table table(TestSchema());
  ASSERT_TRUE(table.AppendRow({Value("a"), Value(), Value()}).ok());
  EXPECT_FALSE(table.MinMax(1).ok());
}

TEST(TableTest, ToStringTruncates) {
  const Table table = TestTable();
  const std::string rendered = table.ToString(2);
  EXPECT_NE(rendered.find("2 more rows"), std::string::npos);
  EXPECT_NE(rendered.find("price"), std::string::npos);
}

// ------------------------------------------------------------ column stats

TEST(ColumnStatsTest, ComputesCountsAndBounds) {
  const Table table = TestTable();
  const auto stats = ColumnStats::Compute(table, 0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->row_count, 4u);
  EXPECT_EQ(stats->null_count, 0u);
  EXPECT_EQ(stats->num_distinct(), 3u);
  EXPECT_EQ(stats->value_counts.at(Value("a")), 2u);
  EXPECT_EQ(stats->min, Value("a"));
  EXPECT_EQ(stats->max, Value("c"));
}

TEST(ColumnStatsTest, CountsNulls) {
  const Table table = TestTable();
  const auto stats = ColumnStats::Compute(table, 2);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->null_count, 1u);
  EXPECT_EQ(stats->non_null_count(), 3u);
}

TEST(ColumnStatsTest, OutOfRangeColumn) {
  EXPECT_FALSE(ColumnStats::Compute(TestTable(), 7).ok());
}

TEST(HistogramTest, EquiWidthCoversAllValues) {
  const Table table = TestTable();
  const auto buckets = EquiWidthHistogram(table, 1, 4);
  ASSERT_TRUE(buckets.ok());
  EXPECT_EQ(buckets->size(), 4u);
  size_t total = 0;
  for (const HistogramBucket& bucket : buckets.value()) {
    total += bucket.count;
  }
  EXPECT_EQ(total, 4u);
  EXPECT_DOUBLE_EQ(buckets->front().lo, 100);
  EXPECT_DOUBLE_EQ(buckets->back().hi, 300);
}

TEST(HistogramTest, Rejections) {
  const Table table = TestTable();
  EXPECT_FALSE(EquiWidthHistogram(table, 1, 0).ok());   // zero buckets
  EXPECT_FALSE(EquiWidthHistogram(table, 0, 2).ok());   // categorical
  EXPECT_FALSE(EquiWidthHistogram(table, 10, 2).ok());  // out of range
}

TEST(HistogramTest, SingleValueColumn) {
  Table table(TestSchema());
  ASSERT_TRUE(table.AppendRow({Value("x"), Value(5), Value(1.0)}).ok());
  ASSERT_TRUE(table.AppendRow({Value("y"), Value(5), Value(1.0)}).ok());
  const auto buckets = EquiWidthHistogram(table, 1, 3);
  ASSERT_TRUE(buckets.ok());
  size_t total = 0;
  for (const HistogramBucket& bucket : buckets.value()) {
    total += bucket.count;
  }
  EXPECT_EQ(total, 2u);
}

// -------------------------------------------------------------------- csv

TEST(CsvTest, RoundTrip) {
  const Table table = TestTable();
  const std::string csv = TableToCsv(table);
  const auto loaded = TableFromCsv(table.schema(), csv);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      EXPECT_EQ(loaded->ValueAt(r, c), table.ValueAt(r, c))
          << "row " << r << " col " << c;
    }
  }
}

TEST(CsvTest, QuotingRoundTrip) {
  Table table(TestSchema());
  ASSERT_TRUE(
      table.AppendRow({Value("has,comma \"and\" quotes"), Value(1),
                       Value(1.0)})
          .ok());
  const auto loaded = TableFromCsv(table.schema(), TableToCsv(table));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->ValueAt(0, 0).string_value(),
            "has,comma \"and\" quotes");
}

TEST(CsvTest, NullRoundTripsAsEmptyField) {
  Table table(TestSchema());
  ASSERT_TRUE(table.AppendRow({Value(), Value(), Value(2.0)}).ok());
  const auto loaded = TableFromCsv(table.schema(), TableToCsv(table));
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->ValueAt(0, 0).is_null());
  EXPECT_TRUE(loaded->ValueAt(0, 1).is_null());
}

TEST(CsvTest, HeaderMismatchRejected) {
  EXPECT_FALSE(TableFromCsv(TestSchema(), "name,price\n").ok());
  EXPECT_FALSE(TableFromCsv(TestSchema(), "name,price,wrong\n").ok());
  EXPECT_FALSE(TableFromCsv(TestSchema(), "").ok());
}

TEST(CsvTest, BadCellRejected) {
  EXPECT_FALSE(
      TableFromCsv(TestSchema(), "name,price,score\na,notanumber,1\n").ok());
  EXPECT_FALSE(TableFromCsv(TestSchema(), "name,price,score\na,1\n").ok());
}

TEST(CsvTest, FileRoundTrip) {
  const Table table = TestTable();
  const std::string path = ::testing::TempDir() + "/autocat_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(table, path).ok());
  const auto loaded = ReadCsvFile(table.schema(), path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), table.num_rows());
  EXPECT_FALSE(ReadCsvFile(table.schema(), "/nonexistent/nope.csv").ok());
}

}  // namespace
}  // namespace autocat
