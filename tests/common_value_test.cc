#include "common/value.h"

#include <gtest/gtest.h>

namespace autocat {
namespace {

TEST(ValueTest, DefaultIsNull) {
  const Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_TRUE(Value(int64_t{5}).is_int64());
  EXPECT_TRUE(Value(5).is_int64());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("abc").is_string());
  EXPECT_TRUE(Value(std::string("abc")).is_string());
  EXPECT_TRUE(Value(std::string_view("abc")).is_string());
}

TEST(ValueTest, NumericPredicate) {
  EXPECT_TRUE(Value(1).is_numeric());
  EXPECT_TRUE(Value(1.0).is_numeric());
  EXPECT_FALSE(Value("1").is_numeric());
  EXPECT_FALSE(Value().is_numeric());
}

TEST(ValueTest, AsDoubleWidensInt) {
  EXPECT_DOUBLE_EQ(Value(7).AsDouble(), 7.0);
  EXPECT_DOUBLE_EQ(Value(7.5).AsDouble(), 7.5);
}

TEST(ValueTest, CrossTypeNumericEquality) {
  EXPECT_EQ(Value(3), Value(3.0));
  EXPECT_NE(Value(3), Value(3.5));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(3).Hash(), Value(3.0).Hash());
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
}

TEST(ValueTest, TotalOrderAcrossClasses) {
  // NULL < numeric < string.
  EXPECT_LT(Value(), Value(-1000));
  EXPECT_LT(Value(1000000), Value("a"));
  EXPECT_LT(Value(), Value(""));
}

TEST(ValueTest, NumericOrdering) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value(1.5), Value(2));
  EXPECT_GT(Value(2.5), Value(2));
  EXPECT_LE(Value(2), Value(2.0));
  EXPECT_GE(Value(2), Value(2.0));
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value("apple"), Value("banana"));
  EXPECT_GT(Value("b"), Value("apple"));
}

TEST(ValueTest, NullEqualsOnlyNull) {
  EXPECT_EQ(Value(), Value());
  EXPECT_NE(Value(), Value(0));
  EXPECT_NE(Value(), Value(""));
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value(-3).ToString(), "-3");
  EXPECT_EQ(Value(250000.0).ToString(), "250000");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
  EXPECT_EQ(Value("hi").ToString(), "hi");
}

TEST(ValueTest, ToSqlLiteralQuotesStrings) {
  EXPECT_EQ(Value("abc").ToSqlLiteral(), "'abc'");
  EXPECT_EQ(Value("O'Hare").ToSqlLiteral(), "'O''Hare'");
  EXPECT_EQ(Value(12).ToSqlLiteral(), "12");
  EXPECT_EQ(Value().ToSqlLiteral(), "NULL");
}

TEST(ValueParseTest, ParsesIntegers) {
  const auto v = Value::ParseNumeric("123");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_int64());
  EXPECT_EQ(v->int64_value(), 123);
}

TEST(ValueParseTest, ParsesNegative) {
  const auto v = Value::ParseNumeric("-45");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int64_value(), -45);
}

TEST(ValueParseTest, ParsesDoubles) {
  const auto v = Value::ParseNumeric("2.75");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_double());
  EXPECT_DOUBLE_EQ(v->double_value(), 2.75);
}

TEST(ValueParseTest, ParsesScientific) {
  const auto v = Value::ParseNumeric("1e6");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsDouble(), 1e6);
}

TEST(ValueParseTest, ParsesNullKeyword) {
  const auto v = Value::ParseNumeric("NULL");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
  EXPECT_TRUE(Value::ParseNumeric("null")->is_null());
}

TEST(ValueParseTest, TrimsWhitespace) {
  const auto v = Value::ParseNumeric("  42  ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int64_value(), 42);
}

TEST(ValueParseTest, RejectsGarbage) {
  EXPECT_FALSE(Value::ParseNumeric("abc").ok());
  EXPECT_FALSE(Value::ParseNumeric("12x").ok());
  EXPECT_FALSE(Value::ParseNumeric("").ok());
  EXPECT_FALSE(Value::ParseNumeric("  ").ok());
  EXPECT_FALSE(Value::ParseNumeric("1.2.3").ok());
}

TEST(ValueTest, ValueHashFunctorUsableInUnorderedContainers) {
  ValueHash hasher;
  EXPECT_EQ(hasher(Value(5)), Value(5).Hash());
}

class ValueCompareSymmetryTest
    : public ::testing::TestWithParam<std::pair<Value, Value>> {};

TEST_P(ValueCompareSymmetryTest, CompareIsAntisymmetric) {
  const auto& [a, b] = GetParam();
  EXPECT_EQ(a.Compare(b), -b.Compare(a));
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, ValueCompareSymmetryTest,
    ::testing::Values(std::make_pair(Value(1), Value(2)),
                      std::make_pair(Value(1), Value(1.0)),
                      std::make_pair(Value("a"), Value("b")),
                      std::make_pair(Value(), Value(3)),
                      std::make_pair(Value(3), Value("3")),
                      std::make_pair(Value(), Value("x")),
                      std::make_pair(Value(-1.5), Value(-1))));

}  // namespace
}  // namespace autocat
