// Zone-map construction and zone-prover soundness gate (DESIGN.md §15).
//
// The zone prover promises *refuse-or-exact* morsel verdicts: whatever
// `CompiledPredicate::MorselVerdict` rules — kAllFail (no row of the
// morsel matches) or kAllPass (every row matches) — must agree with
// row-by-row evaluation; anything it cannot prove it calls kMixed. These
// tests rebuild the Build-path zone metadata from the typed arrays and
// compare it field by field, replay randomized profiles over hostile
// tables (NaN, -0.0, int64 extremes, NULLs) checking every verdict
// against the row truth, pin the NULL/NaN edge verdicts exactly, and
// verify the pruning bite: on value-clustered data a selective predicate
// must rule the vast majority of morsels all-fail, and the cold pipeline
// must report them as never dispatched.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "exec/executor.h"
#include "exec/kernels.h"
#include "exec/pipeline/cold_path.h"
#include "exec/pipeline/morsel.h"
#include "sql/parser.h"
#include "sql/selection.h"
#include "storage/columnar.h"
#include "storage/table.h"

#include "equivalence_fixture.h"

namespace autocat {
namespace {

using namespace equiv;  // NOLINT

using ZoneVerdict = CompiledPredicate::ZoneVerdict;

std::shared_ptr<const ColumnarTable> Shadow(Database& db) {
  auto shadow = db.ColumnarFor("homes");
  EXPECT_TRUE(shadow.ok());
  return std::move(shadow).value();
}

// Compiles `sql` into a profile predicate, or returns nullopt on any
// parse/profile/compile refusal (the row-fallback contract).
std::optional<CompiledPredicate> CompileSql(
    const std::string& sql, const Schema& schema,
    const std::shared_ptr<const ColumnarTable>& shadow) {
  auto query = ParseQuery(sql);
  if (!query.ok()) {
    return std::nullopt;
  }
  auto profile = SelectionProfile::FromQuery(query.value(), schema);
  if (!profile.ok()) {
    return std::nullopt;
  }
  auto compiled =
      CompiledPredicate::CompileProfile(profile.value(), schema, shadow);
  if (!compiled.ok()) {
    EXPECT_EQ(compiled.status().code(), StatusCode::kNotSupported) << sql;
    return std::nullopt;
  }
  return std::move(compiled).value();
}

// Checks every morsel verdict of `compiled` against the per-row truth in
// `matches` (one bool per base row): kAllFail morsels must contain no
// matching row, kAllPass morsels only matching rows, and concatenating
// AppendMorselSurvivors in morsel order must equal the exact match list.
void ExpectVerdictsSound(const CompiledPredicate& compiled,
                         const std::vector<bool>& matches,
                         const std::string& context) {
  const size_t n = compiled.num_rows();
  ASSERT_EQ(n, matches.size()) << context;
  std::vector<uint32_t> expected;
  for (size_t r = 0; r < n; ++r) {
    if (matches[r]) {
      expected.push_back(static_cast<uint32_t>(r));
    }
  }
  std::vector<uint32_t> got;
  for (size_t m = 0; m < compiled.num_morsels(); ++m) {
    const size_t begin = m * kMorselRows;
    const size_t end = std::min(n, begin + kMorselRows);
    const ZoneVerdict verdict = compiled.MorselVerdict(m);
    if (verdict != ZoneVerdict::kMixed) {
      const bool want = verdict == ZoneVerdict::kAllPass;
      for (size_t r = begin; r < end; ++r) {
        ASSERT_EQ(matches[r], want)
            << context << ": morsel " << m << " ruled "
            << (want ? "all-pass" : "all-fail") << " but row " << r
            << (matches[r] ? " matches" : " does not match");
      }
    }
    compiled.AppendMorselSurvivors(m, &got);
  }
  EXPECT_EQ(got, expected) << context;
}

// ------------------------------------------------------- zone construction

TEST(ZoneMapTest, BuildComputesExactZoneMetadata) {
  const size_t n = 3 * kZoneRows + 500;  // partial tail zone
  const Table table = MakeHomes(n, 71, 0.1, true);
  Database db;
  ASSERT_TRUE(db.RegisterTable("homes", Table(table)).ok());
  const std::shared_ptr<const ColumnarTable> shadow = Shadow(db);

  const size_t num_zones = (n + kZoneRows - 1) / kZoneRows;
  for (size_t c = 0; c < shadow->num_columns(); ++c) {
    const ColumnarTable::Column& col = shadow->column(c);
    if (!col.regular) {
      EXPECT_TRUE(col.zones.empty()) << "col " << c;
      continue;
    }
    ASSERT_EQ(col.zones.size(), num_zones) << "col " << c;
    for (size_t z = 0; z < num_zones; ++z) {
      const size_t begin = z * kZoneRows;
      const size_t end = std::min(n, begin + kZoneRows);
      const ZoneEntry& zone = col.zones[z];
      EXPECT_EQ(zone.row_count, end - begin) << "col " << c << " zone " << z;
      uint32_t valid = 0;
      bool has_nan = false;
      bool any = false;
      uint64_t min_bits = 0;
      uint64_t max_bits = 0;
      for (size_t r = begin; r < end; ++r) {
        if (col.IsNull(r)) {
          continue;
        }
        ++valid;
        uint64_t bits = 0;
        if (col.type == ValueType::kInt64) {
          bits = static_cast<uint64_t>(col.i64[r]);
        } else if (col.type == ValueType::kDouble) {
          const double v = col.f64[r];
          if (std::isnan(v)) {
            has_nan = true;
            continue;  // excluded from extrema
          }
          std::memcpy(&bits, &v, sizeof(bits));
        } else {
          bits = col.codes[r];
        }
        // Physical-domain order: int64 and double extrema are tracked in
        // the *typed* order, so compare through the typed lens.
        auto less = [&col](uint64_t a, uint64_t b) {
          if (col.type == ValueType::kInt64) {
            return static_cast<int64_t>(a) < static_cast<int64_t>(b);
          }
          if (col.type == ValueType::kDouble) {
            double da = 0.0;
            double db = 0.0;
            std::memcpy(&da, &a, sizeof(da));
            std::memcpy(&db, &b, sizeof(db));
            return da < db;
          }
          return a < b;
        };
        if (!any) {
          any = true;
          min_bits = bits;
          max_bits = bits;
        } else {
          if (less(bits, min_bits)) {
            min_bits = bits;
          }
          if (less(max_bits, bits)) {
            max_bits = bits;
          }
        }
      }
      EXPECT_EQ(zone.valid_count, valid) << "col " << c << " zone " << z;
      EXPECT_EQ(zone.has_nan, has_nan) << "col " << c << " zone " << z;
      if (any) {
        EXPECT_EQ(zone.min_bits, min_bits) << "col " << c << " zone " << z;
        EXPECT_EQ(zone.max_bits, max_bits) << "col " << c << " zone " << z;
      } else {
        EXPECT_EQ(zone.min_bits, 0u) << "col " << c << " zone " << z;
        EXPECT_EQ(zone.max_bits, 0u) << "col " << c << " zone " << z;
      }
    }
  }
}

// --------------------------------------------------- randomized soundness

TEST(ZoneProverTest, RandomizedVerdictsNeverContradictRowTruth) {
  const Schema schema = FuzzSchema();
  const size_t n = 3 * kZoneRows + 700;
  const Table table = MakeHomes(n, 202, 0.1, true);
  Database db;
  ASSERT_TRUE(db.RegisterTable("homes", Table(table)).ok());
  const std::shared_ptr<const ColumnarTable> shadow = Shadow(db);

  Random rng(4242);
  size_t compiled_queries = 0;
  for (int i = 0; i < 300; ++i) {
    const std::string sql = RandomQuery(rng, schema);
    auto query = ParseQuery(sql);
    if (!query.ok()) {
      continue;
    }
    auto profile = SelectionProfile::FromQuery(query.value(), schema);
    if (!profile.ok()) {
      continue;
    }
    auto compiled =
        CompiledPredicate::CompileProfile(profile.value(), schema, shadow);
    if (!compiled.ok()) {
      ASSERT_EQ(compiled.status().code(), StatusCode::kNotSupported) << sql;
      continue;
    }
    ++compiled_queries;
    std::vector<bool> matches(n);
    for (size_t r = 0; r < n; ++r) {
      matches[r] = profile.value().MatchesRow(table.row(r), schema);
    }
    ExpectVerdictsSound(compiled.value(), matches, sql);
  }
  EXPECT_GE(compiled_queries, 50u)
      << "profile compiler refused too often to be a meaningful gate";
}

// ------------------------------------------------------------- pruning bite

// A value-clustered homes table, rows ordered by price exactly as the
// simgen --sort-by emission produces: every zone's price interval is
// tight and disjoint, neighborhoods arrive in contiguous blocks, and a
// selective predicate should zero out almost every morsel.
Table MakeClusteredHomes(size_t n) {
  Table table(FuzzSchema());
  Random rng(17);
  for (size_t i = 0; i < n; ++i) {
    Row row;
    row.push_back(Value(kNeighborhoods[i / (n / 6 + 1)]));
    row.push_back(Value(kCities[i % 3]));
    row.push_back(Value(kTypes[i % 3]));
    row.push_back(Value(100000.0 + static_cast<double>(i)));  // price asc
    row.push_back(Value(rng.Uniform(0, 8)));
    row.push_back(Value(0.25 * rng.Uniform(4, 20)));
    row.push_back(Value(rng.UniformReal(300, 8000)));
    row.push_back(Value(1900 + static_cast<int64_t>(i / 200)));  // asc
    EXPECT_TRUE(table.AppendRow(std::move(row)).ok());
  }
  return table;
}

TEST(ZoneProverTest, ClusteredDataPrunesSelectiveMorsels) {
  const size_t n = 16 * kZoneRows;  // 32768 rows, 16 morsels
  const Table table = MakeClusteredHomes(n);
  Database db;
  ASSERT_TRUE(db.RegisterTable("homes", Table(table)).ok());
  const std::shared_ptr<const ColumnarTable> shadow = Shadow(db);
  const Schema schema = FuzzSchema();

  struct Case {
    std::string sql;
    std::string attr;
  };
  const std::vector<Case> cases = {
      // ~1% of rows, all inside the first morsel.
      {"SELECT * FROM homes WHERE price <= 100327", "price"},
      // A single ~200-row band in the middle of the range.
      {"SELECT * FROM homes WHERE yearbuilt = 1980", "yearbuilt"},
      // One neighborhood block (~1/6 of the rows, contiguous).
      {"SELECT * FROM homes WHERE neighborhood = 'Ballard'",
       "neighborhood"},
  };
  for (const Case& c : cases) {
    std::optional<CompiledPredicate> compiled =
        CompileSql(c.sql, schema, shadow);
    ASSERT_TRUE(compiled.has_value()) << c.sql;
    std::vector<bool> matches(n);
    auto query = ParseQuery(c.sql);
    ASSERT_TRUE(query.ok());
    auto profile = SelectionProfile::FromQuery(query.value(), schema);
    ASSERT_TRUE(profile.ok());
    for (size_t r = 0; r < n; ++r) {
      matches[r] = profile.value().MatchesRow(table.row(r), schema);
    }
    ExpectVerdictsSound(compiled.value(), matches, c.sql);

    size_t all_fail = 0;
    size_t all_pass = 0;
    for (size_t m = 0; m < compiled->num_morsels(); ++m) {
      const ZoneVerdict v = compiled->MorselVerdict(m);
      all_fail += v == ZoneVerdict::kAllFail ? 1 : 0;
      all_pass += v == ZoneVerdict::kAllPass ? 1 : 0;
    }
    // Clustered zones must decide the vast majority of morsels: at most
    // two boundary morsels may stay mixed per contiguous band.
    EXPECT_GE(all_fail + all_pass, compiled->num_morsels() - 2) << c.sql;
    EXPECT_GE(all_fail, compiled->num_morsels() / 2) << c.sql;
  }
}

TEST(ZoneProverTest, ColdPipelineReportsPrunedMorsels) {
  const size_t n = 16 * kZoneRows;
  const Table table = MakeClusteredHomes(n);
  Database db;
  ASSERT_TRUE(db.RegisterTable("homes", Table(table)).ok());
  const std::shared_ptr<const ColumnarTable> shadow = Shadow(db);

  // ~1% selectivity inside the first morsel: 15 of 16 morsels all-fail.
  const std::string sql = "SELECT * FROM homes WHERE price <= 100327";
  std::optional<CompiledPredicate> compiled =
      CompileSql(sql, FuzzSchema(), shadow);
  ASSERT_TRUE(compiled.has_value());

  for (const size_t threads : {size_t{1}, size_t{7}}) {
    ColdPipelineOptions options;
    options.parallel.threads = threads;
    AUTOCAT_ASSERT_OK_AND_MOVE(
        ColdPipelineResult piped,
        RunColdPipeline(compiled.value(), table, shadow.get(), {},
                        options));
    EXPECT_EQ(piped.result.num_rows(), 328u);
    EXPECT_EQ(piped.timings.morsels, 16u);
    EXPECT_EQ(piped.timings.morsels_pruned, 15u)
        << "threads=" << threads;
    // The surviving morsel is mixed (the 1% boundary cuts through it),
    // so nothing is all-pass here.
    EXPECT_EQ(piped.timings.morsels_all_pass, 0u);
  }

  // The dual shape: a predicate every row passes is all-pass everywhere
  // and nothing is pruned.
  std::optional<CompiledPredicate> all_rows =
      CompileSql("SELECT * FROM homes WHERE price >= 0", FuzzSchema(),
                 shadow);
  ASSERT_TRUE(all_rows.has_value());
  ColdPipelineOptions options;
  options.parallel.threads = 1;
  AUTOCAT_ASSERT_OK_AND_MOVE(
      ColdPipelineResult piped,
      RunColdPipeline(all_rows.value(), table, shadow.get(), {}, options));
  EXPECT_EQ(piped.result.num_rows(), n);
  EXPECT_EQ(piped.timings.morsels_pruned, 0u);
  EXPECT_EQ(piped.timings.morsels_all_pass, 16u);
}

// ------------------------------------------------------------ edge verdicts

// Homes table whose price column is uniformly `price` for every row (or
// NULL when nullopt); everything else is benign.
Table MakeConstantPriceHomes(size_t n, std::optional<double> price) {
  Table table(FuzzSchema());
  Random rng(5);
  for (size_t i = 0; i < n; ++i) {
    Row row;
    row.push_back(Value(kNeighborhoods[i % 6]));
    row.push_back(Value(kCities[i % 3]));
    row.push_back(Value(kTypes[i % 3]));
    row.push_back(price.has_value() ? Value(*price) : Value());
    row.push_back(Value(rng.Uniform(0, 8)));
    row.push_back(Value(1.5));
    row.push_back(Value(rng.UniformReal(300, 8000)));
    row.push_back(Value(rng.Uniform(1900, 2026)));
    EXPECT_TRUE(table.AppendRow(std::move(row)).ok());
  }
  return table;
}

TEST(ZoneProverTest, AllNullColumnVerdicts) {
  const size_t n = 2 * kZoneRows + 64;
  const Table table = MakeConstantPriceHomes(n, std::nullopt);
  Database db;
  ASSERT_TRUE(db.RegisterTable("homes", Table(table)).ok());
  const std::shared_ptr<const ColumnarTable> shadow = Shadow(db);
  const Schema schema = FuzzSchema();

  struct Case {
    std::string sql;
    ZoneVerdict want;
  };
  const std::vector<Case> cases = {
      // Comparisons never match a NULL cell: provably all-fail with
      // valid_count == 0 even though the extrema are meaningless zeros.
      {"SELECT * FROM homes WHERE price > 0", ZoneVerdict::kAllFail},
      {"SELECT * FROM homes WHERE price = 0", ZoneVerdict::kAllFail},
      {"SELECT * FROM homes WHERE price BETWEEN 0 AND 1000000",
       ZoneVerdict::kAllFail},
      {"SELECT * FROM homes WHERE price IN (100000, 200000)",
       ZoneVerdict::kAllFail},
      // NULL tests decide from the counts alone.
      {"SELECT * FROM homes WHERE price IS NULL", ZoneVerdict::kAllPass},
      {"SELECT * FROM homes WHERE price IS NOT NULL",
       ZoneVerdict::kAllFail},
  };
  for (const Case& c : cases) {
    std::optional<CompiledPredicate> compiled =
        CompileSql(c.sql, schema, shadow);
    if (!compiled.has_value()) {
      continue;  // refusal is always sound
    }
    for (size_t m = 0; m < compiled->num_morsels(); ++m) {
      EXPECT_EQ(compiled->MorselVerdict(m), c.want)
          << c.sql << " morsel " << m;
    }
  }
}

TEST(ZoneProverTest, NanExtremaVerdicts) {
  const size_t n = 2 * kZoneRows;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const Table table = MakeConstantPriceHomes(n, nan);
  Database db;
  ASSERT_TRUE(db.RegisterTable("homes", Table(table)).ok());
  const std::shared_ptr<const ColumnarTable> shadow = Shadow(db);
  const Schema schema = FuzzSchema();

  // Every price cell is NaN, the hostile corner of the zone contract:
  // extrema exclude NaN (an all-NaN zone keeps vacuous zeros) and only
  // has_nan records the poison, so every definite verdict below must
  // survive the has_nan downgrade. The row oracle is MatchesRow itself —
  // profile ranges treat NaN as inside, Value::Compare treats it as equal
  // to everything, and the prover must agree with whichever semantic the
  // compiled shape carries.
  for (const std::string sql :
       {"SELECT * FROM homes WHERE price > 0",
        "SELECT * FROM homes WHERE price < 0",
        "SELECT * FROM homes WHERE price = 12345",
        "SELECT * FROM homes WHERE price >= 12345",
        "SELECT * FROM homes WHERE price <> 12345",
        "SELECT * FROM homes WHERE price BETWEEN 10 AND 20",
        "SELECT * FROM homes WHERE price NOT BETWEEN 10 AND 20",
        "SELECT * FROM homes WHERE price IN (1, 2)",
        "SELECT * FROM homes WHERE price NOT IN (1, 2)",
        "SELECT * FROM homes WHERE price IS NULL"}) {
    std::optional<CompiledPredicate> compiled =
        CompileSql(sql, schema, shadow);
    if (!compiled.has_value()) {
      continue;
    }
    auto query = ParseQuery(sql);
    ASSERT_TRUE(query.ok());
    auto profile = SelectionProfile::FromQuery(query.value(), schema);
    ASSERT_TRUE(profile.ok());
    std::vector<bool> matches(n);
    for (size_t r = 0; r < n; ++r) {
      matches[r] = profile.value().MatchesRow(table.row(r), schema);
    }
    ExpectVerdictsSound(compiled.value(), matches, sql);
  }

  // Mixed NaN / normal zone: NaN lands only in the first zone, so the
  // second zone may decide strictly while the first must not contradict.
  Table mixed(FuzzSchema());
  Random rng(6);
  for (size_t i = 0; i < n; ++i) {
    Row row;
    row.push_back(Value(kNeighborhoods[i % 6]));
    row.push_back(Value(kCities[i % 3]));
    row.push_back(Value(kTypes[i % 3]));
    row.push_back(Value(i < kZoneRows && i % 5 == 0 ? nan : 500000.0));
    row.push_back(Value(rng.Uniform(0, 8)));
    row.push_back(Value(1.5));
    row.push_back(Value(rng.UniformReal(300, 8000)));
    row.push_back(Value(rng.Uniform(1900, 2026)));
    ASSERT_TRUE(mixed.AppendRow(std::move(row)).ok());
  }
  Database mixed_db;
  ASSERT_TRUE(mixed_db.RegisterTable("homes", Table(mixed)).ok());
  const std::shared_ptr<const ColumnarTable> mixed_shadow =
      Shadow(mixed_db);
  for (const std::string sql :
       {"SELECT * FROM homes WHERE price > 600000",
        "SELECT * FROM homes WHERE price = 500000",
        "SELECT * FROM homes WHERE price < 400000",
        "SELECT * FROM homes WHERE price BETWEEN 400000 AND 600000"}) {
    std::optional<CompiledPredicate> compiled =
        CompileSql(sql, schema, mixed_shadow);
    ASSERT_TRUE(compiled.has_value()) << sql;
    auto query = ParseQuery(sql);
    ASSERT_TRUE(query.ok());
    auto profile = SelectionProfile::FromQuery(query.value(), schema);
    ASSERT_TRUE(profile.ok());
    std::vector<bool> matches(n);
    for (size_t r = 0; r < n; ++r) {
      matches[r] = profile.value().MatchesRow(mixed.row(r), schema);
    }
    ExpectVerdictsSound(compiled.value(), matches, sql);
  }
}

}  // namespace
}  // namespace autocat
