// Corpus-replay driver: runs LLVMFuzzerTestOneInput over every file in
// the given paths (directories are walked recursively), so the fuzz
// corpus doubles as a regression suite under plain ctest — no libFuzzer
// or clang required. Exit 0 when every input runs clean; the harness
// aborts the process on a property violation.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace fs = std::filesystem;

namespace {

bool CollectInputs(const std::string& path, std::vector<std::string>* out) {
  std::error_code ec;
  if (fs::is_regular_file(path, ec)) {
    out->push_back(path);
    return true;
  }
  if (!fs::is_directory(path, ec)) {
    std::fprintf(stderr, "fuzz_replay: no such file or directory: %s\n",
                 path.c_str());
    return false;
  }
  for (const auto& entry : fs::recursive_directory_iterator(path, ec)) {
    if (entry.is_regular_file()) {
      out->push_back(entry.path().string());
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: autocat_fuzz_replay <corpus-dir|file>...\n");
    return 2;
  }
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    if (!CollectInputs(argv[i], &inputs)) {
      return 2;
    }
  }
  for (const std::string& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "fuzz_replay: cannot read %s\n", path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string bytes = buffer.str();
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  }
  std::printf("fuzz_replay: %zu corpus inputs ran clean\n", inputs.size());
  return 0;
}
