// libFuzzer harness for the segment store's decode surface: varint /
// fixed-width readers, int64 segment decode, dictionary decode, catalog
// decode, and header decode. The store's safety contract is that every
// decoder consumes attacker-controlled (pointer, size) buffers and
// reports malformed input through Status — never UB, never a count
// trusted for allocation ahead of the bytes that back it. The harness
// asserts behavioral properties on top of "no crash":
//
//   1. Every decoder terminates with ok() or an error Status.
//   2. A dictionary that decodes must be strictly ascending (the kernels'
//      accept tables index it by code and rely on code order == value
//      order).
//   3. A catalog that decodes must re-encode and re-decode to a fixed
//      point (the writer emits canonical bytes, so decode(encode(x)) can
//      never fail for a decodable x).
//   4. Int64 segment decode writes exactly `expected_rows` values or
//      nothing observable — it never reads or writes out of bounds
//      (enforced by ASan on the exact-sized output buffer).
//
// The first input byte selects the target decoder; the rest is the
// payload. Built as a libFuzzer target (autocat_store_fuzzer) under
// clang; always linked with fuzz_replay_main.cc into
// autocat_store_fuzz_replay, which replays tests/fuzz/store_corpus
// under plain ctest.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "store/coding.h"
#include "store/format.h"
#include "store/segment.h"

namespace {

using autocat::ByteReader;
using autocat::DecodeCatalog;
using autocat::DecodeDict;
using autocat::DecodeHeader;
using autocat::DecodeInt64Segment;
using autocat::EncodeCatalog;
using autocat::Result;
using autocat::StoreCatalog;

void FuzzByteReader(const char* data, size_t size) {
  ByteReader reader(data, size);
  // Walk the buffer with a rotating schedule of reads until exhausted or
  // an error; every outcome must be a clean Status.
  size_t step = 0;
  while (!reader.empty()) {
    bool ok = false;
    switch (step++ % 5) {
      case 0:
        ok = reader.ReadVarint64().ok();
        break;
      case 1:
        ok = reader.ReadFixed32().ok();
        break;
      case 2:
        ok = reader.ReadFixed64().ok();
        break;
      case 3:
        ok = reader.ReadLengthPrefixed().ok();
        break;
      default:
        ok = reader.Skip(1).ok();
        break;
    }
    if (!ok) {
      break;
    }
  }
}

void FuzzInt64Segment(const char* data, size_t size) {
  if (size == 0) {
    return;
  }
  // The first payload byte picks the expected row count, so the fuzzer
  // explores truncated/overlong buffers against many row counts. The
  // output buffer is exactly expected_rows long: any out-of-bounds write
  // trips ASan.
  const size_t expected_rows = static_cast<uint8_t>(data[0]) + 1;
  std::vector<int64_t> out(expected_rows);
  (void)DecodeInt64Segment(data + 1, size - 1, expected_rows, out.data());
}

void FuzzDict(const char* data, size_t size) {
  if (size < 2) {
    return;
  }
  // Split point and count both attacker-chosen; clamp the split to the
  // payload so the harness itself never indexes out of range.
  const size_t split =
      std::min(static_cast<uint8_t>(data[0]) * size / 256, size - 2);
  const uint64_t count = static_cast<uint8_t>(data[1]);
  const std::string_view payload(data + 2, size - 2);
  const std::string_view offsets = payload.substr(0, split);
  const std::string_view blob = payload.substr(split);
  const Result<std::vector<std::string>> dict =
      DecodeDict(offsets, blob, count);
  if (dict.ok()) {
    const std::vector<std::string>& d = dict.value();
    for (size_t i = 1; i < d.size(); ++i) {
      if (!(d[i - 1] < d[i])) {
        std::fprintf(stderr,
                     "store fuzz: decoded dictionary not strictly "
                     "ascending at %zu\n",
                     i);
        std::abort();  // autocat-lint: allow(banned-call) — fuzz property
      }
    }
  }
}

void FuzzCatalog(const char* data, size_t size) {
  const Result<StoreCatalog> catalog = DecodeCatalog(data, size);
  if (!catalog.ok()) {
    return;
  }
  // Fixed point: canonical re-encode must decode cleanly.
  const std::string reencoded = EncodeCatalog(catalog.value());
  const Result<StoreCatalog> again =
      DecodeCatalog(reencoded.data(), reencoded.size());
  if (!again.ok()) {
    std::fprintf(stderr, "store fuzz: re-encoded catalog rejected: %s\n",
                 again.status().ToString().c_str());
    std::abort();  // autocat-lint: allow(banned-call) — fuzz property
  }
  if (again.value().tables.size() != catalog.value().tables.size()) {
    std::fprintf(stderr, "store fuzz: catalog round trip lost tables\n");
    std::abort();  // autocat-lint: allow(banned-call) — fuzz property
  }
}

void FuzzHeader(const char* data, size_t size) {
  (void)DecodeHeader(data, size);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) {
    return 0;
  }
  const char* payload = reinterpret_cast<const char*>(data) + 1;
  const size_t payload_size = size - 1;
  switch (data[0] % 5) {
    case 0:
      FuzzByteReader(payload, payload_size);
      break;
    case 1:
      FuzzInt64Segment(payload, payload_size);
      break;
    case 2:
      FuzzDict(payload, payload_size);
      break;
    case 3:
      FuzzCatalog(payload, payload_size);
      break;
    default:
      FuzzHeader(payload, payload_size);
      break;
  }
  return 0;
}
