// libFuzzer harness for the SQL front end: lexer -> parser -> selection
// normalization -> canonical-SQL round trip.
//
// The harness asserts behavioral properties, not just "no crash":
//   1. Tokenize/ParseQuery never crash and only ever reject input through
//      Status (no exceptions, no aborts, bounded recursion).
//   2. Canonicalization (profile -> ToSqlWhere -> re-parse -> profile) is
//      idempotent: the first pass may lose information the canonical text
//      cannot carry (float-literal precision, OR-hulls that collapse to an
//      unbounded range and are omitted from the WHERE text), but a second
//      pass must reach a fixed point — and the canonical text must always
//      re-parse and re-normalize without error.
//   3. The columnar predicate kernels are refuse-or-exact (stage 5): over
//      a fixed table seeded with hostile cells, a WHERE clause that
//      compiles filters bit-identically to row-at-a-time evaluation at
//      multiple thread counts, and any clause the row path errors on is
//      refused with kNotSupported.
//
// Built as a libFuzzer target (autocat_sql_fuzzer) only when the compiler
// supports -fsanitize=fuzzer (clang); in every configuration the same
// entry point links against tests/fuzz/fuzz_replay_main.cc into
// autocat_fuzz_replay, which replays tests/fuzz/corpus under plain ctest.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string_view>
#include <vector>

#include "common/thread_pool.h"
#include "exec/kernels.h"
#include "exec/predicate.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/selection.h"
#include "storage/columnar.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace {

using autocat::AttributeCondition;
using autocat::ColumnDef;
using autocat::ColumnKind;
using autocat::ColumnarTable;
using autocat::CompiledPredicate;
using autocat::ParallelOptions;
using autocat::Schema;
using autocat::SelectionProfile;
using autocat::Table;
using autocat::Value;
using autocat::ValueType;

// The homes schema of the paper's running example: a realistic mix of
// categorical and numeric attributes for profiles to normalize against.
const Schema& FuzzSchema() {
  static const Schema* schema = [] {
    auto result = Schema::Create({
        ColumnDef("neighborhood", ValueType::kString,
                  ColumnKind::kCategorical),
        ColumnDef("city", ValueType::kString, ColumnKind::kCategorical),
        ColumnDef("propertytype", ValueType::kString,
                  ColumnKind::kCategorical),
        ColumnDef("price", ValueType::kDouble, ColumnKind::kNumeric),
        ColumnDef("bedroomcount", ValueType::kInt64, ColumnKind::kNumeric),
        ColumnDef("bathcount", ValueType::kDouble, ColumnKind::kNumeric),
        ColumnDef("squarefootage", ValueType::kDouble, ColumnKind::kNumeric),
        ColumnDef("yearbuilt", ValueType::kInt64, ColumnKind::kNumeric),
    });
    if (!result.ok()) {
      std::fprintf(stderr, "fuzz schema construction failed: %s\n",
                   result.status().ToString().c_str());
      std::abort();  // autocat-lint: allow(banned-call) — harness setup
    }
    return new Schema(std::move(result).value());
  }();
  return *schema;
}

// Small fixed homes table with hostile cells (NULLs, NaN, signed zeros,
// int64 extremes, 2^53 + 1) for the stage-5 filter-equivalence check.
const Table& FuzzTable() {
  static const Table* table = [] {
    auto* t = new Table(FuzzSchema());
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const int64_t i64max = std::numeric_limits<int64_t>::max();
    const int64_t i64min = std::numeric_limits<int64_t>::min();
    const struct {
      Value cells[8];
    } rows[] = {
        {{Value("Redmond"), Value("Seattle"), Value("Single Family"),
          Value(210000.0), Value(3), Value(2.5), Value(1800.0),
          Value(1984)}},
        {{Value("Bellevue"), Value("Bellevue"), Value("Condo"),
          Value(250000.0), Value(2), Value(1.0), Value(900.0),
          Value(2005)}},
        {{Value("Seattle"), Value("Seattle"), Value("Townhome"),
          Value(180000.0), Value(4), Value(2.0), Value(2100.0),
          Value(1999)}},
        {{Value("Kirkland"), Value("Seattle"), Value("Condo"), Value(),
          Value(5), Value(3.0), Value(2600.0), Value(2015)}},
        {{Value(), Value("Redmond"), Value("Single Family"), Value(nan),
          Value(1), Value(1.5), Value(700.0), Value(1970)}},
        {{Value("Ballard"), Value(), Value(), Value(-0.0), Value(0),
          Value(0.25), Value(320.0), Value(int64_t{9007199254740993})}},
        {{Value("Queen Anne"), Value("Seattle"), Value("Condo"),
          Value(0.0), Value(i64max), Value(4.0), Value(5200.0),
          Value(2020)}},
        {{Value(""), Value("Bellevue"), Value("Townhome"), Value(1e308),
          Value(i64min), Value(2.25), Value(4100.0), Value(1900)}},
        {{Value("Redmond"), Value("Seattle"), Value("Single Family"),
          Value(), Value(), Value(), Value(), Value()}},
    };
    for (const auto& row : rows) {
      auto status = t->AppendRow({row.cells[0], row.cells[1], row.cells[2],
                                  row.cells[3], row.cells[4], row.cells[5],
                                  row.cells[6], row.cells[7]});
      if (!status.ok()) {
        std::fprintf(stderr, "fuzz table construction failed: %s\n",
                     status.ToString().c_str());
        std::abort();  // autocat-lint: allow(banned-call) — harness setup
      }
    }
    return t;
  }();
  return *table;
}

const std::shared_ptr<const ColumnarTable>& FuzzShadow() {
  static const auto* shadow = new std::shared_ptr<const ColumnarTable>(
      std::make_shared<const ColumnarTable>(
          ColumnarTable::Build(FuzzTable())));
  return *shadow;
}

void FailRoundTrip(std::string_view stage, std::string_view detail,
                   std::string_view input) {
  std::fprintf(stderr,
               "sql round-trip violation at %s: %.*s\ninput was: %.*s\n",
               std::string(stage).c_str(),
               static_cast<int>(detail.size()), detail.data(),
               static_cast<int>(input.size()), input.data());
  std::abort();  // autocat-lint: allow(banned-call) — fuzzer failure path
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view sql(reinterpret_cast<const char*>(data), size);

  // Stage 1: lexing. Must return tokens or a Status, never crash.
  auto tokens = autocat::Tokenize(sql);
  if (!tokens.ok()) {
    return 0;
  }

  // Stage 2: parsing. Recursion must stay bounded on adversarial nesting.
  auto query = autocat::ParseQuery(sql);
  if (!query.ok()) {
    return 0;
  }

  // Stage 3: selection normalization against the homes schema. Unknown
  // columns and unsupported shapes surface as Status; anything else must
  // produce a profile.
  auto profile = SelectionProfile::FromQuery(query.value(), FuzzSchema());

  // Stage 5 (runs regardless of stage 3/4's outcome): columnar kernels
  // must be refuse-or-exact against the row path over the fixed hostile
  // table. If Compile accepts a WHERE clause, the row path must evaluate
  // every row without error and the selection vectors must match exactly
  // (threads 1 and 3); if the row path errors, Compile must have refused.
  if (query.value().where != nullptr) {
    const Table& table = FuzzTable();
    const autocat::Expr& where = *query.value().where;
    auto compiled =
        CompiledPredicate::Compile(where, FuzzSchema(), FuzzShadow());
    std::vector<uint32_t> expected;
    bool row_error = false;
    for (size_t r = 0; r < table.num_rows() && !row_error; ++r) {
      auto match =
          autocat::EvaluatePredicate(where, table.row(r), FuzzSchema());
      if (!match.ok()) {
        row_error = true;
      } else if (match.value()) {
        expected.push_back(static_cast<uint32_t>(r));
      }
    }
    if (!compiled.ok()) {
      if (compiled.status().code() !=
          autocat::StatusCode::kNotSupported) {
        FailRoundTrip("kernel compile surfaced a non-refusal error",
                      compiled.status().ToString(), sql);
      }
    } else if (row_error) {
      FailRoundTrip("kernel compiled a predicate the row path errors on",
                    "refuse-or-exact contract violated", sql);
    } else {
      for (const size_t threads : {size_t{1}, size_t{3}}) {
        ParallelOptions parallel;
        parallel.threads = threads;
        auto selection = compiled.value().Filter(parallel);
        if (!selection.ok()) {
          FailRoundTrip("kernel filter errored",
                        selection.status().ToString(), sql);
        }
        if (selection.value() != expected) {
          FailRoundTrip("kernel selection != row selection", sql, sql);
        }
      }
    }
    // Profile flavor: MatchesRow never errors, so a compiled profile
    // always has a row-path twin to compare against.
    if (profile.ok()) {
      auto compiled_profile = CompiledPredicate::CompileProfile(
          profile.value(), FuzzSchema(), FuzzShadow());
      if (compiled_profile.ok()) {
        std::vector<uint32_t> matched;
        for (size_t r = 0; r < table.num_rows(); ++r) {
          if (profile.value().MatchesRow(table.row(r), FuzzSchema())) {
            matched.push_back(static_cast<uint32_t>(r));
          }
        }
        ParallelOptions parallel;
        parallel.threads = 1;
        auto selection = compiled_profile.value().Filter(parallel);
        if (!selection.ok() || selection.value() != matched) {
          FailRoundTrip("profile kernel selection != MatchesRow",
                        selection.ok() ? "selection mismatch"
                                       : selection.status().ToString(),
                        sql);
        }
      } else if (compiled_profile.status().code() !=
                 autocat::StatusCode::kNotSupported) {
        FailRoundTrip("profile kernel compile surfaced a non-refusal error",
                      compiled_profile.status().ToString(), sql);
      }
    }
  }

  if (!profile.ok()) {
    return 0;
  }

  // Stage 4: canonical SQL text must re-parse and re-normalize cleanly,
  // and a second canonicalization pass must be a fixed point.
  const std::string where = profile.value().ToSqlWhere();
  if (where.empty()) {
    return 0;  // no conditions survived normalization
  }
  auto reparsed = autocat::ParseExpression(where);
  if (!reparsed.ok()) {
    FailRoundTrip("reparse", reparsed.status().ToString(), where);
  }
  auto reprofile =
      SelectionProfile::FromExpr(*reparsed.value(), FuzzSchema());
  if (!reprofile.ok()) {
    FailRoundTrip("renormalize", reprofile.status().ToString(), where);
  }
  const std::string where2 = reprofile.value().ToSqlWhere();
  if (where2.empty()) {
    return 0;  // everything collapsed away on the second pass
  }
  auto reparsed2 = autocat::ParseExpression(where2);
  if (!reparsed2.ok()) {
    FailRoundTrip("reparse2", reparsed2.status().ToString(), where2);
  }
  auto reprofile2 =
      SelectionProfile::FromExpr(*reparsed2.value(), FuzzSchema());
  if (!reprofile2.ok()) {
    FailRoundTrip("renormalize2", reprofile2.status().ToString(), where2);
  }
  const std::string second = reprofile.value().ToString();
  const std::string third = reprofile2.value().ToString();
  if (second != third) {
    FailRoundTrip("canonicalization not idempotent",
                  second + " != " + third, sql);
  }
  return 0;
}
