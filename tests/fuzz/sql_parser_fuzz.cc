// libFuzzer harness for the SQL front end: lexer -> parser -> selection
// normalization -> canonical-SQL round trip.
//
// The harness asserts behavioral properties, not just "no crash":
//   1. Tokenize/ParseQuery never crash and only ever reject input through
//      Status (no exceptions, no aborts, bounded recursion).
//   2. Canonicalization (profile -> ToSqlWhere -> re-parse -> profile) is
//      idempotent: the first pass may lose information the canonical text
//      cannot carry (float-literal precision, OR-hulls that collapse to an
//      unbounded range and are omitted from the WHERE text), but a second
//      pass must reach a fixed point — and the canonical text must always
//      re-parse and re-normalize without error.
//
// Built as a libFuzzer target (autocat_sql_fuzzer) only when the compiler
// supports -fsanitize=fuzzer (clang); in every configuration the same
// entry point links against tests/fuzz/fuzz_replay_main.cc into
// autocat_fuzz_replay, which replays tests/fuzz/corpus under plain ctest.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/selection.h"
#include "storage/schema.h"

namespace {

using autocat::AttributeCondition;
using autocat::ColumnDef;
using autocat::ColumnKind;
using autocat::Schema;
using autocat::SelectionProfile;
using autocat::ValueType;

// The homes schema of the paper's running example: a realistic mix of
// categorical and numeric attributes for profiles to normalize against.
const Schema& FuzzSchema() {
  static const Schema* schema = [] {
    auto result = Schema::Create({
        ColumnDef("neighborhood", ValueType::kString,
                  ColumnKind::kCategorical),
        ColumnDef("city", ValueType::kString, ColumnKind::kCategorical),
        ColumnDef("propertytype", ValueType::kString,
                  ColumnKind::kCategorical),
        ColumnDef("price", ValueType::kDouble, ColumnKind::kNumeric),
        ColumnDef("bedroomcount", ValueType::kInt64, ColumnKind::kNumeric),
        ColumnDef("bathcount", ValueType::kDouble, ColumnKind::kNumeric),
        ColumnDef("squarefootage", ValueType::kDouble, ColumnKind::kNumeric),
        ColumnDef("yearbuilt", ValueType::kInt64, ColumnKind::kNumeric),
    });
    if (!result.ok()) {
      std::fprintf(stderr, "fuzz schema construction failed: %s\n",
                   result.status().ToString().c_str());
      std::abort();  // autocat-lint: allow(banned-call) — harness setup
    }
    return new Schema(std::move(result).value());
  }();
  return *schema;
}

void FailRoundTrip(std::string_view stage, std::string_view detail,
                   std::string_view input) {
  std::fprintf(stderr,
               "sql round-trip violation at %s: %.*s\ninput was: %.*s\n",
               std::string(stage).c_str(),
               static_cast<int>(detail.size()), detail.data(),
               static_cast<int>(input.size()), input.data());
  std::abort();  // autocat-lint: allow(banned-call) — fuzzer failure path
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view sql(reinterpret_cast<const char*>(data), size);

  // Stage 1: lexing. Must return tokens or a Status, never crash.
  auto tokens = autocat::Tokenize(sql);
  if (!tokens.ok()) {
    return 0;
  }

  // Stage 2: parsing. Recursion must stay bounded on adversarial nesting.
  auto query = autocat::ParseQuery(sql);
  if (!query.ok()) {
    return 0;
  }

  // Stage 3: selection normalization against the homes schema. Unknown
  // columns and unsupported shapes surface as Status; anything else must
  // produce a profile.
  auto profile = SelectionProfile::FromQuery(query.value(), FuzzSchema());
  if (!profile.ok()) {
    return 0;
  }

  // Stage 4: canonical SQL text must re-parse and re-normalize cleanly,
  // and a second canonicalization pass must be a fixed point.
  const std::string where = profile.value().ToSqlWhere();
  if (where.empty()) {
    return 0;  // no conditions survived normalization
  }
  auto reparsed = autocat::ParseExpression(where);
  if (!reparsed.ok()) {
    FailRoundTrip("reparse", reparsed.status().ToString(), where);
  }
  auto reprofile =
      SelectionProfile::FromExpr(*reparsed.value(), FuzzSchema());
  if (!reprofile.ok()) {
    FailRoundTrip("renormalize", reprofile.status().ToString(), where);
  }
  const std::string where2 = reprofile.value().ToSqlWhere();
  if (where2.empty()) {
    return 0;  // everything collapsed away on the second pass
  }
  auto reparsed2 = autocat::ParseExpression(where2);
  if (!reparsed2.ok()) {
    FailRoundTrip("reparse2", reparsed2.status().ToString(), where2);
  }
  auto reprofile2 =
      SelectionProfile::FromExpr(*reparsed2.value(), FuzzSchema());
  if (!reprofile2.ok()) {
    FailRoundTrip("renormalize2", reprofile2.status().ToString(), where2);
  }
  const std::string second = reprofile.value().ToString();
  const std::string third = reprofile2.value().ToString();
  if (second != third) {
    FailRoundTrip("canonicalization not idempotent",
                  second + " != " + third, sql);
  }
  return 0;
}
