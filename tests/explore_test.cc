// Tests for the exploration models of Figures 2 and 3, including the
// paper's worked Examples 3.1/4.1 (the 26-item exploration of Figure 1)
// and Example 3.2.

#include <gtest/gtest.h>

#include "explore/exploration.h"
#include "explore/metrics.h"
#include "test_util.h"

namespace autocat {
namespace {

using test::HomesTable;

// Builds the Figure 1 tree: ALL -> 3 neighborhood categories, the first
// ("Redmond, Bellevue") split into 3 price categories; the middle price
// category ("225K-250K") holds 20 tuples. The other branches hold a few
// tuples each.
struct Figure1 {
  Table table;
  CategoryTree tree;

  Figure1() : table(MakeTable()), tree(&table) {
    std::vector<size_t> rb;       // Redmond/Bellevue rows
    std::vector<size_t> is;       // Issaquah/Sammamish rows
    std::vector<size_t> seattle;  // Seattle rows
    const size_t nb = 0;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      const std::string& n = table.ValueAt(r, nb).string_value();
      if (n == "Redmond" || n == "Bellevue") {
        rb.push_back(r);
      } else if (n == "Issaquah" || n == "Sammamish") {
        is.push_back(r);
      } else {
        seattle.push_back(r);
      }
    }
    const NodeId rb_node = tree.AddChild(
        tree.root(),
        CategoryLabel::Categorical("neighborhood",
                                   {Value("Redmond"), Value("Bellevue")}),
        rb);
    tree.AddChild(tree.root(),
                  CategoryLabel::Categorical(
                      "neighborhood",
                      {Value("Issaquah"), Value("Sammamish")}),
                  is);
    tree.AddChild(
        tree.root(),
        CategoryLabel::Categorical("neighborhood", {Value("Seattle")}),
        seattle);
    tree.AppendLevelAttribute("neighborhood");

    // Split Redmond/Bellevue by price.
    std::vector<size_t> low;
    std::vector<size_t> mid;
    std::vector<size_t> high;
    const size_t price = 1;
    for (size_t r : rb) {
      const double p = table.ValueAt(r, price).AsDouble();
      if (p < 225000) {
        low.push_back(r);
      } else if (p < 250000) {
        mid.push_back(r);
      } else {
        high.push_back(r);
      }
    }
    EXPECT_EQ(mid.size(), 20u);  // Example 4.1's premise
    tree.AddChild(rb_node,
                  CategoryLabel::Numeric("price", 200000, 225000), low);
    tree.AddChild(rb_node,
                  CategoryLabel::Numeric("price", 225000, 250000), mid);
    tree.AddChild(rb_node,
                  CategoryLabel::Numeric("price", 250000, 300000, true),
                  high);
    tree.AppendLevelAttribute("price");
  }

  static Table MakeTable() {
    std::vector<test::HomeRow> rows;
    // 20 Redmond/Bellevue homes in 225K-250K (the user's true range).
    for (int i = 0; i < 20; ++i) {
      rows.push_back(test::HomeRow{i % 2 == 0 ? "Redmond" : "Bellevue",
                                   226000 + i * 1000, 3});
    }
    // A few in the other price bands and neighborhoods.
    rows.push_back(test::HomeRow{"Redmond", 210000, 3});
    rows.push_back(test::HomeRow{"Bellevue", 285000, 4});
    rows.push_back(test::HomeRow{"Issaquah", 230000, 3});
    rows.push_back(test::HomeRow{"Sammamish", 240000, 2});
    rows.push_back(test::HomeRow{"Seattle", 235000, 3});
    rows.push_back(test::HomeRow{"Seattle", 260000, 5});
    return HomesTable(rows);
  }
};

SelectionProfile Example31User() {
  // The user of Examples 3.1/4.1: wants Redmond/Bellevue, 225K-250K.
  SelectionProfile user;
  user.Set("neighborhood", AttributeCondition::ValueSet(
                               {Value("Redmond"), Value("Bellevue")}));
  NumericRange price;
  price.lo = 226000;  // strictly inside (225K, 250K): overlaps only the
  price.hi = 249000;  // middle price category
  user.Set("price", AttributeCondition::Range(price));
  return user;
}

TEST(ExplorationTest, Example41CostIs26) {
  const Figure1 fig;
  SimulatedExplorer::Options options;
  options.scenario = Scenario::kAll;
  const SimulatedExplorer explorer(options);
  const ExplorationResult run =
      explorer.Explore(fig.tree, Example31User());
  // 3 first-level labels + 3 price labels + 20 tuples = 26 (Example 4.1).
  EXPECT_EQ(run.labels_examined, 6u);
  EXPECT_EQ(run.tuples_examined, 20u);
  EXPECT_DOUBLE_EQ(run.items_examined, 26.0);
  EXPECT_EQ(run.relevant_found, 20u);
}

TEST(ExplorationTest, Example32OneScenarioStopsEarly) {
  const Figure1 fig;
  SimulatedExplorer::Options options;
  options.scenario = Scenario::kOne;
  const SimulatedExplorer explorer(options);
  const ExplorationResult run =
      explorer.Explore(fig.tree, Example31User());
  // She examines 2 labels at level 1 (ignores the first? no: examines
  // "Redmond, Bellevue" first and explores it), then within it examines
  // the 200-225K label (ignored) and the 225-250K label (explored), then
  // reads tuples until the first relevant one — the very first.
  EXPECT_EQ(run.labels_examined, 3u);
  EXPECT_EQ(run.tuples_examined, 1u);
  EXPECT_DOUBLE_EQ(run.items_examined, 4.0);
  EXPECT_TRUE(run.found_any);
  EXPECT_EQ(run.relevant_found, 1u);
}

TEST(ExplorationTest, ShowTuplesWhenUserDoesNotConstrainSubattribute) {
  const Figure1 fig;
  // A user with no neighborhood condition browses the whole result at the
  // root (SHOWTUPLES).
  SelectionProfile user;
  NumericRange beds;
  beds.lo = 3;
  beds.hi = 3;
  user.Set("bedroomcount", AttributeCondition::Range(beds));
  SimulatedExplorer::Options options;
  options.scenario = Scenario::kAll;
  const SimulatedExplorer explorer(options);
  const ExplorationResult run = explorer.Explore(fig.tree, user);
  EXPECT_EQ(run.labels_examined, 0u);
  EXPECT_EQ(run.tuples_examined, fig.table.num_rows());
}

TEST(ExplorationTest, UnconstrainedLabelAttributeIsAlwaysExplored) {
  const Figure1 fig;
  // Constrains neighborhood (so SHOWCAT at root) but not price: she must
  // open every price subcategory of the explored neighborhood node.
  SelectionProfile user;
  user.Set("neighborhood",
           AttributeCondition::ValueSet({Value("Redmond")}));
  SimulatedExplorer::Options options;
  options.scenario = Scenario::kAll;
  const SimulatedExplorer explorer(options);
  const ExplorationResult run = explorer.Explore(fig.tree, user);
  // 3 level-1 labels; inside Redmond/Bellevue she has no price condition,
  // so Pw logic says SHOWTUPLES at that node (price unconstrained).
  EXPECT_EQ(run.labels_examined, 3u);
  EXPECT_EQ(run.tuples_examined, 22u);  // all of Redmond/Bellevue
}

TEST(ExplorationTest, LabelCostWeighting) {
  const Figure1 fig;
  SimulatedExplorer::Options options;
  options.scenario = Scenario::kAll;
  options.label_cost = 0.5;
  const SimulatedExplorer explorer(options);
  const ExplorationResult run =
      explorer.Explore(fig.tree, Example31User());
  EXPECT_DOUBLE_EQ(run.items_examined, 0.5 * 6 + 20);
}

TEST(ExplorationTest, OneScenarioWithNoRelevantScansOn) {
  const Figure1 fig;
  SelectionProfile user;
  user.Set("neighborhood",
           AttributeCondition::ValueSet({Value("Nowhere")}));
  SimulatedExplorer::Options options;
  options.scenario = Scenario::kOne;
  const SimulatedExplorer explorer(options);
  const ExplorationResult run = explorer.Explore(fig.tree, user);
  EXPECT_FALSE(run.found_any);
  EXPECT_EQ(run.relevant_found, 0u);
  // She examined all 3 level-1 labels and drilled nowhere.
  EXPECT_EQ(run.labels_examined, 3u);
  EXPECT_EQ(run.tuples_examined, 0u);
}

TEST(ExplorationTest, NoiseIsDeterministicGivenSeed) {
  const Figure1 fig;
  Random rng_a(42);
  Random rng_b(42);
  SimulatedExplorer::Options options;
  options.scenario = Scenario::kAll;
  options.decision_noise = 0.3;
  options.rng = &rng_a;
  const ExplorationResult run_a =
      SimulatedExplorer(options).Explore(fig.tree, Example31User());
  options.rng = &rng_b;
  const ExplorationResult run_b =
      SimulatedExplorer(options).Explore(fig.tree, Example31User());
  EXPECT_DOUBLE_EQ(run_a.items_examined, run_b.items_examined);
  EXPECT_EQ(run_a.relevant_found, run_b.relevant_found);
}

TEST(ExplorationTest, ScenarioNames) {
  EXPECT_EQ(ScenarioToString(Scenario::kAll), "ALL");
  EXPECT_EQ(ScenarioToString(Scenario::kOne), "ONE");
}

TEST(ExplorationTraceTest, Example31Narrative) {
  // The trace of Example 3.1's exploration, as the paper narrates it.
  const Figure1 fig;
  std::vector<ExplorationEvent> events;
  SimulatedExplorer::Options options;
  options.scenario = Scenario::kAll;
  options.trace = &events;
  const SimulatedExplorer explorer(options);
  explorer.Explore(fig.tree, Example31User());
  const std::string narrative = FormatTrace(fig.tree, events);
  const char* kExpected =
      "\"ALL\": explore using SHOWCAT\n"
      "examine \"neighborhood: Redmond, Bellevue\" -> explore using "
      "SHOWCAT\n"
      "examine \"price: 200K-225K\" -> ignore\n"
      "examine \"price: 225K-250K\" -> explore using SHOWTUPLES (20 "
      "tuples, 20 relevant)\n"
      "examine \"price: 250K-300K\" -> ignore\n"
      "examine \"neighborhood: Issaquah, Sammamish\" -> ignore\n"
      "examine \"neighborhood: Seattle\" -> ignore\n";
  EXPECT_EQ(narrative, kExpected);
}

TEST(ExplorationTraceTest, TraceCountsMatchResult) {
  const Figure1 fig;
  std::vector<ExplorationEvent> events;
  SimulatedExplorer::Options options;
  options.scenario = Scenario::kAll;
  options.trace = &events;
  const SimulatedExplorer explorer(options);
  const ExplorationResult run = explorer.Explore(fig.tree, Example31User());
  size_t labels = 0;
  size_t tuples = 0;
  for (const ExplorationEvent& event : events) {
    if (event.kind == ExplorationEvent::Kind::kExamineLabel) {
      ++labels;
    }
    if (event.kind == ExplorationEvent::Kind::kShowTuples) {
      tuples += event.tuples_examined;
    }
  }
  EXPECT_EQ(labels, run.labels_examined);
  EXPECT_EQ(tuples, run.tuples_examined);
}

TEST(ExplorationTraceTest, NullTraceIsFine) {
  const Figure1 fig;
  SimulatedExplorer::Options options;
  options.scenario = Scenario::kOne;
  const SimulatedExplorer explorer(options);
  // No trace sink: must simply not record anything (and not crash).
  const ExplorationResult run = explorer.Explore(fig.tree, Example31User());
  EXPECT_TRUE(run.found_any);
}

// ----------------------------------------------------------------- metrics

TEST(MetricsTest, FractionalCost) {
  ExplorationResult run;
  run.items_examined = 50;
  EXPECT_DOUBLE_EQ(FractionalCost(run, 200), 0.25);
  EXPECT_DOUBLE_EQ(FractionalCost(run, 0), 0);
}

TEST(MetricsTest, NormalizedCost) {
  ExplorationResult run;
  run.items_examined = 60;
  run.relevant_found = 12;
  EXPECT_DOUBLE_EQ(NormalizedCost(run), 5.0);
  run.relevant_found = 0;
  EXPECT_DOUBLE_EQ(NormalizedCost(run), 60.0);  // clamped denominator
}

TEST(MetricsTest, Means) {
  ExplorationResult a;
  a.items_examined = 10;
  a.relevant_found = 2;
  ExplorationResult b;
  b.items_examined = 30;
  b.relevant_found = 4;
  const std::vector<ExplorationResult> runs = {a, b};
  EXPECT_DOUBLE_EQ(MeanItemsExamined(runs), 20.0);
  EXPECT_DOUBLE_EQ(MeanRelevantFound(runs), 3.0);
  EXPECT_DOUBLE_EQ(MeanNormalizedCost(runs), (5.0 + 7.5) / 2);
  EXPECT_DOUBLE_EQ(MeanItemsExamined({}), 0.0);
}

}  // namespace
}  // namespace autocat
