#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace autocat {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryOk) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::NotFound("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing thing");
  EXPECT_EQ(status.ToString(), "not found: missing thing");
}

TEST(StatusTest, EveryFactoryProducesItsCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "parse error");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "I/O error");
}

Status FailsWhenNegative(int x) {
  if (x < 0) {
    return Status::InvalidArgument("negative");
  }
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  AUTOCAT_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  const Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  const Result<int> result = Status::NotFound("gone");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  const Result<int> result = 7;
  EXPECT_EQ(result.value_or(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result = std::string("payload");
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  const Result<std::string> result = std::string("abc");
  EXPECT_EQ(result->size(), 3u);
}

Result<int> Doubled(Result<int> input) {
  AUTOCAT_ASSIGN_OR_RETURN(const int x, std::move(input));
  return 2 * x;
}

TEST(ResultTest, AssignOrReturnHappyPath) {
  const Result<int> result = Doubled(21);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  const Result<int> result = Doubled(Status::Internal("boom"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(ResultDeathTest, AccessingErrorValueAborts) {
  const Result<int> result = Status::NotFound("gone");
  EXPECT_DEATH((void)result.value(), "");
}

TEST(ResultDeathTest, OkStatusIntoResultAborts) {
  EXPECT_DEATH((Result<int>(Status::OK())), "");
}

}  // namespace
}  // namespace autocat
