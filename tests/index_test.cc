// Tests for the sorted column index and index-driven selection.

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "exec/index_scan.h"
#include "storage/index.h"
#include "test_util.h"

namespace autocat {
namespace {

using test::HomesTable;

Table SmallTable() {
  return HomesTable({
      {"b", 300, 3},   // row 0
      {"a", 100, 1},   // row 1
      {"c", 200, 2},   // row 2
      {"a", 300, 4},   // row 3
      {"b", 100, 5},   // row 4
  });
}

TEST(SortedColumnIndexTest, BuildAndLookup) {
  const Table table = SmallTable();
  const auto index = SortedColumnIndex::Build(table, "neighborhood");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->column_name(), "neighborhood");
  EXPECT_EQ(index->num_entries(), 5u);
  EXPECT_EQ(index->Lookup(Value("a")), (std::vector<size_t>{1, 3}));
  EXPECT_EQ(index->Lookup(Value("b")), (std::vector<size_t>{0, 4}));
  EXPECT_TRUE(index->Lookup(Value("zzz")).empty());
  EXPECT_FALSE(SortedColumnIndex::Build(table, "bogus").ok());
}

TEST(SortedColumnIndexTest, NullsAreNotIndexed) {
  Table table(test::HomesSchema());
  ASSERT_TRUE(
      table.AppendRow({Value(), Value(100), Value(1), Value("Condo")})
          .ok());
  ASSERT_TRUE(
      table.AppendRow({Value("a"), Value(200), Value(2), Value("Condo")})
          .ok());
  const auto index = SortedColumnIndex::Build(table, "neighborhood");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_entries(), 1u);
}

TEST(SortedColumnIndexTest, RangeLookupBounds) {
  const Table table = SmallTable();
  const auto index = SortedColumnIndex::Build(table, "price");
  ASSERT_TRUE(index.ok());
  // [100, 300] inclusive: everything.
  EXPECT_EQ(index->RangeLookup(Value(100), true, Value(300), true).size(),
            5u);
  // (100, 300): only the 200.
  EXPECT_EQ(index->RangeLookup(Value(100), false, Value(300), false),
            (std::vector<size_t>{2}));
  // Unbounded low.
  EXPECT_EQ(index->RangeLookup(Value(), true, Value(150), true),
            (std::vector<size_t>{1, 4}));
  // Unbounded high.
  EXPECT_EQ(index->RangeLookup(Value(250), true, Value(), true),
            (std::vector<size_t>{0, 3}));
  // Fully unbounded.
  EXPECT_EQ(index->RangeLookup(Value(), true, Value(), true).size(), 5u);
  // Empty range.
  EXPECT_TRUE(index->RangeLookup(Value(400), true, Value(500), true)
                  .empty());
}

TEST(IndexScanTest, ConditionDispatch) {
  const Table table = SmallTable();
  const auto nb_index = SortedColumnIndex::Build(table, "neighborhood");
  ASSERT_TRUE(nb_index.ok());
  const auto set_cond =
      AttributeCondition::ValueSet({Value("a"), Value("c")});
  EXPECT_EQ(IndexScan(nb_index.value(), set_cond),
            (std::vector<size_t>{1, 2, 3}));

  const auto price_index = SortedColumnIndex::Build(table, "price");
  ASSERT_TRUE(price_index.ok());
  NumericRange r;
  r.lo = 150;
  r.hi = 300;
  r.hi_inclusive = false;
  EXPECT_EQ(IndexScan(price_index.value(), AttributeCondition::Range(r)),
            (std::vector<size_t>{2}));
}

TEST(IndexedTableTest, SelectMatchesFullScan) {
  const Table table = SmallTable();
  const auto indexed = IndexedTable::Build(&table, {});
  ASSERT_TRUE(indexed.ok());
  EXPECT_EQ(indexed->num_indexes(), 4u);
  EXPECT_TRUE(indexed->HasIndex("PRICE"));

  SelectionProfile profile;
  profile.Set("neighborhood",
              AttributeCondition::ValueSet({Value("a"), Value("b")}));
  NumericRange r;
  r.lo = 150;
  profile.Set("price", AttributeCondition::Range(r));
  const auto scan = table.FilterIndices([&](const Row& row) {
    return profile.MatchesRow(row, table.schema());
  });
  EXPECT_EQ(indexed->Select(profile), scan);
}

TEST(IndexedTableTest, UnindexedProfileFallsBackToScan) {
  const Table table = SmallTable();
  const auto indexed = IndexedTable::Build(&table, {"price"});
  ASSERT_TRUE(indexed.ok());
  SelectionProfile profile;
  profile.Set("neighborhood",
              AttributeCondition::ValueSet({Value("a")}));
  EXPECT_EQ(indexed->Select(profile), (std::vector<size_t>{1, 3}));
}

TEST(IndexedTableTest, EmptyProfileSelectsEverything) {
  const Table table = SmallTable();
  const auto indexed = IndexedTable::Build(&table, {});
  ASSERT_TRUE(indexed.ok());
  EXPECT_EQ(indexed->Select(SelectionProfile()).size(), table.num_rows());
}

TEST(IndexedTableTest, NullTableRejected) {
  EXPECT_FALSE(IndexedTable::Build(nullptr, {}).ok());
}

// Property: index-driven selection agrees with the scan on random data
// and random profiles.
class IndexEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(IndexEquivalenceTest, SelectEqualsScan) {
  Random rng(static_cast<uint64_t>(GetParam()) * 31337);
  std::vector<test::HomeRow> rows;
  const char* kNeighborhoods[] = {"a", "b", "c", "d", "e", "f"};
  for (int i = 0; i < 300; ++i) {
    rows.push_back(test::HomeRow{kNeighborhoods[rng.Uniform(0, 5)],
                                 rng.Uniform(0, 50) * 100,
                                 rng.Uniform(1, 6)});
  }
  const Table table = HomesTable(rows);
  const auto indexed = IndexedTable::Build(&table, {});
  ASSERT_TRUE(indexed.ok());

  for (int trial = 0; trial < 40; ++trial) {
    SelectionProfile profile;
    if (rng.Bernoulli(0.7)) {
      std::set<Value> wanted;
      const size_t n = static_cast<size_t>(rng.Uniform(1, 3));
      while (wanted.size() < n) {
        wanted.insert(Value(kNeighborhoods[rng.Uniform(0, 5)]));
      }
      profile.Set("neighborhood",
                  AttributeCondition::ValueSet(std::move(wanted)));
    }
    if (rng.Bernoulli(0.7)) {
      NumericRange r;
      r.lo = static_cast<double>(rng.Uniform(0, 40) * 100);
      r.hi = r.lo + static_cast<double>(rng.Uniform(0, 20) * 100);
      r.lo_inclusive = rng.Bernoulli(0.5);
      r.hi_inclusive = rng.Bernoulli(0.5);
      profile.Set("price", AttributeCondition::Range(r));
    }
    if (rng.Bernoulli(0.4)) {
      NumericRange beds;
      beds.lo = static_cast<double>(rng.Uniform(1, 4));
      beds.hi = beds.lo + 1;
      profile.Set("bedroomcount", AttributeCondition::Range(beds));
    }
    const auto scan = table.FilterIndices([&](const Row& row) {
      return profile.MatchesRow(row, table.schema());
    });
    EXPECT_EQ(indexed->Select(profile), scan)
        << "profile " << profile.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexEquivalenceTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace autocat
