// Tests for the cost-based partitioners (Sections 5.1.2/5.1.3) and the
// baseline partitioners (Section 6.1).

#include "core/partition.h"

#include <gtest/gtest.h>

#include <set>

#include "test_util.h"

namespace autocat {
namespace {

using test::HomesTable;
using test::StatsFromSql;

std::vector<size_t> AllRows(const Table& table) {
  std::vector<size_t> rows(table.num_rows());
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i] = i;
  }
  return rows;
}

// Every partitioner must produce disjoint categories that cover exactly
// the non-NULL tuples.
void ExpectDisjointCover(const std::vector<PartitionCategory>& parts,
                         const Table& table,
                         const std::vector<size_t>& input,
                         const std::string& attribute) {
  const size_t col = table.schema().ColumnIndex(attribute).value();
  std::set<size_t> seen;
  for (const PartitionCategory& part : parts) {
    for (size_t idx : part.tuples) {
      EXPECT_TRUE(seen.insert(idx).second)
          << "tuple " << idx << " placed twice";
      EXPECT_TRUE(part.label.Matches(table.ValueAt(idx, col)))
          << "tuple " << idx << " violates its label "
          << part.label.ToString();
    }
  }
  size_t non_null = 0;
  for (size_t idx : input) {
    if (!table.ValueAt(idx, col).is_null()) {
      ++non_null;
    }
  }
  EXPECT_EQ(seen.size(), non_null);
}

// ------------------------------------------------------------- categorical

TEST(PartitionCategoricalTest, SingleValueCategoriesByOccurrence) {
  const WorkloadStats stats = StatsFromSql({
      "SELECT * FROM homes WHERE neighborhood = 'b'",
      "SELECT * FROM homes WHERE neighborhood = 'b'",
      "SELECT * FROM homes WHERE neighborhood IN ('c', 'b')",
      "SELECT * FROM homes WHERE neighborhood = 'a'",
  });
  const Table table =
      HomesTable({{"a", 1, 1}, {"b", 2, 2}, {"b", 3, 3}, {"c", 4, 4}});
  const auto parts =
      PartitionCategorical(table, AllRows(table), "neighborhood", stats);
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 3u);
  // occ(b)=3 > occ(a)=1 = occ(c)=1; value order breaks the a/c tie.
  EXPECT_EQ((*parts)[0].label.values(), (std::vector<Value>{Value("b")}));
  EXPECT_EQ((*parts)[1].label.values(), (std::vector<Value>{Value("a")}));
  EXPECT_EQ((*parts)[2].label.values(), (std::vector<Value>{Value("c")}));
  EXPECT_EQ((*parts)[0].tuples.size(), 2u);
  ExpectDisjointCover(parts.value(), table, AllRows(table), "neighborhood");
}

TEST(PartitionCategoricalTest, SubsetOfRows) {
  const WorkloadStats stats = StatsFromSql(
      {"SELECT * FROM homes WHERE neighborhood = 'a'"});
  const Table table =
      HomesTable({{"a", 1, 1}, {"b", 2, 2}, {"a", 3, 3}, {"c", 4, 4}});
  const auto parts =
      PartitionCategorical(table, {0, 1}, "neighborhood", stats);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->size(), 2u);
  ExpectDisjointCover(parts.value(), table, {0, 1}, "neighborhood");
}

TEST(PartitionCategoricalTest, UnknownAttributeErrors) {
  const WorkloadStats stats = StatsFromSql(
      {"SELECT * FROM homes WHERE neighborhood = 'a'"});
  const Table table = HomesTable({{"a", 1, 1}});
  EXPECT_FALSE(
      PartitionCategorical(table, AllRows(table), "bogus", stats).ok());
}

TEST(PartitionCategoricalTest, EmptyInputYieldsNoCategories) {
  const WorkloadStats stats = StatsFromSql(
      {"SELECT * FROM homes WHERE neighborhood = 'a'"});
  const Table table = HomesTable({{"a", 1, 1}});
  const auto parts =
      PartitionCategorical(table, {}, "neighborhood", stats);
  ASSERT_TRUE(parts.ok());
  EXPECT_TRUE(parts->empty());
}

// ----------------------------------------------------------------- numeric

TEST(PartitionNumericTest, PicksTopGoodnessSplitPoints) {
  // Goodness: 2000 -> 1 start; 5000 -> 3 (2 ends + 1 start);
  // 8000 -> 2 starts.
  const WorkloadStats stats = StatsFromSql({
      "SELECT * FROM homes WHERE price BETWEEN 2000 AND 5000",
      "SELECT * FROM homes WHERE price BETWEEN 1000 AND 5000",
      "SELECT * FROM homes WHERE price BETWEEN 5000 AND 9000",
      "SELECT * FROM homes WHERE price BETWEEN 8000 AND 9000",
      "SELECT * FROM homes WHERE price BETWEEN 8000 AND 10000",
  });
  const Table table = HomesTable({{"a", 1000, 1},
                                  {"a", 3000, 1},
                                  {"a", 4500, 1},
                                  {"a", 6000, 1},
                                  {"a", 8500, 1},
                                  {"a", 9500, 1}});
  NumericPartitionOptions options;
  options.num_buckets = 3;  // pick 2 split points: 5000 and 8000
  const auto parts = PartitionNumeric(table, AllRows(table), "price", stats,
                                      options, nullptr);
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 3u);
  EXPECT_DOUBLE_EQ((*parts)[0].label.lo(), 1000);
  EXPECT_DOUBLE_EQ((*parts)[0].label.hi(), 5000);
  EXPECT_DOUBLE_EQ((*parts)[1].label.lo(), 5000);
  EXPECT_DOUBLE_EQ((*parts)[1].label.hi(), 8000);
  EXPECT_DOUBLE_EQ((*parts)[2].label.lo(), 8000);
  EXPECT_DOUBLE_EQ((*parts)[2].label.hi(), 9500);
  EXPECT_TRUE((*parts)[2].label.hi_inclusive());
  EXPECT_FALSE((*parts)[0].label.hi_inclusive());
  ExpectDisjointCover(parts.value(), table, AllRows(table), "price");
}

TEST(PartitionNumericTest, SkipsUnnecessarySplitPoints) {
  // 5000 has the best goodness but would create an empty bucket
  // [5000, 9000) -- Example 5.1's "skip and take the next" behaviour.
  const WorkloadStats stats = StatsFromSql({
      "SELECT * FROM homes WHERE price BETWEEN 5000 AND 9000",
      "SELECT * FROM homes WHERE price BETWEEN 5000 AND 9000",
      "SELECT * FROM homes WHERE price BETWEEN 2000 AND 9000",
  });
  const Table table = HomesTable({{"a", 1000, 1},
                                  {"a", 1500, 1},
                                  {"a", 3000, 1},
                                  {"a", 4000, 1},
                                  {"a", 9000, 1}});
  NumericPartitionOptions options;
  options.num_buckets = 2;
  options.min_bucket_tuples = 2;
  const auto parts = PartitionNumeric(table, AllRows(table), "price", stats,
                                      options, nullptr);
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 2u);
  // 5000 was skipped (its upper bucket [5000, 9000] would hold a single
  // tuple, below the 2-tuple floor); 2000 is the next best and splits 2|3.
  EXPECT_DOUBLE_EQ((*parts)[0].label.hi(), 2000);
  EXPECT_EQ((*parts)[0].tuples.size(), 2u);
  EXPECT_EQ((*parts)[1].tuples.size(), 3u);
}

TEST(PartitionNumericTest, QueryRangeSuppliesBounds) {
  const WorkloadStats stats = StatsFromSql({
      "SELECT * FROM homes WHERE price BETWEEN 2000 AND 4000",
  });
  const Table table = HomesTable({{"a", 2500, 1}, {"a", 3500, 1}});
  NumericRange query_range;
  query_range.lo = 0;
  query_range.hi = 10000;
  NumericPartitionOptions options;
  options.num_buckets = 3;
  const auto parts = PartitionNumeric(table, AllRows(table), "price", stats,
                                      options, &query_range);
  ASSERT_TRUE(parts.ok());
  ASSERT_FALSE(parts->empty());
  // Buckets span the query range, not just the data range.
  EXPECT_DOUBLE_EQ(parts->front().label.lo(), 0);
  EXPECT_DOUBLE_EQ(parts->back().label.hi(), 10000);
  ExpectDisjointCover(parts.value(), table, AllRows(table), "price");
}

TEST(PartitionNumericTest, NoSplitPointsYieldsSingleBucket) {
  const WorkloadStats stats = StatsFromSql({
      "SELECT * FROM homes WHERE neighborhood = 'a'",  // nothing on price
  });
  const Table table = HomesTable({{"a", 1000, 1}, {"a", 2000, 1}});
  NumericPartitionOptions options;
  const auto parts = PartitionNumeric(table, AllRows(table), "price", stats,
                                      options, nullptr);
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 1u);
  EXPECT_EQ(parts->front().tuples.size(), 2u);
}

TEST(PartitionNumericTest, SingleValueDomain) {
  const WorkloadStats stats = StatsFromSql({
      "SELECT * FROM homes WHERE price BETWEEN 1000 AND 2000",
  });
  const Table table = HomesTable({{"a", 1500, 1}, {"b", 1500, 2}});
  NumericPartitionOptions options;
  const auto parts = PartitionNumeric(table, AllRows(table), "price", stats,
                                      options, nullptr);
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 1u);
  EXPECT_EQ(parts->front().tuples.size(), 2u);
  EXPECT_TRUE(parts->front().label.Matches(Value(1500)));
}

TEST(PartitionNumericTest, DerivesBucketCountFromM) {
  // 100 tuples, M = 10 -> wants ceil(100/10) = 10 buckets, capped by
  // max_buckets and by available split points.
  std::vector<test::HomeRow> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back(test::HomeRow{"a", (i % 10) * 1000, 1});
  }
  const Table table = HomesTable(rows);
  std::vector<std::string> sqls;
  for (int v = 1; v <= 9; ++v) {
    sqls.push_back("SELECT * FROM homes WHERE price BETWEEN 0 AND " +
                   std::to_string(v * 1000));
  }
  const WorkloadStats stats = StatsFromSql(sqls);
  NumericPartitionOptions options;
  options.max_tuples_per_category = 10;
  options.max_buckets = 6;
  const auto parts = PartitionNumeric(table, AllRows(table), "price", stats,
                                      options, nullptr);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->size(), 6u);  // capped at max_buckets
  ExpectDisjointCover(parts.value(), table, AllRows(table), "price");
}

TEST(PartitionNumericTest, CategoricalAttributeErrors) {
  const WorkloadStats stats = StatsFromSql(
      {"SELECT * FROM homes WHERE neighborhood = 'a'"});
  const Table table = HomesTable({{"a", 1, 1}});
  NumericPartitionOptions options;
  EXPECT_FALSE(PartitionNumeric(table, AllRows(table), "neighborhood",
                                stats, options, nullptr)
                   .ok());
}

// ---------------------------------------------------------------- baseline

TEST(PartitionArbitraryTest, ValueOrderWithoutRng) {
  const WorkloadStats stats = StatsFromSql(
      {"SELECT * FROM homes WHERE neighborhood = 'z'"});
  const Table table =
      HomesTable({{"c", 1, 1}, {"a", 2, 2}, {"b", 3, 3}});
  const auto parts = PartitionCategoricalArbitrary(
      table, AllRows(table), "neighborhood", nullptr);
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 3u);
  EXPECT_EQ((*parts)[0].label.values()[0], Value("a"));
  EXPECT_EQ((*parts)[1].label.values()[0], Value("b"));
  EXPECT_EQ((*parts)[2].label.values()[0], Value("c"));
}

TEST(PartitionArbitraryTest, ShuffledWithRngButStillAPartition) {
  const Table table = HomesTable(
      {{"c", 1, 1}, {"a", 2, 2}, {"b", 3, 3}, {"a", 4, 4}, {"d", 5, 5}});
  Random rng(99);
  const auto parts = PartitionCategoricalArbitrary(
      table, AllRows(table), "neighborhood", &rng);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->size(), 4u);
  ExpectDisjointCover(parts.value(), table, AllRows(table), "neighborhood");
}

TEST(PartitionEquiWidthTest, BucketsAlignedToWidthMultiples) {
  const Table table = HomesTable({{"a", 210000, 1},
                                  {"a", 230000, 1},
                                  {"a", 260000, 1},
                                  {"a", 299000, 1}});
  const auto parts = PartitionNumericEquiWidth(table, AllRows(table),
                                               "price", 25000, nullptr);
  ASSERT_TRUE(parts.ok());
  // Aligned buckets: [200K,225K) {210K}, [225K,250K) {230K},
  // [250K,275K) {260K}, [275K,300K] {299K}.
  ASSERT_EQ(parts->size(), 4u);
  EXPECT_DOUBLE_EQ((*parts)[0].label.lo(), 200000);
  EXPECT_DOUBLE_EQ((*parts)[0].label.hi(), 225000);
  ExpectDisjointCover(parts.value(), table, AllRows(table), "price");
}

TEST(PartitionEquiWidthTest, EmptyBucketsRemoved) {
  const Table table = HomesTable({{"a", 0, 1}, {"a", 100000, 1}});
  const auto parts = PartitionNumericEquiWidth(table, AllRows(table),
                                               "price", 10000, nullptr);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->size(), 2u);  // the 9 empty middles are dropped
}

TEST(PartitionEquiWidthTest, InvalidWidthErrors) {
  const Table table = HomesTable({{"a", 1, 1}});
  EXPECT_FALSE(
      PartitionNumericEquiWidth(table, AllRows(table), "price", 0, nullptr)
          .ok());
  EXPECT_FALSE(PartitionNumericEquiWidth(table, AllRows(table), "price",
                                         -10, nullptr)
                   .ok());
}

// Property: both numeric partitioners produce disjoint covering buckets in
// ascending order, for random data and random workloads.
class NumericPartitionPropertyTest : public ::testing::TestWithParam<int> {
};

TEST_P(NumericPartitionPropertyTest, DisjointCoverAscending) {
  Random rng(static_cast<uint64_t>(GetParam()));
  std::vector<test::HomeRow> rows;
  for (int i = 0; i < 80; ++i) {
    rows.push_back(
        test::HomeRow{"a", rng.Uniform(0, 20) * 500, rng.Uniform(1, 5)});
  }
  const Table table = HomesTable(rows);
  std::vector<std::string> sqls;
  for (int i = 0; i < 15; ++i) {
    const int64_t lo = rng.Uniform(0, 9) * 1000;
    sqls.push_back("SELECT * FROM homes WHERE price BETWEEN " +
                   std::to_string(lo) + " AND " +
                   std::to_string(lo + rng.Uniform(1, 5) * 1000));
  }
  const WorkloadStats stats = StatsFromSql(sqls);
  NumericPartitionOptions options;
  options.max_tuples_per_category =
      static_cast<size_t>(rng.Uniform(5, 30));
  const auto cost_based = PartitionNumeric(table, AllRows(table), "price",
                                           stats, options, nullptr);
  ASSERT_TRUE(cost_based.ok());
  ExpectDisjointCover(cost_based.value(), table, AllRows(table), "price");
  for (size_t i = 1; i < cost_based->size(); ++i) {
    EXPECT_LE((*cost_based)[i - 1].label.hi(), (*cost_based)[i].label.lo());
  }

  const auto equi = PartitionNumericEquiWidth(table, AllRows(table),
                                              "price", 2500, nullptr);
  ASSERT_TRUE(equi.ok());
  ExpectDisjointCover(equi.value(), table, AllRows(table), "price");
}

INSTANTIATE_TEST_SUITE_P(Seeds, NumericPartitionPropertyTest,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace autocat
