#ifndef AUTOCAT_TESTS_EQUIVALENCE_FIXTURE_H_
#define AUTOCAT_TESTS_EQUIVALENCE_FIXTURE_H_

// Shared fixture for the equivalence gates (row-vs-columnar and
// legacy-vs-pipeline): the SQL fuzz harness's homes schema, a
// deterministic table seeded with hostile edge values, bit-exact
// value/table comparison, and the randomized query generator. Everything
// is inline so each test binary keeps internal copies.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/table.h"

// ASSERT that `rexpr` (a Result) is ok and move its value into `decl`.
// Usable only where ASSERT_* is (void-returning test bodies).
#define AUTOCAT_EQUIV_CONCAT_(a, b) a##b
#define AUTOCAT_EQUIV_CONCAT(a, b) AUTOCAT_EQUIV_CONCAT_(a, b)
#define AUTOCAT_ASSERT_OK_AND_MOVE(decl, rexpr)                     \
  auto AUTOCAT_EQUIV_CONCAT(result_, __LINE__) = (rexpr);           \
  ASSERT_TRUE(AUTOCAT_EQUIV_CONCAT(result_, __LINE__).ok())         \
      << AUTOCAT_EQUIV_CONCAT(result_, __LINE__).status().ToString(); \
  decl = std::move(AUTOCAT_EQUIV_CONCAT(result_, __LINE__)).value()

namespace autocat {
namespace equiv {

// The homes schema of the SQL fuzz harness (tests/fuzz/sql_parser_fuzz.cc):
// the corpus queries reference exactly these columns and types.
inline Schema FuzzSchema() {
  auto schema = Schema::Create({
      ColumnDef("neighborhood", ValueType::kString,
                ColumnKind::kCategorical),
      ColumnDef("city", ValueType::kString, ColumnKind::kCategorical),
      ColumnDef("propertytype", ValueType::kString,
                ColumnKind::kCategorical),
      ColumnDef("price", ValueType::kDouble, ColumnKind::kNumeric),
      ColumnDef("bedroomcount", ValueType::kInt64, ColumnKind::kNumeric),
      ColumnDef("bathcount", ValueType::kDouble, ColumnKind::kNumeric),
      ColumnDef("squarefootage", ValueType::kDouble, ColumnKind::kNumeric),
      ColumnDef("yearbuilt", ValueType::kInt64, ColumnKind::kNumeric),
  });
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

inline constexpr const char* const kNeighborhoods[] = {
    "Redmond", "Bellevue", "Seattle", "Kirkland", "Ballard", "Queen Anne"};
inline constexpr const char* const kCities[] = {"Seattle", "Bellevue",
                                                "Redmond"};
inline constexpr const char* const kTypes[] = {"Single Family", "Condo",
                                               "Townhome"};

// Deterministic table over FuzzSchema. `null_p` sprinkles NULL cells;
// `with_hostile_cells` plants values with sharp comparison semantics:
// NaN (Value::Compare treats it as equal to everything), signed zeros,
// 2^53 + 1 (not representable as double), and the int64 extremes.
// Partition/sort-based tests pass with_hostile_cells = false because the
// row path itself feeds values into std::sort / std::map, whose ordering
// contracts NaN would break on either path.
inline Table MakeHomes(size_t n, uint64_t seed, double null_p,
                       bool with_hostile_cells) {
  Table table(FuzzSchema());
  Random rng(seed);
  for (size_t i = 0; i < n; ++i) {
    Row row;
    auto cell = [&](Value v) {
      row.push_back(rng.Bernoulli(null_p) ? Value() : std::move(v));
    };
    cell(Value(kNeighborhoods[rng.Uniform(0, 5)]));
    cell(Value(kCities[rng.Uniform(0, 2)]));
    cell(Value(kTypes[rng.Uniform(0, 2)]));

    double price = rng.UniformReal(50000, 900000);
    if (rng.Bernoulli(0.2)) {
      price = 25000.0 * rng.Uniform(2, 30);  // exact split-point multiples
    }
    cell(Value(price));
    cell(Value(rng.Uniform(0, 8)));
    cell(Value(0.25 * rng.Uniform(4, 20)));
    cell(Value(rng.UniformReal(300, 8000)));
    cell(Value(rng.Uniform(1900, 2026)));

    if (with_hostile_cells && i % 17 == 0) {
      const size_t variant = i / 17 % 6;
      switch (variant) {
        case 0:
          row[3] = Value(std::numeric_limits<double>::quiet_NaN());
          break;
        case 1:
          row[3] = Value(-0.0);
          break;
        case 2:
          row[3] = Value(0.0);
          break;
        case 3:
          row[4] = Value(std::numeric_limits<int64_t>::max());
          break;
        case 4:
          row[4] = Value(std::numeric_limits<int64_t>::min());
          break;
        default:
          row[7] = Value(int64_t{9007199254740993});  // 2^53 + 1
          break;
      }
    }
    EXPECT_TRUE(table.AppendRow(std::move(row)).ok());
  }
  return table;
}

// Bit-exact cell equality: same dynamic type, and doubles compared by
// representation so NaN == NaN and -0.0 != 0.0 (Value::operator== would
// accept int64(3) == double(3.0) and any NaN == anything).
inline bool BitIdentical(const Value& a, const Value& b) {
  if (a.type() != b.type()) {
    return false;
  }
  switch (a.type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kInt64:
      return a.int64_value() == b.int64_value();
    case ValueType::kDouble: {
      uint64_t ba = 0;
      uint64_t bb = 0;
      const double da = a.double_value();
      const double db = b.double_value();
      std::memcpy(&ba, &da, sizeof(ba));
      std::memcpy(&bb, &db, sizeof(bb));
      return ba == bb;
    }
    case ValueType::kString:
      return a.string_value() == b.string_value();
  }
  return false;
}

inline void ExpectTablesBitIdentical(const Table& row_result,
                                     const Table& col_result,
                                     const std::string& context) {
  ASSERT_EQ(row_result.schema().num_columns(),
            col_result.schema().num_columns())
      << context;
  for (size_t c = 0; c < row_result.schema().num_columns(); ++c) {
    EXPECT_EQ(row_result.schema().column(c).name,
              col_result.schema().column(c).name)
        << context;
    EXPECT_EQ(row_result.schema().column(c).type,
              col_result.schema().column(c).type)
        << context;
    EXPECT_EQ(row_result.schema().column(c).kind,
              col_result.schema().column(c).kind)
        << context;
  }
  ASSERT_EQ(row_result.num_rows(), col_result.num_rows()) << context;
  for (size_t r = 0; r < row_result.num_rows(); ++r) {
    for (size_t c = 0; c < row_result.schema().num_columns(); ++c) {
      ASSERT_TRUE(
          BitIdentical(row_result.ValueAt(r, c), col_result.ValueAt(r, c)))
          << context << " differs at row " << r << " col " << c << ": "
          << row_result.ValueAt(r, c).ToString() << " vs "
          << col_result.ValueAt(r, c).ToString();
    }
  }
}

inline std::string RandomLiteral(Random& rng, size_t col) {
  if (col <= 2) {  // string columns
    const char* const* vocab =
        col == 0 ? kNeighborhoods : (col == 1 ? kCities : kTypes);
    const int64_t hi = col == 0 ? 5 : 2;
    return std::string("'") + vocab[rng.Uniform(0, hi)] + "'";
  }
  switch (rng.Uniform(0, 3)) {
    case 0:
      return std::to_string(rng.Uniform(-5, 1000000));
    case 1:
      return std::to_string(25000.0 * rng.Uniform(0, 30));
    case 2:
      return "9007199254740993";  // 2^53 + 1
    default:
      return std::to_string(rng.UniformReal(0, 900000));
  }
}

inline std::string RandomCondition(Random& rng, const Schema& schema) {
  // Occasionally target an unknown column or cross the string/numeric
  // class boundary: the columnar path must then reproduce the row path's
  // behavior (error or empty result) exactly, not merely "do something
  // reasonable".
  const bool hostile = rng.Bernoulli(0.15);
  const size_t col = static_cast<size_t>(rng.Uniform(0, 7));
  std::string name =
      hostile && rng.Bernoulli(0.3) ? "bogus" : schema.column(col).name;
  const size_t lit_col =
      hostile ? static_cast<size_t>(rng.Uniform(0, 7)) : col;
  switch (rng.Uniform(0, 6)) {
    case 0:
      return name + " = " + RandomLiteral(rng, lit_col);
    case 1:
      return name + " <> " + RandomLiteral(rng, lit_col);
    case 2: {
      const char* const ops[] = {"<", "<=", ">", ">="};
      return name + " " + ops[rng.Uniform(0, 3)] + " " +
             RandomLiteral(rng, lit_col);
    }
    case 3: {
      std::string a = RandomLiteral(rng, lit_col);
      std::string b = RandomLiteral(rng, lit_col);
      return name + (rng.Bernoulli(0.3) ? " NOT BETWEEN " : " BETWEEN ") +
             a + " AND " + b;
    }
    case 4: {
      std::string list = RandomLiteral(rng, lit_col);
      const int64_t extra = rng.Uniform(0, 3);
      for (int64_t i = 0; i < extra; ++i) {
        list += ", " + RandomLiteral(rng, lit_col);
      }
      return name + (rng.Bernoulli(0.3) ? " NOT IN (" : " IN (") + list +
             ")";
    }
    default:
      return name + (rng.Bernoulli(0.5) ? " IS NULL" : " IS NOT NULL");
  }
}

inline std::string RandomQuery(Random& rng, const Schema& schema) {
  std::string sql = "SELECT * FROM homes WHERE ";
  const int64_t conds = rng.Uniform(1, 3);
  for (int64_t i = 0; i < conds; ++i) {
    if (i > 0) {
      sql += rng.Bernoulli(0.5) ? " AND " : " OR ";
    }
    sql += RandomCondition(rng, schema);
  }
  return sql;
}

}  // namespace equiv
}  // namespace autocat

#endif  // AUTOCAT_TESTS_EQUIVALENCE_FIXTURE_H_
