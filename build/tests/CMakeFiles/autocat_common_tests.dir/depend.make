# Empty dependencies file for autocat_common_tests.
# This may be replaced when dependencies are built.
