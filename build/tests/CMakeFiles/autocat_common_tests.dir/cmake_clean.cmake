file(REMOVE_RECURSE
  "CMakeFiles/autocat_common_tests.dir/common_status_test.cc.o"
  "CMakeFiles/autocat_common_tests.dir/common_status_test.cc.o.d"
  "CMakeFiles/autocat_common_tests.dir/common_util_test.cc.o"
  "CMakeFiles/autocat_common_tests.dir/common_util_test.cc.o.d"
  "CMakeFiles/autocat_common_tests.dir/common_value_test.cc.o"
  "CMakeFiles/autocat_common_tests.dir/common_value_test.cc.o.d"
  "CMakeFiles/autocat_common_tests.dir/storage_test.cc.o"
  "CMakeFiles/autocat_common_tests.dir/storage_test.cc.o.d"
  "autocat_common_tests"
  "autocat_common_tests.pdb"
  "autocat_common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocat_common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
