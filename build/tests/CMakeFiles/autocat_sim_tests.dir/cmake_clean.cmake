file(REMOVE_RECURSE
  "CMakeFiles/autocat_sim_tests.dir/robustness_test.cc.o"
  "CMakeFiles/autocat_sim_tests.dir/robustness_test.cc.o.d"
  "CMakeFiles/autocat_sim_tests.dir/seed_robustness_test.cc.o"
  "CMakeFiles/autocat_sim_tests.dir/seed_robustness_test.cc.o.d"
  "CMakeFiles/autocat_sim_tests.dir/simgen_test.cc.o"
  "CMakeFiles/autocat_sim_tests.dir/simgen_test.cc.o.d"
  "CMakeFiles/autocat_sim_tests.dir/study_api_test.cc.o"
  "CMakeFiles/autocat_sim_tests.dir/study_api_test.cc.o.d"
  "CMakeFiles/autocat_sim_tests.dir/study_integration_test.cc.o"
  "CMakeFiles/autocat_sim_tests.dir/study_integration_test.cc.o.d"
  "autocat_sim_tests"
  "autocat_sim_tests.pdb"
  "autocat_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocat_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
