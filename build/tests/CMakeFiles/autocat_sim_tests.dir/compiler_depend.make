# Empty compiler generated dependencies file for autocat_sim_tests.
# This may be replaced when dependencies are built.
