# Empty dependencies file for autocat_sql_tests.
# This may be replaced when dependencies are built.
