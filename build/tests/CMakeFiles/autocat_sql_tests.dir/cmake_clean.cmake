file(REMOVE_RECURSE
  "CMakeFiles/autocat_sql_tests.dir/exec_test.cc.o"
  "CMakeFiles/autocat_sql_tests.dir/exec_test.cc.o.d"
  "CMakeFiles/autocat_sql_tests.dir/index_test.cc.o"
  "CMakeFiles/autocat_sql_tests.dir/index_test.cc.o.d"
  "CMakeFiles/autocat_sql_tests.dir/sql_parser_test.cc.o"
  "CMakeFiles/autocat_sql_tests.dir/sql_parser_test.cc.o.d"
  "CMakeFiles/autocat_sql_tests.dir/sql_selection_test.cc.o"
  "CMakeFiles/autocat_sql_tests.dir/sql_selection_test.cc.o.d"
  "CMakeFiles/autocat_sql_tests.dir/workload_test.cc.o"
  "CMakeFiles/autocat_sql_tests.dir/workload_test.cc.o.d"
  "autocat_sql_tests"
  "autocat_sql_tests.pdb"
  "autocat_sql_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocat_sql_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
