file(REMOVE_RECURSE
  "CMakeFiles/autocat_core_tests.dir/core_categorizer_test.cc.o"
  "CMakeFiles/autocat_core_tests.dir/core_categorizer_test.cc.o.d"
  "CMakeFiles/autocat_core_tests.dir/core_category_test.cc.o"
  "CMakeFiles/autocat_core_tests.dir/core_category_test.cc.o.d"
  "CMakeFiles/autocat_core_tests.dir/core_cost_model_test.cc.o"
  "CMakeFiles/autocat_core_tests.dir/core_cost_model_test.cc.o.d"
  "CMakeFiles/autocat_core_tests.dir/core_extensions_test.cc.o"
  "CMakeFiles/autocat_core_tests.dir/core_extensions_test.cc.o.d"
  "CMakeFiles/autocat_core_tests.dir/core_ordering_test.cc.o"
  "CMakeFiles/autocat_core_tests.dir/core_ordering_test.cc.o.d"
  "CMakeFiles/autocat_core_tests.dir/core_partition_test.cc.o"
  "CMakeFiles/autocat_core_tests.dir/core_partition_test.cc.o.d"
  "CMakeFiles/autocat_core_tests.dir/explore_test.cc.o"
  "CMakeFiles/autocat_core_tests.dir/explore_test.cc.o.d"
  "CMakeFiles/autocat_core_tests.dir/invariants_test.cc.o"
  "CMakeFiles/autocat_core_tests.dir/invariants_test.cc.o.d"
  "autocat_core_tests"
  "autocat_core_tests.pdb"
  "autocat_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocat_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
