# Empty dependencies file for autocat_core_tests.
# This may be replaced when dependencies are built.
