# Empty compiler generated dependencies file for autocat_cli.
# This may be replaced when dependencies are built.
