file(REMOVE_RECURSE
  "CMakeFiles/autocat_cli.dir/autocat_cli.cc.o"
  "CMakeFiles/autocat_cli.dir/autocat_cli.cc.o.d"
  "autocat_cli"
  "autocat_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocat_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
