file(REMOVE_RECURSE
  "CMakeFiles/autocat_simgen.dir/geo.cc.o"
  "CMakeFiles/autocat_simgen.dir/geo.cc.o.d"
  "CMakeFiles/autocat_simgen.dir/homes_generator.cc.o"
  "CMakeFiles/autocat_simgen.dir/homes_generator.cc.o.d"
  "CMakeFiles/autocat_simgen.dir/study.cc.o"
  "CMakeFiles/autocat_simgen.dir/study.cc.o.d"
  "CMakeFiles/autocat_simgen.dir/user_simulator.cc.o"
  "CMakeFiles/autocat_simgen.dir/user_simulator.cc.o.d"
  "CMakeFiles/autocat_simgen.dir/workload_generator.cc.o"
  "CMakeFiles/autocat_simgen.dir/workload_generator.cc.o.d"
  "libautocat_simgen.a"
  "libautocat_simgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocat_simgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
