file(REMOVE_RECURSE
  "libautocat_simgen.a"
)
