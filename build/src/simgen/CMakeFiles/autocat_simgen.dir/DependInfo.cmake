
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simgen/geo.cc" "src/simgen/CMakeFiles/autocat_simgen.dir/geo.cc.o" "gcc" "src/simgen/CMakeFiles/autocat_simgen.dir/geo.cc.o.d"
  "/root/repo/src/simgen/homes_generator.cc" "src/simgen/CMakeFiles/autocat_simgen.dir/homes_generator.cc.o" "gcc" "src/simgen/CMakeFiles/autocat_simgen.dir/homes_generator.cc.o.d"
  "/root/repo/src/simgen/study.cc" "src/simgen/CMakeFiles/autocat_simgen.dir/study.cc.o" "gcc" "src/simgen/CMakeFiles/autocat_simgen.dir/study.cc.o.d"
  "/root/repo/src/simgen/user_simulator.cc" "src/simgen/CMakeFiles/autocat_simgen.dir/user_simulator.cc.o" "gcc" "src/simgen/CMakeFiles/autocat_simgen.dir/user_simulator.cc.o.d"
  "/root/repo/src/simgen/workload_generator.cc" "src/simgen/CMakeFiles/autocat_simgen.dir/workload_generator.cc.o" "gcc" "src/simgen/CMakeFiles/autocat_simgen.dir/workload_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/autocat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/autocat_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/explore/CMakeFiles/autocat_explore.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/autocat_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/autocat_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/autocat_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/autocat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
