# Empty dependencies file for autocat_simgen.
# This may be replaced when dependencies are built.
