# Empty compiler generated dependencies file for autocat_exec.
# This may be replaced when dependencies are built.
