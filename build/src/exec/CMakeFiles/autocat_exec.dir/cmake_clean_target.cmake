file(REMOVE_RECURSE
  "libautocat_exec.a"
)
