file(REMOVE_RECURSE
  "CMakeFiles/autocat_exec.dir/executor.cc.o"
  "CMakeFiles/autocat_exec.dir/executor.cc.o.d"
  "CMakeFiles/autocat_exec.dir/index_scan.cc.o"
  "CMakeFiles/autocat_exec.dir/index_scan.cc.o.d"
  "CMakeFiles/autocat_exec.dir/predicate.cc.o"
  "CMakeFiles/autocat_exec.dir/predicate.cc.o.d"
  "libautocat_exec.a"
  "libautocat_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocat_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
