# Empty compiler generated dependencies file for autocat_sql.
# This may be replaced when dependencies are built.
