file(REMOVE_RECURSE
  "libautocat_sql.a"
)
