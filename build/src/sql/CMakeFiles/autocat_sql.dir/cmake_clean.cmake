file(REMOVE_RECURSE
  "CMakeFiles/autocat_sql.dir/ast.cc.o"
  "CMakeFiles/autocat_sql.dir/ast.cc.o.d"
  "CMakeFiles/autocat_sql.dir/lexer.cc.o"
  "CMakeFiles/autocat_sql.dir/lexer.cc.o.d"
  "CMakeFiles/autocat_sql.dir/parser.cc.o"
  "CMakeFiles/autocat_sql.dir/parser.cc.o.d"
  "CMakeFiles/autocat_sql.dir/selection.cc.o"
  "CMakeFiles/autocat_sql.dir/selection.cc.o.d"
  "libautocat_sql.a"
  "libautocat_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocat_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
