file(REMOVE_RECURSE
  "libautocat_explore.a"
)
