file(REMOVE_RECURSE
  "CMakeFiles/autocat_explore.dir/exploration.cc.o"
  "CMakeFiles/autocat_explore.dir/exploration.cc.o.d"
  "CMakeFiles/autocat_explore.dir/metrics.cc.o"
  "CMakeFiles/autocat_explore.dir/metrics.cc.o.d"
  "CMakeFiles/autocat_explore.dir/trace.cc.o"
  "CMakeFiles/autocat_explore.dir/trace.cc.o.d"
  "libautocat_explore.a"
  "libautocat_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocat_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
