# Empty dependencies file for autocat_explore.
# This may be replaced when dependencies are built.
