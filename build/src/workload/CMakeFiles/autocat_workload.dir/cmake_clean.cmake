file(REMOVE_RECURSE
  "CMakeFiles/autocat_workload.dir/counts.cc.o"
  "CMakeFiles/autocat_workload.dir/counts.cc.o.d"
  "CMakeFiles/autocat_workload.dir/workload.cc.o"
  "CMakeFiles/autocat_workload.dir/workload.cc.o.d"
  "libautocat_workload.a"
  "libautocat_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocat_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
