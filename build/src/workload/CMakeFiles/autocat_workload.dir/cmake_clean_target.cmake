file(REMOVE_RECURSE
  "libautocat_workload.a"
)
