# Empty dependencies file for autocat_workload.
# This may be replaced when dependencies are built.
