file(REMOVE_RECURSE
  "CMakeFiles/autocat_storage.dir/column_stats.cc.o"
  "CMakeFiles/autocat_storage.dir/column_stats.cc.o.d"
  "CMakeFiles/autocat_storage.dir/csv.cc.o"
  "CMakeFiles/autocat_storage.dir/csv.cc.o.d"
  "CMakeFiles/autocat_storage.dir/index.cc.o"
  "CMakeFiles/autocat_storage.dir/index.cc.o.d"
  "CMakeFiles/autocat_storage.dir/schema.cc.o"
  "CMakeFiles/autocat_storage.dir/schema.cc.o.d"
  "CMakeFiles/autocat_storage.dir/table.cc.o"
  "CMakeFiles/autocat_storage.dir/table.cc.o.d"
  "libautocat_storage.a"
  "libautocat_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocat_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
