# Empty compiler generated dependencies file for autocat_storage.
# This may be replaced when dependencies are built.
