file(REMOVE_RECURSE
  "libautocat_storage.a"
)
