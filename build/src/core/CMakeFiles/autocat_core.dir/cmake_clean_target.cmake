file(REMOVE_RECURSE
  "libautocat_core.a"
)
