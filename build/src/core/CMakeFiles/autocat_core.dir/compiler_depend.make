# Empty compiler generated dependencies file for autocat_core.
# This may be replaced when dependencies are built.
