file(REMOVE_RECURSE
  "CMakeFiles/autocat_core.dir/categorizer.cc.o"
  "CMakeFiles/autocat_core.dir/categorizer.cc.o.d"
  "CMakeFiles/autocat_core.dir/category.cc.o"
  "CMakeFiles/autocat_core.dir/category.cc.o.d"
  "CMakeFiles/autocat_core.dir/correlation.cc.o"
  "CMakeFiles/autocat_core.dir/correlation.cc.o.d"
  "CMakeFiles/autocat_core.dir/cost_model.cc.o"
  "CMakeFiles/autocat_core.dir/cost_model.cc.o.d"
  "CMakeFiles/autocat_core.dir/enumerate.cc.o"
  "CMakeFiles/autocat_core.dir/enumerate.cc.o.d"
  "CMakeFiles/autocat_core.dir/export.cc.o"
  "CMakeFiles/autocat_core.dir/export.cc.o.d"
  "CMakeFiles/autocat_core.dir/ordering.cc.o"
  "CMakeFiles/autocat_core.dir/ordering.cc.o.d"
  "CMakeFiles/autocat_core.dir/partition.cc.o"
  "CMakeFiles/autocat_core.dir/partition.cc.o.d"
  "CMakeFiles/autocat_core.dir/probability.cc.o"
  "CMakeFiles/autocat_core.dir/probability.cc.o.d"
  "CMakeFiles/autocat_core.dir/ranking.cc.o"
  "CMakeFiles/autocat_core.dir/ranking.cc.o.d"
  "libautocat_core.a"
  "libautocat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocat_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
