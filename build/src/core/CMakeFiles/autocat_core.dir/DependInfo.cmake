
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/categorizer.cc" "src/core/CMakeFiles/autocat_core.dir/categorizer.cc.o" "gcc" "src/core/CMakeFiles/autocat_core.dir/categorizer.cc.o.d"
  "/root/repo/src/core/category.cc" "src/core/CMakeFiles/autocat_core.dir/category.cc.o" "gcc" "src/core/CMakeFiles/autocat_core.dir/category.cc.o.d"
  "/root/repo/src/core/correlation.cc" "src/core/CMakeFiles/autocat_core.dir/correlation.cc.o" "gcc" "src/core/CMakeFiles/autocat_core.dir/correlation.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/autocat_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/autocat_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/enumerate.cc" "src/core/CMakeFiles/autocat_core.dir/enumerate.cc.o" "gcc" "src/core/CMakeFiles/autocat_core.dir/enumerate.cc.o.d"
  "/root/repo/src/core/export.cc" "src/core/CMakeFiles/autocat_core.dir/export.cc.o" "gcc" "src/core/CMakeFiles/autocat_core.dir/export.cc.o.d"
  "/root/repo/src/core/ordering.cc" "src/core/CMakeFiles/autocat_core.dir/ordering.cc.o" "gcc" "src/core/CMakeFiles/autocat_core.dir/ordering.cc.o.d"
  "/root/repo/src/core/partition.cc" "src/core/CMakeFiles/autocat_core.dir/partition.cc.o" "gcc" "src/core/CMakeFiles/autocat_core.dir/partition.cc.o.d"
  "/root/repo/src/core/probability.cc" "src/core/CMakeFiles/autocat_core.dir/probability.cc.o" "gcc" "src/core/CMakeFiles/autocat_core.dir/probability.cc.o.d"
  "/root/repo/src/core/ranking.cc" "src/core/CMakeFiles/autocat_core.dir/ranking.cc.o" "gcc" "src/core/CMakeFiles/autocat_core.dir/ranking.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/autocat_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/autocat_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/autocat_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/autocat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
