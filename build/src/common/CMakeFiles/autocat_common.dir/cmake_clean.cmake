file(REMOVE_RECURSE
  "CMakeFiles/autocat_common.dir/random.cc.o"
  "CMakeFiles/autocat_common.dir/random.cc.o.d"
  "CMakeFiles/autocat_common.dir/statistics.cc.o"
  "CMakeFiles/autocat_common.dir/statistics.cc.o.d"
  "CMakeFiles/autocat_common.dir/status.cc.o"
  "CMakeFiles/autocat_common.dir/status.cc.o.d"
  "CMakeFiles/autocat_common.dir/string_util.cc.o"
  "CMakeFiles/autocat_common.dir/string_util.cc.o.d"
  "CMakeFiles/autocat_common.dir/value.cc.o"
  "CMakeFiles/autocat_common.dir/value.cc.o.d"
  "libautocat_common.a"
  "libautocat_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocat_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
