file(REMOVE_RECURSE
  "libautocat_common.a"
)
