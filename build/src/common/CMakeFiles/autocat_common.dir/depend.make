# Empty dependencies file for autocat_common.
# This may be replaced when dependencies are built.
