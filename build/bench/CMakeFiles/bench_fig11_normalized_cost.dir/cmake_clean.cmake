file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_normalized_cost.dir/bench_fig11_normalized_cost.cc.o"
  "CMakeFiles/bench_fig11_normalized_cost.dir/bench_fig11_normalized_cost.cc.o.d"
  "bench_fig11_normalized_cost"
  "bench_fig11_normalized_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_normalized_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
