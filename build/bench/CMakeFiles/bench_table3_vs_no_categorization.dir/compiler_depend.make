# Empty compiler generated dependencies file for bench_table3_vs_no_categorization.
# This may be replaced when dependencies are built.
