file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_survey.dir/bench_table4_survey.cc.o"
  "CMakeFiles/bench_table4_survey.dir/bench_table4_survey.cc.o.d"
  "bench_table4_survey"
  "bench_table4_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
