# Empty dependencies file for autocat_bench_common.
# This may be replaced when dependencies are built.
