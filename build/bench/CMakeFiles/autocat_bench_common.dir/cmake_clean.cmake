file(REMOVE_RECURSE
  "CMakeFiles/autocat_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/autocat_bench_common.dir/bench_common.cc.o.d"
  "libautocat_bench_common.a"
  "libautocat_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocat_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
