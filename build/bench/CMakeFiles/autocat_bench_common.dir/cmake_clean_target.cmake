file(REMOVE_RECURSE
  "libautocat_bench_common.a"
)
