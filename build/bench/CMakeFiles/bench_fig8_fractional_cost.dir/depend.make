# Empty dependencies file for bench_fig8_fractional_cost.
# This may be replaced when dependencies are built.
