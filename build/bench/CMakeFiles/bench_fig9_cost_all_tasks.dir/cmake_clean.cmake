file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_cost_all_tasks.dir/bench_fig9_cost_all_tasks.cc.o"
  "CMakeFiles/bench_fig9_cost_all_tasks.dir/bench_fig9_cost_all_tasks.cc.o.d"
  "bench_fig9_cost_all_tasks"
  "bench_fig9_cost_all_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_cost_all_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
