# Empty compiler generated dependencies file for bench_fig9_cost_all_tasks.
# This may be replaced when dependencies are built.
