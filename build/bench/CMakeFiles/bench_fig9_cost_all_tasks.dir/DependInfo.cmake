
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9_cost_all_tasks.cc" "bench/CMakeFiles/bench_fig9_cost_all_tasks.dir/bench_fig9_cost_all_tasks.cc.o" "gcc" "bench/CMakeFiles/bench_fig9_cost_all_tasks.dir/bench_fig9_cost_all_tasks.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/autocat_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/autocat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/explore/CMakeFiles/autocat_explore.dir/DependInfo.cmake"
  "/root/repo/build/src/simgen/CMakeFiles/autocat_simgen.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/autocat_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/autocat_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/autocat_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/autocat_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/autocat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
