# Empty compiler generated dependencies file for bench_fig10_relevant_found.
# This may be replaced when dependencies are built.
