file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_relevant_found.dir/bench_fig10_relevant_found.cc.o"
  "CMakeFiles/bench_fig10_relevant_found.dir/bench_fig10_relevant_found.cc.o.d"
  "bench_fig10_relevant_found"
  "bench_fig10_relevant_found.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_relevant_found.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
