# Empty dependencies file for bench_fig12_cost_one_tasks.
# This may be replaced when dependencies are built.
