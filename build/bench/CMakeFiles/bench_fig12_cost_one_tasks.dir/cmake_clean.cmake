file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_cost_one_tasks.dir/bench_fig12_cost_one_tasks.cc.o"
  "CMakeFiles/bench_fig12_cost_one_tasks.dir/bench_fig12_cost_one_tasks.cc.o.d"
  "bench_fig12_cost_one_tasks"
  "bench_fig12_cost_one_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_cost_one_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
