# Empty dependencies file for bench_table1_subset_correlation.
# This may be replaced when dependencies are built.
