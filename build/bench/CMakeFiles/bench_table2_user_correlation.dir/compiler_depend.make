# Empty compiler generated dependencies file for bench_table2_user_correlation.
# This may be replaced when dependencies are built.
