file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_user_correlation.dir/bench_table2_user_correlation.cc.o"
  "CMakeFiles/bench_table2_user_correlation.dir/bench_table2_user_correlation.cc.o.d"
  "bench_table2_user_correlation"
  "bench_table2_user_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_user_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
