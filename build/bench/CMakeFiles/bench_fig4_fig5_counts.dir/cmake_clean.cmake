file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_fig5_counts.dir/bench_fig4_fig5_counts.cc.o"
  "CMakeFiles/bench_fig4_fig5_counts.dir/bench_fig4_fig5_counts.cc.o.d"
  "bench_fig4_fig5_counts"
  "bench_fig4_fig5_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_fig5_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
