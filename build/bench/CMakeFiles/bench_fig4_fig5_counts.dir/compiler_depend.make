# Empty compiler generated dependencies file for bench_fig4_fig5_counts.
# This may be replaced when dependencies are built.
