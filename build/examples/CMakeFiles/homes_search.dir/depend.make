# Empty dependencies file for homes_search.
# This may be replaced when dependencies are built.
