file(REMOVE_RECURSE
  "CMakeFiles/homes_search.dir/homes_search.cpp.o"
  "CMakeFiles/homes_search.dir/homes_search.cpp.o.d"
  "homes_search"
  "homes_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homes_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
