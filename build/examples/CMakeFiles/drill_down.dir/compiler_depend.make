# Empty compiler generated dependencies file for drill_down.
# This may be replaced when dependencies are built.
