file(REMOVE_RECURSE
  "CMakeFiles/drill_down.dir/drill_down.cpp.o"
  "CMakeFiles/drill_down.dir/drill_down.cpp.o.d"
  "drill_down"
  "drill_down.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drill_down.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
