# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;9;autocat_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_homes_search "/root/repo/build/examples/homes_search")
set_tests_properties(example_homes_search PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;10;autocat_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_workload_insights "/root/repo/build/examples/workload_insights")
set_tests_properties(example_workload_insights PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;11;autocat_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compare_techniques "/root/repo/build/examples/compare_techniques")
set_tests_properties(example_compare_techniques PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;12;autocat_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_drill_down "/root/repo/build/examples/drill_down")
set_tests_properties(example_drill_down PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;13;autocat_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_csv_workflow "/root/repo/build/examples/csv_workflow")
set_tests_properties(example_csv_workflow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;14;autocat_example;/root/repo/examples/CMakeLists.txt;0;")
