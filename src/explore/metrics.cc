#include "explore/metrics.h"

#include <algorithm>

namespace autocat {

double FractionalCost(const ExplorationResult& result, size_t result_size) {
  if (result_size == 0) {
    return 0;
  }
  return result.items_examined / static_cast<double>(result_size);
}

double NormalizedCost(const ExplorationResult& result) {
  const size_t denom = std::max<size_t>(1, result.relevant_found);
  return result.items_examined / static_cast<double>(denom);
}

namespace {

template <typename Fn>
double MeanOf(const std::vector<ExplorationResult>& results, Fn fn) {
  if (results.empty()) {
    return 0;
  }
  double sum = 0;
  for (const ExplorationResult& r : results) {
    sum += fn(r);
  }
  return sum / static_cast<double>(results.size());
}

}  // namespace

double MeanItemsExamined(const std::vector<ExplorationResult>& results) {
  return MeanOf(results,
                [](const ExplorationResult& r) { return r.items_examined; });
}

double MeanRelevantFound(const std::vector<ExplorationResult>& results) {
  return MeanOf(results, [](const ExplorationResult& r) {
    return static_cast<double>(r.relevant_found);
  });
}

double MeanNormalizedCost(const std::vector<ExplorationResult>& results) {
  return MeanOf(results,
                [](const ExplorationResult& r) { return NormalizedCost(r); });
}

}  // namespace autocat
