#include "explore/trace.h"

namespace autocat {

std::string FormatTrace(const CategoryTree& tree,
                        const std::vector<ExplorationEvent>& events) {
  std::string out;
  auto label_of = [&](NodeId id) {
    return tree.node(id).is_root() ? std::string("ALL")
                                   : tree.node(id).label.ToString();
  };
  auto describe_explore = [&](const ExplorationEvent& event) {
    if (event.kind == ExplorationEvent::Kind::kShowCat) {
      return std::string("explore using SHOWCAT");
    }
    return "explore using SHOWTUPLES (" +
           std::to_string(event.tuples_examined) + " tuples, " +
           std::to_string(event.relevant_found) + " relevant)";
  };

  for (size_t i = 0; i < events.size(); ++i) {
    const ExplorationEvent& event = events[i];
    switch (event.kind) {
      case ExplorationEvent::Kind::kExamineLabel: {
        out += "examine \"" + label_of(event.node) + "\"";
        // Merge the decision about the same node onto this line.
        if (i + 1 < events.size() && events[i + 1].node == event.node) {
          const ExplorationEvent& next = events[i + 1];
          if (next.kind == ExplorationEvent::Kind::kIgnore) {
            out += " -> ignore";
            ++i;
          } else if (next.kind == ExplorationEvent::Kind::kShowCat ||
                     next.kind == ExplorationEvent::Kind::kShowTuples) {
            out += " -> " + describe_explore(next);
            ++i;
          }
        }
        out += "\n";
        break;
      }
      case ExplorationEvent::Kind::kIgnore:
        out += "ignore \"" + label_of(event.node) + "\"\n";
        break;
      case ExplorationEvent::Kind::kShowCat:
      case ExplorationEvent::Kind::kShowTuples:
        out += "\"" + label_of(event.node) + "\": " +
               describe_explore(event) + "\n";
        break;
    }
  }
  return out;
}

}  // namespace autocat
