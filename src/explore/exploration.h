#ifndef AUTOCAT_EXPLORE_EXPLORATION_H_
#define AUTOCAT_EXPLORE_EXPLORATION_H_

#include <string>

#include "common/random.h"
#include "core/category.h"
#include "explore/trace.h"
#include "sql/selection.h"

namespace autocat {

/// Which exploration model drives the simulated user (Section 3.2):
/// `kAll` examines until every relevant tuple is found (Figure 2),
/// `kOne` stops at the first relevant tuple (Figure 3).
enum class Scenario {
  kAll,
  kOne,
};

std::string_view ScenarioToString(Scenario scenario);

/// Measurements from one simulated exploration. `items_examined` is the
/// paper's actual cost: every examined category label and every examined
/// tuple counts one item (weighted by `label_cost` for labels).
struct ExplorationResult {
  double items_examined = 0;
  size_t labels_examined = 0;
  size_t tuples_examined = 0;
  size_t relevant_found = 0;
  size_t categories_explored = 0;
  /// ONE scenario: whether the exploration found a relevant tuple at all.
  bool found_any = false;
};

/// A deterministic (optionally noisy) user following the exploration
/// models of Figures 2 and 3, driven by an interest profile:
///
/// * At a non-leaf category C she chooses SHOWCAT iff her profile has a
///   selection condition on C's subcategorizing attribute (the presumption
///   Section 4.2 builds Pw from), otherwise SHOWTUPLES.
/// * Under SHOWCAT she examines subcategory labels in presentation order
///   and explores exactly those whose label overlaps her condition on the
///   label's attribute (a label on an unconstrained attribute is always
///   explored — she cannot rule it out).
/// * A tuple is relevant iff the profile matches the row.
///
/// This is precisely the synthetic-exploration semantics of Section 6.2
/// ("drills down into those categories of T that satisfy the selection
/// conditions in W and ignores the rest"). With `decision_noise > 0`, each
/// explore/ignore and SHOWCAT/SHOWTUPLES choice is flipped with that
/// probability (using `rng`), modeling the imperfect humans of the
/// real-life study.
class SimulatedExplorer {
 public:
  struct Options {
    Scenario scenario = Scenario::kAll;
    /// Weight of one label in `items_examined` (a tuple weighs 1).
    double label_cost = 1.0;
    /// Probability of flipping each binary decision; requires `rng`.
    double decision_noise = 0;
    /// Not owned; may be null when `decision_noise` is 0.
    Random* rng = nullptr;
    /// Optional event sink (not owned): when set, the explorer appends
    /// the full click/expand/collapse stream — the log the paper's study
    /// recorded (Section 6.3). See explore/trace.h.
    std::vector<ExplorationEvent>* trace = nullptr;
  };

  explicit SimulatedExplorer(Options options);

  /// Explores `tree` driven by `interest`, starting at the root.
  ExplorationResult Explore(const CategoryTree& tree,
                            const SelectionProfile& interest) const;

 private:
  bool MaybeFlip(bool decision) const;
  void Record(ExplorationEvent::Kind kind, NodeId node,
              size_t tuples_examined = 0, size_t relevant_found = 0) const;
  void ExploreNode(const CategoryTree& tree, NodeId id,
                   const SelectionProfile& interest,
                   ExplorationResult* result) const;
  void ExamineTuples(const CategoryTree& tree, NodeId id,
                     const SelectionProfile& interest,
                     ExplorationResult* result) const;

  Options options_;
};

}  // namespace autocat

#endif  // AUTOCAT_EXPLORE_EXPLORATION_H_
