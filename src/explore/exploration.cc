#include "explore/exploration.h"

#include "common/check.h"

namespace autocat {

std::string_view ScenarioToString(Scenario scenario) {
  switch (scenario) {
    case Scenario::kAll:
      return "ALL";
    case Scenario::kOne:
      return "ONE";
  }
  return "unknown";
}

SimulatedExplorer::SimulatedExplorer(Options options)
    : options_(options) {
  if (options_.decision_noise > 0) {
    AUTOCAT_CHECK(options_.rng != nullptr);
  }
}

bool SimulatedExplorer::MaybeFlip(bool decision) const {
  if (options_.decision_noise > 0 &&
      options_.rng->Bernoulli(options_.decision_noise)) {
    return !decision;
  }
  return decision;
}

void SimulatedExplorer::Record(ExplorationEvent::Kind kind, NodeId node,
                               size_t tuples_examined,
                               size_t relevant_found) const {
  if (options_.trace == nullptr) {
    return;
  }
  ExplorationEvent event;
  event.kind = kind;
  event.node = node;
  event.tuples_examined = tuples_examined;
  event.relevant_found = relevant_found;
  options_.trace->push_back(event);
}

void SimulatedExplorer::ExamineTuples(const CategoryTree& tree, NodeId id,
                                      const SelectionProfile& interest,
                                      ExplorationResult* result) const {
  const CategoryNode& node = tree.node(id);
  const Table& table = tree.result();
  if (options_.scenario == Scenario::kAll) {
    // Figure 2: examine every tuple in tset(C).
    result->tuples_examined += node.tuples.size();
    for (size_t idx : node.tuples) {
      if (interest.MatchesRow(table.row(idx), table.schema())) {
        ++result->relevant_found;
      }
    }
    return;
  }
  // Figure 3: examine from the beginning until the first relevant tuple.
  for (size_t idx : node.tuples) {
    ++result->tuples_examined;
    if (interest.MatchesRow(table.row(idx), table.schema())) {
      ++result->relevant_found;
      result->found_any = true;
      return;
    }
  }
}

void SimulatedExplorer::ExploreNode(const CategoryTree& tree, NodeId id,
                                    const SelectionProfile& interest,
                                    ExplorationResult* result) const {
  const CategoryNode& node = tree.node(id);
  ++result->categories_explored;

  bool show_tuples = true;
  if (!node.is_leaf()) {
    const auto sa = tree.SubcategorizingAttribute(id);
    AUTOCAT_CHECK(sa.ok());
    // Section 4.2's presumption: SHOWCAT iff the user has a selection
    // condition on the subcategorizing attribute.
    show_tuples = MaybeFlip(!interest.Constrains(sa.value()));
  }
  if (show_tuples) {
    const size_t tuples_before = result->tuples_examined;
    const size_t relevant_before = result->relevant_found;
    ExamineTuples(tree, id, interest, result);
    Record(ExplorationEvent::Kind::kShowTuples, id,
           result->tuples_examined - tuples_before,
           result->relevant_found - relevant_before);
    return;
  }
  Record(ExplorationEvent::Kind::kShowCat, id);

  // Option SHOWCAT: walk the subcategory labels in presentation order.
  for (NodeId child_id : node.children) {
    ++result->labels_examined;
    Record(ExplorationEvent::Kind::kExamineLabel, child_id);
    const CategoryNode& child = tree.node(child_id);
    const AttributeCondition* cond =
        interest.Find(child.label.attribute());
    // A label on an unconstrained attribute cannot be ruled out.
    const bool overlaps =
        (cond == nullptr) || child.label.OverlapsCondition(*cond);
    if (!MaybeFlip(overlaps)) {
      Record(ExplorationEvent::Kind::kIgnore, child_id);
      continue;
    }
    ExploreNode(tree, child_id, interest, result);
    if (options_.scenario == Scenario::kOne && result->found_any) {
      // Figure 3: once a drill-down finds a relevant tuple the user stops
      // examining the remaining labels of C.
      return;
    }
  }
}

ExplorationResult SimulatedExplorer::Explore(
    const CategoryTree& tree, const SelectionProfile& interest) const {
  ExplorationResult result;
  ExploreNode(tree, tree.root(), interest, &result);
  result.items_examined =
      options_.label_cost * static_cast<double>(result.labels_examined) +
      static_cast<double>(result.tuples_examined);
  return result;
}

}  // namespace autocat
