#ifndef AUTOCAT_EXPLORE_TRACE_H_
#define AUTOCAT_EXPLORE_TRACE_H_

#include <string>
#include <vector>

#include "core/category.h"

namespace autocat {

/// One step of an exploration, in the vocabulary of the paper's examples
/// ("examine X and ignore it", "explore Y using SHOWTUPLES", ...). The
/// paper's user study recorded exactly this event stream (the
/// click/expand/collapse log of Section 6.3).
struct ExplorationEvent {
  enum class Kind {
    kExamineLabel,   ///< Read the label of `node`.
    kIgnore,         ///< Decided not to explore `node`.
    kShowCat,        ///< Chose SHOWCAT at `node`.
    kShowTuples,     ///< Chose SHOWTUPLES at `node`; `tuples_examined`
                     ///< and `relevant_found` describe the scan.
  };

  Kind kind = Kind::kExamineLabel;
  NodeId node = kRootNode;
  size_t tuples_examined = 0;
  size_t relevant_found = 0;
};

/// Renders a trace as the paper's narrative style, one step per line:
///   explore ALL using SHOWCAT
///   examine "Neighborhood: Redmond, Bellevue" -> explore (SHOWCAT)
///   examine "Price: 200K-225K" -> ignore
///   examine "Price: 225K-250K" -> explore (SHOWTUPLES: 20 tuples,
///   20 relevant)
std::string FormatTrace(const CategoryTree& tree,
                        const std::vector<ExplorationEvent>& events);

}  // namespace autocat

#endif  // AUTOCAT_EXPLORE_TRACE_H_
