#ifndef AUTOCAT_EXPLORE_METRICS_H_
#define AUTOCAT_EXPLORE_METRICS_H_

#include <vector>

#include "explore/exploration.h"

namespace autocat {

/// CostAll(W,T) / |Result(Q_W)|: the fraction of the result set's size a
/// user effectively examined (Figure 8's metric). Returns 0 for an empty
/// result set.
double FractionalCost(const ExplorationResult& result, size_t result_size);

/// Items examined per relevant tuple found (Figure 11's normalized cost).
/// When nothing relevant was found the exploration cost is returned
/// unnormalized (denominator clamped to 1), keeping averages finite.
double NormalizedCost(const ExplorationResult& result);

/// Mean of a field across explorations; helpers for the study tables.
double MeanItemsExamined(const std::vector<ExplorationResult>& results);
double MeanRelevantFound(const std::vector<ExplorationResult>& results);
double MeanNormalizedCost(const std::vector<ExplorationResult>& results);

}  // namespace autocat

#endif  // AUTOCAT_EXPLORE_METRICS_H_
