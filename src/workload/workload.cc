#include "workload/workload.h"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <set>

#include "common/check.h"
#include "common/string_util.h"
#include "sql/parser.h"

namespace autocat {

namespace {

/// Maximum diagnostics kept in WorkloadParseReport::sample_errors.
constexpr size_t kMaxSampleErrors = 10;

/// Queries parsed per ParallelFor chunk. Chunk boundaries are fixed, so
/// per-chunk shards merge to the same result at any thread count.
constexpr size_t kParseGrain = 256;

/// Per-chunk parse results: the usable entries plus the report counters,
/// all in input order within the chunk.
struct ParseShard {
  std::vector<WorkloadEntry> entries;
  size_t parse_errors = 0;
  size_t unsupported = 0;
  std::vector<std::string> sample_errors;  // capped at kMaxSampleErrors
};

void ParseRange(const std::vector<std::string>& sqls, const Schema& schema,
                size_t lo, size_t hi, ParseShard* shard) {
  for (size_t i = lo; i < hi; ++i) {
    const std::string& sql = sqls[i];
    auto query = ParseQuery(sql);
    if (!query.ok()) {
      ++shard->parse_errors;
      if (shard->sample_errors.size() < kMaxSampleErrors) {
        shard->sample_errors.push_back(sql + " -- " +
                                       query.status().ToString());
      }
      continue;
    }
    auto profile = SelectionProfile::FromQuery(query.value(), schema);
    if (!profile.ok()) {
      ++shard->unsupported;
      if (shard->sample_errors.size() < kMaxSampleErrors) {
        shard->sample_errors.push_back(sql + " -- " +
                                       profile.status().ToString());
      }
      continue;
    }
    shard->entries.push_back(WorkloadEntry{sql, std::move(profile).value()});
  }
}

}  // namespace

Workload Workload::Parse(const std::vector<std::string>& sqls,
                         const Schema& schema, WorkloadParseReport* report,
                         const ParallelOptions& parallel) {
  const size_t num_chunks =
      sqls.empty() ? 0 : (sqls.size() + kParseGrain - 1) / kParseGrain;
  std::vector<ParseShard> shards(num_chunks);
  const Status status = ParallelFor(
      parallel, 0, sqls.size(), kParseGrain,
      [&sqls, &schema, &shards](size_t lo, size_t hi) -> Status {
        ParseRange(sqls, schema, lo, hi, &shards[lo / kParseGrain]);
        return Status::OK();
      });
  // The chunk body never fails; only a nested-ParallelFor contract
  // violation could surface here.
  AUTOCAT_CHECK(status.ok());

  // Merge shards in chunk (= input) order: entries, counters, and the
  // first kMaxSampleErrors diagnostics come out exactly as a sequential
  // scan would produce them.
  Workload workload;
  for (ParseShard& shard : shards) {
    if (report != nullptr) {
      report->parse_errors += shard.parse_errors;
      report->unsupported += shard.unsupported;
      for (std::string& sample : shard.sample_errors) {
        if (report->sample_errors.size() < kMaxSampleErrors) {
          report->sample_errors.push_back(std::move(sample));
        }
      }
    }
    std::move(shard.entries.begin(), shard.entries.end(),
              std::back_inserter(workload.entries_));
  }
  if (report != nullptr) {
    report->total += sqls.size();
    report->parsed += workload.entries_.size();
  }
  return workload;
}

Result<Workload> Workload::LoadFile(const std::string& path,
                                    const Schema& schema,
                                    WorkloadParseReport* report,
                                    const ParallelOptions& parallel) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open workload file '" + path + "'");
  }
  std::vector<std::string> sqls;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') {
      continue;
    }
    sqls.emplace_back(trimmed);
  }
  return Parse(sqls, schema, report, parallel);
}

Status Workload::SaveFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  for (const WorkloadEntry& entry : entries_) {
    out << entry.sql << '\n';
  }
  if (!out) {
    return Status::IOError("write to '" + path + "' failed");
  }
  return Status::OK();
}

Workload Workload::Without(const std::vector<size_t>& indices,
                           std::vector<WorkloadEntry>* held_out) const {
  const std::set<size_t> removed(indices.begin(), indices.end());
  Workload rest;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (removed.count(i) > 0) {
      if (held_out != nullptr) {
        held_out->push_back(entries_[i]);
      }
    } else {
      rest.entries_.push_back(entries_[i]);
    }
  }
  return rest;
}

}  // namespace autocat
