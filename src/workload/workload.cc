#include "workload/workload.h"

#include <algorithm>
#include <fstream>
#include <set>

#include "common/string_util.h"
#include "sql/parser.h"

namespace autocat {

namespace {

void RecordError(WorkloadParseReport* report, const std::string& what) {
  if (report != nullptr && report->sample_errors.size() < 10) {
    report->sample_errors.push_back(what);
  }
}

}  // namespace

Workload Workload::Parse(const std::vector<std::string>& sqls,
                         const Schema& schema,
                         WorkloadParseReport* report) {
  Workload workload;
  for (const std::string& sql : sqls) {
    if (report != nullptr) {
      ++report->total;
    }
    auto query = ParseQuery(sql);
    if (!query.ok()) {
      if (report != nullptr) {
        ++report->parse_errors;
      }
      RecordError(report, sql + " -- " + query.status().ToString());
      continue;
    }
    auto profile = SelectionProfile::FromQuery(query.value(), schema);
    if (!profile.ok()) {
      if (report != nullptr) {
        ++report->unsupported;
      }
      RecordError(report, sql + " -- " + profile.status().ToString());
      continue;
    }
    if (report != nullptr) {
      ++report->parsed;
    }
    workload.entries_.push_back(
        WorkloadEntry{sql, std::move(profile).value()});
  }
  return workload;
}

Result<Workload> Workload::LoadFile(const std::string& path,
                                    const Schema& schema,
                                    WorkloadParseReport* report) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open workload file '" + path + "'");
  }
  std::vector<std::string> sqls;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') {
      continue;
    }
    sqls.emplace_back(trimmed);
  }
  return Parse(sqls, schema, report);
}

Status Workload::SaveFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  for (const WorkloadEntry& entry : entries_) {
    out << entry.sql << '\n';
  }
  if (!out) {
    return Status::IOError("write to '" + path + "' failed");
  }
  return Status::OK();
}

Workload Workload::Without(const std::vector<size_t>& indices,
                           std::vector<WorkloadEntry>* held_out) const {
  const std::set<size_t> removed(indices.begin(), indices.end());
  Workload rest;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (removed.count(i) > 0) {
      if (held_out != nullptr) {
        held_out->push_back(entries_[i]);
      }
    } else {
      rest.entries_.push_back(entries_[i]);
    }
  }
  return rest;
}

}  // namespace autocat
