#include "workload/counts.h"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "common/check.h"
#include "common/string_util.h"

namespace autocat {

namespace {

double SnapDown(double x, double interval) {
  return std::floor(x / interval) * interval;
}

double SnapUp(double x, double interval) {
  return std::ceil(x / interval) * interval;
}

/// Entries scanned per ParallelFor chunk. Chunk boundaries are fixed, so
/// per-chunk shards merge to the same tables at any thread count.
constexpr size_t kCountGrain = 512;

/// Per-chunk count accumulators, mirroring the WorkloadStats members they
/// merge into. Condition vectors keep within-chunk input order.
struct CountShard {
  std::map<std::string, size_t> attr_usage;
  std::map<std::string, std::map<Value, size_t>> occurrence;
  std::map<std::string, std::vector<AttributeCondition>> raw_conditions;
  std::map<std::string, std::vector<AttributeCondition>> set_conditions;
  std::map<std::string, std::map<double, std::pair<size_t, size_t>>> grid;
};

}  // namespace

size_t WorkloadStats::NumericCounts::CountOverlapping(double a,
                                                      double b) const {
  if (total_ranges == 0 || a > b) {
    return 0;
  }
  // A stored range [s, e] overlaps the closed [a, b] iff e >= a and s <= b.
  // Count the complement: ranges entirely below a (e < a) plus ranges
  // entirely above b (s > b); the two events are disjoint since a <= b.
  const auto first_ge_a =
      std::lower_bound(points.begin(), points.end(), a);
  const size_t idx_a = static_cast<size_t>(first_ge_a - points.begin());
  const size_t ends_below = (idx_a == 0) ? 0 : cum_ends[idx_a - 1];

  const auto first_gt_b = std::upper_bound(points.begin(), points.end(), b);
  const size_t idx_b = static_cast<size_t>(first_gt_b - points.begin());
  const size_t starts_at_or_below = (idx_b == 0) ? 0 : cum_starts[idx_b - 1];
  const size_t starts_above = total_ranges - starts_at_or_below;

  return total_ranges - ends_below - starts_above;
}

Result<WorkloadStats> WorkloadStats::Build(
    const Workload& workload, const Schema& schema,
    const WorkloadStatsOptions& options, const ParallelOptions& parallel) {
  WorkloadStats stats;
  stats.num_queries_ = workload.size();
  stats.intervals_ = options.split_intervals;
  stats.default_interval_ = options.default_split_interval;
  if (options.default_split_interval <= 0) {
    return Status::InvalidArgument("split interval must be positive");
  }
  for (const auto& [attr, interval] : options.split_intervals) {
    if (interval <= 0) {
      return Status::InvalidArgument("split interval for '" + attr +
                                     "' must be positive");
    }
    if (ToLower(attr) != attr) {
      return Status::InvalidArgument(
          "split-interval keys must be lowercase: '" + attr + "'");
    }
  }

  const std::vector<WorkloadEntry>& entries = workload.entries();
  const size_t num_chunks =
      entries.empty() ? 0 : (entries.size() + kCountGrain - 1) / kCountGrain;
  std::vector<CountShard> shards(num_chunks);
  AUTOCAT_RETURN_IF_ERROR(ParallelFor(
      parallel, 0, entries.size(), kCountGrain,
      [&entries, &schema, &stats, &shards](size_t lo, size_t hi) -> Status {
        CountShard& shard = shards[lo / kCountGrain];
        for (size_t i = lo; i < hi; ++i) {
          for (const auto& [attr, cond] : entries[i].profile.conditions()) {
            ++shard.attr_usage[attr];
            shard.raw_conditions[attr].push_back(cond);

            const auto col = schema.ColumnIndex(attr);
            const bool numeric_attr =
                col.ok() &&
                schema.column(col.value()).kind == ColumnKind::kNumeric;

            if (cond.is_value_set()) {
              for (const Value& v : cond.values) {
                ++shard.occurrence[attr][v];
              }
              if (numeric_attr) {
                shard.set_conditions[attr].push_back(cond);
              }
              continue;
            }
            if (!numeric_attr) {
              return Status::InvalidArgument(
                  "range condition on non-numeric attribute '" + attr + "'");
            }
            // split_interval only reads intervals_/default_interval_, which
            // are fixed before the scan starts.
            const double interval = stats.split_interval(attr);
            double lo_v = cond.range.lo;
            double hi_v = cond.range.hi;
            if (std::isfinite(lo_v)) {
              lo_v = SnapDown(lo_v, interval);
            }
            if (std::isfinite(hi_v)) {
              hi_v = SnapUp(hi_v, interval);
            }
            auto& [starts, ends] = shard.grid[attr][lo_v];
            ++starts;
            (void)ends;
            auto& [starts2, ends2] = shard.grid[attr][hi_v];
            ++ends2;
            (void)starts2;
          }
        }
        return Status::OK();
      }));

  // Merge shards in chunk (= input) order: counts are sums, condition
  // vectors concatenate, so the result matches a sequential scan exactly.
  std::map<std::string, std::map<double, std::pair<size_t, size_t>>>
      grid_accum;
  for (CountShard& shard : shards) {
    for (const auto& [attr, n] : shard.attr_usage) {
      stats.attr_usage_[attr] += n;
    }
    for (const auto& [attr, occ] : shard.occurrence) {
      auto& into = stats.occurrence_[attr];
      for (const auto& [v, n] : occ) {
        into[v] += n;
      }
    }
    for (auto& [attr, conds] : shard.raw_conditions) {
      auto& into = stats.raw_conditions_[attr];
      std::move(conds.begin(), conds.end(), std::back_inserter(into));
    }
    for (auto& [attr, conds] : shard.set_conditions) {
      auto& into = stats.numeric_set_conditions_[attr];
      std::move(conds.begin(), conds.end(), std::back_inserter(into));
    }
    for (const auto& [attr, grid] : shard.grid) {
      auto& into = grid_accum[attr];
      for (const auto& [point, start_end] : grid) {
        auto& [starts, ends] = into[point];
        starts += start_end.first;
        ends += start_end.second;
      }
    }
  }

  for (auto& [attr, grid] : grid_accum) {
    NumericCounts counts;
    counts.interval = stats.split_interval(attr);
    counts.points.reserve(grid.size());
    counts.starts.reserve(grid.size());
    counts.ends.reserve(grid.size());
    size_t cum_start = 0;
    size_t cum_end = 0;
    for (const auto& [point, start_end] : grid) {
      counts.points.push_back(point);
      counts.starts.push_back(start_end.first);
      counts.ends.push_back(start_end.second);
      cum_start += start_end.first;
      cum_end += start_end.second;
      counts.cum_starts.push_back(cum_start);
      counts.cum_ends.push_back(cum_end);
    }
    counts.total_ranges = cum_start;
    AUTOCAT_CHECK(cum_start == cum_end);
    stats.numeric_[attr] = std::move(counts);
  }
  return stats;
}

size_t WorkloadStats::AttrUsageCount(std::string_view attribute) const {
  const auto it = attr_usage_.find(ToLower(attribute));
  return it == attr_usage_.end() ? 0 : it->second;
}

double WorkloadStats::AttrUsageFraction(std::string_view attribute) const {
  if (num_queries_ == 0) {
    return 0;
  }
  return static_cast<double>(AttrUsageCount(attribute)) /
         static_cast<double>(num_queries_);
}

size_t WorkloadStats::OccurrenceCount(std::string_view attribute,
                                      const Value& v) const {
  const std::string key = ToLower(attribute);
  size_t count = 0;
  const auto occ_it = occurrence_.find(key);
  if (occ_it != occurrence_.end()) {
    const auto val_it = occ_it->second.find(v);
    if (val_it != occ_it->second.end()) {
      count = val_it->second;
    }
  }
  // For numeric attributes, range conditions containing v also count as
  // occurrences of v.
  if (v.is_numeric()) {
    const auto num_it = numeric_.find(key);
    if (num_it != numeric_.end()) {
      const double x = v.AsDouble();
      count += num_it->second.CountOverlapping(x, x);
    }
  }
  return count;
}

std::vector<std::pair<Value, size_t>> WorkloadStats::OccurrenceCountsSorted(
    std::string_view attribute) const {
  std::vector<std::pair<Value, size_t>> out;
  const auto it = occurrence_.find(ToLower(attribute));
  if (it == occurrence_.end()) {
    return out;
  }
  out.assign(it->second.begin(), it->second.end());
  std::stable_sort(out.begin(), out.end(),
                   [](const auto& a, const auto& b) {
                     if (a.second != b.second) {
                       return a.second > b.second;
                     }
                     return a.first < b.first;
                   });
  return out;
}

size_t WorkloadStats::CountConditionsOverlappingInterval(
    std::string_view attribute, double a, double b) const {
  const std::string key = ToLower(attribute);
  size_t count = 0;
  const auto num_it = numeric_.find(key);
  if (num_it != numeric_.end()) {
    count += num_it->second.CountOverlapping(a, b);
  }
  const auto set_it = numeric_set_conditions_.find(key);
  if (set_it != numeric_set_conditions_.end()) {
    for (const AttributeCondition& cond : set_it->second) {
      if (cond.OverlapsClosedInterval(a, b)) {
        ++count;
      }
    }
  }
  return count;
}

size_t WorkloadStats::CountConditionsOverlappingSet(
    std::string_view attribute, const std::set<Value>& values) const {
  if (values.empty()) {
    return 0;
  }
  if (values.size() == 1) {
    return OccurrenceCount(attribute, *values.begin());
  }
  const auto it = raw_conditions_.find(ToLower(attribute));
  if (it == raw_conditions_.end()) {
    return 0;
  }
  size_t count = 0;
  for (const AttributeCondition& cond : it->second) {
    if (cond.OverlapsValueSet(values)) {
      ++count;
    }
  }
  return count;
}

std::vector<SplitPoint> WorkloadStats::SplitPointsInRange(
    std::string_view attribute, double lo, double hi) const {
  std::vector<SplitPoint> out;
  const auto it = numeric_.find(ToLower(attribute));
  if (it == numeric_.end()) {
    return out;
  }
  const NumericCounts& counts = it->second;
  const auto begin =
      std::upper_bound(counts.points.begin(), counts.points.end(), lo);
  for (auto p = begin; p != counts.points.end() && *p < hi; ++p) {
    if (!std::isfinite(*p)) {
      continue;
    }
    const size_t i = static_cast<size_t>(p - counts.points.begin());
    if (counts.starts[i] + counts.ends[i] == 0) {
      continue;
    }
    out.push_back(SplitPoint{*p, counts.starts[i], counts.ends[i]});
  }
  return out;
}

double WorkloadStats::split_interval(std::string_view attribute) const {
  const auto it = intervals_.find(ToLower(attribute));
  return it == intervals_.end() ? default_interval_ : it->second;
}

Table WorkloadStats::AttributeUsageCountsTable(const Schema& schema) const {
  auto table_schema = Schema::Create({
      ColumnDef("attribute", ValueType::kString, ColumnKind::kCategorical),
      ColumnDef("nattr", ValueType::kInt64, ColumnKind::kNumeric),
  });
  AUTOCAT_CHECK(table_schema.ok());
  Table table(std::move(table_schema).value());
  std::vector<std::pair<std::string, size_t>> rows;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const std::string& name = schema.column(c).name;
    rows.emplace_back(name, AttrUsageCount(name));
  }
  std::stable_sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  for (const auto& [name, count] : rows) {
    AUTOCAT_CHECK(
        table
            .AppendRow({Value(name), Value(static_cast<int64_t>(count))})
            .ok());
  }
  return table;
}

Result<Table> WorkloadStats::OccurrenceCountsTable(
    std::string_view attribute) const {
  const auto sorted = OccurrenceCountsSorted(attribute);
  AUTOCAT_ASSIGN_OR_RETURN(
      Schema table_schema,
      Schema::Create({
          ColumnDef("value", ValueType::kString, ColumnKind::kCategorical),
          ColumnDef("occ", ValueType::kInt64, ColumnKind::kNumeric),
      }));
  Table table(std::move(table_schema));
  for (const auto& [v, count] : sorted) {
    AUTOCAT_RETURN_IF_ERROR(table.AppendRow(
        {Value(v.ToString()), Value(static_cast<int64_t>(count))}));
  }
  return table;
}

Result<Table> WorkloadStats::SplitPointsTable(
    std::string_view attribute) const {
  const auto it = numeric_.find(ToLower(attribute));
  if (it == numeric_.end()) {
    return Status::NotFound("no split points recorded for attribute '" +
                            std::string(attribute) + "'");
  }
  AUTOCAT_ASSIGN_OR_RETURN(
      Schema table_schema,
      Schema::Create({
          ColumnDef("v", ValueType::kDouble, ColumnKind::kNumeric),
          ColumnDef("startv", ValueType::kInt64, ColumnKind::kNumeric),
          ColumnDef("endv", ValueType::kInt64, ColumnKind::kNumeric),
          ColumnDef("goodness", ValueType::kInt64, ColumnKind::kNumeric),
      }));
  Table table(std::move(table_schema));
  const NumericCounts& counts = it->second;
  for (size_t i = 0; i < counts.points.size(); ++i) {
    if (!std::isfinite(counts.points[i])) {
      continue;
    }
    AUTOCAT_RETURN_IF_ERROR(table.AppendRow(
        {Value(counts.points[i]),
         Value(static_cast<int64_t>(counts.starts[i])),
         Value(static_cast<int64_t>(counts.ends[i])),
         Value(static_cast<int64_t>(counts.starts[i] + counts.ends[i]))}));
  }
  return table;
}

}  // namespace autocat
