#ifndef AUTOCAT_WORKLOAD_WORKLOAD_H_
#define AUTOCAT_WORKLOAD_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "sql/selection.h"
#include "storage/schema.h"

namespace autocat {

/// One usable workload query: its SQL text and normalized selection
/// conditions.
struct WorkloadEntry {
  std::string sql;
  SelectionProfile profile;
};

/// Diagnostics from workload ingestion. Queries that fail to parse or use
/// constructs outside the normalized form are skipped, not fatal — a real
/// query log always contains noise.
struct WorkloadParseReport {
  size_t total = 0;        ///< Lines presented.
  size_t parsed = 0;       ///< Usable queries kept.
  size_t parse_errors = 0; ///< Malformed SQL.
  size_t unsupported = 0;  ///< Parsed but not normalizable (OR across
                           ///< attributes, NOT IN, ...).
  /// Up to 10 sample diagnostics for logging.
  std::vector<std::string> sample_errors;
};

/// The query log ("workload") of Section 4.2: the sequence of SQL query
/// strings users of the application issued in the past. Holds the usable
/// queries in input order together with their normalized profiles.
class Workload {
 public:
  Workload() = default;

  /// Parses each SQL string against `schema`, skipping (and counting)
  /// unusable ones. `report` may be null. Parsing is spread over
  /// `parallel.threads` threads in fixed-size chunks whose per-chunk
  /// results are merged in input order, so the entries, counts, and
  /// sample diagnostics are identical at any thread count. Must not be
  /// called from inside a ParallelFor region.
  static Workload Parse(const std::vector<std::string>& sqls,
                        const Schema& schema, WorkloadParseReport* report,
                        const ParallelOptions& parallel = {});

  /// Loads a workload file with one SQL query per line. Blank lines and
  /// lines starting with '#' are ignored.
  static Result<Workload> LoadFile(const std::string& path,
                                   const Schema& schema,
                                   WorkloadParseReport* report,
                                   const ParallelOptions& parallel = {});

  /// Writes one query per line.
  Status SaveFile(const std::string& path) const;

  /// Appends a pre-normalized entry (used by generators).
  void Add(WorkloadEntry entry) { entries_.push_back(std::move(entry)); }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const WorkloadEntry& entry(size_t i) const { return entries_[i]; }
  const std::vector<WorkloadEntry>& entries() const { return entries_; }

  /// Returns a workload containing the entries at `indices` (for
  /// leave-subset-out cross-validation) and, via `held_out`, the rest.
  Workload Without(const std::vector<size_t>& indices,
                   std::vector<WorkloadEntry>* held_out) const;

 private:
  std::vector<WorkloadEntry> entries_;
};

}  // namespace autocat

#endif  // AUTOCAT_WORKLOAD_WORKLOAD_H_
