#ifndef AUTOCAT_WORKLOAD_COUNTS_H_
#define AUTOCAT_WORKLOAD_COUNTS_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "common/value.h"
#include "sql/selection.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "workload/workload.h"

namespace autocat {

/// Configuration of the workload-preprocessing phase (Section 5).
struct WorkloadStatsOptions {
  /// Split-point separation interval per numeric attribute (lowercase
  /// name). The paper uses 5000 for price, 100 for square footage and 5
  /// for year-built.
  std::map<std::string, double> split_intervals;
  /// Interval used for numeric attributes not listed above.
  double default_split_interval = 1.0;
};

/// One potential split point with its workload counts (Figure 5(b)):
/// `start` ranges begin here, `end` ranges end here; goodness score is
/// SUM(start, end).
struct SplitPoint {
  double v = 0;
  size_t start = 0;
  size_t end = 0;
  size_t goodness() const { return start + end; }
};

/// The preprocessed workload statistics of Section 4.2 / Section 5: the
/// AttributeUsageCounts table, one OccurrenceCounts table per categorical
/// attribute, and one SplitPoints table per numeric attribute, with the
/// indexed lookups the categorizer needs at query time.
///
/// Numeric range endpoints are snapped outward to the attribute's
/// split-point grid (floor for lows, ceil for highs); unbounded ends are
/// kept as ±infinity. Range-overlap counts are answered exactly from
/// prefix sums over the grid in O(log #points).
class WorkloadStats {
 public:
  /// Scans `workload` once and builds all count structures. The scan is
  /// spread over `parallel.threads` threads in fixed-size entry chunks;
  /// each chunk accumulates into a private shard and shards are merged in
  /// chunk order, so every count table (and the order of stored raw
  /// conditions) is identical at any thread count. Must not be called
  /// from inside a ParallelFor region.
  static Result<WorkloadStats> Build(const Workload& workload,
                                     const Schema& schema,
                                     const WorkloadStatsOptions& options,
                                     const ParallelOptions& parallel = {});

  /// Total number of (usable) workload queries: the `N` of Section 4.2.
  size_t num_queries() const { return num_queries_; }

  /// NAttr(A): number of queries with a selection condition on `attribute`.
  size_t AttrUsageCount(std::string_view attribute) const;

  /// NAttr(A)/N, or 0 when the workload is empty.
  double AttrUsageFraction(std::string_view attribute) const;

  /// occ(v): number of queries whose condition on `attribute` contains
  /// value `v` (IN-list membership; for numeric attributes, range
  /// containment counts too).
  size_t OccurrenceCount(std::string_view attribute, const Value& v) const;

  /// All (value, occ) pairs of a categorical attribute, sorted by
  /// descending occurrence count (ties broken by value order) — the order
  /// the categorical partitioner presents single-value categories in.
  std::vector<std::pair<Value, size_t>> OccurrenceCountsSorted(
      std::string_view attribute) const;

  /// NOverlap for a numeric label: number of queries whose condition on
  /// `attribute` admits some value in the closed interval [a, b].
  size_t CountConditionsOverlappingInterval(std::string_view attribute,
                                            double a, double b) const;

  /// NOverlap for a categorical label: number of queries whose condition
  /// on `attribute` admits some value of `values`. O(1) per query for
  /// single-value labels (occurrence-count lookup).
  size_t CountConditionsOverlappingSet(std::string_view attribute,
                                       const std::set<Value>& values) const;

  /// Potential split points strictly inside (lo, hi) with nonzero
  /// goodness, in ascending value order.
  std::vector<SplitPoint> SplitPointsInRange(std::string_view attribute,
                                             double lo, double hi) const;

  /// The grid interval configured for `attribute`.
  double split_interval(std::string_view attribute) const;

  /// Exports the AttributeUsageCounts relation (Figure 4(a)):
  /// (attribute, nattr).
  Table AttributeUsageCountsTable(const Schema& schema) const;

  /// Exports the OccurrenceCounts relation of one categorical attribute
  /// (Figure 4(b)): (value, occ), descending occ.
  Result<Table> OccurrenceCountsTable(std::string_view attribute) const;

  /// Exports the SplitPoints relation of one numeric attribute
  /// (Figure 5(b)): (v, start, end, goodness), ascending v.
  Result<Table> SplitPointsTable(std::string_view attribute) const;

 private:
  // Per-numeric-attribute grid with prefix sums for overlap counting.
  struct NumericCounts {
    double interval = 1.0;
    std::vector<double> points;        // sorted, may include +/-inf
    std::vector<size_t> starts;        // ranges starting at points[i]
    std::vector<size_t> ends;          // ranges ending at points[i]
    std::vector<size_t> cum_starts;    // prefix sums (inclusive)
    std::vector<size_t> cum_ends;
    size_t total_ranges = 0;

    // Number of stored ranges intersecting the closed interval [a, b].
    size_t CountOverlapping(double a, double b) const;
  };

  size_t num_queries_ = 0;
  std::map<std::string, double> intervals_;
  double default_interval_ = 1.0;
  std::map<std::string, size_t> attr_usage_;                // NAttr
  std::map<std::string, std::map<Value, size_t>> occurrence_;  // occ(v)
  std::map<std::string, NumericCounts> numeric_;
  // Raw conditions per attribute, for exact answers on label shapes the
  // fast paths do not cover (multi-value labels).
  std::map<std::string, std::vector<AttributeCondition>> raw_conditions_;
  // Value-set conditions on numeric attributes (rare), scanned by the
  // interval-overlap path on top of the grid counts.
  std::map<std::string, std::vector<AttributeCondition>>
      numeric_set_conditions_;
};

}  // namespace autocat

#endif  // AUTOCAT_WORKLOAD_COUNTS_H_
