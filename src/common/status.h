#ifndef AUTOCAT_COMMON_STATUS_H_
#define AUTOCAT_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace autocat {

/// Result codes for operations that can fail.
///
/// The library reports recoverable failures through `Status` (and
/// `Result<T>`, see result.h) rather than exceptions, following the
/// convention of storage engines such as RocksDB: callers must inspect the
/// returned status, and the failure message carries enough context to be
/// actionable without a stack trace.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kParseError,
  kNotSupported,
  kIOError,
  kInternal,
  /// The serving layer's load-shedding verdict: a bounded queue was full
  /// and the request was rejected rather than enqueued (see src/serve/).
  kOverloaded,
  /// A request's deadline passed before the work completed.
  kDeadlineExceeded,
};

/// Returns the canonical lowercase name of `code` (e.g. "invalid argument").
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value.
///
/// An OK status carries no message and no allocation. Error statuses carry a
/// code plus a human-readable message. `Status` is copyable, movable, and
/// cheap to return by value.
///
/// The class is `[[nodiscard]]`: every function returning a `Status` must
/// have its result inspected (or explicitly voided) at the call site;
/// `tools/autocat_lint` enforces the same rule textually as a backstop.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

}  // namespace autocat

/// Propagates a non-OK status to the caller. Usable in any function that
/// returns `Status` or `Result<T>` (Result is constructible from Status).
#define AUTOCAT_RETURN_IF_ERROR(expr)              \
  do {                                             \
    ::autocat::Status _autocat_status_ = (expr);   \
    if (!_autocat_status_.ok()) {                  \
      return _autocat_status_;                     \
    }                                              \
  } while (false)

#endif  // AUTOCAT_COMMON_STATUS_H_
