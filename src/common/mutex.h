#ifndef AUTOCAT_COMMON_MUTEX_H_
#define AUTOCAT_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "common/annotations.h"

/// Annotated synchronization primitives (DESIGN.md §11).
///
/// The standard library's mutex types carry no thread-safety-analysis
/// attributes, so clang cannot reason about them. These thin wrappers add
/// the capability annotations (and nothing else — each is exactly one
/// std object) and are the only sanctioned lock types outside this file:
/// the `unannotated-sync` lint rule flags raw std::mutex /
/// std::shared_mutex / std::condition_variable members anywhere in the
/// annotated tree (src/serve, src/exec, src/common), and the
/// `manual-lock` rule flags lock()/unlock() calls outside the RAII
/// guards below.
namespace autocat {

class CondVar;

/// An exclusive lock; wraps std::mutex. Acquire through MutexLock.
class AUTOCAT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() AUTOCAT_ACQUIRE() { native_.lock(); }
  void Unlock() AUTOCAT_RELEASE() { native_.unlock(); }
  bool TryLock() AUTOCAT_TRY_ACQUIRE(true) { return native_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex native_;
};

/// A reader-writer lock; wraps std::shared_mutex. Acquire through
/// WriterLock (exclusive) or ReaderLock (shared).
class AUTOCAT_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() AUTOCAT_ACQUIRE() { native_.lock(); }
  void Unlock() AUTOCAT_RELEASE() { native_.unlock(); }
  void LockShared() AUTOCAT_ACQUIRE_SHARED() { native_.lock_shared(); }
  void UnlockShared() AUTOCAT_RELEASE_SHARED() {
    native_.unlock_shared();
  }

 private:
  std::shared_mutex native_;
};

/// RAII exclusive lock on a Mutex; the only way the annotated tree takes
/// a Mutex (no manual Lock/Unlock pairing to get wrong on an early
/// return).
class AUTOCAT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) AUTOCAT_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~MutexLock() AUTOCAT_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock on a SharedMutex (writer side).
class AUTOCAT_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) AUTOCAT_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() AUTOCAT_RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared lock on a SharedMutex (reader side).
class AUTOCAT_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) AUTOCAT_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() AUTOCAT_RELEASE() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with Mutex. Waits require the mutex held (a
/// compile-time error under the analysis otherwise); internally the wait
/// adopts the already-held native mutex and releases it back untouched,
/// so this stays a plain std::condition_variable — no
/// condition_variable_any overhead.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, reacquires `mu`.
  void Wait(Mutex& mu) AUTOCAT_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.native_, std::adopt_lock);
    native_.wait(native);
    native.release();
  }

  /// Waits until `pred()` holds (re-checked after every wakeup).
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) AUTOCAT_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.native_, std::adopt_lock);
    native_.wait(native, std::move(pred));
    native.release();
  }

  /// Waits at most `ms` milliseconds; returns false on timeout. The
  /// mutex is held again either way.
  bool WaitForMillis(Mutex& mu, int64_t ms) AUTOCAT_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.native_, std::adopt_lock);
    const std::cv_status status =
        native_.wait_for(native, std::chrono::milliseconds(ms));
    native.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { native_.notify_one(); }
  void NotifyAll() { native_.notify_all(); }

 private:
  std::condition_variable native_;
};

}  // namespace autocat

#endif  // AUTOCAT_COMMON_MUTEX_H_
