#ifndef AUTOCAT_COMMON_STRING_UTIL_H_
#define AUTOCAT_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace autocat {

/// Returns `text` with ASCII whitespace removed from both ends.
std::string_view TrimWhitespace(std::string_view text);

/// ASCII-lowercases `text`.
std::string ToLower(std::string_view text);

/// ASCII-uppercases `text`.
std::string ToUpper(std::string_view text);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Splits on `sep`; empty fields are preserved ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Renders a (typically monetary) number compactly the way the paper's
/// figures do: 200000 -> "200K", 1500000 -> "1.5M", 1234 -> "1234".
std::string HumanizeNumber(double v);

/// Strict numeric parsing for flag and spec values: the whole trimmed
/// string must be consumed and non-empty, otherwise kInvalidArgument.
/// (strtoull-style partial parses that silently yield 0 are exactly what
/// these exist to reject.)
Result<uint64_t> ParseUint64(std::string_view text);
Result<int64_t> ParseInt64(std::string_view text);
Result<double> ParseDouble(std::string_view text);

}  // namespace autocat

#endif  // AUTOCAT_COMMON_STRING_UTIL_H_
