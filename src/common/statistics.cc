#include "common/statistics.h"

#include <algorithm>
#include <cmath>

namespace autocat {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0;
  }
  double sum = 0;
  for (double x : xs) {
    sum += x;
  }
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) {
    return 0;
  }
  const double mean = Mean(xs);
  double acc = 0;
  for (double x : xs) {
    acc += (x - mean) * (x - mean);
  }
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

Result<double> PearsonCorrelation(const std::vector<double>& xs,
                                  const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("correlation inputs differ in length");
  }
  if (xs.size() < 2) {
    return Status::InvalidArgument(
        "correlation requires at least two pairs");
  }
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0;
  double sxx = 0;
  double syy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0 || syy == 0) {
    return Status::InvalidArgument(
        "correlation undefined: a variable has zero variance");
  }
  return sxy / std::sqrt(sxx * syy);
}

Result<double> LeastSquaresSlopeThroughOrigin(
    const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("fit inputs differ in length");
  }
  double sxy = 0;
  double sxx = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxy += xs[i] * ys[i];
    sxx += xs[i] * xs[i];
  }
  if (sxx == 0) {
    return Status::InvalidArgument("fit undefined: sum of x^2 is zero");
  }
  return sxy / sxx;
}

Result<double> Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) {
    return Status::InvalidArgument("percentile of empty sample");
  }
  if (p < 0 || p > 100) {
    return Status::InvalidArgument("percentile p must be in [0, 100]");
  }
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) {
    return xs[0];
  }
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++count_;
}

}  // namespace autocat
