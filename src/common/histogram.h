#ifndef AUTOCAT_COMMON_HISTOGRAM_H_
#define AUTOCAT_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace autocat {

/// A fixed-boundary histogram for latency-style measurements.
///
/// The histogram is defined by a sorted list of bucket upper bounds; a
/// sample `v` lands in the first bucket whose bound satisfies `v <= bound`,
/// with an implicit final overflow bucket for everything above the last
/// bound. Boundaries are fixed at construction so two histograms built
/// from the same bounds can be merged and snapshotted deterministically
/// (the serving layer's metrics export depends on this).
///
/// The class itself is not thread-safe and deliberately carries no lock:
/// every shared Histogram must be a member declared with
/// AUTOCAT_GUARDED_BY next to the owning component's Mutex, so the
/// thread-safety analysis proves each access holds the lock at compile
/// time (ServiceMetrics in serve/metrics.h is the template; see
/// DESIGN.md §11). Stack-local histograms and snapshots need no lock.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  /// The default latency scale used by the serving layer: exponential
  /// bounds from 0.01 ms to ~42 s (doubling, 23 buckets) plus overflow.
  static Histogram LatencyMs();

  /// Records one sample.
  void Add(double v);

  /// Merges `other` into this histogram. The two must share identical
  /// bucket bounds.
  void Merge(const Histogram& other);

  size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// Per-bucket counts; index upper_bounds().size() is the overflow bucket.
  const std::vector<size_t>& bucket_counts() const { return counts_; }

  /// Percentile estimate for `p` in [0, 100]: linear interpolation inside
  /// the containing bucket (the overflow bucket reports the observed max).
  /// Returns 0 when empty.
  double PercentileEstimate(double p) const;

  /// Deterministic JSON object:
  /// {"count":N,"mean":..,"min":..,"max":..,"p50":..,"p90":..,"p99":..}.
  std::string ToJson() const;

 private:
  std::vector<double> upper_bounds_;
  std::vector<size_t> counts_;  // upper_bounds_.size() + 1 (overflow)
  size_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace autocat

#endif  // AUTOCAT_COMMON_HISTOGRAM_H_
