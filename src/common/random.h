#ifndef AUTOCAT_COMMON_RANDOM_H_
#define AUTOCAT_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace autocat {

/// Derives an independent stream seed from a base seed and a stream index
/// (splitmix64 finalizer over their combination). The parallel generators
/// seed one `Random` per fixed-size chunk of output — chunk boundaries and
/// seeds depend only on the base seed and chunk index, never on the thread
/// count, so generated data is identical at any parallelism.
uint64_t SplitMixSeed(uint64_t seed, uint64_t stream);

/// Deterministic pseudo-random source used by all generators and studies.
///
/// Every stochastic component takes an explicit `Random&` so experiments are
/// reproducible from a single seed. Wraps std::mt19937_64 with the sampling
/// helpers the synthetic-data generators need (uniform, Gaussian, Zipf,
/// weighted choice, shuffling, subset sampling).
class Random {
 public:
  explicit Random(uint64_t seed) : engine_(seed) {}

  Random(const Random&) = delete;
  Random& operator=(const Random&) = delete;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double UniformReal(double lo, double hi);

  /// True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Normal sample with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Zipf-distributed rank in [0, n) with exponent `s` (s = 0 is uniform;
  /// larger s is more skewed). Uses an explicit CDF table; intended for the
  /// modest n (hundreds to thousands) used by the generators.
  size_t Zipf(size_t n, double s);

  /// Index in [0, weights.size()) drawn proportionally to `weights`
  /// (non-negative, not all zero).
  size_t WeightedChoice(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(Uniform(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in uniformly random order.
  /// Requires k <= n.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  /// Raw engine access for interoperating with <random> distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace autocat

#endif  // AUTOCAT_COMMON_RANDOM_H_
