#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace autocat {

uint64_t SplitMixSeed(uint64_t seed, uint64_t stream) {
  // splitmix64 finalizer (Steele, Lea, Flood 2014) over the combined
  // (seed, stream) state; the odd multiplier decorrelates nearby streams.
  uint64_t z = seed + stream * 0x9E3779B97F4A7C15ULL;
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

int64_t Random::Uniform(int64_t lo, int64_t hi) {
  AUTOCAT_CHECK(lo <= hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Random::UniformReal(double lo, double hi) {
  AUTOCAT_CHECK(lo <= hi);
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Random::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

double Random::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

size_t Random::Zipf(size_t n, double s) {
  AUTOCAT_CHECK(n > 0);
  if (n == 1) {
    return 0;
  }
  // Inverse-CDF sampling over explicit harmonic weights.
  double total = 0;
  std::vector<double> cdf(n);
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf[i] = total;
  }
  const double u = UniformReal(0.0, total);
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return static_cast<size_t>(std::distance(cdf.begin(), it));
}

size_t Random::WeightedChoice(const std::vector<double>& weights) {
  AUTOCAT_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) {
    AUTOCAT_CHECK(w >= 0);
    total += w;
  }
  AUTOCAT_CHECK(total > 0);
  double u = UniformReal(0.0, total);
  for (size_t i = 0; i < weights.size(); ++i) {
    if (u < weights[i]) {
      return i;
    }
    u -= weights[i];
  }
  return weights.size() - 1;
}

std::vector<size_t> Random::SampleIndices(size_t n, size_t k) {
  AUTOCAT_CHECK(k <= n);
  std::vector<size_t> all(n);
  std::iota(all.begin(), all.end(), 0);
  Shuffle(all);
  all.resize(k);
  return all;
}

}  // namespace autocat
