#ifndef AUTOCAT_COMMON_VALUE_H_
#define AUTOCAT_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <variant>

#include "common/result.h"

namespace autocat {

/// The dynamic type of a `Value`.
enum class ValueType {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
};

/// Returns "null", "int64", "double", or "string".
std::string_view ValueTypeToString(ValueType type);

/// A dynamically typed scalar cell: SQL NULL, 64-bit integer, double, or
/// string.
///
/// `Value` is the single currency for table cells, literals in parsed SQL,
/// category-label endpoints, and count-table keys. Numeric values of both
/// integer and double type compare with each other numerically; strings
/// compare lexicographically; NULL compares equal only to NULL and orders
/// before every non-NULL value (so sorted containers have a stable, total
/// order).
class Value {
 public:
  /// Constructs a NULL value.
  Value() : data_(std::monostate{}) {}

  /// Typed constructors. The `int`/`bool` overloads exist so that literal
  /// arguments pick the integer representation rather than ambiguity.
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(int v) : data_(static_cast<int64_t>(v)) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(std::string_view v) : data_(std::string(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_int64() const { return type() == ValueType::kInt64; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }

  /// True for int64 or double values.
  bool is_numeric() const { return is_int64() || is_double(); }

  /// Accessors. Each aborts (via std::get) if the type does not match.
  int64_t int64_value() const { return std::get<int64_t>(data_); }
  double double_value() const { return std::get<double>(data_); }
  const std::string& string_value() const {
    return std::get<std::string>(data_);
  }

  /// Returns the numeric content widened to double. Aborts on non-numeric.
  double AsDouble() const;

  /// Equality: same comparison class (numeric vs string vs null) and equal
  /// content; int64(3) == double(3.0).
  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Three-way comparison: negative / zero / positive. Total order:
  /// NULL < numerics (by numeric value) < strings (lexicographic).
  int Compare(const Value& other) const;

  /// Renders the value for display: NULL -> "NULL", strings unquoted,
  /// doubles with minimal digits.
  std::string ToString() const;

  /// Renders the value as an SQL literal: strings quoted with '' escaping.
  std::string ToSqlLiteral() const;

  /// Hash consistent with operator== (int64(3) and double(3.0) collide).
  size_t Hash() const;

  /// Parses a typed value from text: "NULL" (case-insensitive) -> null,
  /// integer-looking text -> int64, numeric text -> double, anything else
  /// is an error (strings must be constructed explicitly, not parsed).
  static Result<Value> ParseNumeric(std::string_view text);

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

/// Hash functor for unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace autocat

#endif  // AUTOCAT_COMMON_VALUE_H_
