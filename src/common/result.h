#ifndef AUTOCAT_COMMON_RESULT_H_
#define AUTOCAT_COMMON_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace autocat {

/// A value-or-error holder, analogous to `absl::StatusOr<T>` /
/// `arrow::Result<T>`.
///
/// A `Result<T>` holds either a `T` (when `ok()`) or a non-OK `Status`.
/// It implicitly converts from both `T` and `Status`, so functions can
/// `return value;` on success and `return Status::...(...)` on failure.
/// Accessing the value of an error result aborts the process; call sites
/// that can recover must test `ok()` first (or use `value_or`).
///
/// Like `Status`, the class is `[[nodiscard]]`: silently dropping a
/// `Result` return value is a build error under `AUTOCAT_WERROR`.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a success value.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs from an error status. Aborts if `status` is OK (an OK
  /// result must carry a value).
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      std::abort();
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the held value. Aborts if this result is an error.
  const T& value() const& {
    if (!ok()) std::abort();
    return *value_;
  }
  T& value() & {
    if (!ok()) std::abort();
    return *value_;
  }
  T&& value() && {
    if (!ok()) std::abort();
    return std::move(*value_);
  }

  /// Returns the held value, or `fallback` if this result is an error.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace autocat

/// Evaluates `rexpr` (a Result<T>); on error returns its status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define AUTOCAT_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  AUTOCAT_ASSIGN_OR_RETURN_IMPL_(                                     \
      AUTOCAT_CONCAT_(_autocat_result_, __LINE__), lhs, rexpr)

#define AUTOCAT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) {                                      \
    return tmp.status();                                \
  }                                                     \
  lhs = std::move(tmp).value()

#define AUTOCAT_CONCAT_(a, b) AUTOCAT_CONCAT_IMPL_(a, b)
#define AUTOCAT_CONCAT_IMPL_(a, b) a##b

#endif  // AUTOCAT_COMMON_RESULT_H_
