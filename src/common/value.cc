#include "common/value.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace autocat {

std::string_view ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

double Value::AsDouble() const {
  if (is_int64()) {
    return static_cast<double>(int64_value());
  }
  AUTOCAT_CHECK(is_double());
  return double_value();
}

namespace {

// Comparison class: null < numeric < string.
int ComparisonClass(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 1;
    case ValueType::kString:
      return 2;
  }
  return 3;
}

}  // namespace

int Value::Compare(const Value& other) const {
  const int lhs_class = ComparisonClass(*this);
  const int rhs_class = ComparisonClass(other);
  if (lhs_class != rhs_class) {
    return lhs_class < rhs_class ? -1 : 1;
  }
  switch (lhs_class) {
    case 0:  // both null
      return 0;
    case 1: {  // both numeric
      if (is_int64() && other.is_int64()) {
        const int64_t a = int64_value();
        const int64_t b = other.int64_value();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      const double a = AsDouble();
      const double b = other.AsDouble();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    default: {  // both string
      const int cmp = string_value().compare(other.string_value());
      return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(int64_value());
    case ValueType::kDouble: {
      const double d = double_value();
      // Render integral doubles without a trailing ".000000".
      if (std::isfinite(d) && d == std::floor(d) &&
          std::fabs(d) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", d);
        return buf;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", d);
      return buf;
    }
    case ValueType::kString:
      return string_value();
  }
  return "";
}

std::string Value::ToSqlLiteral() const {
  if (!is_string()) {
    return ToString();
  }
  std::string out = "'";
  for (char c : string_value()) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt64:
      // Hash via double so that int64(3) and double(3.0) collide, matching
      // operator==.
      return std::hash<double>()(static_cast<double>(int64_value()));
    case ValueType::kDouble:
      return std::hash<double>()(double_value());
    case ValueType::kString:
      return std::hash<std::string>()(string_value());
  }
  return 0;
}

Result<Value> Value::ParseNumeric(std::string_view text) {
  // Trim surrounding whitespace.
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  const std::string_view body = text.substr(begin, end - begin);
  if (body.empty()) {
    return Status::ParseError("empty numeric literal");
  }
  if (body.size() == 4 &&
      (body[0] == 'N' || body[0] == 'n') &&
      (body[1] == 'U' || body[1] == 'u') &&
      (body[2] == 'L' || body[2] == 'l') &&
      (body[3] == 'L' || body[3] == 'l')) {
    return Value();
  }

  int64_t int_result = 0;
  auto [int_ptr, int_ec] =
      std::from_chars(body.data(), body.data() + body.size(), int_result);
  if (int_ec == std::errc() && int_ptr == body.data() + body.size()) {
    return Value(int_result);
  }

  double dbl_result = 0;
  auto [dbl_ptr, dbl_ec] =
      std::from_chars(body.data(), body.data() + body.size(), dbl_result);
  if (dbl_ec == std::errc() && dbl_ptr == body.data() + body.size()) {
    return Value(dbl_result);
  }
  return Status::ParseError("not a numeric literal: '" + std::string(body) +
                            "'");
}

}  // namespace autocat
