#ifndef AUTOCAT_COMMON_THREAD_POOL_H_
#define AUTOCAT_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/status.h"

namespace autocat {

/// Degree-of-parallelism knob shared by every parallel hot path (workload
/// preprocessing, per-level candidate scoring, simgen generation).
///
/// Every parallel path in the tree is *deterministic in the input, not in
/// the thread count*: work is split into chunks whose boundaries depend
/// only on the problem size, partial results live in per-chunk shards, and
/// shards are merged in chunk order. `threads = 1` therefore produces
/// byte-identical output to any other setting, and is also guaranteed to
/// run strictly sequentially on the calling thread.
struct ParallelOptions {
  /// Total threads participating in a parallel region, including the
  /// calling thread. 0 means hardware_concurrency(); 1 runs sequentially.
  size_t threads = 0;

  /// `threads`, with 0 resolved to hardware_concurrency() (at least 1).
  size_t ResolvedThreads() const;
};

/// A fixed-size worker pool with a task-futures API and a chunked
/// ParallelFor helper.
///
/// Error handling follows the repo convention: no exceptions cross the
/// pool boundary — tasks report failure by returning a non-OK `Status`,
/// and a stray exception inside a task is converted to
/// `Status::Internal`. See DESIGN.md, "Parallel execution model".
class ThreadPool {
 public:
  /// Creates a pool with `threads` total threads of parallelism: the
  /// calling thread plus `threads - 1` workers (0 is treated as 1, i.e.
  /// no workers — everything runs inline on the caller).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism: worker count + 1 for the participating caller.
  size_t threads() const { return workers_.size() + 1; }

  /// Enqueues `task` and returns a future for its Status. With no workers
  /// the task runs inline before Submit returns. Tasks must not block on
  /// futures of other submitted tasks (the pool does not grow).
  std::future<Status> Submit(std::function<Status()> task)
      AUTOCAT_EXCLUDES(mu_);

  /// Runs `fn(chunk_begin, chunk_end)` over [begin, end) split into
  /// chunks of at most `grain` items (chunk i covers
  /// [begin + i*grain, min(begin + (i+1)*grain, end))). Chunk boundaries
  /// depend only on (begin, end, grain), never on the thread count, so
  /// callers can shard per-chunk state deterministically.
  ///
  /// The calling thread participates; up to min(threads() - 1,
  /// max_threads - 1) workers help (max_threads = 0 means no extra cap).
  /// Chunks are claimed in ascending index order. On failure the error of
  /// the lowest-indexed failing chunk is returned — the same error a
  /// sequential in-order run would return first — and unclaimed chunks
  /// are skipped. Nested calls (ParallelFor from inside a ParallelFor
  /// chunk on the same thread) are rejected with NotSupported.
  Status ParallelFor(size_t begin, size_t end, size_t grain,
                     const std::function<Status(size_t, size_t)>& fn,
                     size_t max_threads = 0);

  /// Process-wide shared pool, sized max(hardware_concurrency(), 16) so
  /// explicitly requested parallelism up to 16 is honored even on small
  /// machines (the determinism suite exercises thread counts above the
  /// core count). Created on first use; never destroyed.
  static ThreadPool& Shared();

 private:
  void WorkerLoop() AUTOCAT_EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ AUTOCAT_GUARDED_BY(mu_);
  bool stop_ AUTOCAT_GUARDED_BY(mu_) = false;
  // Written once by the constructor before any worker can observe it,
  // immutable afterwards (threads() and ParallelFor read it lock-free).
  std::vector<std::thread> workers_;
};

/// Convenience front-end used by the hot paths: resolves `options` and
/// runs `fn` over [begin, end) in `grain`-sized chunks — strictly
/// sequentially (in chunk order, on the calling thread) when the resolved
/// thread count is 1, on the shared pool capped at that count otherwise.
/// Chunking, error selection, and nested-call rejection are identical in
/// both modes.
Status ParallelFor(const ParallelOptions& options, size_t begin, size_t end,
                   size_t grain,
                   const std::function<Status(size_t, size_t)>& fn);

/// Blocks the calling thread for (at least) `ms` milliseconds. Lives here
/// because thread_pool.* is the one sanctioned home of <thread>
/// (raw-thread lint rule); used by the load generator for request pacing.
void SleepForMillis(int64_t ms);

}  // namespace autocat

#endif  // AUTOCAT_COMMON_THREAD_POOL_H_
