#include "common/status.h"

namespace autocat {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kParseError:
      return "parse error";
    case StatusCode::kNotSupported:
      return "not supported";
    case StatusCode::kIOError:
      return "I/O error";
    case StatusCode::kInternal:
      return "internal error";
    case StatusCode::kOverloaded:
      return "overloaded";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result(StatusCodeToString(code_));
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace autocat
