#ifndef AUTOCAT_COMMON_CHECK_H_
#define AUTOCAT_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a diagnostic when `cond` is false. Used for programming
/// errors (broken invariants), never for recoverable conditions — those are
/// reported through Status/Result.
#define AUTOCAT_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "%s:%d: AUTOCAT_CHECK failed: %s\n",          \
                   __FILE__, __LINE__, #cond);                           \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

#ifdef NDEBUG
#define AUTOCAT_DCHECK(cond) \
  do {                       \
  } while (false)
#else
#define AUTOCAT_DCHECK(cond) AUTOCAT_CHECK(cond)
#endif

#endif  // AUTOCAT_COMMON_CHECK_H_
