#ifndef AUTOCAT_COMMON_CHECK_H_
#define AUTOCAT_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

/// Aborts with a diagnostic when `cond` is false. Used for programming
/// errors (broken invariants), never for recoverable conditions — those are
/// reported through Status/Result.
#define AUTOCAT_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "%s:%d: AUTOCAT_CHECK failed: %s\n",          \
                   __FILE__, __LINE__, #cond);                           \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

namespace autocat::internal {

/// Renders an operand for a failed AUTOCAT_CHECK_* message. Streamable
/// types print their value; everything else prints a placeholder so the
/// macros stay usable with arbitrary operand types.
template <typename T>
std::string CheckOperandToString(const T& v) {
  if constexpr (requires(std::ostringstream& os) { os << v; }) {
    std::ostringstream os;
    os << v;
    return os.str();
  } else {
    return "<unprintable>";
  }
}

}  // namespace autocat::internal

/// Binary-comparison checks that print both operand values on failure,
/// e.g. `a.cc:7: AUTOCAT_CHECK_GE failed: n >= lo (2 vs 5)`.
/// Operands are evaluated exactly once.
#define AUTOCAT_CHECK_OP_(name, op, a, b)                                  \
  do {                                                                     \
    const auto& _autocat_a_ = (a);                                         \
    const auto& _autocat_b_ = (b);                                         \
    if (!(_autocat_a_ op _autocat_b_)) {                                   \
      std::fprintf(                                                        \
          stderr, "%s:%d: %s failed: %s %s %s (%s vs %s)\n", __FILE__,     \
          __LINE__, name, #a, #op, #b,                                     \
          ::autocat::internal::CheckOperandToString(_autocat_a_).c_str(),  \
          ::autocat::internal::CheckOperandToString(_autocat_b_).c_str()); \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#define AUTOCAT_CHECK_EQ(a, b) AUTOCAT_CHECK_OP_("AUTOCAT_CHECK_EQ", ==, a, b)
#define AUTOCAT_CHECK_NE(a, b) AUTOCAT_CHECK_OP_("AUTOCAT_CHECK_NE", !=, a, b)
#define AUTOCAT_CHECK_LT(a, b) AUTOCAT_CHECK_OP_("AUTOCAT_CHECK_LT", <, a, b)
#define AUTOCAT_CHECK_LE(a, b) AUTOCAT_CHECK_OP_("AUTOCAT_CHECK_LE", <=, a, b)
#define AUTOCAT_CHECK_GT(a, b) AUTOCAT_CHECK_OP_("AUTOCAT_CHECK_GT", >, a, b)
#define AUTOCAT_CHECK_GE(a, b) AUTOCAT_CHECK_OP_("AUTOCAT_CHECK_GE", >=, a, b)

/// Debug-only variants. Release builds compile the condition away entirely
/// (operands are not evaluated), so Validate()-style invariant sweeps can
/// sit on hot mutation paths for free.
#ifdef NDEBUG
#define AUTOCAT_DCHECK(cond) \
  do {                       \
  } while (false)
#define AUTOCAT_DCHECK_OP_IGNORE_(a, b) \
  do {                                  \
  } while (false)
#define AUTOCAT_DCHECK_EQ(a, b) AUTOCAT_DCHECK_OP_IGNORE_(a, b)
#define AUTOCAT_DCHECK_NE(a, b) AUTOCAT_DCHECK_OP_IGNORE_(a, b)
#define AUTOCAT_DCHECK_LT(a, b) AUTOCAT_DCHECK_OP_IGNORE_(a, b)
#define AUTOCAT_DCHECK_LE(a, b) AUTOCAT_DCHECK_OP_IGNORE_(a, b)
#define AUTOCAT_DCHECK_GT(a, b) AUTOCAT_DCHECK_OP_IGNORE_(a, b)
#define AUTOCAT_DCHECK_GE(a, b) AUTOCAT_DCHECK_OP_IGNORE_(a, b)
#else
#define AUTOCAT_DCHECK(cond) AUTOCAT_CHECK(cond)
#define AUTOCAT_DCHECK_EQ(a, b) AUTOCAT_CHECK_EQ(a, b)
#define AUTOCAT_DCHECK_NE(a, b) AUTOCAT_CHECK_NE(a, b)
#define AUTOCAT_DCHECK_LT(a, b) AUTOCAT_CHECK_LT(a, b)
#define AUTOCAT_DCHECK_LE(a, b) AUTOCAT_CHECK_LE(a, b)
#define AUTOCAT_DCHECK_GT(a, b) AUTOCAT_CHECK_GT(a, b)
#define AUTOCAT_DCHECK_GE(a, b) AUTOCAT_CHECK_GE(a, b)
#endif

#endif  // AUTOCAT_COMMON_CHECK_H_
