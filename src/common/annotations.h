#ifndef AUTOCAT_COMMON_ANNOTATIONS_H_
#define AUTOCAT_COMMON_ANNOTATIONS_H_

/// Clang Thread Safety Analysis attributes behind repo-local macros
/// (DESIGN.md §11, "Concurrency discipline").
///
/// Under clang the macros expand to the `capability`-family attributes and
/// the whole tree is compiled with `-Wthread-safety -Werror=thread-safety`
/// (wired in the top-level CMakeLists and the ci.sh --analyze leg), so
/// every lock-discipline violation — touching a guarded member without its
/// mutex, acquiring a capability a function promised to exclude, releasing
/// a lock that was never held — is a compile error on *every* path, not a
/// runtime race TSan may or may not trigger. Under other compilers the
/// macros expand to nothing and the annotated code compiles unchanged.
///
/// Conventions:
///   - Every shared mutable member is declared `T member_
///     AUTOCAT_GUARDED_BY(mu_);` next to its mutex.
///   - Functions that assume the lock is already held are named
///     `FooLocked()` and annotated `AUTOCAT_REQUIRES(mu_)`; their public
///     wrappers acquire the lock and are annotated
///     `AUTOCAT_EXCLUDES(mu_)`.
///   - Locks are taken through the RAII types in common/mutex.h
///     (MutexLock / ReaderLock / WriterLock), never via manual
///     lock()/unlock() pairs — the `manual-lock` lint rule enforces this
///     textually where the analysis cannot see (e.g. non-clang builds).

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define AUTOCAT_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef AUTOCAT_THREAD_ANNOTATION_
#define AUTOCAT_THREAD_ANNOTATION_(x)  // expands to nothing outside clang
#endif

/// Marks a type as a capability (lock). `name` appears in diagnostics,
/// e.g. AUTOCAT_CAPABILITY("mutex").
#define AUTOCAT_CAPABILITY(name) \
  AUTOCAT_THREAD_ANNOTATION_(capability(name))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability (MutexLock and friends).
#define AUTOCAT_SCOPED_CAPABILITY \
  AUTOCAT_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that a data member is protected by the given capability:
/// reads require the capability held shared, writes require it exclusive.
#define AUTOCAT_GUARDED_BY(x) AUTOCAT_THREAD_ANNOTATION_(guarded_by(x))

/// As AUTOCAT_GUARDED_BY, but protects the data *pointed to* by the
/// member rather than the pointer itself.
#define AUTOCAT_PT_GUARDED_BY(x) \
  AUTOCAT_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The function may only be called with the listed capabilities held
/// exclusively; it does not acquire or release them (`FooLocked()`
/// helpers).
#define AUTOCAT_REQUIRES(...) \
  AUTOCAT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// As AUTOCAT_REQUIRES, for capabilities held in shared (reader) mode.
#define AUTOCAT_REQUIRES_SHARED(...) \
  AUTOCAT_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the listed capabilities exclusively and holds
/// them on return (Mutex::Lock, MutexLock's constructor).
#define AUTOCAT_ACQUIRE(...) \
  AUTOCAT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// As AUTOCAT_ACQUIRE, in shared (reader) mode.
#define AUTOCAT_ACQUIRE_SHARED(...) \
  AUTOCAT_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// The function releases the listed capabilities (or, on an RAII type's
/// destructor with no argument, whatever the constructor acquired).
#define AUTOCAT_RELEASE(...) \
  AUTOCAT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// As AUTOCAT_RELEASE, for capabilities held in shared mode.
#define AUTOCAT_RELEASE_SHARED(...) \
  AUTOCAT_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// The function attempts to acquire the capability and returns `result`
/// (true/false) on success.
#define AUTOCAT_TRY_ACQUIRE(...) \
  AUTOCAT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the listed capabilities: the function acquires
/// them itself, so calling it with one held would self-deadlock (public
/// wrappers around `FooLocked()` helpers).
#define AUTOCAT_EXCLUDES(...) \
  AUTOCAT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Informs the analysis (without runtime effect here) that the capability
/// is held — an assertion-style escape hatch for invariants the analysis
/// cannot derive.
#define AUTOCAT_ASSERT_CAPABILITY(x) \
  AUTOCAT_THREAD_ANNOTATION_(assert_capability(x))

/// The function returns a reference to the named capability (accessor
/// functions exposing a member mutex).
#define AUTOCAT_RETURN_CAPABILITY(x) \
  AUTOCAT_THREAD_ANNOTATION_(lock_returned(x))

/// Documents lock-acquisition order between capabilities (also declared
/// globally in tools/lock_order.txt for the `lock-order` lint rule).
#define AUTOCAT_ACQUIRED_BEFORE(...) \
  AUTOCAT_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define AUTOCAT_ACQUIRED_AFTER(...) \
  AUTOCAT_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Disables the analysis for one function. Last resort — every use must
/// carry a comment explaining why the contract holds anyway.
#define AUTOCAT_NO_THREAD_SAFETY_ANALYSIS \
  AUTOCAT_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // AUTOCAT_COMMON_ANNOTATIONS_H_
