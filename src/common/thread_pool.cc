#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

#include "common/annotations.h"
#include "common/mutex.h"

namespace autocat {

namespace {

/// Set while the current thread executes ParallelFor chunks (either as the
/// caller or as a pool worker). Guards against nested parallel regions,
/// which could deadlock a fixed-size pool. Deliberately a plain
/// thread_local bool, not an atomic: each thread reads and writes only its
/// own copy, so there is no cross-thread ordering to establish.
thread_local bool tls_in_parallel_for = false;

Status NestedParallelForError() {
  return Status::NotSupported(
      "nested ParallelFor: this thread is already executing a parallel "
      "region; restructure the outer loop to cover the inner work");
}

/// Shared state of one ParallelFor: the claim counter plus the error of
/// the lowest-indexed failing chunk. Chunks are claimed in ascending index
/// order, so the set of claimed chunks is always a prefix — which makes
/// the recorded minimum failing chunk equal to the first chunk a
/// sequential in-order run would fail on, independent of thread count.
struct ForState {
  size_t begin = 0;
  size_t end = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  const std::function<Status(size_t, size_t)>* fn = nullptr;

  // atomic-order: relaxed — a pure claim counter. fetch_add only needs
  // each chunk index handed out exactly once; the chunk *results* are
  // published by the Submit/future join, not by this counter, so no
  // acquire/release pairing is needed here.
  std::atomic<size_t> next{0};
  // atomic-order: release/acquire — the store(release) in RunChunks
  // happens after the error fields are written under `mu`; the
  // load(acquire) in the claim loop therefore observes a fully recorded
  // error before any thread stops claiming. seq_cst would add nothing:
  // there is no multi-variable ordering to arbitrate.
  std::atomic<bool> failed{false};
  Mutex mu;
  size_t first_error_chunk AUTOCAT_GUARDED_BY(mu) =
      std::numeric_limits<size_t>::max();
  Status error AUTOCAT_GUARDED_BY(mu);
};

Status RunChunk(const ForState& state, size_t chunk) {
  const size_t lo = state.begin + chunk * state.grain;
  const size_t hi = std::min(state.end, lo + state.grain);
  try {
    return (*state.fn)(lo, hi);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("ParallelFor body threw: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("ParallelFor body threw a non-std exception");
  }
}

void RunChunks(ForState& state) {
  tls_in_parallel_for = true;
  while (!state.failed.load(std::memory_order_acquire)) {
    const size_t chunk = state.next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= state.num_chunks) {
      break;
    }
    Status status = RunChunk(state, chunk);
    if (!status.ok()) {
      MutexLock lock(state.mu);
      if (chunk < state.first_error_chunk) {
        state.first_error_chunk = chunk;
        state.error = std::move(status);
      }
      state.failed.store(true, std::memory_order_release);
    }
  }
  tls_in_parallel_for = false;
}

}  // namespace

size_t ParallelOptions::ResolvedThreads() const {
  if (threads > 0) {
    return threads;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

ThreadPool::ThreadPool(size_t threads) {
  const size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) {
        cv_.Wait(mu_);
      }
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to drain
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::future<Status> ThreadPool::Submit(std::function<Status()> task) {
  auto wrapped = std::make_shared<std::packaged_task<Status()>>(
      [moved_task = std::move(task)]() -> Status {
        try {
          return moved_task();
        } catch (const std::exception& e) {
          return Status::Internal(std::string("submitted task threw: ") +
                                  e.what());
        } catch (...) {
          return Status::Internal(
              "submitted task threw a non-std exception");
        }
      });
  std::future<Status> future = wrapped->get_future();
  if (workers_.empty()) {
    (*wrapped)();
    return future;
  }
  {
    MutexLock lock(mu_);
    queue_.emplace_back([wrapped] { (*wrapped)(); });
  }
  cv_.NotifyOne();
  return future;
}

Status ThreadPool::ParallelFor(
    size_t begin, size_t end, size_t grain,
    const std::function<Status(size_t, size_t)>& fn, size_t max_threads) {
  if (tls_in_parallel_for) {
    return NestedParallelForError();
  }
  if (begin >= end) {
    return Status::OK();
  }
  if (grain == 0) {
    grain = 1;
  }
  ForState state;
  state.begin = begin;
  state.end = end;
  state.grain = grain;
  state.num_chunks = (end - begin + grain - 1) / grain;
  state.fn = &fn;

  size_t budget = threads();
  if (max_threads > 0) {
    budget = std::min(budget, max_threads);
  }
  const size_t helpers = std::min(
      {budget > 0 ? budget - 1 : 0, workers_.size(), state.num_chunks - 1});
  std::vector<std::future<Status>> pending;
  pending.reserve(helpers);
  for (size_t i = 0; i < helpers; ++i) {
    pending.push_back(Submit([&state]() -> Status {
      RunChunks(state);
      return Status::OK();
    }));
  }
  RunChunks(state);
  for (std::future<Status>& future : pending) {
    // Helpers always return OK; real failures land in state.error with
    // their chunk index so the reported error is deterministic.
    (void)future.get();
  }
  MutexLock lock(state.mu);
  return state.error;
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(
      std::max<size_t>(ParallelOptions{}.ResolvedThreads(), 16));
  return *pool;
}

Status ParallelFor(const ParallelOptions& options, size_t begin, size_t end,
                   size_t grain,
                   const std::function<Status(size_t, size_t)>& fn) {
  const size_t threads = options.ResolvedThreads();
  if (threads > 1) {
    return ThreadPool::Shared().ParallelFor(begin, end, grain, fn, threads);
  }
  // Sequential mode: same chunking, error selection, and nesting rules,
  // with every chunk run in order on the calling thread.
  if (tls_in_parallel_for) {
    return NestedParallelForError();
  }
  if (begin >= end) {
    return Status::OK();
  }
  if (grain == 0) {
    grain = 1;
  }
  ForState state;
  state.begin = begin;
  state.end = end;
  state.grain = grain;
  state.num_chunks = (end - begin + grain - 1) / grain;
  state.fn = &fn;
  tls_in_parallel_for = true;
  Status status = Status::OK();
  for (size_t chunk = 0; chunk < state.num_chunks; ++chunk) {
    status = RunChunk(state, chunk);
    if (!status.ok()) {
      break;
    }
  }
  tls_in_parallel_for = false;
  return status;
}

void SleepForMillis(int64_t ms) {
  if (ms <= 0) {
    return;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace autocat
