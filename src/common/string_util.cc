#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace autocat {

std::string_view TrimWhitespace(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

namespace {

std::string FormatScaled(double v, double divisor, const char* suffix) {
  const double scaled = v / divisor;
  char buf[64];
  if (scaled == std::floor(scaled)) {
    std::snprintf(buf, sizeof(buf), "%.0f%s", scaled, suffix);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", scaled, suffix);
  }
  return buf;
}

}  // namespace

std::string HumanizeNumber(double v) {
  const double mag = std::fabs(v);
  if (mag >= 1e6 && std::fmod(v, 100000.0) == 0.0) {
    return FormatScaled(v, 1e6, "M");
  }
  if (mag >= 1e3 && std::fmod(v, 1000.0) == 0.0) {
    return FormatScaled(v, 1e3, "K");
  }
  char buf[64];
  if (v == std::floor(v) && mag < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%g", v);
  }
  return buf;
}

namespace {

// Shared strict-parse shell: trims, rejects empty input, runs `parse`
// (an errno-reporting strtoX wrapper), and requires full consumption.
template <typename T, typename Parse>
Result<T> StrictParse(std::string_view text, const char* what,
                      const Parse& parse) {
  const std::string_view trimmed = TrimWhitespace(text);
  if (trimmed.empty()) {
    return Status::InvalidArgument(std::string("empty ") + what +
                                   " value");
  }
  const std::string owned(trimmed);  // strtoX needs NUL termination
  errno = 0;
  char* end = nullptr;
  const T value = parse(owned.c_str(), &end);
  if (errno == ERANGE) {
    return Status::InvalidArgument(std::string(what) +
                                   " value out of range: '" + owned + "'");
  }
  if (end != owned.c_str() + owned.size()) {
    return Status::InvalidArgument(std::string("malformed ") + what +
                                   " value: '" + owned + "'");
  }
  return value;
}

}  // namespace

Result<uint64_t> ParseUint64(std::string_view text) {
  // strtoull accepts a leading '-' (wrapping the value); reject it first.
  if (!TrimWhitespace(text).empty() && TrimWhitespace(text)[0] == '-') {
    return Status::InvalidArgument("negative unsigned value: '" +
                                   std::string(TrimWhitespace(text)) + "'");
  }
  return StrictParse<uint64_t>(
      text, "unsigned integer", [](const char* s, char** end) {
        return static_cast<uint64_t>(std::strtoull(s, end, 10));
      });
}

Result<int64_t> ParseInt64(std::string_view text) {
  return StrictParse<int64_t>(
      text, "integer", [](const char* s, char** end) {
        return static_cast<int64_t>(std::strtoll(s, end, 10));
      });
}

Result<double> ParseDouble(std::string_view text) {
  return StrictParse<double>(text, "numeric",
                             [](const char* s, char** end) {
                               return std::strtod(s, end);
                             });
}

}  // namespace autocat
