#include "common/histogram.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace autocat {

namespace {

// Fixed-precision rendering so snapshots and JSON are byte-stable across
// platforms (std::to_string-style locale surprises excluded by %f).
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1, 0) {
  AUTOCAT_CHECK(!upper_bounds_.empty());
  for (size_t i = 1; i < upper_bounds_.size(); ++i) {
    AUTOCAT_CHECK_LT(upper_bounds_[i - 1], upper_bounds_[i]);
  }
}

Histogram Histogram::LatencyMs() {
  std::vector<double> bounds;
  double b = 0.01;
  for (int i = 0; i < 23; ++i) {
    bounds.push_back(b);
    b *= 2;
  }
  return Histogram(std::move(bounds));
}

void Histogram::Add(double v) {
  const auto it = std::lower_bound(upper_bounds_.begin(),
                                   upper_bounds_.end(), v);
  ++counts_[static_cast<size_t>(it - upper_bounds_.begin())];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

void Histogram::Merge(const Histogram& other) {
  AUTOCAT_CHECK(upper_bounds_ == other.upper_bounds_);
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::PercentileEstimate(double p) const {
  if (count_ == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  size_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    const size_t next = seen + counts_[i];
    if (static_cast<double>(next) >= target) {
      if (i == upper_bounds_.size()) {
        return max_;  // overflow bucket: the bound is open-ended
      }
      const double lo = i == 0 ? std::min(min_, upper_bounds_[0])
                               : upper_bounds_[i - 1];
      const double hi = upper_bounds_[i];
      const double frac =
          (target - static_cast<double>(seen)) /
          static_cast<double>(counts_[i]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen = next;
  }
  return max_;
}

std::string Histogram::ToJson() const {
  std::string out = "{\"count\":" + std::to_string(count_);
  out += ",\"mean\":" + FormatDouble(mean());
  out += ",\"min\":" + FormatDouble(min());
  out += ",\"max\":" + FormatDouble(max());
  out += ",\"p50\":" + FormatDouble(PercentileEstimate(50));
  out += ",\"p90\":" + FormatDouble(PercentileEstimate(90));
  out += ",\"p99\":" + FormatDouble(PercentileEstimate(99));
  out += "}";
  return out;
}

}  // namespace autocat
