#ifndef AUTOCAT_COMMON_STATISTICS_H_
#define AUTOCAT_COMMON_STATISTICS_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace autocat {

/// Arithmetic mean. Returns 0 for an empty input.
double Mean(const std::vector<double>& xs);

/// Population standard deviation. Returns 0 for fewer than 2 samples.
double StdDev(const std::vector<double>& xs);

/// Pearson product-moment correlation coefficient between paired samples.
/// Errors when sizes differ, fewer than 2 pairs, or either side has zero
/// variance (correlation undefined).
Result<double> PearsonCorrelation(const std::vector<double>& xs,
                                  const std::vector<double>& ys);

/// Least-squares slope of y = b*x (regression through the origin), the fit
/// the paper reports for Figure 7. Errors when sizes differ or sum(x^2)=0.
Result<double> LeastSquaresSlopeThroughOrigin(const std::vector<double>& xs,
                                              const std::vector<double>& ys);

/// Linear interpolation percentile, p in [0, 100]. Errors on empty input.
Result<double> Percentile(std::vector<double> xs, double p);

/// Incremental mean/min/max/count accumulator for benchmark reporting.
class RunningStat {
 public:
  RunningStat() = default;

  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace autocat

#endif  // AUTOCAT_COMMON_STATISTICS_H_
