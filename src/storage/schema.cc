#include "storage/schema.h"

#include "common/string_util.h"

namespace autocat {

std::string_view ColumnKindToString(ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kCategorical:
      return "categorical";
    case ColumnKind::kNumeric:
      return "numeric";
  }
  return "unknown";
}

Result<Schema> Schema::Create(std::vector<ColumnDef> columns) {
  Schema schema;
  for (size_t i = 0; i < columns.size(); ++i) {
    const ColumnDef& col = columns[i];
    if (col.name.empty()) {
      return Status::InvalidArgument("column name must not be empty");
    }
    if (col.kind == ColumnKind::kNumeric &&
        col.type != ValueType::kInt64 && col.type != ValueType::kDouble) {
      return Status::InvalidArgument(
          "numeric column '" + col.name + "' must have int64/double type");
    }
    const std::string lower = ToLower(col.name);
    auto [it, inserted] = schema.index_by_lower_name_.emplace(lower, i);
    (void)it;
    if (!inserted) {
      return Status::AlreadyExists("duplicate column name '" + col.name +
                                   "'");
    }
  }
  schema.columns_ = std::move(columns);
  return schema;
}

Result<size_t> Schema::ColumnIndex(std::string_view name) const {
  const auto it = index_by_lower_name_.find(ToLower(name));
  if (it == index_by_lower_name_.end()) {
    return Status::NotFound("no column named '" + std::string(name) + "'");
  }
  return it->second;
}

bool Schema::HasColumn(std::string_view name) const {
  return index_by_lower_name_.count(ToLower(name)) > 0;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += columns_[i].name;
    out += ":";
    out += ValueTypeToString(columns_[i].type);
    out += ":";
    out += ColumnKindToString(columns_[i].kind);
  }
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) {
    return false;
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    const ColumnDef& a = columns_[i];
    const ColumnDef& b = other.columns_[i];
    if (!EqualsIgnoreCase(a.name, b.name) || a.type != b.type ||
        a.kind != b.kind) {
      return false;
    }
  }
  return true;
}

}  // namespace autocat
