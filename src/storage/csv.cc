#include "storage/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace autocat {

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

// Splits one logical CSV record (no embedded newlines supported in fields
// read from WriteCsvFile output, which never emits them for our data).
Result<std::vector<std::string>> SplitCsvRecord(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      if (!cur.empty()) {
        return Status::ParseError("unexpected quote mid-field in: " + line);
      }
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted field in: " + line);
  }
  fields.push_back(std::move(cur));
  return fields;
}

Result<Value> ParseCell(const std::string& field, const ColumnDef& col) {
  if (field.empty()) {
    return Value();
  }
  switch (col.type) {
    case ValueType::kString:
      return Value(field);
    case ValueType::kInt64:
    case ValueType::kDouble: {
      AUTOCAT_ASSIGN_OR_RETURN(Value v, Value::ParseNumeric(field));
      return v;
    }
    case ValueType::kNull:
      return Value();
  }
  return Status::Internal("unreachable column type");
}

}  // namespace

std::string TableToCsv(const Table& table) {
  std::string out;
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out += ',';
    out += QuoteField(schema.column(c).name);
  }
  out += '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out += ',';
      const Value& v = table.ValueAt(r, c);
      if (!v.is_null()) {
        out += QuoteField(v.ToString());
      }
    }
    out += '\n';
  }
  return out;
}

Result<Table> TableFromCsv(const Schema& schema, const std::string& csv) {
  std::istringstream in(csv);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError("CSV input is empty (missing header)");
  }
  if (!line.empty() && line.back() == '\r') {
    line.pop_back();
  }
  AUTOCAT_ASSIGN_OR_RETURN(const std::vector<std::string> header,
                           SplitCsvRecord(line));
  if (header.size() != schema.num_columns()) {
    return Status::ParseError(
        "CSV header has " + std::to_string(header.size()) +
        " fields, schema has " + std::to_string(schema.num_columns()));
  }
  for (size_t c = 0; c < header.size(); ++c) {
    if (!EqualsIgnoreCase(header[c], schema.column(c).name)) {
      return Status::ParseError("CSV header field '" + header[c] +
                                "' does not match schema column '" +
                                schema.column(c).name + "'");
    }
  }

  Table table(schema);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    AUTOCAT_ASSIGN_OR_RETURN(const std::vector<std::string> fields,
                             SplitCsvRecord(line));
    if (fields.size() != schema.num_columns()) {
      return Status::ParseError("CSV line " + std::to_string(line_no) +
                                " has " + std::to_string(fields.size()) +
                                " fields, expected " +
                                std::to_string(schema.num_columns()));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      AUTOCAT_ASSIGN_OR_RETURN(Value v,
                               ParseCell(fields[c], schema.column(c)));
      row.push_back(std::move(v));
    }
    AUTOCAT_RETURN_IF_ERROR(table.AppendRow(std::move(row)));
  }
  return table;
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out << TableToCsv(table);
  if (!out) {
    return Status::IOError("write to '" + path + "' failed");
  }
  return Status::OK();
}

Result<Table> ReadCsvFile(const Schema& schema, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return TableFromCsv(schema, buffer.str());
}

}  // namespace autocat
