#include "storage/index.h"

#include <algorithm>

namespace autocat {

Result<SortedColumnIndex> SortedColumnIndex::Build(
    const Table& table, std::string_view column_name) {
  AUTOCAT_ASSIGN_OR_RETURN(const size_t col,
                           table.schema().ColumnIndex(column_name));
  SortedColumnIndex index;
  index.column_name_ = table.schema().column(col).name;
  index.entries_.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    // CellValue works in both storage modes (column-backed tables have no
    // rows to hand out references into).
    Value v = table.CellValue(r, col);
    if (!v.is_null()) {
      index.entries_.emplace_back(std::move(v), r);
    }
  }
  std::sort(index.entries_.begin(), index.entries_.end(),
            [](const auto& a, const auto& b) {
              const int cmp = a.first.Compare(b.first);
              if (cmp != 0) {
                return cmp < 0;
              }
              return a.second < b.second;
            });
  return index;
}

std::vector<size_t> SortedColumnIndex::Lookup(const Value& v) const {
  const auto lower = std::lower_bound(
      entries_.begin(), entries_.end(), v,
      [](const auto& entry, const Value& key) {
        return entry.first.Compare(key) < 0;
      });
  std::vector<size_t> out;
  for (auto it = lower; it != entries_.end() && it->first == v; ++it) {
    out.push_back(it->second);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<size_t> SortedColumnIndex::RangeLookup(
    const Value& lo, bool lo_inclusive, const Value& hi,
    bool hi_inclusive) const {
  auto begin = entries_.begin();
  if (!lo.is_null()) {
    begin = lo_inclusive
                ? std::lower_bound(entries_.begin(), entries_.end(), lo,
                                   [](const auto& entry, const Value& key) {
                                     return entry.first.Compare(key) < 0;
                                   })
                : std::upper_bound(entries_.begin(), entries_.end(), lo,
                                   [](const Value& key, const auto& entry) {
                                     return key.Compare(entry.first) < 0;
                                   });
  }
  auto end = entries_.end();
  if (!hi.is_null()) {
    end = hi_inclusive
              ? std::upper_bound(entries_.begin(), entries_.end(), hi,
                                 [](const Value& key, const auto& entry) {
                                   return key.Compare(entry.first) < 0;
                                 })
              : std::lower_bound(entries_.begin(), entries_.end(), hi,
                                 [](const auto& entry, const Value& key) {
                                   return entry.first.Compare(key) < 0;
                                 });
  }
  std::vector<size_t> out;
  for (auto it = begin; it < end; ++it) {
    out.push_back(it->second);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace autocat
