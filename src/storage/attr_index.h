#ifndef AUTOCAT_STORAGE_ATTR_INDEX_H_
#define AUTOCAT_STORAGE_ATTR_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/value.h"

namespace autocat {

/// Per-attribute access structure over one materialized query result,
/// built as a by-product of the push-based cold pipeline (the
/// StatsAccumulate sink gathers per-morsel partials and merges them in
/// morsel order, see exec/pipeline/).
///
/// An entry describes the *root-level* tuple set — every row of the
/// result, i.e. the identity tuple list 0..n-1 — in exactly the shape the
/// partitioners consume:
///   - numeric columns: the non-NULL (value, row) pairs sorted ascending
///     (the `SortedNumericValues` shape; pairs are distinct because the
///     row index is unique, so the sorted order is a total order and any
///     correct sort produces the identical vector);
///   - dictionary-encoded categorical string columns: one group per
///     distinct value in ascending value order (== ascending dictionary
///     code order), each group's row indices ascending (the `GroupsOf`
///     shape).
/// Columns that fit neither shape (irregular columns, non-string
/// categoricals) simply have no entry and consumers fall back to their
/// generic scan.
struct AttributeIndexEntry {
  /// Sorted non-NULL (value, row) pairs of a numeric column.
  bool has_sorted_values = false;
  std::vector<std::pair<double, size_t>> sorted_values;

  /// Ascending-value groups of a categorical string column.
  bool has_groups = false;
  std::vector<std::pair<Value, std::vector<size_t>>> groups;
};

/// One entry per result-schema column (same order). A consumer may use an
/// entry only for the identity tuple set over all `num_rows` rows — any
/// proper subset (or reordered set) must be rescanned, since the entry
/// has no way to restrict itself.
struct ResultAttributeIndex {
  size_t num_rows = 0;
  std::vector<AttributeIndexEntry> columns;

  const AttributeIndexEntry* entry(size_t col) const {
    return col < columns.size() ? &columns[col] : nullptr;
  }
};

/// True when `tuples` is exactly the identity list 0..n-1 over `n` rows —
/// the only tuple set a ResultAttributeIndex entry answers for. O(n) with
/// early exit; callers pay this only to avoid an O(n log n) rescan.
inline bool IsIdentityTupleSet(const std::vector<size_t>& tuples, size_t n) {
  if (tuples.size() != n) {
    return false;
  }
  for (size_t i = 0; i < n; ++i) {
    if (tuples[i] != i) {
      return false;
    }
  }
  return true;
}

}  // namespace autocat

#endif  // AUTOCAT_STORAGE_ATTR_INDEX_H_
