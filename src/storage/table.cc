#include "storage/table.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace autocat {

namespace {

// Coerces `cell` to the declared `type` when a lossless conversion exists.
// NULL passes through untouched.
Result<Value> CoerceCell(const Value& cell, const ColumnDef& col) {
  if (cell.is_null()) {
    return cell;
  }
  if (cell.type() == col.type) {
    return cell;
  }
  if (col.type == ValueType::kDouble && cell.is_int64()) {
    return Value(static_cast<double>(cell.int64_value()));
  }
  if (col.type == ValueType::kInt64 && cell.is_double()) {
    const double d = cell.double_value();
    if (std::floor(d) == d && std::fabs(d) < 9.2e18) {
      return Value(static_cast<int64_t>(d));
    }
    return Status::InvalidArgument(
        "cannot losslessly store " + cell.ToString() + " in int64 column '" +
        col.name + "'");
  }
  return Status::InvalidArgument(
      "type mismatch in column '" + col.name + "': expected " +
      std::string(ValueTypeToString(col.type)) + ", got " +
      std::string(ValueTypeToString(cell.type())));
}

}  // namespace

Status Table::AppendRow(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " cells, schema has " +
        std::to_string(schema_.num_columns()) + " columns");
  }
  for (size_t c = 0; c < row.size(); ++c) {
    AUTOCAT_ASSIGN_OR_RETURN(row[c], CoerceCell(row[c], schema_.column(c)));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Result<Table> Table::SelectRows(const std::vector<size_t>& indices) const {
  Table out(schema_);
  out.Reserve(indices.size());
  for (size_t idx : indices) {
    if (idx >= rows_.size()) {
      return Status::OutOfRange("row index " + std::to_string(idx) +
                                " out of range");
    }
    out.rows_.push_back(rows_[idx]);
  }
  return out;
}

std::vector<size_t> Table::FilterIndices(
    const std::function<bool(const Row&)>& pred) const {
  std::vector<size_t> out;
  // Heuristic: most filters on this path are selective; a quarter of the
  // table avoids the early doubling reallocations without ballooning
  // memory when only a handful of rows match.
  out.reserve(rows_.size() / 4 + 16);
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (pred(rows_[i])) {
      out.push_back(i);
    }
  }
  return out;
}

Result<Table> Table::Project(
    const std::vector<std::string>& column_names) const {
  std::vector<ColumnDef> cols;
  std::vector<size_t> src_indices;
  cols.reserve(column_names.size());
  for (const std::string& name : column_names) {
    AUTOCAT_ASSIGN_OR_RETURN(const size_t idx, schema_.ColumnIndex(name));
    cols.push_back(schema_.column(idx));
    src_indices.push_back(idx);
  }
  AUTOCAT_ASSIGN_OR_RETURN(Schema out_schema, Schema::Create(std::move(cols)));
  // Identity projection: every column in schema order — the rows can be
  // copied whole instead of cell by cell.
  const bool identity =
      src_indices.size() == schema_.num_columns() &&
      [&src_indices] {
        for (size_t c = 0; c < src_indices.size(); ++c) {
          if (src_indices[c] != c) {
            return false;
          }
        }
        return true;
      }();
  Table out(std::move(out_schema));
  out.Reserve(rows_.size());
  if (identity) {
    out.rows_ = rows_;
    return out;
  }
  for (const Row& r : rows_) {
    Row projected(src_indices.size());
    for (size_t c = 0; c < src_indices.size(); ++c) {
      projected[c] = r[src_indices[c]];
    }
    out.rows_.push_back(std::move(projected));
  }
  return out;
}

Result<std::vector<Value>> Table::DistinctValues(size_t col) const {
  if (col >= schema_.num_columns()) {
    return Status::OutOfRange("column index out of range");
  }
  std::set<Value> distinct;
  for (const Row& r : rows_) {
    if (!r[col].is_null()) {
      distinct.insert(r[col]);
    }
  }
  return std::vector<Value>(distinct.begin(), distinct.end());
}

Result<std::pair<Value, Value>> Table::MinMax(size_t col) const {
  if (col >= schema_.num_columns()) {
    return Status::OutOfRange("column index out of range");
  }
  bool seen = false;
  Value min_v;
  Value max_v;
  for (const Row& r : rows_) {
    const Value& v = r[col];
    if (v.is_null()) {
      continue;
    }
    if (!seen) {
      min_v = v;
      max_v = v;
      seen = true;
    } else {
      if (v < min_v) min_v = v;
      if (v > max_v) max_v = v;
    }
  }
  if (!seen) {
    return Status::NotFound("column '" + schema_.column(col).name +
                            "' has no non-NULL values");
  }
  return std::make_pair(min_v, max_v);
}

std::string Table::ToString(size_t max_rows) const {
  const size_t ncols = schema_.num_columns();
  const size_t shown = std::min(max_rows, rows_.size());

  std::vector<std::vector<std::string>> cells;
  std::vector<size_t> widths(ncols, 0);
  std::vector<std::string> header(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    header[c] = schema_.column(c).name;
    widths[c] = header[c].size();
  }
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> row_cells(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      row_cells[c] = rows_[r][c].ToString();
      widths[c] = std::max(widths[c], row_cells[c].size());
    }
    cells.push_back(std::move(row_cells));
  }

  auto append_row = [&](std::string& out,
                        const std::vector<std::string>& row_cells) {
    for (size_t c = 0; c < ncols; ++c) {
      out += "| ";
      out += row_cells[c];
      out.append(widths[c] - row_cells[c].size() + 1, ' ');
    }
    out += "|\n";
  };

  std::string out;
  append_row(out, header);
  for (size_t c = 0; c < ncols; ++c) {
    out += "|";
    out.append(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row_cells : cells) {
    append_row(out, row_cells);
  }
  if (shown < rows_.size()) {
    out += "... (" + std::to_string(rows_.size() - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace autocat
