#include "storage/table.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "storage/columnar.h"

namespace autocat {

namespace {

// Coerces `*cell` to the declared `type` in place when a lossless
// conversion exists. NULL and already-typed cells pass through untouched
// (no copy — the caller keeps ownership of string payloads).
Status CoerceCellInPlace(Value* cell, const ColumnDef& col) {
  if (cell->is_null() || cell->type() == col.type) {
    return Status::OK();
  }
  if (col.type == ValueType::kDouble && cell->is_int64()) {
    *cell = Value(static_cast<double>(cell->int64_value()));
    return Status::OK();
  }
  if (col.type == ValueType::kInt64 && cell->is_double()) {
    const double d = cell->double_value();
    if (std::floor(d) == d && std::fabs(d) < 9.2e18) {
      *cell = Value(static_cast<int64_t>(d));
      return Status::OK();
    }
    return Status::InvalidArgument(
        "cannot losslessly store " + cell->ToString() + " in int64 column '" +
        col.name + "'");
  }
  return Status::InvalidArgument(
      "type mismatch in column '" + col.name + "': expected " +
      std::string(ValueTypeToString(col.type)) + ", got " +
      std::string(ValueTypeToString(cell->type())));
}

}  // namespace

Status CoerceRowToSchema(Row* row, const Schema& schema) {
  if (row->size() != schema.num_columns()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row->size()) + " cells, schema has " +
        std::to_string(schema.num_columns()) + " columns");
  }
  for (size_t c = 0; c < row->size(); ++c) {
    AUTOCAT_RETURN_IF_ERROR(CoerceCellInPlace(&(*row)[c], schema.column(c)));
  }
  return Status::OK();
}

Table Table::FromColumnar(Schema schema,
                          std::shared_ptr<const ColumnarTable> columnar) {
  AUTOCAT_CHECK(columnar != nullptr);
  AUTOCAT_CHECK_EQ(columnar->num_columns(), schema.num_columns());
  Table out(std::move(schema));
  out.columnar_rows_ = columnar->num_rows();
  out.columnar_ = std::move(columnar);
  return out;
}

Table Table::FromValidatedRows(Schema schema, std::vector<Row> rows) {
  Table out(std::move(schema));
  out.rows_ = std::move(rows);
  return out;
}

Value Table::CellValue(size_t row, size_t col) const {
  if (columnar_ == nullptr) {
    return rows_[row][col];
  }
  const ColumnarTable::Column& cc = columnar_->column(col);
  if (cc.IsNull(row)) {
    return Value();
  }
  switch (cc.type) {
    case ValueType::kInt64:
      return Value(cc.i64[row]);
    case ValueType::kDouble:
      return Value(cc.f64[row]);
    case ValueType::kString:
      return Value(cc.dict[cc.codes[row]]);
    case ValueType::kNull:
      return Value();
  }
  return Value();
}

Row Table::CopyRow(size_t i) const {
  if (columnar_ == nullptr) {
    return rows_[i];
  }
  Row out;
  out.reserve(num_columns());
  for (size_t c = 0; c < num_columns(); ++c) {
    out.push_back(CellValue(i, c));
  }
  return out;
}

Status Table::AppendRow(Row row) {
  if (columnar_ != nullptr) {
    return Status::InvalidArgument(
        "cannot append to a column-backed table");
  }
  AUTOCAT_RETURN_IF_ERROR(CoerceRowToSchema(&row, schema_));
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Table::AppendRows(std::vector<Row> rows) {
  if (columnar_ != nullptr) {
    return Status::InvalidArgument(
        "cannot append to a column-backed table");
  }
  // Validate (and coerce in place) before touching rows_, so a failed
  // batch leaves the table unchanged.
  for (Row& row : rows) {
    AUTOCAT_RETURN_IF_ERROR(CoerceRowToSchema(&row, schema_));
  }
  rows_.reserve(rows_.size() + rows.size());
  for (Row& row : rows) {
    rows_.push_back(std::move(row));
  }
  return Status::OK();
}

Result<Table> Table::SelectRows(const std::vector<size_t>& indices) const {
  Table out(schema_);
  out.Reserve(indices.size());
  const size_t n = num_rows();
  for (size_t idx : indices) {
    if (idx >= n) {
      return Status::OutOfRange("row index " + std::to_string(idx) +
                                " out of range");
    }
    if (columnar_ == nullptr) {
      out.rows_.push_back(rows_[idx]);
    } else {
      out.rows_.push_back(CopyRow(idx));
    }
  }
  return out;
}

std::vector<size_t> Table::FilterIndices(
    const std::function<bool(const Row&)>& pred) const {
  const size_t n = num_rows();
  std::vector<size_t> out;
  // Heuristic: most filters on this path are selective; a quarter of the
  // table avoids the early doubling reallocations without ballooning
  // memory when only a handful of rows match.
  out.reserve(n / 4 + 16);
  if (columnar_ == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      if (pred(rows_[i])) {
        out.push_back(i);
      }
    }
    return out;
  }
  Row scratch;
  for (size_t i = 0; i < n; ++i) {
    scratch.clear();
    for (size_t c = 0; c < num_columns(); ++c) {
      scratch.push_back(CellValue(i, c));
    }
    if (pred(scratch)) {
      out.push_back(i);
    }
  }
  return out;
}

Result<Table> Table::Project(
    const std::vector<std::string>& column_names) const {
  std::vector<ColumnDef> cols;
  std::vector<size_t> src_indices;
  cols.reserve(column_names.size());
  for (const std::string& name : column_names) {
    AUTOCAT_ASSIGN_OR_RETURN(const size_t idx, schema_.ColumnIndex(name));
    cols.push_back(schema_.column(idx));
    src_indices.push_back(idx);
  }
  AUTOCAT_ASSIGN_OR_RETURN(Schema out_schema, Schema::Create(std::move(cols)));
  const size_t n = num_rows();
  Table out(std::move(out_schema));
  out.Reserve(n);
  if (columnar_ != nullptr) {
    for (size_t r = 0; r < n; ++r) {
      Row projected;
      projected.reserve(src_indices.size());
      for (const size_t c : src_indices) {
        projected.push_back(CellValue(r, c));
      }
      out.rows_.push_back(std::move(projected));
    }
    return out;
  }
  // Identity projection: every column in schema order — the rows can be
  // copied whole instead of cell by cell.
  const bool identity =
      src_indices.size() == schema_.num_columns() &&
      [&src_indices] {
        for (size_t c = 0; c < src_indices.size(); ++c) {
          if (src_indices[c] != c) {
            return false;
          }
        }
        return true;
      }();
  if (identity) {
    out.rows_ = rows_;
    return out;
  }
  for (const Row& r : rows_) {
    Row projected(src_indices.size());
    for (size_t c = 0; c < src_indices.size(); ++c) {
      projected[c] = r[src_indices[c]];
    }
    out.rows_.push_back(std::move(projected));
  }
  return out;
}

Result<std::vector<Value>> Table::DistinctValues(size_t col) const {
  if (col >= schema_.num_columns()) {
    return Status::OutOfRange("column index out of range");
  }
  if (columnar_ != nullptr) {
    const ColumnarTable::Column& cc = columnar_->column(col);
    if (cc.type == ValueType::kString && cc.regular) {
      // The dictionary IS the sorted distinct non-NULL value set.
      std::vector<Value> out;
      out.reserve(cc.dict.size());
      for (const std::string& s : cc.dict) {
        out.emplace_back(s);
      }
      return out;
    }
    std::set<Value> distinct;
    const size_t n = num_rows();
    for (size_t r = 0; r < n; ++r) {
      Value v = CellValue(r, col);
      if (!v.is_null()) {
        distinct.insert(std::move(v));
      }
    }
    return std::vector<Value>(distinct.begin(), distinct.end());
  }
  std::set<Value> distinct;
  for (const Row& r : rows_) {
    if (!r[col].is_null()) {
      distinct.insert(r[col]);
    }
  }
  return std::vector<Value>(distinct.begin(), distinct.end());
}

Result<std::pair<Value, Value>> Table::MinMax(size_t col) const {
  if (col >= schema_.num_columns()) {
    return Status::OutOfRange("column index out of range");
  }
  bool seen = false;
  Value min_v;
  Value max_v;
  const size_t n = num_rows();
  for (size_t r = 0; r < n; ++r) {
    Value owned;
    const Value* v;
    if (columnar_ == nullptr) {
      v = &rows_[r][col];
    } else {
      owned = CellValue(r, col);
      v = &owned;
    }
    if (v->is_null()) {
      continue;
    }
    if (!seen) {
      min_v = *v;
      max_v = *v;
      seen = true;
    } else {
      if (*v < min_v) min_v = *v;
      if (*v > max_v) max_v = *v;
    }
  }
  if (!seen) {
    return Status::NotFound("column '" + schema_.column(col).name +
                            "' has no non-NULL values");
  }
  return std::make_pair(min_v, max_v);
}

std::string Table::ToString(size_t max_rows) const {
  const size_t ncols = schema_.num_columns();
  const size_t shown = std::min(max_rows, num_rows());

  std::vector<std::vector<std::string>> cells;
  std::vector<size_t> widths(ncols, 0);
  std::vector<std::string> header(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    header[c] = schema_.column(c).name;
    widths[c] = header[c].size();
  }
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> row_cells(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      row_cells[c] = CellValue(r, c).ToString();
      widths[c] = std::max(widths[c], row_cells[c].size());
    }
    cells.push_back(std::move(row_cells));
  }

  auto append_row = [&](std::string& out,
                        const std::vector<std::string>& row_cells) {
    for (size_t c = 0; c < ncols; ++c) {
      out += "| ";
      out += row_cells[c];
      out.append(widths[c] - row_cells[c].size() + 1, ' ');
    }
    out += "|\n";
  };

  std::string out;
  append_row(out, header);
  for (size_t c = 0; c < ncols; ++c) {
    out += "|";
    out.append(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row_cells : cells) {
    append_row(out, row_cells);
  }
  if (shown < num_rows()) {
    out += "... (" + std::to_string(num_rows() - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace autocat
