#ifndef AUTOCAT_STORAGE_CSV_H_
#define AUTOCAT_STORAGE_CSV_H_

#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace autocat {

/// Serializes `table` as RFC-4180-style CSV (header row, quoting applied to
/// fields containing commas/quotes/newlines; NULL rendered as empty field).
std::string TableToCsv(const Table& table);

/// Parses CSV text into a table with the given schema. The header row must
/// name the schema's columns in order (case-insensitive). Empty fields load
/// as NULL; cells in numeric columns must parse as numbers.
Result<Table> TableFromCsv(const Schema& schema, const std::string& csv);

/// Writes `table` to `path` as CSV.
Status WriteCsvFile(const Table& table, const std::string& path);

/// Reads a CSV file into a table with the given schema.
Result<Table> ReadCsvFile(const Schema& schema, const std::string& path);

}  // namespace autocat

#endif  // AUTOCAT_STORAGE_CSV_H_
