#ifndef AUTOCAT_STORAGE_SCHEMA_H_
#define AUTOCAT_STORAGE_SCHEMA_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace autocat {

/// How the categorizer treats a column's domain (Section 3.1 of the paper):
/// categorical attributes partition into value-set categories
/// (`A IN {v1,..}`), numeric attributes into range buckets (`a1 <= A < a2`).
enum class ColumnKind {
  kCategorical,
  kNumeric,
};

std::string_view ColumnKindToString(ColumnKind kind);

/// Definition of a single column: name (case-insensitive for lookup),
/// storage type, and categorization kind.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kString;
  ColumnKind kind = ColumnKind::kCategorical;

  ColumnDef() = default;
  ColumnDef(std::string name_in, ValueType type_in, ColumnKind kind_in)
      : name(std::move(name_in)), type(type_in), kind(kind_in) {}
};

/// An ordered list of column definitions with case-insensitive name lookup.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema, verifying column names are unique (case-insensitive)
  /// and that kNumeric columns have a numeric storage type.
  static Result<Schema> Create(std::vector<ColumnDef> columns);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the column named `name` (case-insensitive).
  Result<size_t> ColumnIndex(std::string_view name) const;

  /// True if a column named `name` exists.
  bool HasColumn(std::string_view name) const;

  /// "name:type:kind, ..." rendering for diagnostics.
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<ColumnDef> columns_;
  std::unordered_map<std::string, size_t> index_by_lower_name_;
};

}  // namespace autocat

#endif  // AUTOCAT_STORAGE_SCHEMA_H_
