#include "storage/column_stats.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace autocat {

Result<ColumnStats> ColumnStats::Compute(const Table& table, size_t col) {
  if (col >= table.num_columns()) {
    return Status::OutOfRange("column index out of range");
  }
  ColumnStats stats;
  stats.column_name = table.schema().column(col).name;
  stats.row_count = table.num_rows();
  bool seen = false;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Value& v = table.ValueAt(r, col);
    if (v.is_null()) {
      ++stats.null_count;
      continue;
    }
    ++stats.value_counts[v];
    if (!seen) {
      stats.min = v;
      stats.max = v;
      seen = true;
    } else {
      if (v < stats.min) stats.min = v;
      if (v > stats.max) stats.max = v;
    }
  }
  return stats;
}

Result<ColumnStats> ColumnStats::Compute(const TableView& view, size_t col) {
  if (col >= view.num_columns()) {
    return Status::OutOfRange("column index out of range");
  }
  ColumnStats stats;
  stats.column_name = view.schema().column(col).name;
  stats.row_count = view.num_rows();

  // Identical to the Table overload run over the materialized view; the
  // typed fast paths below only shortcut the counting.
  const auto generic = [&view, col](ColumnStats* out) {
    bool seen = false;
    for (size_t r = 0; r < view.num_rows(); ++r) {
      const Value& v = view.ValueAt(r, col);
      if (v.is_null()) {
        ++out->null_count;
        continue;
      }
      ++out->value_counts[v];
      if (!seen) {
        out->min = v;
        out->max = v;
        seen = true;
      } else {
        if (v < out->min) out->min = v;
        if (v > out->max) out->max = v;
      }
    }
  };

  const ColumnarTable::Column* cc =
      view.columnar() == nullptr
          ? nullptr
          : &view.columnar()->column(view.base_column(col));
  if (cc == nullptr || !cc->regular || cc->type == ValueType::kNull) {
    generic(&stats);
    return stats;
  }

  if (cc->type == ValueType::kString) {
    // Count per dictionary code; codes ascend in value order, so the map
    // can be filled with an end hint (amortized O(1) per insert).
    std::vector<size_t> counts(cc->dict.size() + 1, 0);
    for (const uint32_t row : view.selection()) {
      if (cc->IsNull(row)) {
        ++stats.null_count;
      } else {
        ++counts[cc->codes[row]];
      }
    }
    for (size_t code = 0; code < cc->dict.size(); ++code) {
      if (counts[code] > 0) {
        stats.value_counts.emplace_hint(stats.value_counts.end(),
                                        Value(cc->dict[code]), counts[code]);
      }
    }
  } else if (cc->type == ValueType::kInt64) {
    std::map<int64_t, size_t> counts;
    for (const uint32_t row : view.selection()) {
      if (cc->IsNull(row)) {
        ++stats.null_count;
      } else {
        ++counts[cc->i64[row]];
      }
    }
    for (const auto& [v, n] : counts) {
      stats.value_counts.emplace_hint(stats.value_counts.end(), Value(v), n);
    }
  } else {
    // A NaN cell poisons double ordering (Value::Compare treats NaN as
    // equal to every numeric); bail to the generic Value-keyed walk so
    // the result stays bit-identical to the Table overload.
    std::map<double, size_t> counts;
    bool has_nan = false;
    for (const uint32_t row : view.selection()) {
      if (cc->IsNull(row)) {
        ++stats.null_count;
        continue;
      }
      const double x = cc->f64[row];
      if (std::isnan(x)) {
        has_nan = true;
        break;
      }
      ++counts[x];
    }
    if (has_nan) {
      stats.null_count = 0;
      generic(&stats);
      return stats;
    }
    for (const auto& [v, n] : counts) {
      stats.value_counts.emplace_hint(stats.value_counts.end(), Value(v), n);
    }
  }
  if (!stats.value_counts.empty()) {
    stats.min = stats.value_counts.begin()->first;
    stats.max = std::prev(stats.value_counts.end())->first;
  }
  return stats;
}

Result<std::vector<HistogramBucket>> EquiWidthHistogram(const Table& table,
                                                        size_t col,
                                                        size_t num_buckets) {
  if (num_buckets == 0) {
    return Status::InvalidArgument("histogram needs at least one bucket");
  }
  if (col >= table.num_columns()) {
    return Status::OutOfRange("column index out of range");
  }
  if (table.schema().column(col).kind != ColumnKind::kNumeric) {
    return Status::InvalidArgument("histogram requires a numeric column");
  }
  AUTOCAT_ASSIGN_OR_RETURN(const auto min_max, table.MinMax(col));
  const double lo = min_max.first.AsDouble();
  const double hi = min_max.second.AsDouble();
  const double width =
      (hi > lo) ? (hi - lo) / static_cast<double>(num_buckets) : 1.0;

  std::vector<HistogramBucket> buckets(num_buckets);
  for (size_t b = 0; b < num_buckets; ++b) {
    buckets[b].lo = lo + width * static_cast<double>(b);
    buckets[b].hi = lo + width * static_cast<double>(b + 1);
  }
  buckets.back().hi = std::max(buckets.back().hi, hi);

  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Value& v = table.ValueAt(r, col);
    if (v.is_null()) {
      continue;
    }
    const double x = v.AsDouble();
    size_t b = (width > 0)
                   ? static_cast<size_t>(std::floor((x - lo) / width))
                   : 0;
    b = std::min(b, num_buckets - 1);
    ++buckets[b].count;
  }
  return buckets;
}

}  // namespace autocat
