#include "storage/column_stats.h"

#include <algorithm>
#include <cmath>

namespace autocat {

Result<ColumnStats> ColumnStats::Compute(const Table& table, size_t col) {
  if (col >= table.num_columns()) {
    return Status::OutOfRange("column index out of range");
  }
  ColumnStats stats;
  stats.column_name = table.schema().column(col).name;
  stats.row_count = table.num_rows();
  bool seen = false;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Value& v = table.ValueAt(r, col);
    if (v.is_null()) {
      ++stats.null_count;
      continue;
    }
    ++stats.value_counts[v];
    if (!seen) {
      stats.min = v;
      stats.max = v;
      seen = true;
    } else {
      if (v < stats.min) stats.min = v;
      if (v > stats.max) stats.max = v;
    }
  }
  return stats;
}

Result<std::vector<HistogramBucket>> EquiWidthHistogram(const Table& table,
                                                        size_t col,
                                                        size_t num_buckets) {
  if (num_buckets == 0) {
    return Status::InvalidArgument("histogram needs at least one bucket");
  }
  if (col >= table.num_columns()) {
    return Status::OutOfRange("column index out of range");
  }
  if (table.schema().column(col).kind != ColumnKind::kNumeric) {
    return Status::InvalidArgument("histogram requires a numeric column");
  }
  AUTOCAT_ASSIGN_OR_RETURN(const auto min_max, table.MinMax(col));
  const double lo = min_max.first.AsDouble();
  const double hi = min_max.second.AsDouble();
  const double width =
      (hi > lo) ? (hi - lo) / static_cast<double>(num_buckets) : 1.0;

  std::vector<HistogramBucket> buckets(num_buckets);
  for (size_t b = 0; b < num_buckets; ++b) {
    buckets[b].lo = lo + width * static_cast<double>(b);
    buckets[b].hi = lo + width * static_cast<double>(b + 1);
  }
  buckets.back().hi = std::max(buckets.back().hi, hi);

  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Value& v = table.ValueAt(r, col);
    if (v.is_null()) {
      continue;
    }
    const double x = v.AsDouble();
    size_t b = (width > 0)
                   ? static_cast<size_t>(std::floor((x - lo) / width))
                   : 0;
    b = std::min(b, num_buckets - 1);
    ++buckets[b].count;
  }
  return buckets;
}

}  // namespace autocat
