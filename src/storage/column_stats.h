#ifndef AUTOCAT_STORAGE_COLUMN_STATS_H_
#define AUTOCAT_STORAGE_COLUMN_STATS_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "storage/columnar.h"
#include "storage/table.h"

namespace autocat {

/// Per-column summary statistics used by the partitioners and generators:
/// value frequencies, null count, and (for numeric columns) min/max.
struct ColumnStats {
  std::string column_name;
  size_t row_count = 0;
  size_t null_count = 0;
  /// Distinct non-NULL values with occurrence counts, in value order.
  std::map<Value, size_t> value_counts;
  /// Min/max over non-NULL values; meaningful only when
  /// `row_count > null_count`.
  Value min;
  Value max;

  size_t num_distinct() const { return value_counts.size(); }
  size_t non_null_count() const { return row_count - null_count; }

  /// Computes stats for column `col` of `table`.
  static Result<ColumnStats> Compute(const Table& table, size_t col);

  /// Computes stats for view column `col` without materializing. Uses the
  /// column's typed arrays / dictionary codes when a regular columnar
  /// shadow is attached (counting per code and emitting `value_counts` in
  /// dictionary order, which is value order); result is identical to
  /// Compute over the materialized view.
  static Result<ColumnStats> Compute(const TableView& view, size_t col);
};

/// One bucket of an equi-width histogram over a numeric column:
/// [lo, hi) except the last bucket, which is [lo, hi].
struct HistogramBucket {
  double lo = 0;
  double hi = 0;
  size_t count = 0;
};

/// Builds an equi-width histogram with `num_buckets` buckets over the
/// non-NULL values of numeric column `col`. Errors for non-numeric columns,
/// zero buckets, or all-NULL columns.
Result<std::vector<HistogramBucket>> EquiWidthHistogram(const Table& table,
                                                        size_t col,
                                                        size_t num_buckets);

}  // namespace autocat

#endif  // AUTOCAT_STORAGE_COLUMN_STATS_H_
