#ifndef AUTOCAT_STORAGE_INDEX_H_
#define AUTOCAT_STORAGE_INDEX_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "storage/table.h"

namespace autocat {

/// A sorted secondary index over one column of a table: (value, row id)
/// pairs in value order, answering point and range lookups in
/// O(log n + matches). This is the substrate the paper assumes when it
/// says the count tables are "indexed on the value to make retrieval
/// efficient" (Section 5.1.2) — and it accelerates result-set computation
/// for selection queries.
///
/// The index holds row ids into the table it was built from; it does not
/// observe later appends (rebuild after bulk loads). NULL cells are not
/// indexed (no predicate matches them).
class SortedColumnIndex {
 public:
  /// Builds an index over column `column_name` of `table`.
  static Result<SortedColumnIndex> Build(const Table& table,
                                         std::string_view column_name);

  const std::string& column_name() const { return column_name_; }
  size_t num_entries() const { return entries_.size(); }

  /// Row ids whose cell equals `v`, in ascending row order.
  std::vector<size_t> Lookup(const Value& v) const;

  /// Row ids whose cell lies in [lo, hi] (either bound may be NULL for
  /// unbounded), honoring the inclusivity flags. Ascending row order.
  /// (Condition-level scans live in exec/index_scan.h, which can see the
  /// normalized SQL condition types.)
  std::vector<size_t> RangeLookup(const Value& lo, bool lo_inclusive,
                                  const Value& hi, bool hi_inclusive) const;

 private:
  std::string column_name_;
  std::vector<std::pair<Value, size_t>> entries_;  // sorted by (value, row)
};

}  // namespace autocat

#endif  // AUTOCAT_STORAGE_INDEX_H_
