#ifndef AUTOCAT_STORAGE_TABLE_H_
#define AUTOCAT_STORAGE_TABLE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "storage/schema.h"

namespace autocat {

/// A row of cells. Rows are owned by a Table and always match its schema.
using Row = std::vector<Value>;

/// An in-memory row-store relation.
///
/// `Table` is the substrate every other module operates on: the base
/// `ListProperty` relation, query result sets, and the workload count
/// tables (AttributeUsageCounts / OccurrenceCounts / SplitPoints) are all
/// `Table`s. Appends validate arity and cell types against the schema and
/// coerce int64 into double columns (and vice versa when lossless), so a
/// stored column is always homogeneous.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  Table(const Table&) = default;
  Table& operator=(const Table&) = default;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return schema_.num_columns(); }
  bool empty() const { return rows_.empty(); }

  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Cell accessor; bounds unchecked in release builds.
  const Value& ValueAt(size_t row, size_t col) const {
    return rows_[row][col];
  }

  /// Appends `row` after validating arity and coercing numeric cells to the
  /// declared column type. NULL is accepted in any column.
  Status AppendRow(Row row);

  /// Reserves capacity for `n` rows.
  void Reserve(size_t n) { rows_.reserve(n); }

  /// Returns a table with the same schema containing the rows at `indices`
  /// (in the given order). Indices must be in range.
  Result<Table> SelectRows(const std::vector<size_t>& indices) const;

  /// Returns indices of the rows for which `pred` is true.
  std::vector<size_t> FilterIndices(
      const std::function<bool(const Row&)>& pred) const;

  /// Returns a table with only the named columns, in the given order.
  Result<Table> Project(const std::vector<std::string>& column_names) const;

  /// Sorted distinct non-NULL values of column `col`.
  Result<std::vector<Value>> DistinctValues(size_t col) const;

  /// Min and max of the non-NULL values in column `col`. Errors if the
  /// column has no non-NULL values.
  Result<std::pair<Value, Value>> MinMax(size_t col) const;

  /// Renders up to `max_rows` rows as an aligned ASCII table (for examples
  /// and debugging).
  std::string ToString(size_t max_rows = 20) const;

 private:
  // TableView::Materialize gathers rows_ directly (one pass, no
  // per-cell Status plumbing); see storage/columnar.h.
  friend class TableView;

  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace autocat

#endif  // AUTOCAT_STORAGE_TABLE_H_
