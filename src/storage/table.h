#ifndef AUTOCAT_STORAGE_TABLE_H_
#define AUTOCAT_STORAGE_TABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/result.h"
#include "common/value.h"
#include "storage/schema.h"

namespace autocat {

class ColumnarTable;

/// A row of cells. Rows are owned by a Table and always match its schema.
using Row = std::vector<Value>;

/// Validates `row` against `schema` — arity, then per-cell type — and
/// coerces numeric cells to the declared column type in place (int64 into
/// double columns; double into int64 columns when lossless). Cells that
/// already match are left untouched, so no Value (or string payload) is
/// copied. Shared by Table appends and the segment-store bulk loader so
/// both accept exactly the same rows.
Status CoerceRowToSchema(Row* row, const Schema& schema);

/// An in-memory row-store relation.
///
/// `Table` is the substrate every other module operates on: the base
/// `ListProperty` relation, query result sets, and the workload count
/// tables (AttributeUsageCounts / OccurrenceCounts / SplitPoints) are all
/// `Table`s. Appends validate arity and cell types against the schema and
/// coerce int64 into double columns (and vice versa when lossless), so a
/// stored column is always homogeneous.
///
/// A table comes in one of two storage modes:
///  - **row-backed** (the default): cells live in `rows_`, appends are
///    allowed, and `row()` / `rows()` / `ValueAt()` hand out references.
///  - **column-backed** (`FromColumnar`): the cells live in a shared
///    `ColumnarTable` — typically zero-copy views into a mapped segment
///    store — and no row vectors exist at all. The table is immutable,
///    `row()` / `rows()` / `ValueAt()` must not be called (`has_rows()` is
///    false; debug builds check), and row-shaped consumers go through
///    `CopyRow` / `CellValue`, which synthesize owned cells on demand.
/// All query operators (`SelectRows`, `FilterIndices`, `Project`,
/// `DistinctValues`, `MinMax`, `ToString`) work in both modes and always
/// produce row-backed results.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  Table(const Table&) = default;
  Table& operator=(const Table&) = default;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  /// Wraps an already-built columnar relation (every column regular — the
  /// segment store guarantees this) as an immutable column-backed table.
  /// `columnar.num_columns()` must equal `schema.num_columns()` with
  /// matching types.
  static Table FromColumnar(Schema schema,
                            std::shared_ptr<const ColumnarTable> columnar);

  /// Builds a row-backed table from rows that already conform to `schema`
  /// — every cell a copy of a cell validated against the same declared
  /// column types (the pipeline gather sink's case). Skips the per-cell
  /// validation/coercion of `AppendRows`; passing rows that were not
  /// gathered from a schema-matching table breaks the homogeneity
  /// invariant.
  static Table FromValidatedRows(Schema schema, std::vector<Row> rows);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const {
    return columnar_ == nullptr ? rows_.size() : columnar_rows_;
  }
  size_t num_columns() const { return schema_.num_columns(); }
  bool empty() const { return num_rows() == 0; }

  /// True when cells are stored as rows (references below are valid).
  bool has_rows() const { return columnar_ == nullptr; }
  /// The backing columnar relation, or nullptr for row-backed tables.
  const std::shared_ptr<const ColumnarTable>& columnar_backing() const {
    return columnar_;
  }

  const Row& row(size_t i) const {
    AUTOCAT_DCHECK(has_rows());
    return rows_[i];
  }
  const std::vector<Row>& rows() const {
    AUTOCAT_DCHECK(has_rows());
    return rows_;
  }

  /// Cell accessor; bounds unchecked in release builds. Row-backed only.
  const Value& ValueAt(size_t row, size_t col) const {
    AUTOCAT_DCHECK(has_rows());
    return rows_[row][col];
  }

  /// Mode-independent cell accessor: returns an owned copy, synthesized
  /// from the columnar arrays when column-backed.
  Value CellValue(size_t row, size_t col) const;

  /// Mode-independent row accessor: an owned copy of row `i`.
  Row CopyRow(size_t i) const;

  /// Appends `row` after validating arity and coercing numeric cells to the
  /// declared column type. NULL is accepted in any column. Cells that
  /// already match the declared type are moved, not copied. Errors with
  /// kFailedPrecondition on column-backed tables.
  Status AppendRow(Row row);

  /// Bulk append: validates and coerces every row, then splices them in
  /// with a single capacity reservation. On any invalid row, nothing is
  /// appended (the whole batch is rejected, first error returned).
  Status AppendRows(std::vector<Row> rows);

  /// Reserves capacity for `n` additional rows beyond the current size.
  void Reserve(size_t n) {
    if (columnar_ == nullptr) {
      rows_.reserve(rows_.size() + n);
    }
  }

  /// Returns a table with the same schema containing the rows at `indices`
  /// (in the given order). Indices must be in range.
  Result<Table> SelectRows(const std::vector<size_t>& indices) const;

  /// Returns indices of the rows for which `pred` is true. On
  /// column-backed tables each candidate row is synthesized for the
  /// predicate (the columnar kernels are the fast path; this is the
  /// semantic fallback).
  std::vector<size_t> FilterIndices(
      const std::function<bool(const Row&)>& pred) const;

  /// Returns a table with only the named columns, in the given order.
  Result<Table> Project(const std::vector<std::string>& column_names) const;

  /// Sorted distinct non-NULL values of column `col`. Column-backed
  /// string columns answer straight from the sorted dictionary.
  Result<std::vector<Value>> DistinctValues(size_t col) const;

  /// Min and max of the non-NULL values in column `col`. Errors if the
  /// column has no non-NULL values.
  Result<std::pair<Value, Value>> MinMax(size_t col) const;

  /// Renders up to `max_rows` rows as an aligned ASCII table (for examples
  /// and debugging).
  std::string ToString(size_t max_rows = 20) const;

 private:
  // TableView::Materialize gathers rows_ directly (one pass, no
  // per-cell Status plumbing); see storage/columnar.h.
  friend class TableView;

  Schema schema_;
  std::vector<Row> rows_;
  // Column-backed mode: non-null backing + its row count; rows_ empty.
  std::shared_ptr<const ColumnarTable> columnar_;
  size_t columnar_rows_ = 0;
};

}  // namespace autocat

#endif  // AUTOCAT_STORAGE_TABLE_H_
