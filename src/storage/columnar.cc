#include "storage/columnar.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <numeric>
#include <string_view>
#include <utility>

namespace autocat {

namespace {

uint64_t DoubleBits(double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

// Exact per-zone metadata for a filled regular column: one pass per zone
// over the typed array and the owned null bitmap (zone bounds are
// multiples of 64, so each zone owns whole bitmap words). Extrema follow
// the SegmentMeta physical-domain convention; double extrema exclude NaN
// and record its presence in has_nan instead.
void ComputeZones(ColumnarTable::Column* col, size_t n) {
  if (n == 0 || !col->regular || col->type == ValueType::kNull) {
    return;
  }
  const size_t num_zones = (n + kZoneRows - 1) / kZoneRows;
  col->zones.resize(num_zones);
  for (size_t z = 0; z < num_zones; ++z) {
    ZoneEntry& zone = col->zones[z];
    const size_t begin = z * kZoneRows;
    const size_t end = std::min(n, begin + kZoneRows);
    zone.row_count = static_cast<uint32_t>(end - begin);
    size_t nulls = 0;
    for (size_t w = begin >> 6; w << 6 < end; ++w) {
      uint64_t word = col->owned_null_words[w];
      if (((w + 1) << 6) > end) {
        word &= (uint64_t{1} << (end & 63)) - 1;  // partial tail word
      }
      nulls += static_cast<size_t>(__builtin_popcountll(word));
    }
    zone.valid_count = static_cast<uint32_t>(end - begin - nulls);
    if (zone.valid_count == 0) {
      continue;
    }
    switch (col->type) {
      case ValueType::kInt64: {
        int64_t lo = 0;
        int64_t hi = 0;
        bool seen = false;
        for (size_t r = begin; r < end; ++r) {
          if (col->IsNull(r)) {
            continue;
          }
          const int64_t v = col->owned_i64[r];
          lo = seen ? std::min(lo, v) : v;
          hi = seen ? std::max(hi, v) : v;
          seen = true;
        }
        zone.min_bits = static_cast<uint64_t>(lo);
        zone.max_bits = static_cast<uint64_t>(hi);
        break;
      }
      case ValueType::kDouble: {
        double lo = 0;
        double hi = 0;
        bool seen = false;
        for (size_t r = begin; r < end; ++r) {
          if (col->IsNull(r)) {
            continue;
          }
          const double v = col->owned_f64[r];
          if (std::isnan(v)) {
            zone.has_nan = true;
            continue;
          }
          lo = seen ? std::min(lo, v) : v;
          hi = seen ? std::max(hi, v) : v;
          seen = true;
        }
        if (seen) {
          zone.min_bits = DoubleBits(lo);
          zone.max_bits = DoubleBits(hi);
        }
        break;
      }
      case ValueType::kString: {
        uint32_t lo = 0;
        uint32_t hi = 0;
        bool seen = false;
        for (size_t r = begin; r < end; ++r) {
          if (col->IsNull(r)) {
            continue;
          }
          const uint32_t code = col->owned_codes[r];
          lo = seen ? std::min(lo, code) : code;
          hi = seen ? std::max(hi, code) : code;
          seen = true;
        }
        zone.min_bits = lo;
        zone.max_bits = hi;
        break;
      }
      case ValueType::kNull:
        break;
    }
  }
}

}  // namespace

ColumnarTable ColumnarTable::Build(const Table& table) {
  const size_t n = table.num_rows();
  const size_t words = (n + 63) / 64;
  ColumnarTable out;
  out.num_rows_ = n;
  out.columns_.resize(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    Column& col = out.columns_[c];
    col.type = table.schema().column(c).type;
    col.owned_null_words.assign(words, 0);
    switch (col.type) {
      case ValueType::kInt64:
        col.owned_i64.assign(n, 0);
        break;
      case ValueType::kDouble:
        col.owned_f64.assign(n, 0);
        break;
      case ValueType::kString:
        col.owned_codes.assign(n, 0);
        break;
      case ValueType::kNull:
        break;
    }
    col.PointAtOwned();
    if (col.type == ValueType::kString) {
      // Pass 1: sorted distinct strings. string_view order equals
      // std::string order equals Value string order.
      std::map<std::string_view, uint32_t> dict_map;
      for (size_t r = 0; r < n; ++r) {
        const Value& v = table.ValueAt(r, c);
        if (v.is_null()) {
          col.owned_null_words[r >> 6] |= uint64_t{1} << (r & 63);
          ++col.null_count;
        } else if (v.is_string()) {
          dict_map.emplace(v.string_value(), 0);
        } else {
          col.regular = false;
        }
      }
      if (!col.regular) {
        continue;
      }
      col.dict.reserve(dict_map.size());
      for (auto& [sv, code] : dict_map) {
        code = static_cast<uint32_t>(col.dict.size());
        col.dict.emplace_back(sv);
      }
      // Pass 2: codes.
      for (size_t r = 0; r < n; ++r) {
        const Value& v = table.ValueAt(r, c);
        if (!v.is_null()) {
          col.owned_codes[r] = dict_map.find(v.string_value())->second;
        }
      }
      ComputeZones(&col, n);
      continue;
    }
    for (size_t r = 0; r < n; ++r) {
      const Value& v = table.ValueAt(r, c);
      if (v.is_null()) {
        col.owned_null_words[r >> 6] |= uint64_t{1} << (r & 63);
        ++col.null_count;
        continue;
      }
      if (v.type() != col.type) {
        col.regular = false;
        continue;
      }
      if (col.type == ValueType::kInt64) {
        col.owned_i64[r] = v.int64_value();
      } else if (col.type == ValueType::kDouble) {
        col.owned_f64[r] = v.double_value();
      }
    }
    ComputeZones(&col, n);
    if (col.regular &&
        (col.type == ValueType::kInt64 || col.type == ValueType::kDouble)) {
      // One (double, row) sort per table lifetime. Keys are the same
      // doubles the partitioners read (int64 cells through the same
      // static_cast), so rank-filtering this order reproduces a per-query
      // survivor sort bit for bit, ties included.
      std::vector<std::pair<double, uint32_t>> keyed;
      keyed.reserve(n - col.null_count);
      for (size_t r = 0; r < n; ++r) {
        if (col.IsNull(r)) {
          continue;
        }
        const double key = col.type == ValueType::kInt64
                               ? static_cast<double>(col.owned_i64[r])
                               : col.owned_f64[r];
        keyed.emplace_back(key, static_cast<uint32_t>(r));
      }
      std::sort(keyed.begin(), keyed.end());
      col.sorted_order.reserve(keyed.size());
      for (const auto& [key, row] : keyed) {
        col.sorted_order.push_back(row);
      }
    }
  }
  return out;
}

ColumnarTable ColumnarTable::FromColumns(size_t num_rows,
                                         std::vector<Column> columns,
                                         std::shared_ptr<const void> owner) {
  ColumnarTable out;
  out.num_rows_ = num_rows;
  out.columns_ = std::move(columns);
  out.owner_ = std::move(owner);
  return out;
}

TableView TableView::All(const Table& base,
                         std::shared_ptr<const ColumnarTable> columnar) {
  TableView view;
  view.base_ = &base;
  view.columnar_ = std::move(columnar);
  view.rows_.resize(base.num_rows());
  std::iota(view.rows_.begin(), view.rows_.end(), uint32_t{0});
  view.projection_.resize(base.num_columns());
  std::iota(view.projection_.begin(), view.projection_.end(), size_t{0});
  view.schema_ = base.schema();
  return view;
}

Result<TableView> TableView::Create(
    const Table& base, std::shared_ptr<const ColumnarTable> columnar,
    std::vector<uint32_t> rows, const std::vector<std::string>& columns) {
  for (const uint32_t r : rows) {
    if (r >= base.num_rows()) {
      return Status::OutOfRange("row index " + std::to_string(r) +
                                " out of range");
    }
  }
  TableView view;
  view.base_ = &base;
  view.columnar_ = std::move(columnar);
  view.rows_ = std::move(rows);
  if (columns.empty()) {
    view.projection_.resize(base.num_columns());
    std::iota(view.projection_.begin(), view.projection_.end(), size_t{0});
    view.schema_ = base.schema();
    return view;
  }
  std::vector<ColumnDef> cols;
  cols.reserve(columns.size());
  view.projection_.reserve(columns.size());
  for (const std::string& name : columns) {
    AUTOCAT_ASSIGN_OR_RETURN(const size_t idx,
                             base.schema().ColumnIndex(name));
    cols.push_back(base.schema().column(idx));
    view.projection_.push_back(idx);
  }
  AUTOCAT_ASSIGN_OR_RETURN(view.schema_, Schema::Create(std::move(cols)));
  return view;
}

Table TableView::Materialize() const {
  Table out(schema_);
  if (base_ == nullptr) {
    return out;
  }
  out.rows_.reserve(rows_.size());
  if (!base_->has_rows()) {
    // Column-backed base: gather each cell from the columnar arrays.
    // Bit-identical to the row gather because the store round-trips cells
    // losslessly (raw doubles, exact int64 decode, dictionary strings).
    for (const uint32_t r : rows_) {
      Row projected;
      projected.reserve(projection_.size());
      for (const size_t c : projection_) {
        projected.push_back(base_->CellValue(r, c));
      }
      out.rows_.push_back(std::move(projected));
    }
    return out;
  }
  const bool identity =
      projection_.size() == base_->num_columns() &&
      [this] {
        for (size_t c = 0; c < projection_.size(); ++c) {
          if (projection_[c] != c) {
            return false;
          }
        }
        return true;
      }();
  if (identity) {
    for (const uint32_t r : rows_) {
      out.rows_.push_back(base_->rows_[r]);
    }
    return out;
  }
  for (const uint32_t r : rows_) {
    const Row& src = base_->rows_[r];
    Row projected;
    projected.reserve(projection_.size());
    for (const size_t c : projection_) {
      projected.push_back(src[c]);
    }
    out.rows_.push_back(std::move(projected));
  }
  return out;
}

}  // namespace autocat
