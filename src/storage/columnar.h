#ifndef AUTOCAT_STORAGE_COLUMNAR_H_
#define AUTOCAT_STORAGE_COLUMNAR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace autocat {

/// Rows covered by one zone-map entry. Equal to the execution layer's
/// morsel width (exec/pipeline/morsel.h static_asserts the two match, so
/// zone entry z describes exactly the rows of morsel z) and a multiple of
/// 64, so each entry owns whole null-bitmap words.
inline constexpr size_t kZoneRows = 2048;

/// Zone metadata for one kZoneRows-row slice of a column: row/valid
/// counts plus the extrema of the slice's non-NULL values in the
/// column's physical domain — int64 cast to uint64, double bit pattern,
/// or dictionary code (the segment store's SegmentMeta convention).
/// Extrema may describe a superset of the slice (the store replicates
/// per-segment extrema across the segment's zones); consumers may only
/// draw conclusions that stay valid under widening. For double columns
/// NaN cells are excluded from the extrema — `has_nan` records whether
/// any were present (a slice whose valid cells are all NaN keeps extrema
/// of 0) — so range proofs must special-case NaN. Meaningless extrema
/// (valid_count == 0) are 0.
struct ZoneEntry {
  uint32_t row_count = 0;
  uint32_t valid_count = 0;
  uint64_t min_bits = 0;
  uint64_t max_bits = 0;
  bool has_nan = false;
};

/// A borrowed, read-only view of a contiguous typed array. The columnar
/// kernels and partitioners read column data through this type so the
/// same code path serves both in-memory shadows (the span points at a
/// vector owned by the column) and mapped segment stores (the span points
/// straight into the mmapped file, zero-copy). Mirrors the subset of the
/// std::vector read API the consumers use.
template <typename T>
class ColumnSpan {
 public:
  ColumnSpan() = default;
  ColumnSpan(const T* data, size_t size) : data_(data), size_(size) {}
  explicit ColumnSpan(const std::vector<T>& v)
      : data_(v.data()), size_(v.size()) {}

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

/// A read-only columnar representation of a relation: per column, one
/// contiguous typed array plus a null bitmap. Strings are
/// dictionary-encoded against a *sorted* dictionary, so dictionary-code
/// order equals `Value` comparison order — grouping or comparing by code
/// is exactly grouping or comparing by value.
///
/// Two constructions exist:
///  - `Build` derives an in-memory shadow of a row-store `Table`
///    (`Database::ColumnarFor` caches one per table and drops it when
///    `PutTable` replaces the contents);
///  - `FromColumns` wraps columns whose spans point at externally owned
///    memory — the segment store (src/store/) uses it to expose mapped,
///    decompressed-or-raw column segments zero-copy, with `owner` keeping
///    the mapping alive for the table's lifetime.
///
/// Either way the table is immutable after construction. Columns whose
/// cells do not all match the declared type (impossible through
/// `Table::AppendRow`, which coerces) are marked `regular = false` and
/// consumers fall back to the row representation.
class ColumnarTable {
 public:
  struct Column {
    /// Declared storage type. Cells are this type or NULL when `regular`.
    ValueType type = ValueType::kNull;
    bool regular = true;
    size_t null_count = 0;
    /// Bit r set <=> row r is NULL. size = ceil(num_rows / 64).
    ColumnSpan<uint64_t> null_words;
    /// type == kInt64: one entry per row (0 for NULL cells).
    ColumnSpan<int64_t> i64;
    /// type == kDouble: one entry per row (0 for NULL cells).
    ColumnSpan<double> f64;
    /// type == kString: dictionary code per row (0 for NULL cells).
    ColumnSpan<uint32_t> codes;
    /// type == kString: sorted distinct non-NULL strings.
    std::vector<std::string> dict;
    /// Regular kInt64/kDouble columns built by `Build`: the non-NULL row
    /// indices ordered by (value as double ascending, row ascending) —
    /// the same total order sorting per-query (value, position) pairs
    /// produces. Computed once per table so the stats-accumulate sink can
    /// rank-filter a selection against it instead of re-sorting survivors
    /// on every cold request. Empty when unavailable (irregular columns,
    /// segment-store wrapped columns), and consumers must fall back.
    std::vector<uint32_t> sorted_order;
    /// Per-zone (kZoneRows-row) metadata: ceil(num_rows / kZoneRows)
    /// entries for regular typed columns — exact for `Build` shadows,
    /// segment-replicated extrema with exact per-zone counts for
    /// store-mapped columns. Empty when unavailable (irregular columns);
    /// the zone prover then treats every zone as unprovable.
    std::vector<ZoneEntry> zones;

    /// Owned backing arrays. `Build` fills these and points the spans at
    /// them; the segment store leaves raw-encoded arrays here empty (the
    /// spans point into the mapping) and fills only what it had to
    /// decode (delta/varint-compressed numerics). Move-only: moving a
    /// vector preserves its heap buffer, so the spans stay valid; a copy
    /// would leave them pointing at the source's storage.
    std::vector<uint64_t> owned_null_words;
    std::vector<int64_t> owned_i64;
    std::vector<double> owned_f64;
    std::vector<uint32_t> owned_codes;

    Column() = default;
    Column(const Column&) = delete;
    Column& operator=(const Column&) = delete;
    Column(Column&&) = default;
    Column& operator=(Column&&) = default;

    /// Points each span at its owned vector (call after filling them).
    void PointAtOwned() {
      null_words = ColumnSpan<uint64_t>(owned_null_words);
      i64 = ColumnSpan<int64_t>(owned_i64);
      f64 = ColumnSpan<double>(owned_f64);
      codes = ColumnSpan<uint32_t>(owned_codes);
    }

    bool IsNull(size_t row) const {
      return (null_words[row >> 6] >> (row & 63)) & 1;
    }
  };

  ColumnarTable() = default;
  ColumnarTable(const ColumnarTable&) = delete;
  ColumnarTable& operator=(const ColumnarTable&) = delete;
  ColumnarTable(ColumnarTable&&) = default;
  ColumnarTable& operator=(ColumnarTable&&) = default;

  /// Builds an in-memory shadow in one pass per column (two for strings:
  /// dictionary then codes). Requires `table.num_rows() <= UINT32_MAX`
  /// (callers gate; selection vectors are 32-bit).
  static ColumnarTable Build(const Table& table);

  /// Wraps externally built columns (the segment store's open path).
  /// `owner` is an opaque keep-alive for whatever memory the spans
  /// borrow — typically the store's file mapping.
  static ColumnarTable FromColumns(size_t num_rows,
                                   std::vector<Column> columns,
                                   std::shared_ptr<const void> owner);

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t c) const { return columns_[c]; }

 private:
  size_t num_rows_ = 0;
  std::vector<Column> columns_;
  // Keep-alive for borrowed span memory (null for in-memory shadows).
  std::shared_ptr<const void> owner_;
};

/// A zero-copy view over a base table: a selection vector of base-row
/// indices plus a projection map of base-column indices. This is the
/// result representation on the cold categorization path — the filter
/// kernels emit the selection, partitioners/stats/ranking read cells
/// through the view, and `Materialize()` performs the single fused
/// gather (replacing SelectRows + Project) when an owned table is needed.
///
/// Lifetime: the view borrows `base` (and optionally shares a columnar
/// shadow); the base table must outlive the view and must not be mutated
/// while the view is live. View row i of `Materialize()`'s output is view
/// row i, so tuple indices computed through the view index the
/// materialized table directly.
class TableView {
 public:
  TableView() = default;

  /// A view of every row and column of `base`. `columnar` may be null
  /// (consumers then use the generic per-Value path).
  static TableView All(const Table& base,
                       std::shared_ptr<const ColumnarTable> columnar);

  /// A view of the base rows listed in `rows` (in that order) projected to
  /// `columns` (in that order; empty = all columns). Errors mirror
  /// `Table::Project` (unknown / duplicate column) and `Table::SelectRows`
  /// (row index out of range).
  static Result<TableView> Create(
      const Table& base, std::shared_ptr<const ColumnarTable> columnar,
      std::vector<uint32_t> rows, const std::vector<std::string>& columns);

  const Table& base() const { return *base_; }
  /// The base table's columnar shadow, or nullptr.
  const ColumnarTable* columnar() const { return columnar_.get(); }
  /// Schema of the *projected* view.
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return projection_.size(); }

  /// Base-table row index of view row `row`.
  uint32_t base_row(size_t row) const { return rows_[row]; }
  /// Base-table column index of view column `col`.
  size_t base_column(size_t col) const { return projection_[col]; }
  const std::vector<uint32_t>& selection() const { return rows_; }

  /// Cell accessor in view coordinates; bounds unchecked in release.
  /// Valid only when the base table stores rows (see Table::has_rows);
  /// consumers reading a column-backed base go through the columnar
  /// fast paths, which cover every regular column.
  const Value& ValueAt(size_t row, size_t col) const {
    return base_->ValueAt(rows_[row], projection_[col]);
  }

  /// Copies the view into an owned row-store table: one gather pass, row
  /// copies taken whole when the projection is the identity. For a
  /// column-backed base the cells are synthesized from the columnar
  /// arrays instead (bit-identical by the store's lossless round-trip).
  Table Materialize() const;

 private:
  const Table* base_ = nullptr;
  std::shared_ptr<const ColumnarTable> columnar_;
  std::vector<uint32_t> rows_;
  std::vector<size_t> projection_;
  Schema schema_;
};

}  // namespace autocat

#endif  // AUTOCAT_STORAGE_COLUMNAR_H_
