#ifndef AUTOCAT_STORAGE_COLUMNAR_H_
#define AUTOCAT_STORAGE_COLUMNAR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace autocat {

/// A read-only columnar shadow of a row-store `Table`: per column, one
/// contiguous typed array plus a null bitmap. Strings are
/// dictionary-encoded against a *sorted* dictionary, so dictionary-code
/// order equals `Value` comparison order — grouping or comparing by code
/// is exactly grouping or comparing by value.
///
/// The shadow is immutable after `Build` and carries no reference to the
/// source table; `Database::ColumnarFor` caches one per table and drops it
/// when `PutTable` replaces the contents. Columns whose cells do not all
/// match the declared type (impossible through `Table::AppendRow`, which
/// coerces) are marked `regular = false` and consumers fall back to the
/// row representation.
class ColumnarTable {
 public:
  struct Column {
    /// Declared storage type. Cells are this type or NULL when `regular`.
    ValueType type = ValueType::kNull;
    bool regular = true;
    size_t null_count = 0;
    /// Bit r set <=> row r is NULL. size = ceil(num_rows / 64).
    std::vector<uint64_t> null_words;
    /// type == kInt64: one entry per row (0 for NULL cells).
    std::vector<int64_t> i64;
    /// type == kDouble: one entry per row (0 for NULL cells).
    std::vector<double> f64;
    /// type == kString: dictionary code per row (0 for NULL cells).
    std::vector<uint32_t> codes;
    /// type == kString: sorted distinct non-NULL strings.
    std::vector<std::string> dict;

    bool IsNull(size_t row) const {
      return (null_words[row >> 6] >> (row & 63)) & 1;
    }
  };

  ColumnarTable() = default;

  /// Builds the shadow in one pass per column (two for strings: dictionary
  /// then codes). Requires `table.num_rows() <= UINT32_MAX` (callers gate;
  /// selection vectors are 32-bit).
  static ColumnarTable Build(const Table& table);

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t c) const { return columns_[c]; }

 private:
  size_t num_rows_ = 0;
  std::vector<Column> columns_;
};

/// A zero-copy view over a base table: a selection vector of base-row
/// indices plus a projection map of base-column indices. This is the
/// result representation on the cold categorization path — the filter
/// kernels emit the selection, partitioners/stats/ranking read cells
/// through the view, and `Materialize()` performs the single fused
/// gather (replacing SelectRows + Project) when an owned table is needed.
///
/// Lifetime: the view borrows `base` (and optionally shares a columnar
/// shadow); the base table must outlive the view and must not be mutated
/// while the view is live. View row i of `Materialize()`'s output is view
/// row i, so tuple indices computed through the view index the
/// materialized table directly.
class TableView {
 public:
  TableView() = default;

  /// A view of every row and column of `base`. `columnar` may be null
  /// (consumers then use the generic per-Value path).
  static TableView All(const Table& base,
                       std::shared_ptr<const ColumnarTable> columnar);

  /// A view of the base rows listed in `rows` (in that order) projected to
  /// `columns` (in that order; empty = all columns). Errors mirror
  /// `Table::Project` (unknown / duplicate column) and `Table::SelectRows`
  /// (row index out of range).
  static Result<TableView> Create(
      const Table& base, std::shared_ptr<const ColumnarTable> columnar,
      std::vector<uint32_t> rows, const std::vector<std::string>& columns);

  const Table& base() const { return *base_; }
  /// The base table's columnar shadow, or nullptr.
  const ColumnarTable* columnar() const { return columnar_.get(); }
  /// Schema of the *projected* view.
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return projection_.size(); }

  /// Base-table row index of view row `row`.
  uint32_t base_row(size_t row) const { return rows_[row]; }
  /// Base-table column index of view column `col`.
  size_t base_column(size_t col) const { return projection_[col]; }
  const std::vector<uint32_t>& selection() const { return rows_; }

  /// Cell accessor in view coordinates; bounds unchecked in release.
  const Value& ValueAt(size_t row, size_t col) const {
    return base_->ValueAt(rows_[row], projection_[col]);
  }

  /// Copies the view into an owned row-store table: one gather pass, row
  /// copies taken whole when the projection is the identity.
  Table Materialize() const;

 private:
  const Table* base_ = nullptr;
  std::shared_ptr<const ColumnarTable> columnar_;
  std::vector<uint32_t> rows_;
  std::vector<size_t> projection_;
  Schema schema_;
};

}  // namespace autocat

#endif  // AUTOCAT_STORAGE_COLUMNAR_H_
