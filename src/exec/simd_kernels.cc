// The one TU allowed to spell SIMD intrinsics (lint rule `raw-simd`).
// Built with -mavx2 on x86-64; every entry point re-checks CPU support at
// runtime, so linking this TU into a binary that runs on a non-AVX2
// machine is safe — the kernels just report unavailable and the scalar
// loops in exec/kernels.cc take over. On other architectures the AVX2
// block compiles out and the stubs below always decline.
//
// Bitmask layout: 4-lane (double/int64) compares emit their verdicts via
// movemask into 4 bits, accumulated 16 iterations per output word;
// 8-lane code gathers emit 8 bits, 8 iterations per word. Tails shorter
// than a word run the exact scalar expression into the final word, so a
// partial morsel still produces fully-defined bits.

#include "exec/simd_kernels.h"

#include <atomic>

#if defined(__AVX2__) && (defined(__x86_64__) || defined(_M_X64))
#define AUTOCAT_SIMD_AVX2 1
#include <immintrin.h>
#else
#define AUTOCAT_SIMD_AVX2 0
#endif

namespace autocat {
namespace simd {

namespace {

// atomic-order: relaxed — a test-only toggle read at kernel entry;
// nothing is published through it (tests flip it between queries).
std::atomic<bool> g_force_scalar{false};

}  // namespace

bool Enabled() {
#if AUTOCAT_SIMD_AVX2
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported && !g_force_scalar.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

void ForceScalarForTest(bool force_scalar) {
  g_force_scalar.store(force_scalar, std::memory_order_relaxed);
}

#if AUTOCAT_SIMD_AVX2

namespace {

// All-ones / all-zero lane mask from a scalar condition.
__m256i BoolMaskI(bool b) { return _mm256_set1_epi64x(b ? -1 : 0); }
__m256d BoolMaskD(bool b) {
  return _mm256_castsi256_pd(_mm256_set1_epi64x(b ? -1 : 0));
}

}  // namespace

bool CompareI64(const int64_t* vals, size_t n, int64_t b, uint8_t table,
                uint64_t* bits) {
  if (!Enabled()) {
    return false;
  }
  const __m256i vb = _mm256_set1_epi64x(b);
  const __m256i want_lt = BoolMaskI((table & 0b001) != 0);
  const __m256i want_eq = BoolMaskI((table & 0b010) != 0);
  const __m256i want_gt = BoolMaskI((table & 0b100) != 0);
  size_t i = 0;
  const size_t words = n >> 6;
  for (size_t w = 0; w < words; ++w) {
    uint64_t word = 0;
    for (int k = 0; k < 16; ++k, i += 4) {
      const __m256i x = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(vals + i));
      const __m256i lt = _mm256_cmpgt_epi64(vb, x);
      const __m256i gt = _mm256_cmpgt_epi64(x, vb);
      const __m256i eq = _mm256_cmpeq_epi64(x, vb);
      const __m256i accept = _mm256_or_si256(
          _mm256_or_si256(_mm256_and_si256(lt, want_lt),
                          _mm256_and_si256(gt, want_gt)),
          _mm256_and_si256(eq, want_eq));
      const auto m = static_cast<uint64_t>(
          _mm256_movemask_pd(_mm256_castsi256_pd(accept)));
      word |= m << (k * 4);
    }
    bits[w] = word;
  }
  if (i < n) {
    uint64_t word = 0;
    for (size_t r = i; r < n; ++r) {
      const int c = static_cast<int>(vals[r] > b) -
                    static_cast<int>(vals[r] < b);
      word |= static_cast<uint64_t>((table >> (c + 1)) & 1) << (r - i);
    }
    bits[words] = word;
  }
  return true;
}

bool CompareF64(const double* vals, size_t n, double b, uint8_t table,
                uint64_t* bits) {
  if (!Enabled()) {
    return false;
  }
  const __m256d vb = _mm256_set1_pd(b);
  const __m256d want_lt = BoolMaskD((table & 0b001) != 0);
  const __m256d want_eq = BoolMaskD((table & 0b010) != 0);
  const __m256d want_gt = BoolMaskD((table & 0b100) != 0);
  size_t i = 0;
  const size_t words = n >> 6;
  for (size_t w = 0; w < words; ++w) {
    uint64_t word = 0;
    for (int k = 0; k < 16; ++k, i += 4) {
      const __m256d x = _mm256_loadu_pd(vals + i);
      const __m256d lt = _mm256_cmp_pd(x, vb, _CMP_LT_OQ);
      const __m256d gt = _mm256_cmp_pd(x, vb, _CMP_GT_OQ);
      // The "equal" class is everything neither less nor greater — which
      // sweeps NaN-unordered lanes onto c == 0 exactly like Cmp3.
      const __m256d eq = _mm256_andnot_pd(_mm256_or_pd(lt, gt), want_eq);
      const __m256d accept = _mm256_or_pd(
          _mm256_or_pd(_mm256_and_pd(lt, want_lt),
                       _mm256_and_pd(gt, want_gt)),
          eq);
      const auto m = static_cast<uint64_t>(_mm256_movemask_pd(accept));
      word |= m << (k * 4);
    }
    bits[w] = word;
  }
  if (i < n) {
    uint64_t word = 0;
    for (size_t r = i; r < n; ++r) {
      const int c = static_cast<int>(vals[r] > b) -
                    static_cast<int>(vals[r] < b);
      word |= static_cast<uint64_t>((table >> (c + 1)) & 1) << (r - i);
    }
    bits[words] = word;
  }
  return true;
}

bool AcceptCodes(const uint32_t* codes, size_t n, const uint32_t* accept,
                 size_t accept_size, uint64_t* bits) {
  if (!Enabled() ||
      accept_size > static_cast<size_t>(INT32_MAX)) {
    // The gather indexes as signed int32; oversized tables (impossible
    // for real dictionaries, but the contract should not depend on that)
    // fall back to the scalar lookup.
    return false;
  }
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  const size_t words = n >> 6;
  for (size_t w = 0; w < words; ++w) {
    uint64_t word = 0;
    for (int k = 0; k < 8; ++k, i += 8) {
      const __m256i idx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(codes + i));
      const __m256i v = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(accept), idx, 4);
      const __m256i nz = _mm256_cmpgt_epi32(v, zero);  // entries are 0/1
      const auto m = static_cast<uint64_t>(
          _mm256_movemask_ps(_mm256_castsi256_ps(nz)));
      word |= m << (k * 8);
    }
    bits[w] = word;
  }
  if (i < n) {
    uint64_t word = 0;
    for (size_t r = i; r < n; ++r) {
      word |= static_cast<uint64_t>(accept[codes[r]] != 0) << (r - i);
    }
    bits[words] = word;
  }
  return true;
}

bool RangeF64(const double* vals, size_t n, double lo, bool lo_inclusive,
              double hi, bool hi_inclusive, uint64_t* bits) {
  if (!Enabled()) {
    return false;
  }
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  const __m256d excl_lo = BoolMaskD(!lo_inclusive);
  const __m256d excl_hi = BoolMaskD(!hi_inclusive);
  size_t i = 0;
  const size_t words = n >> 6;
  for (size_t w = 0; w < words; ++w) {
    uint64_t word = 0;
    for (int k = 0; k < 16; ++k, i += 4) {
      const __m256d x = _mm256_loadu_pd(vals + i);
      // out_lo = (x < lo) | ((x == lo) & !lo_inclusive); OQ predicates
      // leave NaN lanes false on both sides, so NaN is inside every
      // range — the scalar expression's behavior.
      const __m256d out_lo = _mm256_or_pd(
          _mm256_cmp_pd(x, vlo, _CMP_LT_OQ),
          _mm256_and_pd(_mm256_cmp_pd(x, vlo, _CMP_EQ_OQ), excl_lo));
      const __m256d out_hi = _mm256_or_pd(
          _mm256_cmp_pd(x, vhi, _CMP_GT_OQ),
          _mm256_and_pd(_mm256_cmp_pd(x, vhi, _CMP_EQ_OQ), excl_hi));
      const auto out = static_cast<uint64_t>(
          _mm256_movemask_pd(_mm256_or_pd(out_lo, out_hi)));
      word |= (~out & 0xf) << (k * 4);
    }
    bits[w] = word;
  }
  if (i < n) {
    uint64_t word = 0;
    for (size_t r = i; r < n; ++r) {
      const double x = vals[r];
      const bool out_lo = (x < lo) || ((x == lo) && !lo_inclusive);
      const bool out_hi = (x > hi) || ((x == hi) && !hi_inclusive);
      word |= static_cast<uint64_t>(!(out_lo || out_hi)) << (r - i);
    }
    bits[words] = word;
  }
  return true;
}

#else  // !AUTOCAT_SIMD_AVX2

bool CompareI64(const int64_t*, size_t, int64_t, uint8_t, uint64_t*) {
  return false;
}
bool CompareF64(const double*, size_t, double, uint8_t, uint64_t*) {
  return false;
}
bool AcceptCodes(const uint32_t*, size_t, const uint32_t*, size_t,
                 uint64_t*) {
  return false;
}
bool RangeF64(const double*, size_t, double, bool, double, bool,
              uint64_t*) {
  return false;
}

#endif  // AUTOCAT_SIMD_AVX2

}  // namespace simd
}  // namespace autocat
