#ifndef AUTOCAT_EXEC_EXECUTOR_H_
#define AUTOCAT_EXEC_EXECUTOR_H_

#include <map>
#include <string>
#include <string_view>

#include "common/result.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace autocat {

/// A minimal named-table catalog: the "database" queries run against.
class Database {
 public:
  Database() = default;

  /// Registers `table` under `name` (case-insensitive). Errors when a table
  /// with that name already exists.
  Status RegisterTable(std::string_view name, Table table);

  /// Replaces or creates the table under `name`. Replacement happens in
  /// place: the `Table` object keeps its address (see GetTable), only its
  /// contents change.
  void PutTable(std::string_view name, Table table);

  /// Looks up a table by name.
  ///
  /// Pointer-stability contract: the returned pointer stays valid for the
  /// lifetime of the Database and is never invalidated by later
  /// RegisterTable or PutTable calls (tables live in a node-based map).
  /// PutTable replaces the *contents* behind the pointer, so callers that
  /// must not observe mixed contents (e.g. the serving layer reading a
  /// table while another thread calls PutTable) still need their own
  /// synchronization — the contract is about the address, not the data.
  Result<const Table*> GetTable(std::string_view name) const;

  bool HasTable(std::string_view name) const;
  size_t num_tables() const { return tables_.size(); }

 private:
  std::map<std::string, Table> tables_;  // keyed by lowercase name
};

/// Executes a parsed selection/projection query against `db`: scans the
/// FROM table, keeps rows matching the WHERE clause, then projects the
/// select list. Returns the result relation.
Result<Table> ExecuteQuery(const SelectQuery& query, const Database& db);

/// Parses and executes an SQL string.
Result<Table> ExecuteSql(std::string_view sql, const Database& db);

/// Returns the indices of the rows of `table` matched by `where`
/// (nullptr matches everything).
Result<std::vector<size_t>> FilterTable(const Table& table,
                                        const Expr* where);

}  // namespace autocat

#endif  // AUTOCAT_EXEC_EXECUTOR_H_
