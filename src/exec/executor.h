#ifndef AUTOCAT_EXEC_EXECUTOR_H_
#define AUTOCAT_EXEC_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "sql/ast.h"
#include "storage/columnar.h"
#include "storage/table.h"

namespace autocat {

/// A minimal named-table catalog: the "database" queries run against.
class Database {
 public:
  Database() = default;

  // Copy/move transfer only the row-store tables; columnar shadows are
  // dropped and rebuilt lazily on first use. (As with the rest of the
  // class, copying or moving a Database that another thread is mutating
  // requires external synchronization.)
  Database(const Database& other);
  Database& operator=(const Database& other);
  Database(Database&& other) noexcept;
  Database& operator=(Database&& other) noexcept;

  /// Registers `table` under `name` (case-insensitive). Errors when a table
  /// with that name already exists.
  Status RegisterTable(std::string_view name, Table table);

  /// Replaces or creates the table under `name`. Replacement happens in
  /// place: the `Table` object keeps its address (see GetTable), only its
  /// contents change. Invalidates the table's columnar shadow.
  void PutTable(std::string_view name, Table table);

  /// Looks up a table by name.
  ///
  /// Pointer-stability contract: the returned pointer stays valid for the
  /// lifetime of the Database and is never invalidated by later
  /// RegisterTable or PutTable calls (tables live in a node-based map).
  /// PutTable replaces the *contents* behind the pointer, so callers that
  /// must not observe mixed contents (e.g. the serving layer reading a
  /// table while another thread calls PutTable) still need their own
  /// synchronization — the contract is about the address, not the data.
  Result<const Table*> GetTable(std::string_view name) const;

  /// Returns the table's columnar shadow (see storage/columnar.h),
  /// building and caching it on first use. The shared_ptr keeps the shadow
  /// alive across a concurrent PutTable, which only drops the cache entry.
  /// Errors: kNotFound for an unknown table; kNotSupported when the table
  /// has more rows than a uint32_t selection vector can address (callers
  /// fall back to the row path).
  ///
  /// Thread-safe against concurrent ColumnarFor/PutTable on *other*
  /// threads only under the same external synchronization GetTable
  /// requires for the row data itself.
  Result<std::shared_ptr<const ColumnarTable>> ColumnarFor(
      std::string_view name) const AUTOCAT_EXCLUDES(columnar_mu_);

  bool HasTable(std::string_view name) const;
  size_t num_tables() const { return tables_.size(); }

 private:
  /// The cached shadow for `key`, or nullptr when none is cached yet.
  std::shared_ptr<const ColumnarTable> LookupColumnarLocked(
      const std::string& key) const AUTOCAT_REQUIRES(columnar_mu_);
  /// Caches `shadow` under `key` (first writer wins on a race) and
  /// returns the cached entry.
  std::shared_ptr<const ColumnarTable> InsertColumnarLocked(
      const std::string& key,
      std::shared_ptr<const ColumnarTable> shadow) const
      AUTOCAT_REQUIRES(columnar_mu_);

  std::map<std::string, Table> tables_;  // keyed by lowercase name

  // Lazily built columnar shadows, keyed like tables_. Guarded by
  // columnar_mu_ so read-only callers (ColumnarFor is const) can share a
  // cache without racing on the map itself.
  mutable Mutex columnar_mu_;
  mutable std::map<std::string, std::shared_ptr<const ColumnarTable>>
      columnar_ AUTOCAT_GUARDED_BY(columnar_mu_);
};

/// Knobs for ExecuteQuery/ExecuteSql. Defaults favor the serving layer:
/// columnar kernels on, single-threaded filter.
struct ExecOptions {
  ExecOptions() { parallel.threads = 1; }

  /// Try the columnar path first (vectorized kernels + zero-copy view);
  /// fall back to the row path whenever compilation refuses. Results are
  /// bit-identical either way.
  bool use_columnar = true;

  /// Threading for the columnar filter (chunk-order merge keeps the
  /// result deterministic at any thread count).
  ParallelOptions parallel;
};

/// Executes a parsed selection/projection query against `db`: scans the
/// FROM table, keeps rows matching the WHERE clause, then projects the
/// select list. Returns the result relation.
Result<Table> ExecuteQuery(const SelectQuery& query, const Database& db,
                           const ExecOptions& options);
Result<Table> ExecuteQuery(const SelectQuery& query, const Database& db);

/// Parses and executes an SQL string.
Result<Table> ExecuteSql(std::string_view sql, const Database& db,
                         const ExecOptions& options);
Result<Table> ExecuteSql(std::string_view sql, const Database& db);

/// Returns the indices of the rows of `table` matched by `where`
/// (nullptr matches everything).
Result<std::vector<size_t>> FilterTable(const Table& table,
                                        const Expr* where);

}  // namespace autocat

#endif  // AUTOCAT_EXEC_EXECUTOR_H_
