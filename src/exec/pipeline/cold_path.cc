#include "exec/pipeline/cold_path.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <utility>

#include "exec/pipeline/scheduler.h"
#include "exec/simd_kernels.h"
#include "storage/schema.h"

namespace autocat {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Result<ColdPipelineResult> RunColdPipeline(
    const CompiledPredicate& predicate, const Table& base,
    const ColumnarTable* columnar, const std::vector<std::string>& columns,
    const ColdPipelineOptions& options) {
  // Resolve the projection exactly as TableView::Create does.
  PipelineInput input;
  input.base = &base;
  input.columnar = columnar;
  std::vector<size_t> projection;
  Schema schema;
  if (columns.empty()) {
    projection.resize(base.num_columns());
    std::iota(projection.begin(), projection.end(), size_t{0});
    schema = base.schema();
  } else {
    std::vector<ColumnDef> defs;
    defs.reserve(columns.size());
    projection.reserve(columns.size());
    for (const std::string& name : columns) {
      AUTOCAT_ASSIGN_OR_RETURN(const size_t idx,
                               base.schema().ColumnIndex(name));
      defs.push_back(base.schema().column(idx));
      projection.push_back(idx);
    }
    AUTOCAT_ASSIGN_OR_RETURN(schema, Schema::Create(std::move(defs)));
  }
  input.schema = &schema;
  input.projection = &projection;
  input.stats_attributes = options.stats_attributes;
  input.num_morsels = predicate.num_morsels();

  SelectionSink selection_sink;
  ProjectSink project_sink;
  StatsAccumulateSink stats_sink;
  // The sinks' Open returns void. autocat-lint: allow(dropped-status)
  selection_sink.Open(input);  // autocat-lint: allow(dropped-status)
  project_sink.Open(input);    // autocat-lint: allow(dropped-status)
  if (options.build_attr_index) {
    stats_sink.Open(input);    // autocat-lint: allow(dropped-status)
  }

  const size_t n = predicate.num_rows();

  // Zone-prove every morsel up front. All-fail morsels are never
  // dispatched at all — the sinks tolerate un-pushed morsels (zero
  // survivors), so pruning drops both the kernel work and the scheduling
  // overhead. All-pass morsels still dispatch (their dense survivors must
  // flow into the sinks) but skip per-row evaluation inside
  // AppendMorselSurvivors; only the mixed remainder does real work.
  std::vector<size_t> worklist;
  worklist.reserve(input.num_morsels);
  size_t all_pass_morsels = 0;
  for (size_t m = 0; m < input.num_morsels; ++m) {
    const auto verdict = predicate.MorselVerdict(m);
    if (verdict == CompiledPredicate::ZoneVerdict::kAllFail) {
      continue;
    }
    if (verdict == CompiledPredicate::ZoneVerdict::kAllPass) {
      ++all_pass_morsels;
    }
    worklist.push_back(m);
  }

  std::vector<size_t> counts(input.num_morsels, 0);
  // atomic-order: relaxed — pure accumulators; MorselScheduler::Run's
  // join is the synchronization point before they are read.
  std::atomic<uint64_t> filter_ns{0};   // atomic-order: relaxed (above)
  std::atomic<uint64_t> project_ns{0};  // atomic-order: relaxed (above)
  std::atomic<uint64_t> stats_ns{0};    // atomic-order: relaxed (above)
  AUTOCAT_RETURN_IF_ERROR(MorselScheduler::Run(
      options.parallel, worklist.size(), [&](size_t w) -> Status {
        const size_t m = worklist[w];
        const Morsel morsel = MorselAt(m, n);
        std::vector<uint32_t> survivors;
        uint64_t t0 = NowNs();
        predicate.AppendMorselSurvivors(m, &survivors);
        const uint64_t t1 = NowNs();
        filter_ns.fetch_add(t1 - t0, std::memory_order_relaxed);
        counts[m] = survivors.size();
        selection_sink.Push(morsel, survivors.data(), survivors.size());
        project_sink.Push(morsel, survivors.data(), survivors.size());
        const uint64_t t2 = NowNs();
        project_ns.fetch_add(t2 - t1, std::memory_order_relaxed);
        if (options.build_attr_index) {
          stats_sink.Push(morsel, survivors.data(), survivors.size());
          stats_ns.fetch_add(NowNs() - t2, std::memory_order_relaxed);
        }
        return Status::OK();
      }));

  std::vector<size_t> offsets(input.num_morsels + 1, 0);
  for (size_t m = 0; m < input.num_morsels; ++m) {
    offsets[m + 1] = offsets[m] + counts[m];
  }

  ColdPipelineResult out;
  uint64_t t0 = NowNs();
  AUTOCAT_RETURN_IF_ERROR(selection_sink.Finish(offsets));
  AUTOCAT_RETURN_IF_ERROR(project_sink.Finish(offsets));
  const uint64_t t1 = NowNs();
  project_ns.fetch_add(t1 - t0, std::memory_order_relaxed);
  if (options.build_attr_index) {
    AUTOCAT_RETURN_IF_ERROR(stats_sink.Finish(offsets));
    stats_ns.fetch_add(NowNs() - t1, std::memory_order_relaxed);
    out.attr_index = std::move(stats_sink.index());
  }

  out.selection = std::move(selection_sink.selection());
  out.result = std::move(project_sink.result());
  out.result_bytes = project_sink.result_bytes();
  out.timings.morsels = input.num_morsels;
  out.timings.morsels_pruned = input.num_morsels - worklist.size();
  out.timings.morsels_all_pass = all_pass_morsels;
  if (predicate.uses_simd() && simd::Enabled()) {
    // Mixed morsels are the ones whose leaf masks actually ran; with a
    // vectorizable predicate and AVX2 live, those went through the SIMD
    // kernels.
    out.timings.simd_morsels = worklist.size() - all_pass_morsels;
  }
  out.timings.filter_ms =
      static_cast<double>(filter_ns.load(std::memory_order_relaxed)) / 1e6;
  out.timings.project_ms =
      static_cast<double>(project_ns.load(std::memory_order_relaxed)) / 1e6;
  out.timings.stats_ms =
      static_cast<double>(stats_ns.load(std::memory_order_relaxed)) / 1e6;
  return out;
}

}  // namespace autocat
