#ifndef AUTOCAT_EXEC_PIPELINE_COLD_PATH_H_
#define AUTOCAT_EXEC_PIPELINE_COLD_PATH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "exec/kernels.h"
#include "exec/pipeline/operator.h"
#include "storage/attr_index.h"
#include "storage/table.h"

namespace autocat {

struct ColdPipelineOptions {
  /// Threads for the morsel scheduler (output is identical at any count).
  ParallelOptions parallel;
  /// Whether to run the StatsAccumulate sink (skip when the caller has no
  /// use for the attribute index, e.g. when categorization is bypassed).
  bool build_attr_index = true;
  /// Result columns the StatsAccumulate sink should index, by name
  /// (null = every supported column). Borrowed; must outlive the call.
  const std::vector<std::string>* stats_attributes = nullptr;
};

/// Cumulative per-operator wall time (summed across workers) and the
/// morsel counts — the serving layer exports these as the per-operator
/// metrics histograms and the zone-pruning counters.
struct ColdPipelineTimings {
  size_t morsels = 0;
  /// Morsels the zone prover ruled all-fail: never dispatched, no cell
  /// touched.
  size_t morsels_pruned = 0;
  /// Morsels the zone prover ruled all-pass: dispatched with dense
  /// survivors, no per-row evaluation.
  size_t morsels_all_pass = 0;
  /// Mixed morsels whose leaf masks went through the SIMD kernels (zero
  /// when the predicate has no vectorizable leaf or AVX2 is unavailable).
  size_t simd_morsels = 0;
  double filter_ms = 0;
  double project_ms = 0;
  double stats_ms = 0;
};

/// Everything the cold serve path needs from one pass over the base
/// relation. `result` row i is selection position i, exactly as
/// `TableView::Materialize` over `selection` would produce, and
/// `result_bytes` equals the cache's byte accounting over `result`.
struct ColdPipelineResult {
  std::vector<uint32_t> selection;
  Table result;
  size_t result_bytes = 0;
  ResultAttributeIndex attr_index;
  ColdPipelineTimings timings;
};

/// Runs the push pipeline for one cold request: each morsel is filtered
/// through the compiled WHERE kernels and its survivors pushed straight
/// into the Selection / Project / StatsAccumulate sinks, so the
/// selection, the materialized projected result, its byte accounting, and
/// the per-attribute index come out of a single scan with no inter-stage
/// barrier or full-selection materialization in between. Sinks key their
/// partials by morsel index and merge in index order, so every output is
/// bit-identical to the legacy Filter -> Materialize -> rescan chain at
/// any thread count.
///
/// `columns` is the projection (empty = all base columns); errors mirror
/// `TableView::Create` (unknown projection column).
Result<ColdPipelineResult> RunColdPipeline(const CompiledPredicate& predicate,
                                           const Table& base,
                                           const ColumnarTable* columnar,
                                           const std::vector<std::string>& columns,
                                           const ColdPipelineOptions& options);

}  // namespace autocat

#endif  // AUTOCAT_EXEC_PIPELINE_COLD_PATH_H_
