#ifndef AUTOCAT_EXEC_PIPELINE_OPERATOR_H_
#define AUTOCAT_EXEC_PIPELINE_OPERATOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "exec/pipeline/morsel.h"
#include "storage/attr_index.h"
#include "storage/columnar.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace autocat {

/// What every pipeline operator sees at Open: the base relation, its
/// columnar shadow, and the projected result shape. Borrowed pointers —
/// the caller keeps them alive for the pipeline's duration.
struct PipelineInput {
  const Table* base = nullptr;
  const ColumnarTable* columnar = nullptr;
  /// Schema of the projected result (what the gather sink materializes).
  const Schema* schema = nullptr;
  /// Base-column index per result column.
  const std::vector<size_t>* projection = nullptr;
  /// Result columns the StatsAccumulate sink should index, by name
  /// (null = every supported column). The serve layer passes the
  /// categorizer's retained candidate attributes so no index entry is
  /// built for a column the partitioners will never touch.
  const std::vector<std::string>* stats_attributes = nullptr;
  size_t num_morsels = 0;
};

/// Push-protocol consumer of filtered morsels (the RDF-3X operator idiom
/// turned inside out: the scheduler drives, operators receive).
///
/// Lifecycle: `Open` once, then `Push` at most once per morsel — possibly
/// concurrently for *different* morsels, never twice for the same one —
/// then `Finish` once, single-threaded, after every Push returned. A
/// morsel the scheduler never pushes (the zone prover ruled it all-fail)
/// contributes zero survivors: every sink's per-morsel state defaults to
/// empty, so skipped morsels and pushed-empty morsels are
/// indistinguishable at Finish. `survivors` are the morsel's surviving
/// base-row indices, ascending.
///
/// Determinism contract: a sink keys everything it accumulates in Push by
/// `morsel.index` into slots pre-sized at Open (so concurrent Pushes
/// touch disjoint state), and Finish merges the slots in index order.
/// `morsel_offsets` has num_morsels + 1 entries: `[m]` is the number of
/// survivors in morsels 0..m-1 — i.e. the result-row index of morsel m's
/// first survivor — and `back()` is the total, letting a sink turn
/// morsel-local ordinals into result-row indices without having observed
/// the other morsels. The merged output is therefore a pure function of
/// the input, independent of thread count and completion order.
class MorselSink {
 public:
  virtual ~MorselSink() = default;

  virtual void Open(const PipelineInput& input) = 0;
  virtual void Push(const Morsel& morsel, const uint32_t* survivors,
                    size_t count) = 0;
  virtual Status Finish(const std::vector<size_t>& morsel_offsets) = 0;
};

/// Collects the selection vector (the surviving base-row indices in
/// ascending order) — what `CompiledPredicate::Filter` returns, rebuilt
/// from per-morsel shards.
class SelectionSink final : public MorselSink {
 public:
  void Open(const PipelineInput& input) override;
  void Push(const Morsel& morsel, const uint32_t* survivors,
            size_t count) override;
  Status Finish(const std::vector<size_t>& morsel_offsets) override;

  std::vector<uint32_t>& selection() { return selection_; }

 private:
  std::vector<std::vector<uint32_t>> shards_;
  std::vector<uint32_t> selection_;
};

/// Gathers the projected survivor rows into an owned row-backed table —
/// `TableView::Materialize`, morsel at a time — and accounts the copied
/// cells' bytes on the way (the cache's ApproxValueBytes measure:
/// sizeof(Value) plus string capacity of the stored copies), so the serve
/// layer skips its separate whole-table accounting pass.
class ProjectSink final : public MorselSink {
 public:
  void Open(const PipelineInput& input) override;
  void Push(const Morsel& morsel, const uint32_t* survivors,
            size_t count) override;
  Status Finish(const std::vector<size_t>& morsel_offsets) override;

  Table& result() { return result_; }
  /// sizeof(Table) + per-row sizeof(Row) + per-cell ApproxValueBytes of
  /// `result()` — equal to what serve/cache.cc computes over the table.
  size_t result_bytes() const { return result_bytes_; }

 private:
  const PipelineInput* input_ = nullptr;
  bool identity_ = false;
  std::vector<std::vector<Row>> shards_;
  std::vector<size_t> shard_bytes_;
  Table result_;
  size_t result_bytes_ = 0;
};

/// Accumulates the survivor set and turns it, at Finish, into a
/// ResultAttributeIndex: the root-level sorted-values / value-groups
/// shapes the partitioners consume (the "stats accumulate" operator).
/// Push only marks survivors in a bitmap — survivor rows ascend globally
/// across morsels, so ascending bitmap order *is* the morsel-merge order
/// and a row's rank is its result-row index; all per-column work happens
/// once in Finish against the final selection. Columns outside the two
/// supported shapes (or outside `stats_attributes`) get no entry;
/// consumers rescan.
class StatsAccumulateSink final : public MorselSink {
 public:
  void Open(const PipelineInput& input) override;
  void Push(const Morsel& morsel, const uint32_t* survivors,
            size_t count) override;
  Status Finish(const std::vector<size_t>& morsel_offsets) override;

  ResultAttributeIndex& index() { return index_; }

 private:
  // How a result column is read. The branch order mirrors the
  // partitioners' typed fast paths exactly, so the accumulated values are
  // the ones a direct scan would have produced.
  enum class Mode {
    kSkip,          ///< No entry for this column.
    kNumericI64,    ///< regular int64 -> static_cast<double>
    kNumericF64,    ///< regular double -> raw
    kNumericValue,  ///< generic cell walk -> AsDouble()
    kStringDict,    ///< regular string -> group by dictionary code
  };

  const PipelineInput* input_ = nullptr;
  std::vector<Mode> modes_;
  /// Survivor bitmap over base rows — the only state Push touches
  /// (different morsels own disjoint word ranges, so concurrent Pushes
  /// never race). Finish reads values per column from it: via the
  /// per-table `sorted_order` rank-filter when the selection is dense
  /// enough, else by gathering and sorting the survivors.
  std::vector<uint64_t> survivor_words_;
  ResultAttributeIndex index_;
};

}  // namespace autocat

#endif  // AUTOCAT_EXEC_PIPELINE_OPERATOR_H_
