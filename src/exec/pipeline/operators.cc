#include "exec/pipeline/operator.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace autocat {

// ---- SelectionSink ---------------------------------------------------

void SelectionSink::Open(const PipelineInput& input) {
  shards_.assign(input.num_morsels, {});
  selection_.clear();
}

void SelectionSink::Push(const Morsel& morsel, const uint32_t* survivors,
                         size_t count) {
  shards_[morsel.index].assign(survivors, survivors + count);
}

Status SelectionSink::Finish(const std::vector<size_t>& morsel_offsets) {
  (void)morsel_offsets;  // used by debug-build invariant checks only
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.size();
  }
  selection_.reserve(total);
  for (size_t m = 0; m < shards_.size(); ++m) {
    AUTOCAT_DCHECK_EQ(selection_.size(), morsel_offsets[m]);
    selection_.insert(selection_.end(), shards_[m].begin(),
                      shards_[m].end());
  }
  shards_.clear();
  return Status::OK();
}

// ---- ProjectSink -----------------------------------------------------

namespace {

size_t ValueBytes(const Value& v) {
  // Must match serve/cache.cc's ApproxValueBytes: the cache accounts the
  // stored copy, and the rows gathered here *are* the stored copies.
  size_t bytes = sizeof(Value);
  if (v.is_string()) {
    bytes += v.string_value().capacity();
  }
  return bytes;
}

size_t RowBytes(const Row& row) {
  size_t bytes = sizeof(Row);
  for (const Value& v : row) {
    bytes += ValueBytes(v);
  }
  return bytes;
}

}  // namespace

void ProjectSink::Open(const PipelineInput& input) {
  input_ = &input;
  shards_.assign(input.num_morsels, {});
  shard_bytes_.assign(input.num_morsels, 0);
  identity_ = input.base->has_rows() &&
              input.projection->size() == input.base->num_columns();
  if (identity_) {
    for (size_t c = 0; c < input.projection->size(); ++c) {
      if ((*input.projection)[c] != c) {
        identity_ = false;
        break;
      }
    }
  }
}

void ProjectSink::Push(const Morsel& morsel, const uint32_t* survivors,
                       size_t count) {
  std::vector<Row>& rows = shards_[morsel.index];
  rows.reserve(count);
  size_t bytes = 0;
  const Table& base = *input_->base;
  const std::vector<size_t>& projection = *input_->projection;
  if (identity_) {
    // Whole-row copies, as Materialize's identity fast path takes them.
    for (size_t k = 0; k < count; ++k) {
      rows.push_back(base.row(survivors[k]));
      bytes += RowBytes(rows.back());
    }
  } else if (!base.has_rows()) {
    // Column-backed base: synthesize each projected cell.
    for (size_t k = 0; k < count; ++k) {
      Row projected;
      projected.reserve(projection.size());
      for (const size_t c : projection) {
        projected.push_back(base.CellValue(survivors[k], c));
      }
      bytes += RowBytes(projected);
      rows.push_back(std::move(projected));
    }
  } else {
    for (size_t k = 0; k < count; ++k) {
      const Row& src = base.row(survivors[k]);
      Row projected;
      projected.reserve(projection.size());
      for (const size_t c : projection) {
        projected.push_back(src[c]);
      }
      bytes += RowBytes(projected);
      rows.push_back(std::move(projected));
    }
  }
  shard_bytes_[morsel.index] = bytes;
}

Status ProjectSink::Finish(const std::vector<size_t>& morsel_offsets) {
  (void)morsel_offsets;  // used by debug-build invariant checks only
  size_t total = 0;
  result_bytes_ = sizeof(Table);
  for (size_t m = 0; m < shards_.size(); ++m) {
    total += shards_[m].size();
    result_bytes_ += shard_bytes_[m];
  }
  std::vector<Row> rows;
  rows.reserve(total);
  for (size_t m = 0; m < shards_.size(); ++m) {
    AUTOCAT_DCHECK_EQ(rows.size(), morsel_offsets[m]);
    for (Row& row : shards_[m]) {
      rows.push_back(std::move(row));
    }
  }
  result_ = Table::FromValidatedRows(*input_->schema, std::move(rows));
  shards_.clear();
  shard_bytes_.clear();
  return Status::OK();
}

// ---- StatsAccumulateSink ---------------------------------------------

void StatsAccumulateSink::Open(const PipelineInput& input) {
  input_ = &input;
  const Schema& schema = *input.schema;
  const size_t cols = schema.num_columns();
  modes_.assign(cols, Mode::kSkip);
  index_.num_rows = 0;
  index_.columns.assign(cols, {});
  bool any = false;
  for (size_t c = 0; c < cols; ++c) {
    if (input.stats_attributes != nullptr &&
        std::find(input.stats_attributes->begin(),
                  input.stats_attributes->end(),
                  schema.column(c).name) == input.stats_attributes->end()) {
      continue;  // the partitioners will never touch this column
    }
    const size_t base_col = (*input.projection)[c];
    const ColumnarTable::Column* cc =
        input.columnar == nullptr ? nullptr
                                  : &input.columnar->column(base_col);
    if (schema.column(c).kind == ColumnKind::kNumeric) {
      if (cc != nullptr && cc->regular && cc->type == ValueType::kInt64) {
        modes_[c] = Mode::kNumericI64;
      } else if (cc != nullptr && cc->regular &&
                 cc->type == ValueType::kDouble) {
        modes_[c] = Mode::kNumericF64;
      } else {
        modes_[c] = Mode::kNumericValue;
      }
      any = true;
    } else if (cc != nullptr && cc->regular &&
               cc->type == ValueType::kString) {
      modes_[c] = Mode::kStringDict;
      any = true;
    }
  }
  survivor_words_.assign(
      any ? (input.base->num_rows() + 63) / 64 : 0, 0);
}

void StatsAccumulateSink::Push(const Morsel& morsel,
                               const uint32_t* survivors, size_t count) {
  if (survivor_words_.empty()) {
    return;  // no column wanted an entry
  }
  // Morsel bounds are multiples of kMorselRows (a multiple of 64), so
  // concurrent Pushes write disjoint words and plain ORs cannot race.
  if (count == morsel.num_rows()) {
    // Zone-proven all-pass morsel: every row survives, so fill whole
    // words instead of setting 2048 bits one at a time. The last word may
    // be partial when the morsel is the table's tail.
    size_t r = morsel.begin;
    for (; r + 64 <= morsel.end; r += 64) {
      survivor_words_[r >> 6] = ~uint64_t{0};
    }
    if (r < morsel.end) {
      survivor_words_[r >> 6] |=
          (uint64_t{1} << (morsel.end - r)) - 1;
    }
    return;
  }
  for (size_t k = 0; k < count; ++k) {
    const uint32_t row = survivors[k];
    survivor_words_[row >> 6] |= uint64_t{1} << (row & 63);
  }
}

Status StatsAccumulateSink::Finish(
    const std::vector<size_t>& morsel_offsets) {
  index_.num_rows = morsel_offsets.empty()
                        ? 0
                        : morsel_offsets.back();
  if (survivor_words_.empty()) {
    return Status::OK();  // no column wanted an entry
  }
  // Survivor rows ascend globally (morsel m covers rows before morsel
  // m+1's), so ascending bitmap order is the morsel-merge order and a
  // row's ordinal below is its result-row index.
  std::vector<uint32_t> rows;
  rows.reserve(index_.num_rows);
  for (size_t w = 0; w < survivor_words_.size(); ++w) {
    uint64_t word = survivor_words_[w];
    while (word != 0) {
      rows.push_back(static_cast<uint32_t>(
          (w << 6) + static_cast<size_t>(std::countr_zero(word))));
      word &= word - 1;
    }
  }
  AUTOCAT_DCHECK_EQ(rows.size(), index_.num_rows);
  // Prefix survivor counts per bitmap word, computed on first use: the
  // selection position of base row r is its rank in the bitmap.
  std::vector<size_t> word_rank;
  for (size_t c = 0; c < modes_.size(); ++c) {
    AttributeIndexEntry& entry = index_.columns[c];
    const size_t base_col = (*input_->projection)[c];
    const ColumnarTable::Column* cc =
        input_->columnar == nullptr ? nullptr
                                    : &input_->columnar->column(base_col);
    switch (modes_[c]) {
      case Mode::kSkip:
        break;
      case Mode::kNumericI64:
      case Mode::kNumericF64:
      case Mode::kNumericValue: {
        // Dense selections rank-filter the per-table sorted order — one
        // sequential walk over the base rows — instead of sorting the
        // survivors' values again. Both orders are (value asc, position
        // asc), so the output is element-identical; the 1/16 cutoff is
        // roughly where the walk and the O(k log k) sort cross over.
        if (modes_[c] != Mode::kNumericValue && cc != nullptr &&
            !cc->sorted_order.empty() &&
            index_.num_rows * 16 >= input_->base->num_rows()) {
          if (word_rank.empty()) {
            word_rank.resize(survivor_words_.size());
            size_t running = 0;
            for (size_t w = 0; w < survivor_words_.size(); ++w) {
              word_rank[w] = running;
              running += static_cast<size_t>(
                  std::popcount(survivor_words_[w]));
            }
          }
          entry.sorted_values.reserve(index_.num_rows);
          for (const uint32_t row : cc->sorted_order) {
            const uint64_t word = survivor_words_[row >> 6];
            if ((word >> (row & 63)) & 1) {
              const double value = modes_[c] == Mode::kNumericI64
                                       ? static_cast<double>(cc->i64[row])
                                       : cc->f64[row];
              const size_t pos =
                  word_rank[row >> 6] +
                  static_cast<size_t>(std::popcount(
                      word & ((uint64_t{1} << (row & 63)) - 1)));
              entry.sorted_values.emplace_back(value, pos);
            }
          }
          entry.has_sorted_values = true;
          break;
        }
        entry.sorted_values.reserve(rows.size());
        for (size_t k = 0; k < rows.size(); ++k) {
          const uint32_t row = rows[k];
          if (modes_[c] == Mode::kNumericValue) {
            const Value v = input_->base->CellValue(row, base_col);
            if (!v.is_null()) {
              entry.sorted_values.emplace_back(v.AsDouble(), k);
            }
          } else if (!cc->IsNull(row)) {
            entry.sorted_values.emplace_back(
                modes_[c] == Mode::kNumericI64
                    ? static_cast<double>(cc->i64[row])
                    : cc->f64[row],
                k);
          }
        }
        // Pairs are distinct (the position is unique), so the sorted
        // vector is the unique total order — identical to sorting the
        // same pairs collected any other way.
        std::sort(entry.sorted_values.begin(), entry.sorted_values.end());
        entry.has_sorted_values = true;
        break;
      }
      case Mode::kStringDict: {
        std::vector<std::vector<size_t>> buckets(cc->dict.size());
        std::vector<uint32_t> touched;
        // Ascending rows = ascending result-row indices per bucket.
        for (size_t k = 0; k < rows.size(); ++k) {
          const uint32_t row = rows[k];
          if (cc->IsNull(row)) {
            continue;
          }
          const uint32_t code = cc->codes[row];
          if (buckets[code].empty()) {
            touched.push_back(code);
          }
          buckets[code].push_back(k);
        }
        std::sort(touched.begin(), touched.end());
        entry.groups.reserve(touched.size());
        for (const uint32_t code : touched) {
          entry.groups.emplace_back(Value(cc->dict[code]),
                                    std::move(buckets[code]));
        }
        entry.has_groups = true;
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace autocat
