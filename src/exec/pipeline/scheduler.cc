#include "exec/pipeline/scheduler.h"

namespace autocat {

Status MorselScheduler::Run(const ParallelOptions& parallel,
                            size_t num_morsels,
                            const std::function<Status(size_t)>& fn) {
  if (num_morsels == 0) {
    return Status::OK();
  }
  if (parallel.ResolvedThreads() <= 1 || num_morsels == 1) {
    for (size_t m = 0; m < num_morsels; ++m) {
      AUTOCAT_RETURN_IF_ERROR(fn(m));
    }
    return Status::OK();
  }
  // The one sanctioned ParallelFor call in src/exec + src/serve (see the
  // direct-parallel-for lint rule). Grain 1: a morsel is already the
  // batching unit, and single-index claims let fast morsels steal ahead
  // of slow ones.
  return ParallelFor(parallel, 0, num_morsels, /*grain=*/1,
                     [&fn](size_t lo, size_t hi) -> Status {
                       for (size_t m = lo; m < hi; ++m) {
                         AUTOCAT_RETURN_IF_ERROR(fn(m));
                       }
                       return Status::OK();
                     });
}

}  // namespace autocat
