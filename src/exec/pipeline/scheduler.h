#ifndef AUTOCAT_EXEC_PIPELINE_SCHEDULER_H_
#define AUTOCAT_EXEC_PIPELINE_SCHEDULER_H_

#include <cstddef>
#include <functional>

#include "common/result.h"
#include "common/thread_pool.h"

namespace autocat {

/// The single morsel-granular dispatch point for the execution and
/// serving layers.
///
/// Everything in `src/exec/` and `src/serve/` that wants parallelism goes
/// through `MorselScheduler::Run` instead of calling `ParallelFor`
/// directly (enforced by the `direct-parallel-for` lint rule; the
/// scheduler TU is the one sanctioned call site). Centralizing the
/// dispatch keeps the determinism contract in one place: the scheduler
/// promises only that `fn` runs exactly once per morsel index — callers
/// own ordering, which they get by keying partials on the morsel index
/// and merging in index order after Run returns.
class MorselScheduler {
 public:
  /// Runs `fn(morsel_index)` exactly once for every index in
  /// [0, num_morsels), spread over the shared thread pool when `parallel`
  /// resolves to more than one thread (sequential and ascending
  /// otherwise). Returns the error of the lowest-indexed failing morsel
  /// (the `ParallelFor` contract), so error selection is also
  /// deterministic.
  static Status Run(const ParallelOptions& parallel, size_t num_morsels,
                    const std::function<Status(size_t)>& fn);
};

}  // namespace autocat

#endif  // AUTOCAT_EXEC_PIPELINE_SCHEDULER_H_
