#ifndef AUTOCAT_EXEC_PIPELINE_MORSEL_H_
#define AUTOCAT_EXEC_PIPELINE_MORSEL_H_

#include <cstddef>
#include <cstdint>

#include "storage/columnar.h"

namespace autocat {

/// The pipeline work unit: a fixed-width span of base rows. 2048 rows is
/// the WHERE-kernel chunk width (masks and survivor arrays fit on the
/// stack, see exec/kernels.cc), so a morsel and a kernel chunk are the
/// same thing and survivors flow from the filter into the sinks without
/// re-chunking.
inline constexpr size_t kMorselRows = 2048;

// Zone-map entries (storage/columnar.h) are keyed by the same row span:
// zone z of a column describes exactly the rows of morsel z, so the zone
// prover indexes `Column::zones` with the morsel index directly.
static_assert(kMorselRows == kZoneRows,
              "morsel width and zone-map width must match");

/// One morsel: rows [begin, end) of the base relation, the `index`-th of
/// its table. Operators key their partials by `index` and merge them in
/// index order, which is what makes the pipeline's output independent of
/// the number of worker threads.
struct Morsel {
  size_t index = 0;
  size_t begin = 0;
  size_t end = 0;

  size_t num_rows() const { return end - begin; }
};

/// Number of morsels covering an `n`-row relation.
inline size_t NumMorsels(size_t n) {
  return (n + kMorselRows - 1) / kMorselRows;
}

/// The `index`-th morsel of an `n`-row relation.
inline Morsel MorselAt(size_t index, size_t n) {
  Morsel m;
  m.index = index;
  m.begin = index * kMorselRows;
  m.end = m.begin + kMorselRows < n ? m.begin + kMorselRows : n;
  return m;
}

}  // namespace autocat

#endif  // AUTOCAT_EXEC_PIPELINE_MORSEL_H_
