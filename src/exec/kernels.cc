#include "exec/kernels.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "exec/pipeline/morsel.h"
#include "exec/pipeline/scheduler.h"

namespace autocat {

namespace {

using Node = CompiledPredicate::Node;
using Column = ColumnarTable::Column;

Node ConstNode(bool value) {
  Node node;
  node.kind = value ? Node::Kind::kConstTrue : Node::Kind::kConstFalse;
  return node;
}

Node LeafNode(std::function<void(size_t, size_t, uint8_t*)> fn) {
  Node node;
  node.kind = Node::Kind::kLeaf;
  node.leaf = std::move(fn);
  return node;
}

Status NotCovered(const std::string& what) {
  return Status::NotSupported("predicate not covered by columnar kernels: " +
                              what);
}

// Comparison class of Value::Compare: numerics are one class, strings
// another (NULL literals are handled before classification).
int ClassOf(const Value& v) { return v.is_numeric() ? 1 : 2; }

int ClassOfColumn(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 1;
    case ValueType::kString:
      return 2;
    case ValueType::kNull:
      return 0;
  }
  return 0;
}

// Encodes a comparison op as a truth table over the three-way result
// c in {-1, 0, 1}: bit (c + 1) set <=> the op accepts c. The three-way
// compare in every kernel is Cmp3 below, which matches Value::Compare
// exactly: NaN operands yield c == 0 — "equal" — just as on the row path.
uint8_t OpTruthTable(ComparisonOp op) {
  switch (op) {
    case ComparisonOp::kEq:
      return 0b010;
    case ComparisonOp::kNotEq:
      return 0b101;
    case ComparisonOp::kLess:
      return 0b001;
    case ComparisonOp::kLessEq:
      return 0b011;
    case ComparisonOp::kGreater:
      return 0b100;
    case ComparisonOp::kGreaterEq:
      return 0b110;
  }
  return 0;
}

// ---- branchless helpers ----------------------------------------------
//
// The per-row loops below avoid data-dependent branches: on ~random data
// every short-circuit `&&` and every `?:` three-way compare mispredicts,
// which costs an order of magnitude more than the arithmetic it saves.
// Leaves also capture raw array pointers (stable for the lifetime of the
// shared shadow) rather than the Column*, so the `uint8_t* mask` stores —
// which may alias anything — cannot force the compiler to reload the
// vector data pointers on every iteration.

// Three-way compare, branch-free: (a > b) - (a < b) is -1/0/1, with NaN
// operands yielding 0 ("equal") exactly like Value::Compare.
template <typename T>
int Cmp3(T a, T b) {
  return static_cast<int>(a > b) - static_cast<int>(a < b);
}

// Exact membership in a sorted vector: small sets scan linearly (branch
// free, vectorizable); larger ones binary-search.
bool MemberOf(const std::vector<int64_t>& v, int64_t a) {
  if (v.size() > 16) {
    return std::binary_search(v.begin(), v.end(), a);
  }
  bool found = false;
  for (const int64_t x : v) {
    found |= (a == x);
  }
  return found;
}

bool MemberOf(const std::vector<double>& v, double a) {
  if (v.size() > 16) {
    return std::binary_search(v.begin(), v.end(), a);
  }
  bool found = false;
  for (const double x : v) {
    found |= (a == x);
  }
  return found;
}

// Wraps a per-row predicate (null handling excluded) into a leaf that
// masks NULL rows off with the null bitmap — or skips the bitmap
// entirely when the column has no NULLs. The predicate is evaluated
// unconditionally: NULL slots hold in-range defaults (0 / 0.0 / code 0,
// see ColumnarTable::Build), so the loads are safe and the `&` keeps the
// result exact.
template <typename Pred>
Node MaskedLeaf(const Column* col, Pred pred) {
  Node node;
  if (col->null_count == 0) {
    node = LeafNode([pred](size_t begin, size_t end, uint8_t* mask) {
      for (size_t r = begin; r < end; ++r) {
        mask[r - begin] = static_cast<uint8_t>(pred(r));
      }
    });
    node.row_pred = pred;
    return node;
  }
  const uint64_t* null_words = col->null_words.data();
  node = LeafNode([null_words, pred](size_t begin, size_t end,
                                     uint8_t* mask) {
    for (size_t r = begin; r < end; ++r) {
      const auto not_null =
          static_cast<uint8_t>(~(null_words[r >> 6] >> (r & 63)) & 1);
      mask[r - begin] = static_cast<uint8_t>(not_null & pred(r));
    }
  });
  node.row_pred = [null_words, pred](size_t r) {
    return ((~(null_words[r >> 6] >> (r & 63)) & 1) != 0) && pred(r);
  };
  return node;
}

// ---- comparison kernels ----------------------------------------------

Node NumericCompareLeaf(const Column* col, const Value& lit, uint8_t table) {
  if (col->type == ValueType::kInt64 && lit.is_int64()) {
    // Both int64: Value::Compare compares exactly, with no double
    // round-trip (distinguishes 2^53 + 1 from 2^53).
    const int64_t b = lit.int64_value();
    return MaskedLeaf(col, [vals = col->i64.data(), b, table](size_t r) {
      return ((table >> (Cmp3(vals[r], b) + 1)) & 1) != 0;
    });
  }
  if (col->type == ValueType::kInt64) {
    // int64 cell vs double literal: mixed numerics widen via AsDouble.
    const double b = lit.double_value();
    return MaskedLeaf(col, [vals = col->i64.data(), b, table](size_t r) {
      return ((table >> (Cmp3(static_cast<double>(vals[r]), b) + 1)) & 1) !=
             0;
    });
  }
  const double b = lit.AsDouble();
  return MaskedLeaf(col, [vals = col->f64.data(), b, table](size_t r) {
    return ((table >> (Cmp3(vals[r], b) + 1)) & 1) != 0;
  });
}

Node StringCompareLeaf(const Column* col, const std::string& s,
                       uint8_t table) {
  // p = first dictionary code with dict[code] >= s. Because the dictionary
  // is sorted, cell < s <=> code < p; when s is present, cell == s <=>
  // code == p; when absent, no cell equals s (c never 0 below). The
  // verdict depends only on the code, so it is precomputed per code and
  // the per-row loop is a single table lookup.
  const auto it = std::lower_bound(col->dict.begin(), col->dict.end(), s);
  const uint32_t p = static_cast<uint32_t>(it - col->dict.begin());
  const bool present = it != col->dict.end() && *it == s;
  std::vector<uint8_t> accept(col->dict.size() + 1, 0);
  for (uint32_t code = 0; code < col->dict.size(); ++code) {
    const int c = present ? Cmp3(code, p) : (code < p ? -1 : 1);
    accept[code] = static_cast<uint8_t>((table >> (c + 1)) & 1);
  }
  return MaskedLeaf(col, [codes = col->codes.data(),
                          accept = std::move(accept)](size_t r) {
    return accept[codes[r]] != 0;
  });
}

Result<Node> CompileComparison(const ComparisonExpr& cmp,
                               const Schema& schema,
                               const ColumnarTable& ct) {
  const auto col_idx = schema.ColumnIndex(cmp.column());
  if (!col_idx.ok()) {
    // Unknown column: the row path errors per evaluated row (so a zero-row
    // table does NOT error). Refusing reproduces both outcomes.
    return NotCovered("unknown column '" + cmp.column() + "'");
  }
  const Column& col = ct.column(col_idx.value());
  if (!col.regular) {
    return NotCovered("irregular column '" + cmp.column() + "'");
  }
  const Value& lit = cmp.literal();
  if (lit.is_null()) {
    return ConstNode(false);  // comparison with NULL never matches
  }
  const int cc = ClassOfColumn(col.type);
  if (cc != ClassOf(lit)) {
    if (col.null_count == ct.num_rows()) {
      // Every cell NULL: the row path returns false before the
      // string-vs-numeric comparability check can error.
      return ConstNode(false);
    }
    // The row path errors on the first non-NULL cell — but only if
    // evaluation reaches it (AND/OR short-circuit): data-dependent, so
    // fall back rather than approximate.
    return NotCovered("class mismatch on column '" + cmp.column() + "'");
  }
  const uint8_t table = OpTruthTable(cmp.op());
  if (cc == 2) {
    return StringCompareLeaf(&col, lit.string_value(), table);
  }
  return NumericCompareLeaf(&col, lit, table);
}

// ---- IN (...) kernels ------------------------------------------------

Result<Node> CompileInList(const InListExpr& in, const Schema& schema,
                           const ColumnarTable& ct) {
  const auto col_idx = schema.ColumnIndex(in.column());
  if (!col_idx.ok()) {
    return NotCovered("unknown column '" + in.column() + "'");
  }
  const Column& col = ct.column(col_idx.value());
  if (!col.regular) {
    return NotCovered("irregular column '" + in.column() + "'");
  }
  const int cc = ClassOfColumn(col.type);
  if (cc == 0 || col.null_count == ct.num_rows()) {
    // NULL cells return false *before* negation applies.
    return ConstNode(false);
  }
  for (const Value& v : in.values()) {
    if (!v.is_null() && ClassOf(v) != cc) {
      // Row path: error on the first cell that actually reaches this
      // literal (the scan breaks as soon as an earlier literal matches).
      return NotCovered("class mismatch in IN list on '" + in.column() +
                        "'");
    }
  }
  const bool negated = in.negated();
  if (cc == 2) {
    // Dictionary-code membership bitset (size + 1 so data() stays valid
    // for an empty dictionary; NULL rows carry code 0 and are masked).
    // NOT IN flips the bits up front so the loop stays a plain lookup.
    std::vector<uint8_t> member(col.dict.size() + 1, 0);
    for (const Value& v : in.values()) {
      if (v.is_null()) {
        continue;
      }
      const auto it = std::lower_bound(col.dict.begin(), col.dict.end(),
                                       v.string_value());
      if (it != col.dict.end() && *it == v.string_value()) {
        member[static_cast<size_t>(it - col.dict.begin())] = 1;
      }
    }
    if (negated) {
      for (size_t code = 0; code < col.dict.size(); ++code) {
        member[code] ^= 1;
      }
    }
    return MaskedLeaf(&col, [codes = col.codes.data(),
                             member = std::move(member)](size_t r) {
      return member[codes[r]] != 0;
    });
  }
  // Numeric column. int64 literals are kept exact for int64 columns; a
  // NaN literal compares "equal" to every numeric cell under
  // Value::Compare, so it matches every non-NULL row.
  bool match_all = false;
  if (col.type == ValueType::kInt64) {
    std::vector<int64_t> vi;
    std::vector<double> vd;
    for (const Value& v : in.values()) {
      if (v.is_null()) {
        continue;
      }
      if (v.is_int64()) {
        vi.push_back(v.int64_value());
      } else if (std::isnan(v.double_value())) {
        match_all = true;
      } else {
        vd.push_back(v.double_value());
      }
    }
    std::sort(vi.begin(), vi.end());
    std::sort(vd.begin(), vd.end());
    return MaskedLeaf(&col, [vals = col.i64.data(), vi = std::move(vi),
                             vd = std::move(vd), match_all,
                             negated](size_t r) {
      const int64_t a = vals[r];
      const bool found =
          match_all || MemberOf(vi, a) ||
          (!vd.empty() && MemberOf(vd, static_cast<double>(a)));
      return found != negated;
    });
  }
  bool any_numeric = false;
  std::vector<double> vd;
  for (const Value& v : in.values()) {
    if (v.is_null()) {
      continue;
    }
    any_numeric = true;
    const double d = v.AsDouble();
    if (std::isnan(d)) {
      match_all = true;
    } else {
      vd.push_back(d);
    }
  }
  std::sort(vd.begin(), vd.end());
  return MaskedLeaf(&col, [vals = col.f64.data(), vd = std::move(vd),
                           match_all, any_numeric, negated](size_t r) {
    const double a = vals[r];
    // A NaN cell compares "equal" to the first numeric literal the row
    // scan reaches, so it matches iff the list has any numeric entry.
    const bool found =
        std::isnan(a) ? any_numeric : (match_all || MemberOf(vd, a));
    return found != negated;
  });
}

// ---- BETWEEN kernels -------------------------------------------------

// One BETWEEN endpoint: int64 endpoints compare exactly against int64
// cells; everything else widens to double (Value::Compare semantics).
struct NumBound {
  bool is_int = false;
  int64_t i = 0;
  double d = 0;
};

NumBound MakeBound(const Value& v) {
  NumBound b;
  if (v.is_int64()) {
    b.is_int = true;
    b.i = v.int64_value();
    b.d = static_cast<double>(v.int64_value());
  } else {
    b.d = v.double_value();
  }
  return b;
}

Result<Node> CompileBetween(const BetweenExpr& bt, const Schema& schema,
                            const ColumnarTable& ct) {
  const auto col_idx = schema.ColumnIndex(bt.column());
  if (!col_idx.ok()) {
    return NotCovered("unknown column '" + bt.column() + "'");
  }
  const Column& col = ct.column(col_idx.value());
  if (!col.regular) {
    return NotCovered("irregular column '" + bt.column() + "'");
  }
  if (bt.lo().is_null() || bt.hi().is_null()) {
    // Row path returns false (before negation) for every row.
    return ConstNode(false);
  }
  const int cc = ClassOfColumn(col.type);
  if (cc == 0 || col.null_count == ct.num_rows()) {
    return ConstNode(false);  // NULL cells return false before negation
  }
  if (ClassOf(bt.lo()) != cc || ClassOf(bt.hi()) != cc) {
    return NotCovered("class mismatch in BETWEEN on '" + bt.column() + "'");
  }
  const bool negated = bt.negated();
  if (cc == 2) {
    // inside <=> lo <= cell <= hi <=> lb(lo) <= code < ub(hi); the verdict
    // depends only on the code, so precompute it per code.
    const auto lo_it = std::lower_bound(col.dict.begin(), col.dict.end(),
                                        bt.lo().string_value());
    const auto hi_it = std::upper_bound(col.dict.begin(), col.dict.end(),
                                        bt.hi().string_value());
    const uint32_t lo_code = static_cast<uint32_t>(lo_it - col.dict.begin());
    const uint32_t hi_code = static_cast<uint32_t>(hi_it - col.dict.begin());
    std::vector<uint8_t> accept(col.dict.size() + 1, 0);
    for (uint32_t code = 0; code < col.dict.size(); ++code) {
      const bool inside = code >= lo_code && code < hi_code;
      accept[code] = static_cast<uint8_t>(inside != negated);
    }
    return MaskedLeaf(&col, [codes = col.codes.data(),
                             accept = std::move(accept)](size_t r) {
      return accept[codes[r]] != 0;
    });
  }
  const NumBound lo = MakeBound(bt.lo());
  const NumBound hi = MakeBound(bt.hi());
  if (col.type == ValueType::kInt64) {
    return MaskedLeaf(&col, [vals = col.i64.data(), lo, hi,
                             negated](size_t r) {
      const int64_t a = vals[r];
      const int c1 = lo.is_int ? Cmp3(a, lo.i)
                               : Cmp3(static_cast<double>(a), lo.d);
      const int c2 = hi.is_int ? Cmp3(a, hi.i)
                               : Cmp3(static_cast<double>(a), hi.d);
      const bool inside = (c1 >= 0) & (c2 <= 0);
      return inside != negated;
    });
  }
  return MaskedLeaf(&col, [vals = col.f64.data(), lo, hi,
                           negated](size_t r) {
    const double a = vals[r];
    const bool inside = (Cmp3(a, lo.d) >= 0) & (Cmp3(a, hi.d) <= 0);
    return inside != negated;
  });
}

// ---- IS NULL / logical -----------------------------------------------

Result<Node> CompileIsNull(const IsNullExpr& expr, const Schema& schema,
                           const ColumnarTable& ct) {
  const auto col_idx = schema.ColumnIndex(expr.column());
  if (!col_idx.ok()) {
    return NotCovered("unknown column '" + expr.column() + "'");
  }
  const Column& col = ct.column(col_idx.value());
  const bool negated = expr.negated();
  // Uniform bitmaps fold to constants (the common no-NULL case skips the
  // per-row loop entirely); IS [NOT] NULL never errors on the row path,
  // so the fold is exact under AND/OR short-circuit too.
  if (col.null_count == 0) {
    return ConstNode(negated);
  }
  if (col.null_count == ct.num_rows()) {
    return ConstNode(!negated);
  }
  const auto flip = static_cast<uint64_t>(negated ? 1 : 0);
  const uint64_t* null_words = col.null_words.data();
  Node node = LeafNode([null_words, flip](size_t begin, size_t end,
                                          uint8_t* mask) {
    for (size_t r = begin; r < end; ++r) {
      mask[r - begin] = static_cast<uint8_t>(
          ((null_words[r >> 6] >> (r & 63)) & 1) ^ flip);
    }
  });
  node.row_pred = [null_words, flip](size_t r) {
    return (((null_words[r >> 6] >> (r & 63)) & 1) ^ flip) != 0;
  };
  return node;
}

Result<Node> CompileExpr(const Expr& expr, const Schema& schema,
                         const ColumnarTable& ct);

Result<Node> CompileLogical(const LogicalExpr& expr, const Schema& schema,
                            const ColumnarTable& ct) {
  const bool is_and = expr.op() == LogicalExpr::Op::kAnd;
  std::vector<Node> kids;
  for (const auto& child : expr.children()) {
    AUTOCAT_ASSIGN_OR_RETURN(Node node, CompileExpr(*child, schema, ct));
    if (is_and) {
      if (node.kind == Node::Kind::kConstFalse) {
        // Constant-false conjunct: the row path short-circuits every row
        // before reaching later children, so their (possibly
        // uncompilable) semantics can never be observed.
        return ConstNode(false);
      }
      if (node.kind == Node::Kind::kConstTrue) {
        continue;
      }
    } else {
      if (node.kind == Node::Kind::kConstTrue) {
        return ConstNode(true);
      }
      if (node.kind == Node::Kind::kConstFalse) {
        continue;
      }
    }
    kids.push_back(std::move(node));
  }
  if (kids.empty()) {
    return ConstNode(is_and);
  }
  if (kids.size() == 1) {
    return std::move(kids.front());
  }
  Node out;
  out.kind = is_and ? Node::Kind::kAnd : Node::Kind::kOr;
  out.children = std::move(kids);
  return out;
}

Result<Node> CompileExpr(const Expr& expr, const Schema& schema,
                         const ColumnarTable& ct) {
  switch (expr.kind()) {
    case ExprKind::kComparison:
      return CompileComparison(static_cast<const ComparisonExpr&>(expr),
                               schema, ct);
    case ExprKind::kInList:
      return CompileInList(static_cast<const InListExpr&>(expr), schema,
                           ct);
    case ExprKind::kBetween:
      return CompileBetween(static_cast<const BetweenExpr&>(expr), schema,
                            ct);
    case ExprKind::kIsNull:
      return CompileIsNull(static_cast<const IsNullExpr&>(expr), schema,
                           ct);
    case ExprKind::kLogical:
      return CompileLogical(static_cast<const LogicalExpr&>(expr), schema,
                            ct);
  }
  return NotCovered("unknown expression kind");
}

// ---- profile conditions ----------------------------------------------

Result<Node> CompileCondition(const AttributeCondition& cond,
                              const Column& col, const std::string& attr) {
  const int cc = ClassOfColumn(col.type);
  if (cond.is_range()) {
    if (cc != 1) {
      // Matches(): non-numeric cells never satisfy a range; NULL never
      // matches. (A NaN cell, however, satisfies *every* range — the
      // literal Contains() translation below preserves that.)
      return ConstNode(false);
    }
    const NumericRange range = cond.range;
    if (col.type == ValueType::kInt64) {
      return MaskedLeaf(&col, [vals = col.i64.data(), range](size_t r) {
        const double x = static_cast<double>(vals[r]);
        const bool out_lo =
            (x < range.lo) | ((x == range.lo) & !range.lo_inclusive);
        const bool out_hi =
            (x > range.hi) | ((x == range.hi) & !range.hi_inclusive);
        return !(out_lo | out_hi);
      });
    }
    return MaskedLeaf(&col, [vals = col.f64.data(), range](size_t r) {
      const double x = vals[r];
      const bool out_lo =
          (x < range.lo) | ((x == range.lo) & !range.lo_inclusive);
      const bool out_hi =
          (x > range.hi) | ((x == range.hi) & !range.hi_inclusive);
      return !(out_lo | out_hi);
    });
  }
  // Value set: only members of the column's comparison class can be equal
  // to a cell; mixed-class members are simply never matched by the
  // std::set<Value>::count tree walk (the value order is total), so they
  // are dropped here — except NaN members, which break the set's strict
  // weak ordering and make count() layout-dependent: refuse those.
  if (cc == 0) {
    return ConstNode(false);
  }
  if (cc == 2) {
    std::vector<uint8_t> member(col.dict.size() + 1, 0);
    bool any = false;
    for (const Value& v : cond.values) {
      if (!v.is_string()) {
        continue;
      }
      const auto it = std::lower_bound(col.dict.begin(), col.dict.end(),
                                       v.string_value());
      if (it != col.dict.end() && *it == v.string_value()) {
        member[static_cast<size_t>(it - col.dict.begin())] = 1;
        any = true;
      }
    }
    if (!any) {
      return ConstNode(false);
    }
    return MaskedLeaf(&col, [codes = col.codes.data(),
                             member = std::move(member)](size_t r) {
      return member[codes[r]] != 0;
    });
  }
  bool any_numeric = false;
  std::vector<int64_t> vi;
  std::vector<double> vd;
  for (const Value& v : cond.values) {
    if (!v.is_numeric()) {
      continue;
    }
    any_numeric = true;
    if (v.is_double() && std::isnan(v.double_value())) {
      return NotCovered("NaN member in value set on '" + attr + "'");
    }
    if (col.type == ValueType::kInt64 && v.is_int64()) {
      vi.push_back(v.int64_value());
    } else {
      vd.push_back(v.AsDouble());
    }
  }
  if (!any_numeric) {
    return ConstNode(false);
  }
  std::sort(vi.begin(), vi.end());
  std::sort(vd.begin(), vd.end());
  if (col.type == ValueType::kInt64) {
    return MaskedLeaf(&col, [vals = col.i64.data(), vi = std::move(vi),
                             vd = std::move(vd)](size_t r) {
      const int64_t a = vals[r];
      return MemberOf(vi, a) ||
             (!vd.empty() && MemberOf(vd, static_cast<double>(a)));
    });
  }
  return MaskedLeaf(&col, [vals = col.f64.data(), vd = std::move(vd),
                           any_numeric](size_t r) {
    const double a = vals[r];
    // A NaN cell is "equivalent" to any numeric member under the set's
    // comparator, so count() finds one iff a numeric member exists.
    return std::isnan(a) ? any_numeric : MemberOf(vd, a);
  });
}

// ---- evaluation ------------------------------------------------------

// A kernel chunk and a pipeline morsel are the same unit, so survivors
// flow from AppendMorselSurvivors straight into the pipeline sinks.
constexpr size_t kChunkRows = kMorselRows;

void EvalNode(const Node& node, size_t begin, size_t end, uint8_t* mask);

// All-leaf conjunction (the CompileProfile shape): evaluate the first
// child densely, then test later children only on the rows still alive,
// compacting the survivor list as it shrinks. The final mask is
// bit-identical to the dense merge in EvalNode: compiled leaves are
// exact and error-free, so evaluation order cannot be observed. Kept out
// of EvalNode so the survivor array is not stacked once per recursion
// level.
void EvalAndOfLeaves(const Node& node, size_t begin, size_t end,
                     uint8_t* mask) {
  const size_t n = end - begin;
  EvalNode(node.children.front(), begin, end, mask);
  uint32_t idx[kChunkRows];  // surviving offsets within the chunk
  size_t count = 0;
  for (size_t j = 0; j < n; ++j) {
    idx[count] = static_cast<uint32_t>(j);
    count += mask[j];
  }
  for (size_t i = 1; i < node.children.size() && count > 0; ++i) {
    const auto& pred = node.children[i].row_pred;
    size_t kept = 0;
    for (size_t k = 0; k < count; ++k) {
      const uint32_t j = idx[k];
      idx[kept] = j;
      kept += static_cast<size_t>(pred(begin + j));
    }
    count = kept;
  }
  std::fill_n(mask, n, uint8_t{0});
  for (size_t k = 0; k < count; ++k) {
    mask[idx[k]] = 1;
  }
}

void EvalNode(const Node& node, size_t begin, size_t end, uint8_t* mask) {
  const size_t n = end - begin;
  switch (node.kind) {
    case Node::Kind::kConstFalse:
      std::fill_n(mask, n, uint8_t{0});
      return;
    case Node::Kind::kConstTrue:
      std::fill_n(mask, n, uint8_t{1});
      return;
    case Node::Kind::kLeaf:
      node.leaf(begin, end, mask);
      return;
    case Node::Kind::kAnd:
    case Node::Kind::kOr: {
      if (node.kind == Node::Kind::kAnd && n <= kChunkRows &&
          std::all_of(node.children.begin(), node.children.end(),
                      [](const Node& c) {
                        return static_cast<bool>(c.row_pred);
                      })) {
        EvalAndOfLeaves(node, begin, end, mask);
        return;
      }
      EvalNode(node.children.front(), begin, end, mask);
      std::vector<uint8_t> tmp(n);
      const bool is_and = node.kind == Node::Kind::kAnd;
      for (size_t i = 1; i < node.children.size(); ++i) {
        EvalNode(node.children[i], begin, end, tmp.data());
        if (is_and) {
          for (size_t j = 0; j < n; ++j) {
            mask[j] &= tmp[j];
          }
        } else {
          for (size_t j = 0; j < n; ++j) {
            mask[j] |= tmp[j];
          }
        }
      }
      return;
    }
  }
}

}  // namespace

Result<CompiledPredicate> CompiledPredicate::Compile(
    const Expr& expr, const Schema& schema,
    std::shared_ptr<const ColumnarTable> columnar) {
  if (columnar == nullptr) {
    return Status::NotSupported("no columnar shadow");
  }
  AUTOCAT_ASSIGN_OR_RETURN(Node root, CompileExpr(expr, schema, *columnar));
  return CompiledPredicate(std::move(columnar), std::move(root));
}

Result<CompiledPredicate> CompiledPredicate::CompileProfile(
    const SelectionProfile& profile, const Schema& schema,
    std::shared_ptr<const ColumnarTable> columnar) {
  if (columnar == nullptr) {
    return Status::NotSupported("no columnar shadow");
  }
  std::vector<Node> kids;
  bool const_false = false;
  for (const auto& [attr, cond] : profile.conditions()) {
    const auto col_idx = schema.ColumnIndex(attr);
    if (!col_idx.ok()) {
      // MatchesRow: an unknown attribute makes every row non-matching.
      const_false = true;
      break;
    }
    const Column& col = columnar->column(col_idx.value());
    if (!col.regular) {
      return NotCovered("irregular column '" + attr + "'");
    }
    AUTOCAT_ASSIGN_OR_RETURN(Node node, CompileCondition(cond, col, attr));
    if (node.kind == Node::Kind::kConstFalse) {
      const_false = true;
      break;
    }
    if (node.kind != Node::Kind::kConstTrue) {
      kids.push_back(std::move(node));
    }
  }
  Node root;
  if (const_false) {
    root = ConstNode(false);
  } else if (kids.empty()) {
    root = ConstNode(true);
  } else if (kids.size() == 1) {
    root = std::move(kids.front());
  } else {
    root.kind = Node::Kind::kAnd;
    root.children = std::move(kids);
  }
  return CompiledPredicate(std::move(columnar), std::move(root));
}

size_t CompiledPredicate::num_morsels() const {
  return NumMorsels(num_rows());
}

void CompiledPredicate::AppendMorselSurvivors(
    size_t m, std::vector<uint32_t>* out) const {
  const size_t n = num_rows();
  const size_t begin = m * kChunkRows;
  const size_t end = std::min(n, begin + kChunkRows);
  if (begin >= end) {
    return;
  }
  uint8_t mask[kChunkRows];
  EvalNode(root_, begin, end, mask);
  for (size_t r = begin; r < end; ++r) {
    if (mask[r - begin] != 0) {
      out->push_back(static_cast<uint32_t>(r));
    }
  }
}

Result<std::vector<uint32_t>> CompiledPredicate::Filter(
    const ParallelOptions& parallel) const {
  const size_t n = num_rows();
  std::vector<uint32_t> out;
  if (n == 0) {
    return out;
  }
  const size_t chunks = num_morsels();
  if (parallel.ResolvedThreads() <= 1 || chunks <= 1) {
    // Sequential fast path: identical chunking, appended in chunk order.
    for (size_t chunk = 0; chunk < chunks; ++chunk) {
      AppendMorselSurvivors(chunk, &out);
    }
    return out;
  }
  // Per-chunk shards merged in chunk order: bit-identical to the
  // sequential path at any thread count. Dispatch goes through the morsel
  // scheduler — the sole ParallelFor site for the exec/serve layers.
  std::vector<std::vector<uint32_t>> shards(chunks);
  AUTOCAT_RETURN_IF_ERROR(MorselScheduler::Run(
      parallel, chunks, [&](size_t chunk) -> Status {
        AppendMorselSurvivors(chunk, &shards[chunk]);
        return Status::OK();
      }));
  size_t total = 0;
  for (const auto& shard : shards) {
    total += shard.size();
  }
  out.reserve(total);
  for (const auto& shard : shards) {
    out.insert(out.end(), shard.begin(), shard.end());
  }
  return out;
}

}  // namespace autocat
