#include "exec/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "exec/pipeline/morsel.h"
#include "exec/pipeline/scheduler.h"
#include "exec/simd_kernels.h"

namespace autocat {

namespace {

using Node = CompiledPredicate::Node;
using Column = ColumnarTable::Column;

Node ConstNode(bool value) {
  Node node;
  node.kind = value ? Node::Kind::kConstTrue : Node::Kind::kConstFalse;
  return node;
}

Node LeafNode(std::function<void(size_t, size_t, uint8_t*)> fn) {
  Node node;
  node.kind = Node::Kind::kLeaf;
  node.leaf = std::move(fn);
  return node;
}

Status NotCovered(const std::string& what) {
  return Status::NotSupported("predicate not covered by columnar kernels: " +
                              what);
}

// Comparison class of Value::Compare: numerics are one class, strings
// another (NULL literals are handled before classification).
int ClassOf(const Value& v) { return v.is_numeric() ? 1 : 2; }

int ClassOfColumn(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 1;
    case ValueType::kString:
      return 2;
    case ValueType::kNull:
      return 0;
  }
  return 0;
}

// Encodes a comparison op as a truth table over the three-way result
// c in {-1, 0, 1}: bit (c + 1) set <=> the op accepts c. The three-way
// compare in every kernel is Cmp3 below, which matches Value::Compare
// exactly: NaN operands yield c == 0 — "equal" — just as on the row path.
uint8_t OpTruthTable(ComparisonOp op) {
  switch (op) {
    case ComparisonOp::kEq:
      return 0b010;
    case ComparisonOp::kNotEq:
      return 0b101;
    case ComparisonOp::kLess:
      return 0b001;
    case ComparisonOp::kLessEq:
      return 0b011;
    case ComparisonOp::kGreater:
      return 0b100;
    case ComparisonOp::kGreaterEq:
      return 0b110;
  }
  return 0;
}

// ---- branchless helpers ----------------------------------------------
//
// The per-row loops below avoid data-dependent branches: on ~random data
// every short-circuit `&&` and every `?:` three-way compare mispredicts,
// which costs an order of magnitude more than the arithmetic it saves.
// Leaves also capture raw array pointers (stable for the lifetime of the
// shared shadow) rather than the Column*, so the `uint8_t* mask` stores —
// which may alias anything — cannot force the compiler to reload the
// vector data pointers on every iteration.

// Three-way compare, branch-free: (a > b) - (a < b) is -1/0/1, with NaN
// operands yielding 0 ("equal") exactly like Value::Compare.
template <typename T>
int Cmp3(T a, T b) {
  return static_cast<int>(a > b) - static_cast<int>(a < b);
}

// Exact membership in a sorted vector: small sets scan linearly (branch
// free, vectorizable); larger ones binary-search.
bool MemberOf(const std::vector<int64_t>& v, int64_t a) {
  if (v.size() > 16) {
    return std::binary_search(v.begin(), v.end(), a);
  }
  bool found = false;
  for (const int64_t x : v) {
    found |= (a == x);
  }
  return found;
}

bool MemberOf(const std::vector<double>& v, double a) {
  if (v.size() > 16) {
    return std::binary_search(v.begin(), v.end(), a);
  }
  bool found = false;
  for (const double x : v) {
    found |= (a == x);
  }
  return found;
}

// ---- zone proving + SIMD plumbing ------------------------------------

using ZV = CompiledPredicate::ZoneVerdict;
using ZoneFn = std::function<ZV(size_t)>;
using SimdFill = std::function<bool(size_t begin, size_t end,
                                    uint64_t* bits)>;

double DoubleFromBits(uint64_t bits) {
  double d = 0;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

// Expands a row-per-bit verdict bitmap into the 0/1 byte-mask protocol of
// the leaf kernels: 8 bits become 8 bytes per step via the multiply
// spread (replicate the byte into every lane, isolate one bit per lane,
// saturate it down to 0/1).
void ExpandBits(const uint64_t* bits, size_t n, uint8_t* mask) {
  size_t j = 0;
  for (size_t w = 0; j < n; ++w) {
    uint64_t word = bits[w];
    for (int byte = 0; byte < 8 && j < n; ++byte, word >>= 8) {
      uint64_t m = (word & 0xff) * 0x0101010101010101ULL;
      m &= 0x8040201008040201ULL;
      m = ((m + 0x7f7f7f7f7f7f7f7fULL) >> 7) & 0x0101010101010101ULL;
      if (n - j >= 8) {
        std::memcpy(mask + j, &m, 8);
        j += 8;
      } else {
        std::memcpy(mask + j, &m, n - j);
        j = n;
      }
    }
  }
}

// Truth-table bits reachable by a Cmp3 result in [cmin, cmax]. The
// three-way compare against a fixed literal is monotone non-decreasing in
// the cell value, so the verdicts of a zone's cells lie between the
// verdicts of its extrema — the reachable set is exactly this interval
// (and a superset is sound for both all-fail and all-pass anyway).
uint8_t PossibleBits(int cmin, int cmax) {
  uint8_t possible = 0;
  for (int c = cmin; c <= cmax; ++c) {
    possible |= static_cast<uint8_t>(1 << (c + 1));
  }
  return possible;
}

// all-fail when no reachable class is accepted; all-pass when every
// reachable class is accepted; otherwise unprovable.
ZV TableZoneVerdict(uint8_t possible, uint8_t table) {
  if ((table & possible) == 0) {
    return ZV::kAllFail;
  }
  if ((possible & static_cast<uint8_t>(~table) & 0b111) == 0) {
    return ZV::kAllPass;
  }
  return ZV::kMixed;
}

// Wraps a per-row predicate (null handling excluded) into a leaf that
// masks NULL rows off with the null bitmap — or skips the bitmap
// entirely when the column has no NULLs. The predicate is evaluated
// unconditionally: NULL slots hold in-range defaults (0 / 0.0 / code 0,
// see ColumnarTable::Build), so the loads are safe and the `&` keeps the
// result exact.
//
// When `simd_fill` is provided the leaf first offers the span to the
// vector kernel. Morsel dispatch always starts chunks on a multiple of
// kMorselRows (a multiple of 64), so the verdict words line up with the
// null-bitmap words and the NULL mask is a word-wise ANDNOT instead of a
// per-row bit probe. The kernel either produces bit-identical verdicts
// or declines (no AVX2, test override), in which case the scalar loop
// runs — the mask is the same either way.
template <typename Pred>
Node MaskedLeafSimd(const Column* col, Pred pred, SimdFill simd_fill) {
  Node node;
  if (col->null_count == 0) {
    node = LeafNode([pred, simd_fill](size_t begin, size_t end,
                                      uint8_t* mask) {
      if (simd_fill && (begin & 63) == 0 && end - begin <= kMorselRows) {
        uint64_t bits[kMorselRows / 64];
        if (simd_fill(begin, end, bits)) {
          ExpandBits(bits, end - begin, mask);
          return;
        }
      }
      for (size_t r = begin; r < end; ++r) {
        mask[r - begin] = static_cast<uint8_t>(pred(r));
      }
    });
    node.row_pred = pred;
    node.simd = static_cast<bool>(simd_fill);
    return node;
  }
  const uint64_t* null_words = col->null_words.data();
  node = LeafNode([null_words, pred, simd_fill](size_t begin, size_t end,
                                                uint8_t* mask) {
    if (simd_fill && (begin & 63) == 0 && end - begin <= kMorselRows) {
      uint64_t bits[kMorselRows / 64];
      if (simd_fill(begin, end, bits)) {
        const size_t words = (end - begin + 63) / 64;
        for (size_t w = 0; w < words; ++w) {
          bits[w] &= ~null_words[(begin >> 6) + w];
        }
        ExpandBits(bits, end - begin, mask);
        return;
      }
    }
    for (size_t r = begin; r < end; ++r) {
      const auto not_null =
          static_cast<uint8_t>(~(null_words[r >> 6] >> (r & 63)) & 1);
      mask[r - begin] = static_cast<uint8_t>(not_null & pred(r));
    }
  });
  node.row_pred = [null_words, pred](size_t r) {
    return ((~(null_words[r >> 6] >> (r & 63)) & 1) != 0) && pred(r);
  };
  node.simd = static_cast<bool>(simd_fill);
  return node;
}

template <typename Pred>
Node MaskedLeaf(const Column* col, Pred pred) {
  return MaskedLeafSimd(col, std::move(pred), SimdFill());
}

// Wraps an extrema-level prover `zp` — a verdict about a zone's non-NULL,
// non-NaN cells, derived from its ZoneEntry — into the per-morsel zone fn
// of a MaskedLeaf, restoring the cells the extrema do not describe: NULL
// rows always fail a masked leaf, so all-pass additionally requires a
// NULL-free zone (all-NULL zones fail outright); NaN cells get the leaf's
// compile-time constant verdict `nan_pass`, so a has_nan zone keeps
// all-pass only when NaN passes too, and all-fail only when NaN fails.
// An all-NaN zone retains zeroed extrema — still sound, because `zp`'s
// claim then quantifies over zero cells and only the NaN/NULL
// adjustments decide the verdict.
template <typename ZP>
ZoneFn MaskedZone(const Column* col, bool nan_pass, ZP zp) {
  if (col->zones.empty()) {
    return nullptr;
  }
  const ZoneEntry* zones = col->zones.data();
  const size_t num_zones = col->zones.size();
  return [zones, num_zones, nan_pass, zp](size_t m) {
    if (m >= num_zones) {
      return ZV::kMixed;
    }
    const ZoneEntry& z = zones[m];
    if (z.valid_count == 0) {
      return ZV::kAllFail;
    }
    ZV v = zp(z);
    if (z.has_nan && ((v == ZV::kAllPass && !nan_pass) ||
                      (v == ZV::kAllFail && nan_pass))) {
      v = ZV::kMixed;
    }
    if (v == ZV::kAllPass && z.valid_count != z.row_count) {
      v = ZV::kMixed;
    }
    return v;
  };
}

// Zone prover for dictionary-code accept tables: prefix sums turn "how
// many accepted codes lie in [min_code, max_code]" into O(1) per zone.
// The dictionary is sorted, so the code extrema bound the zone's codes
// exactly; a full interval of accepted codes proves all-pass, an empty
// one all-fail.
ZoneFn DictZone(const Column* col, const std::vector<uint8_t>& accept) {
  if (col->zones.empty()) {
    return nullptr;
  }
  auto prefix =
      std::make_shared<std::vector<uint32_t>>(col->dict.size() + 1, 0);
  for (size_t c = 0; c < col->dict.size(); ++c) {
    (*prefix)[c + 1] = (*prefix)[c] + accept[c];
  }
  return MaskedZone(
      col, /*nan_pass=*/false,
      [prefix, n = col->dict.size()](const ZoneEntry& z) {
        const uint64_t lo = z.min_bits;
        const uint64_t hi = z.max_bits;
        if (hi >= n || lo > hi) {
          return ZV::kMixed;  // defensive: never trust corrupt extrema
        }
        const uint32_t hits = (*prefix)[hi + 1] - (*prefix)[lo];
        if (hits == 0) {
          return ZV::kAllFail;
        }
        if (hits == hi - lo + 1) {
          return ZV::kAllPass;
        }
        return ZV::kMixed;
      });
}

// Widens a compiled uint8 accept table once (the gather kernel reads full
// 32-bit lanes) and binds the AcceptCodes SIMD fill for `col`'s codes.
SimdFill DictSimd(const Column* col, const std::vector<uint8_t>& accept) {
  auto accept32 = std::make_shared<std::vector<uint32_t>>(accept.begin(),
                                                          accept.end());
  return [codes = col->codes.data(), accept32](size_t begin, size_t end,
                                               uint64_t* bits) {
    return simd::AcceptCodes(codes + begin, end - begin, accept32->data(),
                             accept32->size(), bits);
  };
}

// ---- comparison kernels ----------------------------------------------

Node NumericCompareLeaf(const Column* col, const Value& lit, uint8_t table) {
  if (col->type == ValueType::kInt64 && lit.is_int64()) {
    // Both int64: Value::Compare compares exactly, with no double
    // round-trip (distinguishes 2^53 + 1 from 2^53).
    const int64_t b = lit.int64_value();
    const int64_t* vals = col->i64.data();
    Node node = MaskedLeafSimd(
        col,
        [vals, b, table](size_t r) {
          return ((table >> (Cmp3(vals[r], b) + 1)) & 1) != 0;
        },
        [vals, b, table](size_t begin, size_t end, uint64_t* bits) {
          return simd::CompareI64(vals + begin, end - begin, b, table,
                                  bits);
        });
    node.zone = MaskedZone(
        col, /*nan_pass=*/false, [b, table](const ZoneEntry& z) {
          const int cmin = Cmp3(static_cast<int64_t>(z.min_bits), b);
          const int cmax = Cmp3(static_cast<int64_t>(z.max_bits), b);
          return TableZoneVerdict(PossibleBits(cmin, cmax), table);
        });
    return node;
  }
  if (col->type == ValueType::kInt64) {
    // int64 cell vs double literal: mixed numerics widen via AsDouble.
    // Scalar only (AVX2 has no packed int64->double conversion), but the
    // cast is monotone, so the zone prover still applies to the widened
    // extrema.
    const double b = lit.double_value();
    Node node = MaskedLeaf(col, [vals = col->i64.data(), b,
                                 table](size_t r) {
      return ((table >> (Cmp3(static_cast<double>(vals[r]), b) + 1)) & 1) !=
             0;
    });
    node.zone = MaskedZone(
        col, /*nan_pass=*/false, [b, table](const ZoneEntry& z) {
          const int cmin = Cmp3(
              static_cast<double>(static_cast<int64_t>(z.min_bits)), b);
          const int cmax = Cmp3(
              static_cast<double>(static_cast<int64_t>(z.max_bits)), b);
          return TableZoneVerdict(PossibleBits(cmin, cmax), table);
        });
    return node;
  }
  const double b = lit.AsDouble();
  const double* vals = col->f64.data();
  Node node = MaskedLeafSimd(
      col,
      [vals, b, table](size_t r) {
        return ((table >> (Cmp3(vals[r], b) + 1)) & 1) != 0;
      },
      [vals, b, table](size_t begin, size_t end, uint64_t* bits) {
        return simd::CompareF64(vals + begin, end - begin, b, table, bits);
      });
  // NaN cells land on c == 0, the bit the literal's truth table accepts
  // or rejects uniformly; a NaN literal pins every comparison (extrema
  // included) to c == 0, so the possible-bits interval stays exact.
  node.zone = MaskedZone(
      col, /*nan_pass=*/((table >> 1) & 1) != 0,
      [b, table](const ZoneEntry& z) {
        const int cmin = Cmp3(DoubleFromBits(z.min_bits), b);
        const int cmax = Cmp3(DoubleFromBits(z.max_bits), b);
        return TableZoneVerdict(PossibleBits(cmin, cmax), table);
      });
  return node;
}

Node StringCompareLeaf(const Column* col, const std::string& s,
                       uint8_t table) {
  // p = first dictionary code with dict[code] >= s. Because the dictionary
  // is sorted, cell < s <=> code < p; when s is present, cell == s <=>
  // code == p; when absent, no cell equals s (c never 0 below). The
  // verdict depends only on the code, so it is precomputed per code and
  // the per-row loop is a single table lookup.
  const auto it = std::lower_bound(col->dict.begin(), col->dict.end(), s);
  const uint32_t p = static_cast<uint32_t>(it - col->dict.begin());
  const bool present = it != col->dict.end() && *it == s;
  std::vector<uint8_t> accept(col->dict.size() + 1, 0);
  for (uint32_t code = 0; code < col->dict.size(); ++code) {
    const int c = present ? Cmp3(code, p) : (code < p ? -1 : 1);
    accept[code] = static_cast<uint8_t>((table >> (c + 1)) & 1);
  }
  ZoneFn zone = DictZone(col, accept);
  SimdFill fill = DictSimd(col, accept);
  Node node = MaskedLeafSimd(col,
                             [codes = col->codes.data(),
                              accept = std::move(accept)](size_t r) {
                               return accept[codes[r]] != 0;
                             },
                             std::move(fill));
  node.zone = std::move(zone);
  return node;
}

Result<Node> CompileComparison(const ComparisonExpr& cmp,
                               const Schema& schema,
                               const ColumnarTable& ct) {
  const auto col_idx = schema.ColumnIndex(cmp.column());
  if (!col_idx.ok()) {
    // Unknown column: the row path errors per evaluated row (so a zero-row
    // table does NOT error). Refusing reproduces both outcomes.
    return NotCovered("unknown column '" + cmp.column() + "'");
  }
  const Column& col = ct.column(col_idx.value());
  if (!col.regular) {
    return NotCovered("irregular column '" + cmp.column() + "'");
  }
  const Value& lit = cmp.literal();
  if (lit.is_null()) {
    return ConstNode(false);  // comparison with NULL never matches
  }
  const int cc = ClassOfColumn(col.type);
  if (cc != ClassOf(lit)) {
    if (col.null_count == ct.num_rows()) {
      // Every cell NULL: the row path returns false before the
      // string-vs-numeric comparability check can error.
      return ConstNode(false);
    }
    // The row path errors on the first non-NULL cell — but only if
    // evaluation reaches it (AND/OR short-circuit): data-dependent, so
    // fall back rather than approximate.
    return NotCovered("class mismatch on column '" + cmp.column() + "'");
  }
  const uint8_t table = OpTruthTable(cmp.op());
  if (cc == 2) {
    return StringCompareLeaf(&col, lit.string_value(), table);
  }
  return NumericCompareLeaf(&col, lit, table);
}

// ---- IN (...) kernels ------------------------------------------------

Result<Node> CompileInList(const InListExpr& in, const Schema& schema,
                           const ColumnarTable& ct) {
  const auto col_idx = schema.ColumnIndex(in.column());
  if (!col_idx.ok()) {
    return NotCovered("unknown column '" + in.column() + "'");
  }
  const Column& col = ct.column(col_idx.value());
  if (!col.regular) {
    return NotCovered("irregular column '" + in.column() + "'");
  }
  const int cc = ClassOfColumn(col.type);
  if (cc == 0 || col.null_count == ct.num_rows()) {
    // NULL cells return false *before* negation applies.
    return ConstNode(false);
  }
  for (const Value& v : in.values()) {
    if (!v.is_null() && ClassOf(v) != cc) {
      // Row path: error on the first cell that actually reaches this
      // literal (the scan breaks as soon as an earlier literal matches).
      return NotCovered("class mismatch in IN list on '" + in.column() +
                        "'");
    }
  }
  const bool negated = in.negated();
  if (cc == 2) {
    // Dictionary-code membership bitset (size + 1 so data() stays valid
    // for an empty dictionary; NULL rows carry code 0 and are masked).
    // NOT IN flips the bits up front so the loop stays a plain lookup.
    std::vector<uint8_t> member(col.dict.size() + 1, 0);
    for (const Value& v : in.values()) {
      if (v.is_null()) {
        continue;
      }
      const auto it = std::lower_bound(col.dict.begin(), col.dict.end(),
                                       v.string_value());
      if (it != col.dict.end() && *it == v.string_value()) {
        member[static_cast<size_t>(it - col.dict.begin())] = 1;
      }
    }
    if (negated) {
      for (size_t code = 0; code < col.dict.size(); ++code) {
        member[code] ^= 1;
      }
    }
    ZoneFn zone = DictZone(&col, member);
    SimdFill fill = DictSimd(&col, member);
    Node node = MaskedLeafSimd(&col,
                               [codes = col.codes.data(),
                                member = std::move(member)](size_t r) {
                                 return member[codes[r]] != 0;
                               },
                               std::move(fill));
    node.zone = std::move(zone);
    return node;
  }
  // Numeric column. int64 literals are kept exact for int64 columns; a
  // NaN literal compares "equal" to every numeric cell under
  // Value::Compare, so it matches every non-NULL row.
  bool match_all = false;
  if (col.type == ValueType::kInt64) {
    std::vector<int64_t> vi;
    std::vector<double> vd;
    for (const Value& v : in.values()) {
      if (v.is_null()) {
        continue;
      }
      if (v.is_int64()) {
        vi.push_back(v.int64_value());
      } else if (std::isnan(v.double_value())) {
        match_all = true;
      } else {
        vd.push_back(v.double_value());
      }
    }
    std::sort(vi.begin(), vi.end());
    std::sort(vd.begin(), vd.end());
    // Zone prover: a NaN literal matches everything (uniform verdict); a
    // constant zone evaluates the membership once; a zone whose value
    // range misses every member (both lists sorted) proves no match.
    // Overlap proves nothing — membership inside the range stays kMixed.
    ZoneFn zone = MaskedZone(
        &col, /*nan_pass=*/false,
        [vi, vd, match_all, negated](const ZoneEntry& z) {
          const int64_t zmin = static_cast<int64_t>(z.min_bits);
          const int64_t zmax = static_cast<int64_t>(z.max_bits);
          if (match_all) {
            return negated ? ZV::kAllFail : ZV::kAllPass;
          }
          if (zmin == zmax) {
            const bool found =
                MemberOf(vi, zmin) ||
                (!vd.empty() && MemberOf(vd, static_cast<double>(zmin)));
            return found != negated ? ZV::kAllPass : ZV::kAllFail;
          }
          const bool vi_overlap =
              !vi.empty() && vi.back() >= zmin && vi.front() <= zmax;
          const bool vd_overlap = !vd.empty() &&
                                  vd.back() >= static_cast<double>(zmin) &&
                                  vd.front() <= static_cast<double>(zmax);
          if (!vi_overlap && !vd_overlap) {
            return negated ? ZV::kAllPass : ZV::kAllFail;
          }
          return ZV::kMixed;
        });
    Node node = MaskedLeaf(&col, [vals = col.i64.data(), vi = std::move(vi),
                                  vd = std::move(vd), match_all,
                                  negated](size_t r) {
      const int64_t a = vals[r];
      const bool found =
          match_all || MemberOf(vi, a) ||
          (!vd.empty() && MemberOf(vd, static_cast<double>(a)));
      return found != negated;
    });
    node.zone = std::move(zone);
    return node;
  }
  bool any_numeric = false;
  std::vector<double> vd;
  for (const Value& v : in.values()) {
    if (v.is_null()) {
      continue;
    }
    any_numeric = true;
    const double d = v.AsDouble();
    if (std::isnan(d)) {
      match_all = true;
    } else {
      vd.push_back(d);
    }
  }
  std::sort(vd.begin(), vd.end());
  // nan_pass: a NaN cell matches iff the list has a numeric entry, then
  // negation flips. A bit-constant zone (min_bits == max_bits) evaluates
  // once — sound even across ±0.0, which compare equal everywhere the
  // predicate looks.
  ZoneFn zone = MaskedZone(
      &col, /*nan_pass=*/any_numeric != negated,
      [vd, match_all, negated](const ZoneEntry& z) {
        const double zmin = DoubleFromBits(z.min_bits);
        const double zmax = DoubleFromBits(z.max_bits);
        if (match_all) {
          return negated ? ZV::kAllFail : ZV::kAllPass;
        }
        if (z.min_bits == z.max_bits) {
          return MemberOf(vd, zmin) != negated ? ZV::kAllPass
                                               : ZV::kAllFail;
        }
        if (vd.empty() || vd.back() < zmin || vd.front() > zmax) {
          return negated ? ZV::kAllPass : ZV::kAllFail;
        }
        return ZV::kMixed;
      });
  Node node = MaskedLeaf(&col, [vals = col.f64.data(), vd = std::move(vd),
                                match_all, any_numeric, negated](size_t r) {
    const double a = vals[r];
    // A NaN cell compares "equal" to the first numeric literal the row
    // scan reaches, so it matches iff the list has any numeric entry.
    const bool found =
        std::isnan(a) ? any_numeric : (match_all || MemberOf(vd, a));
    return found != negated;
  });
  node.zone = std::move(zone);
  return node;
}

// ---- BETWEEN kernels -------------------------------------------------

// One BETWEEN endpoint: int64 endpoints compare exactly against int64
// cells; everything else widens to double (Value::Compare semantics).
struct NumBound {
  bool is_int = false;
  int64_t i = 0;
  double d = 0;
};

NumBound MakeBound(const Value& v) {
  NumBound b;
  if (v.is_int64()) {
    b.is_int = true;
    b.i = v.int64_value();
    b.d = static_cast<double>(v.int64_value());
  } else {
    b.d = v.double_value();
  }
  return b;
}

Result<Node> CompileBetween(const BetweenExpr& bt, const Schema& schema,
                            const ColumnarTable& ct) {
  const auto col_idx = schema.ColumnIndex(bt.column());
  if (!col_idx.ok()) {
    return NotCovered("unknown column '" + bt.column() + "'");
  }
  const Column& col = ct.column(col_idx.value());
  if (!col.regular) {
    return NotCovered("irregular column '" + bt.column() + "'");
  }
  if (bt.lo().is_null() || bt.hi().is_null()) {
    // Row path returns false (before negation) for every row.
    return ConstNode(false);
  }
  const int cc = ClassOfColumn(col.type);
  if (cc == 0 || col.null_count == ct.num_rows()) {
    return ConstNode(false);  // NULL cells return false before negation
  }
  if (ClassOf(bt.lo()) != cc || ClassOf(bt.hi()) != cc) {
    return NotCovered("class mismatch in BETWEEN on '" + bt.column() + "'");
  }
  const bool negated = bt.negated();
  if (cc == 2) {
    // inside <=> lo <= cell <= hi <=> lb(lo) <= code < ub(hi); the verdict
    // depends only on the code, so precompute it per code.
    const auto lo_it = std::lower_bound(col.dict.begin(), col.dict.end(),
                                        bt.lo().string_value());
    const auto hi_it = std::upper_bound(col.dict.begin(), col.dict.end(),
                                        bt.hi().string_value());
    const uint32_t lo_code = static_cast<uint32_t>(lo_it - col.dict.begin());
    const uint32_t hi_code = static_cast<uint32_t>(hi_it - col.dict.begin());
    std::vector<uint8_t> accept(col.dict.size() + 1, 0);
    for (uint32_t code = 0; code < col.dict.size(); ++code) {
      const bool inside = code >= lo_code && code < hi_code;
      accept[code] = static_cast<uint8_t>(inside != negated);
    }
    ZoneFn zone = DictZone(&col, accept);
    SimdFill fill = DictSimd(&col, accept);
    Node node = MaskedLeafSimd(&col,
                               [codes = col.codes.data(),
                                accept = std::move(accept)](size_t r) {
                                 return accept[codes[r]] != 0;
                               },
                               std::move(fill));
    node.zone = std::move(zone);
    return node;
  }
  const NumBound lo = MakeBound(bt.lo());
  const NumBound hi = MakeBound(bt.hi());
  if (col.type == ValueType::kInt64) {
    Node node = MaskedLeaf(&col, [vals = col.i64.data(), lo, hi,
                                  negated](size_t r) {
      const int64_t a = vals[r];
      const int c1 = lo.is_int ? Cmp3(a, lo.i)
                               : Cmp3(static_cast<double>(a), lo.d);
      const int c2 = hi.is_int ? Cmp3(a, hi.i)
                               : Cmp3(static_cast<double>(a), hi.d);
      const bool inside = (c1 >= 0) & (c2 <= 0);
      return inside != negated;
    });
    // Interval membership is provable from extrema alone: both endpoints
    // inside means every cell inside (the per-bound compare is monotone
    // in the cell, NaN bounds included — a NaN bound compares c == 0 for
    // every cell, which is exactly what the row kernel computes).
    node.zone = MaskedZone(
        &col, /*nan_pass=*/false, [lo, hi, negated](const ZoneEntry& z) {
          const int64_t zmin = static_cast<int64_t>(z.min_bits);
          const int64_t zmax = static_cast<int64_t>(z.max_bits);
          const auto c_lo = [&lo](int64_t a) {
            return lo.is_int ? Cmp3(a, lo.i)
                             : Cmp3(static_cast<double>(a), lo.d);
          };
          const auto c_hi = [&hi](int64_t a) {
            return hi.is_int ? Cmp3(a, hi.i)
                             : Cmp3(static_cast<double>(a), hi.d);
          };
          if (c_lo(zmin) >= 0 && c_hi(zmax) <= 0) {
            return negated ? ZV::kAllFail : ZV::kAllPass;
          }
          if (c_lo(zmax) < 0 || c_hi(zmin) > 0) {
            return negated ? ZV::kAllPass : ZV::kAllFail;
          }
          return ZV::kMixed;
        });
    return node;
  }
  const double* fvals = col.f64.data();
  // The non-negated form is exactly RangeF64's inclusive-inclusive test,
  // NaN semantics included (a NaN cell — and a NaN bound — compares
  // "equal", putting the row inside). Negation inverts the mask, which
  // the bit kernel does not model, so NOT BETWEEN stays scalar.
  SimdFill fill;
  if (!negated) {
    fill = [fvals, lo, hi](size_t begin, size_t end, uint64_t* bits) {
      return simd::RangeF64(fvals + begin, end - begin, lo.d,
                            /*lo_inclusive=*/true, hi.d,
                            /*hi_inclusive=*/true, bits);
    };
  }
  Node node = MaskedLeafSimd(&col,
                             [vals = fvals, lo, hi, negated](size_t r) {
                               const double a = vals[r];
                               const bool inside = (Cmp3(a, lo.d) >= 0) &
                                                   (Cmp3(a, hi.d) <= 0);
                               return inside != negated;
                             },
                             std::move(fill));
  node.zone = MaskedZone(
      &col, /*nan_pass=*/!negated, [lo, hi, negated](const ZoneEntry& z) {
        const double zmin = DoubleFromBits(z.min_bits);
        const double zmax = DoubleFromBits(z.max_bits);
        if (Cmp3(zmin, lo.d) >= 0 && Cmp3(zmax, hi.d) <= 0) {
          return negated ? ZV::kAllFail : ZV::kAllPass;
        }
        if (Cmp3(zmax, lo.d) < 0 || Cmp3(zmin, hi.d) > 0) {
          return negated ? ZV::kAllPass : ZV::kAllFail;
        }
        return ZV::kMixed;
      });
  return node;
}

// ---- IS NULL / logical -----------------------------------------------

Result<Node> CompileIsNull(const IsNullExpr& expr, const Schema& schema,
                           const ColumnarTable& ct) {
  const auto col_idx = schema.ColumnIndex(expr.column());
  if (!col_idx.ok()) {
    return NotCovered("unknown column '" + expr.column() + "'");
  }
  const Column& col = ct.column(col_idx.value());
  const bool negated = expr.negated();
  // Uniform bitmaps fold to constants (the common no-NULL case skips the
  // per-row loop entirely); IS [NOT] NULL never errors on the row path,
  // so the fold is exact under AND/OR short-circuit too.
  if (col.null_count == 0) {
    return ConstNode(negated);
  }
  if (col.null_count == ct.num_rows()) {
    return ConstNode(!negated);
  }
  const auto flip = static_cast<uint64_t>(negated ? 1 : 0);
  const uint64_t* null_words = col.null_words.data();
  Node node = LeafNode([null_words, flip](size_t begin, size_t end,
                                          uint8_t* mask) {
    for (size_t r = begin; r < end; ++r) {
      mask[r - begin] = static_cast<uint8_t>(
          ((null_words[r >> 6] >> (r & 63)) & 1) ^ flip);
    }
  });
  node.row_pred = [null_words, flip](size_t r) {
    return (((null_words[r >> 6] >> (r & 63)) & 1) ^ flip) != 0;
  };
  // The zone counts decide IS [NOT] NULL exactly — no extrema involved.
  if (!col.zones.empty()) {
    node.zone = [zones = col.zones.data(), nz = col.zones.size(),
                 negated](size_t m) {
      if (m >= nz) {
        return CompiledPredicate::ZoneVerdict::kMixed;
      }
      const ZoneEntry& z = zones[m];
      const uint32_t matching =
          negated ? z.valid_count : z.row_count - z.valid_count;
      if (matching == 0) {
        return CompiledPredicate::ZoneVerdict::kAllFail;
      }
      if (matching == z.row_count) {
        return CompiledPredicate::ZoneVerdict::kAllPass;
      }
      return CompiledPredicate::ZoneVerdict::kMixed;
    };
  }
  return node;
}

Result<Node> CompileExpr(const Expr& expr, const Schema& schema,
                         const ColumnarTable& ct);

Result<Node> CompileLogical(const LogicalExpr& expr, const Schema& schema,
                            const ColumnarTable& ct) {
  const bool is_and = expr.op() == LogicalExpr::Op::kAnd;
  std::vector<Node> kids;
  for (const auto& child : expr.children()) {
    AUTOCAT_ASSIGN_OR_RETURN(Node node, CompileExpr(*child, schema, ct));
    if (is_and) {
      if (node.kind == Node::Kind::kConstFalse) {
        // Constant-false conjunct: the row path short-circuits every row
        // before reaching later children, so their (possibly
        // uncompilable) semantics can never be observed.
        return ConstNode(false);
      }
      if (node.kind == Node::Kind::kConstTrue) {
        continue;
      }
    } else {
      if (node.kind == Node::Kind::kConstTrue) {
        return ConstNode(true);
      }
      if (node.kind == Node::Kind::kConstFalse) {
        continue;
      }
    }
    kids.push_back(std::move(node));
  }
  if (kids.empty()) {
    return ConstNode(is_and);
  }
  if (kids.size() == 1) {
    return std::move(kids.front());
  }
  Node out;
  out.kind = is_and ? Node::Kind::kAnd : Node::Kind::kOr;
  out.children = std::move(kids);
  return out;
}

Result<Node> CompileExpr(const Expr& expr, const Schema& schema,
                         const ColumnarTable& ct) {
  switch (expr.kind()) {
    case ExprKind::kComparison:
      return CompileComparison(static_cast<const ComparisonExpr&>(expr),
                               schema, ct);
    case ExprKind::kInList:
      return CompileInList(static_cast<const InListExpr&>(expr), schema,
                           ct);
    case ExprKind::kBetween:
      return CompileBetween(static_cast<const BetweenExpr&>(expr), schema,
                            ct);
    case ExprKind::kIsNull:
      return CompileIsNull(static_cast<const IsNullExpr&>(expr), schema,
                           ct);
    case ExprKind::kLogical:
      return CompileLogical(static_cast<const LogicalExpr&>(expr), schema,
                            ct);
  }
  return NotCovered("unknown expression kind");
}

// ---- profile conditions ----------------------------------------------

Result<Node> CompileCondition(const AttributeCondition& cond,
                              const Column& col, const std::string& attr) {
  const int cc = ClassOfColumn(col.type);
  if (cond.is_range()) {
    if (cc != 1) {
      // Matches(): non-numeric cells never satisfy a range; NULL never
      // matches. (A NaN cell, however, satisfies *every* range — the
      // literal Contains() translation below preserves that.)
      return ConstNode(false);
    }
    const NumericRange range = cond.range;
    // Extrema prove ranges directly: out_lo is non-increasing and out_hi
    // non-decreasing in the cell, so the zone is all-inside iff its min
    // clears the low bound and its max clears the high bound, and
    // all-outside iff its max is below the range or its min above. NaN
    // cells are inside every range (nan_pass).
    const auto range_zone = [range](double zmin, double zmax) {
      const auto out_lo = [range](double x) {
        return ((x < range.lo) |
                ((x == range.lo) & !range.lo_inclusive)) != 0;
      };
      const auto out_hi = [range](double x) {
        return ((x > range.hi) |
                ((x == range.hi) & !range.hi_inclusive)) != 0;
      };
      if (!out_lo(zmin) && !out_hi(zmax)) {
        return ZV::kAllPass;
      }
      if (out_lo(zmax) || out_hi(zmin)) {
        return ZV::kAllFail;
      }
      return ZV::kMixed;
    };
    if (col.type == ValueType::kInt64) {
      Node node = MaskedLeaf(&col, [vals = col.i64.data(),
                                    range](size_t r) {
        const double x = static_cast<double>(vals[r]);
        const bool out_lo =
            (x < range.lo) | ((x == range.lo) & !range.lo_inclusive);
        const bool out_hi =
            (x > range.hi) | ((x == range.hi) & !range.hi_inclusive);
        return !(out_lo | out_hi);
      });
      node.zone = MaskedZone(
          &col, /*nan_pass=*/true, [range_zone](const ZoneEntry& z) {
            return range_zone(
                static_cast<double>(static_cast<int64_t>(z.min_bits)),
                static_cast<double>(static_cast<int64_t>(z.max_bits)));
          });
      return node;
    }
    const double* fvals = col.f64.data();
    Node node = MaskedLeafSimd(
        &col,
        [vals = fvals, range](size_t r) {
          const double x = vals[r];
          const bool out_lo =
              (x < range.lo) | ((x == range.lo) & !range.lo_inclusive);
          const bool out_hi =
              (x > range.hi) | ((x == range.hi) & !range.hi_inclusive);
          return !(out_lo | out_hi);
        },
        [fvals, range](size_t begin, size_t end, uint64_t* bits) {
          return simd::RangeF64(fvals + begin, end - begin, range.lo,
                                range.lo_inclusive, range.hi,
                                range.hi_inclusive, bits);
        });
    node.zone = MaskedZone(
        &col, /*nan_pass=*/true, [range_zone](const ZoneEntry& z) {
          return range_zone(DoubleFromBits(z.min_bits),
                            DoubleFromBits(z.max_bits));
        });
    return node;
  }
  // Value set: only members of the column's comparison class can be equal
  // to a cell; mixed-class members are simply never matched by the
  // std::set<Value>::count tree walk (the value order is total), so they
  // are dropped here — except NaN members, which break the set's strict
  // weak ordering and make count() layout-dependent: refuse those.
  if (cc == 0) {
    return ConstNode(false);
  }
  if (cc == 2) {
    std::vector<uint8_t> member(col.dict.size() + 1, 0);
    bool any = false;
    for (const Value& v : cond.values) {
      if (!v.is_string()) {
        continue;
      }
      const auto it = std::lower_bound(col.dict.begin(), col.dict.end(),
                                       v.string_value());
      if (it != col.dict.end() && *it == v.string_value()) {
        member[static_cast<size_t>(it - col.dict.begin())] = 1;
        any = true;
      }
    }
    if (!any) {
      return ConstNode(false);
    }
    ZoneFn zone = DictZone(&col, member);
    SimdFill fill = DictSimd(&col, member);
    Node node = MaskedLeafSimd(&col,
                               [codes = col.codes.data(),
                                member = std::move(member)](size_t r) {
                                 return member[codes[r]] != 0;
                               },
                               std::move(fill));
    node.zone = std::move(zone);
    return node;
  }
  bool any_numeric = false;
  std::vector<int64_t> vi;
  std::vector<double> vd;
  for (const Value& v : cond.values) {
    if (!v.is_numeric()) {
      continue;
    }
    any_numeric = true;
    if (v.is_double() && std::isnan(v.double_value())) {
      return NotCovered("NaN member in value set on '" + attr + "'");
    }
    if (col.type == ValueType::kInt64 && v.is_int64()) {
      vi.push_back(v.int64_value());
    } else {
      vd.push_back(v.AsDouble());
    }
  }
  if (!any_numeric) {
    return ConstNode(false);
  }
  std::sort(vi.begin(), vi.end());
  std::sort(vd.begin(), vd.end());
  if (col.type == ValueType::kInt64) {
    // Same zone shape as the IN-list prover: constant zones evaluate
    // once, member-disjoint ranges prove no match, overlap stays kMixed.
    ZoneFn zone = MaskedZone(
        &col, /*nan_pass=*/false, [vi, vd](const ZoneEntry& z) {
          const int64_t zmin = static_cast<int64_t>(z.min_bits);
          const int64_t zmax = static_cast<int64_t>(z.max_bits);
          if (zmin == zmax) {
            const bool found =
                MemberOf(vi, zmin) ||
                (!vd.empty() && MemberOf(vd, static_cast<double>(zmin)));
            return found ? ZV::kAllPass : ZV::kAllFail;
          }
          const bool vi_overlap =
              !vi.empty() && vi.back() >= zmin && vi.front() <= zmax;
          const bool vd_overlap = !vd.empty() &&
                                  vd.back() >= static_cast<double>(zmin) &&
                                  vd.front() <= static_cast<double>(zmax);
          if (!vi_overlap && !vd_overlap) {
            return ZV::kAllFail;
          }
          return ZV::kMixed;
        });
    Node node = MaskedLeaf(&col, [vals = col.i64.data(), vi = std::move(vi),
                                  vd = std::move(vd)](size_t r) {
      const int64_t a = vals[r];
      return MemberOf(vi, a) ||
             (!vd.empty() && MemberOf(vd, static_cast<double>(a)));
    });
    node.zone = std::move(zone);
    return node;
  }
  // any_numeric is true here (the empty set folded to const-false), so a
  // NaN cell always matches: nan_pass.
  ZoneFn zone = MaskedZone(
      &col, /*nan_pass=*/true, [vd](const ZoneEntry& z) {
        const double zmin = DoubleFromBits(z.min_bits);
        const double zmax = DoubleFromBits(z.max_bits);
        if (z.min_bits == z.max_bits) {
          return MemberOf(vd, zmin) ? ZV::kAllPass : ZV::kAllFail;
        }
        if (vd.empty() || vd.back() < zmin || vd.front() > zmax) {
          return ZV::kAllFail;
        }
        return ZV::kMixed;
      });
  Node node = MaskedLeaf(&col, [vals = col.f64.data(), vd = std::move(vd),
                                any_numeric](size_t r) {
    const double a = vals[r];
    // A NaN cell is "equivalent" to any numeric member under the set's
    // comparator, so count() finds one iff a numeric member exists.
    return std::isnan(a) ? any_numeric : MemberOf(vd, a);
  });
  node.zone = std::move(zone);
  return node;
}

// ---- evaluation ------------------------------------------------------

// A kernel chunk and a pipeline morsel are the same unit, so survivors
// flow from AppendMorselSurvivors straight into the pipeline sinks.
constexpr size_t kChunkRows = kMorselRows;

void EvalNode(const Node& node, size_t begin, size_t end, uint8_t* mask);

// All-leaf conjunction (the CompileProfile shape): evaluate the first
// child densely, then test later children only on the rows still alive,
// compacting the survivor list as it shrinks. The final mask is
// bit-identical to the dense merge in EvalNode: compiled leaves are
// exact and error-free, so evaluation order cannot be observed. Kept out
// of EvalNode so the survivor array is not stacked once per recursion
// level.
void EvalAndOfLeaves(const Node& node, size_t begin, size_t end,
                     uint8_t* mask) {
  const size_t n = end - begin;
  EvalNode(node.children.front(), begin, end, mask);
  uint32_t idx[kChunkRows];  // surviving offsets within the chunk
  size_t count = 0;
  for (size_t j = 0; j < n; ++j) {
    idx[count] = static_cast<uint32_t>(j);
    count += mask[j];
  }
  for (size_t i = 1; i < node.children.size() && count > 0; ++i) {
    const auto& pred = node.children[i].row_pred;
    size_t kept = 0;
    for (size_t k = 0; k < count; ++k) {
      const uint32_t j = idx[k];
      idx[kept] = j;
      kept += static_cast<size_t>(pred(begin + j));
    }
    count = kept;
  }
  std::fill_n(mask, n, uint8_t{0});
  for (size_t k = 0; k < count; ++k) {
    mask[idx[k]] = 1;
  }
}

void EvalNode(const Node& node, size_t begin, size_t end, uint8_t* mask) {
  const size_t n = end - begin;
  switch (node.kind) {
    case Node::Kind::kConstFalse:
      std::fill_n(mask, n, uint8_t{0});
      return;
    case Node::Kind::kConstTrue:
      std::fill_n(mask, n, uint8_t{1});
      return;
    case Node::Kind::kLeaf:
      node.leaf(begin, end, mask);
      return;
    case Node::Kind::kAnd:
    case Node::Kind::kOr: {
      if (node.kind == Node::Kind::kAnd && n <= kChunkRows &&
          std::all_of(node.children.begin(), node.children.end(),
                      [](const Node& c) {
                        return static_cast<bool>(c.row_pred);
                      })) {
        EvalAndOfLeaves(node, begin, end, mask);
        return;
      }
      EvalNode(node.children.front(), begin, end, mask);
      std::vector<uint8_t> tmp(n);
      const bool is_and = node.kind == Node::Kind::kAnd;
      for (size_t i = 1; i < node.children.size(); ++i) {
        EvalNode(node.children[i], begin, end, tmp.data());
        if (is_and) {
          for (size_t j = 0; j < n; ++j) {
            mask[j] &= tmp[j];
          }
        } else {
          for (size_t j = 0; j < n; ++j) {
            mask[j] |= tmp[j];
          }
        }
      }
      return;
    }
  }
}

// Composes leaf zone verdicts over the tree. AND: one all-fail child
// zeroes the conjunction, all-all-pass keeps every row; OR is the dual.
// A leaf without a prover (or a morsel outside its zone map) is simply
// unprovable — kMixed is always safe, so composition refuses rather than
// approximates and the verdict never contradicts EvalNode.
ZV NodeVerdict(const Node& node, size_t m) {
  switch (node.kind) {
    case Node::Kind::kConstFalse:
      return ZV::kAllFail;
    case Node::Kind::kConstTrue:
      return ZV::kAllPass;
    case Node::Kind::kLeaf:
      return node.zone ? node.zone(m) : ZV::kMixed;
    case Node::Kind::kAnd: {
      bool all_pass = true;
      for (const Node& child : node.children) {
        const ZV v = NodeVerdict(child, m);
        if (v == ZV::kAllFail) {
          return ZV::kAllFail;
        }
        all_pass &= (v == ZV::kAllPass);
      }
      return all_pass ? ZV::kAllPass : ZV::kMixed;
    }
    case Node::Kind::kOr: {
      bool all_fail = true;
      for (const Node& child : node.children) {
        const ZV v = NodeVerdict(child, m);
        if (v == ZV::kAllPass) {
          return ZV::kAllPass;
        }
        all_fail &= (v == ZV::kAllFail);
      }
      return all_fail ? ZV::kAllFail : ZV::kMixed;
    }
  }
  return ZV::kMixed;
}

bool TreeUsesSimd(const Node& node) {
  if (node.simd) {
    return true;
  }
  for (const Node& child : node.children) {
    if (TreeUsesSimd(child)) {
      return true;
    }
  }
  return false;
}

}  // namespace

CompiledPredicate::CompiledPredicate(
    std::shared_ptr<const ColumnarTable> columnar, Node root)
    : columnar_(std::move(columnar)),
      root_(std::move(root)),
      uses_simd_(TreeUsesSimd(root_)) {}

Result<CompiledPredicate> CompiledPredicate::Compile(
    const Expr& expr, const Schema& schema,
    std::shared_ptr<const ColumnarTable> columnar) {
  if (columnar == nullptr) {
    return Status::NotSupported("no columnar shadow");
  }
  AUTOCAT_ASSIGN_OR_RETURN(Node root, CompileExpr(expr, schema, *columnar));
  return CompiledPredicate(std::move(columnar), std::move(root));
}

Result<CompiledPredicate> CompiledPredicate::CompileProfile(
    const SelectionProfile& profile, const Schema& schema,
    std::shared_ptr<const ColumnarTable> columnar) {
  if (columnar == nullptr) {
    return Status::NotSupported("no columnar shadow");
  }
  std::vector<Node> kids;
  bool const_false = false;
  for (const auto& [attr, cond] : profile.conditions()) {
    const auto col_idx = schema.ColumnIndex(attr);
    if (!col_idx.ok()) {
      // MatchesRow: an unknown attribute makes every row non-matching.
      const_false = true;
      break;
    }
    const Column& col = columnar->column(col_idx.value());
    if (!col.regular) {
      return NotCovered("irregular column '" + attr + "'");
    }
    AUTOCAT_ASSIGN_OR_RETURN(Node node, CompileCondition(cond, col, attr));
    if (node.kind == Node::Kind::kConstFalse) {
      const_false = true;
      break;
    }
    if (node.kind != Node::Kind::kConstTrue) {
      kids.push_back(std::move(node));
    }
  }
  Node root;
  if (const_false) {
    root = ConstNode(false);
  } else if (kids.empty()) {
    root = ConstNode(true);
  } else if (kids.size() == 1) {
    root = std::move(kids.front());
  } else {
    root.kind = Node::Kind::kAnd;
    root.children = std::move(kids);
  }
  return CompiledPredicate(std::move(columnar), std::move(root));
}

size_t CompiledPredicate::num_morsels() const {
  return NumMorsels(num_rows());
}

CompiledPredicate::ZoneVerdict CompiledPredicate::MorselVerdict(
    size_t m) const {
  return NodeVerdict(root_, m);
}

void CompiledPredicate::AppendMorselSurvivors(
    size_t m, std::vector<uint32_t>* out) const {
  const size_t n = num_rows();
  const size_t begin = m * kChunkRows;
  const size_t end = std::min(n, begin + kChunkRows);
  if (begin >= end) {
    return;
  }
  switch (NodeVerdict(root_, m)) {
    case ZoneVerdict::kAllFail:
      return;  // proven empty: no cell is touched
    case ZoneVerdict::kAllPass: {
      // Proven full: dense append, no per-row evaluation.
      for (size_t r = begin; r < end; ++r) {
        out->push_back(static_cast<uint32_t>(r));
      }
      return;
    }
    case ZoneVerdict::kMixed:
      break;
  }
  uint8_t mask[kChunkRows];
  EvalNode(root_, begin, end, mask);
  for (size_t r = begin; r < end; ++r) {
    if (mask[r - begin] != 0) {
      out->push_back(static_cast<uint32_t>(r));
    }
  }
}

Result<std::vector<uint32_t>> CompiledPredicate::Filter(
    const ParallelOptions& parallel) const {
  const size_t n = num_rows();
  std::vector<uint32_t> out;
  if (n == 0) {
    return out;
  }
  const size_t chunks = num_morsels();
  if (parallel.ResolvedThreads() <= 1 || chunks <= 1) {
    // Sequential fast path: identical chunking, appended in chunk order.
    for (size_t chunk = 0; chunk < chunks; ++chunk) {
      AppendMorselSurvivors(chunk, &out);
    }
    return out;
  }
  // Per-chunk shards merged in chunk order: bit-identical to the
  // sequential path at any thread count. Dispatch goes through the morsel
  // scheduler — the sole ParallelFor site for the exec/serve layers.
  std::vector<std::vector<uint32_t>> shards(chunks);
  AUTOCAT_RETURN_IF_ERROR(MorselScheduler::Run(
      parallel, chunks, [&](size_t chunk) -> Status {
        AppendMorselSurvivors(chunk, &shards[chunk]);
        return Status::OK();
      }));
  size_t total = 0;
  for (const auto& shard : shards) {
    total += shard.size();
  }
  out.reserve(total);
  for (const auto& shard : shards) {
    out.insert(out.end(), shard.begin(), shard.end());
  }
  return out;
}

}  // namespace autocat
