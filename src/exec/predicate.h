#ifndef AUTOCAT_EXEC_PREDICATE_H_
#define AUTOCAT_EXEC_PREDICATE_H_

#include "common/result.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace autocat {

/// Evaluates a WHERE-clause expression against one row using SQL-like
/// semantics: a comparison/IN/BETWEEN over a NULL cell is false (our
/// boolean domain is two-valued; NULL propagates to "does not match"),
/// `IS NULL` tests NULL-ness directly, and comparing a string cell with a
/// numeric literal (or vice versa) is an error surfaced to the caller.
Result<bool> EvaluatePredicate(const Expr& expr, const Row& row,
                               const Schema& schema);

}  // namespace autocat

#endif  // AUTOCAT_EXEC_PREDICATE_H_
