#ifndef AUTOCAT_EXEC_KERNELS_H_
#define AUTOCAT_EXEC_KERNELS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "sql/ast.h"
#include "sql/selection.h"
#include "storage/columnar.h"
#include "storage/schema.h"

namespace autocat {

/// A WHERE clause (or serving-layer SelectionProfile) compiled into
/// vectorized per-column kernels over a `ColumnarTable`.
///
/// Compilation is *refuse-or-exact*: `Compile`/`CompileProfile` either
/// return a predicate whose `Filter` output is bit-identical to the
/// row-at-a-time path (`EvaluatePredicate` / `MatchesRow` over every row,
/// ascending), or they return `kNotSupported` and the caller falls back to
/// the row path. Compilation itself never surfaces data errors; in
/// particular it refuses whenever the row path *could* error (the
/// string-vs-numeric comparison error is data- and order-dependent, so any
/// literal whose comparison class differs from the column's storage class
/// forces a fallback unless the column is all-NULL, where no row-path
/// error can occur). The semantics-preservation argument is spelled out
/// in DESIGN.md §10.
///
/// `Filter` runs chunked through `ParallelFor` with per-chunk selection
/// shards merged in chunk order, so the selection vector is bit-identical
/// at any thread count.
class CompiledPredicate {
 public:
  /// Tri-state zone-prover verdict for one morsel: no row can match,
  /// every row must match, or unprovable (evaluate per row). Verdicts are
  /// *refuse-or-exact*: a prover that cannot decide says kMixed, never a
  /// wrong definite answer, so honoring kAllFail/kAllPass is always
  /// bit-identical to evaluating.
  enum class ZoneVerdict : uint8_t { kAllFail, kAllPass, kMixed };

  /// Implementation detail, public only so the compiler helpers in
  /// kernels.cc can build trees: a predicate node. Leaves fill a 0/1 mask
  /// for base rows [begin, end); And/Or combine child masks bitwise
  /// (valid because a compiled predicate is statically error-free, so
  /// short-circuit order cannot be observed).
  struct Node {
    enum class Kind { kConstFalse, kConstTrue, kAnd, kOr, kLeaf };
    Kind kind = Kind::kConstFalse;
    std::vector<Node> children;
    std::function<void(size_t begin, size_t end, uint8_t* mask)> leaf;
    /// Single-row form of `leaf` (same verdict for every row, including
    /// the null mask). Lets an all-leaf conjunction evaluate its first
    /// child densely and test later children only on surviving rows.
    std::function<bool(size_t row)> row_pred;
    /// Optional zone prover: a per-morsel verdict derived from the
    /// column's zone map, never contradicting `leaf`. Missing means every
    /// morsel is unprovable (kMixed).
    std::function<ZoneVerdict(size_t m)> zone;
    /// True when `leaf` routes dense morsels through the SIMD kernels.
    bool simd = false;
  };

  /// Compiles a WHERE expression against the table's schema and columnar
  /// shadow. Returns kNotSupported when any sub-expression is not covered
  /// exactly (caller falls back to the row path).
  static Result<CompiledPredicate> Compile(
      const Expr& expr, const Schema& schema,
      std::shared_ptr<const ColumnarTable> columnar);

  /// Compiles a serving-layer selection profile (conjunction of
  /// per-attribute conditions, `MatchesRow` semantics: an unknown
  /// attribute makes every row non-matching rather than erroring).
  static Result<CompiledPredicate> CompileProfile(
      const SelectionProfile& profile, const Schema& schema,
      std::shared_ptr<const ColumnarTable> columnar);

  /// Evaluates the predicate over every base row and returns the matching
  /// row indices in ascending order. Deterministic at any thread count.
  Result<std::vector<uint32_t>> Filter(const ParallelOptions& parallel) const;

  /// Morsel-granular evaluation for the push pipeline: appends the
  /// surviving base-row indices of morsel `m` (rows
  /// [m*kMorselRows, min(n, (m+1)*kMorselRows))) to `out`, ascending.
  /// Evaluating every morsel in index order reproduces `Filter` exactly.
  /// Consults the zone prover first: kAllFail morsels append nothing and
  /// kAllPass morsels append the dense row range, both without touching a
  /// single cell.
  void AppendMorselSurvivors(size_t m, std::vector<uint32_t>* out) const;

  /// Zone-prover verdict for morsel `m`, composed over the predicate tree
  /// (AND: any all-fail child zeroes it, all all-pass children keep it
  /// full; OR is the dual; anything else is kMixed). Schedulers use this
  /// to avoid dispatching kAllFail morsels at all.
  ZoneVerdict MorselVerdict(size_t m) const;

  /// True when some leaf routes dense morsels through the SIMD kernels
  /// (serving metrics attribution; the scalar fallback stays available
  /// per call).
  bool uses_simd() const { return uses_simd_; }

  size_t num_rows() const {
    return columnar_ == nullptr ? 0 : columnar_->num_rows();
  }

  /// Number of evaluation morsels (kMorselRows-wide chunks) over the base.
  size_t num_morsels() const;

 private:
  CompiledPredicate(std::shared_ptr<const ColumnarTable> columnar, Node root);

  std::shared_ptr<const ColumnarTable> columnar_;
  Node root_;
  bool uses_simd_ = false;
};

}  // namespace autocat

#endif  // AUTOCAT_EXEC_KERNELS_H_
