#ifndef AUTOCAT_EXEC_KERNELS_H_
#define AUTOCAT_EXEC_KERNELS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "sql/ast.h"
#include "sql/selection.h"
#include "storage/columnar.h"
#include "storage/schema.h"

namespace autocat {

/// A WHERE clause (or serving-layer SelectionProfile) compiled into
/// vectorized per-column kernels over a `ColumnarTable`.
///
/// Compilation is *refuse-or-exact*: `Compile`/`CompileProfile` either
/// return a predicate whose `Filter` output is bit-identical to the
/// row-at-a-time path (`EvaluatePredicate` / `MatchesRow` over every row,
/// ascending), or they return `kNotSupported` and the caller falls back to
/// the row path. Compilation itself never surfaces data errors; in
/// particular it refuses whenever the row path *could* error (the
/// string-vs-numeric comparison error is data- and order-dependent, so any
/// literal whose comparison class differs from the column's storage class
/// forces a fallback unless the column is all-NULL, where no row-path
/// error can occur). The semantics-preservation argument is spelled out
/// in DESIGN.md §10.
///
/// `Filter` runs chunked through `ParallelFor` with per-chunk selection
/// shards merged in chunk order, so the selection vector is bit-identical
/// at any thread count.
class CompiledPredicate {
 public:
  /// Implementation detail, public only so the compiler helpers in
  /// kernels.cc can build trees: a predicate node. Leaves fill a 0/1 mask
  /// for base rows [begin, end); And/Or combine child masks bitwise
  /// (valid because a compiled predicate is statically error-free, so
  /// short-circuit order cannot be observed).
  struct Node {
    enum class Kind { kConstFalse, kConstTrue, kAnd, kOr, kLeaf };
    Kind kind = Kind::kConstFalse;
    std::vector<Node> children;
    std::function<void(size_t begin, size_t end, uint8_t* mask)> leaf;
    /// Single-row form of `leaf` (same verdict for every row, including
    /// the null mask). Lets an all-leaf conjunction evaluate its first
    /// child densely and test later children only on surviving rows.
    std::function<bool(size_t row)> row_pred;
  };

  /// Compiles a WHERE expression against the table's schema and columnar
  /// shadow. Returns kNotSupported when any sub-expression is not covered
  /// exactly (caller falls back to the row path).
  static Result<CompiledPredicate> Compile(
      const Expr& expr, const Schema& schema,
      std::shared_ptr<const ColumnarTable> columnar);

  /// Compiles a serving-layer selection profile (conjunction of
  /// per-attribute conditions, `MatchesRow` semantics: an unknown
  /// attribute makes every row non-matching rather than erroring).
  static Result<CompiledPredicate> CompileProfile(
      const SelectionProfile& profile, const Schema& schema,
      std::shared_ptr<const ColumnarTable> columnar);

  /// Evaluates the predicate over every base row and returns the matching
  /// row indices in ascending order. Deterministic at any thread count.
  Result<std::vector<uint32_t>> Filter(const ParallelOptions& parallel) const;

  /// Morsel-granular evaluation for the push pipeline: appends the
  /// surviving base-row indices of morsel `m` (rows
  /// [m*kMorselRows, min(n, (m+1)*kMorselRows))) to `out`, ascending.
  /// Evaluating every morsel in index order reproduces `Filter` exactly.
  void AppendMorselSurvivors(size_t m, std::vector<uint32_t>* out) const;

  size_t num_rows() const {
    return columnar_ == nullptr ? 0 : columnar_->num_rows();
  }

  /// Number of evaluation morsels (kMorselRows-wide chunks) over the base.
  size_t num_morsels() const;

 private:
  CompiledPredicate(std::shared_ptr<const ColumnarTable> columnar, Node root)
      : columnar_(std::move(columnar)), root_(std::move(root)) {}

  std::shared_ptr<const ColumnarTable> columnar_;
  Node root_;
};

}  // namespace autocat

#endif  // AUTOCAT_EXEC_KERNELS_H_
