#include "exec/predicate.h"

namespace autocat {

namespace {

// Checks that `cell` and `literal` are comparable (same comparison class).
Status CheckComparable(const Value& cell, const Value& literal,
                       const std::string& column) {
  const bool cell_num = cell.is_numeric();
  const bool lit_num = literal.is_numeric();
  if (cell_num != lit_num) {
    return Status::InvalidArgument(
        "cannot compare column '" + column + "' value " + cell.ToString() +
        " with literal " + literal.ToString());
  }
  return Status::OK();
}

Result<bool> EvaluateComparison(const ComparisonExpr& cmp, const Row& row,
                                const Schema& schema) {
  AUTOCAT_ASSIGN_OR_RETURN(const size_t col,
                           schema.ColumnIndex(cmp.column()));
  const Value& cell = row[col];
  if (cell.is_null() || cmp.literal().is_null()) {
    return false;
  }
  AUTOCAT_RETURN_IF_ERROR(CheckComparable(cell, cmp.literal(), cmp.column()));
  const int c = cell.Compare(cmp.literal());
  switch (cmp.op()) {
    case ComparisonOp::kEq: return c == 0;
    case ComparisonOp::kNotEq: return c != 0;
    case ComparisonOp::kLess: return c < 0;
    case ComparisonOp::kLessEq: return c <= 0;
    case ComparisonOp::kGreater: return c > 0;
    case ComparisonOp::kGreaterEq: return c >= 0;
  }
  return Status::Internal("unreachable comparison op");
}

Result<bool> EvaluateInList(const InListExpr& in, const Row& row,
                            const Schema& schema) {
  AUTOCAT_ASSIGN_OR_RETURN(const size_t col, schema.ColumnIndex(in.column()));
  const Value& cell = row[col];
  if (cell.is_null()) {
    return false;
  }
  bool found = false;
  for (const Value& v : in.values()) {
    if (v.is_null()) {
      continue;
    }
    AUTOCAT_RETURN_IF_ERROR(CheckComparable(cell, v, in.column()));
    if (cell == v) {
      found = true;
      break;
    }
  }
  return in.negated() ? !found : found;
}

Result<bool> EvaluateBetween(const BetweenExpr& bt, const Row& row,
                             const Schema& schema) {
  AUTOCAT_ASSIGN_OR_RETURN(const size_t col, schema.ColumnIndex(bt.column()));
  const Value& cell = row[col];
  if (cell.is_null() || bt.lo().is_null() || bt.hi().is_null()) {
    return false;
  }
  AUTOCAT_RETURN_IF_ERROR(CheckComparable(cell, bt.lo(), bt.column()));
  AUTOCAT_RETURN_IF_ERROR(CheckComparable(cell, bt.hi(), bt.column()));
  const bool inside = cell >= bt.lo() && cell <= bt.hi();
  return bt.negated() ? !inside : inside;
}

Result<bool> EvaluateIsNull(const IsNullExpr& expr, const Row& row,
                            const Schema& schema) {
  AUTOCAT_ASSIGN_OR_RETURN(const size_t col,
                           schema.ColumnIndex(expr.column()));
  const bool is_null = row[col].is_null();
  return expr.negated() ? !is_null : is_null;
}

Result<bool> EvaluateLogical(const LogicalExpr& expr, const Row& row,
                             const Schema& schema) {
  if (expr.op() == LogicalExpr::Op::kAnd) {
    for (const auto& child : expr.children()) {
      AUTOCAT_ASSIGN_OR_RETURN(const bool v,
                               EvaluatePredicate(*child, row, schema));
      if (!v) {
        return false;
      }
    }
    return true;
  }
  for (const auto& child : expr.children()) {
    AUTOCAT_ASSIGN_OR_RETURN(const bool v,
                             EvaluatePredicate(*child, row, schema));
    if (v) {
      return true;
    }
  }
  return false;
}

}  // namespace

Result<bool> EvaluatePredicate(const Expr& expr, const Row& row,
                               const Schema& schema) {
  switch (expr.kind()) {
    case ExprKind::kComparison:
      return EvaluateComparison(static_cast<const ComparisonExpr&>(expr),
                                row, schema);
    case ExprKind::kInList:
      return EvaluateInList(static_cast<const InListExpr&>(expr), row,
                            schema);
    case ExprKind::kBetween:
      return EvaluateBetween(static_cast<const BetweenExpr&>(expr), row,
                             schema);
    case ExprKind::kIsNull:
      return EvaluateIsNull(static_cast<const IsNullExpr&>(expr), row,
                            schema);
    case ExprKind::kLogical:
      return EvaluateLogical(static_cast<const LogicalExpr&>(expr), row,
                             schema);
  }
  return Status::Internal("unreachable expression kind");
}

}  // namespace autocat
