#include "exec/index_scan.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"

namespace autocat {

std::vector<size_t> IndexScan(const SortedColumnIndex& index,
                              const AttributeCondition& cond) {
  if (cond.is_value_set()) {
    std::vector<size_t> out;
    for (const Value& v : cond.values) {
      const std::vector<size_t> hits = index.Lookup(v);
      out.insert(out.end(), hits.begin(), hits.end());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }
  const NumericRange& r = cond.range;
  const Value lo = std::isfinite(r.lo) ? Value(r.lo) : Value();
  const Value hi = std::isfinite(r.hi) ? Value(r.hi) : Value();
  return index.RangeLookup(lo, r.lo_inclusive, hi, r.hi_inclusive);
}

Result<IndexedTable> IndexedTable::Build(
    const Table* table, const std::vector<std::string>& columns) {
  if (table == nullptr) {
    return Status::InvalidArgument("table must not be null");
  }
  IndexedTable indexed;
  indexed.table_ = table;
  std::vector<std::string> targets = columns;
  if (targets.empty()) {
    for (size_t c = 0; c < table->schema().num_columns(); ++c) {
      targets.push_back(table->schema().column(c).name);
    }
  }
  for (const std::string& column : targets) {
    AUTOCAT_ASSIGN_OR_RETURN(SortedColumnIndex index,
                             SortedColumnIndex::Build(*table, column));
    indexed.indexes_.emplace(ToLower(column), std::move(index));
  }
  return indexed;
}

bool IndexedTable::HasIndex(std::string_view column) const {
  return indexes_.count(ToLower(column)) > 0;
}

std::vector<size_t> IndexedTable::Select(
    const SelectionProfile& profile) const {
  // Pick the indexed condition with the fewest matches as the driver.
  const SortedColumnIndex* driver_index = nullptr;
  const AttributeCondition* driver_cond = nullptr;
  std::string driver_attr;
  std::vector<size_t> driver_rows;
  size_t best = std::numeric_limits<size_t>::max();
  for (const auto& [attr, cond] : profile.conditions()) {
    const auto it = indexes_.find(attr);
    if (it == indexes_.end()) {
      continue;
    }
    std::vector<size_t> rows = IndexScan(it->second, cond);
    if (rows.size() < best) {
      best = rows.size();
      driver_index = &it->second;
      driver_cond = &cond;
      driver_attr = attr;
      driver_rows = std::move(rows);
    }
  }
  (void)driver_index;
  (void)driver_cond;

  if (driver_attr.empty()) {
    // Nothing indexed: fall back to a scan.
    return table_->FilterIndices([&](const Row& row) {
      return profile.MatchesRow(row, table_->schema());
    });
  }
  // Verify the remaining conditions on the driver's candidates.
  std::vector<size_t> out;
  out.reserve(driver_rows.size());
  const Schema& schema = table_->schema();
  Row owned;
  for (size_t row_id : driver_rows) {
    const Row* row_ptr;
    if (table_->has_rows()) {
      row_ptr = &table_->row(row_id);
    } else {
      owned = table_->CopyRow(row_id);
      row_ptr = &owned;
    }
    const Row& row = *row_ptr;
    bool keep = true;
    for (const auto& [attr, cond] : profile.conditions()) {
      if (attr == driver_attr) {
        continue;  // already satisfied by the index scan
      }
      const auto col = schema.ColumnIndex(attr);
      if (!col.ok() || !cond.Matches(row[col.value()])) {
        keep = false;
        break;
      }
    }
    if (keep) {
      out.push_back(row_id);
    }
  }
  return out;
}

}  // namespace autocat
