#ifndef AUTOCAT_EXEC_INDEX_SCAN_H_
#define AUTOCAT_EXEC_INDEX_SCAN_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/selection.h"
#include "storage/index.h"
#include "storage/table.h"

namespace autocat {

/// Row ids of `index`'s table matching a normalized attribute condition
/// (value set -> one point lookup per value; numeric range -> one range
/// scan). Ascending row order.
std::vector<size_t> IndexScan(const SortedColumnIndex& index,
                              const AttributeCondition& cond);

/// A set of secondary indexes over one table, used to answer
/// SelectionProfile queries faster than a full scan: the most selective
/// indexed condition drives an index scan and the remaining conditions
/// are verified per row.
class IndexedTable {
 public:
  /// Builds indexes over `columns` of `table` (empty = every column).
  /// The table is not owned and must outlive the IndexedTable; it must
  /// not be appended to afterwards.
  static Result<IndexedTable> Build(const Table* table,
                                    const std::vector<std::string>& columns);

  const Table& table() const { return *table_; }
  bool HasIndex(std::string_view column) const;
  size_t num_indexes() const { return indexes_.size(); }

  /// Row ids matching `profile` (conjunctive semantics). Uses the indexed
  /// condition with the fewest candidates as the driver when one exists,
  /// otherwise falls back to a scan. Ascending row order; equals exactly
  /// what a full scan with MatchesRow produces.
  std::vector<size_t> Select(const SelectionProfile& profile) const;

 private:
  const Table* table_ = nullptr;
  std::map<std::string, SortedColumnIndex> indexes_;  // keyed lowercase
};

}  // namespace autocat

#endif  // AUTOCAT_EXEC_INDEX_SCAN_H_
