#include "exec/executor.h"

#include <cstdint>
#include <limits>
#include <numeric>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "exec/kernels.h"
#include "exec/predicate.h"
#include "sql/parser.h"

namespace autocat {

Database::Database(const Database& other) : tables_(other.tables_) {}

Database& Database::operator=(const Database& other) {
  if (this != &other) {
    tables_ = other.tables_;
    const MutexLock lock(columnar_mu_);
    columnar_.clear();
  }
  return *this;
}

Database::Database(Database&& other) noexcept
    : tables_(std::move(other.tables_)) {}

Database& Database::operator=(Database&& other) noexcept {
  if (this != &other) {
    tables_ = std::move(other.tables_);
    const MutexLock lock(columnar_mu_);
    columnar_.clear();
  }
  return *this;
}

Status Database::RegisterTable(std::string_view name, Table table) {
  const std::string key = ToLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + std::string(name) +
                                 "' already registered");
  }
  tables_.emplace(key, std::move(table));
  return Status::OK();
}

void Database::PutTable(std::string_view name, Table table) {
  const std::string key = ToLower(name);
  tables_[key] = std::move(table);
  const MutexLock lock(columnar_mu_);
  columnar_.erase(key);
}

Result<const Table*> Database::GetTable(std::string_view name) const {
  const auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + std::string(name) + "'");
  }
  return &it->second;
}

Result<std::shared_ptr<const ColumnarTable>> Database::ColumnarFor(
    std::string_view name) const {
  const std::string key = ToLower(name);
  const auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + std::string(name) + "'");
  }
  if (it->second.num_rows() > std::numeric_limits<uint32_t>::max()) {
    return Status::NotSupported("table '" + std::string(name) +
                                "' too large for a columnar shadow");
  }
  if (!it->second.has_rows()) {
    // Column-backed tables (segment-store mode) carry their columnar
    // representation already — no shadow to build or cache.
    return it->second.columnar_backing();
  }
  {
    const MutexLock lock(columnar_mu_);
    if (auto cached = LookupColumnarLocked(key)) {
      return cached;
    }
  }
  // Build outside the lock; if two threads race here the second insert is
  // a no-op and both return an equivalent shadow.
  auto shadow =
      std::make_shared<const ColumnarTable>(ColumnarTable::Build(it->second));
  const MutexLock lock(columnar_mu_);
  return InsertColumnarLocked(key, std::move(shadow));
}

std::shared_ptr<const ColumnarTable> Database::LookupColumnarLocked(
    const std::string& key) const AUTOCAT_REQUIRES(columnar_mu_) {
  const auto cached = columnar_.find(key);
  return cached != columnar_.end() ? cached->second : nullptr;
}

std::shared_ptr<const ColumnarTable> Database::InsertColumnarLocked(
    const std::string& key,
    std::shared_ptr<const ColumnarTable> shadow) const
    AUTOCAT_REQUIRES(columnar_mu_) {
  return columnar_.emplace(key, std::move(shadow)).first->second;
}

bool Database::HasTable(std::string_view name) const {
  return tables_.count(ToLower(name)) > 0;
}

Result<std::vector<size_t>> FilterTable(const Table& table,
                                        const Expr* where) {
  std::vector<size_t> indices;
  if (where == nullptr) {
    indices.resize(table.num_rows());
    std::iota(indices.begin(), indices.end(), 0);
    return indices;
  }
  if (!table.has_rows()) {
    // Column-backed base: synthesize each candidate row for the exact
    // row-at-a-time evaluator (reached only when kernel compilation
    // refuses the WHERE clause).
    for (size_t r = 0; r < table.num_rows(); ++r) {
      AUTOCAT_ASSIGN_OR_RETURN(
          const bool keep,
          EvaluatePredicate(*where, table.CopyRow(r), table.schema()));
      if (keep) {
        indices.push_back(r);
      }
    }
    return indices;
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    AUTOCAT_ASSIGN_OR_RETURN(
        const bool keep,
        EvaluatePredicate(*where, table.row(r), table.schema()));
    if (keep) {
      indices.push_back(r);
    }
  }
  return indices;
}

namespace {

// Columnar execution of `query` over `table`. Returns kNotSupported when
// the WHERE clause is not covered by the kernels (or the shadow cannot be
// built); any other error is final and matches the row path's error.
Result<Table> ExecuteQueryColumnar(const SelectQuery& query,
                                   const Database& db, const Table& table,
                                   const ExecOptions& options) {
  AUTOCAT_ASSIGN_OR_RETURN(std::shared_ptr<const ColumnarTable> columnar,
                           db.ColumnarFor(query.table_name));
  std::vector<uint32_t> rows;
  if (query.where == nullptr) {
    rows.resize(table.num_rows());
    std::iota(rows.begin(), rows.end(), uint32_t{0});
  } else {
    AUTOCAT_ASSIGN_OR_RETURN(
        const CompiledPredicate pred,
        CompiledPredicate::Compile(*query.where, table.schema(), columnar));
    AUTOCAT_ASSIGN_OR_RETURN(rows, pred.Filter(options.parallel));
  }
  static const std::vector<std::string> kAllColumns;
  AUTOCAT_ASSIGN_OR_RETURN(
      const TableView view,
      TableView::Create(table, std::move(columnar), std::move(rows),
                        query.select_all() ? kAllColumns : query.columns));
  return view.Materialize();
}

}  // namespace

Result<Table> ExecuteQuery(const SelectQuery& query, const Database& db,
                           const ExecOptions& options) {
  AUTOCAT_ASSIGN_OR_RETURN(const Table* table, db.GetTable(query.table_name));
  if (options.use_columnar) {
    Result<Table> columnar = ExecuteQueryColumnar(query, db, *table, options);
    if (columnar.ok() ||
        columnar.status().code() != StatusCode::kNotSupported) {
      return columnar;
    }
    // Compilation refused: fall back to the exact row-at-a-time path.
  }
  AUTOCAT_ASSIGN_OR_RETURN(const std::vector<size_t> indices,
                           FilterTable(*table, query.where.get()));
  AUTOCAT_ASSIGN_OR_RETURN(Table selected, table->SelectRows(indices));
  if (query.select_all()) {
    return selected;
  }
  return selected.Project(query.columns);
}

Result<Table> ExecuteQuery(const SelectQuery& query, const Database& db) {
  return ExecuteQuery(query, db, ExecOptions());
}

Result<Table> ExecuteSql(std::string_view sql, const Database& db,
                         const ExecOptions& options) {
  AUTOCAT_ASSIGN_OR_RETURN(const SelectQuery query, ParseQuery(sql));
  return ExecuteQuery(query, db, options);
}

Result<Table> ExecuteSql(std::string_view sql, const Database& db) {
  return ExecuteSql(sql, db, ExecOptions());
}

}  // namespace autocat
