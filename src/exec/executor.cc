#include "exec/executor.h"

#include <numeric>

#include "common/string_util.h"
#include "exec/predicate.h"
#include "sql/parser.h"

namespace autocat {

Status Database::RegisterTable(std::string_view name, Table table) {
  const std::string key = ToLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + std::string(name) +
                                 "' already registered");
  }
  tables_.emplace(key, std::move(table));
  return Status::OK();
}

void Database::PutTable(std::string_view name, Table table) {
  tables_[ToLower(name)] = std::move(table);
}

Result<const Table*> Database::GetTable(std::string_view name) const {
  const auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + std::string(name) + "'");
  }
  return &it->second;
}

bool Database::HasTable(std::string_view name) const {
  return tables_.count(ToLower(name)) > 0;
}

Result<std::vector<size_t>> FilterTable(const Table& table,
                                        const Expr* where) {
  std::vector<size_t> indices;
  if (where == nullptr) {
    indices.resize(table.num_rows());
    std::iota(indices.begin(), indices.end(), 0);
    return indices;
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    AUTOCAT_ASSIGN_OR_RETURN(
        const bool keep,
        EvaluatePredicate(*where, table.row(r), table.schema()));
    if (keep) {
      indices.push_back(r);
    }
  }
  return indices;
}

Result<Table> ExecuteQuery(const SelectQuery& query, const Database& db) {
  AUTOCAT_ASSIGN_OR_RETURN(const Table* table, db.GetTable(query.table_name));
  AUTOCAT_ASSIGN_OR_RETURN(const std::vector<size_t> indices,
                           FilterTable(*table, query.where.get()));
  AUTOCAT_ASSIGN_OR_RETURN(Table selected, table->SelectRows(indices));
  if (query.select_all()) {
    return selected;
  }
  return selected.Project(query.columns);
}

Result<Table> ExecuteSql(std::string_view sql, const Database& db) {
  AUTOCAT_ASSIGN_OR_RETURN(const SelectQuery query, ParseQuery(sql));
  return ExecuteQuery(query, db);
}

}  // namespace autocat
