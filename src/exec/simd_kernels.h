#ifndef AUTOCAT_EXEC_SIMD_KERNELS_H_
#define AUTOCAT_EXEC_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace autocat {
namespace simd {

/// AVX2 inner loops for the filter kernels (exec/kernels.cc). This header
/// is intrinsic-free by design: the `raw-simd` lint rule confines
/// immintrin.h and every `_mm*` spelling to src/exec/simd_kernels.cc, the
/// one TU built with -mavx2, so vector code cannot leak into TUs whose
/// codegen flags would make it illegal on a baseline machine.
///
/// Every kernel writes one verdict BIT per row into `bits` — row i lands
/// in bits[i >> 6] at bit (i & 63), null handling excluded (the caller
/// ANDs with the column's null bitmap) — and is bit-for-bit equal to the
/// scalar predicate it mirrors, NaN semantics included (gated by the
/// SIMD-vs-scalar equivalence suite). Each returns false without touching
/// `bits` when the vector path is unavailable (CPU lacks AVX2, the build
/// lacks the TU, or tests forced the scalar fallback); the caller then
/// runs its scalar loop. `bits` must hold ceil(n / 64) words; trailing
/// bits of the last word are zeroed.

/// True when the AVX2 kernels are compiled in, the CPU supports them, and
/// no test override is active.
bool Enabled();

/// Test hook: force every kernel to report unavailable (the scalar
/// fallback path), or restore runtime detection. Not thread-safe against
/// concurrent kernel execution — flip it only between queries.
void ForceScalarForTest(bool force_scalar);

/// int64 three-way compare against literal `b` through the truth table
/// `table` (bit c+1 accepts Cmp3 result c), exactly as
/// NumericCompareLeaf's int64/int64 path.
bool CompareI64(const int64_t* vals, size_t n, int64_t b, uint8_t table,
                uint64_t* bits);

/// double three-way compare against literal `b` through `table`. The
/// equal class is computed as "neither less nor greater", so NaN cells
/// (and a NaN literal) land on c == 0 exactly like Cmp3.
bool CompareF64(const double* vals, size_t n, double b, uint8_t table,
                uint64_t* bits);

/// Dictionary-code accept table: bit i = accept[codes[i]] != 0. `accept`
/// must have `accept_size` entries, each 0 or 1 (a uint32 copy of the
/// compiled uint8 table, widened once at compile time so the gather reads
/// full lanes), and every code must index in range (the open/build paths
/// validate codes against the dictionary).
bool AcceptCodes(const uint32_t* codes, size_t n, const uint32_t* accept,
                 size_t accept_size, uint64_t* bits);

/// Profile-range test over doubles: bit i = `vals[i]` inside
/// [lo, hi] with the given endpoint inclusivity, where NaN cells are
/// inside every range — the literal vector translation of
/// CompileCondition's out_lo/out_hi arithmetic.
bool RangeF64(const double* vals, size_t n, double lo, bool lo_inclusive,
              double hi, bool hi_inclusive, uint64_t* bits);

}  // namespace simd
}  // namespace autocat

#endif  // AUTOCAT_EXEC_SIMD_KERNELS_H_
