#ifndef AUTOCAT_SIMGEN_GEO_H_
#define AUTOCAT_SIMGEN_GEO_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace autocat {

/// One metro region of the synthetic housing market. Regions drive both
/// data generation (how many homes, at what price level) and query
/// generation (buyers search within one region), and define the
/// query-broadening of the simulated study ("expand the set of
/// neighborhoods in W to all neighborhoods in the region").
struct Region {
  std::string name;                        ///< e.g. "Seattle/Bellevue"
  std::string state;                       ///< e.g. "WA"
  std::vector<std::string> neighborhoods;  ///< Unique across all regions.
  /// Median price level of the region (dollars) and log-normal sigma.
  double price_center = 350000;
  double price_sigma = 0.45;
  /// Relative share of listings and of buyer queries.
  double popularity = 1.0;
};

/// Price multiplier of the i-th neighborhood of an n-neighborhood region:
/// earlier-listed neighborhoods are the pricier ones, spanning roughly
/// [0.75, 1.3] around the regional center. Shared by the data generator
/// (homes in Palo Alto cost more) and the workload generator (buyers
/// searching Palo Alto type higher price ranges) — this is the
/// cross-attribute correlation the Section 5.2 refinement can exploit.
double NeighborhoodPriceMultiplier(size_t index, size_t count);

/// The region catalog. Neighborhood names are globally unique, so a
/// neighborhood string identifies its region.
class Geography {
 public:
  /// The built-in catalog: three large, hand-tuned regions
  /// (Seattle/Bellevue, Bay Area - Penin/SanJose, NYC - Manhattan, Bronx —
  /// the regions of the paper's tasks) plus a dozen smaller metros.
  static Geography UnitedStates();

  explicit Geography(std::vector<Region> regions);

  const std::vector<Region>& regions() const { return regions_; }
  size_t num_regions() const { return regions_.size(); }

  Result<const Region*> FindRegion(std::string_view name) const;

  /// Region owning the given neighborhood.
  Result<const Region*> RegionOfNeighborhood(
      std::string_view neighborhood) const;

  /// All neighborhood names, across regions.
  std::vector<std::string> AllNeighborhoods() const;

 private:
  std::vector<Region> regions_;
};

}  // namespace autocat

#endif  // AUTOCAT_SIMGEN_GEO_H_
