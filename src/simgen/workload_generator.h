#ifndef AUTOCAT_SIMGEN_WORKLOAD_GENERATOR_H_
#define AUTOCAT_SIMGEN_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "simgen/geo.h"
#include "workload/workload.h"

namespace autocat {

/// Configuration of the synthetic query log. The per-attribute usage
/// probabilities are tuned so the relative attribute popularity matches
/// the paper's Figure 4(a) (neighborhood > bedrooms > price >
/// squarefootage > yearbuilt) and so exactly the paper's six attributes
/// (neighborhood, price, bedroomcount, bathcount, propertytype,
/// squarefootage) survive elimination at threshold x = 0.4.
struct WorkloadGeneratorConfig {
  size_t num_queries = 20000;
  uint64_t seed = 776239;
  double p_neighborhood = 0.80;
  double p_bedrooms = 0.70;
  double p_price = 0.62;
  double p_sqft = 0.52;
  double p_bathcount = 0.50;
  double p_propertytype = 0.48;
  double p_yearbuilt = 0.25;
  /// Queries are generated in fixed-size chunks, each from its own RNG
  /// stream seeded by (seed, chunk index), so the log is byte-identical at
  /// any thread count. Also spreads the parse in `Generate`.
  ParallelOptions parallel;
};

/// Generates the stand-in for the paper's 176,262-query MSN House&Home
/// log: real SQL SELECT strings over ListProperty, each modeling one
/// buyer's information need. A buyer searches inside one region (chosen by
/// popularity), names a few neighborhoods (IN list), and optionally bounds
/// price (round 25K/50K/100K endpoints — so split-point goodness
/// concentrates on round values, as in real logs), bedrooms, bathrooms,
/// square footage, property type, and year built.
class WorkloadGenerator {
 public:
  /// `geo` is not owned and must outlive the generator.
  WorkloadGenerator(const Geography* geo, WorkloadGeneratorConfig config)
      : geo_(geo), config_(config) {}

  /// Emits the raw SQL strings (deterministic in the seed).
  std::vector<std::string> GenerateSql() const;

  /// Emits the SQL and ingests it through the SQL parser and normalizer —
  /// the same path a real query log would take. Every generated query is
  /// expected to parse; `report` (optional) records ingestion statistics.
  Result<Workload> Generate(const Schema& schema,
                            WorkloadParseReport* report) const;

 private:
  const Geography* geo_;
  WorkloadGeneratorConfig config_;
};

}  // namespace autocat

#endif  // AUTOCAT_SIMGEN_WORKLOAD_GENERATOR_H_
