#include "simgen/workload_generator.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"
#include "common/random.h"
#include "common/string_util.h"

namespace autocat {

namespace {

// Rounds to a multiple of `granularity` (down or up).
double RoundDown(double x, double granularity) {
  return std::floor(x / granularity) * granularity;
}
double RoundUp(double x, double granularity) {
  return std::ceil(x / granularity) * granularity;
}

// Picks 1-5 distinct neighborhood indices, Zipf-skewed toward the
// popular (early) ones.
std::vector<size_t> PickNeighborhoods(const Region& region, Random& rng) {
  const size_t max_picks =
      std::min<size_t>(5, region.neighborhoods.size());
  const size_t count = static_cast<size_t>(rng.Uniform(
      1, static_cast<int64_t>(max_picks)));
  std::set<size_t> picked;
  while (picked.size() < count) {
    picked.insert(rng.Zipf(region.neighborhoods.size(), 0.6));
  }
  return std::vector<size_t>(picked.begin(), picked.end());
}

// Mean price tier of the picked neighborhoods (1.0 when none picked):
// buyers searching pricier neighborhoods type higher price ranges — the
// cross-attribute correlation in the log.
double NeighborhoodTier(const Region& region,
                        const std::vector<size_t>& picked) {
  if (picked.empty()) {
    return 1.0;
  }
  double sum = 0;
  for (size_t idx : picked) {
    sum += NeighborhoodPriceMultiplier(idx, region.neighborhoods.size());
  }
  return sum / static_cast<double>(picked.size());
}

std::string NeighborhoodCondition(const Region& region,
                                  const std::vector<size_t>& picked) {
  // std::set order = index order; render by name for stable SQL.
  std::set<std::string> names;
  for (size_t idx : picked) {
    names.insert(region.neighborhoods[idx]);
  }
  std::string cond = "neighborhood IN (";
  bool first = true;
  for (const std::string& n : names) {
    if (!first) {
      cond += ", ";
    }
    first = false;
    cond += Value(n).ToSqlLiteral();
  }
  cond += ")";
  return cond;
}

std::string PriceCondition(const Region& region, double tier, Random& rng) {
  // Buyers anchor around what their target neighborhoods cost, with
  // personal spread, and use round numbers: mostly 25K granularity,
  // sometimes 50K or 100K.
  static const std::vector<double> kGranularityWeights = {0.6, 0.3, 0.1};
  static const double kGranularities[] = {25000, 50000, 100000};
  const double granularity =
      kGranularities[rng.WeightedChoice(kGranularityWeights)];
  const double center =
      region.price_center * tier * std::exp(rng.Gaussian(0, 0.25));
  if (rng.Bernoulli(0.15)) {
    // Budget-capped search: "price <= X".
    const double cap = std::max(granularity, RoundUp(center * 1.2,
                                                     granularity));
    return "price <= " + Value(cap).ToString();
  }
  double lo = std::max(0.0, RoundDown(center * 0.72, granularity));
  double hi = RoundUp(center * 1.28, granularity);
  if (hi <= lo) {
    hi = lo + granularity;
  }
  return "price BETWEEN " + Value(lo).ToString() + " AND " +
         Value(hi).ToString();
}

std::string BedroomsCondition(Random& rng) {
  static const std::vector<double> kBaseWeights = {10, 25, 35, 20, 10};
  static const std::vector<double> kSpanWeights = {35, 45, 20};
  const int64_t lo = static_cast<int64_t>(rng.WeightedChoice(kBaseWeights)) + 1;
  const int64_t span = static_cast<int64_t>(rng.WeightedChoice(kSpanWeights));
  return "bedroomcount BETWEEN " + std::to_string(lo) + " AND " +
         std::to_string(lo + span);
}

std::string BathsCondition(Random& rng) {
  static const std::vector<double> kBaseWeights = {30, 40, 20, 10};
  const int64_t lo = static_cast<int64_t>(rng.WeightedChoice(kBaseWeights)) + 1;
  const int64_t span = rng.Bernoulli(0.5) ? 1 : 0;
  return "bathcount BETWEEN " + std::to_string(lo) + " AND " +
         std::to_string(lo + span);
}

std::string SqftCondition(Random& rng) {
  const double lo = 500.0 * static_cast<double>(rng.Uniform(1, 5));
  static const std::vector<double> kSpanWeights = {40, 40, 20};
  const double span =
      500.0 * static_cast<double>(rng.WeightedChoice(kSpanWeights) + 1);
  return "squarefootage BETWEEN " + Value(lo).ToString() + " AND " +
         Value(lo + span).ToString();
}

std::string YearBuiltCondition(Random& rng) {
  const int64_t year = 1950 + 5 * rng.Uniform(0, 10);
  if (rng.Bernoulli(0.6)) {
    return "yearbuilt >= " + std::to_string(year);
  }
  const int64_t hi = std::min<int64_t>(2004, year + 5 * rng.Uniform(2, 6));
  return "yearbuilt BETWEEN " + std::to_string(year) + " AND " +
         std::to_string(hi);
}

std::string PropertyTypeCondition(Random& rng) {
  static const char* kTypes[] = {"Single Family", "Condo", "Townhouse",
                                 "Multi-Family"};
  static const std::vector<double> kWeights = {50, 30, 12, 8};
  const size_t first = rng.WeightedChoice(kWeights);
  std::set<std::string> picked = {kTypes[first]};
  if (rng.Bernoulli(0.25)) {
    picked.insert(kTypes[rng.WeightedChoice(kWeights)]);
  }
  if (picked.size() == 1) {
    return std::string("propertytype = ") +
           Value(*picked.begin()).ToSqlLiteral();
  }
  std::string cond = "propertytype IN (";
  bool first_item = true;
  for (const std::string& t : picked) {
    if (!first_item) {
      cond += ", ";
    }
    first_item = false;
    cond += Value(t).ToSqlLiteral();
  }
  cond += ")";
  return cond;
}

/// Queries generated per RNG stream. Fixed constant (not derived from the
/// thread count), so chunk c always covers the same queries and draws from
/// the same stream — the log is identical at any parallelism.
constexpr size_t kQueriesPerChunk = 256;

}  // namespace

std::vector<std::string> WorkloadGenerator::GenerateSql() const {
  const std::vector<Region>& regions = geo_->regions();
  std::vector<double> popularity;
  popularity.reserve(regions.size());
  for (const Region& region : regions) {
    popularity.push_back(region.popularity);
  }

  std::vector<std::string> queries(config_.num_queries);
  const Status status = ParallelFor(
      config_.parallel, 0, config_.num_queries, kQueriesPerChunk,
      [&](size_t lo, size_t hi) -> Status {
        Random rng(SplitMixSeed(config_.seed, lo / kQueriesPerChunk));
        for (size_t q = lo; q < hi; ++q) {
          const Region& region = regions[rng.WeightedChoice(popularity)];
          std::vector<std::string> conditions;
          double tier = 1.0;
          if (rng.Bernoulli(config_.p_neighborhood)) {
            const std::vector<size_t> picked =
                PickNeighborhoods(region, rng);
            tier = NeighborhoodTier(region, picked);
            conditions.push_back(NeighborhoodCondition(region, picked));
          }
          if (rng.Bernoulli(config_.p_bedrooms)) {
            conditions.push_back(BedroomsCondition(rng));
          }
          if (rng.Bernoulli(config_.p_price)) {
            conditions.push_back(PriceCondition(region, tier, rng));
          }
          if (rng.Bernoulli(config_.p_sqft)) {
            conditions.push_back(SqftCondition(rng));
          }
          if (rng.Bernoulli(config_.p_bathcount)) {
            conditions.push_back(BathsCondition(rng));
          }
          if (rng.Bernoulli(config_.p_propertytype)) {
            conditions.push_back(PropertyTypeCondition(rng));
          }
          if (rng.Bernoulli(config_.p_yearbuilt)) {
            conditions.push_back(YearBuiltCondition(rng));
          }
          if (conditions.empty()) {
            // Every logged search filtered on something; default to
            // location.
            conditions.push_back(NeighborhoodCondition(
                region, PickNeighborhoods(region, rng)));
          }
          rng.Shuffle(conditions);
          queries[q] = "SELECT * FROM ListProperty WHERE " +
                       Join(conditions, " AND ");
        }
        return Status::OK();
      });
  // The chunk body never fails; only a nested-ParallelFor contract
  // violation could surface here.
  AUTOCAT_CHECK(status.ok());
  return queries;
}

Result<Workload> WorkloadGenerator::Generate(
    const Schema& schema, WorkloadParseReport* report) const {
  const std::vector<std::string> sqls = GenerateSql();
  WorkloadParseReport local_report;
  Workload workload = Workload::Parse(sqls, schema,
                                      report ? report : &local_report,
                                      config_.parallel);
  const WorkloadParseReport& used = report ? *report : local_report;
  if (used.parsed != used.total) {
    return Status::Internal(
        "generated workload failed to round-trip: " +
        std::to_string(used.total - used.parsed) + " of " +
        std::to_string(used.total) + " queries rejected" +
        (used.sample_errors.empty() ? ""
                                    : "; first: " + used.sample_errors[0]));
  }
  return workload;
}

}  // namespace autocat
