#include "simgen/homes_generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/random.h"

namespace autocat {

Result<Schema> HomesGenerator::ListPropertySchema() {
  return Schema::Create({
      ColumnDef("neighborhood", ValueType::kString, ColumnKind::kCategorical),
      ColumnDef("city", ValueType::kString, ColumnKind::kCategorical),
      ColumnDef("state", ValueType::kString, ColumnKind::kCategorical),
      ColumnDef("zipcode", ValueType::kString, ColumnKind::kCategorical),
      ColumnDef("price", ValueType::kInt64, ColumnKind::kNumeric),
      ColumnDef("bedroomcount", ValueType::kInt64, ColumnKind::kNumeric),
      ColumnDef("bathcount", ValueType::kInt64, ColumnKind::kNumeric),
      ColumnDef("yearbuilt", ValueType::kInt64, ColumnKind::kNumeric),
      ColumnDef("propertytype", ValueType::kString,
                ColumnKind::kCategorical),
      ColumnDef("squarefootage", ValueType::kInt64, ColumnKind::kNumeric),
  });
}

namespace {

// "Seattle - Ballard" -> "Seattle"; otherwise the neighborhood itself.
std::string CityOf(const std::string& neighborhood) {
  const size_t pos = neighborhood.find(" - ");
  if (pos != std::string::npos) {
    return neighborhood.substr(0, pos);
  }
  return neighborhood;
}

std::string ZipcodeOf(size_t region_idx, size_t neighborhood_idx) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "%05zu",
                10000 + region_idx * 487 + neighborhood_idx * 7);
  return buf;
}

int64_t SampleBedrooms(Random& rng) {
  static const std::vector<double> kWeights = {5,  15, 30,  28, 14,
                                               5,  2,  0.7, 0.3};
  return static_cast<int64_t>(rng.WeightedChoice(kWeights)) + 1;
}

std::string SamplePropertyType(Random& rng, bool urban) {
  const std::vector<double> weights =
      urban ? std::vector<double>{0.30, 0.55, 0.10, 0.05}
            : std::vector<double>{0.58, 0.22, 0.13, 0.07};
  static const char* kTypes[] = {"Single Family", "Condo", "Townhouse",
                                 "Multi-Family"};
  return kTypes[rng.WeightedChoice(weights)];
}

/// Rows generated per RNG stream. The chunk size is a fixed constant (not
/// derived from the thread count), so chunk c always covers the same rows
/// and draws from the same stream — the table is identical at any
/// parallelism.
constexpr size_t kRowsPerChunk = 1024;

// One home row, drawn entirely from `rng`.
std::vector<Value> GenerateRow(Random& rng,
                               const std::vector<Region>& regions,
                               const std::vector<double>& popularity) {
  const size_t region_idx = rng.WeightedChoice(popularity);
  const Region& region = regions[region_idx];
  const size_t nb_idx = rng.Zipf(region.neighborhoods.size(), 0.6);
  const std::string& neighborhood = region.neighborhoods[nb_idx];
  const bool urban = region.price_center >= 600000;

  const int64_t bedrooms = SampleBedrooms(rng);
  const std::string prop_type = SamplePropertyType(rng, urban);
  const bool condo = prop_type == "Condo";

  // Square footage follows bedrooms (condos smaller), with noise.
  double sqft = 420.0 * static_cast<double>(bedrooms) +
                rng.Gaussian(350, 320);
  if (condo) {
    sqft *= 0.72;
  }
  sqft = std::clamp(sqft, 320.0, 9000.0);
  const int64_t sqft_i = static_cast<int64_t>(std::round(sqft / 10) * 10);

  // Price: regional log-normal scaled by neighborhood tier and by size.
  const double size_factor = std::pow(
      sqft / (420.0 * static_cast<double>(bedrooms) + 350.0), 0.35);
  double price = region.price_center *
                 NeighborhoodPriceMultiplier(
                     nb_idx, region.neighborhoods.size()) *
                 std::exp(rng.Gaussian(0, region.price_sigma)) *
                 size_factor * (condo ? 0.82 : 1.0);
  price = std::clamp(price, 40000.0, 8000000.0);
  const int64_t price_i =
      static_cast<int64_t>(std::round(price / 100) * 100);

  int64_t baths = static_cast<int64_t>(
      std::llround(0.62 * static_cast<double>(bedrooms) +
                   rng.Gaussian(0.4, 0.5)));
  baths = std::clamp<int64_t>(baths, 1, bedrooms + 1);

  // Year built skews recent with a long tail back to 1900.
  const double age = -25.0 * std::log(rng.UniformReal(1e-6, 1.0));
  const int64_t year =
      std::clamp<int64_t>(2004 - static_cast<int64_t>(age), 1900, 2004);

  return {
      Value(neighborhood),
      Value(CityOf(neighborhood)),
      Value(region.state),
      Value(ZipcodeOf(region_idx, nb_idx)),
      Value(price_i),
      Value(bedrooms),
      Value(baths),
      Value(year),
      Value(prop_type),
      Value(sqft_i),
  };
}

}  // namespace

Status HomesGenerator::StreamRows(
    const std::function<Status(std::vector<Row>)>& sink) const {
  const std::vector<Region>& regions = geo_->regions();
  std::vector<double> popularity;
  popularity.reserve(regions.size());
  for (const Region& region : regions) {
    popularity.push_back(region.popularity);
  }

  // Generate a window of chunks concurrently — each chunk from its own
  // RNG stream, exactly as before — then drain the window to the sink in
  // chunk order. Windowing bounds memory to ~64Ki rows however large the
  // table is.
  constexpr size_t kChunksPerWindow = 64;
  const size_t num_chunks =
      config_.num_rows == 0
          ? 0
          : (config_.num_rows + kRowsPerChunk - 1) / kRowsPerChunk;
  for (size_t w = 0; w < num_chunks; w += kChunksPerWindow) {
    const size_t w_end = std::min(num_chunks, w + kChunksPerWindow);
    std::vector<std::vector<Row>> chunks(w_end - w);
    AUTOCAT_RETURN_IF_ERROR(ParallelFor(
        config_.parallel, w * kRowsPerChunk,
        std::min(config_.num_rows, w_end * kRowsPerChunk), kRowsPerChunk,
        [&](size_t lo, size_t hi) -> Status {
          const size_t chunk = lo / kRowsPerChunk;
          Random rng(SplitMixSeed(config_.seed, chunk));
          std::vector<Row>& rows = chunks[chunk - w];
          rows.reserve(hi - lo);
          for (size_t r = lo; r < hi; ++r) {
            rows.push_back(GenerateRow(rng, regions, popularity));
          }
          return Status::OK();
        }));
    for (std::vector<Row>& rows : chunks) {
      AUTOCAT_RETURN_IF_ERROR(sink(std::move(rows)));
    }
  }
  return Status::OK();
}

Result<Table> HomesGenerator::Generate() const {
  AUTOCAT_ASSIGN_OR_RETURN(Schema schema, ListPropertySchema());
  Table table(std::move(schema));
  table.Reserve(config_.num_rows);
  AUTOCAT_RETURN_IF_ERROR(StreamRows([&table](std::vector<Row> rows) {
    return table.AppendRows(std::move(rows));
  }));
  return table;
}

}  // namespace autocat
