#ifndef AUTOCAT_SIMGEN_HOMES_GENERATOR_H_
#define AUTOCAT_SIMGEN_HOMES_GENERATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "simgen/geo.h"
#include "storage/table.h"

namespace autocat {

/// Configuration of the synthetic `ListProperty` table.
struct HomesGeneratorConfig {
  size_t num_rows = 120000;
  uint64_t seed = 20040613;  // SIGMOD 2004 opening day
  /// Rows are generated in fixed-size chunks, each from its own RNG stream
  /// seeded by (seed, chunk index), so the table is byte-identical at any
  /// thread count.
  ParallelOptions parallel;
};

/// Generates the stand-in for the paper's MSN House&Home `ListProperty`
/// relation: one row per home for sale with the attributes the paper
/// lists — neighborhood, city, state, zipcode, price, bedroomcount,
/// bathcount, yearbuilt, propertytype, squarefootage — all non-NULL, with
/// realistic correlations (price follows a per-region log-normal scaled by
/// a per-neighborhood multiplier and by size; square footage follows
/// bedrooms; bathrooms follow bedrooms; condos skew small and urban).
class HomesGenerator {
 public:
  /// `geo` is not owned and must outlive the generator.
  HomesGenerator(const Geography* geo, HomesGeneratorConfig config)
      : geo_(geo), config_(config) {}

  /// The ListProperty schema. Neighborhood/city/state/zipcode/propertytype
  /// are categorical; price/bedroomcount/bathcount/yearbuilt/squarefootage
  /// are numeric.
  static Result<Schema> ListPropertySchema();

  /// Generates the table deterministically from the seed.
  Result<Table> Generate() const;

  /// Streams the same rows as Generate() — byte-identical, in the same
  /// order — without ever materializing the whole table: windows of
  /// chunks are generated in parallel, then handed to `sink` one chunk
  /// at a time. Peak memory is one window (~64Ki rows) regardless of
  /// num_rows, which is what lets `simgen --out-store` push 10M+ rows
  /// through a StoreWriter. A non-OK status from `sink` aborts the
  /// stream and is returned.
  Status StreamRows(
      const std::function<Status(std::vector<Row>)>& sink) const;

 private:
  const Geography* geo_;
  HomesGeneratorConfig config_;
};

}  // namespace autocat

#endif  // AUTOCAT_SIMGEN_HOMES_GENERATOR_H_
