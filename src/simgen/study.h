#ifndef AUTOCAT_SIMGEN_STUDY_H_
#define AUTOCAT_SIMGEN_STUDY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/categorizer.h"
#include "exec/index_scan.h"
#include "explore/exploration.h"
#include "simgen/geo.h"
#include "simgen/homes_generator.h"
#include "simgen/user_simulator.h"
#include "simgen/workload_generator.h"
#include "workload/counts.h"
#include "workload/workload.h"

namespace autocat {

/// End-to-end configuration of both studies of Section 6.
struct StudyConfig {
  size_t num_homes = 120000;
  size_t num_workload_queries = 20000;
  /// Simulated study: `num_subsets` disjoint subsets of `subset_size`
  /// synthetic explorations, cross-validated leave-subset-out.
  size_t num_subsets = 8;
  size_t subset_size = 100;
  uint64_t seed = 4242;
  /// Shared algorithm knobs (M = 20 as in both of the paper's studies).
  CategorizerOptions categorizer;
  /// Split-point separation intervals (paper: price 5000, squarefootage
  /// 100, yearbuilt 5; bedrooms/baths use 1).
  WorkloadStatsOptions stats;
  /// The paper's predefined attribute set for the baseline techniques.
  std::vector<std::string> predefined_attributes = {
      "neighborhood", "propertytype", "bedroomcount",
      "price",        "yearbuilt",    "squarefootage"};
  /// Threads for data/workload generation and workload preprocessing.
  /// All parallel paths are deterministic: results are identical at any
  /// thread count. Tree construction is governed separately by
  /// `categorizer.parallel`.
  ParallelOptions parallel;
};

/// The defaults described in DESIGN.md (paper parameters where given).
StudyConfig DefaultStudyConfig();

/// The shared substrate both studies run on: the synthetic ListProperty
/// table and query log, generated once, deterministically.
class StudyEnvironment {
 public:
  static Result<StudyEnvironment> Create(const StudyConfig& config);

  const StudyConfig& config() const { return config_; }
  const Geography& geo() const { return geo_; }
  const Schema& schema() const { return homes_->schema(); }
  const Table& homes() const { return *homes_; }
  const Workload& workload() const { return workload_; }

  /// Rows of `homes` matching `profile`, as a new table. Served by
  /// secondary indexes on the searchable attributes (exec/index_scan.h).
  Result<Table> ExecuteProfile(const SelectionProfile& profile) const;

 private:
  StudyEnvironment(StudyConfig config, Geography geo,
                   std::unique_ptr<Table> homes, IndexedTable indexed,
                   Workload workload);

  StudyConfig config_;
  Geography geo_;
  // Heap-allocated so the IndexedTable's pointer survives moves of the
  // environment.
  std::unique_ptr<Table> homes_;
  IndexedTable indexed_;
  Workload workload_;
};

/// Broadens workload query `w` into the user query Q_w of Section 6.2:
/// the neighborhood set expands to every neighborhood of its region and
/// all other selection conditions are removed.
Result<SelectionProfile> BroadenToRegion(const SelectionProfile& w,
                                         const Geography& geo);

/// The three techniques compared throughout Section 6.
enum class Technique {
  kCostBased,
  kAttrCost,
  kNoCost,
};
inline constexpr Technique kAllTechniques[] = {
    Technique::kCostBased, Technique::kAttrCost, Technique::kNoCost};
std::string_view TechniqueToString(Technique technique);

/// One synthetic exploration measurement (Section 6.2): a workload query W
/// explored a tree built for its broadened query Q_w.
struct SyntheticRecord {
  size_t subset = 0;
  size_t query_index = 0;  ///< Index into the environment workload.
  Technique technique = Technique::kCostBased;
  double estimated_cost = 0;  ///< CostAll(T), Equation 1.
  double actual_cost = 0;     ///< CostAll(W,T), items examined.
  size_t result_size = 0;     ///< |Result(Q_w)|.
};

struct SimulatedStudyResult {
  std::vector<SyntheticRecord> records;
  size_t skipped_empty_results = 0;
  size_t skipped_ineligible = 0;

  /// Records for one technique, optionally restricted to one subset
  /// (pass SIZE_MAX for all subsets).
  std::vector<const SyntheticRecord*> Select(Technique technique,
                                             size_t subset) const;

  /// Pearson correlation of estimated vs actual cost.
  Result<double> Pearson(Technique technique, size_t subset) const;

  /// Pearson over all techniques' explorations pooled together (the
  /// Figure 7 / Table 1 plot includes the per-technique explorations of
  /// each query), optionally restricted to one subset (SIZE_MAX = all).
  Result<double> PooledPearson(size_t subset) const;

  /// Best-fit slope of actual = b * estimated (Figure 7's trend line).
  Result<double> FitSlope(Technique technique) const;

  /// Trend-line slope over all techniques pooled.
  Result<double> PooledFitSlope() const;

  /// Mean of actual_cost / result_size (Figure 8's metric).
  double MeanFractionalCost(Technique technique, size_t subset) const;
};

/// Runs the large-scale simulated, cross-validated user study of
/// Section 6.2 over `env`.
Result<SimulatedStudyResult> RunSimulatedStudy(const StudyEnvironment& env);

/// One subject-task-technique run of the real-life study (Section 6.3).
struct UserRunRecord {
  std::string user;
  std::string task;
  Technique technique = Technique::kCostBased;
  double estimated_cost = 0;  ///< CostAll(T).
  double actual_cost_all = 0; ///< Items examined until all relevant found.
  double actual_cost_one = 0; ///< Items examined until first relevant.
  size_t relevant_found = 0;
  size_t result_size = 0;
  /// True when this run belongs to the paper's rotation design (each
  /// subject performs each task once, techniques rotated). The simulation
  /// runs the full 11 x 4 x 3 factorial for stable cell means; Table 2
  /// uses only the rotation runs, matching the paper's protocol.
  bool paper_assignment = false;
};

struct UserStudyResult {
  std::vector<UserRunRecord> records;
  std::map<std::string, size_t> task_result_sizes;

  /// All factorial runs of a task-technique cell.
  std::vector<const UserRunRecord*> Select(const std::string& task,
                                           Technique technique) const;

  /// Per-user Pearson correlation of estimated vs actual (Table 2),
  /// computed over the user's four rotation-design runs as in the paper.
  Result<double> UserPearson(const std::string& user) const;

  /// Post-study survey (Table 4): each user votes for the technique with
  /// the lowest normalized cost they experienced.
  std::map<Technique, size_t> SurveyVotes() const;
};

/// Runs the simulated version of the paper's 11-subject real-life study.
/// Unlike the human study (where each subject could perform each task only
/// once), the simulation runs the complete 11 x 4 x 3 factorial; the
/// paper's rotation assignment is marked on the records so Table 2 can be
/// computed exactly as in the paper while the per-cell figures average
/// over all 11 subjects.
Result<UserStudyResult> RunUserStudy(const StudyEnvironment& env);

/// Builds a categorizer of the given technique over `stats` with the
/// study's options (`arbitrary_seed` differentiates 'No cost' trees
/// between queries).
std::unique_ptr<Categorizer> MakeTechnique(Technique technique,
                                           const WorkloadStats* stats,
                                           const StudyConfig& config,
                                           uint64_t arbitrary_seed);

}  // namespace autocat

#endif  // AUTOCAT_SIMGEN_STUDY_H_
