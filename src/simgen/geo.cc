#include "simgen/geo.h"

#include "common/string_util.h"

namespace autocat {

namespace {

Region MakeRegion(std::string name, std::string state,
                  std::vector<std::string> neighborhoods,
                  double price_center, double price_sigma,
                  double popularity) {
  Region region;
  region.name = std::move(name);
  region.state = std::move(state);
  region.neighborhoods = std::move(neighborhoods);
  region.price_center = price_center;
  region.price_sigma = price_sigma;
  region.popularity = popularity;
  return region;
}

}  // namespace

double NeighborhoodPriceMultiplier(size_t index, size_t count) {
  if (count <= 1) {
    return 1.0;
  }
  const double t = static_cast<double>(index) / static_cast<double>(count - 1);
  return 1.3 - 0.55 * t;
}

Geography::Geography(std::vector<Region> regions)
    : regions_(std::move(regions)) {}

Geography Geography::UnitedStates() {
  std::vector<Region> regions;
  // The three regions the paper's tasks search. Price levels are tuned so
  // the four tasks produce result sets of the same orders of magnitude as
  // the paper's (Table 3): ~18K, ~2.6K, ~600, ~7K.
  regions.push_back(MakeRegion(
      "Seattle/Bellevue", "WA",
      {"Bellevue",
       "Redmond",
       "Issaquah",
       "Sammamish",
       "Kirkland",
       "Seattle - Capitol Hill",
       "Seattle - Ballard",
       "Seattle - Queen Anne",
       "Seattle - Fremont",
       "Seattle - Ravenna",
       "Seattle - West Seattle",
       "Seattle - Greenwood",
       "Seattle - Magnolia",
       "Seattle - Laurelhurst",
       "Seattle - Madrona",
       "Seattle - Beacon Hill",
       "Seattle - Columbia City",
       "Seattle - Wallingford",
       "Seattle - Green Lake",
       "Seattle - Phinney Ridge",
       "Seattle - Montlake",
       "Seattle - Madison Park",
       "Seattle - Seward Park",
       "Seattle - Northgate",
       "Seattle - Lake City",
       "Mercer Island",
       "Renton",
       "Bothell",
       "Woodinville",
       "Newcastle",
       "Kenmore",
       "Shoreline",
       "Edmonds",
       "Lynnwood",
       "Burien",
       "Des Moines WA",
       "Kent",
       "Federal Way",
       "Auburn WA",
       "Maple Valley",
       "Covington",
       "Snoqualmie",
       "North Bend",
       "Duvall",
       "Mill Creek"},
      340000, 0.45, 0.20));
  regions.push_back(MakeRegion(
      "Bay Area - Penin/SanJose", "CA",
      {"Palo Alto",
       "Menlo Park",
       "Mountain View",
       "Sunnyvale",
       "Santa Clara",
       "San Jose - Willow Glen",
       "San Jose - Almaden",
       "San Jose - Evergreen",
       "San Jose - Berryessa",
       "San Jose - Cambrian",
       "San Jose - Rose Garden",
       "San Jose - Japantown",
       "San Jose - Alum Rock",
       "San Jose - Blossom Valley",
       "Cupertino",
       "Los Altos",
       "Los Altos Hills",
       "Redwood City",
       "San Mateo",
       "Campbell",
       "Saratoga",
       "Milpitas",
       "Los Gatos",
       "Morgan Hill",
       "Gilroy",
       "Fremont CA",
       "Newark CA",
       "Union City",
       "Foster City",
       "Belmont",
       "San Carlos",
       "Burlingame",
       "Millbrae",
       "Atherton",
       "Woodside",
       "Portola Valley",
       "East Palo Alto",
       "Half Moon Bay"},
      700000, 0.35, 0.14));
  regions.push_back(MakeRegion(
      "NYC - Manhattan, Bronx", "NY",
      {"Upper East Side",
       "Upper West Side",
       "Chelsea",
       "Tribeca",
       "SoHo",
       "Greenwich Village",
       "Harlem",
       "East Village",
       "Midtown",
       "Financial District",
       "Murray Hill",
       "Gramercy",
       "NoHo",
       "Nolita",
       "Lower East Side",
       "Chinatown",
       "Hell's Kitchen",
       "Morningside Heights",
       "Hamilton Heights",
       "Sugar Hill",
       "Inwood",
       "Washington Heights",
       "Riverdale",
       "Fordham",
       "Pelham Bay",
       "Morris Park",
       "Throgs Neck",
       "Kingsbridge",
       "Mott Haven",
       "City Island",
       "Marble Hill",
       "Norwood",
       "Bedford Park",
       "Hunts Point",
       "Soundview",
       "Castle Hill",
       "Parkchester",
       "Co-op City",
       "Wakefield",
       "Williamsbridge"},
      1600000, 0.45, 0.05));
  // Smaller metros filling out the national dataset.
  regions.push_back(MakeRegion(
      "Chicago", "IL",
      {"Lincoln Park", "Lakeview", "Wicker Park", "Hyde Park",
       "Logan Square", "Bucktown", "Evanston", "Oak Park", "Naperville",
       "Schaumburg"},
      280000, 0.45, 0.10));
  regions.push_back(MakeRegion(
      "Los Angeles", "CA",
      {"Santa Monica", "Pasadena", "Silver Lake", "Venice", "Burbank",
       "Glendale", "Culver City", "Sherman Oaks", "Long Beach", "Torrance"},
      520000, 0.45, 0.10));
  regions.push_back(MakeRegion(
      "Boston", "MA",
      {"Back Bay", "Beacon Hill", "Cambridge", "Somerville", "Brookline",
       "Jamaica Plain", "South End", "Charlestown", "Newton", "Quincy"},
      450000, 0.4, 0.07));
  regions.push_back(MakeRegion(
      "Austin", "TX",
      {"Hyde Park Austin", "Zilker", "Tarrytown", "Mueller", "Round Rock",
       "Cedar Park", "Pflugerville", "Westlake Hills"},
      210000, 0.4, 0.05));
  regions.push_back(MakeRegion(
      "Denver", "CO",
      {"Capitol Hill Denver", "Highlands", "Cherry Creek", "Washington Park",
       "Aurora", "Lakewood", "Littleton", "Arvada"},
      250000, 0.4, 0.04));
  regions.push_back(MakeRegion(
      "Atlanta", "GA",
      {"Buckhead", "Midtown Atlanta", "Virginia-Highland", "Decatur",
       "Sandy Springs", "Marietta", "Alpharetta", "East Atlanta"},
      200000, 0.4, 0.04));
  regions.push_back(MakeRegion(
      "Phoenix", "AZ",
      {"Arcadia", "Ahwatukee", "Scottsdale", "Tempe", "Chandler", "Mesa",
       "Glendale AZ", "Peoria"},
      180000, 0.35, 0.03));
  regions.push_back(MakeRegion(
      "Dallas", "TX",
      {"Uptown Dallas", "Lakewood Dallas", "Oak Lawn", "Plano", "Frisco",
       "Irving", "Richardson", "Garland"},
      190000, 0.4, 0.03));
  regions.push_back(MakeRegion(
      "Portland", "OR",
      {"Pearl District", "Hawthorne", "Alberta", "Sellwood", "Beaverton",
       "Lake Oswego", "Gresham", "Hillsboro"},
      240000, 0.4, 0.02));
  regions.push_back(MakeRegion(
      "Minneapolis", "MN",
      {"Uptown Minneapolis", "Linden Hills", "Northeast Minneapolis",
       "Edina", "St. Louis Park", "Bloomington", "Plymouth MN"},
      220000, 0.35, 0.015));
  regions.push_back(MakeRegion(
      "Miami", "FL",
      {"Coral Gables", "Coconut Grove", "Brickell", "Key Biscayne",
       "Aventura", "Kendall", "Hialeah", "Doral"},
      260000, 0.5, 0.01));
  return Geography(std::move(regions));
}

Result<const Region*> Geography::FindRegion(std::string_view name) const {
  for (const Region& region : regions_) {
    if (EqualsIgnoreCase(region.name, name)) {
      return &region;
    }
  }
  return Status::NotFound("no region named '" + std::string(name) + "'");
}

Result<const Region*> Geography::RegionOfNeighborhood(
    std::string_view neighborhood) const {
  for (const Region& region : regions_) {
    for (const std::string& n : region.neighborhoods) {
      if (EqualsIgnoreCase(n, neighborhood)) {
        return &region;
      }
    }
  }
  return Status::NotFound("no region contains neighborhood '" +
                          std::string(neighborhood) + "'");
}

std::vector<std::string> Geography::AllNeighborhoods() const {
  std::vector<std::string> out;
  for (const Region& region : regions_) {
    out.insert(out.end(), region.neighborhoods.begin(),
               region.neighborhoods.end());
  }
  return out;
}

}  // namespace autocat
