#ifndef AUTOCAT_SIMGEN_USER_SIMULATOR_H_
#define AUTOCAT_SIMGEN_USER_SIMULATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "simgen/geo.h"
#include "sql/selection.h"

namespace autocat {

/// One of the four search tasks of the paper's real-life user study
/// (Section 6.3), expressed as the broad query the subject starts from.
struct StudyTask {
  std::string id;           ///< "Task 1" .. "Task 4".
  std::string description;  ///< The paper's wording.
  SelectionProfile query;   ///< The query whose result is categorized.
};

/// The paper's four tasks:
///  1. Any neighborhood in Seattle/Bellevue, price < 1M
///  2. Bay Area - Penin/SanJose, price 300K-500K
///  3. 15 selected neighborhoods in NYC - Manhattan, Bronx, price < 1M
///  4. Seattle/Bellevue, price 200K-400K, bedrooms 3-4
Result<std::vector<StudyTask>> PaperStudyTasks(const Geography& geo);

/// A simulated study subject. `decision_noise` is the probability of
/// deviating from the ideal exploration model at each binary choice —
/// real subjects mis-click, skim labels, and satisfice, which is why the
/// paper's per-user correlations (Table 2) range from ~1.0 down to
/// negative.
struct Persona {
  std::string name;
  double decision_noise = 0.05;
  uint64_t seed = 0;
};

/// Eleven personas mirroring the paper's 11 subjects: most follow the
/// model closely (noise 2-12%), one is erratic (35%, playing the role of
/// the paper's U9 whose correlation came out negative).
std::vector<Persona> DefaultPersonas();

/// The hidden ground-truth interest of `persona` performing `task`: a
/// narrowing of the task query (a couple of preferred neighborhoods, a
/// tighter price band, and sometimes bedroom/property-type preferences).
/// Deterministic in (persona.seed, task.id). This one profile drives both
/// the subject's drill-down decisions and which tuples count as relevant
/// ("interesting homes").
Result<SelectionProfile> PersonaInterest(const StudyTask& task,
                                         const Persona& persona,
                                         const Geography& geo);

}  // namespace autocat

#endif  // AUTOCAT_SIMGEN_USER_SIMULATOR_H_
