#include "simgen/user_simulator.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>

#include "common/random.h"

namespace autocat {

namespace {

AttributeCondition NeighborhoodsOf(const Region& region) {
  std::set<Value> values;
  for (const std::string& n : region.neighborhoods) {
    values.insert(Value(n));
  }
  return AttributeCondition::ValueSet(std::move(values));
}

NumericRange PriceBelow(double cap) {
  NumericRange range;
  range.hi = cap;
  range.hi_inclusive = false;
  return range;
}

NumericRange ClosedRange(double lo, double hi) {
  NumericRange range;
  range.lo = lo;
  range.hi = hi;
  return range;
}

}  // namespace

Result<std::vector<StudyTask>> PaperStudyTasks(const Geography& geo) {
  AUTOCAT_ASSIGN_OR_RETURN(const Region* seattle,
                           geo.FindRegion("Seattle/Bellevue"));
  AUTOCAT_ASSIGN_OR_RETURN(const Region* bay_area,
                           geo.FindRegion("Bay Area - Penin/SanJose"));
  AUTOCAT_ASSIGN_OR_RETURN(const Region* nyc,
                           geo.FindRegion("NYC - Manhattan, Bronx"));

  std::vector<StudyTask> tasks;

  {
    StudyTask task;
    task.id = "Task 1";
    task.description =
        "Any neighborhood in Seattle/Bellevue, Price < 1 Million";
    task.query.Set("neighborhood", NeighborhoodsOf(*seattle));
    task.query.Set("price", AttributeCondition::Range(PriceBelow(1e6)));
    tasks.push_back(std::move(task));
  }
  {
    StudyTask task;
    task.id = "Task 2";
    task.description =
        "Any neighborhood in Bay Area - Penin/SanJose, Price between 300K "
        "and 500K";
    task.query.Set("neighborhood", NeighborhoodsOf(*bay_area));
    task.query.Set("price",
                   AttributeCondition::Range(ClosedRange(3e5, 5e5)));
    tasks.push_back(std::move(task));
  }
  {
    StudyTask task;
    task.id = "Task 3";
    task.description =
        "15 selected neighborhoods in NYC - Manhattan, Bronx, Price < 1 "
        "Million";
    if (nyc->neighborhoods.size() < 15) {
      return Status::Internal("NYC region needs at least 15 neighborhoods");
    }
    std::set<Value> selected;
    for (size_t i = 0; i < 15; ++i) {
      selected.insert(Value(nyc->neighborhoods[i]));
    }
    task.query.Set("neighborhood",
                   AttributeCondition::ValueSet(std::move(selected)));
    task.query.Set("price", AttributeCondition::Range(PriceBelow(1e6)));
    tasks.push_back(std::move(task));
  }
  {
    StudyTask task;
    task.id = "Task 4";
    task.description =
        "Any neighborhood in Seattle/Bellevue, Price between 200K and "
        "400K, BedroomCount between 3 and 4";
    task.query.Set("neighborhood", NeighborhoodsOf(*seattle));
    task.query.Set("price",
                   AttributeCondition::Range(ClosedRange(2e5, 4e5)));
    task.query.Set("bedroomcount",
                   AttributeCondition::Range(ClosedRange(3, 4)));
    tasks.push_back(std::move(task));
  }
  return tasks;
}

std::vector<Persona> DefaultPersonas() {
  // Noise levels chosen so per-user correlations span the paper's Table 2
  // spread (mostly strong, a couple weak, one erratic). A single flipped
  // decision near the root changes hundreds of items, so even small rates
  // inject substantial run-to-run spread.
  const double kNoise[] = {0.02,  0.01, 0.04, 0.06, 0.03, 0.08,
                           0.005, 0.12, 0.30, 0.05, 0.015};
  std::vector<Persona> personas;
  for (size_t i = 0; i < 11; ++i) {
    Persona persona;
    persona.name = "U" + std::to_string(i + 1);
    persona.decision_noise = kNoise[i];
    persona.seed = 0x9E3779B97F4A7C15ULL * (i + 1);
    personas.push_back(std::move(persona));
  }
  return personas;
}

Result<SelectionProfile> PersonaInterest(const StudyTask& task,
                                         const Persona& persona,
                                         const Geography& geo) {
  Random rng(persona.seed ^ std::hash<std::string>()(task.id));
  SelectionProfile interest;

  // Neighborhoods: the subject truly cares about a few of the task's,
  // with the same popularity skew the query log shows (subjects are drawn
  // from the population whose searches the workload records), so popular
  // neighborhoods are preferred.
  const AttributeCondition* nb = task.query.Find("neighborhood");
  if (nb == nullptr || !nb->is_value_set() || nb->values.empty()) {
    return Status::InvalidArgument("task query must name neighborhoods");
  }
  AUTOCAT_ASSIGN_OR_RETURN(
      const Region* region,
      geo.RegionOfNeighborhood(nb->values.begin()->ToString()));
  // The task pool in the region's (popularity-ordered) listing order.
  std::vector<Value> pool;
  for (const std::string& name : region->neighborhoods) {
    if (nb->values.count(Value(name)) > 0) {
      pool.push_back(Value(name));
    }
  }
  if (pool.empty()) {
    pool.assign(nb->values.begin(), nb->values.end());
  }
  const size_t picks = static_cast<size_t>(
      rng.Uniform(2, std::min<int64_t>(4, static_cast<int64_t>(pool.size()))));
  std::set<Value> chosen;
  while (chosen.size() < std::min(picks, pool.size())) {
    chosen.insert(pool[rng.Zipf(pool.size(), 0.6)]);
  }
  // Mean price tier of the chosen neighborhoods (region listing order is
  // price order): like the workload's buyers, the subject's budget tracks
  // where she wants to live.
  double tier = 0;
  for (const Value& v : chosen) {
    for (size_t i = 0; i < region->neighborhoods.size(); ++i) {
      if (region->neighborhoods[i] == v.ToString()) {
        tier += NeighborhoodPriceMultiplier(i,
                                            region->neighborhoods.size());
        break;
      }
    }
  }
  tier /= static_cast<double>(chosen.size());
  interest.Set("neighborhood",
               AttributeCondition::ValueSet(std::move(chosen)));

  // Price: a sub-band of the task's price window. True interest bands sit
  // on a finer 5K grid than the round 25K/50K numbers typed into search
  // forms — a subject is happy with a 230K-285K home even if her logged
  // queries said 225K-300K.
  const AttributeCondition* price = task.query.Find("price");
  double lo = 75000;
  double hi = 1.5e6;
  if (price != nullptr && price->is_range()) {
    if (std::isfinite(price->range.lo)) lo = price->range.lo;
    if (std::isfinite(price->range.hi)) hi = price->range.hi;
  }
  const double span = hi - lo;
  const double band = std::max(50000.0, span * rng.UniformReal(0.25, 0.5));
  // Center the band on what her neighborhoods cost (clamped into the task
  // window), with personal spread.
  const double anchor =
      std::clamp(region->price_center * tier *
                     std::exp(rng.Gaussian(0, 0.2)),
                 lo + band / 2, std::max(lo + band / 2, hi - band / 2));
  const double start = anchor - band / 2;
  const double band_lo = std::max(lo, std::floor(start / 5000) * 5000);
  const double band_hi =
      std::min(hi, std::ceil((start + band) / 5000) * 5000);
  interest.Set("price", AttributeCondition::Range(
                            ClosedRange(band_lo, band_hi)));

  // The remaining preferences follow the same per-attribute propensities
  // as the query log (the paper's premise: individual users conform to
  // the aggregate behaviour the workload captures) — otherwise the cost
  // model would systematically bet on attributes no subject cares about.

  // Bedrooms: keep the task's constraint if any; otherwise often have one.
  const AttributeCondition* beds = task.query.Find("bedroomcount");
  if (beds != nullptr) {
    interest.Set("bedroomcount", *beds);
  } else if (rng.Bernoulli(0.7)) {
    const int64_t b = rng.Uniform(2, 4);
    interest.Set("bedroomcount", AttributeCondition::Range(ClosedRange(
                                     static_cast<double>(b),
                                     static_cast<double>(b + 1))));
  }

  if (rng.Bernoulli(0.5)) {
    const int64_t b = rng.Uniform(1, 3);
    interest.Set("bathcount", AttributeCondition::Range(ClosedRange(
                                  static_cast<double>(b),
                                  static_cast<double>(b + 1))));
  }

  if (rng.Bernoulli(0.52)) {
    const double lo = 500.0 * static_cast<double>(rng.Uniform(1, 4));
    const double span = 500.0 * static_cast<double>(rng.Uniform(2, 4));
    interest.Set("squarefootage",
                 AttributeCondition::Range(ClosedRange(lo, lo + span)));
  }

  if (rng.Bernoulli(0.25)) {
    const double year = 1950 + 5 * static_cast<double>(rng.Uniform(0, 9));
    NumericRange newer;
    newer.lo = year;
    interest.Set("yearbuilt", AttributeCondition::Range(newer));
  }

  // Sometimes a property-type preference.
  if (rng.Bernoulli(0.48)) {
    static const char* kTypes[] = {"Single Family", "Condo", "Townhouse"};
    std::set<Value> types = {Value(kTypes[rng.Uniform(0, 2)])};
    if (rng.Bernoulli(0.3)) {
      types.insert(Value(kTypes[rng.Uniform(0, 2)]));
    }
    interest.Set("propertytype",
                 AttributeCondition::ValueSet(std::move(types)));
  }
  return interest;
}

}  // namespace autocat
