#include "simgen/study.h"

#include <algorithm>
#include <functional>

#include "common/random.h"
#include "common/statistics.h"
#include "core/cost_model.h"
#include "core/probability.h"
#include "explore/metrics.h"

namespace autocat {

StudyConfig DefaultStudyConfig() {
  StudyConfig config;
  config.categorizer.max_tuples_per_category = 20;   // M, as in the paper
  config.categorizer.attribute_usage_threshold = 0.4;  // x, as in the paper
  config.categorizer.cost_params.k = 1.0;
  config.categorizer.cost_params.frac = 0.5;
  config.categorizer.equiwidth_interval_multiplier = 5.0;
  // Paper's separation intervals: price 5000, squarefootage 100,
  // yearbuilt 5; integer attributes use 1.
  config.stats.split_intervals = {
      {"price", 5000},       {"squarefootage", 100}, {"yearbuilt", 5},
      {"bedroomcount", 1},   {"bathcount", 1},
  };
  config.stats.default_split_interval = 1.0;
  return config;
}

StudyEnvironment::StudyEnvironment(StudyConfig config, Geography geo,
                                   std::unique_ptr<Table> homes,
                                   IndexedTable indexed, Workload workload)
    : config_(std::move(config)),
      geo_(std::move(geo)),
      homes_(std::move(homes)),
      indexed_(std::move(indexed)),
      workload_(std::move(workload)) {}

Result<StudyEnvironment> StudyEnvironment::Create(const StudyConfig& config) {
  Geography geo = Geography::UnitedStates();
  HomesGeneratorConfig homes_config;
  homes_config.num_rows = config.num_homes;
  homes_config.seed = config.seed * 2 + 1;
  homes_config.parallel = config.parallel;
  HomesGenerator homes_generator(&geo, homes_config);
  AUTOCAT_ASSIGN_OR_RETURN(Table generated, homes_generator.Generate());
  auto homes = std::make_unique<Table>(std::move(generated));

  // Index the attributes queries actually filter on.
  AUTOCAT_ASSIGN_OR_RETURN(
      IndexedTable indexed,
      IndexedTable::Build(homes.get(),
                          {"neighborhood", "price", "bedroomcount",
                           "bathcount", "propertytype", "squarefootage",
                           "yearbuilt"}));

  WorkloadGeneratorConfig workload_config;
  workload_config.num_queries = config.num_workload_queries;
  workload_config.seed = config.seed * 3 + 7;
  workload_config.parallel = config.parallel;
  WorkloadGenerator workload_generator(&geo, workload_config);
  AUTOCAT_ASSIGN_OR_RETURN(
      Workload workload,
      workload_generator.Generate(homes->schema(), nullptr));

  return StudyEnvironment(config, std::move(geo), std::move(homes),
                          std::move(indexed), std::move(workload));
}

Result<Table> StudyEnvironment::ExecuteProfile(
    const SelectionProfile& profile) const {
  return homes_->SelectRows(indexed_.Select(profile));
}

Result<SelectionProfile> BroadenToRegion(const SelectionProfile& w,
                                         const Geography& geo) {
  const AttributeCondition* nb = w.Find("neighborhood");
  if (nb == nullptr || !nb->is_value_set() || nb->values.empty()) {
    return Status::InvalidArgument(
        "query has no neighborhood condition to broaden");
  }
  AUTOCAT_ASSIGN_OR_RETURN(
      const Region* region,
      geo.RegionOfNeighborhood(nb->values.begin()->ToString()));
  std::set<Value> all;
  for (const std::string& n : region->neighborhoods) {
    all.insert(Value(n));
  }
  SelectionProfile broadened;
  broadened.Set("neighborhood", AttributeCondition::ValueSet(std::move(all)));
  return broadened;
}

std::string_view TechniqueToString(Technique technique) {
  switch (technique) {
    case Technique::kCostBased:
      return "Cost-based";
    case Technique::kAttrCost:
      return "Attr-cost";
    case Technique::kNoCost:
      return "No cost";
  }
  return "unknown";
}

std::unique_ptr<Categorizer> MakeTechnique(Technique technique,
                                           const WorkloadStats* stats,
                                           const StudyConfig& config,
                                           uint64_t arbitrary_seed) {
  CategorizerOptions options = config.categorizer;
  options.arbitrary_seed = arbitrary_seed;
  switch (technique) {
    case Technique::kCostBased:
      // Candidates default to every column; the usage threshold x keeps
      // the paper's six retained attributes.
      options.candidate_attributes.clear();
      return std::make_unique<CostBasedCategorizer>(stats,
                                                    std::move(options));
    case Technique::kAttrCost:
      options.candidate_attributes = config.predefined_attributes;
      return std::make_unique<AttrCostCategorizer>(stats,
                                                   std::move(options));
    case Technique::kNoCost:
      options.candidate_attributes = config.predefined_attributes;
      return std::make_unique<NoCostCategorizer>(stats, std::move(options));
  }
  return nullptr;
}

std::vector<const SyntheticRecord*> SimulatedStudyResult::Select(
    Technique technique, size_t subset) const {
  std::vector<const SyntheticRecord*> out;
  for (const SyntheticRecord& record : records) {
    if (record.technique == technique &&
        (subset == SIZE_MAX || record.subset == subset)) {
      out.push_back(&record);
    }
  }
  return out;
}

Result<double> SimulatedStudyResult::Pearson(Technique technique,
                                             size_t subset) const {
  std::vector<double> estimated;
  std::vector<double> actual;
  for (const SyntheticRecord* record : Select(technique, subset)) {
    estimated.push_back(record->estimated_cost);
    actual.push_back(record->actual_cost);
  }
  return PearsonCorrelation(estimated, actual);
}

Result<double> SimulatedStudyResult::PooledPearson(size_t subset) const {
  std::vector<double> estimated;
  std::vector<double> actual;
  for (const SyntheticRecord& record : records) {
    if (subset == SIZE_MAX || record.subset == subset) {
      estimated.push_back(record.estimated_cost);
      actual.push_back(record.actual_cost);
    }
  }
  return PearsonCorrelation(estimated, actual);
}

Result<double> SimulatedStudyResult::PooledFitSlope() const {
  std::vector<double> estimated;
  std::vector<double> actual;
  for (const SyntheticRecord& record : records) {
    estimated.push_back(record.estimated_cost);
    actual.push_back(record.actual_cost);
  }
  return LeastSquaresSlopeThroughOrigin(estimated, actual);
}

Result<double> SimulatedStudyResult::FitSlope(Technique technique) const {
  std::vector<double> estimated;
  std::vector<double> actual;
  for (const SyntheticRecord* record : Select(technique, SIZE_MAX)) {
    estimated.push_back(record->estimated_cost);
    actual.push_back(record->actual_cost);
  }
  return LeastSquaresSlopeThroughOrigin(estimated, actual);
}

double SimulatedStudyResult::MeanFractionalCost(Technique technique,
                                                size_t subset) const {
  RunningStat stat;
  for (const SyntheticRecord* record : Select(technique, subset)) {
    if (record->result_size > 0) {
      stat.Add(record->actual_cost /
               static_cast<double>(record->result_size));
    }
  }
  return stat.mean();
}

Result<SimulatedStudyResult> RunSimulatedStudy(const StudyEnvironment& env) {
  const StudyConfig& config = env.config();
  SimulatedStudyResult result;

  // Eligible synthetic explorations: queries with a neighborhood condition
  // (broadening is region-based) plus at least one more condition, so the
  // exploration has something to drill on.
  std::vector<size_t> eligible;
  for (size_t i = 0; i < env.workload().size(); ++i) {
    const SelectionProfile& profile = env.workload().entry(i).profile;
    if (profile.Constrains("neighborhood") && profile.num_conditions() >= 2) {
      eligible.push_back(i);
    } else {
      ++result.skipped_ineligible;
    }
  }
  const size_t needed = config.num_subsets * config.subset_size;
  if (eligible.size() < needed) {
    return Status::InvalidArgument(
        "workload has only " + std::to_string(eligible.size()) +
        " eligible queries, need " + std::to_string(needed));
  }
  Random rng(config.seed ^ 0xABCDEF);
  rng.Shuffle(eligible);
  eligible.resize(needed);

  for (size_t subset = 0; subset < config.num_subsets; ++subset) {
    const std::vector<size_t> subset_indices(
        eligible.begin() + static_cast<long>(subset * config.subset_size),
        eligible.begin() +
            static_cast<long>((subset + 1) * config.subset_size));
    // Leave-subset-out: the count tables never see the explorations they
    // are evaluated on.
    const Workload rest = env.workload().Without(subset_indices, nullptr);
    AUTOCAT_ASSIGN_OR_RETURN(
        const WorkloadStats stats,
        WorkloadStats::Build(rest, env.schema(), config.stats,
                             config.parallel));
    ProbabilityEstimator estimator(&stats, &env.schema());
    CostModel model(&estimator, config.categorizer.cost_params);
    SimulatedExplorer::Options explorer_options;
    explorer_options.scenario = Scenario::kAll;
    explorer_options.label_cost = config.categorizer.cost_params.k;
    const SimulatedExplorer explorer(explorer_options);

    for (size_t query_index : subset_indices) {
      const SelectionProfile& w = env.workload().entry(query_index).profile;
      AUTOCAT_ASSIGN_OR_RETURN(const SelectionProfile broadened,
                               BroadenToRegion(w, env.geo()));
      AUTOCAT_ASSIGN_OR_RETURN(const Table result_set,
                               env.ExecuteProfile(broadened));
      if (result_set.empty()) {
        ++result.skipped_empty_results;
        continue;
      }
      for (Technique technique : kAllTechniques) {
        const auto categorizer = MakeTechnique(
            technique, &stats, config, config.seed ^ (query_index * 31));
        AUTOCAT_ASSIGN_OR_RETURN(
            const CategoryTree tree,
            categorizer->Categorize(result_set, &broadened));
        SyntheticRecord record;
        record.subset = subset;
        record.query_index = query_index;
        record.technique = technique;
        record.estimated_cost = model.CostAll(tree);
        record.actual_cost = explorer.Explore(tree, w).items_examined;
        record.result_size = result_set.num_rows();
        result.records.push_back(record);
      }
    }
  }
  return result;
}

std::vector<const UserRunRecord*> UserStudyResult::Select(
    const std::string& task, Technique technique) const {
  std::vector<const UserRunRecord*> out;
  for (const UserRunRecord& record : records) {
    if (record.task == task && record.technique == technique) {
      out.push_back(&record);
    }
  }
  return out;
}

Result<double> UserStudyResult::UserPearson(const std::string& user) const {
  std::vector<double> estimated;
  std::vector<double> actual;
  for (const UserRunRecord& record : records) {
    if (record.user == user && record.paper_assignment) {
      estimated.push_back(record.estimated_cost);
      actual.push_back(record.actual_cost_all);
    }
  }
  return PearsonCorrelation(estimated, actual);
}

std::map<Technique, size_t> UserStudyResult::SurveyVotes() const {
  // Each user votes for the technique that felt best across the tasks
  // they tried. A subject's judgment is implicitly task-relative ("given
  // what I was looking for, how hard did the tool make it?"), and each
  // subject met each technique on *different* tasks, so raw effort would
  // mostly measure task difficulty. We therefore score each run by its
  // combined effort — items per relevant tuple found, plus items to the
  // first hit — relative to the across-subject mean effort of its task,
  // and each user votes for their lowest-mean-relative-effort technique.
  auto combined = [](const UserRunRecord& record) {
    return record.actual_cost_all /
               static_cast<double>(
                   std::max<size_t>(1, record.relevant_found)) +
           record.actual_cost_one;
  };
  std::map<std::string, std::pair<double, size_t>> task_mean;
  for (const UserRunRecord& record : records) {
    auto& [sum, count] = task_mean[record.task];
    sum += combined(record);
    ++count;
  }
  struct Effort {
    double relative_sum = 0;
    size_t count = 0;
  };
  std::map<std::string, std::map<Technique, Effort>> per_user;
  for (const UserRunRecord& record : records) {
    const auto& [sum, count] = task_mean.at(record.task);
    const double mean = sum / static_cast<double>(count);
    Effort& effort = per_user[record.user][record.technique];
    effort.relative_sum += combined(record) / std::max(mean, 1e-9);
    ++effort.count;
  }
  std::map<Technique, size_t> votes;
  for (const auto& [user, techniques] : per_user) {
    (void)user;
    bool first = true;
    Technique best = Technique::kCostBased;
    double best_cost = 0;
    for (const auto& [technique, effort] : techniques) {
      const double mean =
          effort.relative_sum / static_cast<double>(effort.count);
      if (first || mean < best_cost) {
        first = false;
        best = technique;
        best_cost = mean;
      }
    }
    ++votes[best];
  }
  return votes;
}

Result<UserStudyResult> RunUserStudy(const StudyEnvironment& env) {
  const StudyConfig& config = env.config();
  AUTOCAT_ASSIGN_OR_RETURN(
      const WorkloadStats stats,
      WorkloadStats::Build(env.workload(), env.schema(), config.stats,
                           config.parallel));
  ProbabilityEstimator estimator(&stats, &env.schema());
  CostModel model(&estimator, config.categorizer.cost_params);

  AUTOCAT_ASSIGN_OR_RETURN(const std::vector<StudyTask> tasks,
                           PaperStudyTasks(env.geo()));
  const std::vector<Persona> personas = DefaultPersonas();

  UserStudyResult result;

  // Per task: the result set, and one tree per technique (all subjects of
  // a task-technique cell see the same tree, as in the web study).
  struct TaskMaterial {
    Table result_set;
    std::vector<CategoryTree> trees;  // indexed by technique
    std::vector<double> estimated;    // CostAll per technique
  };
  std::vector<TaskMaterial> materials;
  for (const StudyTask& task : tasks) {
    AUTOCAT_ASSIGN_OR_RETURN(Table result_set,
                             env.ExecuteProfile(task.query));
    TaskMaterial material{std::move(result_set), {}, {}};
    result.task_result_sizes[task.id] = material.result_set.num_rows();
    materials.push_back(std::move(material));
  }
  for (size_t t = 0; t < tasks.size(); ++t) {
    for (Technique technique : kAllTechniques) {
      const auto categorizer =
          MakeTechnique(technique, &stats, config, config.seed ^ (t * 97));
      AUTOCAT_ASSIGN_OR_RETURN(
          CategoryTree tree,
          categorizer->Categorize(materials[t].result_set, &tasks[t].query));
      materials[t].estimated.push_back(model.CostAll(tree));
      materials[t].trees.push_back(std::move(tree));
    }
  }

  for (size_t u = 0; u < personas.size(); ++u) {
    const Persona& persona = personas[u];
    for (size_t t = 0; t < tasks.size(); ++t) {
      AUTOCAT_ASSIGN_OR_RETURN(
          const SelectionProfile interest,
          PersonaInterest(tasks[t], persona, env.geo()));
      for (size_t tech_index = 0; tech_index < 3; ++tech_index) {
        Random all_rng(persona.seed ^ (t * 1315423911ULL) ^
                       (tech_index * 2246822519ULL) ^ 0x1);
        SimulatedExplorer::Options all_options;
        all_options.scenario = Scenario::kAll;
        all_options.label_cost = config.categorizer.cost_params.k;
        all_options.decision_noise = persona.decision_noise;
        all_options.rng = &all_rng;
        const ExplorationResult all_run =
            SimulatedExplorer(all_options)
                .Explore(materials[t].trees[tech_index], interest);

        Random one_rng(persona.seed ^ (t * 2654435761ULL) ^
                       (tech_index * 3266489917ULL) ^ 0x2);
        SimulatedExplorer::Options one_options = all_options;
        one_options.scenario = Scenario::kOne;
        one_options.rng = &one_rng;
        const ExplorationResult one_run =
            SimulatedExplorer(one_options)
                .Explore(materials[t].trees[tech_index], interest);

        UserRunRecord record;
        record.user = persona.name;
        record.task = tasks[t].id;
        record.technique = kAllTechniques[tech_index];
        record.estimated_cost = materials[t].estimated[tech_index];
        record.actual_cost_all = all_run.items_examined;
        record.actual_cost_one = one_run.items_examined;
        record.relevant_found = all_run.relevant_found;
        record.result_size = materials[t].result_set.num_rows();
        record.paper_assignment = tech_index == (u + t) % 3;
        result.records.push_back(std::move(record));
      }
    }
  }
  return result;
}

}  // namespace autocat
